# CI entry points.  `make check` is what the pipeline runs on every
# change: a full build plus the tier-1 test suite.

.PHONY: check build test lint analyze-smoke plan-smoke policy-smoke bench bench-smoke chaos-smoke scale-smoke serve-smoke clean

check: build test

build:
	dune build

test:
	dune runtest

# Static analysis over the evaluation networks: any error-severity
# finding makes the CLI (and therefore this target) exit non-zero.
lint: build
	dune exec bin/heimdall_cli.exe -- lint enterprise
	dune exec bin/heimdall_cli.exe -- lint university --severity error

# Semantic analysis smoke: both evaluation networks must come out free
# of error-severity findings, and the seeded union-shadow defect — which
# only the packet-set algebra can see — must flip the exit code and
# report ACL004.
analyze-smoke: build
	dune exec bin/heimdall_cli.exe -- analyze enterprise
	dune exec bin/heimdall_cli.exe -- analyze university
	! dune exec bin/heimdall_cli.exe -- analyze enterprise --seed-defect > /tmp/analyze-seeded.out
	grep -q ACL004 /tmp/analyze-seeded.out
	dune exec bench/main.exe -- sem

# Plan-analysis smoke: the static pre-flight must be sound on every
# scenario ticket (predicted delta contains the exact replay diff, the
# privilege verdict agrees with replay), the clean scenarios must show
# no plan conflicts, and a deliberately seeded overlapping ticket must
# be detected and held.
plan-smoke: build
	dune exec bin/heimdall_cli.exe -- analyze enterprise --plan
	dune exec bin/heimdall_cli.exe -- analyze university --plan
	dune exec bin/heimdall_cli.exe -- conflicts enterprise
	dune exec bin/heimdall_cli.exe -- conflicts university
	! dune exec bin/heimdall_cli.exe -- conflicts enterprise --seed-overlap > /tmp/plan-seeded.out
	grep -q "plan.conflict" /tmp/plan-seeded.out

# Policy-tree smoke: both paper networks and a generated fleet must
# compile and analyse clean (POL004 proves the tree equivalent to the
# flat spec), a seeded parent/child contradiction must flip the exit
# code and report POL001, and the rule registry printed by --list-rules
# must match the expected family count.
policy-smoke: build
	dune exec bin/heimdall_cli.exe -- policy enterprise
	dune exec bin/heimdall_cli.exe -- policy university
	dune exec bin/heimdall_cli.exe -- policy fleet:fat-tree:k=4
	! dune exec bin/heimdall_cli.exe -- policy enterprise --seed-defect pol001 > /tmp/policy-seeded.out
	grep -q POL001 /tmp/policy-seeded.out
	dune exec bin/heimdall_cli.exe -- lint --list-rules | grep -q "35 rules in 6 families"
	dune exec bench/main.exe -- poltree

bench:
	dune exec bench/main.exe

# The two report sections CI persists on every run: static-analysis and
# verify-engine wall times, merged by key into bench/report.json (so one
# section never clobbers the other).  The engine report is also a gate —
# it exits non-zero unless verdicts are byte-identical across domain
# counts, the dataplane caches actually hit, a warm persistent cache
# rebuilds nothing, and the N-domain sweep beats 1 domain (speedup
# criterion skipped, and recorded as skipped, on single-core hosts).
bench-smoke: build
	dune exec bench/main.exe -- lint engine

# Seeded fault-injection run over the enterprise issues: exits non-zero
# unless every issue resolves with zero surviving policy violations and
# a verifying audit trail, then persists the "chaos" report section.
chaos-smoke: build
	dune exec bin/heimdall_cli.exe -- chaos enterprise --seed 42
	dune exec bench/main.exe -- chaos

# Fleet-scale smoke: generate a seeded fat-tree and run the whole
# lint → twin → verify → schedule → audit pipeline over it.  The CLI
# exits non-zero on nondeterministic regeneration, lint errors, policy
# violations, cross-domain verdict drift or an unresolved issue; the
# `bench scale` section then persists walls, peak RSS and cache stats
# at three sizes (largest 500+ devices) into bench/report.json.
scale-smoke: build
	dune exec bin/heimdall_cli.exe -- scale --shape fat-tree -k 4 --seed 42
	dune exec bin/heimdall_cli.exe -- scale --spec leaf-spine:spines=4:leaves=8:seed=7 --no-issues
	dune exec bench/main.exe -- scale

# Watchtower smoke: `serve --once` replays the scenario into the live
# registry, runs a clean -> injected-drift -> clear monitor cycle, then
# scrapes its own /metrics, /healthz, /metrics.json, /spans and /events
# over real HTTP (stdlib client) and exits non-zero when any required
# series or drift transition is missing.  The obs bench gates
# instrumentation overhead at 10% and persists the "obs" report section.
serve-smoke: build
	dune exec bin/heimdall_cli.exe -- serve enterprise --once --port 0
	dune exec bench/main.exe -- obs

clean:
	dune clean
