# CI entry points.  `make check` is what the pipeline runs on every
# change: a full build plus the tier-1 test suite.

.PHONY: check build test bench clean

check: build test

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
