# CI entry points.  `make check` is what the pipeline runs on every
# change: a full build plus the tier-1 test suite.

.PHONY: check build test lint bench bench-smoke chaos-smoke clean

check: build test

build:
	dune build

test:
	dune runtest

# Static analysis over the evaluation networks: any error-severity
# finding makes the CLI (and therefore this target) exit non-zero.
lint: build
	dune exec bin/heimdall_cli.exe -- lint enterprise
	dune exec bin/heimdall_cli.exe -- lint university --severity error

bench:
	dune exec bench/main.exe

# The two report sections CI persists on every run: static-analysis and
# verify-engine wall times, merged by key into bench/report.json (so one
# section never clobbers the other).
bench-smoke: build
	dune exec bench/main.exe -- lint engine

# Seeded fault-injection run over the enterprise issues: exits non-zero
# unless every issue resolves with zero surviving policy violations and
# a verifying audit trail, then persists the "chaos" report section.
chaos-smoke: build
	dune exec bin/heimdall_cli.exe -- chaos enterprise --seed 42
	dune exec bench/main.exe -- chaos

clean:
	dune clean
