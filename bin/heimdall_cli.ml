(* heimdall — command-line interface to the library.

   Subcommands:
     network    inspect an evaluation network (inventory, validation)
     config     print a device's configuration
     mine       mine the policy set of a network
     lint       static analysis over configs, ACLs and privilege specs
     analyze    semantic analysis: packet-set ACL checks, network-wide
                checks, per-ticket privilege over-grant detection
     policy     parse, compile, diff and analyse hierarchical policy
                trees (POL001-POL006) against the flat spec and tickets
     trace      trace a flow through a network's dataplane
     ticket     run an issue through the Current and Heimdall workflows
     privilege  print the Privilege_msp generated for an issue's ticket
     sweep      the Figure-8/9 feasibility / attack-surface sweep
     experiment print a paper artifact (table1, fig7, fig8, fig9, ...)
     chaos      replay an issue under a seeded fault plan, check recovery
     scale      generate a fleet-scale network (fat-tree / leaf-spine /
                multi-campus) and run the whole pipeline over it
     serve      the Watchtower: live metrics/health HTTP exporter plus a
                continuous drift monitor over a scenario
     shell      interactive technician session (twin or --emergency)
     export     write a network to disk in the loader layout
     load       load + validate a network from disk, mine its policies
     audit      verify an exported audit trail *)

open Cmdliner
open Heimdall_net
open Heimdall_control
open Heimdall_scenarios

(* ---------------- shared arguments ---------------- *)

(* The parsed value carries its scenario name (threaded through
   [Experiments.scenario]), so printing it back can never misreport —
   no probing the network for well-known node names. *)
let network_of_string s =
  match Experiments.scenario_of_name s with
  | Some sc -> Ok sc
  | None ->
      Error
        (Printf.sprintf "unknown network %S (try %s)" s
           (String.concat " or " Experiments.scenario_names))

let network_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (network_of_string s) in
  let print fmt (sc : Experiments.scenario) =
    Format.pp_print_string fmt sc.scenario_name
  in
  Arg.conv (parse, print)

let network_arg =
  Arg.(
    required
    & pos 0 (some network_conv) None
    & info [] ~docv:"NETWORK" ~doc:"Evaluation network: enterprise or university.")

let issue_arg n =
  Arg.(
    required
    & pos n (some string) None
    & info [] ~docv:"ISSUE" ~doc:"Issue name: vlan, ospf or isp.")

let find_issue (sc : Experiments.scenario) name =
  match List.find_opt (fun (i : Heimdall_msp.Issue.t) -> i.name = name) sc.issues with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "unknown issue %S (try vlan, ospf or isp)" name)

(* ---------------- network ---------------- *)

let network_cmd =
  let run { Experiments.net; policies; _ } =
    let topo = Network.topology net in
    Printf.printf "nodes: %d (%d routers, %d firewalls, %d switches, %d hosts)\n"
      (Topology.node_count topo)
      (List.length (Topology.node_names ~kind:Topology.Router topo))
      (List.length (Topology.node_names ~kind:Topology.Firewall topo))
      (List.length (Topology.node_names ~kind:Topology.Switch topo))
      (List.length (Topology.node_names ~kind:Topology.Host topo));
    Printf.printf "links: %d\nconfig lines: %d\npolicies: %d\n"
      (Topology.link_count topo)
      (Network.total_config_lines net)
      (List.length policies);
    match Network.validate net with
    | Ok () -> print_endline "validation: ok"
    | Error m -> Printf.printf "validation: FAILED (%s)\n" m
  in
  Cmd.v
    (Cmd.info "network" ~doc:"Inspect an evaluation network")
    Term.(const run $ network_arg)

(* ---------------- config ---------------- *)

let config_cmd =
  let node_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NODE" ~doc:"Device name.")
  in
  let run { Experiments.net; _ } node =
    match Network.config node net with
    | Some cfg -> print_string (Heimdall_config.Printer.render cfg)
    | None ->
        Printf.eprintf "unknown device %s\n" node;
        exit 1
  in
  Cmd.v
    (Cmd.info "config" ~doc:"Print a device's configuration")
    Term.(const run $ network_arg $ node_arg)

(* ---------------- mine ---------------- *)

let mine_cmd =
  let run { Experiments.policies; _ } =
    List.iter (fun p -> print_endline (Heimdall_verify.Policy.to_string p)) policies;
    Printf.printf "total: %d policies\n" (List.length policies)
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Mine the policy set of a network (config2spec-style)")
    Term.(const run $ network_arg)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let addr n docv =
    Arg.(required & pos n (some string) None & info [] ~docv ~doc:"IPv4 address.")
  in
  let run { Experiments.net; _ } src dst =
    match (Ipv4.of_string_opt src, Ipv4.of_string_opt dst) with
    | Some src, Some dst ->
        let dp = Dataplane.compute net in
        print_string
          (Heimdall_verify.Trace.result_to_string
             (Heimdall_verify.Trace.trace dp (Flow.icmp src dst)))
    | _ ->
        prerr_endline "malformed address";
        exit 1
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace an ICMP flow through the dataplane")
    Term.(const run $ network_arg $ addr 1 "SRC" $ addr 2 "DST")

(* ---------------- observability (shared flags + obs subcommand) ---------------- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the run's spans to $(docv) as JSON lines (one span per line).")

let metrics_flag =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the metrics registry in Prometheus text format (instead of JSON).")

(* Shared by every subcommand that creates a verify engine. *)
let dp_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dp-cache" ] ~docv:"DIR"
        ~doc:
          "Persist computed dataplanes under $(docv) (created on demand) and reuse \
           them across runs.  Entries are keyed by the network's structural digest, \
           so edits invalidate exactly the affected networks.")

(* Drain an Obs context to the terminal (span tree + metrics dump) and,
   when requested, to a JSONL trace file.  Shared by [obs] and [ticket]. *)
let dump_obs ?trace_out ~metrics (obs : Heimdall_obs.Obs.t) =
  let spans = Heimdall_obs.Tracer.flush obs.tracer in
  print_string (Heimdall_obs.Tracer.render_tree spans);
  (match trace_out with
  | Some path ->
      let sink = Heimdall_obs.Sink.file path in
      Heimdall_obs.Tracer.emit sink spans;
      Heimdall_obs.Sink.close sink;
      Printf.printf "wrote %d spans to %s\n" (List.length spans) path
  | None -> ());
  let events = Heimdall_obs.Events.events obs.events in
  if events <> [] then begin
    print_endline "events:";
    List.iter
      (fun e ->
        print_endline
          ("  "
          ^ Heimdall_json.Json.to_string (Heimdall_obs.Events.event_to_json e)))
      events
  end;
  print_endline "metrics:";
  if metrics then print_string (Heimdall_obs.Metrics.to_prometheus obs.metrics)
  else
    print_endline
      (Heimdall_json.Json.to_string ~pretty:true
         (Heimdall_obs.Metrics.to_json obs.metrics))

(* Replay a scenario's issues through the instrumented workflow on a
   shared context: the registry is labeled by scenario (via a scoped
   engine view) and by session (one scoped view per issue), so every
   series on the /metrics page says which run produced it.  Shared by
   [obs] and [serve]. *)
let replay_issues ~engine ~obs ~(sc : Experiments.scenario) issues =
  List.iter
    (fun (issue : Heimdall_msp.Issue.t) ->
      let session_obs =
        Heimdall_obs.Obs.scoped obs [ ("session", issue.Heimdall_msp.Issue.name) ]
      in
      let run =
        Heimdall_msp.Workflow.run_heimdall ~engine ~obs:session_obs
          ~production:sc.Experiments.net ~policies:sc.Experiments.policies ~issue ()
      in
      Printf.printf "%s: %s, %d denied commands\n" issue.Heimdall_msp.Issue.name
        (if run.Heimdall_msp.Workflow.resolved then "resolved" else "NOT resolved")
        run.Heimdall_msp.Workflow.denied)
    issues

let obs_cmd =
  let issue_opt_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ISSUE"
          ~doc:"Issue to replay: vlan, ospf or isp (default: all three).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Engine domain pool for the instrumented run (default: auto).")
  in
  let prometheus_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus-out" ] ~docv:"FILE"
          ~doc:"Also write the Prometheus text exposition to $(docv).")
  in
  let run sc issue_name trace_out metrics domains cache_dir prometheus_out =
    let issues =
      match issue_name with
      | None -> sc.Experiments.issues
      | Some name -> (
          match find_issue sc name with
          | Ok i -> [ i ]
          | Error m ->
              prerr_endline m;
              exit 1)
    in
    let obs = Heimdall_obs.Obs.create () in
    let scoped =
      Heimdall_obs.Obs.scoped obs [ ("scenario", sc.Experiments.scenario_name) ]
    in
    let engine = Heimdall_verify.Engine.create ?domains ~obs:scoped ?cache_dir () in
    replay_issues ~engine ~obs:scoped ~sc issues;
    print_string (Heimdall_verify.Engine.render_stats (Heimdall_verify.Engine.stats engine));
    dump_obs ?trace_out ~metrics obs;
    match prometheus_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Heimdall_obs.Metrics.to_prometheus obs.metrics);
        close_out oc;
        Printf.printf "wrote Prometheus exposition to %s\n" path
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Replay a scenario's issues through the instrumented Heimdall workflow and \
          print the span tree, structured events and metrics")
    Term.(
      const run $ network_arg $ issue_opt_arg $ trace_out_arg $ metrics_flag $ domains_arg
      $ dp_cache_arg $ prometheus_out_arg)

(* ---------------- ticket ---------------- *)

let ticket_cmd =
  let events_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events-out" ] ~docv:"FILE"
          ~doc:"Write the run's structured events to $(docv) as JSON lines.")
  in
  let run ({ Experiments.net; policies; _ } as sc) issue_name trace_out metrics events_out =
    match find_issue sc issue_name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok issue ->
        print_endline (Heimdall_msp.Issue.to_string issue);
        let current = Heimdall_msp.Workflow.run_current ~production:net ~issue in
        print_string (Heimdall_msp.Workflow.run_to_string current);
        let obs =
          if trace_out <> None || metrics || events_out <> None then
            Some (Heimdall_obs.Obs.create ())
          else None
        in
        let heimdall =
          Heimdall_msp.Workflow.run_heimdall ?obs ~production:net ~policies ~issue ()
        in
        print_string (Heimdall_msp.Workflow.run_to_string heimdall);
        Printf.printf "Heimdall overhead: +%.1f s\n"
          (Heimdall_msp.Workflow.total_s heimdall -. Heimdall_msp.Workflow.total_s current);
        (match (events_out, obs) with
        | Some path, Some o ->
            let sink = Heimdall_obs.Sink.file path in
            let events = Heimdall_obs.Events.events o.events in
            Heimdall_obs.Events.emit sink events;
            Heimdall_obs.Sink.close sink;
            Printf.printf "wrote %d events to %s\n" (List.length events) path
        | _ -> ());
        Option.iter (fun o -> dump_obs ?trace_out ~metrics o) obs
  in
  Cmd.v
    (Cmd.info "ticket" ~doc:"Run an issue through both workflows")
    Term.(
      const run $ network_arg $ issue_arg 1 $ trace_out_arg $ metrics_flag
      $ events_out_arg)

(* ---------------- serve (the Watchtower) ---------------- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 9464
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port for the exporter (0 = kernel-assigned).")
  in
  let interval_arg =
    Arg.(
      value & opt float 5.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Drift-monitor check interval.")
  in
  let once_flag =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "CI mode: replay the scenario's issues, run three drift cycles \
             (clean, injected drift, clear), self-scrape every endpoint and \
             exit — non-zero when a required series or drift transition is \
             missing.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Engine domain pool (default: auto).")
  in
  (* The series the /metrics page must carry after a replay + drift
     cycle — the contract [make serve-smoke] holds the exporter to. *)
  let required_series =
    [
      "session_commands";
      "policy_checked";
      "workflow_runs";
      "enforcer_sessions";
      "engine_phase_s";
      "drift_checks";
      "drift_active";
      "exporter_requests";
      "runtime_gc_heap_words";
    ]
  in
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  let run (sc : Experiments.scenario) port interval once domains cache_dir =
    let obs = Heimdall_obs.Obs.create () in
    let scoped =
      Heimdall_obs.Obs.scoped obs [ ("scenario", sc.Experiments.scenario_name) ]
    in
    let engine = Heimdall_verify.Engine.create ?domains ~obs:scoped ?cache_dir () in
    replay_issues ~engine ~obs:scoped ~sc sc.Experiments.issues;
    (* The monitor watches an observed-network cell; in a real deployment
       the thunk would poll devices, here it reads the cell that --once
       (or a chaos driver) perturbs. *)
    let observed = ref sc.Experiments.net in
    let monitor =
      Heimdall_msp.Monitor.create ~engine ~obs:scoped ~expected:sc.Experiments.net
        ~observe:(fun () -> !observed)
        sc.Experiments.policies
    in
    let runtime = Heimdall_obs.Runtime.create obs in
    Heimdall_obs.Runtime.add_sampler runtime
      (Heimdall_verify.Engine.runtime_sampler engine);
    let exporter =
      match
        Heimdall_obs.Exporter.create ~port
          ~health:(Heimdall_msp.Monitor.health monitor)
          obs
      with
      | Ok e -> e
      | Error m ->
          prerr_endline ("heimdall serve: " ^ m);
          exit 1
    in
    let shutdown () =
      Heimdall_obs.Exporter.stop exporter;
      Heimdall_msp.Monitor.stop monitor;
      Heimdall_obs.Runtime.stop runtime;
      Heimdall_verify.Engine.shutdown engine
    in
    if once then begin
      Heimdall_obs.Runtime.sample runtime;
      (* Three drift cycles: baseline, injected config drift, restore.
         The transitions double as a self-test of the monitor. *)
      let clean = Heimdall_msp.Monitor.check monitor in
      let issue = List.hd sc.Experiments.issues in
      observed := issue.Heimdall_msp.Issue.inject sc.Experiments.net;
      let detected = Heimdall_msp.Monitor.check monitor in
      observed := sc.Experiments.net;
      let cleared = Heimdall_msp.Monitor.check monitor in
      Printf.printf "drift cycles: %s -> %s -> %s (injected %s)\n" clean detected
        cleared issue.Heimdall_msp.Issue.name;
      let failures = ref [] in
      let fail m = failures := m :: !failures in
      if (clean, detected, cleared) <> ("clean", "detected", "clear") then
        fail "drift monitor did not report clean -> detected -> clear";
      (match
         Heimdall_enforcer.Audit.verify (Heimdall_msp.Monitor.audit monitor)
       with
      | Ok () -> ()
      | Error m -> fail ("monitor audit chain broken: " ^ m));
      Heimdall_obs.Exporter.start exporter;
      let actual_port = Heimdall_obs.Exporter.port exporter in
      (match Heimdall_obs.Exporter.get ~port:actual_port "/metrics" with
      | Error m -> fail ("scrape /metrics: " ^ m)
      | Ok (code, body) ->
          if code <> 200 then fail (Printf.sprintf "/metrics returned %d" code);
          List.iter
            (fun series ->
              if not (contains body series) then
                fail (Printf.sprintf "/metrics is missing series %s" series))
            required_series);
      (match Heimdall_obs.Exporter.get ~port:actual_port "/healthz" with
      | Error m -> fail ("scrape /healthz: " ^ m)
      | Ok (code, body) ->
          if code <> 200 then
            fail (Printf.sprintf "/healthz returned %d: %s" code body));
      List.iter
        (fun path ->
          match Heimdall_obs.Exporter.get ~port:actual_port path with
          | Ok (200, _) -> ()
          | Ok (code, _) -> fail (Printf.sprintf "%s returned %d" path code)
          | Error m -> fail (Printf.sprintf "scrape %s: %s" path m))
        [ "/metrics.json"; "/spans"; "/events" ];
      shutdown ();
      match List.rev !failures with
      | [] ->
          Printf.printf
            "serve --once: all endpoints up, %d required series present, \
             drift transitions ok\n"
            (List.length required_series)
      | failures ->
          List.iter (fun m -> prerr_endline ("serve --once: FAIL — " ^ m)) failures;
          exit 1
    end
    else begin
      Heimdall_obs.Runtime.start runtime;
      Heimdall_msp.Monitor.start ~interval_s:interval monitor;
      Heimdall_obs.Exporter.start exporter;
      Printf.printf
        "watchtower serving on http://127.0.0.1:%d (endpoints: /metrics, \
         /metrics.json, /healthz, /spans, /events); drift check every %gs; \
         Ctrl-C to stop\n\
         %!"
        (Heimdall_obs.Exporter.port exporter)
        interval;
      while true do
        Thread.delay 3600.0
      done
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "The Watchtower: replay a scenario into a live metrics registry, then \
          serve /metrics, /metrics.json, /healthz, /spans and /events over HTTP \
          while a drift monitor re-verifies the network on every digest change")
    Term.(
      const run $ network_arg $ port_arg $ interval_arg $ once_flag $ domains_arg
      $ dp_cache_arg)

(* ---------------- privilege ---------------- *)

let privilege_cmd =
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the JSON front-end format.")
  in
  let run ({ Experiments.net; _ } as sc) issue_name json =
    match find_issue sc issue_name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok issue ->
        let broken = issue.Heimdall_msp.Issue.inject net in
        let slice =
          Heimdall_twin.Twin.slice_nodes ~production:broken
            ~endpoints:issue.Heimdall_msp.Issue.ticket.endpoints ()
        in
        let spec =
          Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice
            issue.Heimdall_msp.Issue.ticket
        in
        Printf.printf "twin slice: %s\n\n" (String.concat ", " slice);
        if json then print_endline (Heimdall_privilege.Json_frontend.render ~pretty:true spec)
        else print_string (Heimdall_privilege.Dsl.render spec)
  in
  Cmd.v
    (Cmd.info "privilege" ~doc:"Print the generated Privilege_msp for an issue")
    Term.(const run $ network_arg $ issue_arg 1 $ json_flag)

(* ---------------- sweep ---------------- *)

let sweep_cmd =
  let run { Experiments.net; policies; _ } =
    let summaries = Metrics.sweep_all ~production:net ~policies () in
    print_string
      (Experiments.render_sweep ~title:"bring down each interface; All vs Neighbor vs Heimdall"
         summaries)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Feasibility / attack-surface sweep (Figures 8 and 9)")
    Term.(const run $ network_arg)

(* ---------------- lint / analyze (shared plumbing) ---------------- *)

let lint_json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the findings as a JSON report.")

let lint_severity_arg =
  let sev_conv =
    Arg.enum
      [
        ("error", Heimdall_lint.Diagnostic.Error);
        ("warning", Heimdall_lint.Diagnostic.Warning);
        ("info", Heimdall_lint.Diagnostic.Info);
      ]
  in
  Arg.(
    value
    & opt sev_conv Heimdall_lint.Diagnostic.Info
    & info [ "severity" ] ~docv:"LEVEL"
        ~doc:"Only report findings at or above $(docv): error, warning or info.")

let lint_domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Engine domain pool for the per-device/per-link fan-out (default: auto).")

let lint_rules_flag =
  Arg.(
    value & flag
    & info [ "rules"; "list-rules" ] ~doc:"List every lint rule code and exit.")

let print_lint_rules () =
  let open Heimdall_lint in
  Printf.printf "%-8s %-10s %-8s %s\n" "CODE" "FAMILY" "SEVERITY" "SUMMARY";
  List.iter
    (fun (r : Lint.rule) ->
      Printf.printf "%-8s %-10s %-8s %s\n" r.code
        (Lint.family_to_string r.family)
        (Diagnostic.severity_to_string r.severity)
        r.summary)
    Lint.rules;
  let families =
    List.sort_uniq compare (List.map (fun (r : Lint.rule) -> r.family) Lint.rules)
  in
  Printf.printf "%d rules in %d families\n" (List.length Lint.rules)
    (List.length families)

let lint_target_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"NETWORK"
        ~doc:
          "Evaluation network (enterprise or university) or a directory in the \
           loader layout (see the export subcommand).")

(* A scenario name analyses the network plus the privilege spec Heimdall
   would generate for each of its issues; a loader directory analyses
   just the network on disk. *)
let resolve_lint_target target =
  match Experiments.scenario_of_name target with
  | Some sc -> (sc.Experiments.scenario_name, sc.Experiments.net, sc.Experiments.issues)
  | None when Sys.file_exists target && Sys.is_directory target -> (
      match Loader.load_dir target with
      | Ok net -> (target, net, [])
      | Error e ->
          prerr_endline (Loader.error_to_string e);
          exit 124)
  | None -> (
      match network_of_string target with
      | Error m ->
          prerr_endline ("heimdall: " ^ m);
          exit 124
      | Ok _ -> assert false)

(* Render (and optionally exit non-zero) through the shared severity
   gate: the exit decision is made on the filtered report, so a run that
   prints nothing can never fail. *)
let print_report_and_exit ~name ~json ~header findings_filtered ~fail =
  let open Heimdall_lint in
  if json then
    print_endline
      (Heimdall_json.Json.to_string ~pretty:true
         (match Lint.to_json findings_filtered with
         | Heimdall_json.Json.Obj fields ->
             Heimdall_json.Json.Obj
               (("network", Heimdall_json.Json.String name) :: fields)
         | j -> j))
  else begin
    print_string header;
    print_string (Lint.render findings_filtered)
  end;
  if fail then exit 1

(* ---------------- lint ---------------- *)

let lint_cmd =
  let open Heimdall_lint in
  let run target json severity domains rules cache_dir =
    match (rules, target) with
    | true, _ -> print_lint_rules ()
    | false, None ->
        prerr_endline "heimdall: required argument NETWORK is missing (or pass --rules)";
        exit 124
    | false, Some target ->
        let name, net, issues = resolve_lint_target target in
        let engine = Heimdall_verify.Engine.create ?domains ?cache_dir () in
        let config_findings = Lint.check_network ~engine net in
        (* Also lint the privilege spec Heimdall would generate for each of
           the scenario's issues — the third analyzer family. *)
        let priv_findings =
          List.concat_map
            (fun (issue : Heimdall_msp.Issue.t) ->
              let broken = issue.inject net in
              let slice =
                Heimdall_twin.Twin.slice_nodes ~production:broken
                  ~endpoints:issue.ticket.endpoints ()
              in
              let spec = Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice issue.ticket in
              Lint.check_privilege ~network:broken ~label:("ticket:" ^ issue.name) spec)
            issues
        in
        let findings, fail =
          Lint.apply_severity ~min_severity:severity
            (List.sort Diagnostic.compare (config_findings @ priv_findings))
        in
        let header =
          Printf.sprintf "lint %s: %d devices, %d privilege specs\n" name
            (List.length (Network.node_names net))
            (List.length issues)
        in
        print_report_and_exit ~name ~json ~header findings ~fail
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a network's configs, ACLs and generated privilege specs; \
          exit non-zero on error-severity findings")
    Term.(
      const run $ lint_target_arg $ lint_json_flag $ lint_severity_arg $ lint_domains_arg
      $ lint_rules_flag $ dp_cache_arg)

(* ---------------- analyze ---------------- *)

(* Seed a deterministic union-shadow defect into the first ACL of the
   network: two /17 permits whose union exactly covers a later /16 deny.
   No pairwise check can see it — only the packet-set algebra (ACL004) —
   which makes it the CI self-test that the semantic pass is alive. *)
let seed_acl_defect net =
  let victim =
    List.find_map
      (fun (node, (cfg : Heimdall_config.Ast.t)) ->
        match cfg.acls with a :: _ -> Some (node, a.Acl.name) | [] -> None)
      (Network.configs net)
  in
  match victim with
  | None ->
      prerr_endline "heimdall: --seed-defect needs a network with at least one ACL";
      exit 124
  | Some (node, acl_name) ->
      let rule seq action src =
        Acl.rule ~seq ~proto:(Acl.Proto Flow.Tcp) action (Prefix.of_string src)
          Prefix.any
      in
      let cfg = Option.get (Network.config node net) in
      let acl = Option.get (Heimdall_config.Ast.find_acl acl_name cfg) in
      let acl =
        acl
        |> Acl.add_rule (rule 1 Acl.Permit "10.250.0.0/17")
        |> Acl.add_rule (rule 2 Acl.Permit "10.250.128.0/17")
        |> Acl.add_rule (rule 3 Acl.Deny "10.250.0.0/16")
      in
      let net =
        Network.with_config node (Heimdall_config.Ast.update_acl acl cfg) net
      in
      (net, node, acl_name)

(* Exact post-apply ACL delta of a replayed session: the union, over
   every (device, ACL) pair, of the packets the edits opened or closed.
   This is what the static plan analysis must over-approximate. *)
let exact_session_delta before after =
  let open Heimdall_config in
  List.fold_left
    (fun acc node ->
      let acls net =
        match Network.config node net with
        | Some (cfg : Ast.t) -> cfg.acls
        | None -> []
      in
      let names =
        List.sort_uniq String.compare
          (List.map (fun (a : Acl.t) -> a.Acl.name) (acls before @ acls after))
      in
      List.fold_left
        (fun acc name ->
          let find net =
            match Network.config node net with
            | Some cfg -> Option.value (Ast.find_acl name cfg) ~default:(Acl.empty name)
            | None -> Acl.empty name
          in
          let d =
            Heimdall_sem.Acl_sem.diff ~before:(find before) ~after:(find after)
          in
          Packet_set.union acc
            (Packet_set.union d.Heimdall_sem.Acl_sem.newly_permitted
               d.Heimdall_sem.Acl_sem.newly_denied))
        acc names)
    Packet_set.empty
    (Network.node_names after)

let analyze_cmd =
  let open Heimdall_lint in
  let seed_defect_flag =
    Arg.(
      value & flag
      & info [ "seed-defect" ]
          ~doc:
            "Self-test: inject a union-shadow ACL defect that only the packet-set \
             algebra can catch, then analyse.  The run must report ACL004.")
  in
  let plan_flag =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:
            "Also run the static plan-effect analysis (PLAN001-PLAN005) on every \
             ticket's fix script, and check its soundness against twin replay: the \
             predicted packet-set delta must contain the exact post-apply ACL diff, \
             and the static privilege verdict must agree with the monitor (exit \
             non-zero otherwise).")
  in
  let run target json severity domains rules seed_defect plan cache_dir =
    match (rules, target) with
    | true, _ -> print_lint_rules ()
    | false, None ->
        prerr_endline "heimdall: required argument NETWORK is missing (or pass --rules)";
        exit 124
    | false, Some target ->
        let name, net, issues = resolve_lint_target target in
        let net, seeded =
          if seed_defect then
            let net, node, acl = seed_acl_defect net in
            (net, Some (node, acl))
          else (net, None)
        in
        let engine = Heimdall_verify.Engine.create ?domains ?cache_dir () in
        let net_findings = Lint.check_network ~engine net in
        (* Per issue: lint the generated spec, then replay the scripted fix
           in a twin session and ask the over-grant analyzer (PRV004) what
           privilege the grant carried that the fix never exercised. *)
        let issue_findings =
          List.concat_map
            (fun (issue : Heimdall_msp.Issue.t) ->
              let label = "ticket:" ^ issue.name in
              let broken = issue.inject net in
              let slice =
                Heimdall_twin.Twin.slice_nodes ~production:broken
                  ~endpoints:issue.ticket.endpoints ()
              in
              let spec = Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice issue.ticket in
              let spec_findings = Lint.check_privilege ~network:broken ~label spec in
              let em =
                Heimdall_twin.Twin.build ~production:broken
                  ~endpoints:issue.ticket.endpoints ()
              in
              let session = Heimdall_twin.Twin.open_session ~privilege:spec em in
              ignore (Heimdall_twin.Session.exec_many session issue.fix_commands);
              let changes =
                Heimdall_twin.Emulation.changes (Heimdall_twin.Session.emulation session)
              in
              let usage_findings =
                Lint.check_privilege_usage ~label ~network:broken ~spec ~changes ()
              in
              spec_findings @ usage_findings)
            issues
        in
        (* With --plan: run the static plan-effect analysis per ticket,
           then use twin replay as the soundness oracle — the static
           answer must over-approximate the exact one, never undercut
           it. *)
        let plan_findings, plan_failures =
          if not plan then ([], [])
          else
            let policies =
              match Experiments.scenario_of_name target with
              | Some sc -> sc.Experiments.policies
              | None -> []
            in
            List.fold_left
              (fun (findings_acc, fail_acc) (issue : Heimdall_msp.Issue.t) ->
                let label = "ticket:" ^ issue.name in
                let broken = issue.inject net in
                let slice =
                  Heimdall_twin.Twin.slice_nodes ~production:broken
                    ~endpoints:issue.ticket.endpoints ()
                in
                let spec =
                  Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice issue.ticket
                in
                let ticket =
                  {
                    Plan_lint.label;
                    spec;
                    scope = slice;
                    commands = issue.fix_commands;
                  }
                in
                let plan_diags =
                  Lint.check_plans ~engine ~network:broken ~policies [ ticket ]
                in
                let script =
                  Heimdall_sem.Plan_sem.script_of_commands issue.fix_commands
                in
                let analysis =
                  Heimdall_sem.Plan_sem.analyze ~network:broken
                    script.Heimdall_sem.Plan_sem.script_changes
                in
                let proof =
                  Heimdall_sem.Plan_sem.prove ~spec
                    (Heimdall_sem.Plan_sem.plan_requirements ~network:broken script)
                in
                let em =
                  Heimdall_twin.Twin.build ~production:broken
                    ~endpoints:issue.ticket.endpoints ()
                in
                let session = Heimdall_twin.Twin.open_session ~privilege:spec em in
                ignore (Heimdall_twin.Session.exec_many session issue.fix_commands);
                let changes =
                  Heimdall_twin.Emulation.changes
                    (Heimdall_twin.Session.emulation session)
                in
                let exact =
                  exact_session_delta
                    (Heimdall_twin.Emulation.baseline em)
                    (Heimdall_twin.Emulation.network em)
                in
                let fails = [] in
                let fails =
                  if Packet_set.subset exact analysis.Heimdall_sem.Plan_sem.delta
                  then fails
                  else
                    Printf.sprintf
                      "%s: predicted delta does NOT contain the exact post-apply ACL diff"
                      label
                    :: fails
                in
                let denied = Heimdall_twin.Session.denied_count session in
                let priv_rej =
                  Heimdall_enforcer.Verifier.privilege_rejections ~privilege:spec
                    changes
                in
                let fails =
                  if
                    proof.Heimdall_sem.Plan_sem.sufficient
                    && (denied > 0 || priv_rej <> [])
                  then
                    Printf.sprintf
                      "%s: statically sufficient, but replay denied %d command(s) and rejected %d change(s)"
                      label denied (List.length priv_rej)
                    :: fails
                  else fails
                in
                (findings_acc @ plan_diags, fail_acc @ List.rev fails))
              ([], []) issues
        in
        let findings, fail =
          Lint.apply_severity ~min_severity:severity
            (List.sort Diagnostic.compare
               (net_findings @ issue_findings @ plan_findings))
        in
        let header =
          let acl_count =
            List.fold_left
              (fun n (_, (cfg : Heimdall_config.Ast.t)) -> n + List.length cfg.acls)
              0 (Network.configs net)
          in
          Printf.sprintf "analyze %s: %d devices, %d ACLs, %d tickets%s\n" name
            (List.length (Network.node_names net))
            acl_count (List.length issues)
            (match seeded with
            | Some (node, acl) ->
                Printf.sprintf " [seeded union-shadow defect into %s/%s]" node acl
            | None -> "")
        in
        (* Soundness verdicts go to stderr so --json output stays a
           single clean report. *)
        List.iter (fun m -> prerr_endline ("plan soundness: FAIL — " ^ m)) plan_failures;
        if plan && plan_failures = [] then
          prerr_endline
            (Printf.sprintf
               "plan soundness: %d ticket(s) checked — predicted delta contains the \
                exact diff, privilege verdict agrees with replay"
               (List.length issues));
        print_report_and_exit ~name ~json ~header findings
          ~fail:(fail || plan_failures <> [])
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Semantic static analysis: exact packet-set ACL checks (ACL004/ACL005), \
          network-wide cross-device checks (NET001-NET006), privilege over-grant \
          detection (PRV004) and, with --plan, static plan-effect analysis \
          (PLAN001-PLAN005) with a replay soundness check; exit non-zero on \
          error-severity findings")
    Term.(
      const run $ lint_target_arg $ lint_json_flag $ lint_severity_arg $ lint_domains_arg
      $ lint_rules_flag $ seed_defect_flag $ plan_flag $ dp_cache_arg)

(* ---------------- policy ---------------- *)

(* Resolve a policy-tree source: a .pol/.json file on disk, a generated
   fleet (whose tree is emitted alongside its closed-form policies), or
   a paper scenario (tree mined from the flat spec).  Scenario and fleet
   targets also carry the flat policies, issues and network — enabling
   the POL004 refinement and POL005 ticket cross-checks; file targets
   get structural analysis only. *)
let resolve_policy_target target =
  let open Heimdall_poltree in
  let from_file path =
    let contents =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let parsed =
      if Filename.check_suffix path ".json" then
        match Heimdall_json.Json.of_string_opt contents with
        | None -> Error "invalid JSON"
        | Some j -> Poltree.of_json j
      else Parser.parse_result contents
    in
    match parsed with
    | Ok t -> (path, t, [], [], None)
    | Error m ->
        prerr_endline (Printf.sprintf "heimdall: %s: %s" path m);
        exit 124
  in
  if Sys.file_exists target && not (Sys.is_directory target) then from_file target
  else if String.length target > 6 && String.sub target 0 6 = "fleet:" then
    match Fleetgen.spec_of_string target with
    | Error m ->
        prerr_endline ("heimdall: bad fleet spec: " ^ m);
        exit 124
    | Ok params ->
        let fleet = Fleetgen.generate params in
        ( fleet.Fleetgen.name,
          fleet.Fleetgen.poltree,
          fleet.Fleetgen.policies,
          fleet.Fleetgen.issues,
          Some fleet.Fleetgen.net )
  else
    match Experiments.scenario_of_name target with
    | None ->
        prerr_endline
          (Printf.sprintf
             "heimdall: unknown policy target %S (expected a scenario name, a fleet \
              spec or a .pol/.json file)"
             target);
        exit 124
    | Some sc ->
        let tree =
          Mine.of_policies
            ~segs:(Mine.segs_of_network sc.Experiments.net)
            sc.Experiments.policies
        in
        ( sc.Experiments.scenario_name,
          tree,
          sc.Experiments.policies,
          sc.Experiments.issues,
          Some sc.Experiments.net )

(* The same ticket construction the analyze/lint paths use, so POL005
   judges exactly the privilege specs Heimdall would grant. *)
let poltree_tickets net issues =
  List.map
    (fun (issue : Heimdall_msp.Issue.t) ->
      let broken = issue.inject net in
      let slice =
        Heimdall_twin.Twin.slice_nodes ~production:broken
          ~endpoints:issue.ticket.endpoints ()
      in
      let spec = Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice issue.ticket in
      {
        Heimdall_lint.Plan_lint.label = "ticket:" ^ issue.name;
        spec;
        scope = slice;
        commands = issue.fix_commands;
      })
    issues

let policy_cmd =
  let open Heimdall_lint in
  let open Heimdall_poltree in
  let show_flag =
    Arg.(
      value & flag
      & info [ "show" ] ~doc:"Print the tree in canonical text form and exit.")
  in
  let compile_flag =
    Arg.(
      value & flag
      & info [ "compile" ]
          ~doc:"Print the compiled form (per-leaf permit sets and waypoints) and exit.")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"OTHER"
          ~doc:
            "Compile both trees and report their exact semantic difference with \
             witness packets; exit non-zero when they differ.")
  in
  let seed_conv = Arg.enum [ ("pol001", `Pol001); ("pol004", `Pol004) ] in
  let seed_arg =
    Arg.(
      value
      & opt (some seed_conv) None
      & info [ "seed-defect" ] ~docv:"RULE"
          ~doc:
            "Self-test: inject a defect only the named analysis can catch (pol001: a \
             root deny! contradicting a descendant allow; pol004: a flipped leaf \
             allow breaking refinement), then analyse.  The run must exit non-zero.")
  in
  let run target json severity domains rules show compiled diff_target seed cache_dir =
    match (rules, target) with
    | true, _ -> print_lint_rules ()
    | false, None ->
        prerr_endline "heimdall: required argument TARGET is missing (or pass --rules)";
        exit 124
    | false, Some target -> (
        let name, tree, policies, issues, network = resolve_policy_target target in
        let tree, seeded =
          match seed with
          | None -> (tree, None)
          | Some kind -> (
              let seeder, code =
                match kind with
                | `Pol001 -> (Analysis.seed_pol001, "POL001")
                | `Pol004 -> (Analysis.seed_pol004, "POL004")
              in
              match seeder tree with
              | Ok t -> (t, Some code)
              | Error m ->
                  prerr_endline ("heimdall: --seed-defect: " ^ m);
                  exit 124)
        in
        if show then print_string (Poltree.render tree)
        else
          match Compile.compile tree with
          | Error m ->
              prerr_endline ("heimdall: compile: " ^ m);
              exit 124
          | Ok c -> (
              match diff_target with
              | Some other -> (
                  let other_name, other_tree, _, _, _ = resolve_policy_target other in
                  match Compile.compile other_tree with
                  | Error m ->
                      prerr_endline
                        (Printf.sprintf "heimdall: compile %s: %s" other_name m);
                      exit 124
                  | Ok oc ->
                      let d = Compile.diff c oc in
                      if Compile.diff_is_empty d then
                        Printf.printf "%s and %s are semantically identical\n" name
                          other_name
                      else begin
                        print_string (Compile.render_diff d);
                        exit 1
                      end)
              | None ->
                  if compiled then begin
                    Printf.printf
                      "compiled %s: %d nodes (%d leaves), %d permit cubes, %d \
                       waypoint sets\n"
                      name
                      (List.length c.Compile.nodes)
                      (List.length c.Compile.leaves)
                      (Packet_set.cube_count c.Compile.permit)
                      (List.length c.Compile.requires);
                    List.iter
                      (fun (l : Compile.leaf) ->
                        Printf.printf "  %-40s permit %4d cubes%s\n" l.Compile.leaf_path
                          (Packet_set.cube_count l.Compile.leaf_permit)
                          (match l.Compile.leaf_requires with
                          | [] -> ""
                          | ws ->
                              "  via "
                              ^ String.concat ", " (List.map fst ws)))
                      c.Compile.leaves
                  end
                  else
                    let engine = Heimdall_verify.Engine.create ?domains ?cache_dir () in
                    let tickets =
                      match network with
                      | Some net -> poltree_tickets net issues
                      | None -> []
                    in
                    let findings =
                      Analysis.check ~engine ~policies ~tickets ?network c
                    in
                    let findings, fail =
                      Lint.apply_severity ~min_severity:severity findings
                    in
                    let header =
                      Printf.sprintf
                        "policy %s: %d nodes, %d rules, %d leaves, %d flat policies, \
                         %d tickets%s\n"
                        name
                        (List.length c.Compile.nodes)
                        (Poltree.rule_count tree)
                        (List.length c.Compile.leaves)
                        (List.length policies) (List.length tickets)
                        (match seeded with
                        | Some code -> Printf.sprintf " [seeded %s defect]" code
                        | None -> "")
                    in
                    print_report_and_exit ~name ~json ~header findings ~fail))
  in
  let target_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "Policy-tree source: a scenario name (enterprise, university), a fleet \
             spec (fleet:fat-tree:k=4), or a .pol/.json tree file.")
  in
  Cmd.v
    (Cmd.info "policy"
       ~doc:
         "Parse, compile and statically analyse a hierarchical policy tree \
          (POL001-POL006): exact child-override semantics, refinement against the \
          flat policy spec with witness packets, and ticket-privilege cross-checks; \
          exit non-zero on error-severity findings")
    Term.(
      const run $ target_arg $ lint_json_flag $ lint_severity_arg $ lint_domains_arg
      $ lint_rules_flag $ show_flag $ compile_flag $ diff_arg $ seed_arg $ dp_cache_arg)

(* ---------------- conflicts ---------------- *)

let conflicts_cmd =
  let seed_overlap_flag =
    Arg.(
      value & flag
      & info [ "seed-overlap" ]
          ~doc:
            "Self-test: resubmit the first ticket's plan as a synthetic concurrent \
             ticket.  The run must report plan.conflict and exit non-zero.")
  in
  let run (sc : Experiments.scenario) seed_overlap =
    let open Heimdall_enforcer in
    let tickets =
      List.map
        (fun (issue : Heimdall_msp.Issue.t) ->
          let script = Heimdall_sem.Plan_sem.script_of_commands issue.fix_commands in
          {
            Mediator.label = issue.name;
            changes = script.Heimdall_sem.Plan_sem.script_changes;
          })
        sc.Experiments.issues
    in
    let tickets =
      if seed_overlap then
        match tickets with
        | first :: _ ->
            tickets @ [ { first with Mediator.label = "overlap-" ^ first.label } ]
        | [] ->
            prerr_endline "heimdall: --seed-overlap needs at least one ticket";
            exit 124
      else tickets
    in
    let decision = Mediator.mediate ~network:sc.Experiments.net tickets in
    List.iter
      (fun ((t : Mediator.ticket), c) ->
        Printf.printf "%s (holding %s)\n" (Mediator.conflict_to_string c) t.label)
      decision.Mediator.held;
    Printf.printf "conflicts %s: %d ticket(s), %d admitted, %d held\n"
      sc.Experiments.scenario_name (List.length tickets)
      (List.length decision.Mediator.admitted)
      (List.length decision.Mediator.held);
    if decision.Mediator.held <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "conflicts"
       ~doc:
         "Statically mediate the scenario's tickets as concurrent in-flight plans: \
          extract each fix script's changes without executing anything, intersect \
          footprints and predicted packet-set deltas, and hold the later of any \
          colliding pair; exit non-zero when a ticket is held")
    Term.(const run $ network_arg $ seed_overlap_flag)

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "table1, fig7, fig8, fig9, ablation-verify, ablation-slicer, ablation-audit or containment.")
  in
  let run name =
    match name with
    | "table1" -> print_string (Experiments.render_table1 (Experiments.table1 ()))
    | "fig7" ->
        let cells = Experiments.fig7 () in
        print_string (Experiments.render_fig7 cells);
        List.iter
          (fun (i, o) -> Printf.printf "overhead %s: +%.1f s\n" i o)
          (Experiments.fig7_overhead cells)
    | "fig8" ->
        print_string
          (Experiments.render_sweep ~title:"Figure 8 (enterprise)" (Experiments.fig8 ()))
    | "fig9" ->
        print_string
          (Experiments.render_sweep ~title:"Figure 9 (university)" (Experiments.fig9 ()))
    | "ablation-verify" ->
        print_string (Experiments.render_ablation_verify (Experiments.ablation_verify ()))
    | "ablation-slicer" ->
        print_string (Experiments.render_ablation_slicer (Experiments.ablation_slicer ()))
    | "ablation-audit" ->
        print_string (Experiments.render_ablation_audit (Experiments.ablation_audit ()))
    | "containment" ->
        print_string (Experiments.render_containment (Experiments.attack_containment ()))
    | other ->
        Printf.eprintf "unknown experiment %S\n" other;
        exit 1
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Print a paper artifact") Term.(const run $ name_arg)

(* ---------------- audit ---------------- *)

let audit_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Exported audit trail (JSON lines).")
  in
  let run file =
    let text =
      match open_in_bin file with
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
      | exception Sys_error m ->
          prerr_endline m;
          exit 1
    in
    match Heimdall_enforcer.Audit.import text with
    | Ok audit ->
        Printf.printf "audit trail verifies: %d records, head %s\n"
          (Heimdall_enforcer.Audit.length audit)
          (Heimdall_enforcer.Audit.head audit);
        print_endline (Heimdall_enforcer.Audit.to_string audit)
    | Error m ->
        Printf.eprintf "AUDIT TRAIL REJECTED: %s\n" m;
        exit 1
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Verify an exported audit trail (tamper check + listing)")
    Term.(const run $ file_arg)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let issue_opt_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ISSUE"
          ~doc:"Issue to run under faults: vlan, ospf or isp (default: all three).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Fault-plan seed; the same seed reproduces the same run bit for bit.")
  in
  let max_attempts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-attempts" ] ~docv:"K"
          ~doc:"Per-step retry budget for flaky commands and the transactional apply.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Engine domain pool (default: auto; verdicts do not depend on it).")
  in
  let run sc issue_name seed max_attempts trace_out metrics domains cache_dir =
    let issues =
      match issue_name with
      | None -> sc.Experiments.issues
      | Some name -> (
          match find_issue sc name with
          | Ok i -> [ i ]
          | Error m ->
              prerr_endline m;
              exit 1)
    in
    let obs =
      if trace_out <> None || metrics then Some (Heimdall_obs.Obs.create ())
      else None
    in
    let engine = Heimdall_verify.Engine.create ?domains ?obs ?cache_dir () in
    let results =
      List.map
        (fun issue -> Chaos.run ~engine ?max_attempts ~scenario:sc ~issue ~seed ())
        issues
    in
    List.iter (fun r -> print_string (Chaos.render r)) results;
    Option.iter (fun o -> dump_obs ?trace_out ~metrics o) obs;
    if not (List.for_all Chaos.passed results) then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run an issue through the Heimdall workflow under a seeded fault plan \
          (flaky devices, partial applies, link flaps, crashes, an enclave restart) \
          and check that enforcement recovers; exit non-zero if any run fails")
    Term.(
      const run $ network_arg $ issue_opt_arg $ seed_arg $ max_attempts_arg
      $ trace_out_arg $ metrics_flag $ domains_arg $ dp_cache_arg)

(* ---------------- scale ---------------- *)

(* Fleet-scale end-to-end: generate a seeded fleet, then run the whole
   lint → twin → verify → schedule → audit pipeline over it, gating on
   determinism (regenerate + re-verify byte-identical), lint errors,
   policy violations, unresolved issues and cross-domain-count verdict
   drift.  Exit non-zero on any failure so CI can use it as a smoke. *)
let scale_cmd =
  let shape_arg =
    Arg.(
      value
      & opt string "fat-tree"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:"Fleet shape: fat-tree, leaf-spine or multi-campus.")
  in
  let dim name doc =
    Arg.(
      value
      & opt (some int) None
      & info [ name ] ~docv:"N" ~doc)
  in
  let k_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "arity" ] ~docv:"N" ~doc:"Fat-tree arity (even, 4-32).")
  in
  let spines_arg = dim "spines" "Leaf-spine: number of spines." in
  let leaves_arg = dim "leaves" "Leaf-spine: number of leaves." in
  let campuses_arg = dim "campuses" "Multi-campus: number of campuses." in
  let buildings_arg = dim "buildings" "Multi-campus: access routers per campus." in
  let hosts_arg = dim "hosts" "Hosts attached per edge subnet (default 2)." in
  let policies_arg = dim "policies" "Closed-form policies per edge subnet (default 2)." in
  let mode_arg =
    Arg.(
      value
      & opt string "closed"
      & info [ "policy-mode" ] ~docv:"MODE"
          ~doc:"Policy source: closed (closed-form intents) or mined (spec miner).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Issue-placement seed; topology and configs do not depend on it.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:
            "Full fleet spec (e.g. fat-tree:k=8:seed=7); overrides the \
             individual shape flags.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Engine domain pool for the N-domain leg of the determinism check \
             (default: auto, at least 2).")
  in
  let skip_issues_flag =
    Arg.(
      value & flag
      & info [ "no-issues" ]
          ~doc:"Skip the per-issue workflow runs (generation + verification only).")
  in
  let run shape k spines leaves campuses buildings hosts policies mode seed spec
      domains cache_dir skip_issues =
    let spec =
      match spec with
      | Some s -> s
      | None ->
          let kv name = function
            | None -> []
            | Some v -> [ Printf.sprintf "%s=%d" name v ]
          in
          String.concat ":"
            ((shape :: kv "k" k)
            @ kv "spines" spines @ kv "leaves" leaves @ kv "campuses" campuses
            @ kv "buildings" buildings @ kv "hosts" hosts @ kv "policies" policies
            @ [ "mode=" ^ mode; "seed=" ^ string_of_int seed ])
    in
    let params =
      match Heimdall_scenarios.Fleetgen.spec_of_string spec with
      | Ok p -> p
      | Error m ->
          prerr_endline ("heimdall: bad fleet spec: " ^ m);
          exit 124
    in
    let failed = ref false in
    let gate name ok =
      Printf.printf "%-42s %s\n" name (if ok then "ok" else "FAIL");
      if not ok then failed := true
    in
    let open Heimdall_scenarios in
    let fleet, gen_s =
      Heimdall_msp.Timing.elapsed (fun () -> Fleetgen.generate params)
    in
    Printf.printf "fleet %s\n" fleet.Fleetgen.name;
    Printf.printf "devices: %d  links: %d  policies: %d  config lines: %d\n"
      (Fleetgen.device_count fleet) (Fleetgen.link_count fleet)
      (List.length fleet.Fleetgen.policies)
      (Network.total_config_lines fleet.Fleetgen.net);
    Printf.printf "generation: %.3f s\n" gen_s;
    (* Determinism: a second generation from the same params must agree
       byte for byte — structural digest, rendered configs, policies. *)
    let fleet2 = Fleetgen.generate params in
    let digest f = Digest.to_hex (Network.digest f.Fleetgen.net) in
    gate "deterministic regeneration (digest)" (digest fleet = digest fleet2);
    gate "deterministic regeneration (policies)"
      (List.equal Heimdall_verify.Policy.equal fleet.Fleetgen.policies
         fleet2.Fleetgen.policies);
    (match Network.validate fleet.Fleetgen.net with
    | Ok () -> gate "network validation" true
    | Error e ->
        prerr_endline ("  " ^ e);
        gate "network validation" false);
    let n_domains =
      match domains with
      | Some n -> max 1 n
      | None -> max 2 (Heimdall_verify.Engine.default_domains ())
    in
    let engine1 = Heimdall_verify.Engine.create ~domains:1 ?cache_dir () in
    let engine_n = Heimdall_verify.Engine.create ~domains:n_domains () in
    (* Lint: only error-severity findings gate (warnings like a terminal
       permit-any are part of the generated enterprise idiom). *)
    let findings, lint_s =
      Heimdall_msp.Timing.elapsed (fun () ->
          Heimdall_lint.Lint.check_network ~engine:engine1 fleet.Fleetgen.net)
    in
    let errors =
      List.filter
        (fun (d : Heimdall_lint.Diagnostic.t) ->
          d.severity = Heimdall_lint.Diagnostic.Error)
        findings
    in
    List.iter
      (fun d -> prerr_endline ("  " ^ Heimdall_lint.Diagnostic.to_string d))
      errors;
    Printf.printf "lint: %d findings, %d errors (%.3f s)\n" (List.length findings)
      (List.length errors) lint_s;
    gate "lint clean (no error severity)" (errors = []);
    (* Verify every policy on 1 domain and on N domains; the verdicts —
       not just the counts — must be byte-identical. *)
    let dp1, dp_s =
      Heimdall_msp.Timing.elapsed (fun () ->
          Heimdall_verify.Engine.dataplane engine1 fleet.Fleetgen.net)
    in
    let report_fingerprint (r : Heimdall_verify.Policy.report) =
      (r.total,
       List.map
         (fun (p, reason) -> (Heimdall_verify.Policy.to_string p, reason))
         r.violations)
    in
    let report1, check_s =
      Heimdall_msp.Timing.elapsed (fun () ->
          Heimdall_verify.Policy.check_all ~engine:engine1 dp1
            fleet.Fleetgen.policies)
    in
    let dp_n = Heimdall_verify.Engine.dataplane engine_n fleet.Fleetgen.net in
    let report_n =
      Heimdall_verify.Policy.check_all ~engine:engine_n dp_n
        fleet.Fleetgen.policies
    in
    List.iter
      (fun (p, reason) ->
        prerr_endline
          ("  violated: " ^ Heimdall_verify.Policy.to_string p ^ " — " ^ reason))
      report1.Heimdall_verify.Policy.violations;
    Printf.printf "verify: %d policies, %d violations (dataplane %.3f s, check %.3f s)\n"
      report1.Heimdall_verify.Policy.total
      (List.length report1.Heimdall_verify.Policy.violations)
      dp_s check_s;
    gate "zero policy violations"
      (report1.Heimdall_verify.Policy.violations = []);
    gate
      (Printf.sprintf "verdicts identical at 1 vs %d domains" n_domains)
      (report_fingerprint report1 = report_fingerprint report_n);
    (* Every injected issue through the full pipeline: privilege
       generation, twin session, verify, schedule, apply, audit. *)
    if not skip_issues then
      List.iter
        (fun (issue : Heimdall_msp.Issue.t) ->
          let run, wf_s =
            Heimdall_msp.Timing.elapsed (fun () ->
                Heimdall_msp.Workflow.run_heimdall ~engine:engine_n
                  ~production:fleet.Fleetgen.net
                  ~policies:fleet.Fleetgen.policies ~issue ())
          in
          Printf.printf "issue %-10s %s, %d denied (%.3f s)\n"
            issue.Heimdall_msp.Issue.name
            (if run.Heimdall_msp.Workflow.resolved then "resolved" else "NOT resolved")
            run.Heimdall_msp.Workflow.denied wf_s;
          gate
            (Printf.sprintf "issue %s resolved, nothing denied"
               issue.Heimdall_msp.Issue.name)
            (run.Heimdall_msp.Workflow.resolved
            && run.Heimdall_msp.Workflow.denied = 0))
        fleet.Fleetgen.issues;
    Heimdall_verify.Engine.shutdown engine1;
    Heimdall_verify.Engine.shutdown engine_n;
    (match Fleetgen.peak_rss_kb () with
    | Some kb -> Printf.printf "peak RSS: %.1f MB\n" (float_of_int kb /. 1024.)
    | None -> ());
    Printf.printf "scale gate: %s\n" (if !failed then "FAIL" else "PASS");
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Generate a fleet-scale network (fat-tree, leaf-spine or multi-campus) \
          and run the full lint/verify/schedule/audit pipeline over it, gating \
          on determinism, lint errors, policy violations and issue resolution; \
          exit non-zero on any failure")
    Term.(
      const run $ shape_arg $ k_arg $ spines_arg $ leaves_arg $ campuses_arg
      $ buildings_arg $ hosts_arg $ policies_arg $ mode_arg $ seed_arg $ spec_arg
      $ domains_arg $ dp_cache_arg $ skip_issues_flag)

(* ---------------- shell ---------------- *)

let shell_cmd =
  let emergency_flag =
    Arg.(value & flag & info [ "emergency" ]
           ~doc:"Bypass the twin: commands hit production through the enforcer.")
  in
  let run ({ Experiments.net; policies; _ } as sc) issue_name emergency =
    match find_issue sc issue_name with
    | Error m ->
        prerr_endline m;
        exit 1
    | Ok issue ->
        let broken = issue.Heimdall_msp.Issue.inject net in
        let endpoints = issue.Heimdall_msp.Issue.ticket.endpoints in
        let slice =
          Heimdall_twin.Twin.slice_nodes ~production:broken ~endpoints ()
        in
        let privilege =
          Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice
            issue.Heimdall_msp.Issue.ticket
        in
        print_endline (Heimdall_msp.Issue.to_string issue);
        Printf.printf "twin slice: %s\n" (String.concat ", " slice);
        print_endline "type commands ('quit' to leave; e.g. 'connect r4', 'show ip route'):";
        if emergency then begin
          let session =
            Heimdall_msp.Emergency.open_session ~reason:"operator shell" ~production:broken
              ~policies ~privilege ()
          in
          let rec loop () =
            print_string "heimdall(EMERGENCY)> ";
            match read_line () with
            | exception End_of_file -> ()
            | "quit" | "exit" -> ()
            | line when String.trim line = "" -> loop ()
            | line ->
                (match Heimdall_msp.Emergency.exec session line with
                | Ok out -> print_string out
                | Error r ->
                    print_endline ("% " ^ Heimdall_msp.Emergency.refusal_to_string r));
                loop ()
          in
          loop ();
          print_endline "--- emergency audit trail ---";
          print_endline
            (Heimdall_enforcer.Audit.to_string (Heimdall_msp.Emergency.audit session))
        end
        else begin
          let em = Heimdall_twin.Twin.build ~production:broken ~endpoints () in
          let session = Heimdall_twin.Twin.open_session ~privilege em in
          let rec loop () =
            print_string "heimdall(twin)> ";
            match read_line () with
            | exception End_of_file -> ()
            | "quit" | "exit" -> ()
            | line when String.trim line = "" -> loop ()
            | line ->
                (match Heimdall_twin.Session.exec session line with
                | Ok out -> print_string out
                | Error e ->
                    print_endline ("% " ^ Heimdall_twin.Session.error_to_string e));
                loop ()
          in
          loop ();
          print_endline "--- enforcer ---";
          let outcome =
            Heimdall_enforcer.Enforcer.process ~production:broken ~policies ~privilege
              ~session ()
          in
          print_string (Heimdall_enforcer.Enforcer.outcome_to_string outcome)
        end
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:"Interactive technician session on a ticket's twin (or production in emergency mode)")
    Term.(const run $ network_arg $ issue_arg 1 $ emergency_flag)

(* ---------------- export / load ---------------- *)

let export_cmd =
  let dir_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run { Experiments.net; _ } dir =
    Loader.save_dir dir net;
    Printf.printf "wrote %s/topology.txt and %d configs\n" dir
      (List.length (Network.node_names net))
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a network to disk in the loader layout")
    Term.(const run $ network_arg $ dir_arg)

let load_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Directory with topology.txt and configs/.")
  in
  let run dir =
    match Loader.load_dir dir with
    | Error e ->
        prerr_endline (Loader.error_to_string e);
        exit 1
    | Ok net ->
        let topo = Network.topology net in
        Printf.printf "loaded %d nodes, %d links; validation ok\n"
          (Topology.node_count topo) (Topology.link_count topo);
        let policies =
          Heimdall_verify.Spec_miner.mine (Dataplane.compute net)
        in
        Printf.printf "mined %d policies\n" (List.length policies)
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load and validate a network from disk, then mine its policies")
    Term.(const run $ dir_arg)

let () =
  let doc = "least privilege for managed network services (Heimdall)" in
  let info = Cmd.info "heimdall" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            network_cmd;
            config_cmd;
            mine_cmd;
            lint_cmd;
            analyze_cmd;
            policy_cmd;
            conflicts_cmd;
            trace_cmd;
            ticket_cmd;
            privilege_cmd;
            sweep_cmd;
            experiment_cmd;
            export_cmd;
            load_cmd;
            shell_cmd;
            audit_cmd;
            obs_cmd;
            serve_cmd;
            chaos_cmd;
            scale_cmd;
          ]))
