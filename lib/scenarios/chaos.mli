(** The chaos harness: one end-to-end Heimdall workflow run under a
    deterministic, seeded fault plan.

    The run exercises both injection surfaces: twin-stage faults (flaky
    devices rejecting configuration edits, absorbed by bounded retry in
    the technician driver) and apply-stage faults (partial application,
    link flaps, device crashes, an enclave restart — absorbed by the
    enforcer's transactional applier).  The acceptance bar: the issue is
    still resolved, no policy that held before the run is violated
    after it, and the audit trail — including every retry and rollback
    record — verifies.

    Same seed → same fault sequence, audit trail and verdicts, at any
    engine domain count. *)

open Heimdall_verify

type result = {
  scenario : string;
  issue : string;
  seed : int;
  occurrences : Heimdall_faults.Injector.occurrence list;
      (** Faults that actually fired, oldest first. *)
  kinds : string list;  (** Distinct fired fault kinds, sorted. *)
  twin_retries : int;  (** Edit attempts the twin driver had to repeat. *)
  outcome : Heimdall_enforcer.Enforcer.outcome;
  resolved : bool;  (** Import approved and the ticket's probe delivers. *)
  surviving_violations : (Policy.t * string) list;
      (** Policies that held on the (broken) starting network but are
          violated on the final one — must be empty for a clean run. *)
  audit_ok : (unit, string) Stdlib.result;
      (** {!Heimdall_enforcer.Audit.verify} over the full trail. *)
}

val passed : result -> bool
(** Resolved, zero surviving violations, audit verifies, and the
    transactional apply did not end in a rollback. *)

val run :
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  ?max_attempts:int ->
  scenario:Experiments.scenario ->
  issue:Heimdall_msp.Issue.t ->
  seed:int ->
  unit ->
  result
(** Break the scenario network with [issue], run the twin session and
    the enforcer under the seed's fault plan, and judge the outcome. *)

val render : result -> string
