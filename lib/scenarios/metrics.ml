open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify
open Heimdall_privilege
open Heimdall_msp

type technique = All_access | Neighbor_access | Heimdall_twin

let technique_to_string = function
  | All_access -> "all"
  | Neighbor_access -> "neighbor"
  | Heimdall_twin -> "heimdall"

type point = {
  failed : Topology.endpoint;
  feasible : bool;
  attack_surface : float;
  exposed_nodes : int;
}

type summary = {
  technique : technique;
  points : point list;
  feasibility_pct : float;
  attack_surface_pct : float;
}

let is_infra kind =
  match kind with
  | Topology.Router | Topology.Firewall -> true
  | Topology.Switch | Topology.Host -> false

let failure_candidates net =
  let topo = Network.topology net in
  List.concat_map
    (fun (n : Topology.node) ->
      if not (is_infra n.kind) then []
      else
        match Network.config n.name net with
        | None -> []
        | Some cfg ->
            let wired = Topology.interfaces_of n.name topo in
            List.filter_map
              (fun (i : Ast.interface) ->
                let relevant =
                  i.enabled && i.addr <> None
                  && (List.mem i.if_name wired
                     || String.length i.if_name > 4 && String.sub i.if_name 0 4 = "vlan")
                in
                if relevant then Some { Topology.node = n.name; iface = i.if_name }
                else None)
              cfg.interfaces)
    (Topology.nodes topo)

(* Actions whose abuse can change forwarding behaviour or destroy state. *)
let dangerous_action a =
  (not (Action.is_read_only a)) && a <> "secret.set" && a <> "interface.description"

let kind_of net node = Option.value (Network.kind node net) ~default:Topology.Host

(* The privilege a technique grants for a given incident. *)
let privilege_for net technique ~endpoints ~ticket =
  match technique with
  | All_access -> Privilege.allow_all
  | Neighbor_access ->
      let topo = Network.topology net in
      let nodes =
        List.concat_map (fun e -> e :: Topology.neighbors e topo) endpoints
        |> List.sort_uniq String.compare
      in
      Privilege.of_predicates [ Privilege.allow ~actions:[ "*" ] ~nodes () ]
  | Heimdall_twin ->
      let slice =
        Heimdall_twin.Slicer.slice Heimdall_twin.Slicer.Task net ~endpoints
      in
      Priv_gen.for_ticket ~network:net ~slice ticket

let attack_surface net policies healthy_paths privilege =
  let nodes = Network.node_names net in
  let allowed_by_node =
    List.map
      (fun n -> (n, Privilege.allowed_actions privilege ~node:n ~kind:(kind_of net n)))
      nodes
  in
  let sum_c =
    List.fold_left (fun acc (_, actions) -> acc + List.length actions) 0 allowed_by_node
  in
  let sum_a =
    List.fold_left
      (fun acc n -> acc + List.length (Action.available_on (kind_of net n)))
      0 nodes
  in
  let node_dangerous n =
    match List.assoc_opt n allowed_by_node with
    | Some actions -> List.exists dangerous_action actions
    | None -> false
  in
  let vp =
    List.length
      (List.filter
         (fun (p : Policy.t) ->
           match List.assoc_opt p.id healthy_paths with
           | Some path -> List.exists node_dangerous path
           | None -> false)
         policies)
  in
  let total_p = max 1 (List.length policies) in
  let exposed =
    List.length (List.filter (fun (_, actions) -> actions <> []) allowed_by_node)
  in
  ( ((float_of_int sum_c /. float_of_int (max 1 sum_a) *. 0.5)
    +. (float_of_int vp /. float_of_int total_p *. 0.5))
    *. 100.0,
    exposed )

(* Identify the incident a failure causes: the endpoints of a broken
   reachability policy, or the failed link's two ends as a fallback. *)
let incident_endpoints engine net dp policies healthy_violated (failed : Topology.endpoint) =
  let broken_policy =
    List.find_opt
      (fun (p : Policy.t) ->
        (not (List.mem p.id healthy_violated))
        && p.flow.proto = Flow.Icmp
        &&
        match Policy.verdict_of_trace p (Engine.trace engine dp p.flow) with
        | Policy.Violated _ -> true
        | Policy.Holds -> false)
      policies
  in
  match broken_policy with
  | Some p ->
      let owner addr =
        Option.map fst (Network.owner_of_address addr net)
      in
      List.filter_map owner [ p.flow.src; p.flow.dst ]
  | None -> (
      match Topology.peer failed (Network.topology net) with
      | Some peer -> [ failed.node; peer.node ]
      | None -> [ failed.node ])

(* Resolve the optional engine exactly once per entry point: the prepare
   and evaluate passes must share one engine, or the dataplane/trace
   caches warmed by the sweep are thrown away before evaluation (and the
   stats split across two engines nobody can see). *)
let resolve_engine = function
  | Some e -> e
  | None -> Engine.create ~domains:1 ()

let sweep_points ?engine ~production ~policies () =
  let engine = resolve_engine engine in
  Engine.phase engine "sweep/prepare" @@ fun () ->
  (* Shared per-network data: the healthy dataplane and its traces are
     computed once and reused by every sweep point. *)
  let healthy_dp = Engine.dataplane engine production in
  let healthy_paths =
    Engine.map engine
      (fun (p : Policy.t) ->
        (p.id, Trace.nodes_on_path (Engine.trace engine healthy_dp p.flow)))
      policies
  in
  let healthy_violated =
    (Policy.check_all ~engine healthy_dp policies).violations
    |> List.map (fun ((p : Policy.t), _) -> p.id)
  in
  let candidates = failure_candidates production in
  Engine.map engine
    (fun (failed : Topology.endpoint) ->
      let change =
        Change.v failed.node
          (Change.Set_interface_enabled { iface = failed.iface; enabled = false })
      in
      let broken, broken_dp =
        match Network.apply_changes [ change ] production with
        (* Each broken network is a one-interface variation of production:
           build its dataplane incrementally against the healthy one. *)
        | Ok net -> (net, Engine.dataplane ~base:healthy_dp engine net)
        | Error m -> invalid_arg ("Metrics.sweep: " ^ m)
      in
      let endpoints =
        incident_endpoints engine production broken_dp policies healthy_violated failed
      in
      let ticket =
        Ticket.make ~id:"SWEEP" ~kind:Ticket.Connectivity
          ~description:"interface failure sweep" ~endpoints
      in
      (failed, broken, endpoints, ticket, healthy_paths))
    candidates

let summarise technique points =
  let n = max 1 (List.length points) in
  {
    technique;
    points;
    feasibility_pct =
      100.0
      *. float_of_int (List.length (List.filter (fun p -> p.feasible) points))
      /. float_of_int n;
    attack_surface_pct =
      List.fold_left (fun acc p -> acc +. p.attack_surface) 0.0 points /. float_of_int n;
  }

let evaluate_technique ?engine ~production ~policies technique prepared =
  let engine = resolve_engine engine in
  Engine.phase engine ("sweep/evaluate-" ^ technique_to_string technique) @@ fun () ->
  let points =
    Engine.map engine
      (fun ((failed : Topology.endpoint), broken, endpoints, ticket, healthy_paths) ->
        let privilege = privilege_for broken technique ~endpoints ~ticket in
        let feasible =
          Privilege.allows privilege
            (Privilege.request ~iface:failed.iface "interface.up" failed.node)
        in
        let surface, exposed = attack_surface production policies healthy_paths privilege in
        { failed; feasible; attack_surface = surface; exposed_nodes = exposed })
      prepared
  in
  summarise technique points

let sweep ?engine ~production ~policies technique =
  let engine = resolve_engine engine in
  let prepared = sweep_points ~engine ~production ~policies () in
  evaluate_technique ~engine ~production ~policies technique prepared

let sweep_all ?engine ~production ~policies () =
  let engine = resolve_engine engine in
  let prepared = sweep_points ~engine ~production ~policies () in
  List.map
    (fun t -> evaluate_technique ~engine ~production ~policies t prepared)
    [ All_access; Neighbor_access; Heimdall_twin ]
