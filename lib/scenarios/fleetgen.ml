open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify
open Heimdall_privilege
open Heimdall_msp

type shape =
  | Fat_tree of { k : int }
  | Leaf_spine of { spines : int; leaves : int }
  | Multi_campus of { campuses : int; buildings : int }

type mode = Closed | Mined

type params = {
  shape : shape;
  hosts_per_edge : int;
  policies_per_edge : int;
  mode : mode;
  seed : int;
}

let default_params shape =
  { shape; hosts_per_edge = 2; policies_per_edge = 2; mode = Closed; seed = 42 }

let validate_params p =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if p.hosts_per_edge < 1 || p.hosts_per_edge > 16 then
    err "hosts_per_edge must be in 1..16 (got %d)" p.hosts_per_edge
  else if p.policies_per_edge < 0 || p.policies_per_edge > 16 then
    err "policies_per_edge must be in 0..16 (got %d)" p.policies_per_edge
  else
    match p.shape with
    | Fat_tree { k } ->
        if k < 4 || k > 32 then err "fat-tree k must be in 4..32 (got %d)" k
        else if k mod 2 <> 0 then err "fat-tree k must be even (got %d)" k
        else Ok ()
    | Leaf_spine { spines; leaves } ->
        if spines < 1 || spines > 64 then
          err "spines must be in 1..64 (got %d)" spines
        else if leaves < 2 || leaves > 255 then
          err "leaves must be in 2..255 (got %d)" leaves
        else Ok ()
    | Multi_campus { campuses; buildings } ->
        if campuses < 1 || campuses > 200 then
          err "campuses must be in 1..200 (got %d)" campuses
        else if buildings < 1 || buildings > 255 then
          err "buildings must be in 1..255 (got %d)" buildings
        else if campuses * buildings < 2 then
          err "a multi-campus fleet needs at least 2 edge subnets"
        else Ok ()

(* ------------------------------------------------------------------ *)
(* Spec strings                                                        *)
(* ------------------------------------------------------------------ *)

let mode_to_string = function Closed -> "closed" | Mined -> "mined"

let shape_fields = function
  | Fat_tree { k } -> ("fat-tree", [ ("k", k) ])
  | Leaf_spine { spines; leaves } ->
      ("leaf-spine", [ ("spines", spines); ("leaves", leaves) ])
  | Multi_campus { campuses; buildings } ->
      ("multi-campus", [ ("campuses", campuses); ("buildings", buildings) ])

let spec_to_string p =
  let shape, fields = shape_fields p.shape in
  String.concat ":"
    (shape
     :: List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fields
    @ [
        Printf.sprintf "hosts=%d" p.hosts_per_edge;
        Printf.sprintf "policies=%d" p.policies_per_edge;
        "mode=" ^ mode_to_string p.mode;
        Printf.sprintf "seed=%d" p.seed;
      ])

let spec_of_string s =
  let s =
    match String.length s >= 6 && String.sub s 0 6 = "fleet:" with
    | true -> String.sub s 6 (String.length s - 6)
    | false -> s
  in
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error "empty fleet spec"
  | shape_name :: fields -> (
      let base =
        match shape_name with
        | "fat-tree" -> Ok (Fat_tree { k = 4 })
        | "leaf-spine" -> Ok (Leaf_spine { spines = 4; leaves = 8 })
        | "multi-campus" -> Ok (Multi_campus { campuses = 4; buildings = 4 })
        | other -> Error (Printf.sprintf "unknown fleet shape %S" other)
      in
      match base with
      | Error _ as e -> e
      | Ok shape -> (
          let parse acc field =
            match acc with
            | Error _ as e -> e
            | Ok p -> (
                match String.index_opt field '=' with
                | None -> Error (Printf.sprintf "malformed field %S" field)
                | Some i -> (
                    let key = String.sub field 0 i in
                    let v = String.sub field (i + 1) (String.length field - i - 1) in
                    let int_v () =
                      match int_of_string_opt v with
                      | Some n -> Ok n
                      | None -> Error (Printf.sprintf "field %s=%S is not a number" key v)
                    in
                    let with_int f = Result.map f (int_v ()) in
                    match (key, p.shape) with
                    | "k", Fat_tree _ ->
                        with_int (fun k -> { p with shape = Fat_tree { k } })
                    | "spines", Leaf_spine l ->
                        with_int (fun spines ->
                            { p with shape = Leaf_spine { l with spines } })
                    | "leaves", Leaf_spine l ->
                        with_int (fun leaves ->
                            { p with shape = Leaf_spine { l with leaves } })
                    | "campuses", Multi_campus m ->
                        with_int (fun campuses ->
                            { p with shape = Multi_campus { m with campuses } })
                    | "buildings", Multi_campus m ->
                        with_int (fun buildings ->
                            { p with shape = Multi_campus { m with buildings } })
                    | "hosts", _ -> with_int (fun hosts_per_edge -> { p with hosts_per_edge })
                    | "policies", _ ->
                        with_int (fun policies_per_edge -> { p with policies_per_edge })
                    | "seed", _ -> with_int (fun seed -> { p with seed })
                    | "mode", _ -> (
                        match v with
                        | "closed" -> Ok { p with mode = Closed }
                        | "mined" -> Ok { p with mode = Mined }
                        | _ -> Error (Printf.sprintf "mode must be closed|mined (got %S)" v))
                    | _ ->
                        Error
                          (Printf.sprintf "field %S does not apply to shape %s" key
                             shape_name)))
          in
          match List.fold_left parse (Ok (default_params shape)) fields with
          | Error _ as e -> e
          | Ok p -> (
              match validate_params p with Ok () -> Ok p | Error m -> Error m)))

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type edge = {
  dev : string;
  subnet : Prefix.t;
  area : int;
  peers : string list;
  hosts : (string * Ipv4.t) list;
}

type fleet = {
  name : string;
  params : params;
  net : Network.t;
  policies : Policy.t list;
  poltree : Heimdall_poltree.Poltree.t;
  privilege : Privilege.t;
  issues : Issue.t list;
  edges : edge list;
  gateway : string;
  uplink_addr : Ipv4.t;
}

let p = Prefix.of_string
let edge_vlan = 10
let wrong_vlan = 30
let acl_name = "AGG_PROT"

(* Edge subnets live in 10.32.0.0/11-ish space (second octet 32+), clear
   of the builder's 10.200.0.0/16 transit pool. *)
let edge_subnet ~o2 ~o3 = p (Printf.sprintf "10.%d.%d.0/24" (32 + o2) o3)

(* Attach an edge subnet to a device: SVI in the device's area, a decoy
   "guests" VLAN (the misconfig injector's wrong VLAN must exist for the
   change to validate), and the hosts on access ports. *)
let add_edge b ~dev ~area ~o2 ~o3 ~peers ~hosts_per_edge =
  let subnet = edge_subnet ~o2 ~o3 in
  let gw = Prefix.host subnet 1 in
  Builder.svi ~area b dev edge_vlan
    (Ifaddr.make gw (Prefix.length subnet));
  Builder.vlan b dev wrong_vlan "guests";
  let hosts =
    List.init hosts_per_edge (fun i ->
        let hn = Printf.sprintf "h-%s-%d" dev (i + 1) in
        let addr = Prefix.host subnet (11 + i) in
        Builder.attach_host b ~host_name:hn ~dev ~vlan:edge_vlan
          ~addr:(Ifaddr.make addr (Prefix.length subnet))
          ~gateway:gw;
        (hn, addr))
  in
  { dev; subnet; area; peers; hosts }

(* The per-shape wiring.  Returns the builder (pre-ISP, pre-secrets), the
   ordered edges, the ISP attachment point, the aggregation-tier devices
   guarding the first (sensitive) edge, and the privilege tier globs. *)
type skeleton = {
  b : Builder.t;
  sk_edges : edge list;
  sk_gateway : string;
  guards : string list;  (** Aggregation devices in front of edge 0. *)
  routers : string list;  (** All non-host devices, generation order. *)
  edge_globs : string list;
  mid_globs : string list;
}

let fat_tree ~k ~hosts_per_edge =
  let b = Builder.create () in
  let half = k / 2 in
  let cores = List.init (half * half) (fun i -> Printf.sprintf "core-%d" (i + 1)) in
  List.iter (Builder.router b) cores;
  let pods = List.init k (fun p -> p) in
  let aggs =
    List.concat_map
      (fun pd -> List.init half (fun j -> Printf.sprintf "agg-p%d-%d" pd j))
      pods
  in
  let edges_names =
    List.concat_map
      (fun pd -> List.init half (fun j -> Printf.sprintf "edge-p%d-%d" pd j))
      pods
  in
  List.iter (Builder.router b) aggs;
  List.iter (Builder.router b) edges_names;
  (* Core <-> aggregation, area 0: agg j of every pod connects to the
     j-th group of k/2 cores. *)
  List.iter
    (fun pd ->
      for j = 0 to half - 1 do
        let agg = Printf.sprintf "agg-p%d-%d" pd j in
        for c = 0 to half - 1 do
          ignore
            (Builder.p2p ~area:0 b agg (Printf.sprintf "core-%d" ((j * half) + c + 1)))
        done
      done)
    pods;
  (* Aggregation <-> edge, one area per pod. *)
  List.iter
    (fun pd ->
      for j = 0 to half - 1 do
        for e = 0 to half - 1 do
          ignore
            (Builder.p2p ~area:(pd + 1) b
               (Printf.sprintf "agg-p%d-%d" pd j)
               (Printf.sprintf "edge-p%d-%d" pd e))
        done
      done)
    pods;
  let sk_edges =
    List.concat_map
      (fun pd ->
        List.init half (fun e ->
            add_edge b
              ~dev:(Printf.sprintf "edge-p%d-%d" pd e)
              ~area:(pd + 1) ~o2:pd ~o3:e
              ~peers:(List.init half (fun j -> Printf.sprintf "agg-p%d-%d" pd j))
              ~hosts_per_edge))
      pods
  in
  {
    b;
    sk_edges;
    sk_gateway = "core-1";
    guards = List.init half (fun j -> Printf.sprintf "agg-p0-%d" j);
    routers = cores @ aggs @ edges_names;
    edge_globs = [ "edge-*" ];
    mid_globs = [ "agg-*"; "core-*" ];
  }

let leaf_spine ~spines ~leaves ~hosts_per_edge =
  let b = Builder.create () in
  let spine_names = List.init spines (fun i -> Printf.sprintf "spine-%d" (i + 1)) in
  let leaf_names = List.init leaves (fun i -> Printf.sprintf "leaf-%d" (i + 1)) in
  List.iter (Builder.router b) spine_names;
  List.iter (Builder.router b) leaf_names;
  List.iter
    (fun leaf -> List.iter (fun spine -> ignore (Builder.p2p ~area:0 b spine leaf)) spine_names)
    leaf_names;
  let sk_edges =
    List.mapi
      (fun i leaf ->
        add_edge b ~dev:leaf ~area:0 ~o2:68 ~o3:i ~peers:spine_names ~hosts_per_edge)
      leaf_names
  in
  {
    b;
    sk_edges;
    sk_gateway = "spine-1";
    guards = spine_names;
    routers = spine_names @ leaf_names;
    edge_globs = [ "leaf-*" ];
    mid_globs = [ "spine-*" ];
  }

let multi_campus ~campuses ~buildings ~hosts_per_edge =
  let b = Builder.create () in
  let wans = [ "wan-1"; "wan-2" ] in
  List.iter (Builder.router b) wans;
  let gws = List.init campuses (fun c -> Printf.sprintf "gw-c%d" c) in
  let accs =
    List.concat_map
      (fun c -> List.init buildings (fun bl -> Printf.sprintf "acc-c%d-b%d" c bl))
      (List.init campuses (fun c -> c))
  in
  List.iter (Builder.router b) gws;
  List.iter (Builder.router b) accs;
  ignore (Builder.p2p ~area:0 b "wan-1" "wan-2");
  List.iter
    (fun gw ->
      ignore (Builder.p2p ~area:0 b gw "wan-1");
      ignore (Builder.p2p ~area:0 b gw "wan-2"))
    gws;
  List.iteri
    (fun c gw ->
      for bl = 0 to buildings - 1 do
        ignore (Builder.p2p ~area:(c + 1) b gw (Printf.sprintf "acc-c%d-b%d" c bl))
      done)
    gws;
  let sk_edges =
    List.concat_map
      (fun c ->
        List.init buildings (fun bl ->
            add_edge b
              ~dev:(Printf.sprintf "acc-c%d-b%d" c bl)
              ~area:(c + 1) ~o2:c ~o3:bl
              ~peers:[ Printf.sprintf "gw-c%d" c ]
              ~hosts_per_edge))
      (List.init campuses (fun c -> c))
  in
  {
    b;
    sk_edges;
    sk_gateway = "wan-1";
    guards = [ "gw-c0" ];
    routers = wans @ gws @ accs;
    edge_globs = [ "acc-*" ];
    mid_globs = [ "gw-*"; "wan-*" ];
  }

(* ------------------------------------------------------------------ *)
(* Issues                                                              *)
(* ------------------------------------------------------------------ *)

let inject_changes node ops net =
  match Network.apply_changes (List.map (Change.v node) ops) net with
  | Ok net -> net
  | Error m -> invalid_arg ("fleet issue injection failed: " ^ m)

let iface_between net a bnode =
  let topo = Network.topology net in
  match Topology.link_between a bnode topo with
  | Some l ->
      if l.Topology.a.Topology.node = a then l.Topology.a.Topology.iface
      else l.Topology.b.Topology.iface
  | None -> invalid_arg (Printf.sprintf "fleet: no link between %s and %s" a bnode)

let first_host e = List.hd e.hosts

(* A probe pair for an issue anchored at edge [idx]: try offsets from
   [prefer], skipping any (src, dst) direction the aggregation ACL
   blocks — a probe that can never deliver would make the issue look
   permanently unresolved.  The broken edge always stays in the flow
   (as source, or as destination when only the reverse direction is
   open). *)
let pick_probe_pair edges ~blocked idx ~prefer =
  let arr = Array.of_list edges in
  let n = Array.length arr in
  let rec go d tried =
    if tried >= n then (arr.(idx), arr.((idx + 1) mod n))
    else
      let c = (idx + d) mod n in
      if c = idx then go (d + 1) tried
      else if not (blocked (arr.(idx), arr.(c))) then (arr.(idx), arr.(c))
      else if not (blocked (arr.(c), arr.(idx))) then (arr.(c), arr.(idx))
      else go (d + 1) (tried + 1)
  in
  go (max 1 prefer) 0

(* An edge access port lands in the wrong VLAN — the paper's §5 vlan
   pilot issue, placed by the seed. *)
let misconfig_issue net edges ~blocked idx =
  let e = List.nth edges idx in
  let src_e, dst_e = pick_probe_pair edges ~blocked idx ~prefer:1 in
  let host, _ = first_host e in
  let _, probe_src = first_host src_e in
  let _, probe_dst = first_host dst_e in
  let other = if src_e.dev = e.dev then dst_e else src_e in
  let port = iface_between net e.dev host in
  {
    Issue.name = "misconfig";
    ticket =
      Ticket.make ~id:"FLEET-001" ~kind:Ticket.Vlan
        ~description:
          (Printf.sprintf "%s lost connectivity to everything after a port change" host)
        ~endpoints:[ host; fst (first_host other) ];
    inject =
      inject_changes e.dev
        [ Change.Set_switchport { iface = port; switchport = Some (Ast.Access wrong_vlan) } ];
    root_cause = e.dev;
    fix_commands =
      [
        Printf.sprintf "connect %s" host;
        "show ip route";
        Printf.sprintf "ping %s" (Ipv4.to_string (Prefix.host e.subnet 1));
        Printf.sprintf "connect %s" e.dev;
        "show vlan";
        "show interfaces";
        "show running-config";
        Printf.sprintf "configure interface %s switchport access vlan %d" port edge_vlan;
        Printf.sprintf "connect %s" host;
        Printf.sprintf "ping %s" (Ipv4.to_string (Prefix.host e.subnet 1));
        Printf.sprintf "ping %s" (Ipv4.to_string (snd (first_host other)));
      ];
    probe = Flow.icmp probe_src probe_dst;
  }

(* Configuration drift: every uplink of one edge device slides into the
   wrong OSPF area, detaching its subnet from the fabric. *)
let drift_issue net edges ~blocked idx =
  let n = List.length edges in
  let e = List.nth edges idx in
  let src_e, dst_e = pick_probe_pair edges ~blocked idx ~prefer:(n / 2) in
  let remote = if src_e.dev = e.dev then dst_e else src_e in
  let host, _ = first_host e in
  let _, probe_src = first_host src_e in
  let _, probe_dst = first_host dst_e in
  let remote_host, remote_addr = first_host remote in
  let uplinks = List.map (fun peer -> iface_between net e.dev peer) e.peers in
  {
    Issue.name = "drift";
    ticket =
      Ticket.make ~id:"FLEET-002" ~kind:Ticket.Routing
        ~description:
          (Printf.sprintf "subnet %s unreachable from the rest of the fleet"
             (Prefix.to_string e.subnet))
        ~endpoints:[ host; remote_host ];
    inject =
      inject_changes e.dev
        (List.map
           (fun iface -> Change.Set_ospf_area { iface; area = Some (e.area + 1) })
           uplinks);
    root_cause = e.dev;
    fix_commands =
      [
        Printf.sprintf "connect %s" host;
        Printf.sprintf "ping %s" (Ipv4.to_string remote_addr);
        Printf.sprintf "connect %s" e.dev;
        "show ip ospf neighbors";
        "show ip route";
        "show running-config";
      ]
      @ List.map
          (fun iface ->
            Printf.sprintf "configure interface %s ospf area %d" iface e.area)
          uplinks
      @ [ "show ip ospf neighbors"; Printf.sprintf "ping %s" (Ipv4.to_string remote_addr) ];
    probe = Flow.icmp probe_src probe_dst;
  }

(* The ISP uplink goes down.  The External ticket grants addressing,
   routing and interface privileges across the gateway, but the fix
   exercises exactly one of them — the over-grant the surface analysis
   flags. *)
let overgrant_issue edges gateway uplink_iface uplink_addr =
  let sensitive = List.hd edges in
  let host, host_addr = first_host sensitive in
  {
    Issue.name = "overgrant";
    ticket =
      Ticket.make ~id:"FLEET-003" ~kind:Ticket.External
        ~description:"the whole fleet lost internet access (ISP uplink dark)"
        ~endpoints:[ gateway; host ];
    inject =
      inject_changes gateway
        [ Change.Set_interface_enabled { iface = uplink_iface; enabled = false } ];
    root_cause = gateway;
    fix_commands =
      [
        Printf.sprintf "connect %s" gateway;
        "show interfaces";
        "show ip route";
        Printf.sprintf "configure interface %s no shutdown" uplink_iface;
        Printf.sprintf "ping %s" (Ipv4.to_string uplink_addr);
      ];
    probe = Flow.icmp host_addr uplink_addr;
  }

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let closed_form_policies edges ~per_edge ~blocked ~uplink_addr =
  let arr = Array.of_list edges in
  let n = Array.length arr in
  let reach =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j ->
               let d = (i + j) mod n in
               if d = i then None
               else
                 let src = arr.(i) and dst = arr.(d) in
                 if blocked (src, dst) then None
                 else
                   let _, sa = first_host src and _, da = first_host dst in
                   Some
                     (Policy.reachable
                        ~id:(Printf.sprintf "fleet:reach:%s->%s" src.dev dst.dev)
                        ~src_label:src.dev ~dst_label:dst.dev (Flow.icmp sa da)))
             (List.init per_edge (fun j -> j + 1))))
  in
  let sensitive = arr.(0) in
  let _, sa = first_host sensitive in
  let egress =
    Policy.reachable ~id:"fleet:egress" ~src_label:sensitive.dev ~dst_label:"uplink"
      (Flow.icmp sa uplink_addr)
  in
  let guard =
    if n < 2 then []
    else
      let guest = arr.(n - 1) in
      let _, ga = first_host guest in
      [
        Policy.isolated
          ~id:(Printf.sprintf "fleet:guard:%s-x>%s" guest.dev sensitive.dev)
          ~src_label:guest.dev ~dst_label:sensitive.dev (Flow.icmp ga sa);
      ]
  in
  (egress :: reach) @ guard

(* ------------------------------------------------------------------ *)
(* Privilege                                                           *)
(* ------------------------------------------------------------------ *)

let fleet_privilege sk =
  Privilege.of_predicates
    [
      Privilege.allow ~actions:[ "show.*"; "diag.*" ] ~nodes:[ "*" ] ();
      Privilege.allow
        ~actions:[ "vlan.define"; "vlan.switchport"; "interface.up"; "interface.shutdown" ]
        ~nodes:sk.edge_globs ();
      Privilege.allow
        ~actions:[ "ospf.area"; "ospf.cost"; "ospf.network"; "route.static" ]
        ~nodes:sk.mid_globs ();
      Privilege.allow
        ~actions:
          [ "interface.up"; "interface.shutdown"; "interface.addr"; "route.static";
            "route.gateway" ]
        ~nodes:[ sk.sk_gateway ] ();
    ]

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let generate params =
  (match validate_params params with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fleetgen.generate: " ^ m));
  let sk =
    match params.shape with
    | Fat_tree { k } -> fat_tree ~k ~hosts_per_edge:params.hosts_per_edge
    | Leaf_spine { spines; leaves } ->
        leaf_spine ~spines ~leaves ~hosts_per_edge:params.hosts_per_edge
    | Multi_campus { campuses; buildings } ->
        multi_campus ~campuses ~buildings ~hosts_per_edge:params.hosts_per_edge
  in
  let b = sk.b in
  (* ACL at the aggregation tier: the guards in front of the first
     (sensitive) edge subnet drop probes from the last (guest) subnet on
     their way down, everything else passes. *)
  let edges = sk.sk_edges in
  let sensitive = List.hd edges in
  let n_edges = List.length edges in
  if n_edges >= 2 then begin
    let guest = List.nth edges (n_edges - 1) in
    let guard_acl =
      Acl.make acl_name
        [
          Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:10 Acl.Deny guest.subnet
            sensitive.subnet;
          Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any;
        ]
    in
    List.iter
      (fun guard ->
        Builder.acl b guard guard_acl;
        match Builder.find_iface_to b guard sensitive.dev with
        | Some iface -> Builder.bind_acl b ~node:guard ~iface ~dir:`Out acl_name
        | None -> invalid_arg (Printf.sprintf "fleet: guard %s has no link to %s" guard sensitive.dev))
      sk.guards
  end;
  (* Static uplink to a generated ISP edge: default route + originate on
     the gateway, a return route into 10/8 on the provider side. *)
  Builder.router b "isp";
  let transit = Builder.p2p b sk.sk_gateway "isp" in
  let gw_addr = Prefix.host transit 1 and isp_addr = Prefix.host transit 2 in
  Builder.static_route b sk.sk_gateway Prefix.any isp_addr;
  Builder.default_originate b sk.sk_gateway;
  (* Router IDs and per-device secrets (scrubbed by the twin). *)
  List.iteri
    (fun i r ->
      Builder.ospf_router_id b r (Ipv4.of_octets 9 9 (i / 250) ((i mod 250) + 1));
      Builder.secret b r (Ast.Enable_secret (Printf.sprintf "fleet-enable-%s-3c7d" r));
      Builder.secret b r (Ast.Snmp_community (Printf.sprintf "fleet-snmp-%s-a0e4" r)))
    (sk.routers @ [ "isp" ]);
  List.iter
    (fun e ->
      List.iter
        (fun (h, _) ->
          Builder.secret b h (Ast.User_password ("admin", Printf.sprintf "fleet-pw-%s-11fe" h)))
        e.hosts)
    edges;
  let net = Builder.build b in
  (* Policies.  [blocked] mirrors the guard ACL above: the guest → sensitive
     icmp direction is dropped at the aggregation tier. *)
  let uplink_addr = gw_addr in
  let blocked (src, dst) =
    n_edges >= 2
    && src.dev = (List.nth edges (n_edges - 1)).dev
    && dst.dev = sensitive.dev
  in
  let policies =
    match params.mode with
    | Closed ->
        closed_form_policies edges ~per_edge:params.policies_per_edge ~blocked
          ~uplink_addr
    | Mined ->
        Spec_miner.mine
          ~options:{ Spec_miner.mine_icmp = true; tcp_services = [] }
          (Dataplane.compute net)
  in
  (* Seeded issue placement. *)
  let st = Random.State.make [| 0xF1EE; params.seed |] in
  let mis_idx = Random.State.int st n_edges in
  let drift_idx =
    if n_edges = 1 then 0
    else (mis_idx + 1 + Random.State.int st (n_edges - 1)) mod n_edges
  in
  let uplink_iface = iface_between net sk.sk_gateway "isp" in
  let issues =
    [
      misconfig_issue net edges ~blocked mis_idx;
      drift_issue net edges ~blocked drift_idx;
      overgrant_issue edges sk.sk_gateway uplink_iface uplink_addr;
    ]
  in
  (* The same policies, clustered into the topology hierarchy: pods /
     campuses as interior nodes, one leaf per edge subnet owned by its
     edge device.  POL004 over (poltree, policies) proves equivalence. *)
  let poltree =
    let group_prefix =
      match params.shape with
      | Fat_tree _ -> "pod"
      | Leaf_spine _ -> "fabric"
      | Multi_campus _ -> "campus"
    in
    let segs =
      List.map
        (fun e ->
          {
            Heimdall_poltree.Mine.seg_prefix = e.subnet;
            seg_group = Printf.sprintf "%s-%d" group_prefix e.area;
            seg_owners = [ e.dev ];
          })
        edges
    in
    Heimdall_poltree.Mine.of_policies ~segs policies
  in
  {
    name = "fleet:" ^ spec_to_string params;
    params;
    net;
    policies;
    poltree;
    privilege = fleet_privilege sk;
    issues;
    edges;
    gateway = sk.sk_gateway;
    uplink_addr;
  }

let device_count fleet = Topology.node_count (Network.topology fleet.net)
let link_count fleet = Topology.link_count (Network.topology fleet.net)

(* ------------------------------------------------------------------ *)
(* Process metrics                                                     *)
(* ------------------------------------------------------------------ *)

let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | exception End_of_file ->
          close_in ic;
          None
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
            close_in ic;
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
              (fun kb -> Some kb)
          end
          else scan ()
    in
    scan ()
  with Sys_error _ | Scanf.Scan_failure _ | Failure _ -> None
