(** Fleet-scale topology generator: seeded, parameterized fat-tree,
    leaf-spine and multi-campus networks with real configs — OSPF areas
    per pod/campus, VLANs at the edge, ACLs at the aggregation tier, a
    static uplink to a generated ISP edge — plus policies, a per-fleet
    privilege spec and issue injectors, so the whole lint → twin →
    verify → schedule → audit pipeline runs unmodified at 100–1000+
    devices.

    Generation is a pure function of [params]: the same (shape, params,
    seed) always yields byte-identical topology, configs and policies.
    The seed only drives issue placement — where the misconfig, drift and
    over-grant injectors strike. *)

open Heimdall_net
open Heimdall_control
open Heimdall_verify
open Heimdall_privilege
open Heimdall_msp

type shape =
  | Fat_tree of { k : int }
      (** Classic k-ary fat-tree: (k/2)² cores, k pods of k/2 aggregation
          + k/2 edge routers.  [k] must be even, 4 ≤ k ≤ 32. *)
  | Leaf_spine of { spines : int; leaves : int }
      (** Full spine–leaf bipartite fabric, single OSPF area. *)
  | Multi_campus of { campuses : int; buildings : int }
      (** Campuses of access routers behind a gateway, dual-homed to two
          WAN cores; one OSPF area per campus, area 0 across the WAN. *)

type mode = Closed | Mined
(** Policy source: [Closed] emits closed-form reachability/isolation
    intents (O(edges), usable at any size); [Mined] runs the spec miner
    over the computed dataplane (O(subnets²) traces — small fleets). *)

type params = {
  shape : shape;
  hosts_per_edge : int;  (** Hosts attached to each edge subnet (1–16). *)
  policies_per_edge : int;
      (** Closed-form reachability intents per edge subnet (0–16). *)
  mode : mode;
  seed : int;  (** Drives issue placement only. *)
}

val default_params : shape -> params
(** 2 hosts and 2 closed-form policies per edge, seed 42. *)

val validate_params : params -> (unit, string) result

type edge = {
  dev : string;  (** Edge device owning the subnet (SVI ".1"). *)
  subnet : Prefix.t;
  area : int;  (** OSPF area of the subnet and the device's uplinks. *)
  peers : string list;  (** Aggregation-tier uplink neighbours. *)
  hosts : (string * Ipv4.t) list;  (** Host name, address; ".11" first. *)
}

type fleet = {
  name : string;  (** ["fleet:" ^ spec_to_string params]. *)
  params : params;
  net : Network.t;
  policies : Policy.t list;
  poltree : Heimdall_poltree.Poltree.t;
      (** The same intents as [policies], clustered into the topology
          hierarchy (pods/campuses as interior nodes, one leaf per edge
          subnet, owners = the edge device).  POL004 over the compiled
          tree and [policies] proves the two spec forms equivalent. *)
  privilege : Privilege.t;
      (** Per-fleet operator baseline: read-only everywhere, repairs
          scoped to the tier they belong to (render with
          {!Heimdall_privilege.Dsl.render}). *)
  issues : Issue.t list;
      (** Seeded injectors: ["misconfig"] (edge access port in the wrong
          VLAN), ["drift"] (edge uplinks moved to the wrong OSPF area),
          ["overgrant"] (ISP uplink down; the External ticket grants far
          more than the one-command fix exercises). *)
  edges : edge list;  (** Edge subnets in generation order. *)
  gateway : string;  (** Device holding the static ISP uplink. *)
  uplink_addr : Ipv4.t;  (** Gateway-side address of the ISP transit. *)
}

val generate : params -> fleet
(** @raise Invalid_argument when {!validate_params} rejects [params]. *)

val spec_to_string : params -> string
(** Canonical spec, e.g. ["fat-tree:k=8:hosts=2:policies=2:mode=closed:seed=42"]. *)

val spec_of_string : string -> (params, string) result
(** Parse a spec: a shape name followed by [key=value] fields, all
    optional (["fat-tree:k=4:seed=7"]).  Accepts an optional ["fleet:"]
    prefix.  Validates the result. *)

val device_count : fleet -> int
val link_count : fleet -> int

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process (VmHWM from /proc, Linux);
    [None] where unavailable.  Used by [bench scale] and the CLI. *)
