open Heimdall_net
open Heimdall_control
open Heimdall_msp

type event_kind = Honest_repair | Exfiltration | Rogue_change | Careless

let event_kind_to_string = function
  | Honest_repair -> "honest repair"
  | Exfiltration -> "exfiltration"
  | Rogue_change -> "rogue change"
  | Careless -> "careless erase"

type event = { index : int; kind : event_kind }
type model = Rmm_model | Heimdall_model

let model_to_string = function Rmm_model -> "rmm" | Heimdall_model -> "heimdall"

type tally = {
  model : model;
  tickets : int;
  repaired : int;
  secrets_leaked : int;
  policies_damaged : int;
  attacks_blocked : int;
}

(* A tiny deterministic LCG (Numerical Recipes constants) so campaigns
   replay bit-for-bit. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1664525) + 1013904223) land 0x3FFFFFFF;
    !state mod bound

let events ~seed ~tickets ~malicious_pct =
  let next = lcg seed in
  List.init tickets (fun index ->
      let kind =
        if next 100 < malicious_pct then
          match next 3 with 0 -> Exfiltration | 1 -> Rogue_change | _ -> Careless
        else Honest_repair
      in
      { index; kind })

(* ------------------------------------------------------------------ *)
(* Per-event handlers.  Each returns (repaired, leaked, damaged,
   blocked) increments; events are episodic (evaluated against the
   healthy network) so models are compared on identical inputs.         *)
(* ------------------------------------------------------------------ *)

(* Round-robin issue selection for honest repairs.  Guarded: a network
   with no prepared issues must fail with a clear message, not a
   [Division_by_zero] from [mod] (or a [List.nth] failure). *)
let issue_for issues event =
  match issues with
  | [] ->
      invalid_arg
        (Printf.sprintf
           "Campaign: honest-repair event %d but the network supplies no issues"
           event.index)
  | _ -> List.nth issues (event.index mod List.length issues)

let gateway_of net =
  (* Any access router carrying an SVI makes a good erase target. *)
  match
    List.find_opt
      (fun n ->
        Network.kind n net = Some Topology.Router
        && List.exists
             (fun (i : Heimdall_config.Ast.interface) ->
               String.length i.if_name > 4 && String.sub i.if_name 0 4 = "vlan")
             (Network.config_exn n net).interfaces)
      (Network.node_names net)
  with
  | Some n -> n
  | None -> List.hd (Network.node_names net)

let rogue_commands net =
  (* Open the first deny rule's pair on whichever device carries an ACL. *)
  let acl_node =
    List.find_opt
      (fun n -> (Network.config_exn n net).acls <> [])
      (Network.node_names net)
  in
  match acl_node with
  | None -> None
  | Some node ->
      let acl = List.hd (Network.config_exn node net).acls in
      Some
        (Attacks.malicious_acl_commands ~acl:acl.Acl.name ~seq:1 ~src:Prefix.any
           ~dst:Prefix.any ~node)

let routers net =
  List.filter
    (fun n ->
      match Network.kind n net with
      | Some (Topology.Router | Topology.Firewall) -> true
      | _ -> false)
    (Network.node_names net)

let run_rmm_event net policies issues event =
  match event.kind with
  | Honest_repair ->
      let issue = issue_for issues event in
      let run = Workflow.run_current ~production:net ~issue in
      ((if run.Workflow.resolved then 1 else 0), 0, 0, 0)
  | Exfiltration ->
      let session = Rmm.open_direct_session net in
      let r = Attacks.exfiltrate ~production:net ~targets:(routers net) session in
      (0, List.length r.Attacks.leaked, 0, 0)
  | Rogue_change -> (
      match rogue_commands net with
      | None -> (0, 0, 0, 0)
      | Some commands ->
          let session = Rmm.open_direct_session net in
          let (_ : (string, Heimdall_twin.Session.error) result list) =
            Heimdall_twin.Session.exec_many session commands
          in
          let after = Rmm.resulting_network session in
          (0, 0, Attacks.policy_damage ~policies ~before:net ~after, 0))
  | Careless ->
      let session = Rmm.open_direct_session net in
      let (_ : (string, Heimdall_twin.Session.error) result list) =
        Heimdall_twin.Session.exec_many session
          (Attacks.erase_gateway_commands ~gateway:(gateway_of net))
      in
      let after = Rmm.resulting_network session in
      (0, 0, Attacks.policy_damage ~policies ~before:net ~after, 0)

let heimdall_session_for net ticket =
  let slice =
    Heimdall_twin.Twin.slice_nodes ~production:net ~endpoints:ticket.Ticket.endpoints ()
  in
  let privilege = Priv_gen.for_ticket ~network:net ~slice ticket in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:ticket.Ticket.endpoints () in
  (Heimdall_twin.Twin.open_session ~privilege em, privilege)

let generic_ticket net =
  let hosts =
    List.filter (fun n -> Network.kind n net = Some Topology.Host) (Network.node_names net)
  in
  let endpoints =
    match hosts with a :: b :: _ -> [ a; b ] | a :: _ -> [ a ] | [] -> []
  in
  Ticket.make ~id:"CAMPAIGN" ~kind:Ticket.Connectivity ~description:"campaign event"
    ~endpoints

let run_heimdall_event net policies issues event =
  match event.kind with
  | Honest_repair ->
      let issue = issue_for issues event in
      let run = Workflow.run_heimdall ~production:net ~policies ~issue () in
      ((if run.Workflow.resolved then 1 else 0), 0, 0, 0)
  | Exfiltration ->
      let session, _ = heimdall_session_for net (generic_ticket net) in
      let r = Attacks.exfiltrate ~production:net ~targets:(routers net) session in
      (0, List.length r.Attacks.leaked, 0, (if r.Attacks.leaked = [] then 1 else 0))
  | Rogue_change -> (
      match rogue_commands net with
      | None -> (0, 0, 0, 1)
      | Some commands ->
          let session, privilege = heimdall_session_for net (generic_ticket net) in
          let (_ : (string, Heimdall_twin.Session.error) result list) =
            Heimdall_twin.Session.exec_many session commands
          in
          let outcome =
            Heimdall_enforcer.Enforcer.process ~production:net ~policies ~privilege
              ~session ()
          in
          let after =
            Option.value outcome.Heimdall_enforcer.Enforcer.updated ~default:net
          in
          let damage = Attacks.policy_damage ~policies ~before:net ~after in
          (0, 0, damage, (if damage = 0 then 1 else 0)))
  | Careless ->
      let session, _ = heimdall_session_for net (generic_ticket net) in
      let results =
        Heimdall_twin.Session.exec_many session
          (Attacks.erase_gateway_commands ~gateway:(gateway_of net))
      in
      let blocked = List.exists Result.is_error results in
      (0, 0, 0, (if blocked then 1 else 0))

let run ?(seed = 42) ?(tickets = 40) ?(malicious_pct = 20) net policies issues =
  (* No blanket issue check here: an all-malicious campaign never draws
     an issue, and [issue_for] reports the empty case clearly if an
     honest repair does come up. *)
  let stream = events ~seed ~tickets ~malicious_pct in
  let tally model handler =
    let repaired, leaked, damaged, blocked =
      List.fold_left
        (fun (r, l, d, b) event ->
          let r', l', d', b' = handler net policies issues event in
          (r + r', l + l', d + d', b + b'))
        (0, 0, 0, 0) stream
    in
    {
      model;
      tickets;
      repaired;
      secrets_leaked = leaked;
      policies_damaged = damaged;
      attacks_blocked = blocked;
    }
  in
  [ tally Rmm_model run_rmm_event; tally Heimdall_model run_heimdall_event ]

let render tallies =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Model     Tickets  Repaired  Secrets leaked  Policies damaged  Attacks blocked\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s  %7d  %8d  %14d  %16d  %15d\n" (model_to_string t.model)
           t.tickets t.repaired t.secrets_leaked t.policies_damaged t.attacks_blocked))
    tallies;
  Buffer.contents buf
