open Heimdall_net
open Heimdall_control
open Heimdall_verify
open Heimdall_msp

let cached f =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some v -> v
    | None ->
        let v = f () in
        cell := Some v;
        v

let enterprise =
  cached (fun () ->
      let net = Enterprise.build () in
      (net, Enterprise.policies net))

let university =
  cached (fun () ->
      let net = University.build () in
      (net, University.policies net))

type scenario = {
  scenario_name : string;
  net : Network.t;
  policies : Heimdall_verify.Policy.t list;
  issues : Issue.t list;
}

let scenario_names = [ "enterprise"; "university" ]

let scenario_of_name = function
  | "enterprise" ->
      let net, policies = enterprise () in
      Some { scenario_name = "enterprise"; net; policies; issues = Enterprise.issues net }
  | "university" ->
      let net, policies = university () in
      Some { scenario_name = "university"; net; policies; issues = University.issues net }
  | name when String.length name > 6 && String.sub name 0 6 = "fleet:" -> (
      (* Generated fleet, e.g. "fleet:fat-tree:k=8:seed=42" — the whole
         pipeline (lint, analyze, chaos, serve, ...) runs on it unmodified. *)
      match Fleetgen.spec_of_string name with
      | Error _ -> None
      | Ok params ->
          let fleet = Fleetgen.generate params in
          Some
            {
              scenario_name = fleet.Fleetgen.name;
              net = fleet.Fleetgen.net;
              policies = fleet.Fleetgen.policies;
              issues = fleet.Fleetgen.issues;
            })
  | _ -> None

(* --------------------------------------------------------------- *)
(* Table 1                                                          *)
(* --------------------------------------------------------------- *)

type table1_row = {
  network : string;
  routers : int;
  hosts : int;
  links : int;
  policies : int;
  config_lines : int;
}

let table1_row network net policies =
  let topo = Network.topology net in
  {
    network;
    routers =
      List.length (Topology.node_names ~kind:Topology.Router topo)
      + List.length (Topology.node_names ~kind:Topology.Firewall topo);
    hosts = List.length (Topology.node_names ~kind:Topology.Host topo);
    links = Topology.link_count topo;
    policies = List.length policies;
    config_lines = Network.total_config_lines net;
  }

let table1 () =
  let ent, ent_p = enterprise () in
  let uni, uni_p = university () in
  [ table1_row "Enterprise" ent ent_p; table1_row "University" uni uni_p ]

let render_table1 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Network     #routers  #hosts  #links  #policies  lines of configs\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-11s %8d  %6d  %6d  %9d  %16d\n" r.network r.routers r.hosts
           r.links r.policies r.config_lines))
    rows;
  Buffer.contents buf

(* --------------------------------------------------------------- *)
(* Figure 7                                                         *)
(* --------------------------------------------------------------- *)

type fig7_cell = {
  issue : string;
  workflow : string;
  steps : (string * float) list;
  total_s : float;
  resolved : bool;
}

let cell_of_run (r : Workflow.run) =
  {
    issue = r.issue;
    workflow = r.workflow;
    steps = List.map (fun (s : Workflow.step) -> (s.label, Workflow.step_total s)) r.steps;
    total_s = Workflow.total_s r;
    resolved = r.resolved;
  }

let fig7 ?(network = `Enterprise) () =
  let net, policies, issues =
    match network with
    | `Enterprise ->
        let net, p = enterprise () in
        (net, p, Enterprise.issues net)
    | `University ->
        let net, p = university () in
        (net, p, University.issues net)
  in
  List.concat_map
    (fun issue ->
      [
        cell_of_run (Workflow.run_current ~production:net ~issue);
        cell_of_run (Workflow.run_heimdall ~production:net ~policies ~issue ());
      ])
    issues

let render_fig7 cells =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Issue  Workflow   Total(s)  Resolved  Breakdown\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-9s %8.1f  %-8s  %s\n" c.issue c.workflow c.total_s
           (if c.resolved then "yes" else "NO")
           (String.concat ", "
              (List.map (fun (l, s) -> Printf.sprintf "%s=%.1fs" l s) c.steps))))
    cells;
  Buffer.contents buf

let fig7_overhead cells =
  let total issue wf =
    List.find_opt (fun c -> c.issue = issue && c.workflow = wf) cells
    |> Option.map (fun c -> c.total_s)
  in
  List.filter_map
    (fun issue ->
      match (total issue "heimdall", total issue "current") with
      | Some h, Some c -> Some (issue, h -. c)
      | _ -> None)
    (List.sort_uniq String.compare (List.map (fun c -> c.issue) cells))

(* --------------------------------------------------------------- *)
(* Figures 8 & 9                                                    *)
(* --------------------------------------------------------------- *)

let fig8 ?engine () =
  let net, policies = enterprise () in
  Metrics.sweep_all ?engine ~production:net ~policies ()

let fig9 ?engine () =
  let net, policies = university () in
  Metrics.sweep_all ?engine ~production:net ~policies ()

let render_sweep ~title summaries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf "Technique  Feasibility(%)  Attack surface(%)\n";
  List.iter
    (fun (s : Metrics.summary) ->
      Buffer.add_string buf
        (Printf.sprintf "%-9s  %14.1f  %17.1f\n"
           (Metrics.technique_to_string s.technique)
           s.feasibility_pct s.attack_surface_pct))
    summaries;
  Buffer.contents buf

(* --------------------------------------------------------------- *)
(* Ablation: continuous vs batch verification                       *)
(* --------------------------------------------------------------- *)

type verify_ablation = {
  policies_checked : int;
  batch_s : float;
  continuous_s : float;
  actions : int;
}

let ablation_verify () =
  let net, policies = university () in
  let issue = List.nth (University.issues net) 1 (* ospf *) in
  let broken = issue.Issue.inject net in
  let actions = List.length issue.Issue.fix_commands in
  let check () =
    let dp = Dataplane.compute broken in
    ignore (Policy.check_all dp policies)
  in
  let (), batch_s = Timing.elapsed check in
  let (), continuous_s =
    Timing.elapsed (fun () ->
        for _ = 1 to actions do
          check ()
        done)
  in
  { policies_checked = List.length policies; batch_s; continuous_s; actions }

let render_ablation_verify a =
  Printf.sprintf
    "Verification ablation (university, %d policies):\n\
    \  batch (verify once at ticket close): %.3f s\n\
    \  continuous (verify after each of %d actions): %.3f s  (%.1fx slower)\n"
    a.policies_checked a.batch_s a.actions a.continuous_s
    (a.continuous_s /. max 1e-9 a.batch_s)

(* --------------------------------------------------------------- *)
(* Ablation: slicer strategies                                      *)
(* --------------------------------------------------------------- *)

type slicer_ablation_row = {
  strategy : string;
  mean_slice_nodes : float;
  network_nodes : int;
  repair_feasible_pct : float;
}

let ablation_slicer () =
  let ent, _ = enterprise () in
  let uni, _ = university () in
  let cases =
    List.map (fun i -> (ent, i)) (Enterprise.issues ent)
    @ List.map (fun i -> (uni, i)) (University.issues uni)
  in
  let strategies =
    [
      Heimdall_twin.Slicer.All;
      Heimdall_twin.Slicer.Neighbor;
      Heimdall_twin.Slicer.Path;
      Heimdall_twin.Slicer.Task;
    ]
  in
  List.map
    (fun strategy ->
      let sizes, feasible =
        List.fold_left
          (fun (sizes, feasible) (net, (issue : Issue.t)) ->
            let broken = issue.inject net in
            let slice =
              Heimdall_twin.Slicer.slice strategy broken
                ~endpoints:issue.ticket.endpoints
            in
            ( List.length slice :: sizes,
              (if List.mem issue.root_cause slice then 1 else 0) :: feasible ))
          ([], []) cases
      in
      let n = float_of_int (List.length cases) in
      {
        strategy = Heimdall_twin.Slicer.strategy_to_string strategy;
        mean_slice_nodes =
          float_of_int (List.fold_left ( + ) 0 sizes) /. n;
        network_nodes =
          (Topology.node_count (Network.topology ent)
          + Topology.node_count (Network.topology uni))
          / 2;
        repair_feasible_pct = 100.0 *. float_of_int (List.fold_left ( + ) 0 feasible) /. n;
      })
    strategies

let render_ablation_slicer rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Slicer ablation (6 issues across both networks):\n\
     Strategy  Mean slice nodes  Root cause in slice(%)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-9s %17.1f  %21.1f\n" r.strategy r.mean_slice_nodes
           r.repair_feasible_pct))
    rows;
  Buffer.contents buf

(* --------------------------------------------------------------- *)
(* Ablation: audit + enclave overhead                               *)
(* --------------------------------------------------------------- *)

type audit_ablation = {
  records : int;
  append_per_s : float;
  verify_s : float;
  seal_unseal_s : float;
  tamper_detected : bool;
}

let ablation_audit () =
  let open Heimdall_enforcer in
  let records = 1000 in
  let audit = ref Audit.empty in
  let (), append_s =
    Timing.elapsed (fun () ->
        for i = 1 to records do
          audit :=
            Audit.append ~actor:"tech" ~action:"acl.rule" ~resource:"r8"
              ~detail:
                (Printf.sprintf "configure access-list SRV_PROT %d permit ip any any" i)
              ~verdict:"allowed" !audit
        done)
  in
  let verified, verify_s = Timing.elapsed (fun () -> Audit.verify !audit = Ok ()) in
  let enclave = Enforcer.default_enclave in
  let iterations = 100 in
  let (), seal_total_s =
    Timing.elapsed (fun () ->
        for _ = 1 to iterations do
          let sealed = Enclave.seal enclave (Audit.head !audit) in
          match Enclave.unseal enclave sealed with
          | Ok _ -> ()
          | Error m -> invalid_arg m
        done)
  in
  let seal_unseal_s = seal_total_s /. float_of_int iterations in
  let tampered =
    Audit.tamper 500 (fun r -> { r with Audit.verdict = "denied" }) !audit
  in
  {
    records;
    append_per_s = float_of_int records /. max 1e-9 append_s;
    verify_s;
    seal_unseal_s;
    tamper_detected = verified && Audit.verify tampered <> Ok ();
  }

let render_ablation_audit a =
  Printf.sprintf
    "Audit/enclave ablation:\n\
    \  append throughput: %.0f records/s\n\
    \  verify %d-record chain: %.4f s\n\
    \  seal+unseal audit head: %.6f s/op\n\
    \  in-place tamper detected: %b\n"
    a.append_per_s a.records a.verify_s a.seal_unseal_s a.tamper_detected

(* --------------------------------------------------------------- *)
(* Campaign                                                          *)
(* --------------------------------------------------------------- *)

let campaign ?seed ?tickets ?malicious_pct () =
  let net, policies = enterprise () in
  Campaign.run ?seed ?tickets ?malicious_pct net policies (Enterprise.issues net)

(* --------------------------------------------------------------- *)
(* Attack containment                                               *)
(* --------------------------------------------------------------- *)

type containment = {
  scenario : string;
  baseline_leaked : int;
  baseline_damage : int;
  heimdall_leaked : int;
  heimdall_damage : int;
  heimdall_blocked : bool;
}

let heimdall_session net ticket =
  let slice =
    Heimdall_twin.Twin.slice_nodes ~production:net ~endpoints:ticket.Ticket.endpoints ()
  in
  let privilege = Priv_gen.for_ticket ~network:net ~slice ticket in
  let emulation =
    Heimdall_twin.Twin.build ~production:net ~endpoints:ticket.Ticket.endpoints ()
  in
  (Heimdall_twin.Twin.open_session ~privilege emulation, privilege)

let exfiltration_scenario () =
  let net, policies = enterprise () in
  let routers =
    Network.node_names net
    |> List.filter (fun n -> Network.kind n net = Some Topology.Router)
  in
  (* Baseline: full RMM access. *)
  let baseline_session = Rmm.open_direct_session net in
  let baseline = Attacks.exfiltrate ~production:net ~targets:routers baseline_session in
  (* Heimdall: the attacker holds a twin session for a VLAN ticket. *)
  let ticket = (List.nth (Enterprise.issues net) 0).Issue.ticket in
  let session, _ = heimdall_session net ticket in
  let heimdall = Attacks.exfiltrate ~production:net ~targets:routers session in
  ignore policies;
  {
    scenario = "APT10-style data exfiltration";
    baseline_leaked = List.length baseline.leaked;
    baseline_damage = 0;
    heimdall_leaked = List.length heimdall.leaked;
    heimdall_damage = 0;
    heimdall_blocked = heimdall.leaked = [] && heimdall.denied > 0;
  }

let malicious_acl_scenario () =
  let net, policies = enterprise () in
  let commands =
    Attacks.malicious_acl_commands ~acl:"SRV_PROT" ~seq:5
      ~src:(Prefix.of_string "10.1.10.0/24") ~dst:Enterprise.sensitive_subnet ~node:"r8"
  in
  (* Baseline: the rogue rule lands in production directly. *)
  let baseline_session = Rmm.open_direct_session net in
  let (_ : (string, Heimdall_twin.Session.error) result list) =
    Heimdall_twin.Session.exec_many baseline_session commands
  in
  let baseline_after = Rmm.resulting_network baseline_session in
  let baseline_damage = Attacks.policy_damage ~policies ~before:net ~after:baseline_after in
  (* Heimdall: same commands inside a twin for a server-connectivity
     ticket; the monitor allows them (acl edits are in-class), but the
     enforcer's policy verification rejects the import. *)
  let ticket =
    Ticket.make ~id:"ENT-900" ~kind:Ticket.Connectivity
      ~description:"h1 reports intermittent access to the web server"
      ~endpoints:[ "h1"; "h8" ]
  in
  let session, privilege = heimdall_session net ticket in
  let (_ : (string, Heimdall_twin.Session.error) result list) =
    Heimdall_twin.Session.exec_many session commands
  in
  let outcome =
    Heimdall_enforcer.Enforcer.process ~production:net ~policies ~privilege ~session ()
  in
  let heimdall_after =
    Option.value outcome.Heimdall_enforcer.Enforcer.updated ~default:net
  in
  {
    scenario = "malicious ACL rule (insider)";
    baseline_leaked = 0;
    baseline_damage;
    heimdall_leaked = 0;
    heimdall_damage = Attacks.policy_damage ~policies ~before:net ~after:heimdall_after;
    heimdall_blocked = not outcome.Heimdall_enforcer.Enforcer.approved;
  }

let careless_erase_scenario () =
  let net, policies = enterprise () in
  (* The technician means to work on the isp ticket (root cause r1) but
     fat-fingers an erase on r4 — the office gateway every S1 host
     depends on (the paper's Figure 3 incident). *)
  let commands = Attacks.erase_gateway_commands ~gateway:"r4" in
  let baseline_session = Rmm.open_direct_session net in
  let (_ : (string, Heimdall_twin.Session.error) result list) =
    Heimdall_twin.Session.exec_many baseline_session commands
  in
  let baseline_after = Rmm.resulting_network baseline_session in
  let baseline_damage = Attacks.policy_damage ~policies ~before:net ~after:baseline_after in
  let ticket = (List.nth (Enterprise.issues net) 2).Issue.ticket in
  let session, privilege = heimdall_session net ticket in
  let (_ : (string, Heimdall_twin.Session.error) result list) =
    Heimdall_twin.Session.exec_many session commands
  in
  let outcome =
    Heimdall_enforcer.Enforcer.process ~production:net ~policies ~privilege ~session ()
  in
  let heimdall_after =
    Option.value outcome.Heimdall_enforcer.Enforcer.updated ~default:net
  in
  {
    scenario = "careless erase on the office gateway";
    baseline_leaked = 0;
    baseline_damage;
    heimdall_leaked = 0;
    heimdall_damage = Attacks.policy_damage ~policies ~before:net ~after:heimdall_after;
    heimdall_blocked = Heimdall_twin.Session.denied_count session > 0;
  }

let attack_containment () =
  [ exfiltration_scenario (); malicious_acl_scenario (); careless_erase_scenario () ]

let render_containment rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Attack containment (baseline RMM vs Heimdall):\n\
     Scenario                          RMM leaked/damage   Heimdall leaked/damage  Blocked\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-32s  %8d/%-8d    %10d/%-8d    %b\n" c.scenario c.baseline_leaked
           c.baseline_damage c.heimdall_leaked c.heimdall_damage c.heimdall_blocked))
    rows;
  Buffer.contents buf
