(** One entry point per paper artifact (see DESIGN.md's experiment index).
    Each [run_*] returns structured results plus a paper-shaped textual
    rendering; the bench harness and the CLI both go through here. *)

open Heimdall_control

(** {2 Table 1 — evaluation networks} *)

type table1_row = {
  network : string;
  routers : int;  (** Router + firewall devices. *)
  hosts : int;
  links : int;
  policies : int;
  config_lines : int;
}

val table1 : unit -> table1_row list
val render_table1 : table1_row list -> string

(** {2 Figure 7 — pilot study timing} *)

type fig7_cell = {
  issue : string;
  workflow : string;
  steps : (string * float) list;  (** Step label, seconds (human+compute). *)
  total_s : float;
  resolved : bool;
}

val fig7 : ?network:[ `Enterprise | `University ] -> unit -> fig7_cell list
(** Default [`Enterprise] (the paper omits the university plot "due to
    similarity"). *)

val render_fig7 : fig7_cell list -> string

val fig7_overhead : fig7_cell list -> (string * float) list
(** Heimdall-minus-Current total per issue — the paper's headline "+28 s
    average" number. *)

(** {2 Figures 8 & 9 — attack surface vs feasibility} *)

val fig8 : ?engine:Heimdall_verify.Engine.t -> unit -> Metrics.summary list
(** Enterprise sweep: All / Neighbor / Heimdall.  [?engine] selects the
    verification engine (domain pool + caches); the default is a private
    single-domain engine. *)

val fig9 : ?engine:Heimdall_verify.Engine.t -> unit -> Metrics.summary list
(** University sweep. *)

val render_sweep : title:string -> Metrics.summary list -> string

(** {2 Ablations} *)

type verify_ablation = {
  policies_checked : int;
  batch_s : float;  (** One verification at ticket close (Heimdall). *)
  continuous_s : float;  (** Verify after every technician action (strawman). *)
  actions : int;
}

val ablation_verify : unit -> verify_ablation
(** Runs on the university network (the paper's "25 s to check 175
    constraints" strawman). *)

val render_ablation_verify : verify_ablation -> string

type slicer_ablation_row = {
  strategy : string;
  mean_slice_nodes : float;
  network_nodes : int;
  repair_feasible_pct : float;
}

val ablation_slicer : unit -> slicer_ablation_row list
(** Slice size vs repair feasibility for All/Neighbor/Path/Task over the
    enterprise issues and the interface-failure sweep endpoints. *)

val render_ablation_slicer : slicer_ablation_row list -> string

type audit_ablation = {
  records : int;
  append_per_s : float;
  verify_s : float;
  seal_unseal_s : float;  (** Seal + unseal of the audit head, per op. *)
  tamper_detected : bool;
}

val ablation_audit : unit -> audit_ablation
val render_ablation_audit : audit_ablation -> string

(** {2 Campaign simulation (longitudinal extension)} *)

val campaign : ?seed:int -> ?tickets:int -> ?malicious_pct:int -> unit -> Campaign.tally list
(** Run the campaign on the enterprise network. *)

(** {2 Attack containment (motivating incidents, §2.2)} *)

type containment = {
  scenario : string;
  baseline_leaked : int;  (** Secrets exfiltrated / damage under RMM. *)
  baseline_damage : int;  (** Policies broken in production under RMM. *)
  heimdall_leaked : int;
  heimdall_damage : int;
  heimdall_blocked : bool;  (** Monitor or enforcer stopped the attack. *)
}

val attack_containment : unit -> containment list
val render_containment : containment list -> string

(** {2 Helpers} *)

val enterprise : unit -> Network.t * Heimdall_verify.Policy.t list
(** Cached healthy enterprise network + policies. *)

val university : unit -> Network.t * Heimdall_verify.Policy.t list

(** {2 Named scenarios}

    The evaluation networks, keyed by name.  Carrying the name alongside
    the network means downstream consumers (the CLI in particular) never
    have to guess which scenario a [Network.t] came from by probing for
    well-known node names. *)

type scenario = {
  scenario_name : string;  (** ["enterprise"] or ["university"]. *)
  net : Network.t;
  policies : Heimdall_verify.Policy.t list;
  issues : Heimdall_msp.Issue.t list;
}

val scenario_names : string list

val scenario_of_name : string -> scenario option
(** Cached, like {!enterprise}/{!university}.  Also accepts generated
    fleet specs (["fleet:fat-tree:k=8:seed=42"], see {!Fleetgen}) —
    those are rebuilt per call (deterministic, not cached). *)
