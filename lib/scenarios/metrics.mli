(** The Figure 8/9 experiment: the security/feasibility trade-off sweep.

    Paper methodology (§5): create an issue by bringing down each
    interface in turn; for each access technique check whether the
    technician can reach the root-cause node (feasibility), then count
    the commands the technique exposes and the policies those commands
    could violate, and combine them into the attack-surface metric

    {v AS(%) = (Σ C_n / Σ A_n) · 0.5 + (VP / P) · 0.5) · 100 v}

    where [C_n]/[A_n] are allowed/available commands on node [n], [VP]
    the number of potentially violable policies and [P] the policy
    count. *)

open Heimdall_net
open Heimdall_control
open Heimdall_verify

type technique = All_access | Neighbor_access | Heimdall_twin

val technique_to_string : technique -> string

type point = {
  failed : Topology.endpoint;  (** The interface brought down. *)
  feasible : bool;  (** Technician can repair the root cause. *)
  attack_surface : float;  (** Percentage, per the formula above. *)
  exposed_nodes : int;  (** Nodes with at least one allowed command. *)
}

type summary = {
  technique : technique;
  points : point list;
  feasibility_pct : float;  (** % of failures repairable. *)
  attack_surface_pct : float;  (** Mean attack surface. *)
}

val failure_candidates : Network.t -> Topology.endpoint list
(** The interfaces swept: wired, addressed, enabled ports plus SVIs on
    routers and firewalls. *)

val sweep :
  ?engine:Engine.t ->
  production:Network.t -> policies:Policy.t list -> technique -> summary
(** One technique over every failure candidate.  With [?engine] the
    points run across the engine's domain pool and dataplanes/traces are
    memoized; without one, a private single-domain engine keeps the
    sequential path fully deterministic.  Verdicts are identical for any
    domain count. *)

val sweep_all :
  ?engine:Engine.t ->
  production:Network.t -> policies:Policy.t list -> unit -> summary list
(** All three techniques over the same failures (shared per-failure
    work); order: All, Neighbor, Heimdall. *)
