open Heimdall_control
open Heimdall_verify
open Heimdall_twin
open Heimdall_faults
open Heimdall_msp

type result = {
  scenario : string;
  issue : string;
  seed : int;
  occurrences : Injector.occurrence list;
  kinds : string list;
  twin_retries : int;
  outcome : Heimdall_enforcer.Enforcer.outcome;
  resolved : bool;
  surviving_violations : (Policy.t * string) list;
  audit_ok : (unit, string) Stdlib.result;
}

let passed r =
  r.resolved
  && r.surviving_violations = []
  && r.audit_ok = Ok ()
  && (match r.outcome.Heimdall_enforcer.Enforcer.apply with
     | Some a -> a.Heimdall_enforcer.Applier.rollback = None
     | None -> false)

(* Configuration edits are the only commands the twin fault hook sees;
   the twin plan is sized by how many the fix script will issue. *)
let count_edits commands =
  List.length
    (List.filter
       (fun line ->
         match Command.parse_result line with
         | Ok (Command.Configure _) -> true
         | Ok _ | Error _ -> false)
       commands)

(* Drive the fix script the way a careful technician would under a flaky
   device: a command that fails at execution (not at the monitor — a
   denial is final) is retried up to [max_attempts] times. *)
let exec_with_retry session ~max_attempts lines =
  let retries = ref 0 in
  List.iter
    (fun line ->
      let rec go attempt =
        match Session.exec session line with
        | Ok _ -> ()
        | Error (Session.Exec_failed _) when attempt < max_attempts ->
            incr retries;
            go (attempt + 1)
        | Error _ -> ()
      in
      go 1)
    lines;
  !retries

let run ?engine ?obs ?(max_attempts = Heimdall_enforcer.Applier.default_max_attempts)
    ~(scenario : Experiments.scenario) ~(issue : Issue.t) ~seed () =
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  Heimdall_obs.Obs.span obs "chaos"
    ~attrs:
      [
        ("scenario", scenario.Experiments.scenario_name);
        ("issue", issue.name);
        ("seed", string_of_int seed);
      ]
    (fun () ->
      let production = scenario.Experiments.net in
      let policies = scenario.Experiments.policies in
      let broken = issue.inject production in
      let slice =
        Twin.slice_nodes ?obs ~production:broken ~endpoints:issue.ticket.endpoints ()
      in
      let privilege = Priv_gen.for_ticket ~network:broken ~slice issue.ticket in
      let emulation =
        Twin.build ?obs ~production:broken ~endpoints:issue.ticket.endpoints ()
      in
      let injector =
        Injector.create ?obs
          (Fault.for_twin ~seed ~edits:(count_edits issue.fix_commands))
      in
      Emulation.set_fault_hook emulation (Some (Injector.twin_hook injector));
      let session = Twin.open_session ?obs ~privilege emulation in
      let twin_retries =
        exec_with_retry session ~max_attempts issue.fix_commands
      in
      (* The apply-stage plan needs the schedule length, known only now. *)
      let steps = List.length (Emulation.changes emulation) in
      Injector.add_faults injector
        (Fault.for_apply ~seed ~network:broken ~steps);
      let outcome =
        Heimdall_enforcer.Enforcer.process ?engine ?obs ~injector ~max_attempts
          ~production:broken ~policies ~privilege ~session ()
      in
      let final =
        match outcome.Heimdall_enforcer.Enforcer.updated with
        | Some net -> net
        | None -> broken
      in
      let dataplane net =
        match engine with
        | Some e -> Engine.dataplane e net
        | None -> Dataplane.compute net
      in
      let held_at_start =
        let report = Policy.check_all ?engine ?obs (dataplane broken) policies in
        List.filter
          (fun p ->
            not
              (List.exists
                 (fun (q, _) -> Policy.equal p q)
                 report.Policy.violations))
          policies
      in
      let surviving_violations =
        let report = Policy.check_all ?engine ?obs (dataplane final) policies in
        List.filter
          (fun (p, _) -> List.exists (Policy.equal p) held_at_start)
          report.Policy.violations
      in
      let resolved =
        outcome.Heimdall_enforcer.Enforcer.approved
        && Trace.is_delivered (Trace.trace (dataplane final) issue.probe)
      in
      let occurrences = Injector.occurrences injector in
      let kinds =
        List.sort_uniq compare
          (List.map
             (fun (o : Injector.occurrence) ->
               Fault.kind_name o.Injector.fault.Fault.kind)
             occurrences)
      in
      let r =
        {
          scenario = scenario.Experiments.scenario_name;
          issue = issue.name;
          seed;
          occurrences;
          kinds;
          twin_retries;
          outcome;
          resolved;
          surviving_violations;
          audit_ok =
            Heimdall_enforcer.Audit.verify
              outcome.Heimdall_enforcer.Enforcer.audit;
        }
      in
      Heimdall_obs.Obs.add_attr obs "passed" (string_of_bool (passed r));
      Heimdall_obs.Obs.add_attr obs "faults"
        (string_of_int (List.length occurrences));
      r)

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "chaos: %s / %s, seed %d\n" r.scenario r.issue r.seed);
  Buffer.add_string buf
    (Printf.sprintf "  faults fired: %d (%s)\n"
       (List.length r.occurrences)
       (String.concat ", " r.kinds));
  List.iter
    (fun o ->
      Buffer.add_string buf
        ("    " ^ Injector.occurrence_to_string o ^ "\n"))
    r.occurrences;
  Buffer.add_string buf
    (Printf.sprintf "  twin retries: %d\n" r.twin_retries);
  (match r.outcome.Heimdall_enforcer.Enforcer.apply with
  | Some a ->
      Buffer.add_string buf
        (Printf.sprintf "  apply retries: %d, rollback: %s\n"
           (List.length a.Heimdall_enforcer.Applier.retries)
           (match a.Heimdall_enforcer.Applier.rollback with
           | None -> "none"
           | Some rb ->
               Printf.sprintf "at step %d (%s)"
                 rb.Heimdall_enforcer.Applier.failed_step
                 rb.Heimdall_enforcer.Applier.failure))
  | None -> Buffer.add_string buf "  apply: not reached (import rejected)\n");
  Buffer.add_string buf
    (Printf.sprintf "  resolved: %b, surviving violations: %d, audit: %s\n"
       r.resolved
       (List.length r.surviving_violations)
       (match r.audit_ok with Ok () -> "verified" | Error m -> "FAILED: " ^ m));
  List.iter
    (fun (p, reason) ->
      Buffer.add_string buf
        (Printf.sprintf "    VIOLATED %s: %s\n" (Policy.to_string p) reason))
    r.surviving_violations;
  Buffer.add_string buf
    (Printf.sprintf "  verdict: %s\n" (if passed r then "PASS" else "FAIL"));
  Buffer.contents buf
