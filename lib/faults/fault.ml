open Heimdall_net
open Heimdall_control

type kind =
  | Link_down of Topology.endpoint
  | Device_crash of string
  | Partial_apply
  | Flaky_command
  | Enclave_restart

type stage = Twin | Apply

type t = { kind : kind; stage : stage; at : int; duration : int }

let kind_name = function
  | Link_down _ -> "link-down"
  | Device_crash _ -> "device-crash"
  | Partial_apply -> "partial-apply"
  | Flaky_command -> "flaky-command"
  | Enclave_restart -> "enclave-restart"

let stage_name = function Twin -> "twin" | Apply -> "apply"

let to_string f =
  let target =
    match f.kind with
    | Link_down e -> " " ^ Topology.endpoint_to_string e
    | Device_crash n -> " " ^ n
    | Partial_apply | Flaky_command | Enclave_restart -> ""
  in
  Printf.sprintf "%s%s at %s step %d (duration %d)" (kind_name f.kind) target
    (stage_name f.stage) f.at f.duration

let is_environmental = function
  | Link_down _ | Device_crash _ -> true
  | Partial_apply | Flaky_command | Enclave_restart -> false

(* The degraded view: the true network stays untouched, so a fault that
   expires recovers by simply no longer being overlaid. *)
let degrade faults net =
  List.fold_left
    (fun net f ->
      match f.kind with
      | Link_down ep ->
          Network.make
            (Topology.remove_link ep (Network.topology net))
            (Network.configs net)
      | Device_crash node ->
          let survivors =
            List.filter (fun n -> n <> node) (Network.node_names net)
          in
          if List.length survivors = List.length (Network.node_names net) then net
          else Network.restrict survivors net
      | Partial_apply | Flaky_command | Enclave_restart -> net)
    net faults

let blocks_command faults ~node =
  List.find_map
    (fun f ->
      match f.kind with
      | Device_crash n when n = node ->
          Some (Printf.sprintf "injected fault: device %s crashed" node)
      | Flaky_command ->
          Some (Printf.sprintf "injected fault: %s rejected the command" node)
      | _ -> None)
    faults

(* ------------------------------------------------------------------ *)
(* Seeded plan generation                                              *)
(* ------------------------------------------------------------------ *)

(* Separate stream tags keep the twin and apply plans independent of
   each other (the apply plan does not shift when the fix script grows). *)
let twin_tag = 0x7719
let apply_tag = 0xA551

let for_twin ~seed ~edits =
  if edits <= 0 then []
  else begin
    let st = Random.State.make [| twin_tag; seed |] in
    let fault () =
      {
        kind = Flaky_command;
        stage = Twin;
        at = 1 + Random.State.int st edits;
        duration = 1 + Random.State.int st 2;
      }
    in
    let first = fault () in
    if edits < 3 then [ first ]
    else
      let second = fault () in
      if second.at = first.at then [ first ]
      else List.sort (fun a b -> compare a.at b.at) [ first; second ]
  end

let for_apply ~seed ~network ~steps =
  if steps <= 0 then []
  else begin
    let st = Random.State.make [| apply_tag; seed |] in
    let topo = Network.topology network in
    let is_host n =
      match Topology.node n topo with
      | Some { Topology.kind = Topology.Host; _ } -> true
      | _ -> false
    in
    let pick_step () = 1 + Random.State.int st steps in
    (* Durations stay below the applier's retry budget so every
       environmental fault clears before the retries run out. *)
    let pick_duration () = 1 + Random.State.int st 2 in
    let faults = ref [] in
    let add kind duration =
      faults := { kind; stage = Apply; at = pick_step (); duration } :: !faults
    in
    add Partial_apply (pick_duration ());
    (* A link flap on an infrastructure link (both ends non-host).  The
       candidates go into a pre-sized array so the seeded pick costs one
       bounds-checked read instead of two list traversals; the array keeps
       list order, so draws and picks match the historical plans exactly. *)
    let infra =
      Array.of_list
        (List.filter
           (fun (l : Topology.link) ->
             (not (is_host l.Topology.a.Topology.node))
             && not (is_host l.Topology.b.Topology.node))
           (Topology.links topo))
    in
    if Array.length infra > 0 then begin
      let l = infra.(Random.State.int st (Array.length infra)) in
      let ep = if Random.State.bool st then l.Topology.a else l.Topology.b in
      add (Link_down ep) (pick_duration ())
    end;
    (* A crash of a non-host device, picked the same way. *)
    let devices =
      Array.of_list
        (List.filter (fun n -> not (is_host n)) (Topology.node_names topo))
    in
    if Array.length devices > 0 then
      add (Device_crash devices.(Random.State.int st (Array.length devices))) 1;
    add Enclave_restart 1;
    List.stable_sort (fun a b -> compare a.at b.at) (List.rev !faults)
  end
