(** The fault injector: the mutable runtime counterpart of a {!Fault}
    plan.

    One injector serves both stages of a chaos run — the twin session
    (through {!twin_hook}) and the enforcer's transactional apply
    (through {!on_attempt}).  Because the plan is fixed up front and
    every query is a pure function of (step, attempt), two runs with the
    same seed observe the same faults in the same order: the
    {!occurrences} log, the audit trail and the final verdicts are all
    byte-identical, at any engine domain count.

    Each fired fault is counted as a [fault.injected] metric and emitted
    as a [fault.injected] structured event on the optional
    {!Heimdall_obs.Obs.t} context. *)

type occurrence = {
  fault : Fault.t;
  step : int;  (** Twin edit index or apply step index where it fired. *)
  node : string;  (** Device it hit (["-"] when not device-scoped). *)
}

val occurrence_to_string : occurrence -> string

type t

val create : ?obs:Heimdall_obs.Obs.t -> Fault.t list -> t

val add_faults : t -> Fault.t list -> unit
(** Extend the plan (used to append the apply-stage plan once the
    schedule length is known, after the twin session ran). *)

val faults : t -> Fault.t list

val occurrences : t -> occurrence list
(** Every fault that actually fired, oldest first. *)

val on_attempt : t -> step:int -> attempt:int -> node:string -> Fault.t list
(** Apply-stage faults active while executing [attempt] of plan step
    [step] (whose change targets [node]).  A fault with [at = step] is
    active for attempts [1..duration]; its first attempt records an
    {!occurrence}.  Deterministic: repeated calls with the same
    coordinates return the same list (without re-recording). *)

val twin_hook : t -> node:string -> string option
(** Emulation-layer hook for twin-stage faults: consulted once per
    configuration-edit attempt; [Some reason] fails the edit.  A flaky
    fault at edit index [i] fails the first [duration] attempts of that
    edit, then clears.  The driver must retry a failed edit before
    issuing the next one (the hook distinguishes retries from fresh
    edits by whether the previous edit succeeded). *)
