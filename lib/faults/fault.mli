(** Deterministic, seeded fault plans for chaos testing.

    A fault plan is generated once, ahead of execution, from a seed — the
    same seed always yields the same plan, so a chaos run is perfectly
    reproducible: identical fault sequence, identical audit trail and
    identical final verdicts at any engine domain count.

    Faults fire at two stages of the pipeline:

    - {b Twin} faults hit the twin's emulation layer while the technician
      replays the fix script (a flaky device rejecting a configuration
      edit a bounded number of times).
    - {b Apply} faults hit the enforcer's transactional apply while the
      scheduled plan is pushed into production: environmental damage
      (link down / device crash) degrades the network the applier
      verifies against, partial application silently drops a step's
      change, and an enclave restart interrupts the enforcer itself.

    Every fault is {e bounded}: a [duration] counts the attempts it stays
    active within its step, after which it clears (the link comes back
    up, the crashed device reboots).  Bounded faults plus the applier's
    bounded retry guarantee the pipeline either recovers or rolls back —
    it never wedges. *)

open Heimdall_net
open Heimdall_control

type kind =
  | Link_down of Topology.endpoint
      (** The cable at this endpoint is unplugged while active; it comes
          back up (link up) when the fault expires. *)
  | Device_crash of string  (** The device vanishes while active. *)
  | Partial_apply
      (** The device reports success but the step's change silently does
          not take effect — detected by checkpoint digest comparison. *)
  | Flaky_command
      (** The device rejects a twin configuration edit while active. *)
  | Enclave_restart
      (** The enforcer's enclave restarts between plan steps; it must
          re-attest and keep going. *)

type stage = Twin | Apply

type t = {
  kind : kind;
  stage : stage;
  at : int;  (** 1-based twin edit index or apply plan-step index. *)
  duration : int;  (** Attempts the fault stays active within its step. *)
}

val kind_name : kind -> string
(** Short stable name: ["link-down"], ["device-crash"], ... *)

val to_string : t -> string

val is_environmental : kind -> bool
(** Link and device faults — the ones that degrade the observed network. *)

val degrade : t list -> Network.t -> Network.t
(** Overlay the active environmental faults onto a network: unplug downed
    links ({!Heimdall_net.Topology.remove_link}) and remove crashed
    devices ({!Heimdall_control.Network.restrict}).  Pure — the true
    network is never mutated, so expired faults recover for free. *)

val blocks_command : t list -> node:string -> string option
(** [Some reason] when an active fault makes a command against [node]
    fail outright (the device crashed, or a flaky-command fault). *)

val for_twin : seed:int -> edits:int -> t list
(** Twin-stage plan for a fix script with [edits] configuration edits:
    one or two flaky-command faults at seeded positions (empty when
    [edits <= 0]). *)

val for_apply : seed:int -> network:Network.t -> steps:int -> t list
(** Apply-stage plan for a [steps]-step schedule over [network]: one
    fault of every apply-stage kind at seeded steps — a partial
    application, a link flap on a seeded infrastructure link, a crash of
    a seeded non-host device, and an enclave restart — each with a
    bounded seeded duration (empty when [steps <= 0]).  Guarantees at
    least three distinct fault kinds for any seed on any network with an
    infrastructure link. *)
