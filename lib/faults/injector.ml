type occurrence = { fault : Fault.t; step : int; node : string }

let occurrence_to_string o =
  Printf.sprintf "step %d: %s%s" o.step
    (Fault.kind_name o.fault.Fault.kind)
    (if o.node = "-" then "" else " on " ^ o.node)

type t = {
  mutable faults : Fault.t list;
  obs : Heimdall_obs.Obs.t option;
  mutable fired : occurrence list;  (* newest first *)
  (* Twin-stage state: index of the configuration edit in flight and how
     many more attempts of it must still fail. *)
  mutable twin_edit : int;
  mutable twin_in_flight : bool;
  mutable twin_pending : int;
}

let create ?obs faults =
  { faults; obs; fired = []; twin_edit = 0; twin_in_flight = false; twin_pending = 0 }

let add_faults t fs = t.faults <- t.faults @ fs
let faults t = t.faults
let occurrences t = List.rev t.fired

let record t fault ~step ~node =
  if
    List.exists (fun o -> o.fault == fault && o.step = step) t.fired
  then ()
  else begin
  t.fired <- { fault; step; node } :: t.fired;
  Heimdall_obs.Obs.incr t.obs "fault.injected"
    ~labels:[ ("kind", Fault.kind_name fault.Fault.kind) ];
  Heimdall_obs.Obs.event t.obs "fault.injected"
    ~attrs:
      [
        ("kind", Fault.kind_name fault.Fault.kind);
        ("stage", (match fault.Fault.stage with Fault.Twin -> "twin" | Fault.Apply -> "apply"));
        ("step", string_of_int step);
        ("node", node);
      ]
  end

let fault_node (f : Fault.t) ~default =
  match f.Fault.kind with
  | Fault.Link_down ep -> ep.Heimdall_net.Topology.node
  | Fault.Device_crash n -> n
  | Fault.Partial_apply | Fault.Flaky_command -> default
  | Fault.Enclave_restart -> "-"

let on_attempt t ~step ~attempt ~node =
  let active =
    List.filter
      (fun (f : Fault.t) ->
        f.Fault.stage = Fault.Apply && f.Fault.at = step
        && attempt <= f.Fault.duration
        (* A restart is a point event at the step boundary, not a
           condition that persists across retries. *)
        && (f.Fault.kind <> Fault.Enclave_restart || attempt = 1))
      t.faults
  in
  if attempt = 1 then
    List.iter (fun f -> record t f ~step ~node:(fault_node f ~default:node)) active;
  active

let twin_fault_at t idx =
  List.find_opt
    (fun (f : Fault.t) -> f.Fault.stage = Fault.Twin && f.Fault.at = idx)
    t.faults

let twin_hook t ~node =
  if t.twin_in_flight then
    if t.twin_pending > 0 then begin
      t.twin_pending <- t.twin_pending - 1;
      Some (Printf.sprintf "injected fault: %s rejected the command (retry pending)" node)
    end
    else begin
      t.twin_in_flight <- false;
      None
    end
  else begin
    t.twin_edit <- t.twin_edit + 1;
    match twin_fault_at t t.twin_edit with
    | Some f ->
        t.twin_in_flight <- true;
        t.twin_pending <- f.Fault.duration - 1;
        record t f ~step:t.twin_edit ~node;
        Some (Printf.sprintf "injected fault: %s rejected the command" node)
    | None -> None
  end
