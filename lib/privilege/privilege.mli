(** [Privilege_msp]: the privilege specification an admin writes for a
    ticket, and its evaluator.

    A specification is an ordered list of predicates; each either allows
    or denies a set of (action, resource) pairs.  Evaluation is
    first-match-wins with an implicit trailing deny-everything — least
    privilege by default. *)

type effect = Allow | Deny

val effect_to_string : effect -> string

type pattern = string
(** Glob over dotted action names or resource names: ["*"] matches
    anything; a trailing ["*"] matches any suffix (["show.*"], ["r*"]);
    otherwise exact match. *)

val pattern_matches : pattern -> string -> bool

type resource = {
  node : pattern;  (** Device name pattern. *)
  iface : pattern option;  (** Interface scope; [None] = whole device. *)
}

val resource_of_string : string -> resource
(** ["r1"], ["r1:eth0"], ["*"], ["r*:eth*"]. *)

val resource_to_string : resource -> string

type predicate = { effect : effect; actions : pattern list; resources : resource list }

type t = { predicates : predicate list }
(** A [Privilege_msp].  The implicit default is deny. *)

val empty : t
(** Denies everything. *)

val allow_all : t
(** Allows everything — the baseline "full access" model. *)

val allow : ?iface:string -> actions:pattern list -> nodes:string list -> unit -> predicate
val deny : ?iface:string -> actions:pattern list -> nodes:string list -> unit -> predicate

val of_predicates : predicate list -> t
val append : predicate -> t -> t
(** Add a predicate at the end (lowest precedence). *)

val prepend : predicate -> t -> t
(** Add a predicate at the front (highest precedence). *)

type request = { action : Action.t; node : string; req_iface : string option }
(** A concrete thing the technician wants to do. *)

val request : ?iface:string -> Action.t -> string -> request

val predicate_matches : predicate -> request -> bool
(** Whether one predicate matches the request (used to attribute a
    decision to the predicate that made it). *)

val evaluate : t -> request -> effect
(** First matching predicate decides; no match means [Deny]. *)

val allows : t -> request -> bool

val allowed_actions : t -> node:string -> kind:Heimdall_net.Topology.node_kind -> Action.t list
(** The subset of {!Action.available_on}[ kind] this spec allows on the
    node (device scope, no interface restriction) — the paper's "allowed
    commands" [C_n]. *)

val predicate_count : t -> int
val predicate_to_string : predicate -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
