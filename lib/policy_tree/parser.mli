(** Text frontend for {!Poltree}, mirroring {!Heimdall_privilege.Dsl}:
    line-oriented statements, [#] comments, line-numbered parse errors.

    Grammar (informal):
    {v
    service web = tcp 80, tcp 443;
    node campus {
      scope 10.0.0.0/8, 192.168.0.0/16;
      owner agg-1, agg-2;
      deny! any from guests;
      allow web from any to 10.1.0.0/16;
      require fw-1 web from any;
      node building-a { scope 10.1.0.0/16; ... }
    }
    allow icmp from any;          # top-level rules attach to the root
    v}
    Rule actions are [allow], [deny], [deny!] (non-overridable
    invariant) and [require <device>].  A service is a name, [any], or
    inline atoms ([tcp 80], [udp 53], [tcp 1000-2000], [icmp],
    [tcp+udp 53]).  Endpoints are [any], a node name (its declared
    scope), or a comma-separated prefix list.  [from] defaults to [any],
    [to] to the enclosing node's scope. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Poltree.t
(** Parse and {!Poltree.validate}.  @raise Parse_error on failure. *)

val parse_result : string -> (Poltree.t, string) result
(** [parse] with the error rendered as ["line N: msg"]. *)
