(** The PolTree compiler: resolves the tree's inheritance and override
    semantics into exact {!Heimdall_net.Packet_set} hypercube unions.

    Decision semantics, made precise:

    - A node's {e universe} is the set of packets whose destination lies
      in its declared scope, intersected with every ancestor's universe.
    - Within a node's universe, its {e children decide first} (in
      declaration order — an earlier sibling's decisions pre-empt a
      later sibling's on any overlap), then the node's own rules apply
      first-match to whatever the children left undecided.  A child
      [allow] therefore overrides a parent [deny] for the child's scope
      — the child-overrides semantics.
    - [deny!] rules are invariants: besides deciding in sequence like a
      plain deny, their {e full} packet set is subtracted from the final
      permit set, so no descendant [allow] can resurrect the traffic
      (the contradiction POL001 reports).
    - [require w] rules decide nothing; they mark their packet set as
      needing waypoint [w].  The final require set of a waypoint is that
      union intersected with the final permit set.
    - Traffic no node decides falls to the implicit default: deny.

    Per-rule {e effective} sets record exactly the traffic each rule
    contributes to the final decision — after earlier rules in the node,
    after descendant decisions, and after earlier-sibling pre-emption at
    every ancestor (invariant subtraction excepted, so POL001 stays
    observable).  A rule whose effective set is empty is dead (POL002). *)

open Heimdall_net

type crule = {
  rule : Poltree.rule;
  index : int;  (** Position in the owning node's rule list. *)
  full : Packet_set.t;  (** Selector ∩ node universe. *)
  effective : Packet_set.t;  (** Contribution to the final decision. *)
}

type cnode = {
  path : string;  (** ["root/campus/building-a"]. *)
  name : string;
  depth : int;  (** Root is 0. *)
  universe : Packet_set.t;  (** dst ∈ scope, clipped by ancestors. *)
  owners : string list;
  crules : crule list;
  decided : Packet_set.t;  (** Decided by this node or a descendant. *)
  permit : Packet_set.t;  (** Pre-invariant permit of the subtree. *)
  invariant : Packet_set.t;  (** Union of this node's own [deny!] sets. *)
  is_leaf : bool;
}

type leaf = {
  leaf_path : string;
  leaf_universe : Packet_set.t;
  leaf_permit : Packet_set.t;  (** Final (invariant-subtracted). *)
  leaf_requires : (string * Packet_set.t) list;  (** Per waypoint. *)
}

type compiled = {
  tree : Poltree.t;
  nodes : cnode list;  (** Preorder. *)
  permit : Packet_set.t;  (** The one exact permit set. *)
  decided : Packet_set.t;  (** Explicitly decided (permit or deny). *)
  requires : (string * Packet_set.t) list;
      (** Waypoint → required ∩ permit, sorted by waypoint. *)
  leaves : leaf list;  (** Scope summaries for the tree's leaf nodes. *)
}

val compile : Poltree.t -> (compiled, string) result
(** Validates, then compiles.  Deterministic: equal trees compile to
    equal structures. *)

val compile_exn : Poltree.t -> compiled
(** @raise Invalid_argument on a tree {!Poltree.validate} rejects. *)

type verdict =
  | Permit of string list  (** Required waypoints, sorted (often []). *)
  | Deny_explicit  (** Some rule denies the flow. *)
  | Deny_default  (** No node decides it; the implicit default. *)

val verdict : compiled -> Flow.t -> verdict

val find_cnode : compiled -> string -> cnode option
(** By node name (the last path segment). *)

(** {1 Diff} *)

type tree_diff = {
  only_a : Packet_set.t;  (** Permitted by [a] but not [b]. *)
  only_b : Packet_set.t;
  require_drift : (string * Packet_set.t * Packet_set.t) list;
      (** Waypoint, required only in [a], required only in [b] —
          restricted to traffic both trees permit. *)
}

val diff : compiled -> compiled -> tree_diff
val diff_is_empty : tree_diff -> bool

val render_diff : tree_diff -> string
(** Human-readable, with {!Heimdall_net.Packet_set.sample} witness
    packets for every non-empty drift direction; ["identical"] when
    empty. *)
