open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify

type seg = {
  seg_prefix : Prefix.t;
  seg_group : string;
  seg_owners : string list;
}

let leaf_name p =
  "net-" ^ String.map (fun c -> if c = '/' then '-' else c) (Prefix.to_string p)

(* The OSPF area a subnet belongs to, read off its owning device's
   config: the interface's explicit area if set, else the area of the
   [network] statement covering it, else 0. *)
let area_of net dev subnet =
  match Network.config dev net with
  | None -> 0
  | Some (cfg : Ast.t) ->
      let iface_area =
        List.find_map
          (fun (i : Ast.interface) ->
            match i.addr with
            | Some a when Prefix.equal (Ifaddr.subnet a) subnet -> i.ospf_area
            | _ -> None)
          cfg.interfaces
      in
      (match iface_area with
      | Some a -> a
      | None -> (
          match cfg.ospf with
          | None -> 0
          | Some o -> (
              match
                List.find_opt (fun (p, _) -> Prefix.subsumes p subnet) o.networks
              with
              | Some (_, a) -> a
              | None -> 0)))

let segs_of_network net =
  Spec_miner.host_subnets net
  |> List.map (fun (subnet, _hosts) ->
         let owner = Network.owner_of_address (Prefix.host subnet 1) net in
         let seg_owners = match owner with Some (dev, _) -> [ dev ] | None -> [] in
         let seg_group =
           match owner with
           | Some (dev, _) -> Printf.sprintf "area-%d" (area_of net dev subnet)
           | None -> "area-0"
         in
         { seg_prefix = subnet; seg_group; seg_owners })

(* ---------------- clustering ---------------- *)

let service_of_flow (f : Flow.t) : string * Poltree.service =
  match f.proto with
  | Flow.Icmp -> ("ping", [ { Poltree.protos = [ Flow.Icmp ]; dp_lo = 0; dp_hi = Packet_set.max_port } ])
  | Flow.Tcp ->
      ( Printf.sprintf "tcp-%d" f.dst_port,
        [ { Poltree.protos = [ Flow.Tcp ]; dp_lo = f.dst_port; dp_hi = f.dst_port } ] )
  | Flow.Udp ->
      ( Printf.sprintf "udp-%d" f.dst_port,
        [ { Poltree.protos = [ Flow.Udp ]; dp_lo = f.dst_port; dp_hi = f.dst_port } ] )

let find_seg segs addr =
  (* Longest-prefix match so nested segments resolve to the tightest. *)
  List.fold_left
    (fun best s ->
      if Prefix.contains s.seg_prefix addr then
        match best with
        | Some b when Prefix.length b.seg_prefix >= Prefix.length s.seg_prefix -> best
        | _ -> Some s
      else best)
    None segs

(* Sort key: denies bind tightest, then requires, then allows; ties by
   service then source, so mined trees render identically across runs. *)
let action_rank = function
  | Poltree.Deny_final -> 0
  | Poltree.Deny -> 1
  | Poltree.Require _ -> 2
  | Poltree.Allow -> 3

let ep_key = function
  | Poltree.Any -> "0:any"
  | Poltree.Seg s -> "1:" ^ s
  | Poltree.Nets l -> "2:" ^ String.concat "," (List.map Prefix.to_string l)

let rule_key (r : Poltree.rule) =
  ( action_rank r.action,
    (match r.action with Poltree.Require w -> w | _ -> ""),
    (match r.service with Poltree.Named n -> n | Poltree.Inline _ -> "~inline"),
    ep_key r.src,
    match r.dst with None -> "" | Some e -> ep_key e )

let sort_rules rules = List.sort_uniq (fun a b -> compare (rule_key a) (rule_key b)) rules

let of_policies ~segs policies =
  let services = ref [] in
  let register_service (f : Flow.t) =
    let name, svc = service_of_flow f in
    if not (List.mem_assoc name !services) then services := (name, svc) :: !services;
    name
  in
  let src_ep (f : Flow.t) =
    match find_seg segs f.src with
    | Some s -> Poltree.Seg (leaf_name s.seg_prefix)
    | None -> Poltree.Nets [ Prefix.host_prefix f.src ]
  in
  (* Rules per destination leaf, plus root rules for destinations in no
     segment. *)
  let leaf_rules : (string, Poltree.rule list ref) Hashtbl.t = Hashtbl.create 64 in
  let root_rules = ref [] in
  let add_rule dst_seg (r : Poltree.rule) =
    match dst_seg with
    | Some s ->
        let key = leaf_name s.seg_prefix in
        let cell =
          match Hashtbl.find_opt leaf_rules key with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.add leaf_rules key c;
              c
        in
        cell := r :: !cell
    | None -> root_rules := r :: !root_rules
  in
  List.iter
    (fun (p : Policy.t) ->
      let svc = Poltree.Named (register_service p.flow) in
      let src = src_ep p.flow in
      let dst_seg = find_seg segs p.flow.dst in
      let dst =
        match dst_seg with
        | Some _ -> None
        | None -> Some (Poltree.Nets [ Prefix.host_prefix p.flow.dst ])
      in
      match p.intent with
      | Policy.Reachable -> add_rule dst_seg { Poltree.action = Poltree.Allow; service = svc; src; dst }
      | Policy.Isolated -> add_rule dst_seg { Poltree.action = Poltree.Deny; service = svc; src; dst }
      | Policy.Waypoint w ->
          add_rule dst_seg { Poltree.action = Poltree.Require w; service = svc; src; dst };
          add_rule dst_seg { Poltree.action = Poltree.Allow; service = svc; src; dst })
    policies;
  let leaves =
    List.map
      (fun s ->
        let name = leaf_name s.seg_prefix in
        let rules =
          match Hashtbl.find_opt leaf_rules name with
          | Some c -> sort_rules !c
          | None -> []
        in
        (s, Poltree.node ~owners:s.seg_owners ~rules ~scope:[ s.seg_prefix ] name))
      segs
  in
  let groups =
    List.sort_uniq String.compare (List.map (fun s -> s.seg_group) segs)
  in
  let group_nodes =
    List.map
      (fun g ->
        let members = List.filter (fun (s, _) -> s.seg_group = g) leaves in
        let children = List.map snd members in
        let scope = List.map (fun (s, _) -> s.seg_prefix) members in
        (* Hoist rules shared by every child (destination defaulting to
           the child's own scope) up to the group node — the clustering
           that makes inheritance visible. *)
        let shared =
          match children with
          | [] | [ _ ] -> []
          | first :: rest ->
              List.filter
                (fun (r : Poltree.rule) ->
                  r.dst = None
                  && List.for_all
                       (fun (c : Poltree.node) -> List.mem r c.Poltree.rules)
                       rest)
                first.Poltree.rules
        in
        let children =
          if shared = [] then children
          else
            List.map
              (fun (c : Poltree.node) ->
                { c with
                  Poltree.rules =
                    List.filter (fun r -> not (List.mem r shared)) c.Poltree.rules })
              children
        in
        Poltree.node ~rules:(sort_rules shared) ~children ~scope g)
      groups
  in
  {
    Poltree.services = List.sort (fun (a, _) (b, _) -> String.compare a b) !services;
    root = Poltree.make_root ~rules:(sort_rules !root_rules) group_nodes;
  }

let mine ?options dp =
  let net = Dataplane.network dp in
  of_policies ~segs:(segs_of_network net) (Spec_miner.mine ?options dp)
