(** PolTree: a hierarchical policy language over segment and service
    hierarchies.

    A tree mirrors how operators think about a network — campus →
    building → vlan → host-group — rather than how probes enumerate it.
    Each node owns a {e scope} (a set of destination prefixes) and an
    ordered rule list; a packet is decided by the deepest node whose
    scope contains its destination, walking outward to the root on the
    first match ({e child-overrides} semantics).  [deny!] rules are
    invariants: they bind the whole subtree and cannot be overridden by
    a descendant's [allow] — the contradiction the POL001 analyzer
    reports.  Everything compiles to the exact {!Heimdall_net.Packet_set}
    algebra (see {!Compile}), so all analyses are exact, not heuristic.

    This module is the AST plus its text renderer and JSON codec; the
    text parser lives in {!Parser}. *)

open Heimdall_net

type atom = {
  protos : Flow.proto list;  (** Non-empty; order irrelevant. *)
  dp_lo : int;
  dp_hi : int;  (** Inclusive destination-port interval. *)
}
(** One service atom: a protocol subset crossed with a destination-port
    interval.  Source ports are never constrained by the language. *)

type service = atom list
(** A service group, e.g. web = tcp 80, tcp 443. *)

type endpoint =
  | Any
  | Seg of string  (** A named node; stands for its declared scope. *)
  | Nets of Prefix.t list  (** Literal prefixes. *)

type action =
  | Allow
  | Deny
  | Deny_final  (** [deny!]: an invariant no descendant may override. *)
  | Require of string  (** Traffic must traverse this waypoint device. *)

type service_ref = Named of string | Inline of service

type rule = {
  action : action;
  service : service_ref;
  src : endpoint;
  dst : endpoint option;  (** [None] means the enclosing node's scope. *)
}

type node = {
  name : string;
  scope : Prefix.t list;  (** Destination prefixes this node governs. *)
  owners : string list;
      (** Devices administratively owning the segment (feeds POL005). *)
  rules : rule list;  (** Ordered; first match wins within the node. *)
  children : node list;  (** Ordered; earlier siblings take precedence. *)
}

type t = {
  services : (string * service) list;
  root : node;  (** Scope [0.0.0.0/0]; top-level rules live here. *)
}

val all_protos : Flow.proto list

val any_service : service
(** All three protocols, all ports. *)

val valid_name : string -> bool
(** Names for nodes, services, owners and waypoints: non-empty,
    [[A-Za-z0-9._-]+], not a grammar keyword. *)

val make_root : ?rules:rule list -> node list -> node
(** The canonical root: name ["root"], scope [[Prefix.any]]. *)

val node :
  ?owners:string list -> ?rules:rule list -> ?children:node list ->
  scope:Prefix.t list -> string -> node

val rule : ?src:endpoint -> ?dst:endpoint -> action -> service_ref -> rule
(** [src] defaults to [Any], [dst] to the enclosing node's scope. *)

val find_node : t -> string -> node option
(** Lookup by name anywhere in the tree (root included). *)

val node_count : t -> int
val rule_count : t -> int

val validate : t -> (unit, string) result
(** Structural checks: node names unique and non-empty, every [Named]
    service defined, every [Seg] endpoint resolvable, scopes non-empty,
    port intervals within bounds and non-inverted. *)

val render : t -> string
(** Text form; re-parses to an equal tree via {!Parser.parse}. *)

val rule_to_string : rule -> string
(** One rule in the text grammar, e.g. ["allow web from guests;"]. *)

val to_json : t -> Heimdall_json.Json.t

val of_json : Heimdall_json.Json.t -> (t, string) result
(** Decode and {!validate}. *)

val equal : t -> t -> bool
(** Structural equality (rule order and child order significant). *)
