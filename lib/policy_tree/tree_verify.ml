open Heimdall_net
open Heimdall_control
open Heimdall_verify

let proto_tag (p : Flow.proto) = Flow.proto_to_string p

(* One representative flow per (subnet pair, service atom): icmp always,
   plus each tcp/udp service the tree names.  Deterministic: subnets are
   sorted, services sorted by name. *)
let probe_flows tree net =
  let subnets = Spec_miner.host_subnets net in
  let services =
    List.sort (fun (a, _) (b, _) -> String.compare a b) tree.Poltree.services
  in
  List.concat_map
    (fun (src_net, src_hosts) ->
      List.concat_map
        (fun (dst_net, dst_hosts) ->
          if Prefix.equal src_net dst_net then []
          else
            match (src_hosts, dst_hosts) with
            | src_host :: _, dst_host :: _ -> (
                match
                  (Network.host_address src_host net, Network.host_address dst_host net)
                with
                | Some src, Some dst ->
                    let icmp = ("icmp", Flow.icmp src dst) in
                    let svc_flows =
                      List.concat_map
                        (fun (name, atoms) ->
                          List.concat_map
                            (fun (a : Poltree.atom) ->
                              List.filter_map
                                (fun proto ->
                                  match proto with
                                  | Flow.Icmp -> None
                                  | Flow.Tcp | Flow.Udp ->
                                      Some
                                        ( Printf.sprintf "%s:%s" name (proto_tag proto),
                                          Flow.make ~proto ~src_port:40000
                                            ~dst_port:a.dp_lo src dst ))
                                a.protos)
                            atoms)
                        services
                    in
                    List.map
                      (fun (tag, flow) -> (src_net, dst_net, tag, flow))
                      (icmp :: svc_flows)
                | _ -> [])
            | _ -> [])
        subnets)
    subnets

(* Default-deny is "unspecified", not a claim: a flat spec that never
   mentions a flow doesn't demand it be blocked, and grounding the
   tree's implicit deny as [Isolated] would manufacture obligations the
   operator never wrote.  Only explicit verdicts become probes. *)
let probes net (c : Compile.compiled) =
  List.filter_map
    (fun (src_net, dst_net, tag, flow) ->
      let src_label = Prefix.to_string src_net and dst_label = Prefix.to_string dst_net in
      let id = Printf.sprintf "tree:%s:%s->%s" tag src_label dst_label in
      match Compile.verdict c flow with
      | Compile.Permit (w :: _) ->
          Some (Policy.waypoint ~id ~src_label ~dst_label ~via:w flow)
      | Compile.Permit [] -> Some (Policy.reachable ~id ~src_label ~dst_label flow)
      | Compile.Deny_explicit -> Some (Policy.isolated ~id ~src_label ~dst_label flow)
      | Compile.Deny_default -> None)
    (probe_flows c.Compile.tree net)

let check_all ?engine ?obs dp c =
  Policy.check_all ?engine ?obs dp (probes (Dataplane.network dp) c)
