(** The POL lint family: exact static analysis over a compiled policy
    tree.  Registered in {!Heimdall_lint.Lint.rules}; the analyzers live
    here because they need the tree compiler.

    - POL001 (error): a descendant [allow] contributes traffic an
      ancestor's [deny!] invariant unconditionally denies — the allow is
      silently crushed.  Witnessed.
    - POL002 (warning): a rule's effective set is empty — earlier rules
      in its node, its descendants, or earlier siblings of an ancestor
      already decide all its traffic (exact, via the compiled sets).
    - POL003 (warning): a node's scope compiles to the empty packet set
      under its ancestors' scopes — the subtree is unreachable.
    - POL004 (error/warning/info): refinement against a flat
      {!Heimdall_verify.Policy} spec.  Errors when the tree verdict
      contradicts a policy's intent (witness: the policy's flow);
      warnings when agreement is only by default-deny or a waypoint
      intent is permitted without the waypoint requirement; one info per
      leaf scope no flat policy probes (witnessed).
    - POL005 (warning): a ticket's {!Heimdall_sem.Plan_sem} delta
      intersects a leaf scope whose declared owners the ticket's
      privilege spec cannot write — the plan can flip tree verdicts in a
      segment its grant does not cover.  Conservative [full] deltas
      (plans the static analysis cannot localise) are skipped: they
      would flag every leaf indiscriminately.
    - POL006 (warning): removing a subtree leaves the compiled permit,
      decided and require sets unchanged — the subtree is redundant.

    All fan-out goes through {!Heimdall_verify.Engine.map} when an
    engine is given, and results are sorted with
    {!Heimdall_lint.Diagnostic.compare}: reports are byte-identical at
    any domain count. *)

open Heimdall_control
open Heimdall_lint
open Heimdall_verify

val check :
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  ?policies:Policy.t list ->
  ?tickets:Plan_lint.ticket list ->
  ?network:Network.t ->
  Compile.compiled ->
  Diagnostic.t list
(** All POL findings, canonically ordered.  [policies] enables POL004,
    [tickets] POL005 ([network] tightens its plan deltas).  Diagnostics
    carry the node path as [device] and the offending rule or policy id
    as [obj]. *)

(** {1 Seeded defects} — the CLI/CI self-tests. *)

val seed_pol001 : Poltree.t -> (Poltree.t, string) result
(** Plant a root-level [deny!] copying the selector of the first
    descendant [allow] rule: POL001 must fire with an exact witness. *)

val seed_pol004 : Poltree.t -> (Poltree.t, string) result
(** Flip the first descendant [allow] rule to [deny]: any flat spec the
    tree refined must now disagree (POL004) with a witness flow. *)
