(** Tree-mining: cluster a flat policy list into the topology hierarchy.

    The segment hierarchy comes from the network itself — host-bearing
    subnets are the leaves, grouped into interior nodes by the OSPF area
    of the subnet's owning device (pods and campuses in generated
    fleets, one area in the paper networks).  Each flat policy becomes a
    rule at the leaf containing its destination: [Reachable] → [allow],
    [Isolated] → [deny], [Waypoint w] → [require w] + [allow]; sources
    generalise to their own segment names.  Policies whose destination
    lies in no segment (e.g. the fleet ISP uplink) become root rules
    with an explicit [/32] destination.  A final pass hoists rules
    shared by every child of a group up to the group node.

    The construction preserves every flat verdict by design — POL004
    over the result and the same policy list proves the equivalence. *)

open Heimdall_control
open Heimdall_net
open Heimdall_verify

type seg = {
  seg_prefix : Prefix.t;
  seg_group : string;  (** Interior node this leaf belongs to. *)
  seg_owners : string list;  (** Devices owning the segment. *)
}

val segs_of_network : Network.t -> seg list
(** Host-bearing subnets, grouped by the owning device's OSPF area
    (["area-N"]), owners from the device holding the subnet address.
    Sorted by prefix. *)

val leaf_name : Prefix.t -> string
(** Deterministic node name for a segment, e.g. ["net-10.3.10.0-24"]. *)

val of_policies : segs:seg list -> Policy.t list -> Poltree.t
(** Cluster the policies into the given segment hierarchy. *)

val mine : ?options:Spec_miner.options -> Dataplane.t -> Poltree.t
(** {!Spec_miner.mine} composed with {!of_policies} over
    {!segs_of_network}. *)
