open Heimdall_net
open Heimdall_json

type atom = { protos : Flow.proto list; dp_lo : int; dp_hi : int }
type service = atom list
type endpoint = Any | Seg of string | Nets of Prefix.t list
type action = Allow | Deny | Deny_final | Require of string
type service_ref = Named of string | Inline of service

type rule = {
  action : action;
  service : service_ref;
  src : endpoint;
  dst : endpoint option;
}

type node = {
  name : string;
  scope : Prefix.t list;
  owners : string list;
  rules : rule list;
  children : node list;
}

type t = { services : (string * service) list; root : node }

let all_protos = [ Flow.Icmp; Flow.Tcp; Flow.Udp ]
let any_service = [ { protos = all_protos; dp_lo = 0; dp_hi = Packet_set.max_port } ]

let make_root ?(rules = []) children =
  { name = "root"; scope = [ Prefix.any ]; owners = []; rules; children }

let node ?(owners = []) ?(rules = []) ?(children = []) ~scope name =
  { name; scope; owners; rules; children }

let rule ?(src = Any) ?dst action service = { action; service; src; dst }

let rec fold_nodes f acc n = List.fold_left (fold_nodes f) (f acc n) n.children

let find_node t name =
  fold_nodes (fun acc n -> if acc = None && n.name = name then Some n else acc) None t.root

let node_count t = fold_nodes (fun acc _ -> acc + 1) 0 t.root
let rule_count t = fold_nodes (fun acc n -> acc + List.length n.rules) 0 t.root

(* ---------------- validation ---------------- *)

let keywords =
  [ "any"; "node"; "scope"; "owner"; "allow"; "deny"; "deny!"; "require";
    "service"; "from"; "to"; "default" ]

let valid_name s =
  s <> ""
  && (not (List.mem s keywords))
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_atom where (a : atom) =
    if a.protos = [] then err "%s: service atom with no protocol" where
    else if a.dp_lo < 0 || a.dp_hi > Packet_set.max_port || a.dp_lo > a.dp_hi then
      err "%s: port interval %d-%d out of bounds" where a.dp_lo a.dp_hi
    else Ok ()
  in
  let rec first_error = function
    | [] -> Ok ()
    | Ok () :: rest -> first_error rest
    | (Error _ as e) :: _ -> e
  in
  let names = fold_nodes (fun acc n -> n.name :: acc) [] t.root in
  let dup =
    let sorted = List.sort String.compare names in
    let rec find = function
      | a :: (b :: _ as rest) -> if a = b then Some a else find rest
      | _ -> None
    in
    find sorted
  in
  match dup with
  | Some n -> err "duplicate node name %S" n
  | None -> (
      let bad_name = List.find_opt (fun n -> not (valid_name n || n = "root")) names in
      match bad_name with
      | Some n -> err "invalid node name %S" n
      | None ->
          let svc_errs =
            List.map
              (fun (name, svc) ->
                if not (valid_name name) then err "invalid service name %S" name
                else if svc = [] then err "service %s: empty" name
                else first_error (List.map (check_atom ("service " ^ name)) svc))
              t.services
          in
          let check_ep where = function
            | Any -> Ok ()
            | Seg s ->
                if find_node t s <> None then Ok ()
                else err "%s: unknown segment %S" where s
            | Nets [] -> err "%s: empty prefix list" where
            | Nets _ -> Ok ()
          in
          let check_rule where (r : rule) =
            let svc =
              match r.service with
              | Named n ->
                  if List.mem_assoc n t.services then Ok ()
                  else err "%s: unknown service %S" where n
              | Inline [] -> err "%s: empty inline service" where
              | Inline atoms -> first_error (List.map (check_atom where) atoms)
            in
            first_error
              [ svc; check_ep where r.src;
                (match r.dst with None -> Ok () | Some e -> check_ep where e) ]
          in
          let node_errs =
            fold_nodes
              (fun acc n ->
                let where = "node " ^ n.name in
                (if n.scope = [] then err "%s: empty scope" where else Ok ())
                :: List.map (check_rule where) n.rules
                @ acc)
              [] t.root
          in
          first_error (svc_errs @ node_errs))

(* ---------------- text rendering ---------------- *)

let proto_key = function Flow.Icmp -> 0 | Flow.Tcp -> 1 | Flow.Udp -> 2

let atom_to_string (a : atom) =
  let protos = List.sort_uniq compare (List.map proto_key a.protos) in
  let proto_str =
    if List.length protos = 3 then "any"
    else
      String.concat "+"
        (List.map
           (fun k -> Flow.proto_to_string (match k with 0 -> Flow.Icmp | 1 -> Flow.Tcp | _ -> Flow.Udp))
           protos)
  in
  if a.dp_lo = 0 && a.dp_hi = Packet_set.max_port then proto_str
  else if a.dp_lo = a.dp_hi then Printf.sprintf "%s %d" proto_str a.dp_lo
  else Printf.sprintf "%s %d-%d" proto_str a.dp_lo a.dp_hi

let service_to_string svc = String.concat ", " (List.map atom_to_string svc)

let endpoint_to_string = function
  | Any -> "any"
  | Seg s -> s
  | Nets l -> String.concat ", " (List.map Prefix.to_string l)

let rule_to_string (r : rule) =
  let action =
    match r.action with
    | Allow -> "allow"
    | Deny -> "deny"
    | Deny_final -> "deny!"
    | Require w -> "require " ^ w
  in
  let svc =
    match r.service with Named n -> n | Inline atoms -> service_to_string atoms
  in
  let src = match r.src with Any -> "" | e -> " from " ^ endpoint_to_string e in
  let dst = match r.dst with None -> "" | Some e -> " to " ^ endpoint_to_string e in
  Printf.sprintf "%s %s%s%s;" action svc src dst

let render t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, svc) ->
      Buffer.add_string buf (Printf.sprintf "service %s = %s;\n" name (service_to_string svc)))
    t.services;
  if t.services <> [] then Buffer.add_char buf '\n';
  let rec emit indent n =
    let pad = String.make indent ' ' in
    Buffer.add_string buf (Printf.sprintf "%snode %s {\n" pad n.name);
    let ipad = String.make (indent + 2) ' ' in
    Buffer.add_string buf
      (Printf.sprintf "%sscope %s;\n" ipad
         (String.concat ", " (List.map Prefix.to_string n.scope)));
    if n.owners <> [] then
      Buffer.add_string buf
        (Printf.sprintf "%sowner %s;\n" ipad (String.concat ", " n.owners));
    List.iter (fun r -> Buffer.add_string buf (ipad ^ rule_to_string r ^ "\n")) n.rules;
    List.iter (emit (indent + 2)) n.children;
    Buffer.add_string buf (pad ^ "}\n")
  in
  List.iter (emit 0) t.root.children;
  List.iter (fun r -> Buffer.add_string buf (rule_to_string r ^ "\n")) t.root.rules;
  Buffer.contents buf

(* ---------------- JSON codec ---------------- *)

let atom_to_json (a : atom) =
  Json.Obj
    [
      ("protos", Json.List (List.map (fun p -> Json.String (Flow.proto_to_string p)) a.protos));
      ("dp_lo", Json.Int a.dp_lo);
      ("dp_hi", Json.Int a.dp_hi);
    ]

let endpoint_to_json = function
  | Any -> Json.String "any"
  | Seg s -> Json.Obj [ ("seg", Json.String s) ]
  | Nets l -> Json.Obj [ ("nets", Json.List (List.map (fun p -> Json.String (Prefix.to_string p)) l)) ]

let rule_to_json (r : rule) =
  let action_fields =
    match r.action with
    | Allow -> [ ("action", Json.String "allow") ]
    | Deny -> [ ("action", Json.String "deny") ]
    | Deny_final -> [ ("action", Json.String "deny!") ]
    | Require w -> [ ("action", Json.String "require"); ("waypoint", Json.String w) ]
  in
  let service =
    match r.service with
    | Named n -> Json.String n
    | Inline atoms -> Json.List (List.map atom_to_json atoms)
  in
  Json.Obj
    (action_fields
    @ [
        ("service", service);
        ("from", endpoint_to_json r.src);
        ("to", match r.dst with None -> Json.Null | Some e -> endpoint_to_json e);
      ])

let rec node_to_json (n : node) =
  Json.Obj
    [
      ("name", Json.String n.name);
      ("scope", Json.List (List.map (fun p -> Json.String (Prefix.to_string p)) n.scope));
      ("owners", Json.List (List.map (fun o -> Json.String o) n.owners));
      ("rules", Json.List (List.map rule_to_json n.rules));
      ("children", Json.List (List.map node_to_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ( "services",
        Json.List
          (List.map
             (fun (name, svc) ->
               Json.Obj
                 [ ("name", Json.String name); ("atoms", Json.List (List.map atom_to_json svc)) ])
             t.services) );
      ("root", node_to_json t.root);
    ]

exception Decode of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt

let need what = function Some v -> v | None -> fail "missing or ill-typed %s" what

let atom_of_json j =
  let protos =
    need "atom protos" (Option.bind (Json.member "protos" j) Json.to_list_opt)
    |> List.map (fun p ->
           let s = need "proto" (Json.to_string_opt p) in
           match Flow.proto_of_string s with
           | Some p -> p
           | None -> fail "unknown protocol %S" s)
  in
  let int_field f = need f (Option.bind (Json.member f j) Json.to_int_opt) in
  { protos; dp_lo = int_field "dp_lo"; dp_hi = int_field "dp_hi" }

let prefix_of_json j =
  let s = need "prefix" (Json.to_string_opt j) in
  match Prefix.of_string_opt s with Some p -> p | None -> fail "bad prefix %S" s

let endpoint_of_json j =
  match j with
  | Json.String "any" -> Any
  | _ -> (
      match Json.member "seg" j with
      | Some s -> Seg (need "seg" (Json.to_string_opt s))
      | None -> (
          match Option.bind (Json.member "nets" j) Json.to_list_opt with
          | Some l -> Nets (List.map prefix_of_json l)
          | None -> fail "bad endpoint"))

let rule_of_json j =
  let action =
    match need "action" (Option.bind (Json.member "action" j) Json.to_string_opt) with
    | "allow" -> Allow
    | "deny" -> Deny
    | "deny!" -> Deny_final
    | "require" ->
        Require (need "waypoint" (Option.bind (Json.member "waypoint" j) Json.to_string_opt))
    | a -> fail "unknown action %S" a
  in
  let service =
    match need "service" (Json.member "service" j) with
    | Json.String n -> Named n
    | Json.List atoms -> Inline (List.map atom_of_json atoms)
    | _ -> fail "bad service"
  in
  let src = endpoint_of_json (need "from" (Json.member "from" j)) in
  let dst =
    match Json.member "to" j with
    | None | Some Json.Null -> None
    | Some e -> Some (endpoint_of_json e)
  in
  { action; service; src; dst }

let rec node_of_json j =
  let name = need "node name" (Option.bind (Json.member "name" j) Json.to_string_opt) in
  let scope =
    need "scope" (Option.bind (Json.member "scope" j) Json.to_list_opt)
    |> List.map prefix_of_json
  in
  let owners =
    match Option.bind (Json.member "owners" j) Json.to_list_opt with
    | None -> []
    | Some l -> List.map (fun o -> need "owner" (Json.to_string_opt o)) l
  in
  let rules =
    match Option.bind (Json.member "rules" j) Json.to_list_opt with
    | None -> []
    | Some l -> List.map rule_of_json l
  in
  let children =
    match Option.bind (Json.member "children" j) Json.to_list_opt with
    | None -> []
    | Some l -> List.map node_of_json l
  in
  { name; scope; owners; rules; children }

let of_json j =
  match
    let services =
      match Option.bind (Json.member "services" j) Json.to_list_opt with
      | None -> []
      | Some l ->
          List.map
            (fun s ->
              let name = need "service name" (Option.bind (Json.member "name" s) Json.to_string_opt) in
              let atoms =
                need "service atoms" (Option.bind (Json.member "atoms" s) Json.to_list_opt)
                |> List.map atom_of_json
              in
              (name, atoms))
            l
    in
    let root = node_of_json (need "root" (Json.member "root" j)) in
    { services; root }
  with
  | t -> ( match validate t with Ok () -> Ok t | Error e -> Error e)
  | exception Decode m -> Error m

let equal (a : t) (b : t) = a = b
