open Heimdall_net

type crule = {
  rule : Poltree.rule;
  index : int;
  full : Packet_set.t;
  effective : Packet_set.t;
}

type cnode = {
  path : string;
  name : string;
  depth : int;
  universe : Packet_set.t;
  owners : string list;
  crules : crule list;
  decided : Packet_set.t;
  permit : Packet_set.t;
  invariant : Packet_set.t;
  is_leaf : bool;
}

type leaf = {
  leaf_path : string;
  leaf_universe : Packet_set.t;
  leaf_permit : Packet_set.t;
  leaf_requires : (string * Packet_set.t) list;
}

type compiled = {
  tree : Poltree.t;
  nodes : cnode list;
  permit : Packet_set.t;
  decided : Packet_set.t;
  requires : (string * Packet_set.t) list;
  leaves : leaf list;
}

(* ---------------- selector resolution ---------------- *)

let endpoint_prefixes tree (ep : Poltree.endpoint) =
  match ep with
  | Poltree.Any -> [ Prefix.any ]
  | Poltree.Nets l -> l
  | Poltree.Seg name -> (
      match Poltree.find_node tree name with
      | Some n -> n.Poltree.scope
      | None -> [])

let service_atoms tree (r : Poltree.service_ref) =
  match r with
  | Poltree.Inline atoms -> atoms
  | Poltree.Named n -> (
      match List.assoc_opt n tree.Poltree.services with Some s -> s | None -> [])

(* The packet set a rule selects, before clipping to the node universe. *)
let selector tree (r : Poltree.rule) =
  let srcs = endpoint_prefixes tree r.src in
  let dsts =
    match r.dst with None -> [ Prefix.any ] | Some ep -> endpoint_prefixes tree ep
  in
  let atoms = service_atoms tree r.service in
  List.fold_left
    (fun acc (a : Poltree.atom) ->
      List.fold_left
        (fun acc src ->
          List.fold_left
            (fun acc dst ->
              Packet_set.union acc
                (Packet_set.cube ~protos:a.protos ~dst_port:(a.dp_lo, a.dp_hi) ~src ~dst ()))
            acc dsts)
        acc srcs)
    Packet_set.empty atoms

let scope_set prefixes =
  List.fold_left
    (fun acc p -> Packet_set.union acc (Packet_set.cube ~src:Prefix.any ~dst:p ()))
    Packet_set.empty prefixes

(* ---------------- per-waypoint require accumulation ---------------- *)

let merge_requires a b =
  let keys =
    List.sort_uniq String.compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun w ->
      let get l = match List.assoc_opt w l with Some s -> s | None -> Packet_set.empty in
      (w, Packet_set.union (get a) (get b)))
    keys

(* ---------------- compilation ---------------- *)

type acc = {
  a_cnodes : cnode list;  (* preorder *)
  a_decided : Packet_set.t;
  a_permit : Packet_set.t;
  a_requires : (string * Packet_set.t) list;
  a_invariant : Packet_set.t;  (* union over the subtree *)
}

(* Subtract an earlier sibling's decisions from a later subtree's
   contributions — the sibling-precedence half of the semantics.  The
   caller pre-intersects [excl] with the subtree's top universe, so the
   common disjoint-sibling case costs one emptiness test. *)
let mask_acc excl acc =
  if Packet_set.is_empty excl then acc
  else
    let m s = Packet_set.diff s excl in
    {
      acc with
      a_cnodes =
        List.map
          (fun cn ->
            {
              cn with
              crules = List.map (fun cr -> { cr with effective = m cr.effective }) cn.crules;
              decided = m cn.decided;
              permit = m cn.permit;
            })
          acc.a_cnodes;
      a_decided = m acc.a_decided;
      a_permit = m acc.a_permit;
    }

let rec compile_node tree ~parent_universe ~parent_path ~depth (n : Poltree.node) =
  let path = if parent_path = "" then n.Poltree.name else parent_path ^ "/" ^ n.name in
  let universe = Packet_set.inter (scope_set n.scope) parent_universe in
  (* Children decide first, in declaration order. *)
  let child_accs =
    List.map (compile_node tree ~parent_universe:universe ~parent_path:path ~depth:(depth + 1))
      n.children
  in
  let combined =
    List.fold_left
      (fun sofar child ->
        let top_universe =
          match child.a_cnodes with cn :: _ -> cn.universe | [] -> Packet_set.empty
        in
        let excl = Packet_set.inter sofar.a_decided top_universe in
        let child = mask_acc excl child in
        {
          a_cnodes = sofar.a_cnodes @ child.a_cnodes;
          a_decided = Packet_set.union sofar.a_decided child.a_decided;
          a_permit = Packet_set.union sofar.a_permit child.a_permit;
          a_requires = merge_requires sofar.a_requires child.a_requires;
          a_invariant = Packet_set.union sofar.a_invariant child.a_invariant;
        })
      { a_cnodes = []; a_decided = Packet_set.empty; a_permit = Packet_set.empty;
        a_requires = []; a_invariant = Packet_set.empty }
      child_accs
  in
  (* Then the node's own rules, first-match over what is left. *)
  let crules, decided, permit, requires, invariant =
    List.fold_left
      (fun (crules, decided, permit, requires, invariant) (i, (r : Poltree.rule)) ->
        let full = Packet_set.inter (selector tree r) universe in
        match r.action with
        | Poltree.Require w ->
            let prior =
              match List.assoc_opt w requires with Some s -> s | None -> Packet_set.empty
            in
            let effective = Packet_set.diff full prior in
            let requires = merge_requires requires [ (w, full) ] in
            ({ rule = r; index = i; full; effective } :: crules,
             decided, permit, requires, invariant)
        | Poltree.Allow ->
            let effective = Packet_set.diff full decided in
            ({ rule = r; index = i; full; effective } :: crules,
             Packet_set.union decided effective, Packet_set.union permit effective,
             requires, invariant)
        | Poltree.Deny ->
            let effective = Packet_set.diff full decided in
            ({ rule = r; index = i; full; effective } :: crules,
             Packet_set.union decided effective, permit, requires, invariant)
        | Poltree.Deny_final ->
            let effective = Packet_set.diff full decided in
            ({ rule = r; index = i; full; effective } :: crules,
             Packet_set.union decided effective, permit, requires,
             Packet_set.union invariant full))
      ([], combined.a_decided, combined.a_permit, combined.a_requires, Packet_set.empty)
      (List.mapi (fun i r -> (i, r)) n.rules)
  in
  let cn =
    {
      path;
      name = n.name;
      depth;
      universe;
      owners = n.owners;
      crules = List.rev crules;
      decided;
      permit;
      invariant;
      is_leaf = n.children = [];
    }
  in
  {
    a_cnodes = cn :: combined.a_cnodes;
    a_decided = decided;
    a_permit = permit;
    a_requires = requires;
    a_invariant = Packet_set.union combined.a_invariant invariant;
  }

let compile tree =
  match Poltree.validate tree with
  | Error e -> Error e
  | Ok () ->
      let acc =
        compile_node tree ~parent_universe:Packet_set.full ~parent_path:"" ~depth:0
          tree.Poltree.root
      in
      (* deny! is unconditional: it beats descendants, siblings and even
         earlier allows of its own node. *)
      let permit = Packet_set.diff acc.a_permit acc.a_invariant in
      let requires =
        acc.a_requires
        |> List.map (fun (w, s) -> (w, Packet_set.inter s permit))
        |> List.filter (fun (_, s) -> not (Packet_set.is_empty s))
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let decided = Packet_set.union acc.a_decided acc.a_invariant in
      let leaves =
        acc.a_cnodes
        |> List.filter (fun cn -> cn.is_leaf)
        |> List.map (fun cn ->
               {
                 leaf_path = cn.path;
                 leaf_universe = cn.universe;
                 leaf_permit = Packet_set.inter permit cn.universe;
                 leaf_requires =
                   List.filter_map
                     (fun (w, s) ->
                       let s = Packet_set.inter s cn.universe in
                       if Packet_set.is_empty s then None else Some (w, s))
                     requires;
               })
      in
      Ok { tree; nodes = acc.a_cnodes; permit; decided; requires; leaves }

let compile_exn tree =
  match compile tree with Ok c -> c | Error e -> invalid_arg ("Poltree.compile: " ^ e)

type verdict = Permit of string list | Deny_explicit | Deny_default

let verdict c flow =
  if Packet_set.mem c.permit flow then
    Permit (List.filter_map (fun (w, s) -> if Packet_set.mem s flow then Some w else None) c.requires)
  else if Packet_set.mem c.decided flow then Deny_explicit
  else Deny_default

let find_cnode c name = List.find_opt (fun cn -> cn.name = name) c.nodes

(* ---------------- diff ---------------- *)

type tree_diff = {
  only_a : Packet_set.t;
  only_b : Packet_set.t;
  require_drift : (string * Packet_set.t * Packet_set.t) list;
}

let diff a b =
  let common = Packet_set.inter a.permit b.permit in
  let keys =
    List.sort_uniq String.compare (List.map fst a.requires @ List.map fst b.requires)
  in
  let require_drift =
    List.filter_map
      (fun w ->
        let get c = match List.assoc_opt w c.requires with Some s -> s | None -> Packet_set.empty in
        let ra = Packet_set.inter (get a) common and rb = Packet_set.inter (get b) common in
        let oa = Packet_set.diff ra rb and ob = Packet_set.diff rb ra in
        if Packet_set.is_empty oa && Packet_set.is_empty ob then None else Some (w, oa, ob))
      keys
  in
  {
    only_a = Packet_set.diff a.permit b.permit;
    only_b = Packet_set.diff b.permit a.permit;
    require_drift;
  }

let diff_is_empty d =
  Packet_set.is_empty d.only_a && Packet_set.is_empty d.only_b && d.require_drift = []

let witness s =
  match Packet_set.sample s with
  | Some f -> Printf.sprintf " (witness %s)" (Flow.to_string f)
  | None -> ""

let render_diff d =
  if diff_is_empty d then "identical\n"
  else
    let buf = Buffer.create 256 in
    if not (Packet_set.is_empty d.only_a) then
      Buffer.add_string buf
        (Printf.sprintf "permitted only by A: %s%s\n" (Packet_set.to_string d.only_a)
           (witness d.only_a));
    if not (Packet_set.is_empty d.only_b) then
      Buffer.add_string buf
        (Printf.sprintf "permitted only by B: %s%s\n" (Packet_set.to_string d.only_b)
           (witness d.only_b));
    List.iter
      (fun (w, oa, ob) ->
        if not (Packet_set.is_empty oa) then
          Buffer.add_string buf
            (Printf.sprintf "waypoint %s required only by A: %s%s\n" w
               (Packet_set.to_string oa) (witness oa));
        if not (Packet_set.is_empty ob) then
          Buffer.add_string buf
            (Printf.sprintf "waypoint %s required only by B: %s%s\n" w
               (Packet_set.to_string ob) (witness ob)))
      d.require_drift;
    Buffer.contents buf
