open Heimdall_net

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

(* ---------------- tokenizer ---------------- *)

(* Tokens are words plus the five structural symbols; '#' comments run to
   end of line.  Every token carries its 1-based source line. *)
let tokenize src =
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let line = ref 1 in
  let flush () =
    if Buffer.length buf > 0 then (
      toks := (Buffer.contents buf, !line) :: !toks;
      Buffer.clear buf)
  in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | '#' ->
        flush ();
        while !i < n && src.[!i] <> '\n' do incr i done;
        decr i
    | '\n' ->
        flush ();
        incr line
    | ' ' | '\t' | '\r' -> flush ()
    | ('{' | '}' | ';' | ',' | '=') as c ->
        flush ();
        toks := (String.make 1 c, !line) :: !toks
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !toks

(* ---------------- token stream ---------------- *)

type stream = { mutable toks : (string * int) list; mutable last_line : int }

let peek s = match s.toks with [] -> None | (t, _) :: _ -> Some t

let next s =
  match s.toks with
  | [] -> fail s.last_line "unexpected end of input"
  | (t, l) :: rest ->
      s.toks <- rest;
      s.last_line <- l;
      (t, l)

let expect s want =
  let t, l = next s in
  if t <> want then fail l "expected %S, got %S" want t

(* ---------------- pieces ---------------- *)

let is_proto_word w =
  w = "any"
  || List.for_all
       (fun p -> List.mem p [ "icmp"; "tcp"; "udp" ])
       (String.split_on_char '+' w)

let protos_of_word l w =
  if w = "any" then Poltree.all_protos
  else
    List.map
      (fun p ->
        match Flow.proto_of_string p with
        | Some p -> p
        | None -> fail l "unknown protocol %S" p)
      (String.split_on_char '+' w)

let is_port_word w =
  w <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') w
  && w.[0] <> '-'

let ports_of_word l w =
  match String.split_on_char '-' w with
  | [ p ] -> (
      match int_of_string_opt p with
      | Some p -> (p, p)
      | None -> fail l "bad port %S" w)
  | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> (lo, hi)
      | _ -> fail l "bad port range %S" w)
  | _ -> fail l "bad port range %S" w

let parse_atom s : Poltree.atom =
  let w, l = next s in
  if not (is_proto_word w) then fail l "expected a protocol, got %S" w;
  let protos = protos_of_word l w in
  match peek s with
  | Some p when is_port_word p ->
      let w, l = next s in
      let dp_lo, dp_hi = ports_of_word l w in
      { protos; dp_lo; dp_hi }
  | _ -> { protos; dp_lo = 0; dp_hi = Packet_set.max_port }

let rec parse_atoms s =
  let a = parse_atom s in
  match peek s with
  | Some "," ->
      ignore (next s);
      a :: parse_atoms s
  | _ -> [ a ]

let parse_service_ref s : Poltree.service_ref =
  match peek s with
  | Some w when is_proto_word w -> Poltree.Inline (parse_atoms s)
  | _ ->
      let w, l = next s in
      if Poltree.valid_name w then Poltree.Named w
      else fail l "expected a service, got %S" w

let parse_prefix l w =
  match Prefix.of_string_opt w with
  | Some p -> p
  | None -> fail l "bad prefix %S" w

let parse_endpoint s : Poltree.endpoint =
  let w, l = next s in
  if w = "any" then Poltree.Any
  else if String.contains w '/' then begin
    let rec more acc =
      match peek s with
      | Some "," ->
          ignore (next s);
          let w, l = next s in
          more (parse_prefix l w :: acc)
      | _ -> List.rev acc
    in
    Poltree.Nets (more [ parse_prefix l w ])
  end
  else if Poltree.valid_name w then Poltree.Seg w
  else fail l "expected an endpoint, got %S" w

let parse_rule s first line : Poltree.rule =
  let action : Poltree.action =
    match first with
    | "allow" -> Poltree.Allow
    | "deny" -> Poltree.Deny
    | "deny!" -> Poltree.Deny_final
    | "require" ->
        let w, l = next s in
        if Poltree.valid_name w then Poltree.Require w
        else fail l "expected a waypoint device, got %S" w
    | _ -> fail line "expected a rule, got %S" first
  in
  let service = parse_service_ref s in
  let src =
    match peek s with
    | Some "from" ->
        ignore (next s);
        parse_endpoint s
    | _ -> Poltree.Any
  in
  let dst =
    match peek s with
    | Some "to" ->
        ignore (next s);
        Some (parse_endpoint s)
    | _ -> None
  in
  expect s ";";
  { Poltree.action; service; src; dst }

let rec parse_node s : Poltree.node =
  let name, l = next s in
  if not (Poltree.valid_name name) then fail l "invalid node name %S" name;
  expect s "{";
  let scope = ref [] in
  let owners = ref [] in
  let rules = ref [] in
  let children = ref [] in
  let rec body () =
    let w, l = next s in
    match w with
    | "}" -> ()
    | "scope" ->
        let rec prefixes acc =
          let w, l = next s in
          let acc = parse_prefix l w :: acc in
          match next s with
          | ",", _ -> prefixes acc
          | ";", _ -> List.rev acc
          | t, l -> fail l "expected ',' or ';' in scope, got %S" t
        in
        scope := !scope @ prefixes [];
        body ()
    | "owner" ->
        let rec names acc =
          let w, l = next s in
          if not (Poltree.valid_name w) then fail l "invalid owner %S" w;
          match next s with
          | ",", _ -> names (w :: acc)
          | ";", _ -> List.rev (w :: acc)
          | t, l -> fail l "expected ',' or ';' in owner, got %S" t
        in
        owners := !owners @ names [];
        body ()
    | "node" ->
        children := !children @ [ parse_node s ];
        body ()
    | _ ->
        rules := !rules @ [ parse_rule s w l ];
        body ()
  in
  body ();
  if !scope = [] then fail l "node %s: missing scope" name;
  { Poltree.name; scope = !scope; owners = !owners; rules = !rules; children = !children }

let parse src =
  let s = { toks = tokenize src; last_line = 1 } in
  let services = ref [] in
  let children = ref [] in
  let root_rules = ref [] in
  let rec top () =
    match s.toks with
    | [] -> ()
    | _ ->
        let w, l = next s in
        (match w with
        | "service" ->
            let name, l = next s in
            if not (Poltree.valid_name name) then fail l "invalid service name %S" name;
            expect s "=";
            let atoms = parse_atoms s in
            expect s ";";
            services := !services @ [ (name, atoms) ]
        | "default" ->
            (* Default-deny is the only default; the statement documents it. *)
            expect s "deny";
            expect s ";"
        | "node" -> children := !children @ [ parse_node s ]
        | _ -> root_rules := !root_rules @ [ parse_rule s w l ]);
        top ()
  in
  top ();
  let t =
    { Poltree.services = !services; root = Poltree.make_root ~rules:!root_rules !children }
  in
  match Poltree.validate t with Ok () -> t | Error m -> raise (Parse_error (0, m))

let parse_result src =
  match parse src with
  | t -> Ok t
  | exception Parse_error (l, m) ->
      Error (if l = 0 then m else Printf.sprintf "line %d: %s" l m)
