open Heimdall_net
open Heimdall_lint
open Heimdall_privilege
open Heimdall_verify

let witness s =
  match Packet_set.sample s with Some f -> Flow.to_string f | None -> "<none>"

let rule_obj (cr : Compile.crule) = Printf.sprintf "rule %d" (cr.index + 1)

let is_ancestor_of ~(ancestor : Compile.cnode) (cn : Compile.cnode) =
  String.length cn.path > String.length ancestor.path
  && String.sub cn.path 0 (String.length ancestor.path + 1) = ancestor.path ^ "/"

let in_subtree ~(top : Compile.cnode) (cn : Compile.cnode) =
  cn.path = top.path || is_ancestor_of ~ancestor:top cn

(* ---------------- POL001/002/003: per-node structural checks -------- *)

let check_node (c : Compile.compiled) (cn : Compile.cnode) =
  if Packet_set.is_empty cn.universe then
    [
      Diagnostic.v ~device:cn.path ~code:"POL003" Diagnostic.Warning
        "scope compiles to the empty packet set under its ancestors — the subtree is \
         unreachable";
    ]
  else
    let ancestors =
      List.filter (fun a -> is_ancestor_of ~ancestor:a cn) c.Compile.nodes
    in
    let pol001 =
      List.concat_map
        (fun (cr : Compile.crule) ->
          match cr.rule.Poltree.action with
          | Poltree.Allow ->
              List.filter_map
                (fun (a : Compile.cnode) ->
                  let crushed = Packet_set.inter cr.effective a.invariant in
                  if Packet_set.is_empty crushed then None
                  else
                    Some
                      (Diagnostic.v ~device:cn.path ~obj:(rule_obj cr) ~code:"POL001"
                         Diagnostic.Error
                         (Printf.sprintf
                            "%s allows traffic ancestor %s unconditionally denies \
                             (deny!) — witness %s"
                            (Poltree.rule_to_string cr.rule)
                            a.path (witness crushed))))
                ancestors
          | _ -> [])
        cn.crules
    in
    let pol002 =
      List.filter_map
        (fun (cr : Compile.crule) ->
          if not (Packet_set.is_empty cr.effective) then None
          else
            let why =
              if Packet_set.is_empty cr.full then
                "selects no traffic inside the node's scope"
              else
                "is shadowed: earlier rules, descendants or earlier siblings already \
                 decide all its traffic"
            in
            Some
              (Diagnostic.v ~device:cn.path ~obj:(rule_obj cr) ~code:"POL002"
                 Diagnostic.Warning
                 (Printf.sprintf "%s %s" (Poltree.rule_to_string cr.rule) why)))
        cn.crules
    in
    pol001 @ pol002

(* ---------------- POL006: redundant subtree ---------------- *)

let rec remove_node name (n : Poltree.node) =
  {
    n with
    Poltree.children =
      List.filter_map
        (fun (ch : Poltree.node) ->
          if ch.name = name then None else Some (remove_node name ch))
        n.children;
  }

(* Packet sets other nodes' rules of [action-class] select — the only
   traffic that could re-decide a removed subtree's contributions. *)
let class_fulls pred (cn : Compile.cnode) =
  List.fold_left
    (fun acc (cr : Compile.crule) ->
      if pred cr.rule.Poltree.action then Packet_set.union acc cr.full else acc)
    Packet_set.empty cn.crules

(* Does any rule outside the subtree name a node inside it?  Removing a
   referenced subtree changes the meaning of those rules, so POL006
   never claims it redundant. *)
let seg_references_into ~(top : Compile.cnode) (c : Compile.compiled) =
  let inside =
    List.filter_map
      (fun cn -> if in_subtree ~top cn then Some cn.Compile.name else None)
      c.Compile.nodes
  in
  let refers (r : Poltree.rule) =
    let ep_refers = function Poltree.Seg s -> List.mem s inside | _ -> false in
    ep_refers r.src || (match r.dst with Some e -> ep_refers e | None -> false)
  in
  List.exists
    (fun (cn : Compile.cnode) ->
      (not (in_subtree ~top cn))
      && List.exists (fun (cr : Compile.crule) -> refers cr.rule) cn.crules)
    c.Compile.nodes

let requires_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (wa, sa) (wb, sb) -> wa = wb && Packet_set.equal sa sb)
       a b

let check_pol006 (c : Compile.compiled) (cn : Compile.cnode) =
  if cn.depth = 0 || Packet_set.is_empty cn.universe then []
  else if seg_references_into ~top:cn c then []
  else
    let subtree = List.filter (fun n -> in_subtree ~top:cn n) c.Compile.nodes in
    let contrib pred =
      List.fold_left
        (fun acc (n : Compile.cnode) ->
          List.fold_left
            (fun acc (cr : Compile.crule) ->
              if pred cr.rule.Poltree.action then Packet_set.union acc cr.effective
              else acc)
            acc n.crules)
        Packet_set.empty subtree
    in
    let is_allow = function Poltree.Allow -> true | _ -> false in
    let is_deny = function Poltree.Deny | Poltree.Deny_final -> true | _ -> false in
    let is_req = function Poltree.Require _ -> true | _ -> false in
    let contrib_allow = contrib is_allow
    and contrib_deny = contrib is_deny
    and contrib_req = contrib is_req in
    let trivially_redundant =
      Packet_set.is_empty contrib_allow
      && Packet_set.is_empty contrib_deny
      && Packet_set.is_empty contrib_req
    in
    let redundant =
      if trivially_redundant then true
      else
        (* Cheap necessary condition before the expensive recompile:
           some node outside the subtree must be able to re-decide every
           contribution — via an ancestor's own rules or an overlapping
           universe elsewhere. *)
        let outside =
          List.filter (fun n -> not (in_subtree ~top:cn n)) c.Compile.nodes
        in
        let ancestor_rules =
          List.filter (fun (a : Compile.cnode) -> is_ancestor_of ~ancestor:a cn) outside
        in
        let recover pred =
          List.fold_left
            (fun acc a -> Packet_set.union acc (class_fulls pred a))
            Packet_set.empty ancestor_rules
        in
        let overlap_elsewhere =
          List.exists
            (fun (o : Compile.cnode) ->
              (not (List.exists (fun (a : Compile.cnode) -> a.path = o.path) ancestor_rules))
              && not (Packet_set.is_empty (Packet_set.inter o.universe cn.universe)))
            outside
        in
        let candidate =
          overlap_elsewhere
          || (Packet_set.subset contrib_allow (recover is_allow)
             && Packet_set.subset contrib_deny (recover is_deny)
             && Packet_set.subset contrib_req (recover is_req))
        in
        candidate
        &&
        let tree = c.Compile.tree in
        let pruned =
          { tree with Poltree.root = remove_node cn.Compile.name tree.Poltree.root }
        in
        match Compile.compile pruned with
        | Error _ -> false
        | Ok c' ->
            Packet_set.equal c.Compile.permit c'.Compile.permit
            && Packet_set.equal c.Compile.decided c'.Compile.decided
            && requires_equal c.Compile.requires c'.Compile.requires
    in
    if redundant then
      [
        Diagnostic.v ~device:cn.path ~code:"POL006" Diagnostic.Warning
          "redundant subtree: removing it leaves the compiled permit, deny and \
           require sets unchanged";
      ]
    else []

(* ---------------- POL004: refinement vs the flat spec -------------- *)

let leaf_of_flow (c : Compile.compiled) flow =
  List.find_opt
    (fun (l : Compile.leaf) -> Packet_set.mem l.leaf_universe flow)
    c.Compile.leaves

let check_policy (c : Compile.compiled) (p : Policy.t) =
  let device =
    match leaf_of_flow c p.flow with
    | Some l -> l.leaf_path
    | None -> (match c.Compile.nodes with cn :: _ -> cn.path | [] -> "root")
  in
  let d sev msg = [ Diagnostic.v ~device ~obj:p.id ~code:"POL004" sev msg ] in
  let flow = Flow.to_string p.flow in
  match (Compile.verdict c p.flow, p.intent) with
  | Compile.Permit _, Policy.Reachable -> []
  | Compile.Permit ws, Policy.Waypoint w ->
      if List.mem w ws then []
      else
        d Diagnostic.Warning
          (Printf.sprintf
             "tree permits %s but does not require waypoint %s the flat spec demands"
             flow w)
  | Compile.Permit _, Policy.Isolated ->
      d Diagnostic.Error
        (Printf.sprintf
           "refinement violation: flat spec isolates %s but the tree permits it — \
            witness %s"
           p.id flow)
  | Compile.Deny_explicit, Policy.Isolated -> []
  | Compile.Deny_default, Policy.Isolated ->
      d Diagnostic.Warning
        (Printf.sprintf
           "tree never decides %s: isolation holds only by the implicit default deny"
           flow)
  | Compile.Deny_explicit, (Policy.Reachable | Policy.Waypoint _) ->
      d Diagnostic.Error
        (Printf.sprintf
           "refinement violation: flat spec expects %s deliverable but the tree \
            explicitly denies it — witness %s"
           p.id flow)
  | Compile.Deny_default, (Policy.Reachable | Policy.Waypoint _) ->
      d Diagnostic.Error
        (Printf.sprintf
           "refinement violation: flat spec expects %s deliverable but the tree never \
            decides it (default deny) — witness %s"
           p.id flow)

let check_leaf_coverage policies (l : Compile.leaf) =
  if Packet_set.is_empty l.leaf_permit then []
  else if
    List.exists (fun (p : Policy.t) -> Packet_set.mem l.leaf_universe p.flow) policies
  then []
  else
    [
      Diagnostic.v ~device:l.leaf_path ~code:"POL004" Diagnostic.Info
        (Printf.sprintf
           "tree permits traffic in this leaf scope but no flat policy probes it — \
            witness %s"
           (witness l.leaf_permit));
    ]

(* ---------------- POL005: ticket delta vs scope ownership ----------- *)

let spec_writes_on spec node =
  List.exists
    (fun action -> Privilege.allows spec (Privilege.request action node))
    Action.mutating

let check_ticket (c : Compile.compiled) ?network (t : Plan_lint.ticket) =
  let script = Heimdall_sem.Plan_sem.script_of_commands t.commands in
  let analysis =
    Heimdall_sem.Plan_sem.analyze ?network script.Heimdall_sem.Plan_sem.script_changes
  in
  let delta = analysis.Heimdall_sem.Plan_sem.delta in
  (* A conservative [full] delta means the static analysis could not
     localise the plan's effect at all — intersecting it with every
     scope would flag every leaf, which is noise, not signal.  Only
     informative (bounded) deltas are cross-checked. *)
  if Packet_set.is_empty delta || Packet_set.equal delta Packet_set.full then []
  else
    List.filter_map
      (fun (cn : Compile.cnode) ->
        if (not cn.is_leaf) || cn.owners = [] then None
        else
          let affected = Packet_set.inter delta cn.universe in
          if Packet_set.is_empty affected then None
          else if List.exists (spec_writes_on t.spec) cn.owners then None
          else
            Some
              (Diagnostic.v ~device:cn.path ~obj:t.label ~code:"POL005"
                 Diagnostic.Warning
                 (Printf.sprintf
                    "plan delta can flip tree verdicts in this scope (witness %s) but \
                     the ticket's privilege grants no write on its owners (%s)"
                    (witness affected)
                    (String.concat ", " cn.owners))))
      c.Compile.nodes

(* ---------------- entry point ---------------- *)

let fan ?engine ~phase f items =
  match engine with
  | None -> List.concat_map f items
  | Some e ->
      Engine.phase e phase (fun () ->
          List.concat (Engine.map ~min_per_domain:1 e f items))

let check ?engine ?obs ?(policies = []) ?(tickets = []) ?network c =
  let obs = match obs with Some _ -> obs | None -> Option.bind engine Engine.obs in
  Heimdall_obs.Obs.span obs "poltree.check" (fun () ->
      let structural =
        fan ?engine ~phase:"poltree/nodes"
          (fun cn -> check_node c cn @ check_pol006 c cn)
          c.Compile.nodes
      in
      let refinement =
        fan ?engine ~phase:"poltree/policies" (fun p -> check_policy c p) policies
      in
      let coverage =
        if policies = [] then []
        else List.concat_map (check_leaf_coverage policies) c.Compile.leaves
      in
      let privilege =
        fan ?engine ~phase:"poltree/tickets" (fun t -> check_ticket c ?network t) tickets
      in
      let findings =
        List.sort Diagnostic.compare (structural @ refinement @ coverage @ privilege)
      in
      Heimdall_obs.Obs.add_attr obs "nodes" (string_of_int (List.length c.Compile.nodes));
      Heimdall_obs.Obs.add_attr obs "findings" (string_of_int (List.length findings));
      Heimdall_obs.Obs.incr obs ~by:(List.length findings) "lint.findings";
      findings)

(* ---------------- seeded defects ---------------- *)

let first_descendant_allow (t : Poltree.t) =
  let rec find (n : Poltree.node) =
    match
      List.find_opt
        (fun (r : Poltree.rule) -> r.action = Poltree.Allow)
        n.Poltree.rules
    with
    | Some r -> Some (n, r)
    | None -> List.find_map find n.children
  in
  List.find_map find t.root.Poltree.children

let seed_pol001 (t : Poltree.t) =
  match first_descendant_allow t with
  | None -> Error "tree has no descendant allow rule to contradict"
  | Some (n, r) ->
      let dst =
        match r.dst with Some d -> Some d | None -> Some (Poltree.Nets n.scope)
      in
      let invariant =
        { r with Poltree.action = Poltree.Deny_final; dst }
      in
      Ok
        {
          t with
          Poltree.root =
            { t.root with Poltree.rules = t.root.rules @ [ invariant ] };
        }

let seed_pol004 (t : Poltree.t) =
  match first_descendant_allow t with
  | None -> Error "tree has no descendant allow rule to flip"
  | Some (target_node, target_rule) ->
      let flipped = ref false in
      let rec rewrite (n : Poltree.node) =
        let rules =
          List.map
            (fun (r : Poltree.rule) ->
              if (not !flipped) && n.name = target_node.Poltree.name && r = target_rule
              then (
                flipped := true;
                { r with Poltree.action = Poltree.Deny })
              else r)
            n.Poltree.rules
        in
        { n with Poltree.rules; children = List.map rewrite n.children }
      in
      let root = rewrite t.root in
      if !flipped then Ok { t with Poltree.root = root }
      else Error "could not locate the allow rule to flip"
