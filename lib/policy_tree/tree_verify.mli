(** Compiled trees as a first-class spec source for the policy checker.

    A compiled tree is total — every flow gets a verdict — so it can
    stand where a mined flat spec stands: {!probes} grounds the tree on
    the network's host-bearing subnets (one representative flow per
    ordered subnet pair and service, like {!Heimdall_verify.Spec_miner})
    and labels each probe with the tree's verdict; {!check_all} hands
    the result to {!Heimdall_verify.Policy.check_all}, inheriting its
    guarantee that verdicts are byte-identical at any domain count. *)

open Heimdall_control
open Heimdall_verify

val probes : Network.t -> Compile.compiled -> Policy.t list
(** Deterministic probe policies: per ordered pair of host-bearing
    subnets, an ICMP flow plus one flow per tcp/udp service atom the
    tree names, each carrying the tree's verdict as its intent
    ([Permit] → [Reachable] or [Waypoint], explicit deny → [Isolated]).
    Flows the tree only denies by default are unspecified — no rule
    mentions them — so they produce no probe; the implicit deny is a
    fallback, not an operator claim about the dataplane. *)

val check_all :
  ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t -> Dataplane.t -> Compile.compiled ->
  Policy.report
(** [Policy.check_all] over {!probes}. *)
