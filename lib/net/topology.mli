(** Physical network topology: devices and the cables between their named
    interfaces.  Per-interface configuration (addresses, VLANs, ACL bindings)
    lives in the device configs ([Heimdall_config]), not here — the topology
    is pure wiring. *)

type node_kind = Router | Switch | Host | Firewall

val node_kind_to_string : node_kind -> string
val node_kind_of_string : string -> node_kind option

type node = { name : string; kind : node_kind }

type endpoint = { node : string; iface : string }
(** One side of a link: device name + interface name. *)

val endpoint_to_string : endpoint -> string

type link = { a : endpoint; b : endpoint }
(** An undirected cable. *)

type t
(** A topology. *)

val empty : t

val add_node : string -> node_kind -> t -> t
(** @raise Invalid_argument if a node of that name already exists. *)

val add_link : endpoint -> endpoint -> t -> t
(** Wire two interfaces together.
    @raise Invalid_argument if either node is unknown, if either interface is
    already wired, or if the link would connect a node to itself. *)

val node : string -> t -> node option
val mem_node : string -> t -> bool
val nodes : t -> node list
(** All nodes, sorted by name. *)

val links : t -> link list

val node_names : ?kind:node_kind -> t -> string list
(** Names of all nodes, optionally filtered by kind; sorted. *)

val peer : endpoint -> t -> endpoint option
(** The other end of the cable plugged into this interface, if wired. *)

val interfaces_of : string -> t -> string list
(** Wired interface names of a node, sorted. *)

val neighbors : string -> t -> string list
(** Nodes one cable away, sorted, without duplicates. *)

val degree : string -> t -> int
(** Number of wired interfaces on a node. *)

val node_count : t -> int
val link_count : t -> int

val to_graph : t -> link Graph.t
(** Project onto an undirected unit-weight graph (two directed edges per
    link, labelled with the link). *)

val remove_link : endpoint -> t -> t
(** Unplug the cable attached to an endpoint, if any. *)

val links_of : string -> t -> link list
(** Links with at least one endpoint on the named node. *)

val link_between : string -> string -> t -> link option
(** The first cable joining two nodes, if any. *)

val remove_node : string -> t -> t
(** Drop a node and every link touching it (fault modelling: the device
    vanished).  A no-op on an unknown node. *)

val digest : t -> string
(** Structural digest of the wiring (nodes and links only).  Two
    topologies built by the same add/remove sequence digest identically;
    internal acceleration structures never influence the result. *)

val validate : t -> (unit, string) result
(** Check structural invariants (each interface wired at most once, link
    endpoints exist).  Well-formed values built through this API always
    pass; this is for data loaded from external sources. *)

val pp : Format.formatter -> t -> unit
