(** Exact packet sets over header space.

    A packet set is a finite union of {e hypercubes}; each hypercube is
    the product of a source prefix, a destination prefix, a protocol
    subset and two inclusive port intervals.  ACL rules, and therefore
    whole ACLs, denote packet sets — the algebra makes semantic questions
    ("is this rule dead?", "are these two lists equivalent?", "what
    traffic did this edit open?") decidable exactly, where pairwise rule
    subsumption is only a sound approximation.

    The representation is canonical enough for deterministic output: the
    cubes of a set are pairwise disjoint, individually non-empty, and
    sorted.  Semantic equality is still decided by double inclusion
    ([equal]), because unions of hypercubes have no unique minimal form. *)

type cube = private {
  src : Prefix.t;
  dst : Prefix.t;
  protos : int;  (** Bitmask over {!Flow.proto}: icmp=1, tcp=2, udp=4. *)
  sp_lo : int;
  sp_hi : int;  (** Source-port interval, inclusive, within [0, 65535]. *)
  dp_lo : int;
  dp_hi : int;  (** Destination-port interval, inclusive. *)
}

type t
(** A packet set: disjoint, sorted, non-empty cubes. *)

val max_port : int
(** 65535 — the top of the port dimension. *)

val empty : t

val full : t
(** Every packet: any src, any dst, all protocols, all ports. *)

val cube :
  ?protos:Flow.proto list ->
  ?src_port:int * int ->
  ?dst_port:int * int ->
  src:Prefix.t ->
  dst:Prefix.t ->
  unit ->
  t
(** One hypercube.  [protos] defaults to all three protocols; the port
    intervals default to the full range and are clamped to [0, 65535].
    An empty protocol list or inverted interval yields {!empty}. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val complement : t -> t
(** [diff full t]. *)

val is_empty : t -> bool

val subset : t -> t -> bool
(** [subset a b]: every packet of [a] is in [b]. *)

val equal : t -> t -> bool
(** Semantic equality (double inclusion). *)

val mem : t -> Flow.t -> bool
(** Exact membership of a concrete flow. *)

val sample : t -> Flow.t option
(** The documented-deterministic witness packet of the set, or [None] on
    the empty set: the packet with the lowest source address, then the
    lowest destination address, then the lowest protocol
    (icmp < tcp < udp), then the lowest source and destination ports.
    Stable across runs and across semantically-equal representations of
    the same set — golden tests may pin the rendered witness. *)

val cubes : t -> cube list
(** The canonical cube list (disjoint, sorted). *)

val cube_count : t -> int

val approx_size : t -> float
(** Number of packets in the set, as a float (the space has [2^101]
    points, far beyond [int]). *)

val to_string : t -> string
(** Render as a union of cube descriptions, e.g.
    ["tcp 10.0.0.0/8:* -> 10.1.0.0/16:80-443"]; ["<empty>"] for the
    empty set. *)
