type cube = {
  src : Prefix.t;
  dst : Prefix.t;
  protos : int;
  sp_lo : int;
  sp_hi : int;
  dp_lo : int;
  dp_hi : int;
}

type t = cube list

let max_port = 65535
let all_protos = 0b111

let proto_bit = function Flow.Icmp -> 1 | Flow.Tcp -> 2 | Flow.Udp -> 4

let proto_of_bit = function
  | 1 -> Flow.Icmp
  | 2 -> Flow.Tcp
  | 4 -> Flow.Udp
  | _ -> invalid_arg "Packet_set.proto_of_bit"

let lowest_proto mask =
  if mask land 1 <> 0 then Flow.Icmp
  else if mask land 2 <> 0 then Flow.Tcp
  else Flow.Udp

let cube_nonempty c = c.protos <> 0 && c.sp_lo <= c.sp_hi && c.dp_lo <= c.dp_hi

let compare_cube a b =
  match Prefix.compare a.src b.src with
  | 0 -> (
      match Prefix.compare a.dst b.dst with
      | 0 -> (
          match Int.compare a.protos b.protos with
          | 0 -> (
              match Int.compare a.sp_lo b.sp_lo with
              | 0 -> (
                  match Int.compare a.sp_hi b.sp_hi with
                  | 0 -> (
                      match Int.compare a.dp_lo b.dp_lo with
                      | 0 -> Int.compare a.dp_hi b.dp_hi
                      | c -> c)
                  | c -> c)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let empty = []

let full_cube =
  {
    src = Prefix.any;
    dst = Prefix.any;
    protos = all_protos;
    sp_lo = 0;
    sp_hi = max_port;
    dp_lo = 0;
    dp_hi = max_port;
  }

let full = [ full_cube ]

(* ---------------- single-dimension helpers ---------------- *)

let prefix_inter p q =
  if Prefix.subsumes p q then Some q
  else if Prefix.subsumes q p then Some p
  else None

(* Addresses of [p] outside [q], as a prefix list (at most 32 entries:
   the siblings along the path from [p] down to [q]). *)
let rec prefix_diff p q =
  if Prefix.subsumes q p then []
  else if not (Prefix.overlaps p q) then [ p ]
  else
    match Prefix.split p with
    | None -> []
    | Some (lo, hi) ->
        if Prefix.overlaps lo q then hi :: prefix_diff lo q
        else lo :: prefix_diff hi q

let interval_inter (lo, hi) (lo', hi') = (max lo lo', min hi hi')

(* Parts of [lo, hi] outside [lo', hi']: at most two intervals. *)
let interval_diff (lo, hi) (lo', hi') =
  (if lo < lo' then [ (lo, min hi (lo' - 1)) ] else [])
  @ if hi > hi' then [ (max lo (hi' + 1), hi) ] else []

(* ---------------- cube algebra ---------------- *)

let inter_cube a b =
  match (prefix_inter a.src b.src, prefix_inter a.dst b.dst) with
  | Some src, Some dst ->
      let sp_lo, sp_hi = interval_inter (a.sp_lo, a.sp_hi) (b.sp_lo, b.sp_hi) in
      let dp_lo, dp_hi = interval_inter (a.dp_lo, a.dp_hi) (b.dp_lo, b.dp_hi) in
      let c = { src; dst; protos = a.protos land b.protos; sp_lo; sp_hi; dp_lo; dp_hi } in
      if cube_nonempty c then Some c else None
  | _ -> None

(* [a] minus [b], as disjoint cubes: peel one dimension at a time —
   the parts of [a] outside [b] along the dimension are emitted whole,
   then the search narrows to the intersection slab and proceeds to the
   next dimension. *)
let diff_cube a b =
  match inter_cube a b with
  | None -> [ a ]
  | Some _ ->
      let pieces = ref [] in
      let emit c = if cube_nonempty c then pieces := c :: !pieces in
      List.iter (fun s -> emit { a with src = s }) (prefix_diff a.src b.src);
      let a = { a with src = Option.get (prefix_inter a.src b.src) } in
      List.iter (fun d -> emit { a with dst = d }) (prefix_diff a.dst b.dst);
      let a = { a with dst = Option.get (prefix_inter a.dst b.dst) } in
      let outside = a.protos land lnot b.protos land all_protos in
      if outside <> 0 then emit { a with protos = outside };
      let a = { a with protos = a.protos land b.protos } in
      List.iter
        (fun (lo, hi) -> emit { a with sp_lo = lo; sp_hi = hi })
        (interval_diff (a.sp_lo, a.sp_hi) (b.sp_lo, b.sp_hi));
      let sp_lo, sp_hi = interval_inter (a.sp_lo, a.sp_hi) (b.sp_lo, b.sp_hi) in
      let a = { a with sp_lo; sp_hi } in
      List.iter
        (fun (lo, hi) -> emit { a with dp_lo = lo; dp_hi = hi })
        (interval_diff (a.dp_lo, a.dp_hi) (b.dp_lo, b.dp_hi));
      !pieces

(* ---------------- canonicalization ---------------- *)

(* Siblings: two prefixes that are the halves of one parent. *)
let sibling_parent p q =
  if Prefix.length p <> Prefix.length q || Prefix.length p = 0 then None
  else
    let parent = Prefix.make (Prefix.network p) (Prefix.length p - 1) in
    match Prefix.split parent with
    | Some (lo, hi)
      when (Prefix.equal lo p && Prefix.equal hi q)
           || (Prefix.equal lo q && Prefix.equal hi p) ->
        Some parent
    | _ -> None

(* Merge two cubes into one when they differ in exactly one dimension and
   are adjacent there; [None] when no lossless merge exists. *)
let merge_cube a b =
  let same_src = Prefix.equal a.src b.src and same_dst = Prefix.equal a.dst b.dst in
  let same_protos = a.protos = b.protos in
  let same_sp = a.sp_lo = b.sp_lo && a.sp_hi = b.sp_hi in
  let same_dp = a.dp_lo = b.dp_lo && a.dp_hi = b.dp_hi in
  if same_dst && same_protos && same_sp && same_dp then
    match sibling_parent a.src b.src with
    | Some parent -> Some { a with src = parent }
    | None -> None
  else if same_src && same_protos && same_sp && same_dp then
    match sibling_parent a.dst b.dst with
    | Some parent -> Some { a with dst = parent }
    | None -> None
  else if same_src && same_dst && same_sp && same_dp then
    Some { a with protos = a.protos lor b.protos }
  else if same_src && same_dst && same_protos && same_dp then
    if a.sp_hi + 1 = b.sp_lo then Some { a with sp_hi = b.sp_hi }
    else if b.sp_hi + 1 = a.sp_lo then Some { a with sp_lo = b.sp_lo }
    else None
  else if same_src && same_dst && same_protos && same_sp then
    if a.dp_hi + 1 = b.dp_lo then Some { a with dp_hi = b.dp_hi }
    else if b.dp_hi + 1 = a.dp_lo then Some { a with dp_lo = b.dp_lo }
    else None
  else None

(* One coalescing sweep to fixpoint: cheap at the cube counts ACL
   compilation produces, and it keeps diff/union chains from snowballing. *)
let canonical cubes =
  let rec absorb c = function
    | [] -> None
    | d :: rest -> (
        match merge_cube c d with
        | Some m -> Some (m, rest)
        | None -> (
            match absorb c rest with
            | Some (m, rest') -> Some (m, d :: rest')
            | None -> None))
  in
  let rec coalesce acc = function
    | [] -> acc
    | c :: rest -> (
        match absorb c rest with
        | Some (m, rest') -> coalesce acc (m :: rest')
        | None -> (
            match absorb c acc with
            | Some (m, acc') -> coalesce acc' (m :: rest)
            | None -> coalesce (c :: acc) rest))
  in
  List.sort compare_cube (coalesce [] (List.filter cube_nonempty cubes))

(* ---------------- set operations ---------------- *)

let is_empty t = t = []

let cube ?(protos = [ Flow.Icmp; Flow.Tcp; Flow.Udp ]) ?(src_port = (0, max_port))
    ?(dst_port = (0, max_port)) ~src ~dst () =
  let clamp (lo, hi) = (max 0 lo, min max_port hi) in
  let sp_lo, sp_hi = clamp src_port and dp_lo, dp_hi = clamp dst_port in
  let mask = List.fold_left (fun m p -> m lor proto_bit p) 0 protos in
  canonical [ { src; dst; protos = mask; sp_lo; sp_hi; dp_lo; dp_hi } ]

let inter a b =
  canonical (List.concat_map (fun ca -> List.filter_map (inter_cube ca) b) a)

let diff a b =
  canonical
    (List.concat_map
       (fun ca -> List.fold_left (fun ps cb -> List.concat_map (fun p -> diff_cube p cb) ps) [ ca ] b)
       a)

let union a b = canonical (a @ List.concat_map (fun cb -> List.fold_left (fun ps ca -> List.concat_map (fun p -> diff_cube p ca) ps) [ cb ] a) b)

let complement t = diff full t
let subset a b = is_empty (diff a b)
let equal a b = subset a b && subset b a

let mem t (f : Flow.t) =
  List.exists
    (fun c ->
      c.protos land proto_bit f.proto <> 0
      && Prefix.contains c.src f.src && Prefix.contains c.dst f.dst
      && c.sp_lo <= f.src_port && f.src_port <= c.sp_hi
      && c.dp_lo <= f.dst_port && f.dst_port <= c.dp_hi)
    t

(* The witness order is part of the tool's contract: golden tests pin
   ACL004/POL004 messages, so the choice must not depend on the internal
   cube ordering (which sorts whole prefixes, not their low addresses). *)
let sample = function
  | [] -> None
  | first :: rest ->
      let proto_rank c =
        match lowest_proto c.protos with Flow.Icmp -> 0 | Flow.Tcp -> 1 | Flow.Udp -> 2
      in
      let key c =
        ( Ipv4.to_int (Prefix.network c.src),
          Ipv4.to_int (Prefix.network c.dst),
          proto_rank c, c.sp_lo, c.dp_lo )
      in
      let best =
        List.fold_left
          (fun best c -> if compare (key c) (key best) < 0 then c else best)
          first rest
      in
      Some
        (Flow.make ~proto:(lowest_proto best.protos) ~src_port:best.sp_lo
           ~dst_port:best.dp_lo (Prefix.network best.src) (Prefix.network best.dst))

let cubes t = t
let cube_count = List.length

let approx_size t =
  List.fold_left
    (fun acc c ->
      let popcount = (c.protos land 1) + ((c.protos lsr 1) land 1) + ((c.protos lsr 2) land 1) in
      acc
      +. float_of_int (Prefix.hosts_count c.src)
         *. float_of_int (Prefix.hosts_count c.dst)
         *. float_of_int popcount
         *. float_of_int (c.sp_hi - c.sp_lo + 1)
         *. float_of_int (c.dp_hi - c.dp_lo + 1))
    0.0 t

let interval_to_string (lo, hi) =
  if lo = 0 && hi = max_port then "*"
  else if lo = hi then string_of_int lo
  else Printf.sprintf "%d-%d" lo hi

let cube_to_string c =
  let protos =
    if c.protos = all_protos then "ip"
    else
      String.concat ","
        (List.filter_map
           (fun b -> if c.protos land b <> 0 then Some (Flow.proto_to_string (proto_of_bit b)) else None)
           [ 1; 2; 4 ])
  in
  Printf.sprintf "%s %s:%s -> %s:%s" protos (Prefix.to_string c.src)
    (interval_to_string (c.sp_lo, c.sp_hi))
    (Prefix.to_string c.dst)
    (interval_to_string (c.dp_lo, c.dp_hi))

let to_string = function
  | [] -> "<empty>"
  | t -> String.concat " | " (List.map cube_to_string t)
