module Smap = Map.Make (String)

type node_kind = Router | Switch | Host | Firewall

let node_kind_to_string = function
  | Router -> "router"
  | Switch -> "switch"
  | Host -> "host"
  | Firewall -> "firewall"

let node_kind_of_string = function
  | "router" -> Some Router
  | "switch" -> Some Switch
  | "host" -> Some Host
  | "firewall" -> Some Firewall
  | _ -> None

type node = { name : string; kind : node_kind }
type endpoint = { node : string; iface : string }

let endpoint_to_string e = Printf.sprintf "%s:%s" e.node e.iface

type link = { a : endpoint; b : endpoint }

(* [by_node] indexes [links] per endpoint node so adjacency queries cost
   O(degree) instead of O(links).  Invariant: the entry for node [n] holds
   exactly the links touching [n], in the same relative order as [links]
   (both are built by prepending in [add_link]); nodes with no links have
   no entry.  [links] stays the source of truth for whole-topology
   traversals and for [digest], which must not depend on the index. *)
type t = { nodes : node Smap.t; links : link list; by_node : link list Smap.t }

let empty = { nodes = Smap.empty; links = []; by_node = Smap.empty }

let add_node name kind t =
  if Smap.mem name t.nodes then
    invalid_arg (Printf.sprintf "Topology.add_node: duplicate node %s" name);
  { t with nodes = Smap.add name { name; kind } t.nodes }

let endpoint_equal e1 e2 = e1.node = e2.node && e1.iface = e2.iface

let node_links name t =
  match Smap.find_opt name t.by_node with None -> [] | Some ls -> ls

let endpoint_wired e t =
  List.exists
    (fun l -> endpoint_equal l.a e || endpoint_equal l.b e)
    (node_links e.node t)

let index_add l by_node =
  let prepend node idx =
    Smap.update node
      (function None -> Some [ l ] | Some ls -> Some (l :: ls))
      idx
  in
  by_node |> prepend l.a.node |> prepend l.b.node

(* Each interface is wired at most once, so a link is identified by either
   of its endpoints; structural equality on both endpoints is enough to
   drop exactly the intended links from the index. *)
let link_equal l1 l2 = endpoint_equal l1.a l2.a && endpoint_equal l1.b l2.b

let index_remove ls by_node =
  List.fold_left
    (fun idx l ->
      let drop node idx =
        Smap.update node
          (function
            | None -> None
            | Some links -> (
                match List.filter (fun l' -> not (link_equal l l')) links with
                | [] -> None
                | remaining -> Some remaining))
          idx
      in
      idx |> drop l.a.node |> drop l.b.node)
    by_node ls

let add_link a b t =
  if not (Smap.mem a.node t.nodes) then
    invalid_arg (Printf.sprintf "Topology.add_link: unknown node %s" a.node);
  if not (Smap.mem b.node t.nodes) then
    invalid_arg (Printf.sprintf "Topology.add_link: unknown node %s" b.node);
  if a.node = b.node then
    invalid_arg (Printf.sprintf "Topology.add_link: self-link on %s" a.node);
  if endpoint_wired a t then
    invalid_arg
      (Printf.sprintf "Topology.add_link: %s already wired" (endpoint_to_string a));
  if endpoint_wired b t then
    invalid_arg
      (Printf.sprintf "Topology.add_link: %s already wired" (endpoint_to_string b));
  let l = { a; b } in
  { t with links = l :: t.links; by_node = index_add l t.by_node }

let node name t = Smap.find_opt name t.nodes
let mem_node name t = Smap.mem name t.nodes
let nodes t = Smap.fold (fun _ n acc -> n :: acc) t.nodes [] |> List.rev
let links t = t.links

let node_names ?kind t =
  Smap.fold
    (fun name n acc ->
      match kind with
      | Some k when n.kind <> k -> acc
      | _ -> name :: acc)
    t.nodes []
  |> List.sort String.compare

let peer e t =
  let rec go = function
    | [] -> None
    | l :: rest ->
        if endpoint_equal l.a e then Some l.b
        else if endpoint_equal l.b e then Some l.a
        else go rest
  in
  go (node_links e.node t)

let interfaces_of name t =
  List.concat_map
    (fun l ->
      (if l.a.node = name then [ l.a.iface ] else [])
      @ if l.b.node = name then [ l.b.iface ] else [])
    (node_links name t)
  |> List.sort String.compare

let neighbors name t =
  List.concat_map
    (fun l ->
      (if l.a.node = name then [ l.b.node ] else [])
      @ if l.b.node = name then [ l.a.node ] else [])
    (node_links name t)
  |> List.sort_uniq String.compare

let degree name t = List.length (interfaces_of name t)
let node_count t = Smap.cardinal t.nodes
let link_count t = List.length t.links

let to_graph t =
  let g = Smap.fold (fun name _ g -> Graph.add_vertex name g) t.nodes Graph.empty in
  List.fold_left
    (fun g l ->
      g
      |> Graph.add_edge ~src:l.a.node ~dst:l.b.node ~weight:1 ~label:l
      |> Graph.add_edge ~src:l.b.node ~dst:l.a.node ~weight:1 ~label:l)
    g t.links

let remove_link e t =
  let removed, kept =
    List.partition (fun l -> endpoint_equal l.a e || endpoint_equal l.b e) t.links
  in
  { t with links = kept; by_node = index_remove removed t.by_node }

let links_of name t = node_links name t

let link_between n1 n2 t =
  let joins l = (l.a.node = n1 && l.b.node = n2) || (l.a.node = n2 && l.b.node = n1) in
  List.find_opt joins (node_links n1 t)

let remove_node name t =
  let removed, kept =
    List.partition (fun l -> l.a.node = name || l.b.node = name) t.links
  in
  {
    nodes = Smap.remove name t.nodes;
    links = kept;
    by_node = Smap.remove name (index_remove removed t.by_node);
  }

(* Structural digest over the wiring only.  The adjacency index is a
   derived view whose in-memory shape must never influence digests, so
   this marshals just the (nodes, links) payload. *)
let digest t = Digest.string (Marshal.to_string (t.nodes, t.links) [])

let validate t =
  let seen = Hashtbl.create 64 in
  let check_endpoint e =
    if not (Smap.mem e.node t.nodes) then
      Error (Printf.sprintf "link endpoint references unknown node %s" e.node)
    else
      let key = endpoint_to_string e in
      if Hashtbl.mem seen key then Error (Printf.sprintf "interface %s wired twice" key)
      else begin
        Hashtbl.replace seen key ();
        Ok ()
      end
  in
  let rec go = function
    | [] -> Ok ()
    | l :: rest -> (
        match check_endpoint l.a with
        | Error _ as e -> e
        | Ok () -> (
            match check_endpoint l.b with
            | Error _ as e -> e
            | Ok () -> if l.a.node = l.b.node then
                Error (Printf.sprintf "self-link on %s" l.a.node)
              else go rest))
  in
  go t.links

let pp fmt t =
  Format.fprintf fmt "@[<v>topology: %d nodes, %d links@," (node_count t) (link_count t);
  List.iter
    (fun n -> Format.fprintf fmt "  %s (%s)@," n.name (node_kind_to_string n.kind))
    (nodes t);
  List.iter
    (fun l ->
      Format.fprintf fmt "  %s <-> %s@," (endpoint_to_string l.a) (endpoint_to_string l.b))
    t.links;
  Format.fprintf fmt "@]"
