type action = Permit | Deny

let action_to_string = function Permit -> "permit" | Deny -> "deny"

let action_of_string = function
  | "permit" -> Some Permit
  | "deny" -> Some Deny
  | _ -> None

type proto_match = Any_proto | Proto of Flow.proto
type port_match = Any_port | Eq of int | Range of int * int

type rule = {
  seq : int;
  action : action;
  proto : proto_match;
  src : Prefix.t;
  src_port : port_match;
  dst : Prefix.t;
  dst_port : port_match;
}

let rule ?(proto = Any_proto) ?(src_port = Any_port) ?(dst_port = Any_port) ~seq action
    src dst =
  { seq; action; proto; src; src_port; dst; dst_port }

let proto_matches m (p : Flow.proto) =
  match m with Any_proto -> true | Proto q -> q = p

let port_matches m port =
  match m with
  | Any_port -> true
  | Eq p -> p = port
  | Range (lo, hi) -> lo <= port && port <= hi

let rule_matches r (f : Flow.t) =
  proto_matches r.proto f.proto
  && Prefix.contains r.src f.src
  && Prefix.contains r.dst f.dst
  && port_matches r.src_port f.src_port
  && port_matches r.dst_port f.dst_port

let proto_match_to_string = function
  | Any_proto -> "ip"
  | Proto p -> Flow.proto_to_string p

let port_match_to_string = function
  | Any_port -> ""
  | Eq p -> Printf.sprintf " eq %d" p
  | Range (lo, hi) -> Printf.sprintf " range %d %d" lo hi

let prefix_to_acl_string p =
  if Prefix.equal p Prefix.any then "any" else Prefix.to_string p

let rule_to_string r =
  Printf.sprintf "%d %s %s %s%s %s%s" r.seq (action_to_string r.action)
    (proto_match_to_string r.proto)
    (prefix_to_acl_string r.src)
    (port_match_to_string r.src_port)
    (prefix_to_acl_string r.dst)
    (port_match_to_string r.dst_port)

type t = { name : string; rules : rule list }

let sort_rules rules = List.sort (fun a b -> Int.compare a.seq b.seq) rules

let make name rules =
  let sorted = sort_rules rules in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.seq = b.seq then
          invalid_arg (Printf.sprintf "Acl.make: duplicate sequence %d in %s" a.seq name);
        check rest
    | _ -> ()
  in
  check sorted;
  { name; rules = sorted }

let empty name = { name; rules = [] }

let eval t f =
  let rec go = function
    | [] -> (Deny, None)
    | r :: rest -> if rule_matches r f then (r.action, Some r) else go rest
  in
  go t.rules

let permits t f = fst (eval t f) = Permit

let add_rule r t =
  let without = List.filter (fun r' -> r'.seq <> r.seq) t.rules in
  { t with rules = sort_rules (r :: without) }

let remove_rule seq t = { t with rules = List.filter (fun r -> r.seq <> seq) t.rules }
let find_rule seq t = List.find_opt (fun r -> r.seq = seq) t.rules
let rule_count t = List.length t.rules

let port_subsumes outer inner =
  match (outer, inner) with
  | Any_port, _ -> true
  | _, Any_port -> false
  | Eq a, Eq b -> a = b
  | Eq a, Range (lo, hi) -> a = lo && a = hi
  | Range (lo, hi), Eq b -> lo <= b && b <= hi
  | Range (lo, hi), Range (lo', hi') -> lo <= lo' && hi' <= hi

let proto_subsumes outer inner =
  match (outer, inner) with
  | Any_proto, _ -> true
  | Proto a, Proto b -> a = b
  | Proto _, Any_proto -> false

let rule_packets r =
  let protos = match r.proto with Any_proto -> None | Proto p -> Some [ p ] in
  let port = function
    | Any_port -> None
    | Eq p -> Some (p, p)
    | Range (lo, hi) -> Some (lo, hi)
  in
  Packet_set.cube ?protos ?src_port:(port r.src_port) ?dst_port:(port r.dst_port)
    ~src:r.src ~dst:r.dst ()

(* Per-dimension subsumption is exact for a pair of rules (each rule is
   one hypercube) and costs a handful of comparisons — it is the fast
   path.  The packet-set fallback only ever adds the degenerate cases a
   dimension check cannot see (an empty rule is subsumed by anything). *)
let rule_subsumes outer inner =
  (proto_subsumes outer.proto inner.proto
  && Prefix.subsumes outer.src inner.src
  && Prefix.subsumes outer.dst inner.dst
  && port_subsumes outer.src_port inner.src_port
  && port_subsumes outer.dst_port inner.dst_port)
  || Packet_set.subset (rule_packets inner) (rule_packets outer)

(* Exact shadowing on the packet-set algebra: a rule is dead iff its
   match set minus the union of all earlier rules is empty — which the
   pairwise check under-approximates (it cannot see a union of earlier
   rules jointly covering a later one). *)
let shadowed_rules t =
  let rec go covered earlier = function
    | [] -> []
    | r :: rest ->
        let rs = rule_packets r in
        let shadowed =
          List.exists (fun e -> rule_subsumes e r) earlier
          || Packet_set.subset rs covered
        in
        let covered = Packet_set.union covered rs in
        if shadowed then r :: go covered (r :: earlier) rest
        else go covered (r :: earlier) rest
  in
  go Packet_set.empty [] t.rules

let equal a b = a.name = b.name && a.rules = b.rules

let pp fmt t =
  Format.fprintf fmt "@[<v>access-list %s:@," t.name;
  List.iter (fun r -> Format.fprintf fmt "  %s@," (rule_to_string r)) t.rules;
  Format.fprintf fmt "@]"
