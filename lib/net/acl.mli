(** Access control lists: ordered permit/deny rules matched first-to-last,
    with an implicit trailing deny — the semantics of Cisco extended ACLs. *)

type action = Permit | Deny

val action_to_string : action -> string
val action_of_string : string -> action option

type proto_match = Any_proto | Proto of Flow.proto

type port_match = Any_port | Eq of int | Range of int * int

type rule = {
  seq : int;  (** Sequence number; rules are evaluated in increasing order. *)
  action : action;
  proto : proto_match;
  src : Prefix.t;
  src_port : port_match;
  dst : Prefix.t;
  dst_port : port_match;
}

val rule :
  ?proto:proto_match ->
  ?src_port:port_match ->
  ?dst_port:port_match ->
  seq:int ->
  action ->
  Prefix.t ->
  Prefix.t ->
  rule
(** Convenience constructor; matchers default to wildcards. *)

val rule_matches : rule -> Flow.t -> bool

val rule_to_string : rule -> string
(** Render a rule in config syntax (without the leading ACL name). *)

type t = { name : string; rules : rule list (** kept sorted by [seq]. *) }

val make : string -> rule list -> t
(** Build an ACL; rules are sorted by sequence number.
    @raise Invalid_argument on duplicate sequence numbers. *)

val empty : string -> t

val eval : t -> Flow.t -> action * rule option
(** First-match evaluation.  Returns the decisive rule, or [None] when the
    implicit deny fired. *)

val permits : t -> Flow.t -> bool

val add_rule : rule -> t -> t
(** Insert (or replace, on equal [seq]) a rule. *)

val remove_rule : int -> t -> t
(** Remove the rule with the given sequence number, if present. *)

val find_rule : int -> t -> rule option

val rule_count : t -> int

val proto_subsumes : proto_match -> proto_match -> bool
(** [proto_subsumes outer inner]: every protocol matched by [inner] is
    matched by [outer]. *)

val port_subsumes : port_match -> port_match -> bool
(** [port_subsumes outer inner]: every port matched by [inner] is matched
    by [outer]. *)

val rule_packets : rule -> Packet_set.t
(** The exact packet set a rule matches (its action is ignored). *)

val rule_subsumes : rule -> rule -> bool
(** [rule_subsumes outer inner]: every flow matched by [inner] is matched
    by [outer] (actions are not compared).  Decided on the packet-set
    algebra, with a cheap per-dimension fast path. *)

val shadowed_rules : t -> rule list
(** Rules that can never fire: the rule's match set minus the union of all
    earlier rules is empty.  Exact on the packet-set algebra — a rule
    jointly covered by several earlier rules is reported even when no
    single earlier rule subsumes it. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
