(** The computed dataplane: one FIB per L3 device plus the L2 domain map.
    This is what the verification layer traces flows over — the moral
    equivalent of Batfish's dataplane. *)

open Heimdall_net

type t

val compute : Network.t -> t
(** Run the whole control plane: connected + static + OSPF + BGP routes,
    admin-distance selection, per-node FIBs, plus host default gateways. *)

val recompute : base:t -> Network.t -> t
(** [recompute ~base net] builds the dataplane of [net] reusing work from
    [base] (the dataplane of a structurally-similar network — typically
    the production network [net] was derived from by a change set).  The
    result is byte-identical to [compute net]; only the cost differs:

    - a change that leaves every device's routing inputs untouched (ACL
      edits, descriptions, secrets) reuses the L2 map and every FIB;
    - a change that leaves L2 attachments untouched (static routes, OSPF
      costs) reuses the L2 map and rebuilds only FIBs whose candidate
      routes actually differ;
    - anything else — including a different topology or node set — falls
      back to a full [compute]. *)

val network : t -> Network.t
val l2 : t -> L2.t

val fib : string -> t -> Fib.t
(** FIB of a node (empty for switches and unknown nodes). *)

val connected_routes : Network.t -> string -> Fib.route list
(** Connected candidates of a node (exposed for tests). *)

val static_routes : Network.t -> string -> Fib.route list
(** Static candidates, including the host default-gateway route; a static
    route whose next hop is not inside any connected subnet is ignored
    (unresolvable). *)

val l3_neighbour : t -> string -> Ipv4.t -> (string * string) option
(** [l3_neighbour dp node addr] finds which [(peer_node, peer_iface)] the
    given node can hand a packet for next-hop [addr] to: the owner of
    [addr] must share an L2 domain with one of [node]'s interfaces. *)

val route_counts : t -> (string * int) list
(** Installed route count per node (diagnostics / benches). *)
