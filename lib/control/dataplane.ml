open Heimdall_net
open Heimdall_config
module Smap = Map.Make (String)

type t = {
  network : Network.t;
  l2 : L2.t;
  fibs : Fib.t Smap.t;
  (* Pre-merge candidate routes per node, kept so an incremental
     recompute can reuse a node's built FIB (trie and all) whenever its
     candidate list comes out identical. *)
  candidates : Fib.route list Smap.t;
}

let connected_routes net node =
  match Network.config node net with
  | None -> []
  | Some cfg ->
      List.filter_map
        (fun (i : Ast.interface) ->
          match i.addr with
          | Some a when i.enabled ->
              Some
                {
                  Fib.prefix = Ifaddr.subnet a;
                  next_hop = None;
                  out_iface = i.if_name;
                  protocol = Fib.Connected;
                  distance = Fib.admin_distance Fib.Connected;
                  metric = 0;
                }
          | _ -> None)
        cfg.interfaces

let resolve_next_hop net node nh =
  (* The next hop must sit inside a connected (enabled) subnet; the route
     then leaves through that interface. *)
  match Network.config node net with
  | None -> None
  | Some cfg ->
      List.find_map
        (fun (i : Ast.interface) ->
          match i.addr with
          | Some a when i.enabled && Prefix.contains (Ifaddr.subnet a) nh -> Some i.if_name
          | _ -> None)
        cfg.interfaces

let static_routes net node =
  match Network.config node net with
  | None -> []
  | Some cfg ->
      let explicit =
        List.filter_map
          (fun (r : Ast.static_route) ->
            match resolve_next_hop net node r.sr_next_hop with
            | Some out_iface ->
                Some
                  {
                    Fib.prefix = r.sr_prefix;
                    next_hop = Some r.sr_next_hop;
                    out_iface;
                    protocol = Fib.Static;
                    distance = r.sr_distance;
                    metric = 0;
                  }
            | None -> None)
          cfg.static_routes
      in
      let gateway =
        match cfg.default_gateway with
        | None -> []
        | Some gw -> (
            match resolve_next_hop net node gw with
            | Some out_iface ->
                [
                  {
                    Fib.prefix = Prefix.any;
                    next_hop = Some gw;
                    out_iface;
                    protocol = Fib.Static;
                    distance = 1;
                    metric = 0;
                  };
                ]
            | None -> [])
      in
      explicit @ gateway

let node_candidates network ospf bgp node =
  connected_routes network node
  @ static_routes network node
  @ Option.value (List.assoc_opt node ospf) ~default:[]
  @ Option.value (List.assoc_opt node bgp) ~default:[]

let compute network =
  let l2 = L2.compute network in
  let ospf = Ospf.all_routes network l2 in
  let bgp = Bgp.all_routes network l2 in
  let candidates =
    List.fold_left
      (fun acc node -> Smap.add node (node_candidates network ospf bgp node) acc)
      Smap.empty (Network.node_names network)
  in
  let fibs = Smap.map Fib.of_candidates candidates in
  { network; l2; fibs; candidates }

(* ------------------------------------------------------------------ *)
(* Incremental recomputation                                           *)
(* ------------------------------------------------------------------ *)

(* The parts of a device config each control-plane stage actually reads.
   Comparing projections of the changed devices lets [recompute] skip
   stages that provably cannot have changed — the result must stay
   byte-identical to a full [compute], so every field a stage consumes
   must appear in its projection.

   - L2 ([L2.compute]): interface name/enabled/switchport (attachments)
     and address (SVIs), plus VLAN definitions.
   - Routing (connected/static/OSPF/BGP): the L2 projection plus OSPF
     cost/area per interface, [static_routes], [ospf], [bgp] and
     [default_gateway].

   ACL bodies, ACL bindings, descriptions and secrets appear in neither:
   they only affect trace-time evaluation, which reads the (updated)
   network carried in the dataplane. *)

let l2_projection (cfg : Ast.t) =
  ( List.map
      (fun (i : Ast.interface) -> (i.if_name, i.addr, i.switchport, i.enabled))
      cfg.interfaces,
    cfg.vlans )

let routing_projection (cfg : Ast.t) =
  ( List.map
      (fun (i : Ast.interface) ->
        (i.if_name, i.addr, i.ospf_cost, i.ospf_area, i.switchport, i.enabled))
      cfg.interfaces,
    cfg.vlans,
    cfg.static_routes,
    cfg.ospf,
    cfg.bgp,
    cfg.default_gateway )

let projection_unchanged proj base_net net node =
  match (Network.config node base_net, Network.config node net) with
  | Some a, Some b -> proj a = proj b
  | _ -> false

let recompute ~base network =
  match Network.changed_devices base.network network with
  | None -> compute network (* different topology/node set: start over *)
  | Some changed ->
      if
        List.for_all
          (projection_unchanged routing_projection base.network network)
          changed
      then
        (* Routing inputs untouched (ACL/description/secret-only change):
           every FIB and the L2 map are provably identical — only the
           network the tracer consults needs swapping. *)
        { base with network }
      else
        let l2 =
          if
            List.for_all
              (projection_unchanged l2_projection base.network network)
              changed
          then base.l2
          else L2.compute network
        in
        let ospf = Ospf.all_routes network l2 in
        let bgp = Bgp.all_routes network l2 in
        let candidates =
          List.fold_left
            (fun acc node -> Smap.add node (node_candidates network ospf bgp node) acc)
            Smap.empty (Network.node_names network)
        in
        let fibs =
          Smap.mapi
            (fun node cands ->
              (* Same candidates -> same (deterministic) merge: reuse the
                 already-built trie instead of rebuilding it. *)
              match (Smap.find_opt node base.candidates, Smap.find_opt node base.fibs) with
              | Some base_cands, Some base_fib when base_cands = cands -> base_fib
              | _ -> Fib.of_candidates cands)
            candidates
        in
        { network; l2; fibs; candidates }

let network t = t.network
let l2 t = t.l2
let fib node t = Option.value (Smap.find_opt node t.fibs) ~default:Fib.empty

let l3_neighbour t node addr =
  match Network.owner_of_address addr t.network with
  | None -> None
  | Some (peer_node, peer_iface) ->
      let peer_ep = { Topology.node = peer_node; iface = peer_iface } in
      let my_ifaces =
        match Network.config node t.network with
        | None -> []
        | Some cfg -> cfg.interfaces
      in
      if
        List.exists
          (fun (i : Ast.interface) ->
            i.enabled
            && L2.same_domain { Topology.node; iface = i.if_name } peer_ep t.l2)
          my_ifaces
      then Some (peer_node, peer_iface)
      else None

let route_counts t =
  Smap.bindings t.fibs |> List.map (fun (n, f) -> (n, Fib.route_count f))
