open Heimdall_net
open Heimdall_config
module Smap = Map.Make (String)

type t = {
  topology : Topology.t;
  configs : Ast.t Smap.t;
  (* Structural digests, maintained incrementally: [with_config] re-digests
     exactly one device, so the composed digest of a 1-change network costs
     one device marshal instead of the whole network.  Configs and
     topologies are closure-free structural data, so marshalled-bytes
     digests are sound structural keys. *)
  topo_digest : string;
  cfg_digests : string Smap.t;
}

let digest_of_config (cfg : Ast.t) = Digest.string (Marshal.to_string cfg [])
let digest_of_topology (topo : Topology.t) = Topology.digest topo

let make topo configs =
  let names = Topology.node_names topo in
  let map =
    List.fold_left
      (fun acc (name, (cfg : Ast.t)) ->
        if not (Topology.mem_node name topo) then
          invalid_arg (Printf.sprintf "Network.make: config for unknown node %s" name);
        if cfg.hostname <> name then
          invalid_arg
            (Printf.sprintf "Network.make: node %s has hostname %s" name cfg.hostname);
        if Smap.mem name acc then
          invalid_arg (Printf.sprintf "Network.make: duplicate config for %s" name);
        Smap.add name cfg acc)
      Smap.empty configs
  in
  List.iter
    (fun n ->
      if not (Smap.mem n map) then
        invalid_arg (Printf.sprintf "Network.make: node %s has no config" n))
    names;
  {
    topology = topo;
    configs = map;
    topo_digest = digest_of_topology topo;
    cfg_digests = Smap.map digest_of_config map;
  }

let topology t = t.topology
let config name t = Smap.find_opt name t.configs

let config_exn name t =
  match config name t with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Network.config_exn: unknown node %s" name)

let configs t = Smap.bindings t.configs
let node_names t = Topology.node_names t.topology

let kind name t =
  Option.map (fun (n : Topology.node) -> n.kind) (Topology.node name t.topology)

let with_config name cfg t =
  if not (Smap.mem name t.configs) then
    invalid_arg (Printf.sprintf "Network.with_config: unknown node %s" name);
  {
    t with
    configs = Smap.add name cfg t.configs;
    cfg_digests = Smap.add name (digest_of_config cfg) t.cfg_digests;
  }

let device_digest name t = Smap.find_opt name t.cfg_digests

let digest t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.topo_digest;
  Smap.iter
    (fun name d ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf d)
    t.cfg_digests;
  Digest.string (Buffer.contents buf)

exception Different_nodes

let changed_devices a b =
  (* Same topology and node set required: a device-by-device digest
     comparison is only meaningful when the networks line up. *)
  if
    (not (String.equal a.topo_digest b.topo_digest))
    || Smap.cardinal a.cfg_digests <> Smap.cardinal b.cfg_digests
  then None
  else
    match
      Smap.fold
        (fun name d acc ->
          match Smap.find_opt name b.cfg_digests with
          | None -> raise Different_nodes
          | Some d' -> if String.equal d d' then acc else name :: acc)
        a.cfg_digests []
    with
    | changed -> Some (List.rev changed)
    | exception Different_nodes -> None

let apply_changes changes t =
  match Change.apply_all changes (fun n -> config n t) with
  | Error _ as e -> e
  | Ok updated ->
      Ok (List.fold_left (fun t (name, cfg) -> with_config name cfg t) t updated)

let owner_of_address addr t =
  Smap.fold
    (fun node cfg acc ->
      match acc with
      | Some _ -> acc
      | None ->
          List.find_map
            (fun (iface, a) ->
              if Ipv4.equal (Ifaddr.address a) addr then Some (node, iface) else None)
            (Ast.addresses cfg))
    t.configs None

let subnet_of_address addr t =
  Smap.fold
    (fun _ cfg acc ->
      match acc with
      | Some _ -> acc
      | None ->
          List.find_map
            (fun (_, a) ->
              let subnet = Ifaddr.subnet a in
              if Prefix.contains subnet addr then Some subnet else None)
            (Ast.addresses cfg))
    t.configs None

let host_address name t =
  Option.bind (config name t) (fun cfg ->
      match Ast.addresses cfg with
      | (_, a) :: _ -> Some (Ifaddr.address a)
      | [] -> None)

let restrict keep t =
  let keep_set = List.fold_left (fun s n -> Smap.add n () s) Smap.empty keep in
  let mem n = Smap.mem n keep_set in
  let topo =
    List.fold_left
      (fun acc (n : Topology.node) ->
        if mem n.name then Topology.add_node n.name n.kind acc else acc)
      Topology.empty
      (Topology.nodes t.topology)
  in
  let topo =
    List.fold_left
      (fun acc (l : Topology.link) ->
        if mem l.a.node && mem l.b.node then Topology.add_link l.a l.b acc else acc)
      topo (Topology.links t.topology)
  in
  let cfgs = Smap.filter (fun name _ -> mem name) t.configs in
  {
    topology = topo;
    configs = cfgs;
    topo_digest = digest_of_topology topo;
    cfg_digests = Smap.filter (fun name _ -> mem name) t.cfg_digests;
  }

let total_config_lines t =
  Smap.fold (fun _ cfg n -> n + Printer.line_count cfg) t.configs 0

let validate t =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* L3 links join interfaces in the same subnet. *)
  List.iter
    (fun (l : Topology.link) ->
      let addr_of (e : Topology.endpoint) =
        Option.bind (config e.node t) (fun c -> Ast.interface_addr c e.iface)
      in
      match (addr_of l.a, addr_of l.b) with
      | Some a, Some b when not (Ifaddr.same_subnet a b) ->
          report "link %s <-> %s joins different subnets (%s vs %s)"
            (Topology.endpoint_to_string l.a)
            (Topology.endpoint_to_string l.b)
            (Ifaddr.to_string a) (Ifaddr.to_string b)
      | _ -> ())
    (Topology.links t.topology);
  (* Referenced ACLs exist; switchport VLANs are defined on the device. *)
  Smap.iter
    (fun node cfg ->
      List.iter
        (fun (i : Ast.interface) ->
          let check_acl = function
            | Some name when Ast.find_acl name cfg = None ->
                report "%s: interface %s references missing access-list %s" node i.if_name
                  name
            | _ -> ()
          in
          check_acl i.acl_in;
          check_acl i.acl_out;
          match i.switchport with
          | Some (Ast.Access v) when not (List.mem_assoc v cfg.vlans) ->
              report "%s: interface %s uses undefined vlan %d" node i.if_name v
          | Some (Ast.Trunk vs) ->
              List.iter
                (fun v ->
                  if not (List.mem_assoc v cfg.vlans) then
                    report "%s: interface %s trunks undefined vlan %d" node i.if_name v)
                vs
          | Some (Ast.Access _) | None -> ())
        cfg.interfaces)
    t.configs;
  match !problems with [] -> Ok () | p :: _ -> Error p
