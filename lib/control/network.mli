(** A complete modelled network: physical topology plus one configuration
    per device.  This is the object every other layer works on — the
    production network, a twin network, and the enforcer's shadow copies
    are all values of this type. *)

open Heimdall_net
open Heimdall_config

type t

val make : Topology.t -> (string * Ast.t) list -> t
(** [make topo configs] pairs each device with its config.
    @raise Invalid_argument if a config is supplied for an unknown node,
    if a node lacks a config, or if a config's hostname differs from its
    node name. *)

val topology : t -> Topology.t
val config : string -> t -> Ast.t option

val config_exn : string -> t -> Ast.t
(** @raise Invalid_argument on unknown node. *)

val configs : t -> (string * Ast.t) list
(** All configs, sorted by node name. *)

val node_names : t -> string list
val kind : string -> t -> Topology.node_kind option

val with_config : string -> Ast.t -> t -> t
(** Functionally replace one device's config.
    @raise Invalid_argument on unknown node. *)

val apply_changes : Change.t list -> t -> (t, string) result
(** Apply a change list, returning the updated network. *)

val owner_of_address : Ipv4.t -> t -> (string * string) option
(** [(node, iface)] owning the given (exact) interface address, if any. *)

val subnet_of_address : Ipv4.t -> t -> Prefix.t option
(** The configured subnet containing the address, if any interface's
    prefix covers it. *)

val host_address : string -> t -> Ipv4.t option
(** The primary (first) interface address of a node — how we name hosts
    in flows. *)

val restrict : string list -> t -> t
(** Keep only the named nodes and the links among them (used to build twin
    networks from a slice). *)

val digest : t -> string
(** A structural digest of the whole network, composed from a topology
    digest plus one digest per device config.  Digests are maintained
    incrementally: {!with_config} re-digests exactly the touched device,
    so digesting a 1-change variant of a large network costs one device
    marshal, not a whole-network marshal.  Two networks with equal
    topologies and structurally-equal configs share a digest. *)

val device_digest : string -> t -> string option
(** The structural digest of one device's config, if the node exists. *)

val changed_devices : t -> t -> string list option
(** [changed_devices a b] lists the devices whose config digests differ,
    in name order — [Some []] when the networks are structurally equal.
    [None] when the comparison is meaningless (different topologies or
    node sets), in which case callers must treat everything as changed. *)

val total_config_lines : t -> int
(** Sum of {!Heimdall_config.Printer.line_count} over all devices (the
    paper's "lines of configs" column). *)

val validate : t -> (unit, string) result
(** Structural checks: every wired L3 link joins interfaces in the same
    subnet; every referenced ACL exists; every switchport VLAN is defined
    on its switch. *)
