(** PLAN-family lint: static pre-flight checks on a ticket's fix script.

    Runs {!Heimdall_sem.Plan_sem} over the script and turns its analysis
    into diagnostics: privilege insufficiency (PLAN001), dead ops
    (PLAN002), self-contradictions (PLAN003), writes outside the ticket
    scope (PLAN004), and predicted policy-relevant deltas (PLAN005).
    Nothing here executes a command or builds a dataplane. *)

open Heimdall_control
open Heimdall_privilege

type ticket = {
  label : string;  (** Recorded as the diagnostics' device field. *)
  spec : Privilege.t;  (** The privilege grant the ticket runs under. *)
  scope : string list;
      (** Devices the ticket is entitled to touch; [[]] disables the
          PLAN004 scope check. *)
  commands : string list;  (** The fix script, one command per line. *)
}

val check :
  ?network:Network.t ->
  ?policies:Heimdall_verify.Policy.t list ->
  ticket ->
  Diagnostic.t list
(** All PLAN findings for one ticket, in canonical order.  [network]
    tightens the packet-set deltas and enables dead-op detection;
    [policies] enables PLAN005. *)
