(** Heimdall_lint: the static-analysis pass over configs, ACLs, and
    privilege specs.

    The dataplane-simulation verifier ({!Heimdall_verify}) only catches
    violations of mined policies; whole classes of technician mistakes —
    shadowed ACL rules, dead privilege statements, dangling ACL/VLAN
    references, off-subnet next hops — are detectable from the artifacts
    alone.  This module is the entry point: it fans the per-device and
    per-ACL analyzers out through {!Heimdall_verify.Engine} (inheriting
    the domain-pool parallelism) and returns canonically-ordered
    diagnostics, so reports are byte-identical at any domain count. *)

open Heimdall_control
open Heimdall_privilege
open Heimdall_verify

(** {1 Rule registry} *)

type family = Config | Acl | Net | Privilege | Plan | Pol

val family_to_string : family -> string

type rule = {
  code : string;
  family : family;
  severity : Diagnostic.severity;  (** Worst severity the rule emits. *)
  summary : string;
}

val rules : rule list
(** Every rule the analyzers can emit, sorted by code.  Kept in sync with
    the analyzers by a unit test. *)

val rule : string -> rule option

(** {1 Entry points} *)

val check_network :
  ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t -> ?twin_exposed:bool -> Network.t ->
  Diagnostic.t list
(** All config-, ACL- and net-family findings for a network.  Per-device
    checks (including each device's ACLs and static-route resolution)
    and per-link checks fan out through [engine] when one is given;
    global cross-device checks (duplicate addresses, overlapping
    subnets) run on the calling domain.  [twin_exposed] (default
    false) additionally runs the SEC001 secret-exposure check — set it
    when the network is (about to be) technician-visible.  With [?obs]
    (or an engine carrying one) the pass is a tracer span and feeds the
    [lint.findings] counter; the report itself is byte-identical with
    or without instrumentation, at any domain count. *)

val check_privilege : ?network:Network.t -> ?label:string -> Privilege.t -> Diagnostic.t list
(** All privilege-family findings for one spec.  [network] enables the
    resource-existence checks; [label] is recorded as the diagnostics'
    device field (e.g. the ticket or issue the spec was generated for). *)

val check_acl : device:string -> Heimdall_net.Acl.t -> Diagnostic.t list
(** The ACL-family findings for a single access list. *)

val check_privilege_usage :
  ?label:string ->
  network:Network.t ->
  spec:Privilege.t ->
  changes:Heimdall_config.Change.t list ->
  unit ->
  Diagnostic.t list
(** PRV004: grants of [spec] that strictly exceed the privilege the
    change list exercised (see {!Heimdall_sem.Priv_sem}).  [label] is
    recorded as the diagnostics' device field. *)

val check_plans :
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  ?policies:Heimdall_verify.Policy.t list ->
  network:Network.t ->
  Plan_lint.ticket list ->
  Diagnostic.t list
(** All PLAN-family findings for a batch of tickets (see {!Plan_lint}):
    static pre-flight analysis of each ticket's fix script against its
    privilege grant, scope, and the given policies — nothing executes.
    Tickets fan out through [engine] when one is given; the report is in
    canonical order, byte-identical at any domain count. *)

(** {1 Filtering and rendering} *)

val filter : min_severity:Diagnostic.severity -> Diagnostic.t list -> Diagnostic.t list

val apply_severity :
  min_severity:Diagnostic.severity -> Diagnostic.t list -> Diagnostic.t list * bool
(** The severity gate shared by every CLI front-end: the filtered
    report, plus whether the process should fail — decided on the
    {e filtered} findings, so a report that prints nothing never exits
    non-zero. *)

val count : Diagnostic.severity -> Diagnostic.t list -> int

val has_errors : Diagnostic.t list -> bool

val summary : Diagnostic.t list -> string
(** ["3 findings (1 error, 2 warnings)"] or ["clean"]. *)

val render : Diagnostic.t list -> string
(** Human-readable report: one line per diagnostic plus the summary. *)

val to_json : Diagnostic.t list -> Heimdall_json.Json.t
(** [{"findings": [...], "errors": n, "warnings": n, "info": n}] with
    findings in canonical order — stable across engine domain counts. *)
