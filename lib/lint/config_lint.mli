(** Configuration analyzers over {!Heimdall_config.Ast} and
    {!Heimdall_control.Network}: whole-network static checks that need no
    dataplane — the Batfish-style lint layer under the simulation-based
    policy verifier.

    Rule codes:
    - [CFG001] (error): the same interface address is configured on more
      than one enabled interface in the network.
    - [CFG002] (error): the two endpoints of a link carry addresses in
      different subnets.
    - [CFG003] (error): an interface references an access-list the device
      does not define.
    - [CFG004] (warning): an access-list is defined but bound to no
      interface on the device.
    - [CFG005] (error): an access or trunk port uses a VLAN the device
      does not declare.
    - [CFG006] (error): a static route's next hop (or a host's default
      gateway) is on no enabled connected subnet of the device.
    - [CFG007] (error): the two ends of a link run OSPF in different
      areas, so the adjacency can never form.
    - [CFG008] (warning): an access-list is bound to a shutdown
      interface — it filters nothing until someone re-enables the port.
    - [SEC001] (error): a config that is about to be exposed through the
      twin still carries unscrubbed secrets (see
      {!Heimdall_config.Redact}). *)

open Heimdall_control

val check_device : Network.t -> string -> Diagnostic.t list
(** Per-device checks (CFG003, CFG004, CFG005, CFG006, CFG008) plus the
    {!Acl_lint} checks for every ACL the device defines.  Safe to fan out
    across engine domains — one call per device, no shared state. *)

val check_links : Network.t -> Diagnostic.t list
(** Cross-device link checks: CFG002 and CFG007. *)

val effective_area : Network.t -> Heimdall_net.Topology.endpoint -> int option
(** The OSPF area effectively running on an endpoint — the interface must
    be enabled and addressed, a [network] statement must cover the
    address, and an explicit per-interface area overrides the
    statement's.  Shared with {!Net_lint}'s adjacency checks. *)

val duplicate_addresses : Network.t -> Diagnostic.t list
(** CFG001, one diagnostic per duplicated address listing every owner. *)

val twin_exposure : Network.t -> Diagnostic.t list
(** SEC001 over every config in the network.  Only meaningful for a
    network that is (about to be) technician-visible; production configs
    legitimately hold secrets. *)
