(** Lint diagnostics: the finding type every analyzer family produces.

    A diagnostic carries a stable rule code (["CFG003"]), a severity, a
    location (device, object within the device, line within the object
    when known) and a human-readable message.  Diagnostics order
    canonically ({!compare}), so a lint report is byte-identical
    regardless of how many engine domains produced it. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Error] = 2, [Warning] = 1, [Info] = 0 — higher is more severe. *)

type t = {
  code : string;  (** Stable rule code, e.g. ["ACL001"]. *)
  severity : severity;
  device : string option;  (** Device the finding is on, when device-scoped. *)
  obj : string option;  (** Object within the device: interface, ACL, statement. *)
  line : int option;  (** Line / sequence / statement index, when known. *)
  message : string;
}

val v :
  ?device:string -> ?obj:string -> ?line:int -> code:string -> severity -> string -> t

val compare : t -> t -> int
(** Canonical order: device, code, object, line, message.  Sorting with
    this makes reports deterministic across engine domain counts. *)

val equal : t -> t -> bool

val to_string : t -> string
(** One line: ["error  CFG003 r4/eth1: ..."]. *)

val to_json : t -> Heimdall_json.Json.t
(** Object with [code], [severity], [message] and the location fields
    that are present ([device], [object], [line]). *)

val of_json : Heimdall_json.Json.t -> t option
