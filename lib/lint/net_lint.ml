open Heimdall_net
open Heimdall_config
open Heimdall_control

let iface_of net (e : Topology.endpoint) =
  Option.bind (Network.config e.node net) (Ast.find_interface e.iface)

let addr_of net (e : Topology.endpoint) =
  match iface_of net e with
  | Some (i : Ast.interface) when i.enabled -> i.addr
  | _ -> None

let is_l3 net (e : Topology.endpoint) =
  match Network.kind e.node net with
  | Some (Topology.Router | Topology.Firewall) -> true
  | _ -> false

(* NET001: one-sided OSPF.  Only meaningful when the link is a plausible
   adjacency: two L3 devices, both ends up and addressed in one subnet —
   then a single silent end is a configuration hole, not a design
   choice (a deliberately non-IGP link has OSPF on neither end). *)
let one_sided_ospf net (l : Topology.link) =
  if not (is_l3 net l.a && is_l3 net l.b) then []
  else
    match (addr_of net l.a, addr_of net l.b) with
    | Some aa, Some ab when Ifaddr.same_subnet aa ab -> (
        let flag (silent : Topology.endpoint) (talking : Topology.endpoint) area =
          [
            Diagnostic.v ~device:silent.node ~obj:silent.iface ~code:"NET001"
              Diagnostic.Error
              (Printf.sprintf
                 "OSPF (area %d) runs on %s but not on %s: the adjacency can never \
                  form"
                 area
                 (Topology.endpoint_to_string talking)
                 (Topology.endpoint_to_string silent));
          ]
        in
        match (Config_lint.effective_area net l.a, Config_lint.effective_area net l.b) with
        | Some area, None -> flag l.b l.a area
        | None, Some area -> flag l.a l.b area
        | _ -> [])
    | _ -> []

(* NET002: asymmetric interface cost inside one area.  The default cost
   is 10 (mirroring the dataplane's OSPF model). *)
let cost_of net e =
  match iface_of net e with
  | Some (i : Ast.interface) -> Option.value i.ospf_cost ~default:10
  | None -> 10

let asymmetric_cost net (l : Topology.link) =
  match (Config_lint.effective_area net l.a, Config_lint.effective_area net l.b) with
  | Some x, Some y when x = y ->
      let ca = cost_of net l.a and cb = cost_of net l.b in
      if ca = cb then []
      else
        [
          Diagnostic.v ~device:l.a.node ~obj:l.a.iface ~code:"NET002"
            Diagnostic.Warning
            (Printf.sprintf
               "asymmetric OSPF cost across %s <-> %s (%d vs %d): the two directions \
                may take different paths"
               (Topology.endpoint_to_string l.a)
               (Topology.endpoint_to_string l.b)
               ca cb);
        ]
  | _ -> []

(* NET006: the VLANs allowed on each end of a cable must agree, or the
   difference is silently dropped at the far end. *)
let vlan_set (i : Ast.interface) =
  match i.switchport with
  | Some (Ast.Access v) -> Some [ v ]
  | Some (Ast.Trunk vs) -> Some (List.sort_uniq Int.compare vs)
  | None -> None

let vlans_to_string vs = String.concat "," (List.map string_of_int vs)

let switchport_mismatch net (l : Topology.link) =
  match (iface_of net l.a, iface_of net l.b) with
  | Some ia, Some ib when ia.enabled && ib.enabled -> (
      match (vlan_set ia, vlan_set ib) with
      | Some va, Some vb when va <> vb ->
          [
            Diagnostic.v ~device:l.a.node ~obj:l.a.iface ~code:"NET006"
              Diagnostic.Error
              (Printf.sprintf
                 "switchport VLAN mismatch across %s <-> %s (%s vs %s): traffic on \
                  the difference is dropped"
                 (Topology.endpoint_to_string l.a)
                 (Topology.endpoint_to_string l.b)
                 (vlans_to_string va) (vlans_to_string vb));
          ]
      | _ -> [])
  | _ -> []

let check_link net l =
  List.sort Diagnostic.compare
    (one_sided_ospf net l @ asymmetric_cost net l @ switchport_mismatch net l)

(* ---------------- static-route resolution (NET004 / NET005) ---------------- *)

let connected_subnets (cfg : Ast.t) =
  List.filter_map
    (fun (i : Ast.interface) ->
      match i.addr with Some a when i.enabled -> Some (Ifaddr.subnet a) | _ -> None)
    cfg.interfaces

let check_device_routes net device =
  match Network.config device net with
  | None -> []
  | Some cfg ->
      let subnets = connected_subnets cfg in
      let on_subnet nh = List.exists (fun s -> Prefix.contains s nh) subnets in
      (* A subnet where no *other* modelled device has an address is an
         external handoff (the ISP side of an uplink): who owns
         addresses there is outside the model, so NET004 stays quiet. *)
      let internal_subnet nh =
        List.exists
          (fun (node, (c : Ast.t)) ->
            node <> device
            && List.exists
                 (fun (i : Ast.interface) ->
                   match i.addr with
                   | Some a when i.enabled ->
                       List.exists
                         (fun s ->
                           Prefix.contains s nh
                           && Prefix.contains s (Ifaddr.address a))
                         subnets
                   | _ -> false)
                 c.interfaces)
          (Network.configs net)
      in
      (* NET004 fires only where CFG006 does not: the next hop is on a
         connected subnet, so the local check passes, yet nobody in the
         network answers for the address. *)
      let unowned ~obj what nh =
        if not (on_subnet nh && internal_subnet nh) then []
        else
          match Network.owner_of_address nh net with
          | Some _ -> []
          | None ->
              [
                Diagnostic.v ~device ~obj ~code:"NET004" Diagnostic.Error
                  (Printf.sprintf
                     "%s %s is on a connected subnet but no device owns that address"
                     what (Ipv4.to_string nh));
              ]
      in
      let loops (r : Ast.static_route) =
        if not (on_subnet r.sr_next_hop) then []
        else
          match Network.owner_of_address r.sr_next_hop net with
          | Some (owner, _) when owner <> device -> (
              match Network.config owner net with
              | None -> []
              | Some ocfg ->
                  List.filter_map
                    (fun (r' : Ast.static_route) ->
                      let back_to_us =
                        match Network.owner_of_address r'.sr_next_hop net with
                        | Some (d, _) -> d = device
                        | None -> false
                      in
                      if back_to_us && Prefix.overlaps r'.sr_prefix r.sr_prefix then
                        Some
                          (Diagnostic.v ~device
                             ~obj:(Prefix.to_string r.sr_prefix)
                             ~code:"NET005" Diagnostic.Error
                             (Printf.sprintf
                                "static route %s via %s: %s routes the overlapping %s \
                                 straight back — two-device forwarding loop"
                                (Prefix.to_string r.sr_prefix)
                                (Ipv4.to_string r.sr_next_hop)
                                owner
                                (Prefix.to_string r'.sr_prefix)))
                      else None)
                    ocfg.static_routes)
          | Some _ | None -> []
      in
      let routes =
        List.concat_map
          (fun (r : Ast.static_route) ->
            unowned ~obj:(Prefix.to_string r.sr_prefix) "static-route next hop"
              r.sr_next_hop
            @ loops r)
          cfg.static_routes
      in
      let gateway =
        match cfg.default_gateway with
        | Some gw -> unowned ~obj:"default-gateway" "default gateway" gw
        | None -> []
      in
      List.sort Diagnostic.compare (routes @ gateway)

(* ---------------- NET003: overlapping unequal subnets ---------------- *)

let overlapping_subnets net =
  let owners = Hashtbl.create 64 in
  List.iter
    (fun (node, (cfg : Ast.t)) ->
      List.iter
        (fun (i : Ast.interface) ->
          match i.addr with
          | Some a when i.enabled ->
              let s = Ifaddr.subnet a in
              if not (Hashtbl.mem owners s) then
                Hashtbl.add owners s (node, i.if_name)
          | _ -> ())
        cfg.interfaces)
    (Network.configs net);
  let subnets =
    List.sort (fun (a, _) (b, _) -> Prefix.compare a b)
      (Hashtbl.fold (fun s o acc -> (s, o) :: acc) owners [])
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.filter_map
    (fun (((p, (pn, pi)) : Prefix.t * _), ((q, (qn, qi)) : Prefix.t * _)) ->
      if Prefix.overlaps p q && not (Prefix.equal p q) then
        Some
          (Diagnostic.v ~device:pn ~obj:(Prefix.to_string p) ~code:"NET003"
             Diagnostic.Warning
             (Printf.sprintf
                "subnet %s (%s/%s) overlaps the unequal subnet %s (%s/%s): \
                 longest-prefix match splits this address space"
                (Prefix.to_string p) pn pi (Prefix.to_string q) qn qi))
      else None)
    (pairs subnets)
  |> List.sort Diagnostic.compare
