open Heimdall_control
open Heimdall_verify

(* ---------------- rule registry ---------------- *)

type family = Config | Acl | Net | Privilege | Plan | Pol

let family_to_string = function
  | Config -> "config"
  | Acl -> "acl"
  | Net -> "net"
  | Privilege -> "privilege"
  | Plan -> "plan"
  | Pol -> "pol"

type rule = {
  code : string;
  family : family;
  severity : Diagnostic.severity;
  summary : string;
}

let rules =
  [
    { code = "CFG001"; family = Config; severity = Diagnostic.Error;
      summary = "duplicate interface address across the network" };
    { code = "CFG002"; family = Config; severity = Diagnostic.Error;
      summary = "link endpoints in different subnets" };
    { code = "CFG003"; family = Config; severity = Diagnostic.Error;
      summary = "interface references an undefined access-list" };
    { code = "CFG004"; family = Config; severity = Diagnostic.Warning;
      summary = "access-list defined but bound to no interface" };
    { code = "CFG005"; family = Config; severity = Diagnostic.Error;
      summary = "access/trunk port on an undeclared VLAN" };
    { code = "CFG006"; family = Config; severity = Diagnostic.Error;
      summary = "static-route next hop / default gateway on no enabled connected subnet" };
    { code = "CFG007"; family = Config; severity = Diagnostic.Error;
      summary = "OSPF area mismatch across a link" };
    { code = "CFG008"; family = Config; severity = Diagnostic.Warning;
      summary = "access-list bound to a shutdown interface" };
    { code = "SEC001"; family = Config; severity = Diagnostic.Error;
      summary = "unscrubbed secret in a twin-exposed config" };
    { code = "ACL001"; family = Acl; severity = Diagnostic.Error;
      summary = "rule shadowed by an earlier rule with the opposite action" };
    { code = "ACL002"; family = Acl; severity = Diagnostic.Warning;
      summary = "rule fully redundant with an earlier same-action rule" };
    { code = "ACL003"; family = Acl; severity = Diagnostic.Warning;
      summary = "terminal 'permit ip any any' turns default-deny into default-permit" };
    { code = "ACL004"; family = Acl; severity = Diagnostic.Error;
      summary = "rule killed by a union of earlier rules deciding with the opposite action" };
    { code = "ACL005"; family = Acl; severity = Diagnostic.Warning;
      summary = "rule redundant: a union of earlier same-effect rules covers all its traffic" };
    { code = "NET001"; family = Net; severity = Diagnostic.Error;
      summary = "OSPF runs on only one end of a router-to-router link" };
    { code = "NET002"; family = Net; severity = Diagnostic.Warning;
      summary = "asymmetric OSPF interface cost across an adjacency" };
    { code = "NET003"; family = Net; severity = Diagnostic.Warning;
      summary = "two configured subnets overlap without being equal" };
    { code = "NET004"; family = Net; severity = Diagnostic.Error;
      summary = "next hop on a connected subnet but owned by no device" };
    { code = "NET005"; family = Net; severity = Diagnostic.Error;
      summary = "static routes form a two-device forwarding loop" };
    { code = "NET006"; family = Net; severity = Diagnostic.Error;
      summary = "switchport VLAN sets differ across a link" };
    { code = "PRV001"; family = Privilege; severity = Diagnostic.Error;
      summary = "statement unreachable under first-match-wins" };
    { code = "PRV002"; family = Privilege; severity = Diagnostic.Warning;
      summary = "grant on a resource naming no device/interface in the network" };
    { code = "PRV003"; family = Privilege; severity = Diagnostic.Warning;
      summary = "over-broad grant (allow everything on every device)" };
    { code = "PRV004"; family = Privilege; severity = Diagnostic.Warning;
      summary = "grant strictly exceeds the privilege the changes exercised" };
    { code = "PLAN001"; family = Plan; severity = Diagnostic.Error;
      summary = "plan requires a privilege the grant denies (would fail mid-apply)" };
    { code = "PLAN002"; family = Plan; severity = Diagnostic.Warning;
      summary = "dead op: removing it leaves the plan's outcome unchanged" };
    { code = "PLAN003"; family = Plan; severity = Diagnostic.Warning;
      summary = "self-contradicting plan: ops race for one write slot, the last silently wins" };
    { code = "PLAN004"; family = Plan; severity = Diagnostic.Warning;
      summary = "write footprint outside the ticket scope" };
    { code = "PLAN005"; family = Plan; severity = Diagnostic.Info;
      summary = "predicted packet-set delta covers a policy's flow" };
    (* The POL analyzers live in Heimdall_poltree (they need the tree
       compiler); only their registry identity lives here. *)
    { code = "POL001"; family = Pol; severity = Diagnostic.Error;
      summary = "child allows traffic an ancestor unconditionally denies (deny!)" };
    { code = "POL002"; family = Pol; severity = Diagnostic.Warning;
      summary = "rule shadowed: earlier rules, siblings or descendants already decide all its traffic" };
    { code = "POL003"; family = Pol; severity = Diagnostic.Warning;
      summary = "node scope compiles to the empty packet set (unreachable under its ancestors)" };
    { code = "POL004"; family = Pol; severity = Diagnostic.Error;
      summary = "refinement violation: compiled tree and flat policy spec disagree (witnessed)" };
    { code = "POL005"; family = Pol; severity = Diagnostic.Warning;
      summary = "ticket delta can flip a tree verdict but its privilege covers no owner of the scope" };
    { code = "POL006"; family = Pol; severity = Diagnostic.Warning;
      summary = "redundant subtree: removing it leaves permit, deny and require sets unchanged" };
  ]

let rule code = List.find_opt (fun r -> r.code = code) rules

(* ---------------- entry points ---------------- *)

let check_network ?engine ?obs ?(twin_exposed = false) net =
  let obs = match obs with Some _ -> obs | None -> Option.bind engine Engine.obs in
  Heimdall_obs.Obs.span obs "lint.check_network" (fun () ->
      let nodes = Network.node_names net in
      let device_checks node =
        Config_lint.check_device net node @ Net_lint.check_device_routes net node
      in
      let per_device =
        match engine with
        | None -> List.map device_checks nodes
        | Some e ->
            Engine.phase e "lint/devices" (fun () -> Engine.map e device_checks nodes)
      in
      let links = Heimdall_net.Topology.links (Network.topology net) in
      let per_link =
        match engine with
        | None -> List.map (Net_lint.check_link net) links
        | Some e ->
            Engine.phase e "lint/links" (fun () ->
                Engine.map e (Net_lint.check_link net) links)
      in
      let cross =
        Config_lint.check_links net
        @ Net_lint.overlapping_subnets net
        @ Config_lint.duplicate_addresses net
        @ List.concat per_link
        @ if twin_exposed then Config_lint.twin_exposure net else []
      in
      let findings = List.sort Diagnostic.compare (List.concat per_device @ cross) in
      Heimdall_obs.Obs.add_attr obs "devices" (string_of_int (List.length nodes));
      Heimdall_obs.Obs.add_attr obs "findings" (string_of_int (List.length findings));
      Heimdall_obs.Obs.incr obs ~by:(List.length findings) "lint.findings";
      findings)

let check_privilege ?network ?label spec =
  Priv_lint.check ?network spec
  |> List.map (fun (d : Diagnostic.t) ->
         match label with Some _ -> { d with Diagnostic.device = label } | None -> d)
  |> List.sort Diagnostic.compare

let check_acl = Acl_lint.check

let check_privilege_usage ?label ~network ~spec ~changes () =
  Priv_lint.check_usage ?label ~network ~spec ~changes ()

let check_plans ?engine ?obs ?(policies = []) ~network tickets =
  let obs = match obs with Some _ -> obs | None -> Option.bind engine Engine.obs in
  Heimdall_obs.Obs.span obs "lint.check_plans" (fun () ->
      let check_one t = Plan_lint.check ~network ~policies t in
      let per_ticket =
        match engine with
        | None -> List.map check_one tickets
        | Some e ->
            Engine.phase e "lint/plans" (fun () ->
                Engine.map ~min_per_domain:1 e check_one tickets)
      in
      let findings = List.sort Diagnostic.compare (List.concat per_ticket) in
      Heimdall_obs.Obs.add_attr obs "tickets" (string_of_int (List.length tickets));
      Heimdall_obs.Obs.add_attr obs "findings" (string_of_int (List.length findings));
      Heimdall_obs.Obs.incr obs ~by:(List.length findings) "lint.findings";
      findings)

(* ---------------- filtering and rendering ---------------- *)

let filter ~min_severity diags =
  List.filter
    (fun (d : Diagnostic.t) ->
      Diagnostic.severity_rank d.severity >= Diagnostic.severity_rank min_severity)
    diags

let count severity diags =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = severity) diags)

let has_errors diags = count Diagnostic.Error diags > 0

(* The one severity gate every front-end shares: the exit decision is
   made on the *filtered* report, so what the user sees and what fails
   the process can never disagree. *)
let apply_severity ~min_severity diags =
  let filtered = filter ~min_severity diags in
  (filtered, has_errors filtered)

let summary diags =
  match diags with
  | [] -> "clean"
  | _ ->
      let part n what = if n = 0 then [] else [ Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") ] in
      Printf.sprintf "%d finding%s (%s)" (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (String.concat ", "
           (part (count Diagnostic.Error diags) "error"
           @ part (count Diagnostic.Warning diags) "warning"
           @ part (count Diagnostic.Info diags) "info"))

let render diags =
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diagnostic.to_string d);
      Buffer.add_char buf '\n')
    diags;
  Buffer.add_string buf (summary diags);
  Buffer.add_char buf '\n';
  Buffer.contents buf

open Heimdall_json

let to_json diags =
  Json.Obj
    [
      ("findings", Json.List (List.map Diagnostic.to_json diags));
      ("errors", Json.Int (count Diagnostic.Error diags));
      ("warnings", Json.Int (count Diagnostic.Warning diags));
      ("info", Json.Int (count Diagnostic.Info diags));
    ]
