(** Network-wide semantic checks: rules that need to look at more than
    one device at a time.  Where {!Config_lint} asks "is this config
    internally consistent?", this family asks "do these configs agree
    with each other?".

    Rule codes:
    - [NET001] (error): OSPF runs on one end of a router-to-router link
      but not the other — the adjacency can never form (one-sided
      variant of CFG007, which needs both ends enabled).
    - [NET002] (warning): both ends of an OSPF adjacency are in the same
      area but with different interface costs — routing works, but the
      two directions take different paths.
    - [NET003] (warning): two configured subnets overlap without being
      equal — longest-prefix match silently splits what reads like one
      network.
    - [NET004] (error): a static-route next hop (or default gateway) is
      on a connected subnet, but no device in the network owns the
      address — traffic dies at address resolution.  (CFG006 covers the
      off-subnet case.)
    - [NET005] (error): a static route's next-hop device routes the same
      (overlapping) prefix straight back — a two-device forwarding
      loop.
    - [NET006] (error): the two switchports of a link carry different
      VLAN sets — traffic on the difference is silently dropped. *)

open Heimdall_control
open Heimdall_net

val check_link : Network.t -> Topology.link -> Diagnostic.t list
(** NET001, NET002 and NET006 for one cable.  Safe to fan out across
    engine domains — one call per link, no shared state. *)

val check_device_routes : Network.t -> string -> Diagnostic.t list
(** NET004 and NET005 for one device's static routes and default
    gateway.  Reads other devices' configs but mutates nothing — safe to
    fan out. *)

val overlapping_subnets : Network.t -> Diagnostic.t list
(** NET003, one diagnostic per overlapping (unequal) subnet pair. *)
