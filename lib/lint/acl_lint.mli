(** ACL analyzers over {!Heimdall_net.Acl}.

    Rule codes:
    - [ACL001] (error): a rule is shadowed by an earlier rule with the
      {e opposite} action — the later rule can never fire, and the two
      rules disagree about what should happen to its traffic.
    - [ACL002] (warning): a rule is fully redundant — subsumed by an
      earlier rule with the {e same} action.
    - [ACL003] (warning): the ACL ends in a terminal [permit ip any any],
      which turns the implicit default-deny into default-permit.
    - [ACL004] (error): a rule no single earlier rule subsumes is still
      dead — a {e union} of earlier rules covers it — and part of its
      traffic is decided with the opposite action (reported with a
      witness packet).  Exact, via {!Heimdall_sem.Acl_sem}.
    - [ACL005] (warning): same union-coverage, but every covering
      decision agrees with the dead rule — pure redundancy. *)

open Heimdall_net

val check : device:string -> Acl.t -> Diagnostic.t list
(** All ACL findings for one access list, canonically ordered.  The
    [device] is recorded as the diagnostic location; the object is the
    ACL name and the line is the rule's sequence number. *)
