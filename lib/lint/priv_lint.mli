(** Privilege-spec analyzers over {!Heimdall_privilege.Privilege}: the
    SafeTree-style pass that inspects the policy artifact itself rather
    than its runtime effect.

    Rule codes:
    - [PRV001]: a statement is unreachable — an earlier statement
      subsumes its entire action-pattern × resource set, so under
      first-match-wins it can never decide a request.  An {e error} when
      the two statements have opposite effects (a dead [deny] is a
      silent security hole); a {e warning} when they agree.
    - [PRV002] (warning): a statement grants on a resource that names no
      device (or no interface of a named device) in the target network —
      usually a typo that silently grants nothing.
    - [PRV003] (warning): an over-broad grant — [allow * on *] (or an
      action/resource pattern pair that covers the whole catalog on
      every device), defeating least privilege by construction.
    - [PRV004] (warning): a grant strictly exceeds the privilege a
      ticket's changes actually exercised — the semantic over-grant
      analysis ({!Heimdall_sem.Priv_sem}). *)

open Heimdall_control
open Heimdall_privilege

val pattern_subsumes : Privilege.pattern -> Privilege.pattern -> bool
(** [pattern_subsumes outer inner]: every string matched by [inner] is
    matched by [outer]. *)

val predicate_subsumes : Privilege.predicate -> Privilege.predicate -> bool
(** Every (action, resource) pair the second predicate matches is also
    matched by the first. *)

val check : ?network:Network.t -> Privilege.t -> Diagnostic.t list
(** All findings for one spec, canonically ordered.  Statement positions
    (1-based) are reported as the diagnostic line; [network] enables the
    PRV002 existence checks. *)

val check_usage :
  ?label:string ->
  network:Network.t ->
  spec:Privilege.t ->
  changes:Heimdall_config.Change.t list ->
  unit ->
  Diagnostic.t list
(** PRV004 findings: one per allow-predicate of [spec] whose mutating
    grants over [network] strictly exceed what [changes] exercised.
    [label] is recorded as the device field (e.g. the ticket name). *)
