open Heimdall_net
open Heimdall_config
open Heimdall_control

(* ---------------- per-device checks ---------------- *)

(* CFG003 / CFG004: ACL references vs definitions. *)
let acl_bindings (cfg : Ast.t) =
  List.concat_map
    (fun (i : Ast.interface) ->
      (match i.acl_in with Some a -> [ (i, `In, a) ] | None -> [])
      @ match i.acl_out with Some a -> [ (i, `Out, a) ] | None -> [])
    cfg.interfaces

let undefined_acl_refs ~device (cfg : Ast.t) =
  List.filter_map
    (fun ((i : Ast.interface), dir, name) ->
      if Ast.find_acl name cfg <> None then None
      else
        Some
          (Diagnostic.v ~device ~obj:i.if_name ~code:"CFG003" Diagnostic.Error
             (Printf.sprintf "interface %s references undefined access-list %s (%s)"
                i.if_name name
                (match dir with `In -> "in" | `Out -> "out"))))
    (acl_bindings cfg)

let unbound_acls ~device (cfg : Ast.t) =
  let bound = List.map (fun (_, _, a) -> a) (acl_bindings cfg) in
  List.filter_map
    (fun (a : Acl.t) ->
      if List.mem a.name bound then None
      else
        Some
          (Diagnostic.v ~device ~obj:a.name ~code:"CFG004" Diagnostic.Warning
             (Printf.sprintf "access-list %s is defined but bound to no interface" a.name)))
    cfg.acls

(* CFG005: switchports on undeclared VLANs. *)
let undeclared_vlans ~device (cfg : Ast.t) =
  let declared v = List.mem_assoc v cfg.vlans in
  List.concat_map
    (fun (i : Ast.interface) ->
      let bad mode v =
        if declared v then []
        else
          [
            Diagnostic.v ~device ~obj:i.if_name ~code:"CFG005" Diagnostic.Error
              (Printf.sprintf "interface %s is %s port on undeclared vlan %d" i.if_name
                 mode v);
          ]
      in
      match i.switchport with
      | Some (Ast.Access v) -> bad "an access" v
      | Some (Ast.Trunk vs) -> List.concat_map (bad "a trunk") vs
      | None -> [])
    cfg.interfaces

(* CFG006: static-route next hops (and host default gateways) must land
   on an enabled connected subnet of the device, or they blackhole. *)
let connected_subnets (cfg : Ast.t) =
  List.filter_map
    (fun (i : Ast.interface) ->
      match i.addr with Some a when i.enabled -> Some (Ifaddr.subnet a) | _ -> None)
    cfg.interfaces

let off_subnet_next_hops ~device (cfg : Ast.t) =
  let subnets = connected_subnets cfg in
  let reachable nh = List.exists (fun s -> Prefix.contains s nh) subnets in
  let routes =
    List.filter_map
      (fun (r : Ast.static_route) ->
        if reachable r.sr_next_hop then None
        else
          Some
            (Diagnostic.v ~device
               ~obj:(Prefix.to_string r.sr_prefix)
               ~code:"CFG006" Diagnostic.Error
               (Printf.sprintf
                  "static route %s via %s: next hop is on no enabled connected subnet"
                  (Prefix.to_string r.sr_prefix)
                  (Ipv4.to_string r.sr_next_hop))))
      cfg.static_routes
  in
  let gateway =
    match cfg.default_gateway with
    | Some gw when not (reachable gw) ->
        [
          Diagnostic.v ~device ~obj:"default-gateway" ~code:"CFG006" Diagnostic.Error
            (Printf.sprintf "default gateway %s is on no enabled connected subnet"
               (Ipv4.to_string gw));
        ]
    | _ -> []
  in
  routes @ gateway

(* CFG008: ACLs bound to shutdown interfaces filter nothing. *)
let acl_on_shutdown ~device (cfg : Ast.t) =
  List.filter_map
    (fun ((i : Ast.interface), dir, name) ->
      if i.enabled then None
      else
        Some
          (Diagnostic.v ~device ~obj:i.if_name ~code:"CFG008" Diagnostic.Warning
             (Printf.sprintf
                "access-list %s is bound (%s) to shutdown interface %s and filters \
                 nothing"
                name
                (match dir with `In -> "in" | `Out -> "out")
                i.if_name)))
    (acl_bindings cfg)

let check_device net device =
  match Network.config device net with
  | None -> []
  | Some cfg ->
      let own = [ undefined_acl_refs; unbound_acls; undeclared_vlans;
                  off_subnet_next_hops; acl_on_shutdown ]
      in
      let acls = List.concat_map (Acl_lint.check ~device) cfg.acls in
      List.sort Diagnostic.compare
        (List.concat_map (fun check -> check ~device cfg) own @ acls)

(* ---------------- cross-device checks ---------------- *)

(* CFG002: both endpoints of a cable must share a subnet. *)
let link_subnet_mismatch net (l : Topology.link) =
  let addr_of (e : Topology.endpoint) =
    Option.bind (Network.config e.node net) (fun c -> Ast.interface_addr c e.iface)
  in
  match (addr_of l.a, addr_of l.b) with
  | Some a, Some b when not (Ifaddr.same_subnet a b) ->
      [
        Diagnostic.v ~device:l.a.node ~obj:l.a.iface ~code:"CFG002" Diagnostic.Error
          (Printf.sprintf "link %s <-> %s joins different subnets (%s vs %s)"
             (Topology.endpoint_to_string l.a)
             (Topology.endpoint_to_string l.b)
             (Ifaddr.to_string a) (Ifaddr.to_string b));
      ]
  | _ -> []

(* CFG007: effective OSPF area of an endpoint, mirroring
   Ospf.enabled_interfaces — a network statement must cover the address,
   and an explicit per-interface area overrides the statement's. *)
let effective_area net (e : Topology.endpoint) =
  match Network.config e.node net with
  | None -> None
  | Some cfg -> (
      match cfg.ospf with
      | None -> None
      | Some o -> (
          match Ast.find_interface e.iface cfg with
          | Some i when i.enabled -> (
              match i.addr with
              | None -> None
              | Some addr -> (
                  match
                    List.find_opt
                      (fun (p, _) -> Prefix.contains p (Ifaddr.address addr))
                      o.networks
                  with
                  | None -> None
                  | Some (_, stmt_area) -> Some (Option.value i.ospf_area ~default:stmt_area)))
          | _ -> None))

let ospf_area_mismatch net (l : Topology.link) =
  match (effective_area net l.a, effective_area net l.b) with
  | Some a, Some b when a <> b ->
      [
        Diagnostic.v ~device:l.a.node ~obj:l.a.iface ~code:"CFG007" Diagnostic.Error
          (Printf.sprintf "OSPF area mismatch across %s <-> %s (area %d vs area %d)"
             (Topology.endpoint_to_string l.a)
             (Topology.endpoint_to_string l.b)
             a b);
      ]
  | _ -> []

let check_links net =
  let links = Topology.links (Network.topology net) in
  List.sort Diagnostic.compare
    (List.concat_map
       (fun l -> link_subnet_mismatch net l @ ospf_area_mismatch net l)
       links)

(* CFG001: one address, one enabled owner. *)
let duplicate_addresses net =
  let owners = Hashtbl.create 64 in
  List.iter
    (fun (node, (cfg : Ast.t)) ->
      List.iter
        (fun (i : Ast.interface) ->
          match i.addr with
          | Some a when i.enabled ->
              let key = Ipv4.to_string (Ifaddr.address a) in
              Hashtbl.replace owners key
                ((node, i.if_name) :: Option.value (Hashtbl.find_opt owners key) ~default:[])
          | _ -> ())
        cfg.interfaces)
    (Network.configs net);
  Hashtbl.fold
    (fun addr who acc ->
      match who with
      | [] | [ _ ] -> acc
      | _ ->
          let who = List.sort compare who in
          let first = fst (List.hd who) in
          Diagnostic.v ~device:first ~obj:addr ~code:"CFG001" Diagnostic.Error
            (Printf.sprintf "address %s is configured on %d interfaces: %s" addr
               (List.length who)
               (String.concat ", "
                  (List.map (fun (n, i) -> Printf.sprintf "%s/%s" n i) who)))
          :: acc)
    owners []
  |> List.sort Diagnostic.compare

(* SEC001: nothing secret may cross the twin boundary. *)
let twin_exposure net =
  List.filter_map
    (fun (node, (cfg : Ast.t)) ->
      let exposed =
        List.filter (fun s -> Ast.secret_value s <> Redact.placeholder) cfg.secrets
      in
      if exposed = [] then None
      else
        Some
          (Diagnostic.v ~device:node ~code:"SEC001" Diagnostic.Error
             (Printf.sprintf "twin-exposed config carries %d unscrubbed secret(s): %s"
                (List.length exposed)
                (String.concat ", "
                   (List.sort_uniq String.compare (List.map Ast.secret_kind exposed))))))
    (Network.configs net)
  |> List.sort Diagnostic.compare
