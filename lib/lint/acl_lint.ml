open Heimdall_net
open Heimdall_sem

(* Dead-rule reporting drives off the exact packet-set analysis
   (Acl_sem.dead_rules), so this walk and Acl.shadowed_rules can never
   disagree.  The pairwise cases keep their historical codes and
   messages (ACL001/ACL002, attributed to the nearest subsuming rule);
   rules only a *union* of earlier rules covers — invisible to pairwise
   subsumption — get the semantic codes ACL004/ACL005. *)
let shadowing ~device (acl : Acl.t) =
  List.map
    (fun (d : Acl_sem.dead) ->
      let r = d.rule in
      match d.subsumer with
      | Some (e : Acl.rule) when e.action <> r.action ->
          Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL001"
            Diagnostic.Error
            (Printf.sprintf
               "rule %d (%s) is shadowed by rule %d (%s) with the opposite action"
               r.seq (Acl.rule_to_string r) e.seq (Acl.rule_to_string e))
      | Some e ->
          Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL002"
            Diagnostic.Warning
            (Printf.sprintf "rule %d (%s) is redundant: rule %d already %ss it"
               r.seq (Acl.rule_to_string r) e.seq
               (Acl.action_to_string e.action))
      | None ->
          let coverers =
            String.concat ", " (List.map string_of_int d.coverers)
          in
          if d.conflict then
            Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL004"
              Diagnostic.Error
              (Printf.sprintf
                 "rule %d (%s) can never fire: rules %s jointly cover it and decide \
                  part of its traffic with the opposite action%s"
                 r.seq (Acl.rule_to_string r) coverers
                 (match d.witness with
                 | Some f -> Printf.sprintf " (witness: %s)" (Flow.to_string f)
                 | None -> ""))
          else
            Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL005"
              Diagnostic.Warning
              (Printf.sprintf
                 "rule %d (%s) is redundant: rules %s jointly cover all its traffic"
                 r.seq (Acl.rule_to_string r) coverers))
    (Acl_sem.dead_rules acl)

let is_match_all (r : Acl.rule) =
  r.proto = Acl.Any_proto
  && Prefix.equal r.src Prefix.any
  && Prefix.equal r.dst Prefix.any
  && r.src_port = Acl.Any_port
  && r.dst_port = Acl.Any_port

let terminal_permit_any ~device (acl : Acl.t) =
  match List.rev acl.rules with
  | (r : Acl.rule) :: _ when r.action = Acl.Permit && is_match_all r ->
      [
        Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL003" Diagnostic.Warning
          (Printf.sprintf
             "terminal rule %d is 'permit ip any any': the list default-permits instead \
              of default-denying"
             r.seq);
      ]
  | _ -> []

let check ~device acl =
  List.sort Diagnostic.compare (shadowing ~device acl @ terminal_permit_any ~device acl)
