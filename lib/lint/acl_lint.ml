open Heimdall_net

(* First-match-wins shadowing, refined by action: an earlier subsuming
   rule with the opposite action is an intent conflict (the later rule
   reads like an exception that never applies); with the same action the
   later rule is merely dead weight. *)
let shadowing ~device (acl : Acl.t) =
  let rec go earlier = function
    | [] -> []
    | (r : Acl.rule) :: rest ->
        let found =
          match List.find_opt (fun (e : Acl.rule) -> Acl.rule_subsumes e r) earlier with
          | None -> []
          | Some e when e.action <> r.action ->
              [
                Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL001"
                  Diagnostic.Error
                  (Printf.sprintf
                     "rule %d (%s) is shadowed by rule %d (%s) with the opposite action"
                     r.seq (Acl.rule_to_string r) e.seq (Acl.rule_to_string e));
              ]
          | Some e ->
              [
                Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL002"
                  Diagnostic.Warning
                  (Printf.sprintf "rule %d (%s) is redundant: rule %d already %ss it"
                     r.seq (Acl.rule_to_string r) e.seq
                     (Acl.action_to_string e.action));
              ]
        in
        found @ go (r :: earlier) rest
  in
  go [] acl.rules

let is_match_all (r : Acl.rule) =
  r.proto = Acl.Any_proto
  && Prefix.equal r.src Prefix.any
  && Prefix.equal r.dst Prefix.any
  && r.src_port = Acl.Any_port
  && r.dst_port = Acl.Any_port

let terminal_permit_any ~device (acl : Acl.t) =
  match List.rev acl.rules with
  | (r : Acl.rule) :: _ when r.action = Acl.Permit && is_match_all r ->
      [
        Diagnostic.v ~device ~obj:acl.name ~line:r.seq ~code:"ACL003" Diagnostic.Warning
          (Printf.sprintf
             "terminal rule %d is 'permit ip any any': the list default-permits instead \
              of default-denying"
             r.seq);
      ]
  | _ -> []

let check ~device acl =
  List.sort Diagnostic.compare (shadowing ~device acl @ terminal_permit_any ~device acl)
