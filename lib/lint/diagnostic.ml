type severity = Error | Warning | Info

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type t = {
  code : string;
  severity : severity;
  device : string option;
  obj : string option;
  line : int option;
  message : string;
}

let v ?device ?obj ?line ~code severity message =
  { code; severity; device; obj; line; message }

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare a b =
  match compare_opt String.compare a.device b.device with
  | 0 -> (
      match String.compare a.code b.code with
      | 0 -> (
          match compare_opt String.compare a.obj b.obj with
          | 0 -> (
              match compare_opt Int.compare a.line b.line with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let location_to_string t =
  match (t.device, t.obj, t.line) with
  | None, None, None -> ""
  | Some d, None, None -> d ^ ": "
  | Some d, Some o, None -> Printf.sprintf "%s/%s: " d o
  | Some d, Some o, Some l -> Printf.sprintf "%s/%s:%d: " d o l
  | Some d, None, Some l -> Printf.sprintf "%s:%d: " d l
  | None, Some o, Some l -> Printf.sprintf "%s:%d: " o l
  | None, Some o, None -> o ^ ": "
  | None, None, Some l -> Printf.sprintf "line %d: " l

let to_string t =
  Printf.sprintf "%-7s %s %s%s"
    (severity_to_string t.severity)
    t.code (location_to_string t) t.message

open Heimdall_json

let to_json t =
  let opt name f v = Option.to_list (Option.map (fun x -> (name, f x)) v) in
  Json.Obj
    ([
       ("code", Json.String t.code);
       ("severity", Json.String (severity_to_string t.severity));
     ]
    @ opt "device" (fun d -> Json.String d) t.device
    @ opt "object" (fun o -> Json.String o) t.obj
    @ opt "line" (fun l -> Json.Int l) t.line
    @ [ ("message", Json.String t.message) ])

let of_json j =
  let ( let* ) = Option.bind in
  let* code = Option.bind (Json.member "code" j) Json.to_string_opt in
  let* sev = Option.bind (Json.member "severity" j) Json.to_string_opt in
  let* severity = severity_of_string sev in
  let* message = Option.bind (Json.member "message" j) Json.to_string_opt in
  let device = Option.bind (Json.member "device" j) Json.to_string_opt in
  let obj = Option.bind (Json.member "object" j) Json.to_string_opt in
  let line = Option.bind (Json.member "line" j) Json.to_int_opt in
  Some { code; severity; device; obj; line; message }
