open Heimdall_privilege
open Heimdall_sem

(* PLAN-family lint: pre-flight analysis of a ticket's fix script,
   before anything touches a twin or production.  Everything here is
   derived from Plan_sem's static effect signatures. *)

type ticket = {
  label : string;
  spec : Privilege.t;
  scope : string list;
  commands : string list;
}

let v ?obj ?line ~label code severity message =
  Diagnostic.v ~device:label ?obj ?line ~code severity message

let check ?network ?(policies = []) (t : ticket) =
  let label = t.label in
  let script = Plan_sem.script_of_commands t.commands in
  let analysis = Plan_sem.analyze ?network script.script_changes in
  let requirements = Plan_sem.plan_requirements ?network script in
  let proof = Plan_sem.prove ~spec:t.spec requirements in
  let insufficient =
    List.map
      (fun (r : Plan_sem.requirement) ->
        v ~label ~obj:r.req_node "PLAN001" Diagnostic.Error
          (Printf.sprintf
             "plan requires %s, which the granted privilege denies (%s would fail mid-apply)"
             (Plan_sem.requirement_to_string r) r.source))
      proof.missing
  in
  let dead =
    List.map
      (fun (i, c) ->
        v ~label ~obj:c.Heimdall_config.Change.node ~line:(i + 1) "PLAN002"
          Diagnostic.Warning
          (Printf.sprintf "dead op (removing it leaves the plan's outcome unchanged): %s"
             (Heimdall_config.Change.to_string c)))
      analysis.dead
  in
  let contradicting =
    List.map
      (fun (slot, racing) ->
        v ~label ~obj:slot "PLAN003" Diagnostic.Warning
          (Printf.sprintf
             "self-contradicting plan: %d ops race for the same slot, the last silently wins: %s"
             (List.length racing)
             (String.concat "; "
                (List.map Heimdall_config.Change.to_string racing))))
      analysis.contradictions
  in
  let out_of_scope =
    match t.scope with
    | [] -> []
    | scope ->
        analysis.footprint
        |> List.filter (fun (node, _) -> not (List.mem node scope))
        |> List.map (fun (node, section) ->
               v ~label ~obj:node "PLAN004" Diagnostic.Warning
                 (Printf.sprintf
                    "write footprint outside the ticket scope: %s/%s"
                    node
                    (Plan_sem.section_to_string section)))
  in
  let policy_relevant =
    if Heimdall_net.Packet_set.is_empty analysis.delta then []
    else
      policies
      |> List.filter (fun (p : Heimdall_verify.Policy.t) ->
             Heimdall_net.Packet_set.mem analysis.delta p.flow)
      |> List.map (fun (p : Heimdall_verify.Policy.t) ->
             v ~label ~obj:p.id "PLAN005" Diagnostic.Info
               (Printf.sprintf
                  "predicted delta covers the flow of policy %s (%s -> %s); post-apply verification is not optional"
                  p.id p.src_label p.dst_label))
  in
  List.sort Diagnostic.compare
    (insufficient @ dead @ contradicting @ out_of_scope @ policy_relevant)
