open Heimdall_config
open Heimdall_control
open Heimdall_privilege

(* Glob-language inclusion for the DSL's three pattern shapes: "*",
   prefix-glob "stem*", and exact strings. *)
let pattern_subsumes (outer : Privilege.pattern) (inner : Privilege.pattern) =
  let glob_stem p =
    let n = String.length p in
    if n > 0 && p.[n - 1] = '*' then Some (String.sub p 0 (n - 1)) else None
  in
  if outer = "*" then true
  else
    match (glob_stem outer, glob_stem inner) with
    | Some o, Some i ->
        String.length i >= String.length o && String.sub i 0 (String.length o) = o
    | Some _, None -> Privilege.pattern_matches outer inner
    | None, Some _ -> false
    | None, None -> outer = inner

let resource_subsumes (outer : Privilege.resource) (inner : Privilege.resource) =
  pattern_subsumes outer.node inner.node
  &&
  match outer.iface with
  | None -> true
  | Some oi -> (
      match inner.iface with None -> false | Some ii -> pattern_subsumes oi ii)

let predicate_subsumes (outer : Privilege.predicate) (inner : Privilege.predicate) =
  List.for_all
    (fun pi -> List.exists (fun po -> pattern_subsumes po pi) outer.actions)
    inner.actions
  && List.for_all
       (fun ri -> List.exists (fun ro -> resource_subsumes ro ri) outer.resources)
       inner.resources

(* PRV001: first-match-wins makes a subsumed later statement dead. *)
let unreachable_statements (t : Privilege.t) =
  let indexed = List.mapi (fun i p -> (i + 1, p)) t.predicates in
  List.concat_map
    (fun (i, (p : Privilege.predicate)) ->
      match
        List.find_opt
          (fun (j, earlier) -> j < i && predicate_subsumes earlier p)
          indexed
      with
      | None -> []
      | Some (j, earlier) ->
          let severity, gloss =
            if earlier.Privilege.effect <> p.effect then
              (Diagnostic.Error, " with the opposite effect — the intent is never enforced")
            else (Diagnostic.Warning, "")
          in
          [
            Diagnostic.v ~obj:"privilege" ~line:i ~code:"PRV001" severity
              (Printf.sprintf
                 "statement %d (%s) is unreachable: statement %d (%s) decides first%s" i
                 (Privilege.predicate_to_string p)
                 j
                 (Privilege.predicate_to_string earlier)
                 gloss);
          ])
    indexed

(* PRV002: a resource pattern should name something real. *)
let unknown_resources net (t : Privilege.t) =
  let nodes = Network.node_names net in
  let ifaces_of n =
    match Network.config n net with
    | None -> []
    | Some (cfg : Ast.t) -> List.map (fun (i : Ast.interface) -> i.if_name) cfg.interfaces
  in
  List.concat_map
    (fun (i, (p : Privilege.predicate)) ->
      List.filter_map
        (fun (r : Privilege.resource) ->
          let matched = List.filter (Privilege.pattern_matches r.node) nodes in
          if matched = [] then
            Some
              (Diagnostic.v ~obj:"privilege" ~line:i ~code:"PRV002" Diagnostic.Warning
                 (Printf.sprintf
                    "statement %d grants on %s, but no device matches %S in the network" i
                    (Privilege.resource_to_string r)
                    r.node))
          else
            match r.iface with
            | None -> None
            | Some ipat ->
                if
                  List.exists
                    (fun n -> List.exists (Privilege.pattern_matches ipat) (ifaces_of n))
                    matched
                then None
                else
                  Some
                    (Diagnostic.v ~obj:"privilege" ~line:i ~code:"PRV002"
                       Diagnostic.Warning
                       (Printf.sprintf
                          "statement %d grants on %s, but no matching device has an \
                           interface matching %S"
                          i
                          (Privilege.resource_to_string r)
                          ipat)))
        p.resources)
    (List.mapi (fun i p -> (i + 1, p)) t.predicates)

(* PRV003: an allow that covers the whole action catalog on every device
   is the opposite of least privilege. *)
let over_broad (t : Privilege.t) =
  List.concat_map
    (fun (i, (p : Privilege.predicate)) ->
      let covers_catalog =
        List.for_all
          (fun act -> List.exists (fun pat -> Privilege.pattern_matches pat act) p.actions)
          Action.catalog
      in
      let every_device =
        List.exists
          (fun (r : Privilege.resource) -> pattern_subsumes r.node "*" && r.iface = None)
          p.resources
      in
      if p.effect = Privilege.Allow && covers_catalog && every_device then
        [
          Diagnostic.v ~obj:"privilege" ~line:i ~code:"PRV003" Diagnostic.Warning
            (Printf.sprintf
               "statement %d (%s) allows every catalog action on every device — not a \
                least-privilege grant"
               i
               (Privilege.predicate_to_string p));
        ]
      else [])
    (List.mapi (fun i p -> (i + 1, p)) t.predicates)

let check ?network t =
  let net_findings =
    match network with None -> [] | Some net -> unknown_resources net t
  in
  List.sort Diagnostic.compare (unreachable_statements t @ net_findings @ over_broad t)

(* PRV004: the grant is broader than what the ticket's changes actually
   exercised — the semantic over-grant analysis (Priv_sem) rendered as
   lint findings. *)
let check_usage ?label ~network ~spec ~changes () =
  List.map
    (fun (o : Heimdall_sem.Priv_sem.over_grant) ->
      Diagnostic.v ?device:label ~obj:"privilege" ~line:(o.index + 1) ~code:"PRV004"
        Diagnostic.Warning
        (Printf.sprintf "over-grant: %s" (Heimdall_sem.Priv_sem.over_grant_to_string o)))
    (Heimdall_sem.Priv_sem.over_grants ~network ~spec ~changes)
  |> List.sort Diagnostic.compare
