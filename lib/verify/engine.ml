open Heimdall_net
open Heimdall_control

(* Per-dataplane flow cache, matched by physical identity: dataplanes
   come out of the digest cache, so equal networks share one value. *)
type flow_cache = { dp : Dataplane.t; flows : (Flow.t, Trace.result) Hashtbl.t }

type t = {
  pool : int;
  obs : Heimdall_obs.Obs.t option;
  lock : Mutex.t;
  dp_cache : (string, Dataplane.t) Hashtbl.t;  (* digest -> dataplane *)
  mutable flow_caches : flow_cache list;  (* most recently used first *)
  traces_run : int Atomic.t;
  trace_hits : int Atomic.t;
  dp_built : int Atomic.t;
  dp_hits : int Atomic.t;
  spawn_fallbacks : int Atomic.t;
  mutable domains_used : int;
  mutable phases : (string * float) list;  (* reverse first-use order *)
}

(* Keep the healthy dataplane's cache alive through a long sweep of
   one-shot broken dataplanes. *)
let max_flow_caches = 32

let default_domains () = min 8 (max 1 (Domain.recommended_domain_count ()))

let create ?domains ?obs () =
  let pool = max 1 (Option.value domains ~default:(default_domains ())) in
  {
    pool;
    obs;
    lock = Mutex.create ();
    dp_cache = Hashtbl.create 64;
    flow_caches = [];
    traces_run = Atomic.make 0;
    trace_hits = Atomic.make 0;
    dp_built = Atomic.make 0;
    dp_hits = Atomic.make 0;
    spawn_fallbacks = Atomic.make 0;
    domains_used = 1;
    phases = [];
  }

let domains t = t.pool
let obs t = t.obs
let locked t f = Mutex.lock t.lock; Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Memoized dataplanes                                                 *)
(* ------------------------------------------------------------------ *)

(* Networks are closure-free structural data (topology + config maps),
   so a marshalled-bytes digest is a sound structural key. *)
let digest net = Digest.string (Marshal.to_string (net : Network.t) [])

let dataplane t net =
  let key = digest net in
  match locked t (fun () -> Hashtbl.find_opt t.dp_cache key) with
  | Some dp ->
      Atomic.incr t.dp_hits;
      Heimdall_obs.Obs.incr t.obs "engine.dataplane.cache_hit";
      dp
  | None ->
      let dp, dt = Heimdall_obs.Clock.elapsed (fun () -> Dataplane.compute net) in
      Atomic.incr t.dp_built;
      Heimdall_obs.Obs.incr t.obs "engine.dataplane.built";
      Heimdall_obs.Obs.observe t.obs "engine.dataplane.build_s" dt;
      locked t (fun () ->
          (* Another domain may have raced us; keep the first value so
             every caller shares one physical dataplane. *)
          match Hashtbl.find_opt t.dp_cache key with
          | Some existing -> existing
          | None ->
              Hashtbl.replace t.dp_cache key dp;
              dp)

let dataplane_of_changes t ~production changes =
  match Network.apply_changes changes production with
  | Error _ as e -> e
  | Ok net -> Ok (dataplane t net)

(* ------------------------------------------------------------------ *)
(* Memoized traces                                                     *)
(* ------------------------------------------------------------------ *)

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* Must be called under the lock. *)
let flows_for t dp =
  match List.find_opt (fun c -> c.dp == dp) t.flow_caches with
  | Some c ->
      t.flow_caches <- c :: List.filter (fun c' -> c' != c) t.flow_caches;
      c.flows
  | None ->
      let c = { dp; flows = Hashtbl.create 256 } in
      t.flow_caches <- c :: take (max_flow_caches - 1) t.flow_caches;
      c.flows

let trace t dp flow =
  match locked t (fun () -> Hashtbl.find_opt (flows_for t dp) flow) with
  | Some r ->
      Atomic.incr t.trace_hits;
      Heimdall_obs.Obs.incr t.obs "engine.trace.cache_hit";
      r
  | None ->
      let r = Trace.trace dp flow in
      Atomic.incr t.traces_run;
      Heimdall_obs.Obs.incr t.obs "engine.trace.run";
      locked t (fun () ->
          let flows = flows_for t dp in
          if not (Hashtbl.mem flows flow) then Hashtbl.replace flows flow r);
      r

(* ------------------------------------------------------------------ *)
(* Parallel map                                                        *)
(* ------------------------------------------------------------------ *)

let fail_spawn_for_tests = ref false

(* [Domain.spawn] can fail on a loaded host (thread/domain limits).  The
   work queue below is shared, so the caller's own worker drains every
   item regardless of how many helpers actually started — a failed spawn
   degrades throughput, never correctness. *)
let spawn_worker t worker =
  match
    if !fail_spawn_for_tests then failwith "injected spawn failure"
    else Domain.spawn worker
  with
  | d -> Some d
  | exception _ ->
      Atomic.incr t.spawn_fallbacks;
      Heimdall_obs.Obs.incr t.obs "engine.map.spawn_fallback";
      Heimdall_obs.Obs.set_gauge t.obs "engine.spawn_fallbacks"
        (float_of_int (Atomic.get t.spawn_fallbacks));
      None

let map t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let pool = min t.pool n in
  if pool <= 1 then List.map f xs
  else begin
    locked t (fun () -> t.domains_used <- max t.domains_used pool);
    Heimdall_obs.Obs.set_gauge t.obs "engine.domains_used" (float_of_int pool);
    Heimdall_obs.Obs.incr t.obs ~by:n "engine.map.items";
    let out = Array.make n None in
    let next = Atomic.make 0 in
    (* Chunks keep queue contention low while still load-balancing
       uneven work items. *)
    let chunk = max 1 (n / (pool * 4)) in
    let worker () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          for i = start to min n (start + chunk) - 1 do
            out.(i) <- Some (f arr.(i))
          done
      done
    in
    let others = Array.init (pool - 1) (fun _ -> spawn_worker t worker) in
    (* Join the pool even if our own share raises, then let [join]
       re-raise any worker failure. *)
    Fun.protect
      ~finally:(fun () ->
        Array.iter (function Some d -> Domain.join d | None -> ()) others)
      worker;
    Array.to_list (Array.map Option.get out)
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let phase t name f =
  Heimdall_obs.Obs.span t.obs ~attrs:[ ("component", "engine") ] ("phase:" ^ name)
    (fun () ->
      let v, dt = Heimdall_obs.Clock.elapsed f in
      locked t (fun () ->
          t.phases <-
            (if List.mem_assoc name t.phases then
               List.map (fun (n, s) -> if n = name then (n, s +. dt) else (n, s)) t.phases
             else (name, dt) :: t.phases));
      Heimdall_obs.Obs.observe t.obs ("engine.phase_s." ^ name) dt;
      v)

type stats = {
  traces_run : int;
  trace_cache_hits : int;
  dataplanes_built : int;
  dataplane_cache_hits : int;
  domains_used : int;
  spawn_fallbacks : int;
  phase_seconds : (string * float) list;
}

let stats t =
  locked t (fun () ->
      {
        traces_run = Atomic.get t.traces_run;
        trace_cache_hits = Atomic.get t.trace_hits;
        dataplanes_built = Atomic.get t.dp_built;
        dataplane_cache_hits = Atomic.get t.dp_hits;
        domains_used = t.domains_used;
        spawn_fallbacks = Atomic.get t.spawn_fallbacks;
        phase_seconds = List.rev t.phases;
      })

let reset_stats t =
  locked t (fun () ->
      Atomic.set t.traces_run 0;
      Atomic.set t.trace_hits 0;
      Atomic.set t.dp_built 0;
      Atomic.set t.dp_hits 0;
      Atomic.set t.spawn_fallbacks 0;
      t.domains_used <- 1;
      t.phases <- [])

let trace_hit_rate s =
  let total = s.trace_cache_hits + s.traces_run in
  if total = 0 then 0.0 else float_of_int s.trace_cache_hits /. float_of_int total

let stats_to_json s =
  let open Heimdall_json in
  Json.Obj
    [
      ("traces_run", Json.Int s.traces_run);
      ("trace_cache_hits", Json.Int s.trace_cache_hits);
      ("dataplanes_built", Json.Int s.dataplanes_built);
      ("dataplane_cache_hits", Json.Int s.dataplane_cache_hits);
      ("trace_hit_rate", Json.Float (trace_hit_rate s));
      ("domains_used", Json.Int s.domains_used);
      ("spawn_fallbacks", Json.Int s.spawn_fallbacks);
      ( "phase_seconds",
        Json.Obj (List.map (fun (n, secs) -> (n, Json.Float secs)) s.phase_seconds) );
    ]

let render_stats s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "engine: %d domains | dataplanes built %d (cache hits %d) | traces run %d (cache hits %d, %.1f%% hit rate)\n"
       s.domains_used s.dataplanes_built s.dataplane_cache_hits s.traces_run
       s.trace_cache_hits
       (100.0 *. trace_hit_rate s));
  if s.spawn_fallbacks > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  spawn fallbacks: %d (ran degraded on fewer domains)\n"
         s.spawn_fallbacks);
  List.iter
    (fun (name, secs) ->
      Buffer.add_string buf (Printf.sprintf "  phase %-24s %8.3f s\n" name secs))
    s.phase_seconds;
  Buffer.contents buf
