open Heimdall_net
open Heimdall_control

(* ------------------------------------------------------------------ *)
(* Persistent domain pool                                              *)
(* ------------------------------------------------------------------ *)

(* Helper domains are spawned once (lazily, on the first parallel [map])
   and then reused for the engine's whole lifetime: each [map] posts one
   job — a closure that drains a shared chunk queue — bumps a generation
   counter and wakes the helpers.  The caller's own domain always drains
   the same queue, so a helper that is slow to wake (or was never
   successfully spawned) degrades throughput, never correctness. *)
type pool = {
  target : int;  (* helper domains wanted = domains - 1 *)
  pm : Mutex.t;
  work : Condition.t;  (* a job was posted, or the pool is stopping *)
  idle : Condition.t;  (* some job's queue was fully drained *)
  mutable gen : int;
  mutable job : (unit -> unit) option;
  mutable stopping : bool;
  mutable helpers : unit Domain.t list;
}

let make_pool target =
  {
    target;
    pm = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    gen = 0;
    job = None;
    stopping = false;
    helpers = [];
  }

let rec pool_worker pool seen =
  Mutex.lock pool.pm;
  while pool.gen = seen && not pool.stopping do
    Condition.wait pool.work pool.pm
  done;
  if pool.stopping then Mutex.unlock pool.pm
  else begin
    let seen = pool.gen in
    let job = pool.job in
    Mutex.unlock pool.pm;
    (* Jobs never raise: [map] wraps user exceptions into its error slot.
       A stale job (already drained) is a no-op claim. *)
    (match job with Some run -> run () | None -> ());
    pool_worker pool seen
  end

(* ------------------------------------------------------------------ *)
(* Sharded, single-flight trace caches                                 *)
(* ------------------------------------------------------------------ *)

let shard_count = 8 (* power of two; indexed by flow hash *)

type trace_entry =
  | Computed of Trace.result
  | In_flight  (* some domain is tracing this flow right now *)

type shard = {
  sm : Mutex.t;
  sc : Condition.t;  (* an [In_flight] entry resolved (or was abandoned) *)
  tbl : (Flow.t, trace_entry) Hashtbl.t;
}

(* Per-dataplane flow cache, matched by physical identity: dataplanes
   come out of the digest cache, so equal networks share one value. *)
type flow_cache = { dp : Dataplane.t; shards : shard array }

type t = {
  domains : int;
  obs : Heimdall_obs.Obs.t option;
  cache_dir : string option;
  pool : pool option;  (* [Some] iff [domains > 1] *)
  lock : Mutex.t;  (* guards dp_cache, flow_caches, phases, domains_used *)
  dp_cache : (string, Dataplane.t) Hashtbl.t;  (* network digest -> dataplane *)
  mutable flow_caches : flow_cache list;  (* most recently used first *)
  traces_run : int Atomic.t;
  trace_hits : int Atomic.t;
  trace_coalesced : int Atomic.t;
  dp_built : int Atomic.t;
  dp_incremental : int Atomic.t;
  dp_hits : int Atomic.t;
  dp_persistent_hits : int Atomic.t;
  spawn_fallbacks : int Atomic.t;
  mutable domains_used : int;
  mutable phases : (string * float) list;  (* reverse first-use order *)
}

(* Sized so a full failure sweep (healthy dataplane + one per failure
   candidate; ~104 on the university network) keeps every flow cache
   alive: a repeated sweep then answers from cache instead of re-tracing
   everything.  A flow cache is small (the distinct flows actually
   traced), so this is cheap insurance. *)
let max_flow_caches = 256

let default_domains () = min 8 (max 1 (Domain.recommended_domain_count ()))

let shutdown t =
  match t.pool with
  | None -> ()
  | Some pool ->
      let helpers =
        Mutex.lock pool.pm;
        pool.stopping <- true;
        Condition.broadcast pool.work;
        let hs = pool.helpers in
        pool.helpers <- [];
        Mutex.unlock pool.pm;
        hs
      in
      List.iter Domain.join helpers

(* Signal-only variant for the GC backstop: helpers exit on their own,
   freeing their domain slots, without the finalizer blocking on joins. *)
let signal_shutdown pool =
  Mutex.lock pool.pm;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.pm

let create ?domains ?obs ?cache_dir () =
  let domains = max 1 (Option.value domains ~default:(default_domains ())) in
  let t =
    {
      domains;
      obs;
      cache_dir;
      pool = (if domains > 1 then Some (make_pool (domains - 1)) else None);
      lock = Mutex.create ();
      dp_cache = Hashtbl.create 64;
      flow_caches = [];
      traces_run = Atomic.make 0;
      trace_hits = Atomic.make 0;
      trace_coalesced = Atomic.make 0;
      dp_built = Atomic.make 0;
      dp_incremental = Atomic.make 0;
      dp_hits = Atomic.make 0;
      dp_persistent_hits = Atomic.make 0;
      spawn_fallbacks = Atomic.make 0;
      domains_used = 1;
      phases = [];
    }
  in
  (* An engine dropped without [shutdown] must not pin its helper domains
     forever: long-lived processes (the test runner, a future daemon)
     would hit the runtime's domain limit. *)
  Option.iter (fun pool -> Gc.finalise (fun _ -> signal_shutdown pool) t) t.pool;
  t

let domains t = t.domains
let obs t = t.obs

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Memoized dataplanes: in-memory by network digest, optionally backed  *)
(* by an on-disk cache that survives across runs                        *)
(* ------------------------------------------------------------------ *)

(* Bump whenever the marshalled shape of [Dataplane.t] (or anything it
   contains) changes: a stale entry must read as a miss, not as garbage. *)
let persist_magic = "heimdall-dpcache-2\n"

let persist_path dir key = Filename.concat dir (Digest.to_hex key ^ ".dp")

let load_persistent t key =
  match t.cache_dir with
  | None -> None
  | Some dir -> (
      match In_channel.open_bin (persist_path dir key) with
      | exception Sys_error _ -> None
      | ic ->
          Fun.protect
            ~finally:(fun () -> In_channel.close ic)
            (fun () ->
              try
                let magic = really_input_string ic (String.length persist_magic) in
                if not (String.equal magic persist_magic) then None
                else Some (Marshal.from_channel ic : Dataplane.t)
              with _ -> None))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let store_persistent t key dp =
  match t.cache_dir with
  | None -> ()
  | Some dir -> (
      (* Best effort: a cache that cannot be written is just a cache that
         never hits.  Write-then-rename keeps concurrent writers (or a
         crash) from leaving a torn entry behind. *)
      try
        mkdir_p dir;
        let path = persist_path dir key in
        let tmp =
          Printf.sprintf "%s.tmp.%d.%d" path (Stdlib.Domain.self () :> int)
            (Hashtbl.hash key)
        in
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc persist_magic;
            Marshal.to_channel oc dp []);
        Sys.rename tmp path
      with Sys_error _ -> ())

let dataplane ?base t net =
  let key = Network.digest net in
  match locked t (fun () -> Hashtbl.find_opt t.dp_cache key) with
  | Some dp ->
      Atomic.incr t.dp_hits;
      Heimdall_obs.Obs.incr t.obs "engine.dataplane.cache_hit";
      dp
  | None ->
      let insert dp =
        locked t (fun () ->
            (* Another domain may have raced us; keep the first value so
               every caller shares one physical dataplane. *)
            match Hashtbl.find_opt t.dp_cache key with
            | Some existing -> existing
            | None ->
                Hashtbl.replace t.dp_cache key dp;
                dp)
      in
      (match load_persistent t key with
      | Some dp ->
          Atomic.incr t.dp_persistent_hits;
          Heimdall_obs.Obs.incr t.obs "engine.dataplane.persistent_hit";
          insert dp
      | None ->
          let dp, dt =
            Heimdall_obs.Clock.elapsed (fun () ->
                match base with
                | Some b ->
                    Atomic.incr t.dp_incremental;
                    Dataplane.recompute ~base:b net
                | None -> Dataplane.compute net)
          in
          Atomic.incr t.dp_built;
          Heimdall_obs.Obs.incr t.obs "engine.dataplane.built";
          Heimdall_obs.Obs.observe t.obs "engine.dataplane.build_s" dt;
          store_persistent t key dp;
          insert dp)

let dataplane_of_changes t ~production changes =
  match Network.apply_changes changes production with
  | Error _ as e -> e
  | Ok net -> Ok (dataplane ~base:(dataplane t production) t net)

(* ------------------------------------------------------------------ *)
(* Memoized traces                                                     *)
(* ------------------------------------------------------------------ *)

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let make_shards () =
  Array.init shard_count (fun _ ->
      { sm = Mutex.create (); sc = Condition.create (); tbl = Hashtbl.create 64 })

(* Must be called under the lock. *)
let flows_for t dp =
  match List.find_opt (fun c -> c.dp == dp) t.flow_caches with
  | Some c ->
      t.flow_caches <- c :: List.filter (fun c' -> c' != c) t.flow_caches;
      c.shards
  | None ->
      let c = { dp; shards = make_shards () } in
      t.flow_caches <- c :: take (max_flow_caches - 1) t.flow_caches;
      c.shards

let trace t dp flow =
  let shards = locked t (fun () -> flows_for t dp) in
  let sh = shards.(Hashtbl.hash flow land (shard_count - 1)) in
  Mutex.lock sh.sm;
  let rec resolve ~waited =
    match Hashtbl.find_opt sh.tbl flow with
    | Some (Computed r) ->
        Mutex.unlock sh.sm;
        if waited then begin
          (* Single-flight: someone else computed this flow while we
             waited — we reused their work instead of duplicating it. *)
          Atomic.incr t.trace_coalesced;
          Heimdall_obs.Obs.incr t.obs "engine.trace.coalesced"
        end
        else begin
          Atomic.incr t.trace_hits;
          Heimdall_obs.Obs.incr t.obs "engine.trace.cache_hit"
        end;
        r
    | Some In_flight ->
        Condition.wait sh.sc sh.sm;
        resolve ~waited:true
    | None ->
        Hashtbl.replace sh.tbl flow In_flight;
        Mutex.unlock sh.sm;
        let r =
          try Trace.trace dp flow
          with e ->
            (* Abandon the claim so waiters retry (and one of them takes
               over the computation) instead of blocking forever. *)
            Mutex.lock sh.sm;
            Hashtbl.remove sh.tbl flow;
            Condition.broadcast sh.sc;
            Mutex.unlock sh.sm;
            raise e
        in
        Atomic.incr t.traces_run;
        Heimdall_obs.Obs.incr t.obs "engine.trace.run";
        Mutex.lock sh.sm;
        Hashtbl.replace sh.tbl flow (Computed r);
        Condition.broadcast sh.sc;
        Mutex.unlock sh.sm;
        r
  in
  resolve ~waited:false

(* ------------------------------------------------------------------ *)
(* Parallel map                                                        *)
(* ------------------------------------------------------------------ *)

let fail_spawn_for_tests = ref false

(* [Domain.spawn] can fail on a loaded host (thread/domain limits).  The
   work queue is shared, so the caller's own worker drains every item
   regardless of how many helpers actually started — a failed spawn
   degrades throughput, never correctness. *)
let spawn_helper t pool =
  match
    if !fail_spawn_for_tests then failwith "injected spawn failure"
    else Domain.spawn (fun () -> pool_worker pool (pool.gen - 1))
  with
  | d -> Some d
  | exception _ ->
      Atomic.incr t.spawn_fallbacks;
      Heimdall_obs.Obs.incr t.obs "engine.map.spawn_fallback";
      Heimdall_obs.Obs.set_gauge t.obs "engine.spawn_fallbacks"
        (float_of_int (Atomic.get t.spawn_fallbacks));
      None

(* Top the pool back up to its target helper count.  Called on every
   parallel [map]: normally a no-op, but it retries helpers whose spawn
   failed earlier (e.g. a transient domain limit). *)
let ensure_helpers t pool =
  Mutex.lock pool.pm;
  let missing = if pool.stopping then 0 else pool.target - List.length pool.helpers in
  Mutex.unlock pool.pm;
  if missing > 0 then begin
    let fresh = List.filter_map (fun _ -> spawn_helper t pool) (List.init missing Fun.id) in
    if fresh <> [] then begin
      Mutex.lock pool.pm;
      if pool.stopping then begin
        Mutex.unlock pool.pm;
        (* Lost the race with [shutdown]: release the fresh helpers. *)
        Condition.broadcast pool.work;
        List.iter Domain.join fresh
      end
      else begin
        pool.helpers <- fresh @ pool.helpers;
        Mutex.unlock pool.pm
      end
    end
  end

(* Below this many items per engaged domain a parallel fan-out costs more
   in queue traffic and wake-ups than the work is worth — the lint/sem
   per-device passes (a dozen sub-microsecond items) were up to 10x
   slower parallel than sequential.  Callers with unusually expensive
   items can override. *)
let default_min_per_domain = 16

let map ?(min_per_domain = default_min_per_domain) t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let engaged =
    match t.pool with
    | None -> 1
    | Some pool -> min (pool.target + 1) (max 1 (n / max 1 min_per_domain))
  in
  if engaged <= 1 then List.map f xs
  else begin
    let pool = Option.get t.pool in
    ensure_helpers t pool;
    locked t (fun () -> t.domains_used <- max t.domains_used engaged);
    Heimdall_obs.Obs.set_gauge t.obs "engine.domains_used" (float_of_int engaged);
    Heimdall_obs.Obs.incr t.obs ~by:n "engine.map.items";
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let err = Atomic.make None in
    (* Guided self-scheduling: early claims take big chunks (low queue
       traffic), late claims shrink so uneven items still balance. *)
    let rec claim () =
      let cur = Atomic.get next in
      if cur >= n then None
      else
        let chunk = max 1 ((n - cur) / (engaged * 4)) in
        let stop = min n (cur + chunk) in
        if Atomic.compare_and_set next cur stop then Some (cur, stop) else claim ()
    in
    let run () =
      let continue = ref true in
      while !continue do
        match claim () with
        | None -> continue := false
        | Some (start, stop) ->
            for i = start to stop - 1 do
              if Atomic.get err = None then
                try out.(i) <- Some (f arr.(i))
                with e -> ignore (Atomic.compare_and_set err None (Some e))
            done;
            let left = Atomic.fetch_and_add remaining (start - stop) + (start - stop) in
            if left = 0 then begin
              Mutex.lock pool.pm;
              Condition.broadcast pool.idle;
              Mutex.unlock pool.pm
            end
      done
    in
    let my_gen =
      Mutex.lock pool.pm;
      pool.gen <- pool.gen + 1;
      pool.job <- Some run;
      Condition.broadcast pool.work;
      let g = pool.gen in
      Mutex.unlock pool.pm;
      g
    in
    run ();
    Mutex.lock pool.pm;
    while Atomic.get remaining > 0 do
      Condition.wait pool.idle pool.pm
    done;
    (* Drop the drained job so late-waking helpers don't retain it. *)
    if pool.gen = my_gen then pool.job <- None;
    Mutex.unlock pool.pm;
    match Atomic.get err with
    | Some e -> raise e
    | None -> Array.to_list (Array.map Option.get out)
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let phase t name f =
  Heimdall_obs.Obs.span t.obs ~attrs:[ ("component", "engine") ] ("phase:" ^ name)
    (fun () ->
      let v, dt = Heimdall_obs.Clock.elapsed f in
      locked t (fun () ->
          t.phases <-
            (if List.mem_assoc name t.phases then
               List.map (fun (n, s) -> if n = name then (n, s +. dt) else (n, s)) t.phases
             else (name, dt) :: t.phases));
      Heimdall_obs.Obs.observe t.obs "engine.phase_s" ~labels:[ ("phase", name) ] dt;
      v)

type stats = {
  traces_run : int;
  trace_cache_hits : int;
  trace_coalesced : int;
  dataplanes_built : int;
  dataplanes_incremental : int;
  dataplane_cache_hits : int;
  dataplane_persistent_hits : int;
  domains_used : int;
  spawn_fallbacks : int;
  phase_seconds : (string * float) list;
}

let stats t =
  locked t (fun () ->
      {
        traces_run = Atomic.get t.traces_run;
        trace_cache_hits = Atomic.get t.trace_hits;
        trace_coalesced = Atomic.get t.trace_coalesced;
        dataplanes_built = Atomic.get t.dp_built;
        dataplanes_incremental = Atomic.get t.dp_incremental;
        dataplane_cache_hits = Atomic.get t.dp_hits;
        dataplane_persistent_hits = Atomic.get t.dp_persistent_hits;
        domains_used = t.domains_used;
        spawn_fallbacks = Atomic.get t.spawn_fallbacks;
        phase_seconds = List.rev t.phases;
      })

let reset_stats t =
  locked t (fun () ->
      Atomic.set t.traces_run 0;
      Atomic.set t.trace_hits 0;
      Atomic.set t.trace_coalesced 0;
      Atomic.set t.dp_built 0;
      Atomic.set t.dp_incremental 0;
      Atomic.set t.dp_hits 0;
      Atomic.set t.dp_persistent_hits 0;
      Atomic.set t.spawn_fallbacks 0;
      t.domains_used <- 1;
      t.phases <- [])

let trace_hit_rate s =
  let total = s.trace_cache_hits + s.trace_coalesced + s.traces_run in
  if total = 0 then 0.0
  else float_of_int (s.trace_cache_hits + s.trace_coalesced) /. float_of_int total

let runtime_sampler t () =
  let s = stats t in
  let dp_answered = s.dataplane_cache_hits + s.dataplane_persistent_hits in
  let dp_total = s.dataplanes_built + dp_answered in
  let dp_rate =
    if dp_total = 0 then 0.0 else float_of_int dp_answered /. float_of_int dp_total
  in
  [
    ("engine.domains", float_of_int t.domains);
    ("engine.domains_used", float_of_int s.domains_used);
    ("engine.trace.hit_rate", trace_hit_rate s);
    ("engine.dataplane.cache_hit_rate", dp_rate);
    ("engine.spawn_fallbacks", float_of_int s.spawn_fallbacks);
  ]

let stats_to_json s =
  let open Heimdall_json in
  Json.Obj
    [
      ("traces_run", Json.Int s.traces_run);
      ("trace_cache_hits", Json.Int s.trace_cache_hits);
      ("trace_coalesced", Json.Int s.trace_coalesced);
      ("dataplanes_built", Json.Int s.dataplanes_built);
      ("dataplanes_incremental", Json.Int s.dataplanes_incremental);
      ("dataplane_cache_hits", Json.Int s.dataplane_cache_hits);
      ("dataplane_persistent_hits", Json.Int s.dataplane_persistent_hits);
      ("trace_hit_rate", Json.Float (trace_hit_rate s));
      ("domains_used", Json.Int s.domains_used);
      ("spawn_fallbacks", Json.Int s.spawn_fallbacks);
      ( "phase_seconds",
        Json.Obj (List.map (fun (n, secs) -> (n, Json.Float secs)) s.phase_seconds) );
    ]

let render_stats s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "engine: %d domains | dataplanes built %d (%d incremental, cache hits %d, \
        persistent hits %d) | traces run %d (cache hits %d, coalesced %d, %.1f%% hit \
        rate)\n"
       s.domains_used s.dataplanes_built s.dataplanes_incremental s.dataplane_cache_hits
       s.dataplane_persistent_hits s.traces_run s.trace_cache_hits s.trace_coalesced
       (100.0 *. trace_hit_rate s));
  if s.spawn_fallbacks > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  spawn fallbacks: %d (ran degraded on fewer domains)\n"
         s.spawn_fallbacks);
  List.iter
    (fun (name, secs) ->
      Buffer.add_string buf (Printf.sprintf "  phase %-24s %8.3f s\n" name secs))
    s.phase_seconds;
  Buffer.contents buf
