open Heimdall_net

type intent = Reachable | Isolated | Waypoint of string

type t = {
  id : string;
  src_label : string;
  dst_label : string;
  flow : Flow.t;
  intent : intent;
}

let default_id intent ~src_label ~dst_label (flow : Flow.t) =
  let kind =
    match intent with
    | Reachable -> "reach"
    | Isolated -> "isolate"
    | Waypoint w -> "waypoint[" ^ w ^ "]"
  in
  let proto =
    match flow.proto with
    | Flow.Icmp -> "icmp"
    | Flow.Tcp -> Printf.sprintf "tcp%d" flow.dst_port
    | Flow.Udp -> Printf.sprintf "udp%d" flow.dst_port
  in
  Printf.sprintf "%s:%s->%s:%s" kind src_label dst_label proto

let reachable ?id ~src_label ~dst_label flow =
  let id = Option.value id ~default:(default_id Reachable ~src_label ~dst_label flow) in
  { id; src_label; dst_label; flow; intent = Reachable }

let isolated ?id ~src_label ~dst_label flow =
  let id = Option.value id ~default:(default_id Isolated ~src_label ~dst_label flow) in
  { id; src_label; dst_label; flow; intent = Isolated }

let waypoint ?id ~src_label ~dst_label ~via flow =
  let id =
    Option.value id ~default:(default_id (Waypoint via) ~src_label ~dst_label flow)
  in
  { id; src_label; dst_label; flow; intent = Waypoint via }

let to_string p =
  match p.intent with
  | Reachable -> Printf.sprintf "%s can reach %s (%s)" p.src_label p.dst_label (Flow.to_string p.flow)
  | Isolated ->
      Printf.sprintf "%s must not reach %s (%s)" p.src_label p.dst_label
        (Flow.to_string p.flow)
  | Waypoint w ->
      Printf.sprintf "%s reaches %s through %s (%s)" p.src_label p.dst_label w
        (Flow.to_string p.flow)

let pp fmt p = Format.pp_print_string fmt (to_string p)
let equal a b = a = b

type verdict = Holds | Violated of string

let verdict_of_trace p (result : Trace.result) =
  match p.intent with
  | Reachable -> (
      match result with
      | Trace.Delivered _ -> Holds
      | Trace.Dropped (reason, _) ->
          Violated
            (Printf.sprintf "%s cannot reach %s: %s" p.src_label p.dst_label
               (Trace.drop_reason_to_string reason)))
  | Isolated -> (
      match result with
      | Trace.Dropped _ -> Holds
      | Trace.Delivered hops ->
          Violated
            (Printf.sprintf "%s reaches %s (path: %s)" p.src_label p.dst_label
               (String.concat " -> " (List.map (fun (h : Trace.hop) -> h.node) hops))))
  | Waypoint via -> (
      match result with
      | Trace.Dropped (reason, _) ->
          Violated
            (Printf.sprintf "%s cannot reach %s: %s" p.src_label p.dst_label
               (Trace.drop_reason_to_string reason))
      | Trace.Delivered _ ->
          if List.mem via (Trace.nodes_on_path result) then Holds
          else
            Violated
              (Printf.sprintf "%s reaches %s without passing %s" p.src_label p.dst_label via))

let check dp p = verdict_of_trace p (Trace.trace dp p.flow)

type report = { total : int; violations : (t * string) list }

(* The effective context: an explicit [?obs] wins, otherwise the one the
   engine was created with (so a pipeline carrying an obs-enabled engine
   is instrumented end to end without re-threading). *)
let effective_obs obs engine =
  match obs with Some _ -> obs | None -> Option.bind engine Engine.obs

let check_all ?engine ?obs dp policies =
  let obs = effective_obs obs engine in
  Heimdall_obs.Obs.span obs "policy.check_all"
    ~attrs:[ ("policies", string_of_int (List.length policies)) ]
    (fun () ->
      let verdicts =
        match engine with
        | None -> List.map (fun p -> (p, check dp p)) policies
        | Some e ->
            (* Parallel fan-out; the per-dataplane flow cache means policies
               sharing a flow trace it once. *)
            Engine.map e
              (fun p -> (p, verdict_of_trace p (Engine.trace e dp p.flow)))
              policies
      in
      let violations =
        List.filter_map
          (function _, Holds -> None | p, Violated reason -> Some (p, reason))
          verdicts
      in
      Heimdall_obs.Obs.add_attr obs "violations"
        (string_of_int (List.length violations));
      let violated = List.length violations in
      Heimdall_obs.Obs.incr obs
        ~by:(List.length policies - violated)
        ~labels:[ ("verdict", "holds") ] "policy.checked";
      Heimdall_obs.Obs.incr obs ~by:violated ~labels:[ ("verdict", "violated") ]
        "policy.checked";
      Heimdall_obs.Obs.incr obs ~by:violated "policy.violations";
      { total = List.length policies; violations })

let holds_all ?engine ?obs dp policies = (check_all ?engine ?obs dp policies).violations = []
