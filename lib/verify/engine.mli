(** The verification engine: parallel, memoizing execution of policy
    checks, reachability traces, and failure sweeps.

    The paper's evaluation re-verifies ~181 policies over hundreds of
    rebuilt dataplanes; done naively that is single-threaded and
    recomputes identical artifacts many times over.  The engine fixes
    both costs:

    - {b Parallelism}: [map] fans independent work items out across a
      {e persistent} pool of OCaml 5 domains.  The helpers are spawned
      once (lazily, at the first parallel map) and reused for the
      engine's lifetime; each map posts one job to a shared chunked work
      queue, and workloads too small to amortize a wake-up run
      sequentially.  Results are written by index, so the output order —
      and therefore every verdict — is byte-identical regardless of the
      domain count.
    - {b Memoization}: [dataplane] runs one control-plane computation per
      structurally-distinct network, keyed by the composed per-device
      config digests of {!Heimdall_control.Network.digest}; passing
      [?base] reuses unchanged per-device work via
      {!Heimdall_control.Dataplane.recompute}; and with [?cache_dir] the
      built dataplanes persist on disk across runs.  [trace] keeps a
      sharded per-dataplane flow cache with single-flight misses, so
      policies sharing a flow trace it once — even when they ask
      concurrently.

    All entry points are safe to call from any domain.  An engine created
    with [~domains:1] never spawns, which keeps tier-1 tests
    deterministic and dependency-free. *)

open Heimdall_net
open Heimdall_control

type t

val create : ?domains:int -> ?obs:Heimdall_obs.Obs.t -> ?cache_dir:string -> unit -> t
(** [create ~domains ()] makes an engine whose [map] uses up to
    [domains] domains (including the caller's).  Defaults to
    {!default_domains}; values below 1 are clamped to 1.  Helper domains
    are not spawned here — the first [map] large enough to parallelize
    spawns them, and they then persist until {!shutdown} (or, as a
    backstop, until the engine is collected).

    With [?cache_dir], built dataplanes are also written to that
    directory (one marshalled file per network digest, created on
    demand) and later engines pointed at the same directory load them
    instead of recomputing.  The cache is self-invalidating: entries are
    keyed by structural digest and carry a format version, and any
    unreadable or stale entry is treated as a miss.

    With [?obs], the engine additionally streams its counters into the
    context's metrics registry ([engine.trace.run] /
    [engine.trace.cache_hit] / [engine.trace.coalesced] /
    [engine.dataplane.built] / [engine.dataplane.cache_hit] /
    [engine.dataplane.persistent_hit], a [engine.dataplane.build_s]
    histogram, an [engine.domains_used] gauge) and wraps each {!phase}
    in a tracer span.  Observability never changes results — only the
    \[stats\] and the registry. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped to a small constant so a
    big host doesn't oversubscribe tiny work lists. *)

val domains : t -> int
(** The pool size the engine was created with. *)

val obs : t -> Heimdall_obs.Obs.t option
(** The observability context the engine was created with, if any —
    callers piggyback on it so one context covers a whole pipeline. *)

val shutdown : t -> unit
(** Stop and join the engine's helper domains.  Idempotent; safe on
    engines that never spawned.  A subsequent [map] re-spawns helpers on
    demand, so shutdown is a resource release, not a poisoning.  Engines
    dropped without [shutdown] release their helpers via a GC finalizer,
    but long-lived programs should call this deterministically. *)

val dataplane : ?base:Dataplane.t -> t -> Network.t -> Dataplane.t
(** Memoized dataplane computation: one build per structurally-distinct
    network, keyed by {!Heimdall_control.Network.digest}.  Repeated
    calls with an equal network return the {e same} dataplane value, so
    downstream trace caches are shared too.

    On a miss with [?base], the build runs
    {!Heimdall_control.Dataplane.recompute}[ ~base], which reuses the
    base's L2 map and per-device FIBs for devices whose routing inputs
    are unchanged — the natural choice when [net] is a small variation
    of a network whose dataplane is already in hand (a single-device
    change, one failure candidate of a sweep).  The result is
    byte-identical to a full compute either way. *)

val dataplane_of_changes :
  t -> production:Network.t -> Heimdall_config.Change.t list ->
  (Dataplane.t, string) result
(** Apply a change set and return the (memoized) dataplane of the
    resulting network, built incrementally against the production
    dataplane. *)

val trace : t -> Dataplane.t -> Flow.t -> Trace.result
(** Memoized {!Trace.trace}: a per-dataplane flow cache sharded across
    independently-locked segments, so concurrent lookups of different
    flows never contend.  Concurrent misses on the {e same} flow are
    single-flight: one domain computes, the rest wait and reuse the
    result (counted as [trace_coalesced]). *)

val map : ?min_per_domain:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with deterministic result order.  [f] must be safe to
    run from any domain (pure functions over networks, dataplanes and
    engine calls all are).

    The map runs sequentially — exactly [List.map] — unless there are at
    least [min_per_domain] items (default 16) per engaged domain; tiny
    fan-outs cost more in wake-ups and queue traffic than the work is
    worth.  Pass [~min_per_domain:1] to force parallelism for expensive
    items.  With a pool of 1 it is always [List.map].

    Degrades gracefully when {!Domain.spawn} fails (domain/thread limits
    on a loaded host): the shared work queue lets the caller's own worker
    drain every item, so results are identical — only slower.  Each
    failed spawn bumps the [spawn_fallbacks] stat and the
    [engine.spawn_fallbacks] gauge, and the next map retries the spawn.

    If [f] raises, the first exception (in claim order) is re-raised in
    the caller after the queue drains; remaining unstarted items are
    skipped. *)

val fail_spawn_for_tests : bool ref
(** Test hook: when set, [map] behaves as if every [Domain.spawn]
    failed, exercising the degraded single-domain path.  Never set this
    outside tests. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f] and adds its wall-clock seconds (measured
    via {!Heimdall_obs.Clock.elapsed}, so clamped at zero) to the [name]
    bucket of {!stats}; with an [?obs] context it is also a tracer span
    and an [engine.phase_s{phase="<name>"}] histogram sample. *)

(** {1 Observability} *)

type stats = {
  traces_run : int;  (** Traces actually computed. *)
  trace_cache_hits : int;  (** Traces answered from the flow cache. *)
  trace_coalesced : int;
      (** Concurrent misses that waited for another domain's in-flight
          trace instead of recomputing it. *)
  dataplanes_built : int;  (** Dataplane computations (full or incremental). *)
  dataplanes_incremental : int;
      (** Subset of [dataplanes_built] that ran incrementally against a
          [?base] dataplane. *)
  dataplane_cache_hits : int;  (** Dataplanes answered from the digest cache. *)
  dataplane_persistent_hits : int;
      (** Dataplanes loaded from the on-disk cache instead of built. *)
  domains_used : int;  (** Largest pool [map] has actually engaged. *)
  spawn_fallbacks : int;
      (** [Domain.spawn] failures absorbed by the shared-queue fallback. *)
  phase_seconds : (string * float) list;
      (** Wall seconds per {!phase} bucket, in first-use order. *)
}

val stats : t -> stats
(** A consistent snapshot of the engine's counters. *)

val reset_stats : t -> unit

val trace_hit_rate : stats -> float
(** (hits + coalesced) / (hits + coalesced + runs), in [0, 1]; 0 when no
    traces ran. *)

val stats_to_json : stats -> Heimdall_json.Json.t
(** Machine-readable form, persisted by [bench/main.exe] into
    [bench/report.json]. *)

val render_stats : stats -> string
(** Multi-line human-readable form, printed by [bench/main.exe]. *)

val runtime_sampler : t -> unit -> (string * float) list
(** A {!Heimdall_obs.Runtime.sampler} over this engine: gauges
    [engine.domains], [engine.domains_used], [engine.trace.hit_rate],
    [engine.dataplane.cache_hit_rate] (digest + persistent hits over all
    dataplane requests), and [engine.spawn_fallbacks].  Register it with
    [Runtime.add_sampler] so the exporter's [/metrics] page tracks the
    engine live. *)
