(** The verification engine: parallel, memoizing execution of policy
    checks, reachability traces, and failure sweeps.

    The paper's evaluation re-verifies ~181 policies over hundreds of
    rebuilt dataplanes; done naively that is single-threaded and
    recomputes identical artifacts many times over.  The engine fixes
    both costs:

    - {b Parallelism}: [map] fans independent work items out across a
      fixed pool of OCaml 5 domains using a chunked work queue.  Results
      are written by index, so the output order — and therefore every
      verdict — is byte-identical regardless of the domain count.
    - {b Memoization}: [dataplane] runs one {!Heimdall_control.Dataplane.compute}
      per structurally-distinct network (keyed by digest), and [trace]
      keeps a per-dataplane flow cache so policies sharing a flow trace
      it once.

    All entry points are safe to call from any domain; internal caches
    are guarded by a single mutex and shared across the pool.  An engine
    created with [~domains:1] never spawns, which keeps tier-1 tests
    deterministic and dependency-free. *)

open Heimdall_net
open Heimdall_control

type t

val create : ?domains:int -> ?obs:Heimdall_obs.Obs.t -> unit -> t
(** [create ~domains ()] makes an engine whose [map] uses up to
    [domains] domains (including the caller's).  Defaults to
    {!default_domains}; values below 1 are clamped to 1.

    With [?obs], the engine additionally streams its counters into the
    context's metrics registry ([engine.trace.run] /
    [engine.trace.cache_hit] / [engine.dataplane.built] /
    [engine.dataplane.cache_hit], a [engine.dataplane.build_s]
    histogram, an [engine.domains_used] gauge) and wraps each {!phase}
    in a tracer span.  Observability never changes results — only the
    \[stats\] and the registry. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped to a small constant so a
    big host doesn't oversubscribe tiny work lists. *)

val domains : t -> int
(** The pool size the engine was created with. *)

val obs : t -> Heimdall_obs.Obs.t option
(** The observability context the engine was created with, if any —
    callers piggyback on it so one context covers a whole pipeline. *)

val dataplane : t -> Network.t -> Dataplane.t
(** Memoized {!Heimdall_control.Dataplane.compute}: one build per
    structurally-distinct network.  Repeated calls with an equal network
    return the {e same} dataplane value, so downstream trace caches are
    shared too. *)

val dataplane_of_changes :
  t -> production:Network.t -> Heimdall_config.Change.t list ->
  (Dataplane.t, string) result
(** Apply a change set and return the (memoized) dataplane of the
    resulting network. *)

val trace : t -> Dataplane.t -> Flow.t -> Trace.result
(** Memoized {!Trace.trace}: per-dataplane flow cache, so two policies
    over the same flow cost one trace. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map with deterministic result order.  [f] must be safe to
    run from any domain (pure functions over networks, dataplanes and
    engine calls all are).  With a pool of 1 — or a single-element list —
    this is exactly [List.map].

    Degrades gracefully when {!Domain.spawn} fails (domain/thread limits
    on a loaded host): the shared work queue lets the caller's own worker
    drain every item, so results are identical — only slower.  Each
    failed spawn bumps the [spawn_fallbacks] stat and the
    [engine.spawn_fallbacks] gauge. *)

val fail_spawn_for_tests : bool ref
(** Test hook: when set, [map] behaves as if every [Domain.spawn]
    failed, exercising the sequential fallback path.  Never set this
    outside tests. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f] and adds its wall-clock seconds (measured
    via {!Heimdall_obs.Clock.elapsed}, so clamped at zero) to the [name]
    bucket of {!stats}; with an [?obs] context it is also a tracer span
    and an [engine.phase_s.<name>] histogram sample. *)

(** {1 Observability} *)

type stats = {
  traces_run : int;  (** Traces actually computed. *)
  trace_cache_hits : int;  (** Traces answered from the flow cache. *)
  dataplanes_built : int;  (** [Dataplane.compute] invocations. *)
  dataplane_cache_hits : int;  (** Dataplanes answered from the digest cache. *)
  domains_used : int;  (** Largest pool [map] has actually engaged. *)
  spawn_fallbacks : int;
      (** [Domain.spawn] failures absorbed by the sequential fallback. *)
  phase_seconds : (string * float) list;
      (** Wall seconds per {!phase} bucket, in first-use order. *)
}

val stats : t -> stats
(** A consistent snapshot of the engine's counters. *)

val reset_stats : t -> unit

val trace_hit_rate : stats -> float
(** Hits / (hits + runs), in [0, 1]; 0 when no traces ran. *)

val stats_to_json : stats -> Heimdall_json.Json.t
(** Machine-readable form, persisted by [bench/main.exe] into
    [bench/report.json]. *)

val render_stats : stats -> string
(** Multi-line human-readable form, printed by [bench/main.exe]. *)
