open Heimdall_net
open Heimdall_control

type matrix = {
  hosts : (string * Ipv4.t) list;  (* sorted by name *)
  reach : (string * string, bool) Hashtbl.t;
}

let addressed_hosts net =
  Network.node_names net
  |> List.filter_map (fun n ->
         if Network.kind n net = Some Topology.Host then
           Option.map (fun a -> (n, a)) (Network.host_address n net)
         else None)

let compute ?engine ?obs dp =
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  Heimdall_obs.Obs.span obs "reachability.compute" (fun () ->
  let net = Dataplane.network dp in
  let hosts = addressed_hosts net in
  let pairs =
    List.concat_map
      (fun (src, src_addr) ->
        List.filter_map
          (fun (dst, dst_addr) ->
            if src <> dst then Some (src, dst, Flow.icmp src_addr dst_addr) else None)
          hosts)
      hosts
  in
  let delivered =
    match engine with
    | None -> List.map (fun (_, _, flow) -> Trace.is_delivered (Trace.trace dp flow)) pairs
    | Some e ->
        Engine.map e (fun (_, _, flow) -> Trace.is_delivered (Engine.trace e dp flow)) pairs
  in
  let reach = Hashtbl.create (max 16 (List.length pairs)) in
  List.iter2 (fun (src, dst, _) ok -> Hashtbl.replace reach (src, dst) ok) pairs delivered;
  Heimdall_obs.Obs.add_attr obs "hosts" (string_of_int (List.length hosts));
  Heimdall_obs.Obs.add_attr obs "pairs" (string_of_int (List.length pairs));
  Heimdall_obs.Obs.incr obs ~by:(List.length pairs) "reachability.pairs_traced";
  { hosts; reach })

let reachable ~src ~dst m = Hashtbl.find_opt m.reach (src, dst)
let pair_count m = Hashtbl.length m.reach
let reachable_count m = Hashtbl.fold (fun _ ok n -> if ok then n + 1 else n) m.reach 0

type impact = { gained : (string * string) list; lost : (string * string) list }

let diff ~before ~after =
  (* Iterate the union of both matrices: a pair present on one side only
     (host or interface added/removed by the change) still gains or
     loses connectivity. *)
  let union = Hashtbl.create (Hashtbl.length before.reach + Hashtbl.length after.reach) in
  Hashtbl.iter (fun pair _ -> Hashtbl.replace union pair ()) before.reach;
  Hashtbl.iter (fun pair _ -> Hashtbl.replace union pair ()) after.reach;
  let gained = ref [] and lost = ref [] in
  Hashtbl.iter
    (fun pair () ->
      let was = Hashtbl.find_opt before.reach pair = Some true in
      let is = Hashtbl.find_opt after.reach pair = Some true in
      if is && not was then gained := pair :: !gained
      else if was && not is then lost := pair :: !lost)
    union;
  {
    gained = List.sort compare !gained;
    lost = List.sort compare !lost;
  }

let impact_to_string i =
  if i.gained = [] && i.lost = [] then "no reachability change"
  else
    let fmt sign (a, b) = Printf.sprintf "%s %s -> %s" sign a b in
    String.concat "\n" (List.map (fmt "+") i.gained @ List.map (fmt "-") i.lost)

let impact_of_changes ?engine ?obs ~production changes =
  match Network.apply_changes changes production with
  | Error m -> Error m
  | Ok shadow ->
      Heimdall_obs.Obs.span obs "reachability.impact" (fun () ->
          (* The shadow is a small variation of production: reuse the
             production dataplane as the incremental base. *)
          let production_dp, shadow_dp =
            match engine with
            | Some e ->
                let p = Engine.dataplane e production in
                (p, Engine.dataplane ~base:p e shadow)
            | None ->
                let p = Dataplane.compute production in
                (p, Dataplane.recompute ~base:p shadow)
          in
          let before = compute ?engine ?obs production_dp in
          let after = compute ?engine ?obs shadow_dp in
          Ok (diff ~before ~after))
