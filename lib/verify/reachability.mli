(** Whole-network reachability matrices and change-impact analysis.

    The enforcer uses this to answer the operator's real question about a
    change set: {e who can talk to whom now that couldn't before — and
    who lost connectivity}? *)

open Heimdall_control

type matrix
(** Host-pair ICMP reachability: for every ordered pair of addressed
    hosts, whether a flow is delivered. *)

val compute : ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t -> Dataplane.t -> matrix
(** One trace per ordered host pair.  With [?engine] the pairs fan out
    across the engine's domain pool and traces are memoized; the
    resulting matrix is identical either way.  With [?obs] (or an engine
    carrying one) the computation is a tracer span with host/pair-count
    attributes. *)

val reachable : src:string -> dst:string -> matrix -> bool option
(** [None] when either host is unknown/unaddressed. *)

val pair_count : matrix -> int
val reachable_count : matrix -> int

type impact = {
  gained : (string * string) list;  (** Newly connected (src, dst). *)
  lost : (string * string) list;  (** Newly disconnected. *)
}

val diff : before:matrix -> after:matrix -> impact
(** Pairs — over the union of both matrices — whose verdict flipped.  A
    pair present only in [after] (host added by the change) counts as
    gained when reachable; one present only in [before] as lost. *)

val impact_to_string : impact -> string
(** ["no reachability change"] or a +/- listing. *)

val impact_of_changes :
  ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t ->
  production:Network.t -> Heimdall_config.Change.t list -> (impact, string) result
(** Convenience: compute both matrices around a change set. *)
