(** Network policies and the policy checker.

    Policies are the invariants the enterprise cares about (mined by
    {!Spec_miner} or written by the admin); the policy enforcer re-checks
    them before any technician change reaches production. *)

open Heimdall_net
open Heimdall_control

type intent =
  | Reachable  (** The flow must be delivered. *)
  | Isolated  (** The flow must NOT be delivered. *)
  | Waypoint of string  (** Delivered, and the path must cross this node. *)

type t = {
  id : string;  (** Stable identifier, e.g. ["reach:web1->db1:tcp80"]. *)
  src_label : string;  (** Human name of the source (node or subnet). *)
  dst_label : string;
  flow : Flow.t;
  intent : intent;
}

val reachable : ?id:string -> src_label:string -> dst_label:string -> Flow.t -> t
val isolated : ?id:string -> src_label:string -> dst_label:string -> Flow.t -> t
val waypoint : ?id:string -> src_label:string -> dst_label:string -> via:string -> Flow.t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

type verdict = Holds | Violated of string
(** [Violated reason] carries a human-readable explanation. *)

val check : Dataplane.t -> t -> verdict
(** Evaluate one policy against a dataplane. *)

val verdict_of_trace : t -> Trace.result -> verdict
(** Judge a policy against an already-computed trace of its flow (how
    the {!Engine} avoids re-tracing shared flows). *)

type report = {
  total : int;
  violations : (t * string) list;  (** Violated policies with reasons. *)
}

val check_all : ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t -> Dataplane.t -> t list -> report
(** Check every policy.  With [?engine], checks fan out across the
    engine's domain pool and traces are memoized; verdicts are identical
    to the sequential path regardless of domain count.  With [?obs] (or
    an engine that carries one) the check is a tracer span and feeds the
    [policy.checked] / [policy.violations] counters; instrumentation
    never changes the report. *)

val holds_all : ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t -> Dataplane.t -> t list -> bool
