(* A dependency-free HTTP/1.1 exporter over stdlib Unix sockets: one
   accept thread serving the observability context's live state.  The
   protocol surface is deliberately tiny — GET only, Connection: close,
   Content-Length framing — because every client we care about
   (Prometheus scrapers, curl, the smoke-test client below) speaks it.

   Endpoints:
     /metrics        Prometheus text exposition
     /metrics.json   the same registry as JSON
     /healthz        liveness JSON from the pluggable health thunk
                     (HTTP 200 when healthy, 503 when not)
     /spans          recent finished spans as an indented tree
     /events         the event ring tail as JSON

   Serving never mutates the observed system: handlers only read the
   registry/ring/tracer snapshots (plus the exporter's own request
   counter, which lives in the same registry, labeled by path). *)

module Json = Heimdall_json.Json

type health = unit -> bool * (string * Json.t) list

type t = {
  lsock : Unix.file_descr;
  port : int;
  obs : Obs.t;
  health : health;
  stopped : bool Atomic.t;
  mutable thread : Thread.t option;
}

let port t = t.port

let default_health : health = fun () -> (true, [])

(* ------------------------------------------------------------------ *)
(* Response plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let respond fd ~code ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\n\
        Content-Type: %s\r\n\
        Content-Length: %d\r\n\
        Connection: close\r\n\
        \r\n\
        %s"
       code (status_text code) content_type (String.length body) body)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

(* Read until the header terminator (we never need a body), bounded so a
   hostile peer cannot make us buffer without limit. *)
let read_request fd =
  let limit = 8192 in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > limit then None
    else
      let headers_done () =
        let s = Buffer.contents buf in
        let has sub =
          let n = String.length sub and m = String.length s in
          let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
          at 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if headers_done () then Some (Buffer.contents buf)
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  try go () with Unix.Unix_error _ -> None

type request = { meth : string; path : string }

let parse_request text =
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub text 0 i) in
      match String.split_on_char ' ' line with
      | [ meth; target; version ]
        when target <> ""
             && target.[0] = '/'
             && (version = "HTTP/1.1" || version = "HTTP/1.0") ->
          (* Strip any query string: the endpoints take no parameters. *)
          let path =
            match String.index_opt target '?' with
            | Some q -> String.sub target 0 q
            | None -> target
          in
          Some { meth; path }
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let healthz_body t =
  let ok, components = t.health () in
  ( ok,
    Json.to_string ~pretty:true
      (Json.Obj (("status", Json.String (if ok then "ok" else "unhealthy")) :: components))
  )

let events_body t =
  Json.to_string ~pretty:true
    (Json.Obj
       [
         ("length", Json.Int (Events.length t.obs.Obs.events));
         ("dropped", Json.Int (Events.dropped t.obs.Obs.events));
         ("events", Events.to_json t.obs.Obs.events);
       ])

let handle t fd =
  let req =
    match read_request fd with
    | None -> `Bad
    | Some text -> (
        match parse_request text with
        | None -> `Bad
        | Some { meth; _ } when meth <> "GET" -> `Non_get
        | Some { path; _ } -> `Get path)
  in
  (* Count the request BEFORE rendering, so a /metrics scrape observes
     itself — the very first scrape already proves the counter works. *)
  let path_label =
    match req with `Bad -> "malformed" | `Non_get -> "non-get" | `Get p -> p
  in
  Metrics.incr t.obs.Obs.metrics "exporter.requests" ~labels:[ ("path", path_label) ];
  let reply ~code ~content_type body = respond fd ~code ~content_type body in
  match req with
  | `Bad -> reply ~code:400 ~content_type:"text/plain" "malformed request\n"
  | `Non_get -> reply ~code:405 ~content_type:"text/plain" "GET only\n"
  | `Get "/metrics" ->
      reply ~code:200 ~content_type:"text/plain; version=0.0.4"
        (Metrics.to_prometheus t.obs.Obs.metrics)
  | `Get "/metrics.json" ->
      reply ~code:200 ~content_type:"application/json"
        (Json.to_string ~pretty:true (Metrics.to_json t.obs.Obs.metrics))
  | `Get "/healthz" ->
      let ok, body = healthz_body t in
      reply ~code:(if ok then 200 else 503) ~content_type:"application/json" body
  | `Get "/spans" ->
      reply ~code:200 ~content_type:"text/plain"
        (Tracer.render_tree (Tracer.recent t.obs.Obs.tracer))
  | `Get "/events" ->
      reply ~code:200 ~content_type:"application/json" (events_body t)
  | `Get path ->
      reply ~code:404 ~content_type:"text/plain"
        (Printf.sprintf "unknown path %s\n" path)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(host = "127.0.0.1") ?(port = 0) ?(health = default_health) obs =
  match Unix.inet_addr_of_string host with
  | exception _ -> Error (Printf.sprintf "bad host %S" host)
  | addr -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      match Unix.bind sock (Unix.ADDR_INET (addr, port)) with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot bind %s:%d: %s" host port
               (Unix.error_message err))
      | () ->
          Unix.listen sock 64;
          let port =
            match Unix.getsockname sock with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          Ok
            {
              lsock = sock;
              port;
              obs;
              health;
              stopped = Atomic.make false;
              thread = None;
            })

let accept_loop t =
  while not (Atomic.get t.stopped) do
    match Unix.accept t.lsock with
    | fd, _ ->
        (try handle t fd with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        (* Listener closed (stop) or transient accept failure. *)
        if not (Atomic.get t.stopped) then Thread.yield ()
  done

let start t =
  match t.thread with
  | Some _ -> ()
  | None -> t.thread <- Some (Thread.create accept_loop t)

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Closing the listener pops the accept thread out of [accept]. *)
    (try Unix.shutdown t.lsock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    match t.thread with
    | Some th ->
        Thread.join th;
        t.thread <- None
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* A tiny stdlib HTTP client (for smoke tests and --once self-scrapes) *)
(* ------------------------------------------------------------------ *)

let get ?(host = "127.0.0.1") ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close sock with Unix.Unix_error _ -> () in
  match
    Fun.protect ~finally (fun () ->
        Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        write_all sock
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
             path host port);
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "GET %s: %s" path (Unix.error_message err))
  | exception Fun.Finally_raised _ -> Error (Printf.sprintf "GET %s: connection error" path)
  | raw -> (
      let code =
        match String.index_opt raw ' ' with
        | Some i -> (
            try Some (int_of_string (String.trim (String.sub raw (i + 1) 3)))
            with _ -> None)
        | None -> None
      in
      let body =
        let rec find i =
          if i + 4 > String.length raw then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with
        | Some i -> String.sub raw i (String.length raw - i)
        | None -> raw
      in
      match code with
      | Some code -> Ok (code, body)
      | None -> Error (Printf.sprintf "GET %s: malformed response" path))
