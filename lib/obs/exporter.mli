(** The Watchtower HTTP exporter: a dependency-free HTTP/1.1 server
    (stdlib [Unix] + one accept thread) that serves an {!Obs.t}'s live
    state to scrapers.

    Endpoints:
    - [/metrics] — Prometheus text exposition ({!Metrics.to_prometheus})
    - [/metrics.json] — the same registry as JSON
    - [/healthz] — liveness JSON from the health thunk; HTTP 200 when
      healthy, 503 when not
    - [/spans] — recent finished spans as an indented tree
    - [/events] — the event ring tail (plus [length]/[dropped]) as JSON

    Malformed requests get 400, non-GET 405, unknown paths 404.  Every
    request increments [exporter.requests{path="..."}] in the served
    registry, before the response body renders — so even the first
    /metrics scrape observes itself.  Serving only reads snapshots — it never influences the
    instrumented computation. *)

type t

type health = unit -> bool * (string * Heimdall_json.Json.t) list
(** Returns overall liveness plus extra JSON members for the [/healthz]
    body (e.g. drift-monitor status).  Called on every scrape; keep it
    cheap and non-blocking. *)

val create :
  ?host:string -> ?port:int -> ?health:health -> Obs.t -> (t, string) result
(** Bind and listen on [host] (default ["127.0.0.1"]) and [port]
    (default 0 = kernel-assigned; read the actual one with {!port}).
    [Error msg] when the address is bad or the port is already in use —
    no exception escapes.  The server does not accept connections until
    {!start}. *)

val port : t -> int
(** The bound port (resolved when [create] was given port 0). *)

val start : t -> unit
(** Spawn the accept-loop thread.  Idempotent. *)

val stop : t -> unit
(** Close the listener and join the accept thread.  Idempotent; safe to
    call without {!start}. *)

val get :
  ?host:string -> port:int -> string -> (int * string, string) result
(** A tiny stdlib HTTP client: [get ~port "/metrics"] returns
    [(status code, body)].  Used by the CI smoke test and the [serve
    --once] self-scrape; speaks just enough HTTP for this server. *)
