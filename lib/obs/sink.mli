(** Pluggable line sinks for JSONL emission.

    The tracer (and anything else that produces one-JSON-value-per-line
    streams) writes through a sink, so the CLI can point traces at a
    file while tests capture them in memory — without the emitters
    knowing the difference. *)

type t

val write : t -> string -> unit
(** Emit one line (the newline is appended by the sink). *)

val close : t -> unit
(** Flush and release the sink.  Idempotent. *)

val null : t
(** Discards everything. *)

val memory : unit -> t * (unit -> string list)
(** An in-memory sink plus a reader returning the lines written so far
    (oldest first) — the test fixture. *)

val file : string -> t
(** Appends lines to [path], creating the file (truncated) on open.
    @raise Sys_error if the file cannot be opened. *)

val of_fn : ?close:(unit -> unit) -> (string -> unit) -> t
(** Adapt an arbitrary line consumer. *)
