let now_s = Unix.gettimeofday
let clamp d = Float.max 0.0 d

let elapsed f =
  let t0 = now_s () in
  let v = f () in
  (v, clamp (now_s () -. t0))
