(** Hierarchical span tracing, safe under the verify engine's domain
    pool.

    A span is a named, timed region of execution with key/value
    attributes, a unique id and an optional parent id.  Spans nest: the
    innermost open span on the {e current domain} becomes the parent of
    the next one opened there (an explicit [?parent] overrides this, for
    fan-out sites that open spans on behalf of other work).

    Domain safety: every domain writes finished spans into its own
    buffer (registered in the tracer on first use), so workers in
    {!Heimdall_verify.Engine.map}-style pools never contend on a hot
    lock; {!flush} merges all buffers into one id-ordered list.  Ids
    come from a single atomic counter, so they are unique across
    domains.  Tracing never influences the traced computation — with
    the tracer absent the exact same values are produced (the
    determinism tier-1 tests rely on). *)

type span = {
  id : int;  (** Unique within the tracer, > 0. *)
  parent : int option;  (** [None] for root spans. *)
  name : string;
  start_s : float;  (** Seconds since tracer creation, clamped at 0. *)
  duration_s : float;  (** Wall seconds, clamped at 0. *)
  attrs : (string * string) list;  (** Creation attrs then added attrs, in order. *)
}

type t

val default_cap : int

val create : ?cap:int -> unit -> t
(** [cap] (default {!default_cap}, clamped to ≥ 1) bounds the finished
    spans retained {e per domain buffer} between flushes: each buffer
    keeps at least the newest [cap] and at most [2·cap] spans, dropping
    (and counting) older ones — so a long-running server that never
    flushes cannot leak. *)

val dropped : t -> int
(** Finished spans evicted by the cap so far, across all domains. *)

val with_span :
  t -> ?parent:int -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] opens a span, runs [f], and records the span —
    also on exception.  [?parent] defaults to the innermost span open on
    the calling domain. *)

val add_attr : t -> string -> string -> unit
(** Attach an attribute to the innermost open span on the calling
    domain; a no-op when none is open. *)

val current : t -> int option
(** Id of the innermost open span on the calling domain. *)

val root : t -> int option
(** Id of the {e outermost} open span on the calling domain — the
    session span an enforcer records into the audit trail. *)

val flush : t -> span list
(** Merge and clear every domain's finished-span buffer.  Sorted by id
    (creation order); still-open spans stay open and are not returned. *)

val recent : t -> span list
(** Like {!flush} but non-destructive: a snapshot of every retained
    finished span, id-ordered — what a live [/spans] endpoint serves
    without stealing them from a later [flush]. *)

val span_to_json : span -> Heimdall_json.Json.t
val span_of_json : Heimdall_json.Json.t -> span option

val emit : Sink.t -> span list -> unit
(** Write one JSON line per span ({!span_to_json}). *)

val render_tree : span list -> string
(** Indented span tree (children under parents, in id order) with
    durations and attributes — the CLI's [obs] subcommand output.
    Spans whose parent is missing from the list are shown as roots. *)
