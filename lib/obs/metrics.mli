(** The metrics registry: named counters, gauges, and log-bucketed
    histograms, each optionally carrying a {e label set}.

    A series is (name, labels); labels are canonicalised (sorted by key,
    later duplicates win) at update time, so the same label set in any
    order names the same series.  All mutators are safe to call from any
    domain (one mutex per registry) and never affect the instrumented
    computation.  Rendering is deterministic: series are sorted by name
    then label set, so two registries fed the same updates render
    byte-identically. *)

type t

val create : unit -> t

val scoped : t -> (string * string) list -> t
(** A view of the same registry that stamps the given base labels onto
    every update made through it.  Explicit [?labels] on an update
    override base labels with the same key.  Reads and rendering see the
    whole shared registry either way — scoping only affects writes. *)

val base_labels : t -> (string * string) list
(** The view's canonicalised base labels ([[]] for {!create}). *)

(** {1 Updating} *)

val incr : t -> ?by:int -> ?labels:(string * string) list -> string -> unit
(** Add [by] (default 1) to a counter series, creating it at 0. *)

val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit

val observe : t -> ?labels:(string * string) list -> string -> float -> unit
(** Record one sample into a histogram with logarithmic (powers-of-two)
    buckets from 1 µs up; negative samples are clamped to 0. *)

val set_help : t -> string -> string -> unit
(** Register the [# HELP] text emitted for a metric family (default: the
    family name itself). *)

(** {1 Reading} *)

val counter_value : t -> ?labels:(string * string) list -> string -> int
(** With [?labels], the exact series (0 when absent).  Without, the
    {e sum} over every series of that name — which is the old unlabeled
    total when nothing is labeled, and the family aggregate when
    something is. *)

val gauge_value : t -> ?labels:(string * string) list -> string -> float option

type summary = {
  count : int;
  sum : float;
  p50 : float;  (** Bucket-upper-bound estimate of the median. *)
  p95 : float;
  max : float;  (** Exact. *)
}

val histogram_summary :
  t -> ?labels:(string * string) list -> string -> summary option

val counters : t -> (string * int) list
(** Every counter series as [(key, value)], sorted by key; the key is
    the raw name plus the rendered label set (e.g.
    [policy.checked{verdict="holds"}]). *)

(** {1 Rendering} *)

val to_prometheus : t -> string
(** Prometheus text exposition format: metric names sanitised to
    [[a-zA-Z_:][a-zA-Z0-9_:]*] (a leading digit gains a ['_'] prefix),
    label names to [[a-zA-Z_][a-zA-Z0-9_]*], label values escaped
    (backslash, double quote, newline), one [# HELP] and [# TYPE] line
    per family,
    series in deterministic order.  Counters and gauges render as plain
    series, histograms as quantile summaries ([{quantile="0.5"}],
    [{quantile="0.95"}], [{quantile="1"}] = max) plus [_sum]/[_count]. *)

val to_json : t -> Heimdall_json.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {key:
    {count, sum, p50, p95, max}}}], keys sorted — same series keys as
    {!counters}, so the JSON page carries exactly the Prometheus
    content. *)
