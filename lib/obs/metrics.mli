(** The metrics registry: named counters, gauges, and log-bucketed
    histograms.

    All mutators are safe to call from any domain (one mutex per
    registry) and never affect the instrumented computation.  Rendering
    is deterministic: series are sorted by name, so two registries fed
    the same updates render byte-identically. *)

type t

val create : unit -> t

(** {1 Updating} *)

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0. *)

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record one sample into a histogram with logarithmic (powers-of-two)
    buckets from 1 µs up; negative samples are clamped to 0. *)

(** {1 Reading} *)

val counter_value : t -> string -> int
(** 0 for an unknown counter. *)

val gauge_value : t -> string -> float option

type summary = {
  count : int;
  sum : float;
  p50 : float;  (** Bucket-upper-bound estimate of the median. *)
  p95 : float;
  max : float;  (** Exact. *)
}

val histogram_summary : t -> string -> summary option

val counters : t -> (string * int) list
(** Sorted by name. *)

(** {1 Rendering} *)

val to_prometheus : t -> string
(** Prometheus-style text exposition: counters and gauges as plain
    series, histograms as quantile summaries ([{quantile="0.5"}],
    [{quantile="0.95"}], [{quantile="1"}] = max) plus [_sum]/[_count].
    Metric names are sanitised to [[a-zA-Z0-9_:]]. *)

val to_json : t -> Heimdall_json.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count, sum, p50, p95, max}}}], keys sorted. *)
