(* The runtime sampler: a ticking background thread that folds process
   health into the same metrics registry the exporter serves.  Each tick
   writes GC gauges, the obs context's own buffer-pressure gauges
   (event/span drops), and whatever extra samplers callers registered —
   e.g. the verify engine's cache hit rates.  Sampling only reads, so it
   can never perturb verdicts. *)

type sampler = unit -> (string * float) list

type t = {
  obs : Obs.t;
  interval_s : float;
  lock : Mutex.t;
  mutable samplers : sampler list;
  stopped : bool Atomic.t;
  mutable thread : Thread.t option;
}

let create ?(interval_s = 1.0) obs =
  {
    obs;
    interval_s = Float.max 0.05 interval_s;
    lock = Mutex.create ();
    samplers = [];
    stopped = Atomic.make false;
    thread = None;
  }

let add_sampler t f =
  Mutex.lock t.lock;
  t.samplers <- t.samplers @ [ f ];
  Mutex.unlock t.lock

let gc_gauges () =
  let s = Gc.quick_stat () in
  [
    ("runtime.gc.heap_words", float_of_int s.Gc.heap_words);
    ("runtime.gc.minor_words", s.Gc.minor_words);
    ("runtime.gc.minor_collections", float_of_int s.Gc.minor_collections);
    ("runtime.gc.major_collections", float_of_int s.Gc.major_collections);
    ("runtime.gc.compactions", float_of_int s.Gc.compactions);
  ]

let self_gauges t =
  [
    ("obs.events.length", float_of_int (Events.length t.obs.Obs.events));
    ("obs.events.dropped", float_of_int (Events.dropped t.obs.Obs.events));
    ("obs.spans.dropped", float_of_int (Tracer.dropped t.obs.Obs.tracer));
  ]

let sample t =
  let extra =
    Mutex.lock t.lock;
    let samplers = t.samplers in
    Mutex.unlock t.lock;
    List.concat_map (fun f -> try f () with _ -> []) samplers
  in
  List.iter
    (fun (name, v) -> Metrics.set_gauge t.obs.Obs.metrics name v)
    (gc_gauges () @ self_gauges t @ extra)

(* Sleep in small chunks so [stop] is responsive even with long
   intervals. *)
let rec nap t remaining =
  if remaining > 0. && not (Atomic.get t.stopped) then begin
    Thread.delay (Float.min 0.05 remaining);
    nap t (remaining -. 0.05)
  end

let loop t =
  while not (Atomic.get t.stopped) do
    sample t;
    nap t t.interval_s
  done

let start t =
  match t.thread with
  | Some _ -> ()
  | None ->
      Atomic.set t.stopped false;
      t.thread <- Some (Thread.create loop t)

let stop t =
  Atomic.set t.stopped true;
  match t.thread with
  | Some th ->
      Thread.join th;
      t.thread <- None
  | None -> ()
