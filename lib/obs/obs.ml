type t = { tracer : Tracer.t; metrics : Metrics.t; events : Events.t }

let create ?span_cap ?event_cap () =
  {
    tracer = Tracer.create ?cap:span_cap ();
    metrics = Metrics.create ();
    events = Events.create ?cap:event_cap ();
  }

(* A scoped view shares the tracer and the event ring but stamps the
   base labels onto every metric update — how the CLI labels a whole
   run by scenario and session without threading labels through every
   instrumented call site. *)
let scoped o labels = { o with metrics = Metrics.scoped o.metrics labels }

let span obs ?parent ?attrs name f =
  match obs with
  | None -> f ()
  | Some o -> Tracer.with_span o.tracer ?parent ?attrs name f

let add_attr obs k v =
  match obs with None -> () | Some o -> Tracer.add_attr o.tracer k v

let incr obs ?by ?labels name =
  match obs with None -> () | Some o -> Metrics.incr o.metrics ?by ?labels name

let set_gauge obs ?labels name v =
  match obs with None -> () | Some o -> Metrics.set_gauge o.metrics ?labels name v

let observe obs ?labels name v =
  match obs with None -> () | Some o -> Metrics.observe o.metrics ?labels name v

let event obs ?attrs kind =
  match obs with None -> () | Some o -> Events.record o.events ?attrs kind

let current obs = Option.bind obs (fun o -> Tracer.current o.tracer)
let root obs = Option.bind obs (fun o -> Tracer.root o.tracer)
