type t = { tracer : Tracer.t; metrics : Metrics.t; events : Events.t }

let create () =
  { tracer = Tracer.create (); metrics = Metrics.create (); events = Events.create () }

let span obs ?parent ?attrs name f =
  match obs with
  | None -> f ()
  | Some o -> Tracer.with_span o.tracer ?parent ?attrs name f

let add_attr obs k v =
  match obs with None -> () | Some o -> Tracer.add_attr o.tracer k v

let incr obs ?by name =
  match obs with None -> () | Some o -> Metrics.incr o.metrics ?by name

let set_gauge obs name v =
  match obs with None -> () | Some o -> Metrics.set_gauge o.metrics name v

let observe obs name v =
  match obs with None -> () | Some o -> Metrics.observe o.metrics name v

let event obs ?attrs kind =
  match obs with None -> () | Some o -> Events.record o.events ?attrs kind

let current obs = Option.bind obs (fun o -> Tracer.current o.tracer)
let root obs = Option.bind obs (fun o -> Tracer.root o.tracer)
