(** The structured event log: discrete operational occurrences.

    Where spans time {e regions} and metrics aggregate {e totals},
    events record individual {e facts} — a policy verdict, a privilege
    denial, a lint delta, a schedule decision — as machine-readable
    records with a global sequence number.  Safe to record from any
    domain; the sequence order is the lock-acquisition order.

    The log is a {e capped ring}: only the newest [cap] events are kept
    in memory (default {!default_cap}), so a long-running exporter loop
    cannot leak.  Sequence numbers keep growing past drops — a gap in
    [seq] tells a consumer the ring wrapped — and {!dropped} counts what
    was lost. *)

type event = {
  seq : int;  (** 1-based, in recording order. *)
  kind : string;  (** e.g. ["policy.verdict"], ["privilege.denied"]. *)
  attrs : (string * string) list;
}

type t

val default_cap : int

val create : ?cap:int -> unit -> t
(** [cap] (default {!default_cap}, clamped to ≥ 1) bounds the events
    kept in memory. *)

val record : t -> ?attrs:(string * string) list -> string -> unit

val events : t -> event list
(** The retained tail, oldest first. *)

val length : t -> int
(** Total events ever recorded (not just retained). *)

val dropped : t -> int
(** Events evicted from the ring so far. *)

val cap : t -> int

val event_to_json : event -> Heimdall_json.Json.t
val to_json : t -> Heimdall_json.Json.t

val emit : Sink.t -> event list -> unit
(** One JSON line per event. *)
