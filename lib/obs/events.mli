(** The structured event log: discrete operational occurrences.

    Where spans time {e regions} and metrics aggregate {e totals},
    events record individual {e facts} — a policy verdict, a privilege
    denial, a lint delta, a schedule decision — as machine-readable
    records with a global sequence number.  Safe to record from any
    domain; the sequence order is the lock-acquisition order. *)

type event = {
  seq : int;  (** 1-based, in recording order. *)
  kind : string;  (** e.g. ["policy.verdict"], ["privilege.denied"]. *)
  attrs : (string * string) list;
}

type t

val create : unit -> t

val record : t -> ?attrs:(string * string) list -> string -> unit

val events : t -> event list
(** Oldest first. *)

val length : t -> int

val event_to_json : event -> Heimdall_json.Json.t
val to_json : t -> Heimdall_json.Json.t

val emit : Sink.t -> event list -> unit
(** One JSON line per event. *)
