(** The observability context: one tracer + one metrics registry + one
    event log, threaded through the enforcer pipeline as an [Obs.t
    option].

    Every helper here takes the {e option}: instrumented call sites
    write [Obs.span obs "enforcer.verify" f] and pay nothing (and — the
    determinism invariant — change nothing) when observability is off.
    The context never influences computed values; tier-1 tests assert
    byte-identical verdicts and lint reports with a context present or
    absent, at any engine domain count. *)

type t = {
  tracer : Tracer.t;
  metrics : Metrics.t;
  events : Events.t;
}

val create : ?span_cap:int -> ?event_cap:int -> unit -> t
(** The caps bound the tracer's per-domain finished-span buffers and the
    event ring (see {!Tracer.create} and {!Events.create}) — what keeps
    a long-running exporter loop from leaking. *)

val scoped : t -> (string * string) list -> t
(** A view sharing this context's tracer and event ring whose metric
    updates all carry the given base labels ({!Metrics.scoped}) — e.g.
    [scoped obs [("scenario", "enterprise")]]. *)

(** {1 Option-taking instrumentation helpers} *)

val span :
  t option -> ?parent:int -> ?attrs:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** {!Tracer.with_span} when present, plain [f ()] when absent. *)

val add_attr : t option -> string -> string -> unit
val incr : t option -> ?by:int -> ?labels:(string * string) list -> string -> unit
val set_gauge : t option -> ?labels:(string * string) list -> string -> float -> unit
val observe : t option -> ?labels:(string * string) list -> string -> float -> unit
val event : t option -> ?attrs:(string * string) list -> string -> unit

val current : t option -> int option
(** Innermost open span id on the calling domain. *)

val root : t option -> int option
(** Outermost open span id on the calling domain — what the enforcer
    records in the audit trail to correlate operational traces with the
    tamper-evident chain. *)
