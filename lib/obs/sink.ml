type t = { emit : string -> unit; mutable closer : (unit -> unit) option }

let write t line = t.emit line

let close t =
  match t.closer with
  | None -> ()
  | Some f ->
      t.closer <- None;
      f ()

let null = { emit = (fun _ -> ()); closer = None }

let memory () =
  let lines = ref [] in
  ( { emit = (fun l -> lines := l :: !lines); closer = None },
    fun () -> List.rev !lines )

let file path =
  let oc = open_out path in
  {
    emit =
      (fun l ->
        output_string oc l;
        output_char oc '\n');
    closer = Some (fun () -> close_out oc);
  }

let of_fn ?close emit = { emit; closer = close }
