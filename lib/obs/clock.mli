(** The one duration clock.

    Every timed site in the system — engine phase buckets, workflow step
    compute times, tracer span durations, bench wall clocks — routes
    through this module, so the monotonic-clamping policy lives in
    exactly one place.  [Unix.gettimeofday] is not monotonic: an NTP
    step mid-measurement would otherwise surface as a negative duration
    in reports, spans and histograms. *)

val now_s : unit -> float
(** Raw wall clock in seconds ([Unix.gettimeofday]); {b not} monotonic.
    Only meaningful for differences fed through {!clamp}/{!elapsed}. *)

val clamp : float -> float
(** [max 0.0 d] — a backwards clock step can never yield a negative
    duration. *)

val elapsed : (unit -> 'a) -> 'a * float
(** [elapsed f] runs [f] and returns its result with the wall-clock
    seconds it took, clamped at zero. *)
