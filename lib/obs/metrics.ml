let bucket_count = 64
let bucket_base = 1e-6

(* Bucket i holds samples in (base·2^(i-1), base·2^i]; bucket 0 holds
   everything at or below [bucket_base]. *)
let bucket_of v =
  if v <= bucket_base then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. bucket_base))) in
    min (bucket_count - 1) (max 0 i)

let bucket_upper i = bucket_base *. Float.pow 2.0 (float_of_int i)

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
  buckets : int array;
}

(* A series is a metric name plus a canonical (sorted, deduplicated)
   label set.  Two updates with the same labels in any order hit the
   same series. *)
type series = { sname : string; labels : (string * string) list }

type registry = {
  lock : Mutex.t;
  cnts : (series, int ref) Hashtbl.t;
  gauges : (series, float ref) Hashtbl.t;
  hists : (series, hist) Hashtbl.t;
  helps : (string, string) Hashtbl.t;  (* metric name -> # HELP text *)
}

(* [t] is a view onto a shared registry: {!scoped} returns a new view
   with extra base labels but the same underlying tables, so a scoped
   registry renders into the same exposition page. *)
type t = { reg : registry; base : (string * string) list }

let create () =
  {
    reg =
      {
        lock = Mutex.create ();
        cnts = Hashtbl.create 16;
        gauges = Hashtbl.create 16;
        hists = Hashtbl.create 16;
        helps = Hashtbl.create 8;
      };
    base = [];
  }

(* Sort by key; on duplicate keys the later binding wins (so explicit
   labels override base labels). *)
let canon labels =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let rec dedup = function
    | (k, _) :: ((k', _) :: _ as rest) when k = k' -> dedup rest
    | kv :: rest -> kv :: dedup rest
    | [] -> []
  in
  dedup sorted

let scoped t labels = { t with base = canon (t.base @ labels) }
let base_labels t = t.base

let series_of t name labels =
  match (t.base, labels) with
  | [], [] -> { sname = name; labels = [] }
  | base, labels -> { sname = name; labels = canon (base @ labels) }

let locked t f =
  Mutex.lock t.reg.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg.lock) f

let set_help t name text =
  locked t (fun () -> Hashtbl.replace t.reg.helps name text)

let incr t ?(by = 1) ?(labels = []) name =
  let s = series_of t name labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.reg.cnts s with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.reg.cnts s (ref by))

let set_gauge t ?(labels = []) name v =
  let s = series_of t name labels in
  locked t (fun () ->
      match Hashtbl.find_opt t.reg.gauges s with
      | Some r -> r := v
      | None -> Hashtbl.replace t.reg.gauges s (ref v))

let observe t ?(labels = []) name v =
  let v = Float.max 0.0 v in
  let s = series_of t name labels in
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.reg.hists s with
        | Some h -> h
        | None ->
            let h =
              { count = 0; sum = 0.0; max_v = 0.0; buckets = Array.make bucket_count 0 }
            in
            Hashtbl.replace t.reg.hists s h;
            h
      in
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      h.max_v <- Float.max h.max_v v;
      let i = bucket_of v in
      h.buckets.(i) <- h.buckets.(i) + 1)

(* Without [?labels], a counter read sums every series of that name —
   so a caller that never labels sees exactly the old totals, and a
   labeled family still has one meaningful aggregate. *)
let counter_value t ?labels name =
  locked t (fun () ->
      match labels with
      | Some labels -> (
          match Hashtbl.find_opt t.reg.cnts (series_of t name labels) with
          | Some r -> !r
          | None -> 0)
      | None ->
          Hashtbl.fold
            (fun s r acc -> if s.sname = name then acc + !r else acc)
            t.reg.cnts 0)

let gauge_value t ?(labels = []) name =
  locked t (fun () ->
      Option.map ( ! ) (Hashtbl.find_opt t.reg.gauges (series_of t name labels)))

type summary = { count : int; sum : float; p50 : float; p95 : float; max : float }

let quantile (h : hist) q =
  if h.count = 0 then 0.0
  else begin
    let target = int_of_float (Float.ceil (q *. float_of_int h.count)) in
    let target = max 1 target in
    let rec go i seen =
      if i >= bucket_count then h.max_v
      else
        let seen = seen + h.buckets.(i) in
        if seen >= target then Float.min (bucket_upper i) h.max_v else go (i + 1) seen
    in
    go 0 0
  end

let summary_of (h : hist) =
  { count = h.count; sum = h.sum; p50 = quantile h 0.5; p95 = quantile h 0.95; max = h.max_v }

let histogram_summary t ?(labels = []) name =
  locked t (fun () ->
      Option.map summary_of (Hashtbl.find_opt t.reg.hists (series_of t name labels)))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Label names must match [a-zA-Z_][a-zA-Z0-9_]* (no colons). *)
let sanitize_label name =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Label values: escape backslash, double quote and newline, per the
   exposition format. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text: escape backslash and newline (no quote escaping). *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels ?(extra = []) labels =
  match labels @ extra with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_label k) (escape_label_value v))
             labels)
      ^ "}"

(* The stable, human-readable series key used in JSON and {!counters}:
   the raw name plus the rendered label set. *)
let series_key s = s.sname ^ render_labels s.labels

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (series_key a) (series_key b))

(* Group sorted series into families by metric name, preserving order. *)
let families bindings =
  List.fold_left
    (fun acc ((s, _) as b) ->
      match acc with
      | (name, group) :: rest when name = s.sname -> (name, b :: group) :: rest
      | _ -> (s.sname, [ b ]) :: acc)
    [] bindings
  |> List.rev_map (fun (name, group) -> (name, List.rev group))

let counters t =
  locked t (fun () ->
      List.map (fun (s, r) -> (series_key s, !r)) (sorted_bindings t.reg.cnts))

let to_prometheus t =
  locked t (fun () ->
      let buf = Buffer.create 512 in
      let header name kind =
        let n = sanitize name in
        let help =
          match Hashtbl.find_opt t.reg.helps name with
          | Some h -> escape_help h
          | None -> escape_help name
        in
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" n help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n kind);
        n
      in
      List.iter
        (fun (name, group) ->
          let n = header name "counter" in
          List.iter
            (fun (s, r) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" n (render_labels s.labels) !r))
            group)
        (families (sorted_bindings t.reg.cnts));
      List.iter
        (fun (name, group) ->
          let n = header name "gauge" in
          List.iter
            (fun (s, r) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %g\n" n (render_labels s.labels) !r))
            group)
        (families (sorted_bindings t.reg.gauges));
      List.iter
        (fun (name, group) ->
          let n = header name "summary" in
          List.iter
            (fun (s, h) ->
              let sm = summary_of h in
              let series q =
                render_labels ~extra:[ ("quantile", q) ] s.labels
              in
              Buffer.add_string buf
                (Printf.sprintf
                   "%s%s %g\n%s%s %g\n%s%s %g\n%s_sum%s %g\n%s_count%s %d\n" n
                   (series "0.5") sm.p50 n (series "0.95") sm.p95 n (series "1")
                   sm.max n
                   (render_labels s.labels)
                   sm.sum n
                   (render_labels s.labels)
                   sm.count))
            group)
        (families (sorted_bindings t.reg.hists));
      Buffer.contents buf)

module Json = Heimdall_json.Json

let to_json t =
  locked t (fun () ->
      Json.Obj
        [
          ( "counters",
            Json.Obj
              (List.map
                 (fun (s, r) -> (series_key s, Json.Int !r))
                 (sorted_bindings t.reg.cnts)) );
          ( "gauges",
            Json.Obj
              (List.map
                 (fun (s, r) -> (series_key s, Json.Float !r))
                 (sorted_bindings t.reg.gauges)) );
          ( "histograms",
            Json.Obj
              (List.map
                 (fun (s, h) ->
                   let sm = summary_of h in
                   ( series_key s,
                     Json.Obj
                       [
                         ("count", Json.Int sm.count);
                         ("sum", Json.Float sm.sum);
                         ("p50", Json.Float sm.p50);
                         ("p95", Json.Float sm.p95);
                         ("max", Json.Float sm.max);
                       ] ))
                 (sorted_bindings t.reg.hists)) );
        ])
