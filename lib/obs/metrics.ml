let bucket_count = 64
let bucket_base = 1e-6

(* Bucket i holds samples in (base·2^(i-1), base·2^i]; bucket 0 holds
   everything at or below [bucket_base]. *)
let bucket_of v =
  if v <= bucket_base then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 (v /. bucket_base))) in
    min (bucket_count - 1) (max 0 i)

let bucket_upper i = bucket_base *. Float.pow 2.0 (float_of_int i)

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
  buckets : int array;
}

type t = {
  lock : Mutex.t;
  cnts : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    cnts = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr t ?(by = 1) name =
  locked t (fun () ->
      match Hashtbl.find_opt t.cnts name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.cnts name (ref by))

let set_gauge t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let observe t name v =
  let v = Float.max 0.0 v in
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.hists name with
        | Some h -> h
        | None ->
            let h =
              { count = 0; sum = 0.0; max_v = 0.0; buckets = Array.make bucket_count 0 }
            in
            Hashtbl.replace t.hists name h;
            h
      in
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      h.max_v <- Float.max h.max_v v;
      let i = bucket_of v in
      h.buckets.(i) <- h.buckets.(i) + 1)

let counter_value t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.cnts name with Some r -> !r | None -> 0)

let gauge_value t name =
  locked t (fun () -> Option.map ( ! ) (Hashtbl.find_opt t.gauges name))

type summary = { count : int; sum : float; p50 : float; p95 : float; max : float }

let quantile (h : hist) q =
  if h.count = 0 then 0.0
  else begin
    let target = int_of_float (Float.ceil (q *. float_of_int h.count)) in
    let target = max 1 target in
    let rec go i seen =
      if i >= bucket_count then h.max_v
      else
        let seen = seen + h.buckets.(i) in
        if seen >= target then Float.min (bucket_upper i) h.max_v else go (i + 1) seen
    in
    go 0 0
  end

let summary_of (h : hist) =
  { count = h.count; sum = h.sum; p50 = quantile h 0.5; p95 = quantile h 0.95; max = h.max_v }

let histogram_summary t name =
  locked t (fun () -> Option.map summary_of (Hashtbl.find_opt t.hists name))

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  locked t (fun () -> List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.cnts))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let to_prometheus t =
  locked t (fun () ->
      let buf = Buffer.create 512 in
      List.iter
        (fun (name, r) ->
          let n = sanitize name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n !r))
        (sorted_bindings t.cnts);
      List.iter
        (fun (name, r) ->
          let n = sanitize name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" n n !r))
        (sorted_bindings t.gauges);
      List.iter
        (fun (name, h) ->
          let n = sanitize name in
          let s = summary_of h in
          Buffer.add_string buf
            (Printf.sprintf
               "# TYPE %s summary\n\
                %s{quantile=\"0.5\"} %g\n\
                %s{quantile=\"0.95\"} %g\n\
                %s{quantile=\"1\"} %g\n\
                %s_sum %g\n\
                %s_count %d\n"
               n n s.p50 n s.p95 n s.max n s.sum n s.count))
        (sorted_bindings t.hists);
      Buffer.contents buf)

module Json = Heimdall_json.Json

let to_json t =
  locked t (fun () ->
      Json.Obj
        [
          ( "counters",
            Json.Obj
              (List.map (fun (k, r) -> (k, Json.Int !r)) (sorted_bindings t.cnts)) );
          ( "gauges",
            Json.Obj
              (List.map (fun (k, r) -> (k, Json.Float !r)) (sorted_bindings t.gauges)) );
          ( "histograms",
            Json.Obj
              (List.map
                 (fun (k, h) ->
                   let s = summary_of h in
                   ( k,
                     Json.Obj
                       [
                         ("count", Json.Int s.count);
                         ("sum", Json.Float s.sum);
                         ("p50", Json.Float s.p50);
                         ("p95", Json.Float s.p95);
                         ("max", Json.Float s.max);
                       ] ))
                 (sorted_bindings t.hists)) );
        ])
