type event = { seq : int; kind : string; attrs : (string * string) list }

let default_cap = 8192

(* A capped ring: the newest [cap] events are kept, older ones are
   dropped (counted).  [count] keeps the global sequence number growing
   past drops, so consumers can detect gaps. *)
type t = {
  lock : Mutex.t;
  ring : event Queue.t;
  cap : int;
  mutable count : int;
  mutable dropped : int;
}

let create ?(cap = default_cap) () =
  {
    lock = Mutex.create ();
    ring = Queue.create ();
    cap = max 1 cap;
    count = 0;
    dropped = 0;
  }

let record t ?(attrs = []) kind =
  Mutex.lock t.lock;
  t.count <- t.count + 1;
  if Queue.length t.ring >= t.cap then begin
    ignore (Queue.pop t.ring);
    t.dropped <- t.dropped + 1
  end;
  Queue.push { seq = t.count; kind; attrs } t.ring;
  Mutex.unlock t.lock

let events t =
  Mutex.lock t.lock;
  let es = List.of_seq (Queue.to_seq t.ring) in
  Mutex.unlock t.lock;
  es

let length t = t.count
let dropped t = t.dropped
let cap t = t.cap

module Json = Heimdall_json.Json

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("kind", Json.String e.kind);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.attrs));
    ]

let to_json t = Json.List (List.map event_to_json (events t))

let emit sink es =
  List.iter (fun e -> Sink.write sink (Json.to_string (event_to_json e))) es
