type event = { seq : int; kind : string; attrs : (string * string) list }

type t = { lock : Mutex.t; mutable entries : event list; mutable count : int }

let create () = { lock = Mutex.create (); entries = []; count = 0 }

let record t ?(attrs = []) kind =
  Mutex.lock t.lock;
  t.count <- t.count + 1;
  t.entries <- { seq = t.count; kind; attrs } :: t.entries;
  Mutex.unlock t.lock

let events t =
  Mutex.lock t.lock;
  let es = List.rev t.entries in
  Mutex.unlock t.lock;
  es

let length t = t.count

module Json = Heimdall_json.Json

let event_to_json e =
  Json.Obj
    [
      ("seq", Json.Int e.seq);
      ("kind", Json.String e.kind);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.attrs));
    ]

let to_json t = Json.List (List.map event_to_json (events t))

let emit sink es =
  List.iter (fun e -> Sink.write sink (Json.to_string (event_to_json e))) es
