type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * string) list;
}

type frame = {
  fid : int;
  fname : string;
  fparent : int option;
  t0 : float;
  mutable fattrs : (string * string) list;  (* newest first *)
}

(* One buffer per domain: only its own domain ever mutates it, so the
   tracer lock is held just long enough to look the buffer up. *)
type buf = {
  mutable finished : span list;  (* newest first *)
  mutable finished_len : int;
  mutable stack : frame list;
}

let default_cap = 4096

type t = {
  epoch : float;
  next_id : int Atomic.t;
  lock : Mutex.t;
  bufs : (int, buf) Hashtbl.t;  (* domain id -> buffer *)
  cap : int;  (* finished spans retained per domain buffer *)
  dropped_spans : int Atomic.t;
}

let create ?(cap = default_cap) () =
  {
    epoch = Clock.now_s ();
    next_id = Atomic.make 1;
    lock = Mutex.create ();
    bufs = Hashtbl.create 8;
    cap = max 1 cap;
    dropped_spans = Atomic.make 0;
  }

let dropped t = Atomic.get t.dropped_spans

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let buf_of t =
  let d = (Domain.self () :> int) in
  locked t (fun () ->
      match Hashtbl.find_opt t.bufs d with
      | Some b -> b
      | None ->
          let b = { finished = []; finished_len = 0; stack = [] } in
          Hashtbl.replace t.bufs d b;
          b)

(* Amortized cap: let the newest-first list grow to 2·cap, then cut it
   back to the newest cap — O(cap) once per cap finishes, O(1)
   amortized.  The buffer therefore retains between cap and 2·cap
   finished spans; everything older is dropped and counted. *)
let push_finished t b s =
  b.finished <- s :: b.finished;
  b.finished_len <- b.finished_len + 1;
  if b.finished_len >= 2 * t.cap then begin
    let keep = ref [] and n = ref 0 in
    List.iteri
      (fun i s -> if i < t.cap then (incr n; keep := s :: !keep))
      b.finished;
    let dropped = b.finished_len - !n in
    b.finished <- List.rev !keep;
    b.finished_len <- !n;
    ignore (Atomic.fetch_and_add t.dropped_spans dropped)
  end

let current t = match (buf_of t).stack with [] -> None | f :: _ -> Some f.fid

let root t =
  match (buf_of t).stack with
  | [] -> None
  | stack -> Some (List.nth stack (List.length stack - 1)).fid

let add_attr t k v =
  match (buf_of t).stack with
  | [] -> ()
  | f :: _ -> f.fattrs <- (k, v) :: f.fattrs

let with_span t ?parent ?(attrs = []) name f =
  let b = buf_of t in
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match b.stack with [] -> None | fr :: _ -> Some fr.fid)
  in
  let fr =
    {
      fid = Atomic.fetch_and_add t.next_id 1;
      fname = name;
      fparent = parent;
      t0 = Clock.now_s ();
      fattrs = List.rev attrs;
    }
  in
  b.stack <- fr :: b.stack;
  Fun.protect
    ~finally:(fun () ->
      let duration_s = Clock.clamp (Clock.now_s () -. fr.t0) in
      (* Pop even if an inner span leaked (exception unwound past it). *)
      b.stack <- List.filter (fun fr' -> fr' != fr && fr'.fid < fr.fid) b.stack;
      push_finished t b
        {
          id = fr.fid;
          parent = fr.fparent;
          name = fr.fname;
          start_s = Clock.clamp (fr.t0 -. t.epoch);
          duration_s;
          attrs = List.rev fr.fattrs;
        })
    f

let flush t =
  let spans =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ b acc ->
            let s = b.finished in
            b.finished <- [];
            b.finished_len <- 0;
            List.rev_append s acc)
          t.bufs [])
  in
  List.sort (fun a b -> compare a.id b.id) spans

(* Non-destructive snapshot: what a live exporter endpoint serves
   without stealing the spans from a later [flush]. *)
let recent t =
  let spans =
    locked t (fun () ->
        Hashtbl.fold (fun _ b acc -> List.rev_append b.finished acc) t.bufs [])
  in
  List.sort (fun a b -> compare a.id b.id) spans

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

module Json = Heimdall_json.Json

let span_to_json s =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("parent", match s.parent with None -> Json.Null | Some p -> Json.Int p);
      ("name", Json.String s.name);
      ("start_s", Json.Float s.start_s);
      ("duration_s", Json.Float s.duration_s);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs));
    ]

let span_of_json json =
  let ( let* ) = Option.bind in
  let* id = Option.bind (Json.member "id" json) Json.to_int_opt in
  let parent =
    match Json.member "parent" json with
    | Some (Json.Int p) -> Some p
    | _ -> None
  in
  let* name = Option.bind (Json.member "name" json) Json.to_string_opt in
  let* start_s = Option.bind (Json.member "start_s" json) Json.to_float_opt in
  let* duration_s = Option.bind (Json.member "duration_s" json) Json.to_float_opt in
  let attrs =
    match Json.member "attrs" json with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string_opt v))
          fields
    | _ -> []
  in
  Some { id; parent; name; start_s; duration_s; attrs }

let emit sink spans =
  List.iter (fun s -> Sink.write sink (Json.to_string (span_to_json s))) spans

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_tree spans =
  let ids = List.map (fun s -> s.id) spans in
  let children parent =
    List.filter
      (fun s ->
        match s.parent with
        | Some p -> Some p = parent && List.mem p ids
        | None -> parent = None)
      spans
  in
  (* A span whose parent is absent from the list still renders, as a root. *)
  let roots =
    List.filter
      (fun s ->
        match s.parent with None -> true | Some p -> not (List.mem p ids))
      spans
  in
  let buf = Buffer.create 256 in
  let rec go depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%s #%d  %.4f s%s\n"
         (String.make (2 * depth) ' ')
         s.name s.id s.duration_s
         (match s.attrs with
         | [] -> ""
         | attrs ->
             "  ["
             ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
             ^ "]"));
    List.iter (go (depth + 1)) (children (Some s.id))
  in
  List.iter (go 0) roots;
  Buffer.contents buf
