(** The runtime sampler: a background thread that periodically folds
    process-health gauges into an {!Obs.t}'s metrics registry, so the
    exporter's [/metrics] page reflects the live process and not just
    the instrumented pipeline.

    Each tick writes:
    - GC gauges from [Gc.quick_stat]: [runtime.gc.heap_words],
      [runtime.gc.minor_words], [runtime.gc.minor_collections],
      [runtime.gc.major_collections], [runtime.gc.compactions];
    - the context's own buffer pressure: [obs.events.length],
      [obs.events.dropped], [obs.spans.dropped];
    - every registered {!sampler}'s [(gauge name, value)] pairs — e.g.
      [Heimdall_verify.Engine.runtime_sampler] for pool and cache-hit
      gauges.

    Sampling only reads the sampled systems, so it cannot perturb
    verdicts.  A sampler that raises is skipped for that tick. *)

type t

type sampler = unit -> (string * float) list

val create : ?interval_s:float -> Obs.t -> t
(** [interval_s] (default 1.0, clamped to ≥ 0.05) is the tick period
    once {!start}ed. *)

val add_sampler : t -> sampler -> unit
(** Append a sampler; run in registration order on every tick. *)

val sample : t -> unit
(** One synchronous tick — what [serve --once] and tests use instead of
    the background thread. *)

val start : t -> unit
(** Spawn the ticking thread (first tick immediately).  Idempotent. *)

val stop : t -> unit
(** Stop and join the ticking thread.  Idempotent; safe without
    {!start}. *)
