(** Heimdall: least privilege for managed network services.

    This is the library façade: it re-exports every subsystem under one
    roof and provides the one-call entry points a downstream user needs
    to run the full workflow.  See README.md for a guided tour.

    - {!Net}: addresses, prefixes, topology, ACLs, flows
    - {!Config}: the device configuration language
    - {!Control}: control-plane simulation (OSPF/BGP/static) and dataplanes
    - {!Verify}: flow tracing, policies, the spec miner
    - {!Privilege}: the Privilege_msp DSL and evaluator
    - {!Lint}: static analysis over configs, ACLs and privilege specs
    - {!Twin}: twin-network slicing, emulation, reference monitor
    - {!Enforcer}: verification, scheduling, audit, enclave
    - {!Msp}: tickets, workflows, the RMM baseline, attack scenarios
    - {!Scenarios}: the two Table-1 evaluation networks and their issues *)

module Net = struct
  module Ipv4 = Heimdall_net.Ipv4
  module Prefix = Heimdall_net.Prefix
  module Ifaddr = Heimdall_net.Ifaddr
  module Prefix_trie = Heimdall_net.Prefix_trie
  module Graph = Heimdall_net.Graph
  module Topology = Heimdall_net.Topology
  module Flow = Heimdall_net.Flow
  module Acl = Heimdall_net.Acl
end

module Json = Heimdall_json.Json

module Config = struct
  module Ast = Heimdall_config.Ast
  module Parser = Heimdall_config.Parser
  module Printer = Heimdall_config.Printer
  module Change = Heimdall_config.Change
  module Redact = Heimdall_config.Redact
end

module Control = struct
  module Network = Heimdall_control.Network
  module L2 = Heimdall_control.L2
  module Fib = Heimdall_control.Fib
  module Ospf = Heimdall_control.Ospf
  module Bgp = Heimdall_control.Bgp
  module Dataplane = Heimdall_control.Dataplane
  module Loader = Heimdall_control.Loader
end

module Verify = struct
  module Trace = Heimdall_verify.Trace
  module Policy = Heimdall_verify.Policy
  module Spec_miner = Heimdall_verify.Spec_miner
  module Reachability = Heimdall_verify.Reachability
end

module Privilege = struct
  module Action = Heimdall_privilege.Action
  module Spec = Heimdall_privilege.Privilege
  module Dsl = Heimdall_privilege.Dsl
  module Json_frontend = Heimdall_privilege.Json_frontend
end

module Lint = struct
  module Diagnostic = Heimdall_lint.Diagnostic
  module Config_lint = Heimdall_lint.Config_lint
  module Acl_lint = Heimdall_lint.Acl_lint
  module Priv_lint = Heimdall_lint.Priv_lint
  module Check = Heimdall_lint.Lint
end

module Twin = struct
  module Command = Heimdall_twin.Command
  module Slicer = Heimdall_twin.Slicer
  module Emulation = Heimdall_twin.Emulation
  module Presentation = Heimdall_twin.Presentation
  module Session = Heimdall_twin.Session
  module Build = Heimdall_twin.Twin
end

module Enforcer = struct
  module Sha256 = Heimdall_enforcer.Sha256
  module Audit = Heimdall_enforcer.Audit
  module Enclave = Heimdall_enforcer.Enclave
  module Verifier = Heimdall_enforcer.Verifier
  module Scheduler = Heimdall_enforcer.Scheduler
  module Pipeline = Heimdall_enforcer.Enforcer
end

module Msp = struct
  module Ticket = Heimdall_msp.Ticket
  module Issue = Heimdall_msp.Issue
  module Priv_gen = Heimdall_msp.Priv_gen
  module Rmm = Heimdall_msp.Rmm
  module Timing = Heimdall_msp.Timing
  module Workflow = Heimdall_msp.Workflow
  module Attacks = Heimdall_msp.Attacks
  module Emergency = Heimdall_msp.Emergency
  module Escalation = Heimdall_msp.Escalation
end

module Sdn = struct
  module Rule = Heimdall_sdn.Rule
  module Fabric = Heimdall_sdn.Fabric
  module Controller = Heimdall_sdn.Controller
  module Twin_sdn = Heimdall_sdn.Twin_sdn
end

module Scenarios = struct
  module Builder = Heimdall_scenarios.Builder
  module Enterprise = Heimdall_scenarios.Enterprise
  module University = Heimdall_scenarios.University
  module Metrics = Heimdall_scenarios.Metrics
  module Campaign = Heimdall_scenarios.Campaign
  module Experiments = Heimdall_scenarios.Experiments
end

(** {1 One-call workflow entry points} *)

(** Resolve a ticket the Heimdall way on the given production network:
    returns the instrumented run (twin, session, enforcer outcome). *)
let resolve_with_heimdall ?strategy ~production ~policies ~issue () =
  Heimdall_msp.Workflow.run_heimdall ?strategy ~production ~policies ~issue ()

(** Resolve a ticket the status-quo way (direct access). *)
let resolve_with_direct_access ~production ~issue =
  Heimdall_msp.Workflow.run_current ~production ~issue

(** Mine the policy set of a network (config2spec stand-in). *)
let mine_policies ?options network =
  Heimdall_verify.Spec_miner.mine ?options (Heimdall_control.Dataplane.compute network)
