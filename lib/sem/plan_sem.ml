open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_privilege

type section =
  | Iface of string
  | Acl of string
  | Routing
  | Ospf
  | Vlans
  | Secrets

let section_rank = function
  | Iface _ -> 0
  | Acl _ -> 1
  | Routing -> 2
  | Ospf -> 3
  | Vlans -> 4
  | Secrets -> 5

let section_compare a b =
  match (a, b) with
  | Iface x, Iface y -> String.compare x y
  | Acl x, Acl y -> String.compare x y
  | _ -> Int.compare (section_rank a) (section_rank b)

let section_to_string = function
  | Iface i -> "interface " ^ i
  | Acl a -> "acl " ^ a
  | Routing -> "routing"
  | Ospf -> "ospf"
  | Vlans -> "vlans"
  | Secrets -> "secrets"

type requirement = {
  req_action : Action.t;
  req_node : string;
  req_iface : string option;
  source : string;
}

let requirement_compare a b =
  match String.compare a.req_node b.req_node with
  | 0 -> (
      match String.compare a.req_action b.req_action with
      | 0 -> compare a.req_iface b.req_iface
      | c -> c)
  | c -> c

let requirement_to_string r =
  Printf.sprintf "%s on %s%s" r.req_action r.req_node
    (match r.req_iface with Some i -> ":" ^ i | None -> "")

type effect_sig = {
  change : Change.t;
  section : section;
  action : Action.t;
  iface : string option;
  delta : Packet_set.t;
}

(* The one place the static analysis and the runtime monitors must agree:
   a change's privilege request is built with the same construction
   [Session.exec] and [Verifier.privilege_rejections] use, so "statically
   sufficient" can never disagree with replay about a single change. *)
let op_requirement (c : Change.t) =
  {
    req_action = Change.op_action_name c.op;
    req_node = c.node;
    req_iface = Change.target_iface c.op;
    source = Change.to_string c;
  }

let section_of_op (op : Change.op) =
  match op with
  | Change.Set_interface_enabled { iface; _ }
  | Change.Set_interface_addr { iface; _ }
  | Change.Set_interface_description { iface; _ }
  | Change.Set_ospf_cost { iface; _ }
  | Change.Set_ospf_area { iface; _ }
  | Change.Set_switchport { iface; _ }
  | Change.Set_acl_binding { iface; _ } ->
      Iface iface
  | Change.Acl_set_rule { acl; _ }
  | Change.Acl_remove_rule { acl; _ }
  | Change.Acl_remove { acl } ->
      Acl acl
  | Change.Add_static_route _ | Change.Remove_static_route _
  | Change.Set_default_gateway _ ->
      Routing
  | Change.Ospf_set_network _ | Change.Ospf_remove_network _ -> Ospf
  | Change.Set_vlan_name _ -> Vlans
  | Change.Set_secret _ -> Secrets

(* ACL-content knowledge threaded through the plan: what we know each
   (device, acl) holds at every program point.  Seeded from the baseline
   network when available, updated by the plan's own ACL edits.  [None]
   means "contents unknown" and forces the conservative [full] delta. *)
module Smap = Map.Make (String)

let acl_key node acl = node ^ "\000" ^ acl

let baseline_rules network node acl =
  match network with
  | None -> None
  | Some net -> (
      match Network.config node net with
      | None -> None
      | Some cfg -> (
          match Ast.find_acl acl cfg with
          | Some (a : Heimdall_net.Acl.t) -> Some a.rules
          | None -> Some []))

let known_rules network state node acl =
  match Smap.find_opt (acl_key node acl) state with
  | Some rules -> Some rules
  | None -> baseline_rules network node acl

let rules_packets rules =
  List.fold_left
    (fun acc r -> Packet_set.union acc (Heimdall_net.Acl.rule_packets r))
    Packet_set.empty rules

let find_rule_seq seq rules =
  List.find_opt (fun (r : Heimdall_net.Acl.rule) -> r.seq = seq) rules

(* Delta of one op given the knowledge state, plus the updated state.
   Everything that can redirect arbitrary traffic (interface state and
   addressing, switchports, bindings, OSPF, routing defaults) is [full];
   the interesting tightening is ACL rule edits, where the affected
   packets are exactly the touched rules' match sets. *)
let op_delta network state (c : Change.t) =
  let keep d = (d, state) in
  match c.op with
  | Change.Set_interface_description _ -> keep Packet_set.empty
  | Change.Set_vlan_name { name = Some _; _ } -> keep Packet_set.empty
  | Change.Set_secret _ -> keep Packet_set.empty
  | Change.Set_vlan_name { name = None; _ } -> keep Packet_set.full
  | Change.Set_interface_enabled _ | Change.Set_interface_addr _
  | Change.Set_ospf_cost _ | Change.Set_ospf_area _ | Change.Set_switchport _
  | Change.Set_acl_binding _ | Change.Set_default_gateway _
  | Change.Ospf_set_network _ | Change.Ospf_remove_network _ ->
      keep Packet_set.full
  | Change.Add_static_route { sr_prefix; _ } ->
      keep (Packet_set.cube ~src:Prefix.any ~dst:sr_prefix ())
  | Change.Remove_static_route { prefix; _ } ->
      keep (Packet_set.cube ~src:Prefix.any ~dst:prefix ())
  | Change.Acl_set_rule { acl; rule } -> (
      let added = Heimdall_net.Acl.rule_packets rule in
      match known_rules network state c.node acl with
      | None -> keep Packet_set.full
      | Some rules ->
          let replaced =
            match find_rule_seq rule.seq rules with
            | Some old -> Heimdall_net.Acl.rule_packets old
            | None -> Packet_set.empty
          in
          let rules' =
            rule
            :: List.filter
                 (fun (r : Heimdall_net.Acl.rule) -> r.seq <> rule.seq)
                 rules
          in
          ( Packet_set.union added replaced,
            Smap.add (acl_key c.node acl) rules' state ))
  | Change.Acl_remove_rule { acl; seq } -> (
      match known_rules network state c.node acl with
      | None -> keep Packet_set.full
      | Some rules ->
          let removed =
            match find_rule_seq seq rules with
            | Some r -> Heimdall_net.Acl.rule_packets r
            | None -> Packet_set.empty
          in
          let rules' =
            List.filter (fun (r : Heimdall_net.Acl.rule) -> r.seq <> seq) rules
          in
          (removed, Smap.add (acl_key c.node acl) rules' state))
  | Change.Acl_remove { acl } -> (
      match known_rules network state c.node acl with
      | None -> keep Packet_set.full
      | Some rules -> (rules_packets rules, Smap.add (acl_key c.node acl) [] state))

(* Write slot an op races for.  Two structurally different ops on the
   same slot contradict each other (the later silently wins); [None]
   means the op has no single slot worth racing on. *)
let write_slot (c : Change.t) =
  let iface_slot iface field = Some (c.node ^ ":" ^ iface ^ "#" ^ field) in
  match c.op with
  | Change.Set_interface_enabled { iface; _ } -> iface_slot iface "enabled"
  | Change.Set_interface_addr { iface; _ } -> iface_slot iface "addr"
  | Change.Set_interface_description { iface; _ } -> iface_slot iface "description"
  | Change.Set_ospf_cost { iface; _ } -> iface_slot iface "ospf-cost"
  | Change.Set_ospf_area { iface; _ } -> iface_slot iface "ospf-area"
  | Change.Set_switchport { iface; _ } -> iface_slot iface "switchport"
  | Change.Set_acl_binding { iface; dir; _ } ->
      iface_slot iface
        (match dir with `In -> "acl-in" | `Out -> "acl-out")
  | Change.Acl_set_rule { acl; rule } ->
      Some (Printf.sprintf "%s:%s#rule %d" c.node acl rule.seq)
  | Change.Acl_remove_rule { acl; seq } ->
      Some (Printf.sprintf "%s:%s#rule %d" c.node acl seq)
  | Change.Acl_remove _ -> None
  | Change.Add_static_route { sr_prefix; sr_next_hop; _ } ->
      Some
        (Printf.sprintf "%s#route %s via %s" c.node
           (Prefix.to_string sr_prefix) (Ipv4.to_string sr_next_hop))
  | Change.Remove_static_route { prefix; next_hop } ->
      Some
        (Printf.sprintf "%s#route %s via %s" c.node (Prefix.to_string prefix)
           (Ipv4.to_string next_hop))
  | Change.Set_default_gateway _ -> Some (c.node ^ "#default-gateway")
  | Change.Ospf_set_network { prefix; _ } ->
      Some (Printf.sprintf "%s#ospf network %s" c.node (Prefix.to_string prefix))
  | Change.Ospf_remove_network { prefix } ->
      Some (Printf.sprintf "%s#ospf network %s" c.node (Prefix.to_string prefix))
  | Change.Set_vlan_name { vlan; _ } ->
      Some (Printf.sprintf "%s#vlan %d" c.node vlan)
  | Change.Set_secret s ->
      let slot =
        match s with
        | Ast.Ipsec_key (_, peer) ->
            Ast.secret_kind s ^ " " ^ Ipv4.to_string peer
        | Ast.User_password (user, _) -> Ast.secret_kind s ^ " " ^ user
        | _ -> Ast.secret_kind s
      in
      Some (c.node ^ "#" ^ slot)

let contradictions changes =
  let slots =
    List.filter_map
      (fun c -> Option.map (fun s -> (s, c)) (write_slot c))
      changes
  in
  let keys = List.sort_uniq String.compare (List.map fst slots) in
  List.filter_map
    (fun key ->
      let racing = List.filter_map (fun (k, c) -> if k = key then Some c else None) slots in
      match racing with
      | _ :: _ :: _ when not (List.for_all (fun c -> c = List.hd racing) racing) ->
          Some (key, racing)
      | _ -> None)
    keys

(* Exact dead-op detection: position [i] is dead iff the plan without it
   still applies cleanly and produces structurally equal configs on every
   touched device.  Quadratic in plan length, which plans are short enough
   to afford — and "exact" beats any syntactic overwrite heuristic (it
   catches sets of already-present values for free). *)
let dead_ops network changes =
  match network with
  | None -> []
  | Some net -> (
      let lookup n = Network.config n net in
      match Change.apply_all changes lookup with
      | Error _ -> []
      | Ok full ->
          let config_of results node =
            match List.assoc_opt node results with
            | Some cfg -> Some cfg
            | None -> lookup node
          in
          let nodes =
            List.sort_uniq String.compare (List.map (fun (c : Change.t) -> c.node) changes)
          in
          List.concat
            (List.mapi
               (fun i c ->
                 let without = List.filteri (fun j _ -> j <> i) changes in
                 match Change.apply_all without lookup with
                 | Error _ -> []
                 | Ok partial ->
                     let same =
                       List.for_all
                         (fun node ->
                           match (config_of full node, config_of partial node) with
                           | Some a, Some b -> Ast.equal a b
                           | None, None -> true
                           | _ -> false)
                         nodes
                     in
                     if same then [ (i, c) ] else [])
               changes))

type t = {
  changes : Change.t list;
  effects : effect_sig list;
  footprint : (string * section) list;
  requirements : requirement list;
  delta : Packet_set.t;
  device_deltas : (string * Packet_set.t) list;
  dead : (int * Change.t) list;
  contradictions : (string * Change.t list) list;
}

let analyze ?network changes =
  let effects =
    let rec go state acc = function
      | [] -> List.rev acc
      | (c : Change.t) :: rest ->
          let delta, state' = op_delta network state c in
          let e =
            {
              change = c;
              section = section_of_op c.op;
              action = Change.op_action_name c.op;
              iface = Change.target_iface c.op;
              delta;
            }
          in
          go state' (e :: acc) rest
    in
    go Smap.empty [] changes
  in
  let footprint =
    List.sort_uniq
      (fun (n, s) (n', s') ->
        match String.compare n n' with 0 -> section_compare s s' | c -> c)
      (List.map (fun (e : effect_sig) -> (e.change.Change.node, e.section)) effects)
  in
  let requirements =
    List.sort_uniq requirement_compare (List.map op_requirement changes)
  in
  let delta =
    List.fold_left
      (fun acc (e : effect_sig) -> Packet_set.union acc e.delta)
      Packet_set.empty effects
  in
  let device_deltas =
    let nodes =
      List.sort_uniq String.compare (List.map (fun (c : Change.t) -> c.node) changes)
    in
    List.filter_map
      (fun node ->
        let d =
          List.fold_left
            (fun acc (e : effect_sig) ->
              if e.change.Change.node = node then Packet_set.union acc e.delta
              else acc)
            Packet_set.empty effects
        in
        if Packet_set.is_empty d then None else Some (node, d))
      nodes
  in
  {
    changes;
    effects;
    footprint;
    requirements;
    delta;
    device_deltas;
    dead = dead_ops network changes;
    contradictions = contradictions changes;
  }

let footprint_to_string fp =
  String.concat ", "
    (List.map (fun (node, s) -> node ^ "/" ^ section_to_string s) fp)

type script = {
  commands : string list;
  script_changes : Change.t list;
  script_requirements : requirement list;
  script_errors : (string * string) list;
}

(* Mirror of [Session.exec]'s scoping: connect names its own target,
   disconnect falls back to "-" when nothing is connected, everything
   else needs a connected device. *)
let script_of_commands commands =
  let rec go connected changes reqs errs = function
    | [] ->
        {
          commands;
          script_changes = List.rev changes;
          script_requirements = List.rev reqs;
          script_errors = List.rev errs;
        }
    | line :: rest -> (
        match Heimdall_twin.Command.parse_result line with
        | Error m -> go connected changes reqs ((line, m) :: errs) rest
        | Ok cmd -> (
            let scope =
              match cmd with
              | Heimdall_twin.Command.Connect n -> Some n
              | Heimdall_twin.Command.Disconnect ->
                  Some (Option.value connected ~default:"-")
              | _ -> connected
            in
            match scope with
            | None ->
                go connected changes reqs
                  ((line, "no connected device") :: errs)
                  rest
            | Some node ->
                let req =
                  {
                    req_action = Heimdall_twin.Command.action_name cmd;
                    req_node = node;
                    req_iface = Heimdall_twin.Command.target_iface cmd;
                    source = line;
                  }
                in
                let changes' =
                  match cmd with
                  | Heimdall_twin.Command.Configure op ->
                      Change.v node op :: changes
                  | _ -> changes
                in
                let connected' =
                  match cmd with
                  | Heimdall_twin.Command.Connect n -> Some n
                  | Heimdall_twin.Command.Disconnect -> None
                  | _ -> connected
                in
                go connected' changes' (req :: reqs) errs rest))
  in
  go None [] [] [] commands

let plan_requirements ?network script =
  (* A diff can normalize a scripted op into a different action (e.g.
     removing an ACL's last rule resurfaces as [acl.remove]), and the
     enforcer's verifier checks the *diff*, not the script — so the
     static privilege surface must include both. *)
  let diff_reqs =
    match network with
    | None -> []
    | Some net -> (
        let lookup n = Network.config n net in
        match Change.apply_all script.script_changes lookup with
        | Error _ -> []
        | Ok updated ->
            List.concat_map
              (fun (node, after) ->
                match lookup node with
                | None -> []
                | Some before ->
                    List.map op_requirement (Change.diff ~node before after))
              updated)
  in
  List.sort_uniq requirement_compare (script.script_requirements @ diff_reqs)

type proof = {
  sufficient : bool;
  missing : requirement list;
  unneeded : (int * Privilege.predicate) list;
}

let request_of_requirement r =
  Privilege.request ?iface:r.req_iface r.req_action r.req_node

let deciding_predicate (spec : Privilege.t) req =
  let rec go i = function
    | [] -> None
    | p :: rest ->
        if Privilege.predicate_matches p req then Some i else go (i + 1) rest
  in
  go 0 spec.predicates

let prove ~spec requirements =
  let missing =
    List.sort_uniq requirement_compare
      (List.filter
         (fun r -> not (Privilege.allows spec (request_of_requirement r)))
         requirements)
  in
  let used =
    List.filter_map
      (fun r -> deciding_predicate spec (request_of_requirement r))
      requirements
  in
  let unneeded =
    List.mapi (fun i p -> (i, p)) spec.Privilege.predicates
    |> List.filter (fun (i, (p : Privilege.predicate)) ->
           p.effect = Privilege.Allow && not (List.mem i used))
  in
  { sufficient = missing = []; missing; unneeded }

let proof_to_string p =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (if p.sufficient then "privilege: sufficient (no mid-apply denial possible)"
     else "privilege: INSUFFICIENT");
  List.iter
    (fun r ->
      Buffer.add_string b ("\n  missing: " ^ requirement_to_string r))
    p.missing;
  List.iter
    (fun (i, pr) ->
      Buffer.add_string b
        (Printf.sprintf "\n  unneeded grant #%d: %s" i
           (Privilege.predicate_to_string pr)))
    p.unneeded;
  Buffer.contents b
