(* The algebra itself lives in Heimdall_net (so Acl can be defined on
   it); Heimdall_sem re-exports it as the semantic layer's vocabulary. *)
include Heimdall_net.Packet_set
