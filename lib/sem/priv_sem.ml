open Heimdall_control
open Heimdall_privilege
open Heimdall_config

let exercised changes =
  List.sort_uniq compare
    (List.map
       (fun (c : Change.t) -> (Change.op_action_name c.op, c.node))
       changes)

let minimal_spec changes =
  let pairs = exercised changes in
  let actions = List.sort_uniq String.compare (List.map fst pairs) in
  Privilege.of_predicates
    (List.map
       (fun a ->
         let nodes = List.filter_map (fun (a', n) -> if a' = a then Some n else None) pairs in
         Privilege.allow ~actions:[ a ] ~nodes ())
       actions)

type over_grant = {
  index : int;
  predicate : Privilege.predicate;
  granted : int;
  used : int;
  excess : (string * string) list;
}

(* The universe the spec is judged against: every mutating action of the
   catalog, on every device it is meaningful for.  For each pair we ask
   the spec which predicate decides it (first match wins); a pair is
   charged to its decider, so a broad allow hidden behind an earlier
   deny is not blamed for traffic it never decides. *)
let over_grants ~network ~spec ~changes =
  let used = exercised changes in
  let universe =
    List.concat_map
      (fun node ->
        match Network.kind node network with
        | None -> []
        | Some kind ->
            List.filter_map
              (fun a ->
                if Action.is_read_only a then None else Some (a, node))
              (Action.available_on kind))
      (Network.node_names network)
  in
  let decider (action, node) =
    let req = Privilege.request action node in
    let rec go i = function
      | [] -> None
      | p :: rest ->
          if Privilege.predicate_matches p req then Some (i, p) else go (i + 1) rest
    in
    go 0 spec.Privilege.predicates
  in
  let by_predicate = Hashtbl.create 8 in
  List.iter
    (fun pair ->
      match decider pair with
      | Some (i, p) when p.Privilege.effect = Privilege.Allow ->
          let prev = Option.value (Hashtbl.find_opt by_predicate i) ~default:(p, []) in
          Hashtbl.replace by_predicate i (p, pair :: snd prev)
      | Some _ | None -> ())
    universe;
  Hashtbl.fold
    (fun index (predicate, pairs) acc ->
      let granted = List.length pairs in
      let excess =
        List.sort compare (List.filter (fun pair -> not (List.mem pair used)) pairs)
      in
      if excess = [] then acc
      else
        { index; predicate; granted; used = granted - List.length excess; excess }
        :: acc)
    by_predicate []
  |> List.sort (fun a b -> Int.compare a.index b.index)

let over_grant_to_string o =
  let sample =
    match o.excess with
    | [] -> ""
    | xs ->
        let shown = List.filteri (fun i _ -> i < 3) xs in
        Printf.sprintf " (unused e.g. %s%s)"
          (String.concat ", "
             (List.map (fun (a, n) -> Printf.sprintf "%s on %s" a n) shown))
          (if List.length xs > 3 then ", ..." else "")
  in
  Printf.sprintf
    "predicate %d (%s) grants %d mutating action-device pairs but the changes used %d%s"
    (o.index + 1)
    (Privilege.predicate_to_string o.predicate)
    o.granted o.used sample
