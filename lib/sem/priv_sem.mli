(** Privilege over-grant analysis: least privilege, checked statically.

    A ticket's change list exercises a concrete set of (mutating action,
    device) pairs.  The spec the admin granted typically allows more —
    glob patterns over actions and devices.  This module computes the
    privilege actually exercised, the minimal spec that would have
    sufficed, and, per allow-predicate, the grants that were never used:
    the over-grant the paper's least-privilege argument is about.

    Read-only actions ([show.*], [diag.*]) are excluded from the
    analysis: inspecting the twin is how a technician works, and
    granting it broadly carries no mutation risk. *)

open Heimdall_control
open Heimdall_privilege
open Heimdall_config

val exercised : Change.t list -> (string * string) list
(** The deduplicated, sorted (action, node) pairs the change list
    actually performs, via {!Heimdall_config.Change.op_action_name}. *)

val minimal_spec : Change.t list -> Privilege.t
(** The least spec allowing exactly the exercised pairs: one allow
    predicate per action, listing only the nodes it was used on. *)

(** One allow-predicate that grants more than the changes used. *)
type over_grant = {
  index : int;  (** Position of the predicate in the spec (0-based). *)
  predicate : Privilege.predicate;
  granted : int;  (** Mutating (action, node) pairs this predicate decides to allow. *)
  used : int;  (** Of those, how many the changes exercised. *)
  excess : (string * string) list;
      (** The unexercised (action, node) pairs, sorted — the over-grant. *)
}

val over_grants :
  network:Network.t -> spec:Privilege.t -> changes:Change.t list -> over_grant list
(** For every allow predicate of [spec], the mutating (action, node)
    pairs over [network]'s devices (restricted to actions meaningful on
    each device's kind) for which that predicate is the first-match
    decider, minus the pairs [changes] exercised.  Predicates with no
    excess — and pure read-only grants — produce no entry. *)

val over_grant_to_string : over_grant -> string
