(** Semantic compilation of ACLs into packet sets.

    An ACL is first-match-wins with an implicit trailing deny, so it
    denotes a single packet set: the traffic it permits.  Compiling to
    that set makes equivalence, shadowing and diffing exact — two lists
    with different rules but the same [permit_set] behave identically,
    and every answer comes with a concrete witness packet. *)

open Heimdall_net

val permit_set : Acl.t -> Packet_set.t
(** The exact set of packets the ACL permits (first match wins; packets
    matched by no rule fall to the implicit deny). *)

val deny_set : Acl.t -> Packet_set.t
(** Complement of {!permit_set}. *)

val decided_sets : Acl.t -> (Acl.rule * Packet_set.t) list
(** For each rule, in order, the packets it actually decides: its match
    set minus everything earlier rules already matched.  A rule with an
    empty decided set is dead. *)

val equivalent : Acl.t -> Acl.t -> bool
(** Semantic equivalence: same permit set (names and rule structure are
    ignored). *)

(** Semantic ACL diff: the traffic whose fate an edit changed. *)
type diff = {
  newly_permitted : Packet_set.t;  (** Denied before, permitted after. *)
  newly_denied : Packet_set.t;  (** Permitted before, denied after. *)
}

val diff : before:Acl.t -> after:Acl.t -> diff

val diff_is_empty : diff -> bool

val diff_witnesses : diff -> (string * Flow.t) list
(** Up to one witness per direction, labelled ["newly-permitted"] /
    ["newly-denied"]. *)

val diff_to_string : diff -> string
(** Human-readable summary with witness packets; ["no semantic change"]
    for an empty diff. *)

(** A rule that can never fire. *)
type dead = {
  rule : Acl.rule;
  subsumer : Acl.rule option;
      (** The nearest earlier rule that single-handedly subsumes it, when
          one exists — the pairwise case. *)
  coverers : int list;
      (** Sequence numbers of the earlier rules whose decided traffic
          overlaps this rule's match set (the rules that jointly kill
          it), in order. *)
  conflict : bool;
      (** True when part of the dead rule's traffic is decided with the
          opposite action by the earlier rules — an intent conflict, not
          mere redundancy. *)
  witness : Flow.t option;
      (** A packet of the dead rule's match set; for a conflict, one that
          the earlier rules decide with the opposite action. *)
}

val dead_rules : Acl.t -> dead list
(** Exact dead-rule analysis: a rule is dead iff its match set minus the
    union of all earlier rules' match sets is empty.  Strictly more
    complete than pairwise {!Acl.rule_subsumes} — [subsumer = None]
    marks the rules only a union of earlier rules covers. *)
