open Heimdall_net

(* One left-to-right pass: [covered] is the union of every earlier rule's
   match set, so each rule's decided set is just its match set minus
   [covered] — first-match-wins, compiled. *)
let decided_sets (acl : Acl.t) =
  let _, decided =
    List.fold_left
      (fun (covered, acc) (r : Acl.rule) ->
        let rs = Acl.rule_packets r in
        let d = Packet_set.diff rs covered in
        (Packet_set.union covered rs, (r, d) :: acc))
      (Packet_set.empty, []) acl.rules
  in
  List.rev decided

let permit_set acl =
  List.fold_left
    (fun acc ((r : Acl.rule), d) ->
      match r.action with
      | Acl.Permit -> Packet_set.union acc d
      | Acl.Deny -> acc)
    Packet_set.empty (decided_sets acl)

let deny_set acl = Packet_set.complement (permit_set acl)

let equivalent a b = Packet_set.equal (permit_set a) (permit_set b)

type diff = { newly_permitted : Packet_set.t; newly_denied : Packet_set.t }

let diff ~before ~after =
  let pb = permit_set before and pa = permit_set after in
  { newly_permitted = Packet_set.diff pa pb; newly_denied = Packet_set.diff pb pa }

let diff_is_empty d =
  Packet_set.is_empty d.newly_permitted && Packet_set.is_empty d.newly_denied

let diff_witnesses d =
  (match Packet_set.sample d.newly_permitted with
  | Some f -> [ ("newly-permitted", f) ]
  | None -> [])
  @
  match Packet_set.sample d.newly_denied with
  | Some f -> [ ("newly-denied", f) ]
  | None -> []

let diff_to_string d =
  if diff_is_empty d then "no semantic change"
  else
    String.concat "; "
      ((if Packet_set.is_empty d.newly_permitted then []
        else
          [
            Printf.sprintf "newly permitted: %s (e.g. %s)"
              (Packet_set.to_string d.newly_permitted)
              (match Packet_set.sample d.newly_permitted with
              | Some f -> Flow.to_string f
              | None -> "-");
          ])
      @
      if Packet_set.is_empty d.newly_denied then []
      else
        [
          Printf.sprintf "newly denied: %s (e.g. %s)"
            (Packet_set.to_string d.newly_denied)
            (match Packet_set.sample d.newly_denied with
            | Some f -> Flow.to_string f
            | None -> "-");
        ])

type dead = {
  rule : Acl.rule;
  subsumer : Acl.rule option;
  coverers : int list;
  conflict : bool;
  witness : Flow.t option;
}

let dead_rules (acl : Acl.t) =
  (* [earlier] is kept nearest-first so the pairwise subsumer we report
     is the closest preceding rule — matching the historical walk. *)
  let rec go covered opposite_decided earlier acc = function
    | [] -> List.rev acc
    | (r : Acl.rule) :: rest ->
        let rs = Acl.rule_packets r in
        let acc =
          if Packet_set.is_empty (Packet_set.diff rs covered) then begin
            let subsumer =
              List.find_opt (fun (e : Acl.rule) -> Acl.rule_subsumes e r) earlier
            in
            let coverers =
              List.filter_map
                (fun ((e : Acl.rule), d) ->
                  if Packet_set.is_empty (Packet_set.inter d rs) then None
                  else Some e.seq)
                opposite_decided
            in
            (* Traffic of [r] that earlier rules decide with the action
               [r] would not have taken. *)
            let conflicting =
              List.fold_left
                (fun s ((e : Acl.rule), d) ->
                  if e.action <> r.action then
                    Packet_set.union s (Packet_set.inter d rs)
                  else s)
                Packet_set.empty opposite_decided
            in
            let conflict = not (Packet_set.is_empty conflicting) in
            let witness =
              if conflict then Packet_set.sample conflicting else Packet_set.sample rs
            in
            { rule = r; subsumer; coverers; conflict; witness } :: acc
          end
          else acc
        in
        let d = Packet_set.diff rs covered in
        go (Packet_set.union covered rs)
          (opposite_decided @ [ (r, d) ])
          (r :: earlier) acc rest
  in
  go Packet_set.empty [] [] [] acl.rules
