(** Static effect analysis over change plans: an abstract interpreter for
    the {!Heimdall_config.Change} DSL.

    Every op is mapped to an {e effect signature} — the (device,
    config-section, interface) slot it writes, the privilege action it
    requires, and a conservative {!Heimdall_net.Packet_set}
    over-approximation of the traffic whose treatment the op may change.
    Folding a plan's signatures yields its write footprint, its required
    privilege, its predicted semantic delta, and two intra-plan defects:
    dead ops (removing the op leaves the plan's result unchanged —
    later-op overwrites and sets of already-present values) and
    self-contradictions (two structurally different ops racing for the
    same write slot).

    Everything here runs before anything executes: no twin session, no
    dataplane.  The twin-replay path stays as the soundness oracle — on
    every scenario ticket the predicted delta must contain the exact
    post-apply {!Acl_sem} diff, and a plan proved privilege-sufficient
    must replay without a single monitor denial (tests and the
    [plan-smoke] CI gate enforce both). *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_privilege

(** {1 Effect signatures} *)

(** The config section an op writes.  Two ops are footprint-disjoint when
    they touch different devices or different sections of one device. *)
type section =
  | Iface of string  (** One interface block (address, state, bindings...). *)
  | Acl of string  (** One named access list. *)
  | Routing  (** Static routes and the default gateway. *)
  | Ospf  (** The OSPF process (network statements). *)
  | Vlans  (** The VLAN table. *)
  | Secrets  (** Credential slots. *)

val section_compare : section -> section -> int
val section_to_string : section -> string

(** A concrete privilege request a plan step will trigger, in the exact
    shape the twin monitor and the enforcer's verifier build it. *)
type requirement = {
  req_action : Action.t;
  req_node : string;
  req_iface : string option;
  source : string;  (** The command or change the requirement came from. *)
}

val requirement_compare : requirement -> requirement -> int
(** Orders on (node, action, iface) — [source] is a label, not identity. *)

val requirement_to_string : requirement -> string

type effect_sig = {
  change : Change.t;
  section : section;
  action : Action.t;  (** Privilege action the op needs. *)
  iface : string option;  (** Interface scope of the privilege request. *)
  delta : Packet_set.t;
      (** Over-approximation of the packets whose treatment may change.
          [Packet_set.full] when the op can reroute arbitrary traffic
          (interface state, OSPF, bindings); [Packet_set.empty] for
          cosmetic ops (descriptions, VLAN renames, secrets). *)
}

val op_requirement : Change.t -> requirement
(** The privilege request applying this change triggers — built exactly
    as the verifier builds it, so the static verdict and the replay
    verdict can never disagree by construction. *)

(** {1 Plan analysis} *)

type t = {
  changes : Change.t list;
  effects : effect_sig list;  (** One per change, in plan order. *)
  footprint : (string * section) list;  (** Sorted, deduplicated. *)
  requirements : requirement list;  (** Sorted, deduplicated. *)
  delta : Packet_set.t;  (** Union of every effect's delta. *)
  device_deltas : (string * Packet_set.t) list;
      (** Per-device delta union, sorted by device, non-empty sets only. *)
  dead : (int * Change.t) list;
      (** 0-based plan positions whose removal provably leaves the
          plan's outcome unchanged (needs a network; exact, decided by
          re-application). *)
  contradictions : (string * Change.t list) list;
      (** Write slots two or more structurally different ops race for,
          with the racing ops in plan order. *)
}

val analyze : ?network:Network.t -> Change.t list -> t
(** Fold a plan into its normalized effect.  With [?network] the ACL
    deltas are tightened from [full] to the touched rules' packet sets,
    and dead-op detection runs (it re-applies candidate sub-plans, so it
    needs the baseline configs).  Without one, every answer is still
    sound, just coarser. *)

val footprint_to_string : (string * section) list -> string

(** {1 Script extraction} *)

(** A technician script, statically decomposed: the config changes it
    will produce and the privilege requests it will trigger, without
    executing anything. *)
type script = {
  commands : string list;
  script_changes : Change.t list;  (** The [configure] ops, in order. *)
  script_requirements : requirement list;
      (** Every command's privilege request, in command order — show and
          diag commands included, exactly as the twin monitor will check
          them. *)
  script_errors : (string * string) list;
      (** Commands the analysis cannot account for (unparseable, or
          issued with no connected device), with reasons.  These can
          never reach the monitor's privilege check, so they do not
          affect the sufficiency verdict. *)
}

val script_of_commands : string list -> script
(** Statically interpret a fix script: track the [connect] state the way
    a session would, extract every [configure] op as a {!Change.t}, and
    record the privilege request of every command. *)

val plan_requirements : ?network:Network.t -> script -> requirement list
(** The complete privilege surface of running the script through the
    Heimdall pipeline: the per-command monitor requests, plus — when the
    baseline network is known — the requests the enforcer's verifier
    will re-check on the extracted config diff (a diff can normalize ops
    into different actions, e.g. removing an ACL's last rule surfaces as
    [acl.remove]).  Sorted and deduplicated. *)

(** {1 Pre-flight privilege proof} *)

type proof = {
  sufficient : bool;
      (** No requirement is denied: the plan cannot hit a mid-apply
          privilege denial. *)
  missing : requirement list;
      (** Requirements the spec denies, sorted and deduplicated. *)
  unneeded : (int * Privilege.predicate) list;
      (** Allow predicates (0-based spec position) that decide none of
          the plan's requirements — grants the plan provably never
          needs.  The static counterpart of the replay-based PRV004. *)
}

val request_of_requirement : requirement -> Privilege.request
(** The monitor-shaped request a requirement denotes — exposed so the
    enforcer's verifier evaluates the very same value the static proof
    does (one construction, no drift). *)

val prove : spec:Privilege.t -> requirement list -> proof
(** Statically decide whether [spec] is sufficient for the given
    requirements, and which of its allow predicates the plan never
    exercises.  Sound against replay by construction: each requirement
    is evaluated with the same [Privilege.request] the monitor and the
    verifier build, so [sufficient = true] implies a denial-free
    replay. *)

val proof_to_string : proof -> string
