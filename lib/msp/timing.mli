(** The deterministic human-latency model for the pilot-study timing
    experiment (Figure 7).

    The paper measures wall-clock time of a human technician replaying a
    prepared command list.  We cannot employ a human, so per-step human
    latencies are fixed constants (calibrated to land in the paper's
    reported range), while all Heimdall computation (privilege generation,
    twin construction, verification, scheduling) is genuinely measured on
    this machine and reported separately.  The comparison between the
    Current and Heimdall workflows is fair because both use identical
    human constants for the shared steps. *)

val connect_s : float
(** Opening a console on a device (5 s). *)

val per_command_s : float
(** Typing/reading one command (4 s). *)

val save_s : float
(** Documenting and saving changes (3 s). *)

val privilege_review_s : float
(** Admin reviewing the generated Privilege_msp (5 s). *)

val twin_boot_base_s : float
(** Base twin provisioning latency a real emulator would add (8 s). *)

val twin_boot_per_node_s : float
(** Additional provisioning latency per emulated node (0.5 s). *)

val verify_review_s : float
(** Operator acknowledging the verification/scheduling report (4 s). *)

val now : unit -> float
(** Raw wall clock ([Unix.gettimeofday]); {b not} monotonic.  Prefer
    {!elapsed} for durations. *)

val elapsed : (unit -> 'a) -> 'a * float
(** [elapsed f] runs [f] and returns its result with the wall-clock
    seconds it took, clamped at zero so a backwards clock step (NTP
    adjustment) can never yield a negative duration.  An alias for
    {!Heimdall_obs.Clock.elapsed} — every measured component in the
    tree routes through that single helper. *)
