open Heimdall_control
open Heimdall_verify
open Heimdall_twin

type step = { label : string; human_s : float; compute_s : float }

let step_total s = s.human_s +. s.compute_s

type run = {
  workflow : string;
  issue : string;
  steps : step list;
  resolved : bool;
  denied : int;
  session : Session.t;
  outcome : Heimdall_enforcer.Enforcer.outcome option;
  final_network : Network.t;
}

let total_s r = List.fold_left (fun acc s -> acc +. step_total s) 0.0 r.steps

let run_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s / %s: %.1f s total, %s, %d denied commands\n" r.workflow r.issue
       (total_s r)
       (if r.resolved then "resolved" else "NOT resolved")
       r.denied);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %6.1f s human  %8.4f s compute\n" s.label s.human_s
           s.compute_s))
    r.steps;
  Buffer.contents buf

let probe_resolved (issue : Issue.t) net =
  Trace.is_delivered (Trace.trace (Dataplane.compute net) issue.probe)

(* Human time for executing a prepared script: one connect is already
   counted separately, so only the per-command cost accrues here. *)
let script_human commands = float_of_int (List.length commands) *. Timing.per_command_s

let run_current ~production ~(issue : Issue.t) =
  let broken = issue.inject production in
  let session = Rmm.open_direct_session broken in
  let connect = { label = "connect"; human_s = Timing.connect_s; compute_s = 0.0 } in
  let (_ : (string, Session.error) result list), ops_compute =
    Timing.elapsed (fun () -> Session.exec_many session issue.fix_commands)
  in
  let operations =
    {
      label = "perform operations";
      human_s = script_human issue.fix_commands;
      compute_s = ops_compute;
    }
  in
  let save = { label = "save changes"; human_s = Timing.save_s; compute_s = 0.0 } in
  let final_network = Rmm.resulting_network session in
  {
    workflow = "current";
    issue = issue.name;
    steps = [ connect; operations; save ];
    resolved = probe_resolved issue final_network;
    denied = Session.denied_count session;
    session;
    outcome = None;
    final_network;
  }

let run_heimdall ?(strategy = Slicer.Task) ?engine ?obs ?(in_flight = [])
    ~production ~policies ~(issue : Issue.t) () =
  let obs =
    match obs with
    | Some _ -> obs
    | None -> Option.bind engine Heimdall_verify.Engine.obs
  in
  (* The whole run is one root span named "session": every stage below —
     and the enforcer's audit-trail correlation record — hangs off it. *)
  Heimdall_obs.Obs.span obs "session"
    ~attrs:[ ("workflow", "heimdall"); ("issue", issue.name) ]
    (fun () ->
      let broken = issue.inject production in
      (* Step 1: generate the Privilege_msp. *)
      let (slice, privilege), privgen_compute =
        Heimdall_obs.Obs.span obs "workflow.generate_privilege" (fun () ->
            Timing.elapsed (fun () ->
                let slice =
                  Twin.slice_nodes ~strategy ?obs ~production:broken
                    ~endpoints:issue.ticket.endpoints ()
                in
                (slice, Priv_gen.for_ticket ~network:broken ~slice issue.ticket)))
      in
      let privgen =
        {
          label = "generate privilege";
          human_s = Timing.privilege_review_s;
          compute_s = privgen_compute;
        }
      in
      (* Static pre-flight: prove, before any twin boots, that the
         generated grant is sufficient for the ticket's fix script — a
         plan that would die of a mid-apply denial is caught here for
         free.  Advisory at this stage (the enforcer re-checks); the
         verdict lands in the trace. *)
      let () =
        let script =
          Heimdall_sem.Plan_sem.script_of_commands issue.fix_commands
        in
        let proof =
          Heimdall_sem.Plan_sem.prove ~spec:privilege
            (Heimdall_sem.Plan_sem.plan_requirements ~network:broken script)
        in
        let analysis =
          Heimdall_sem.Plan_sem.analyze ~network:broken
            script.Heimdall_sem.Plan_sem.script_changes
        in
        Heimdall_obs.Obs.event obs "plan.preflight"
          ~attrs:
            [
              ("issue", issue.name);
              ("sufficient", string_of_bool proof.Heimdall_sem.Plan_sem.sufficient);
              ( "missing",
                string_of_int
                  (List.length proof.Heimdall_sem.Plan_sem.missing) );
              ( "footprint",
                string_of_int
                  (List.length analysis.Heimdall_sem.Plan_sem.footprint) );
            ]
      in
      (* Step 2: build the twin (slice, scrub, boot, precompute dataplane). *)
      let emulation, twin_compute =
        Heimdall_obs.Obs.span obs "workflow.twin_setup" (fun () ->
            Timing.elapsed (fun () ->
                let em =
                  Twin.build ~strategy ?obs ~production:broken
                    ~endpoints:issue.ticket.endpoints ()
                in
                ignore (Emulation.dataplane em);
                em))
      in
      let twin_boot_human =
        Timing.twin_boot_base_s
        +. (float_of_int (List.length slice) *. Timing.twin_boot_per_node_s)
      in
      let twin_setup =
        { label = "set up twin network"; human_s = twin_boot_human; compute_s = twin_compute }
      in
      let session = Twin.open_session ?obs ~privilege emulation in
      let connect = { label = "connect"; human_s = Timing.connect_s; compute_s = 0.0 } in
      let (_ : (string, Session.error) result list), ops_compute =
        Heimdall_obs.Obs.span obs "workflow.operations"
          ~attrs:[ ("commands", string_of_int (List.length issue.fix_commands)) ]
          (fun () ->
            Timing.elapsed (fun () -> Session.exec_many session issue.fix_commands))
      in
      let operations =
        {
          label = "perform operations";
          human_s = script_human issue.fix_commands;
          compute_s = ops_compute;
        }
      in
      (* Step 3: verify changes and schedule them into production. *)
      let outcome, verify_compute =
        Heimdall_obs.Obs.span obs "workflow.verify" (fun () ->
            Timing.elapsed (fun () ->
                Heimdall_enforcer.Enforcer.process ?engine ?obs ~in_flight
                  ~production:broken ~policies ~privilege ~session ()))
      in
      let verify =
        {
          label = "verify and schedule";
          human_s = Timing.verify_review_s;
          compute_s = verify_compute;
        }
      in
      let save = { label = "save changes"; human_s = Timing.save_s; compute_s = 0.0 } in
      let final_network =
        match outcome.Heimdall_enforcer.Enforcer.updated with
        | Some net -> net
        | None -> broken
      in
      let run =
        {
          workflow = "heimdall";
          issue = issue.name;
          steps = [ privgen; twin_setup; connect; operations; verify; save ];
          resolved =
            outcome.Heimdall_enforcer.Enforcer.approved
            && probe_resolved issue final_network;
          denied = Session.denied_count session;
          session;
          outcome = Some outcome;
          final_network;
        }
      in
      Heimdall_obs.Obs.add_attr obs "resolved" (string_of_bool run.resolved);
      Heimdall_obs.Obs.add_attr obs "denied" (string_of_int run.denied);
      Heimdall_obs.Obs.incr obs "workflow.runs"
        ~labels:
          [
            ("issue", issue.name);
            ("resolved", string_of_bool run.resolved);
          ];
      run)
