let connect_s = 5.0
let per_command_s = 4.0
let save_s = 3.0
let privilege_review_s = 5.0
let twin_boot_base_s = 8.0
let twin_boot_per_node_s = 0.5
let verify_review_s = 4.0
let now () = Unix.gettimeofday ()

let elapsed f =
  let t0 = now () in
  let v = f () in
  (* The wall clock is not monotonic: an NTP step mid-run would
     otherwise surface as a negative duration in reports. *)
  (v, Float.max 0.0 (now () -. t0))
