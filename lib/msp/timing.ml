let connect_s = 5.0
let per_command_s = 4.0
let save_s = 3.0
let privilege_review_s = 5.0
let twin_boot_base_s = 8.0
let twin_boot_per_node_s = 0.5
let verify_review_s = 4.0
(* All wall-clock measurement delegates to the one clamped helper in
   Heimdall_obs.Clock, so the NTP-step guard lives in exactly one place. *)
let now = Heimdall_obs.Clock.now_s
let elapsed = Heimdall_obs.Clock.elapsed
