(** The continuous drift monitor: the Watchtower loop that re-checks the
    live network against the verified baseline.

    Each {!check} cycle observes the network through a caller-supplied
    thunk, overlays any active {!Heimdall_faults.Injector} faults
    ({!Heimdall_faults.Fault.degrade} — so chaos plans compose without
    special cases), and compares structural digests
    ({!Heimdall_control.Network.digest}).  Only when the digest moves
    does it rebuild the observed dataplane (through the shared engine's
    memoizing cache) and re-run the policy set.

    Transitions are edge-triggered and triply recorded: a
    [drift.detected] / [drift.clear] structured event, a hash-chained
    audit record (actor ["monitor"], action ["drift"]), and the gauges
    [drift.active] / [drift.policy_violations] / [drift.last_check_s]
    plus the [drift.checks{result=...}] counter.

    Monitoring is read-only: it never mutates the observed network or
    the engine's verdict-relevant state, so runs with the monitor on and
    off produce byte-identical pipeline results (tier-1 tested). *)

open Heimdall_control
open Heimdall_verify

type t

type status = {
  cycles : int;  (** Completed {!check} cycles. *)
  drift_active : bool;
  drifted_devices : string list;  (** Devices whose digest moved, name order. *)
  policy_violations : int;  (** From the most recent drift verification. *)
  detections : int;  (** Clean→drift transitions so far. *)
  clears : int;  (** Drift→clean transitions so far. *)
  last_check_age_s : float;  (** Seconds since the last check; [infinity] before the first. *)
  running : bool;  (** Whether the background loop is up. *)
}

val create :
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  ?injector:Heimdall_faults.Injector.t ->
  expected:Network.t ->
  observe:(unit -> Network.t) ->
  Policy.t list ->
  t
(** [observe] is called once per cycle and must return the current live
    network (tests swap in a mutable ref).  Without [?obs] the engine's
    context (if any) is used.  Without [?engine] dataplanes are computed
    directly — fine for tests, wasteful for a real loop. *)

val check : t -> string
(** Run one cycle synchronously; returns the cycle result, one of
    ["clean"], ["detected"] (clean→drift edge), ["drift"] (still
    drifted), ["clear"] (drift→clean edge) — the same strings used as
    the [drift.checks] counter's [result] label. *)

val accept : t -> unit
(** Re-baseline: adopt the currently-observed network as the new
    expected state (audited with verdict ["accepted"]). *)

val status : t -> status
val audit : t -> Heimdall_enforcer.Audit.t
(** The monitor's own hash-chained trail of drift transitions. *)

val start : ?interval_s:float -> t -> unit
(** Spawn the background loop ([interval_s] default 5.0, clamped to
    ≥ 0.05; first check immediately).  Idempotent. *)

val stop : t -> unit
(** Stop and join the loop.  Idempotent; safe without {!start}. *)

val health :
  ?max_age_s:float -> t -> unit -> bool * (string * Heimdall_json.Json.t) list
(** An {!Heimdall_obs.Exporter.health} thunk: healthy once at least one
    cycle has completed and, when the loop is running, the last check is
    no older than [max_age_s] (default 30).  Detected drift does {e not}
    make the monitor unhealthy — reporting drift is its job.  The JSON
    members expose {!status}. *)
