(* The drift monitor: the Watchtower's long-running loop that keeps
   asking "does the network still look like what we verified?".

   Each cycle observes the live network (through a thunk, so tests and
   the chaos injector can interpose), compares its structural digest
   against the expected baseline, and — only when the digest moved —
   re-runs the full policy set through the shared verify engine against
   the observed dataplane.  Drift transitions are edge-triggered: one
   [drift.detected] event + hash-chained audit record when drift
   appears, one [drift.clear] pair when the network returns to baseline.
   Gauges ([drift.active], [drift.policy_violations],
   [drift.last_check_s]) and the [drift.checks{result=...}] counter
   track the steady state between transitions.

   Composability with chaos: when an {!Heimdall_faults.Injector} is
   supplied, each cycle asks it for the faults active at that cycle
   index and overlays them on the observation with {!Fault.degrade} —
   so a link-down fault plan shows up as detected drift, then clears
   when the fault expires, with no special-casing here. *)

open Heimdall_control
open Heimdall_verify
open Heimdall_faults
module Obs = Heimdall_obs.Obs
module Clock = Heimdall_obs.Clock
module Audit = Heimdall_enforcer.Audit

type status = {
  cycles : int;
  drift_active : bool;
  drifted_devices : string list;
  policy_violations : int;
  detections : int;
  clears : int;
  last_check_age_s : float;
  running : bool;
}

type t = {
  engine : Engine.t option;
  obs : Obs.t option;
  injector : Injector.t option;
  observe : unit -> Network.t;
  policies : Policy.t list;
  lock : Mutex.t;
  mutable expected : Network.t;
  mutable expected_digest : string;
  mutable drift_active : bool;
  mutable drifted : string list;
  mutable violations : int;
  mutable cycles : int;
  mutable detections : int;
  mutable clears : int;
  mutable last_check : float;  (* Clock.now_s of the last completed check; nan before the first *)
  mutable audit : Audit.t;
  stopped : bool Atomic.t;
  mutable thread : Thread.t option;
}

let create ?engine ?obs ?injector ~expected ~observe policies =
  let obs =
    match (obs, engine) with
    | Some _, _ -> obs
    | None, Some e -> Engine.obs e
    | None, None -> None
  in
  {
    engine;
    obs;
    injector;
    observe;
    policies;
    lock = Mutex.create ();
    expected;
    expected_digest = Network.digest expected;
    drift_active = false;
    drifted = [];
    violations = 0;
    cycles = 0;
    detections = 0;
    clears = 0;
    last_check = Float.nan;
    audit = Audit.empty;
    stopped = Atomic.make false;
    thread = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let audit t = locked t (fun () -> t.audit)

let status t =
  locked t (fun () ->
      {
        cycles = t.cycles;
        drift_active = t.drift_active;
        drifted_devices = t.drifted;
        policy_violations = t.violations;
        detections = t.detections;
        clears = t.clears;
        last_check_age_s =
          (if Float.is_nan t.last_check then Float.infinity
           else Clock.clamp (Clock.now_s () -. t.last_check));
        running = t.thread <> None;
      })

let dataplane t net =
  match t.engine with
  | Some e -> Engine.dataplane e net
  | None -> Dataplane.compute net

(* One verification pass over the drifted observation.  Runs outside the
   monitor lock: digests, dataplane builds and policy checks can be
   slow, and the exporter's health thunk must never block behind them. *)
let verify_drift t observed =
  let report =
    Policy.check_all ?engine:t.engine ?obs:t.obs (dataplane t observed) t.policies
  in
  List.length report.Policy.violations

let check t =
  let cycle = locked t (fun () -> t.cycles + 1) in
  let observed =
    let raw = t.observe () in
    match t.injector with
    | None -> raw
    | Some inj ->
        Fault.degrade (Injector.on_attempt inj ~step:cycle ~attempt:1 ~node:"-") raw
  in
  let expected, expected_digest, was_active =
    locked t (fun () -> (t.expected, t.expected_digest, t.drift_active))
  in
  let drifted =
    if Network.digest observed = expected_digest then []
    else
      match Network.changed_devices expected observed with
      | Some [] -> []  (* digest differs only via topology ordering; treat as clean *)
      | Some devices -> devices
      | None -> Network.node_names observed  (* incomparable: everything suspect *)
  in
  let result, violations =
    match (drifted, was_active) with
    | [], false -> ("clean", 0)
    | [], true -> ("clear", 0)
    | _ :: _, _ -> ((if was_active then "drift" else "detected"), verify_drift t observed)
  in
  let devices_label = String.concat "," drifted in
  locked t (fun () ->
      t.cycles <- cycle;
      t.last_check <- Clock.now_s ();
      t.drifted <- drifted;
      t.violations <- violations;
      match result with
      | "detected" ->
          t.drift_active <- true;
          t.detections <- t.detections + 1;
          t.audit <-
            Audit.append ~actor:"monitor" ~action:"drift" ~resource:devices_label
              ~detail:
                (Printf.sprintf "cycle %d: %d device(s) drifted, %d policy violation(s)"
                   cycle (List.length drifted) violations)
              ~verdict:"detected" t.audit
      | "clear" ->
          t.drift_active <- false;
          t.clears <- t.clears + 1;
          t.audit <-
            Audit.append ~actor:"monitor" ~action:"drift" ~resource:"-"
              ~detail:(Printf.sprintf "cycle %d: network back at baseline" cycle)
              ~verdict:"clear" t.audit
      | _ -> ());
  (match result with
  | "detected" ->
      Obs.event t.obs "drift.detected"
        ~attrs:
          [
            ("cycle", string_of_int cycle);
            ("devices", devices_label);
            ("violations", string_of_int violations);
          ]
  | "clear" -> Obs.event t.obs "drift.clear" ~attrs:[ ("cycle", string_of_int cycle) ]
  | _ -> ());
  Obs.incr t.obs "drift.checks" ~labels:[ ("result", result) ];
  Obs.set_gauge t.obs "drift.active" (if drifted = [] then 0.0 else 1.0);
  Obs.set_gauge t.obs "drift.policy_violations" (float_of_int violations);
  Obs.set_gauge t.obs "drift.last_check_s" (Clock.now_s ());
  result

let accept t =
  let observed = t.observe () in
  locked t (fun () ->
      t.expected <- observed;
      t.expected_digest <- Network.digest observed;
      t.drift_active <- false;
      t.drifted <- [];
      t.violations <- 0;
      t.audit <-
        Audit.append ~actor:"monitor" ~action:"drift" ~resource:"-"
          ~detail:"observed network accepted as new baseline" ~verdict:"accepted"
          t.audit);
  Obs.event t.obs "drift.accepted";
  Obs.set_gauge t.obs "drift.active" 0.0

let rec nap t remaining =
  if remaining > 0. && not (Atomic.get t.stopped) then begin
    Thread.delay (Float.min 0.05 remaining);
    nap t (remaining -. 0.05)
  end

let loop t interval_s =
  while not (Atomic.get t.stopped) do
    (try ignore (check t) with _ -> ());
    nap t interval_s
  done

let start ?(interval_s = 5.0) t =
  match t.thread with
  | Some _ -> ()
  | None ->
      Atomic.set t.stopped false;
      t.thread <- Some (Thread.create (fun () -> loop t (Float.max 0.05 interval_s)) ())

let stop t =
  Atomic.set t.stopped true;
  match t.thread with
  | Some th ->
      Thread.join th;
      t.thread <- None
  | None -> ()

(* The exporter's /healthz thunk: alive = we have checked at least once
   and — when the background loop owns the cadence — not gone silent for
   more than [max_age_s].  Drift itself is NOT unhealth: a monitor that
   detects drift is doing its job. *)
let health ?(max_age_s = 30.0) t () =
  let s = status t in
  let fresh = (not s.running) || s.last_check_age_s <= max_age_s in
  let ok = s.cycles > 0 && fresh in
  let module Json = Heimdall_json.Json in
  ( ok,
    [
      ("monitor_running", Json.Bool s.running);
      ("drift_cycles", Json.Int s.cycles);
      ("drift_active", Json.Bool s.drift_active);
      ("drifted_devices", Json.List (List.map (fun d -> Json.String d) s.drifted_devices));
      ("policy_violations", Json.Int s.policy_violations);
      ( "last_check_age_s",
        if Float.is_finite s.last_check_age_s then Json.Float s.last_check_age_s
        else Json.Null );
    ] )
