(** End-to-end workflows: the Current (direct-access) approach and the
    Heimdall approach, instrumented step by step for the Figure-7 pilot
    study.

    Each step reports [human_s] (the deterministic latency model, see
    {!Timing}) and [compute_s] (genuinely measured on this machine). *)

open Heimdall_control
open Heimdall_verify

type step = { label : string; human_s : float; compute_s : float }

val step_total : step -> float

type run = {
  workflow : string;  (** "current" or "heimdall". *)
  issue : string;
  steps : step list;
  resolved : bool;  (** The probe flow works on the resulting network. *)
  denied : int;  (** Monitor denials during the session. *)
  session : Heimdall_twin.Session.t;
  outcome : Heimdall_enforcer.Enforcer.outcome option;
      (** Heimdall only: the enforcer's decision. *)
  final_network : Network.t;
      (** Production after the workflow (unchanged if rejected). *)
}

val total_s : run -> float
val run_to_string : run -> string

val run_current : production:Network.t -> issue:Issue.t -> run
(** Today's workflow: connect with full access, execute the fix script
    directly against production, save.  (The issue is injected before the
    session starts.) *)

val run_heimdall :
  ?strategy:Heimdall_twin.Slicer.strategy ->
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  ?in_flight:(string * Heimdall_config.Change.t list) list ->
  production:Network.t ->
  policies:Policy.t list ->
  issue:Issue.t ->
  unit ->
  run
(** Heimdall's workflow: generate a Privilege_msp for the ticket, build
    the twin, execute the same fix script inside it, then verify and
    schedule the changes into production.  Right after privilege
    generation a static pre-flight ({!Heimdall_sem.Plan_sem}) proves the
    grant sufficient for the fix script and records the verdict as a
    [plan.preflight] obs event — before any twin boots.

    [?in_flight] forwards concurrent admitted plans to the enforcer's
    conflict mediation stage (see {!Heimdall_enforcer.Enforcer.process});
    a colliding session comes back held, not approved.

    With [?engine] the verification stages share its memoized dataplanes
    and domain pool.  With [?obs] (or an engine carrying one) the whole
    run is a root span named ["session"] with one child span per step,
    and the enforcer chains the root span id into the audit trail.  The
    run's verdicts are byte-identical with or without instrumentation. *)
