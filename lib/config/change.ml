open Heimdall_net

type op =
  | Set_interface_enabled of { iface : string; enabled : bool }
  | Set_interface_addr of { iface : string; addr : Ifaddr.t option }
  | Set_interface_description of { iface : string; description : string option }
  | Set_ospf_cost of { iface : string; cost : int option }
  | Set_ospf_area of { iface : string; area : int option }
  | Set_switchport of { iface : string; switchport : Ast.switchport option }
  | Set_acl_binding of { iface : string; dir : [ `In | `Out ]; acl : string option }
  | Acl_set_rule of { acl : string; rule : Acl.rule }
  | Acl_remove_rule of { acl : string; seq : int }
  | Acl_remove of { acl : string }
  | Add_static_route of Ast.static_route
  | Remove_static_route of { prefix : Prefix.t; next_hop : Ipv4.t }
  | Set_default_gateway of Ipv4.t option
  | Ospf_set_network of { prefix : Prefix.t; area : int }
  | Ospf_remove_network of { prefix : Prefix.t }
  | Set_vlan_name of { vlan : int; name : string option }
  | Set_secret of Ast.secret

type t = { node : string; op : op }

let v node op = { node; op }

let with_interface cfg iface f =
  match Ast.find_interface iface cfg with
  | None -> Error (Printf.sprintf "%s: no such interface %s" cfg.Ast.hostname iface)
  | Some i -> Ok (Ast.update_interface (f i) cfg)

let with_or_new_acl cfg name f =
  let acl = Option.value (Ast.find_acl name cfg) ~default:(Acl.empty name) in
  Ok (Ast.update_acl (f acl) cfg)

let apply op (cfg : Ast.t) =
  match op with
  | Set_interface_enabled { iface; enabled } ->
      with_interface cfg iface (fun i -> { i with enabled })
  | Set_interface_addr { iface; addr } -> with_interface cfg iface (fun i -> { i with addr })
  | Set_interface_description { iface; description } ->
      with_interface cfg iface (fun i -> { i with description })
  | Set_ospf_cost { iface; cost } ->
      with_interface cfg iface (fun i -> { i with ospf_cost = cost })
  | Set_ospf_area { iface; area } ->
      with_interface cfg iface (fun i -> { i with ospf_area = area })
  | Set_switchport { iface; switchport } ->
      with_interface cfg iface (fun i -> { i with switchport })
  | Set_acl_binding { iface; dir; acl } ->
      with_interface cfg iface (fun i ->
          match dir with `In -> { i with acl_in = acl } | `Out -> { i with acl_out = acl })
  | Acl_set_rule { acl; rule } -> with_or_new_acl cfg acl (fun a -> Acl.add_rule rule a)
  | Acl_remove_rule { acl; seq } -> (
      match Ast.find_acl acl cfg with
      | None -> Error (Printf.sprintf "%s: no such access-list %s" cfg.hostname acl)
      | Some a ->
          if Acl.find_rule seq a = None then
            Error (Printf.sprintf "%s: access-list %s has no rule %d" cfg.hostname acl seq)
          else
            (* Removing the last rule drops the list entirely: an empty
               ACL and a missing one are dataplane-equivalent (a binding
               to either fails closed), and [diff] has no way to express
               "create an empty ACL" — keeping ops closed over the
               no-empty-ACL invariant makes the diff/apply round trip
               exact. *)
            let a' = Acl.remove_rule seq a in
            if a'.Acl.rules = [] then Ok (Ast.remove_acl acl cfg)
            else Ok (Ast.update_acl a' cfg))
  | Acl_remove { acl } ->
      if Ast.find_acl acl cfg = None then
        Error (Printf.sprintf "%s: no such access-list %s" cfg.hostname acl)
      else Ok (Ast.remove_acl acl cfg)
  | Add_static_route r ->
      let same (r' : Ast.static_route) =
        Prefix.equal r'.sr_prefix r.sr_prefix && Ipv4.equal r'.sr_next_hop r.sr_next_hop
      in
      let others = List.filter (fun r' -> not (same r')) cfg.static_routes in
      Ok (Ast.normalize { cfg with static_routes = r :: others })
  | Remove_static_route { prefix; next_hop } ->
      let matches (r : Ast.static_route) =
        Prefix.equal r.sr_prefix prefix && Ipv4.equal r.sr_next_hop next_hop
      in
      if not (List.exists matches cfg.static_routes) then
        Error
          (Printf.sprintf "%s: no static route %s via %s" cfg.hostname
             (Prefix.to_string prefix) (Ipv4.to_string next_hop))
      else
        Ok { cfg with static_routes = List.filter (fun r -> not (matches r)) cfg.static_routes }
  | Set_default_gateway gw -> Ok { cfg with default_gateway = gw }
  | Ospf_set_network { prefix; area } ->
      let o =
        Option.value cfg.ospf
          ~default:{ Ast.router_id = None; networks = []; default_originate = false }
      in
      let others = List.filter (fun (p, _) -> not (Prefix.equal p prefix)) o.networks in
      Ok { cfg with ospf = Some { o with networks = others @ [ (prefix, area) ] } }
  | Ospf_remove_network { prefix } -> (
      match cfg.ospf with
      | None -> Error (Printf.sprintf "%s: no ospf process" cfg.hostname)
      | Some o ->
          if not (List.exists (fun (p, _) -> Prefix.equal p prefix) o.networks) then
            Error
              (Printf.sprintf "%s: ospf has no network %s" cfg.hostname
                 (Prefix.to_string prefix))
          else
            let networks =
              List.filter (fun (p, _) -> not (Prefix.equal p prefix)) o.networks
            in
            Ok { cfg with ospf = Some { o with networks } })
  | Set_vlan_name { vlan; name } -> (
      let others = List.filter (fun (id, _) -> id <> vlan) cfg.vlans in
      match name with
      | None ->
          if not (List.mem_assoc vlan cfg.vlans) then
            Error (Printf.sprintf "%s: no vlan %d" cfg.hostname vlan)
          else Ok (Ast.normalize { cfg with vlans = others })
      | Some name -> Ok (Ast.normalize { cfg with vlans = (vlan, name) :: others }))
  | Set_secret s ->
      let same_slot (s' : Ast.secret) =
        match (s, s') with
        | Ast.Enable_secret _, Ast.Enable_secret _ -> true
        | Ast.Snmp_community _, Ast.Snmp_community _ -> true
        | Ast.Ipsec_key (_, p), Ast.Ipsec_key (_, p') -> Ipv4.equal p p'
        | Ast.User_password (u, _), Ast.User_password (u', _) -> u = u'
        | ( ( Ast.Enable_secret _ | Ast.Snmp_community _ | Ast.Ipsec_key _
            | Ast.User_password _ ),
            _ ) ->
            false
      in
      let others = List.filter (fun s' -> not (same_slot s')) cfg.secrets in
      Ok { cfg with secrets = others @ [ s ] }

let apply_all changes lookup =
  let module Smap = Map.Make (String) in
  let rec go acc = function
    | [] -> Ok (Smap.bindings acc)
    | { node; op } :: rest -> (
        let current =
          match Smap.find_opt node acc with
          | Some c -> Some c
          | None -> lookup node
        in
        match current with
        | None -> Error (Printf.sprintf "unknown node %s" node)
        | Some cfg -> (
            match apply op cfg with
            | Error _ as e -> e
            | Ok cfg' -> go (Smap.add node cfg' acc) rest))
  in
  go Smap.empty changes

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

let diff_interface (before : Ast.interface) (after : Ast.interface) =
  let iface = after.if_name in
  let changed get op = if get before <> get after then [ op ] else [] in
  changed (fun i -> i.Ast.enabled) (Set_interface_enabled { iface; enabled = after.enabled })
  @ changed (fun i -> i.Ast.addr) (Set_interface_addr { iface; addr = after.addr })
  @ changed
      (fun i -> i.Ast.description)
      (Set_interface_description { iface; description = after.description })
  @ changed (fun i -> i.Ast.ospf_cost) (Set_ospf_cost { iface; cost = after.ospf_cost })
  @ changed (fun i -> i.Ast.ospf_area) (Set_ospf_area { iface; area = after.ospf_area })
  @ changed
      (fun i -> i.Ast.switchport)
      (Set_switchport { iface; switchport = after.switchport })
  @ changed
      (fun i -> i.Ast.acl_in)
      (Set_acl_binding { iface; dir = `In; acl = after.acl_in })
  @ changed
      (fun i -> i.Ast.acl_out)
      (Set_acl_binding { iface; dir = `Out; acl = after.acl_out })

let diff_acl (before : Acl.t) (after : Acl.t) =
  let removed =
    List.filter_map
      (fun (r : Acl.rule) ->
        if Acl.find_rule r.seq after = None then
          Some (Acl_remove_rule { acl = before.name; seq = r.seq })
        else None)
      before.rules
  in
  let set =
    List.filter_map
      (fun (r : Acl.rule) ->
        match Acl.find_rule r.seq before with
        | Some r' when r' = r -> None
        | _ -> Some (Acl_set_rule { acl = after.name; rule = r }))
      after.rules
  in
  removed @ set

let diff ~node (before : Ast.t) (after : Ast.t) =
  let before = Ast.normalize before and after = Ast.normalize after in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  (* Interfaces: the model has a fixed port inventory, so we only diff
     matching names; an interface present on one side only is a hardware
     change and out of scope for config diffs. *)
  List.iter
    (fun (ia : Ast.interface) ->
      match Ast.find_interface ia.if_name before with
      | Some ib -> List.iter emit (diff_interface ib ia)
      | None -> ())
    after.interfaces;
  (* VLANs *)
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id after.vlans) then emit (Set_vlan_name { vlan = id; name = None }))
    before.vlans;
  List.iter
    (fun (id, name) ->
      match List.assoc_opt id before.vlans with
      | Some n when n = name -> ()
      | _ -> emit (Set_vlan_name { vlan = id; name = Some name }))
    after.vlans;
  (* ACLs *)
  List.iter
    (fun (a : Acl.t) ->
      match Ast.find_acl a.name after with
      | None -> emit (Acl_remove { acl = a.name })
      | Some _ -> ())
    before.acls;
  List.iter
    (fun (a : Acl.t) ->
      let b = Option.value (Ast.find_acl a.name before) ~default:(Acl.empty a.name) in
      List.iter emit (diff_acl b a))
    after.acls;
  (* Static routes *)
  let route_key (r : Ast.static_route) = (r.sr_prefix, r.sr_next_hop) in
  List.iter
    (fun (r : Ast.static_route) ->
      if not (List.exists (fun r' -> route_key r' = route_key r) after.static_routes) then
        emit (Remove_static_route { prefix = r.sr_prefix; next_hop = r.sr_next_hop }))
    before.static_routes;
  List.iter
    (fun (r : Ast.static_route) ->
      if not (List.mem r before.static_routes) then emit (Add_static_route r))
    after.static_routes;
  (* Default gateway *)
  if before.default_gateway <> after.default_gateway then
    emit (Set_default_gateway after.default_gateway);
  (* OSPF process *)
  let before_nets = match before.ospf with Some o -> o.networks | None -> [] in
  let after_nets = match after.ospf with Some o -> o.networks | None -> [] in
  List.iter
    (fun (p, _) ->
      if not (List.exists (fun (p', _) -> Prefix.equal p p') after_nets) then
        emit (Ospf_remove_network { prefix = p }))
    before_nets;
  List.iter
    (fun (p, area) ->
      match List.find_opt (fun (p', _) -> Prefix.equal p p') before_nets with
      | Some (_, a) when a = area -> ()
      | _ -> emit (Ospf_set_network { prefix = p; area }))
    after_nets;
  (* Secrets *)
  List.iter
    (fun s -> if not (List.mem s before.secrets) then emit (Set_secret s))
    after.secrets;
  List.rev_map (fun op -> { node; op }) !ops |> List.rev

(* ------------------------------------------------------------------ *)
(* Rendering and classification                                        *)
(* ------------------------------------------------------------------ *)

let opt_to_string f = function None -> "none" | Some x -> f x

let op_to_string = function
  | Set_interface_enabled { iface; enabled } ->
      Printf.sprintf "interface %s %s" iface (if enabled then "no shutdown" else "shutdown")
  | Set_interface_addr { iface; addr } ->
      Printf.sprintf "interface %s ip address %s" iface (opt_to_string Ifaddr.to_string addr)
  | Set_interface_description { iface; description } ->
      Printf.sprintf "interface %s description %s" iface
        (opt_to_string (fun d -> d) description)
  | Set_ospf_cost { iface; cost } ->
      Printf.sprintf "interface %s ospf cost %s" iface (opt_to_string string_of_int cost)
  | Set_ospf_area { iface; area } ->
      Printf.sprintf "interface %s ospf area %s" iface (opt_to_string string_of_int area)
  | Set_switchport { iface; switchport } ->
      let sp =
        match switchport with
        | None -> "none"
        | Some (Ast.Access v) -> Printf.sprintf "access vlan %d" v
        | Some (Ast.Trunk vs) ->
            Printf.sprintf "trunk allowed vlan %s"
              (String.concat "," (List.map string_of_int vs))
      in
      Printf.sprintf "interface %s switchport %s" iface sp
  | Set_acl_binding { iface; dir; acl } ->
      Printf.sprintf "interface %s access-group %s %s" iface
        (opt_to_string (fun a -> a) acl)
        (match dir with `In -> "in" | `Out -> "out")
  | Acl_set_rule { acl; rule } ->
      Printf.sprintf "acl %s set rule %s" acl (Acl.rule_to_string rule)
  | Acl_remove_rule { acl; seq } -> Printf.sprintf "acl %s remove rule %d" acl seq
  | Acl_remove { acl } -> Printf.sprintf "acl %s remove" acl
  | Add_static_route r ->
      Printf.sprintf "ip route add %s via %s" (Prefix.to_string r.sr_prefix)
        (Ipv4.to_string r.sr_next_hop)
  | Remove_static_route { prefix; next_hop } ->
      Printf.sprintf "ip route remove %s via %s" (Prefix.to_string prefix)
        (Ipv4.to_string next_hop)
  | Set_default_gateway gw ->
      Printf.sprintf "ip default-gateway %s" (opt_to_string Ipv4.to_string gw)
  | Ospf_set_network { prefix; area } ->
      Printf.sprintf "ospf network %s area %d" (Prefix.to_string prefix) area
  | Ospf_remove_network { prefix } ->
      Printf.sprintf "ospf no network %s" (Prefix.to_string prefix)
  | Set_vlan_name { vlan; name } ->
      Printf.sprintf "vlan %d name %s" vlan (opt_to_string (fun n -> n) name)
  | Set_secret s -> Printf.sprintf "set %s" (Ast.secret_kind s)

let to_string t = Printf.sprintf "%s: %s" t.node (op_to_string t.op)
let pp fmt t = Format.pp_print_string fmt (to_string t)

let op_action_name = function
  | Set_interface_enabled { enabled; _ } ->
      if enabled then "interface.up" else "interface.shutdown"
  | Set_interface_addr _ -> "interface.addr"
  | Set_interface_description _ -> "interface.description"
  | Set_ospf_cost _ -> "ospf.cost"
  | Set_ospf_area _ -> "ospf.area"
  | Set_switchport _ -> "vlan.switchport"
  | Set_acl_binding _ -> "acl.bind"
  | Acl_set_rule _ -> "acl.rule"
  | Acl_remove_rule _ -> "acl.rule"
  | Acl_remove _ -> "acl.remove"
  | Add_static_route _ -> "route.static"
  | Remove_static_route _ -> "route.static"
  | Set_default_gateway _ -> "route.gateway"
  | Ospf_set_network _ -> "ospf.network"
  | Ospf_remove_network _ -> "ospf.network"
  | Set_vlan_name _ -> "vlan.define"
  | Set_secret _ -> "secret.set"

let target_iface = function
  | Set_interface_enabled { iface; _ }
  | Set_interface_addr { iface; _ }
  | Set_interface_description { iface; _ }
  | Set_ospf_cost { iface; _ }
  | Set_ospf_area { iface; _ }
  | Set_switchport { iface; _ }
  | Set_acl_binding { iface; _ } ->
      Some iface
  | Acl_set_rule _ | Acl_remove_rule _ | Acl_remove _ | Add_static_route _
  | Remove_static_route _ | Set_default_gateway _ | Ospf_set_network _
  | Ospf_remove_network _ | Set_vlan_name _ | Set_secret _ ->
      None
