open Heimdall_net

type switchport = Access of int | Trunk of int list

type interface = {
  if_name : string;
  description : string option;
  addr : Ifaddr.t option;
  ospf_cost : int option;
  ospf_area : int option;
  acl_in : string option;
  acl_out : string option;
  switchport : switchport option;
  enabled : bool;
}

let interface ?description ?addr ?ospf_cost ?ospf_area ?acl_in ?acl_out ?switchport
    ?(enabled = true) if_name =
  { if_name; description; addr; ospf_cost; ospf_area; acl_in; acl_out; switchport; enabled }

type static_route = { sr_prefix : Prefix.t; sr_next_hop : Ipv4.t; sr_distance : int }

type ospf = {
  router_id : Ipv4.t option;
  networks : (Prefix.t * int) list;
  default_originate : bool;
}

type bgp_neighbor = { peer : Ipv4.t; remote_as : int }
type bgp = { local_as : int; bgp_neighbors : bgp_neighbor list; advertised : Prefix.t list }

type secret =
  | Enable_secret of string
  | Snmp_community of string
  | Ipsec_key of string * Ipv4.t
  | User_password of string * string

let secret_value = function
  | Enable_secret s -> s
  | Snmp_community s -> s
  | Ipsec_key (s, _) -> s
  | User_password (_, p) -> p

let secret_kind = function
  | Enable_secret _ -> "enable-secret"
  | Snmp_community _ -> "snmp-community"
  | Ipsec_key _ -> "ipsec-key"
  | User_password _ -> "user-password"

type t = {
  hostname : string;
  interfaces : interface list;
  vlans : (int * string) list;
  acls : Acl.t list;
  static_routes : static_route list;
  ospf : ospf option;
  bgp : bgp option;
  default_gateway : Ipv4.t option;
  secrets : secret list;
}

let compare_static a b =
  match Prefix.compare a.sr_prefix b.sr_prefix with
  | 0 -> Ipv4.compare a.sr_next_hop b.sr_next_hop
  | c -> c

(* Secrets have no semantic order; sorting them makes two configs that
   hold the same credentials structurally equal regardless of the order
   [Set_secret] edits replaced slots in. *)
let compare_secret (a : secret) (b : secret) = compare a b

let normalize t =
  let ospf =
    match t.ospf with
    | Some o -> (
        let networks =
          List.sort (fun (p, _) (p', _) -> Prefix.compare p p') o.networks
        in
        (* [Ospf_remove_network] on the last statement leaves an empty
           default process behind; collapse it back to "no ospf" — the
           inverse of what [Ospf_set_network] creates on demand — so the
           round trip through diff/apply is structural, not just
           behavioural. *)
        match networks with
        | [] when o.router_id = None && not o.default_originate -> None
        | _ -> Some { o with networks })
    | None -> None
  in
  {
    t with
    interfaces = List.sort (fun a b -> String.compare a.if_name b.if_name) t.interfaces;
    vlans = List.sort (fun (a, _) (b, _) -> Int.compare a b) t.vlans;
    acls = List.sort (fun (a : Acl.t) (b : Acl.t) -> String.compare a.name b.name) t.acls;
    static_routes = List.sort compare_static t.static_routes;
    ospf;
    secrets = List.sort compare_secret t.secrets;
  }

let make ?(interfaces = []) ?(vlans = []) ?(acls = []) ?(static_routes = []) ?ospf ?bgp
    ?default_gateway ?(secrets = []) hostname =
  normalize
    { hostname; interfaces; vlans; acls; static_routes; ospf; bgp; default_gateway; secrets }

let equal a b = normalize a = normalize b
let find_interface name t = List.find_opt (fun i -> i.if_name = name) t.interfaces

let update_interface i t =
  let others = List.filter (fun i' -> i'.if_name <> i.if_name) t.interfaces in
  normalize { t with interfaces = i :: others }

let remove_interface name t =
  { t with interfaces = List.filter (fun i -> i.if_name <> name) t.interfaces }

let find_acl name t = List.find_opt (fun (a : Acl.t) -> a.name = name) t.acls

let update_acl (acl : Acl.t) t =
  let others = List.filter (fun (a : Acl.t) -> a.name <> acl.name) t.acls in
  normalize { t with acls = acl :: others }

let remove_acl name t =
  { t with acls = List.filter (fun (a : Acl.t) -> a.name <> name) t.acls }

let interface_addr t name = Option.bind (find_interface name t) (fun i -> i.addr)

let addresses t =
  List.filter_map (fun i -> Option.map (fun a -> (i.if_name, a)) i.addr) t.interfaces

let has_secret_value v t = List.exists (fun s -> secret_value s = v) t.secrets
