(** Configuration changes: the unit of work a technician produces in the
    twin network, the unit of privilege checking, and the unit the policy
    enforcer verifies and schedules into production.

    A change is always scoped to one device ([node]); its payload describes
    a single edit. *)

open Heimdall_net

type op =
  | Set_interface_enabled of { iface : string; enabled : bool }
  | Set_interface_addr of { iface : string; addr : Ifaddr.t option }
  | Set_interface_description of { iface : string; description : string option }
  | Set_ospf_cost of { iface : string; cost : int option }
  | Set_ospf_area of { iface : string; area : int option }
  | Set_switchport of { iface : string; switchport : Ast.switchport option }
  | Set_acl_binding of { iface : string; dir : [ `In | `Out ]; acl : string option }
  | Acl_set_rule of { acl : string; rule : Acl.rule }
      (** Insert, or replace the rule with the same sequence number. *)
  | Acl_remove_rule of { acl : string; seq : int }
      (** Removing the last rule drops the (now empty) list entirely —
          an empty ACL and a missing one are dataplane-equivalent, both
          fail closed when bound. *)
  | Acl_remove of { acl : string }
  | Add_static_route of Ast.static_route
  | Remove_static_route of { prefix : Prefix.t; next_hop : Ipv4.t }
  | Set_default_gateway of Ipv4.t option
  | Ospf_set_network of { prefix : Prefix.t; area : int }
  | Ospf_remove_network of { prefix : Prefix.t }
  | Set_vlan_name of { vlan : int; name : string option }
      (** [None] deletes the VLAN. *)
  | Set_secret of Ast.secret
      (** Adding/overwriting credentials — always privilege-sensitive. *)

type t = { node : string; op : op }

val v : string -> op -> t
(** [v node op] is the change [op] on device [node]. *)

val apply : op -> Ast.t -> (Ast.t, string) result
(** Apply one edit to a config.  Fails with a message when the edit
    references a missing object (e.g. removing a rule from an unknown
    ACL). *)

val apply_all : t list -> (string -> Ast.t option) -> ((string * Ast.t) list, string) result
(** Apply a change list against a config store (lookup by node name),
    returning the updated configs of every touched node.  Changes to the
    same node compose left-to-right. *)

val diff : node:string -> Ast.t -> Ast.t -> t list
(** [diff ~node before after] computes a change list that transforms
    [before] into [after]; [apply]ing the result to [before] yields a
    config equal to [after] (tests enforce this). *)

val op_to_string : op -> string
(** Render just the op, without the node prefix. *)

val to_string : t -> string
(** One-line human-readable rendering, e.g.
    ["router3: acl ACL_X set rule 20 permit ip any any"]. *)

val pp : Format.formatter -> t -> unit

val op_action_name : op -> string
(** The dotted action name this op corresponds to in the privilege
    taxonomy, e.g. [Set_interface_enabled] maps to ["interface.shutdown"]
    or ["interface.up"]. *)

val target_iface : op -> string option
(** The interface the op touches, when it is interface-scoped. *)
