(** Abstract syntax of device configurations.

    The configuration language is a Cisco-IOS-flavoured, line-oriented
    format covering what the paper's experiments need: interface addressing,
    OSPF, static routes, extended ACLs, VLANs/switchports, per-device
    secrets, and host networking.  See {!Parser} for the concrete syntax. *)

open Heimdall_net

(** Layer-2 role of a switch/host port. *)
type switchport =
  | Access of int  (** Untagged member of one VLAN. *)
  | Trunk of int list  (** Tagged carrier of the listed VLANs. *)

type interface = {
  if_name : string;
  description : string option;
  addr : Ifaddr.t option;  (** L3 address with mask, e.g. 10.0.1.1/24. *)
  ospf_cost : int option;  (** Per-interface OSPF cost; defaults to 10. *)
  ospf_area : int option;  (** Overrides the area from [router ospf]. *)
  acl_in : string option;  (** Name of the inbound ACL, if bound. *)
  acl_out : string option;  (** Name of the outbound ACL, if bound. *)
  switchport : switchport option;
  enabled : bool;  (** [false] when [shutdown] is configured. *)
}

val interface : ?description:string -> ?addr:Ifaddr.t -> ?ospf_cost:int ->
  ?ospf_area:int -> ?acl_in:string -> ?acl_out:string ->
  ?switchport:switchport -> ?enabled:bool -> string -> interface
(** Interface with sensible defaults (enabled, nothing bound). *)

type static_route = {
  sr_prefix : Prefix.t;
  sr_next_hop : Ipv4.t;
  sr_distance : int;  (** Administrative distance; default 1. *)
}

type ospf = {
  router_id : Ipv4.t option;
  networks : (Prefix.t * int) list;  (** [network P area A] statements. *)
  default_originate : bool;
}

type bgp_neighbor = { peer : Ipv4.t; remote_as : int }

type bgp = {
  local_as : int;
  bgp_neighbors : bgp_neighbor list;
  advertised : Prefix.t list;
}

(** Secrets a production config carries and a twin must never expose. *)
type secret =
  | Enable_secret of string
  | Snmp_community of string
  | Ipsec_key of string * Ipv4.t  (** Pre-shared key and peer. *)
  | User_password of string * string  (** Username, password. *)

val secret_value : secret -> string
(** The sensitive string inside a secret. *)

val secret_kind : secret -> string
(** A stable label for the secret's kind ("enable-secret", ...). *)

type t = {
  hostname : string;
  interfaces : interface list;  (** Sorted by [if_name]. *)
  vlans : (int * string) list;  (** VLAN id, name; sorted by id. *)
  acls : Acl.t list;  (** Sorted by ACL name. *)
  static_routes : static_route list;
  ospf : ospf option;
  bgp : bgp option;
  default_gateway : Ipv4.t option;  (** For hosts and L2 switches. *)
  secrets : secret list;
}

val make : ?interfaces:interface list -> ?vlans:(int * string) list ->
  ?acls:Acl.t list -> ?static_routes:static_route list -> ?ospf:ospf ->
  ?bgp:bgp -> ?default_gateway:Ipv4.t -> ?secrets:secret list -> string -> t
(** [make hostname] builds a config, normalising component order. *)

val normalize : t -> t
(** Re-sort the list-valued fields (interfaces, VLANs, ACLs, static
    routes, OSPF network statements, secrets) into canonical order, and
    collapse an OSPF process with no networks, no router id and no
    default-originate back to [None] (the inverse of the empty process
    {!Change.apply} creates on demand). *)

val equal : t -> t -> bool
(** Structural equality on normalised configs. *)

(** {2 Component lookup and update} *)

val find_interface : string -> t -> interface option
val update_interface : interface -> t -> t
(** Insert or replace (by [if_name]). *)

val remove_interface : string -> t -> t
val find_acl : string -> t -> Acl.t option
val update_acl : Acl.t -> t -> t
val remove_acl : string -> t -> t

val interface_addr : t -> string -> Ifaddr.t option
(** Address of a named interface, if configured. *)

val addresses : t -> (string * Ifaddr.t) list
(** All [interface, address] pairs, sorted by interface. *)

val has_secret_value : string -> t -> bool
(** Whether the given string equals any secret carried by the config —
    used by tests to assert non-leakage. *)
