open Heimdall_config
open Heimdall_sem

type ticket = { label : string; changes : Change.t list }

type conflict = {
  first : string;
  second : string;
  shared_footprint : (string * Plan_sem.section) list;
  overlap : Heimdall_net.Packet_set.t;
}

let analysis_of ?network (t : ticket) = Plan_sem.analyze ?network t.changes

(* Two in-flight plans conflict when they race for the same write slots
   (shared (device, section) footprint) or when, on a device both touch,
   their predicted packet-set deltas intersect — the later plan's effect
   then depends on whether the earlier one has landed yet.  Cross-device
   delta overlap alone is deliberately not a conflict: most ops carry the
   conservative [full] delta, and "both plans may affect some packet
   somewhere" would serialize every pair of tickets. *)
let conflict_between (a_label, (a : Plan_sem.t)) (b_label, (b : Plan_sem.t)) =
  let shared_footprint =
    List.filter
      (fun (node, s) ->
        List.exists
          (fun (node', s') -> node = node' && Plan_sem.section_compare s s' = 0)
          b.footprint)
      a.footprint
  in
  let overlap =
    List.fold_left
      (fun acc (node, da) ->
        match List.assoc_opt node b.device_deltas with
        | Some db -> Heimdall_net.Packet_set.union acc (Heimdall_net.Packet_set.inter da db)
        | None -> acc)
      Heimdall_net.Packet_set.empty a.device_deltas
  in
  if shared_footprint = [] && Heimdall_net.Packet_set.is_empty overlap then None
  else Some { first = a_label; second = b_label; shared_footprint; overlap }

let detect ?network tickets =
  let analysed = List.map (fun t -> (t.label, analysis_of ?network t)) tickets in
  let rec pairs acc = function
    | [] -> List.rev acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              match conflict_between a b with
              | Some c -> c :: acc
              | None -> acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] analysed

type decision = {
  admitted : ticket list;
  held : (ticket * conflict) list;
}

(* Submission order is the priority order: a ticket is held as soon as it
   conflicts with any earlier-admitted one (first conflict wins, for a
   deterministic report).  Held tickets do not block later ones — they
   are out of flight until resubmitted. *)
let mediate ?network tickets =
  let rec go admitted held = function
    | [] -> { admitted = List.rev_map fst admitted; held = List.rev held }
    | t :: rest -> (
        let a = analysis_of ?network t in
        let blocking =
          List.find_map
            (fun (prev, prev_a) ->
              conflict_between (prev.label, prev_a) (t.label, a))
            (List.rev admitted)
        in
        match blocking with
        | Some c -> go admitted ((t, c) :: held) rest
        | None -> go ((t, a) :: admitted) held rest)
  in
  go [] [] tickets

let conflict_to_string c =
  Printf.sprintf "plan.conflict: %s vs %s — %s%s" c.first c.second
    (match c.shared_footprint with
    | [] -> "no shared write slot"
    | fp -> "shared footprint: " ^ Plan_sem.footprint_to_string fp)
    (if Heimdall_net.Packet_set.is_empty c.overlap then ""
     else
       Printf.sprintf "; predicted delta overlap (~%.3g packets)"
         (Heimdall_net.Packet_set.approx_size c.overlap))
