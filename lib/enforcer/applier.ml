open Heimdall_config
open Heimdall_control
open Heimdall_faults

type retry = {
  step : int;
  attempt : int;
  node : string;
  reason : string;
  backoff_ms : int;
}

type rollback = {
  failed_step : int;
  failure : string;
  restored_digest : string;
}

type summary = {
  network : Network.t;
  committed : bool;
  steps_applied : int;
  retries : retry list;
  rollback : rollback option;
  audit : Audit.t;
}

(* Checkpoint comparison rides the incrementally-maintained structural
   digest: [Network.digest] composes the cached per-device config digests
   with the topology digest, so comparing a 500-device network costs one
   small fold instead of re-marshalling the whole network on every step
   attempt and retry. *)
let network_digest net = Digest.to_hex (Network.digest net)

let default_max_attempts = 4

let backoff_ms attempt = 50 * (1 lsl (attempt - 1))

let short d = String.sub d 0 (min 12 (String.length d))

(* One attempt of one step.  [Ok net] is the new production state;
   [Error reason] leaves production untouched (a rejected or partially
   applied command never commits — the device config transaction is the
   unit of atomicity). *)
let attempt_step ~injector ~step_index ~attempt ~current (step : Scheduler.step) =
  let node = step.Scheduler.change.Change.node in
  let faults =
    match injector with
    | None -> []
    | Some inj -> Injector.on_attempt inj ~step:step_index ~attempt ~node
  in
  match Fault.blocks_command faults ~node with
  | Some reason -> Error reason
  | None ->
      if List.exists (fun (f : Fault.t) -> f.Fault.kind = Fault.Enclave_restart) faults
      then Error "injected fault: enclave restarted mid-apply; replaying from checkpoint"
      else begin
        match Network.apply_changes [ step.Scheduler.change ] current with
        | Error m -> Error m
        | Ok net ->
            (* Partial application: the command timed out before the
               device committed, so the true state is still [current]. *)
            let landed =
              if List.exists (fun (f : Fault.t) -> f.Fault.kind = Fault.Partial_apply) faults
              then current
              else net
            in
            (* Validate what the enforcer can observe: the true state
               seen through any active environmental fault. *)
            let observed =
              Fault.degrade
                (List.filter (fun (f : Fault.t) -> Fault.is_environmental f.Fault.kind) faults)
                landed
            in
            let d_obs = network_digest observed in
            let d_ck = network_digest step.Scheduler.checkpoint in
            if d_obs = d_ck then Ok net
            else
              Error
                (Printf.sprintf
                   "post-apply state %s... does not match checkpoint %s..."
                   (short d_obs) (short d_ck))
      end

let run ?injector ?(max_attempts = default_max_attempts) ?obs ~production ~plan
    ~audit () =
  let max_attempts = max 1 max_attempts in
  Heimdall_obs.Obs.span obs "enforcer.apply"
    ~attrs:[ ("steps", string_of_int (List.length plan.Scheduler.steps)) ]
    (fun () ->
      let retries = ref [] in
      let rec steps_loop i current last_good audit = function
        | [] ->
            {
              network = current;
              committed = true;
              steps_applied = i - 1;
              retries = List.rev !retries;
              rollback = None;
              audit;
            }
        | (step : Scheduler.step) :: rest ->
            let node = step.Scheduler.change.Change.node in
            let rec attempts n audit =
              match attempt_step ~injector ~step_index:i ~attempt:n ~current step with
              | Ok net ->
                  let audit =
                    Audit.append ~actor:"enforcer" ~action:"apply" ~resource:node
                      ~detail:(Change.to_string step.Scheduler.change)
                      ~verdict:
                        (if step.Scheduler.transient_violations = [] then "applied"
                         else
                           Printf.sprintf "applied (transient: %d)"
                             (List.length step.Scheduler.transient_violations))
                      audit
                  in
                  Ok (net, audit)
              | Error reason when n < max_attempts ->
                  let backoff = backoff_ms n in
                  retries :=
                    { step = i; attempt = n; node; reason; backoff_ms = backoff }
                    :: !retries;
                  Heimdall_obs.Obs.incr obs "enforcer.retry";
                  Heimdall_obs.Obs.event obs "enforcer.retry"
                    ~attrs:
                      [
                        ("step", string_of_int i);
                        ("attempt", string_of_int n);
                        ("node", node);
                        ("reason", reason);
                        ("backoff_ms", string_of_int backoff);
                      ];
                  let audit =
                    Audit.append ~actor:"enforcer" ~action:"retry" ~resource:node
                      ~detail:
                        (Printf.sprintf "attempt %d/%d failed: %s (backoff %dms)" n
                           max_attempts reason backoff)
                      ~verdict:"transient" audit
                  in
                  attempts (n + 1) audit
              | Error reason -> Error (reason, audit)
            in
            (match attempts 1 audit with
            | Ok (net, audit) -> steps_loop (i + 1) net net audit rest
            | Error (failure, audit) ->
                (* Persistent failure: restore the last good checkpoint
                   and abandon the rest of the plan. *)
                let restored_digest = network_digest last_good in
                Heimdall_obs.Obs.incr obs "enforcer.rollback";
                Heimdall_obs.Obs.event obs "enforcer.rollback"
                  ~attrs:
                    [
                      ("step", string_of_int i);
                      ("node", node);
                      ("failure", failure);
                      ("restored", short restored_digest);
                    ];
                let audit =
                  Audit.append ~actor:"enforcer" ~action:"apply" ~resource:node
                    ~detail:(Change.to_string step.Scheduler.change)
                    ~verdict:
                      (Printf.sprintf "failed after %d attempts: %s" max_attempts
                         failure)
                    audit
                in
                let audit =
                  Audit.append ~actor:"enforcer" ~action:"rollback"
                    ~resource:"production"
                    ~detail:
                      (Printf.sprintf
                         "step %d abandoned; restored checkpoint %s... (%d steps dropped)"
                         i (short restored_digest) (List.length rest))
                    ~verdict:"rolled-back" audit
                in
                {
                  network = last_good;
                  committed = false;
                  steps_applied = i - 1;
                  retries = List.rev !retries;
                  rollback = Some { failed_step = i; failure; restored_digest };
                  audit;
                })
      in
      let s = steps_loop 1 production production audit plan.Scheduler.steps in
      Heimdall_obs.Obs.add_attr obs "committed" (string_of_bool s.committed);
      Heimdall_obs.Obs.add_attr obs "retries"
        (string_of_int (List.length s.retries));
      s)

let summary_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "apply: %d step%s %s" s.steps_applied
       (if s.steps_applied = 1 then "" else "s")
       (if s.committed then "committed" else "applied, then rolled back"));
  if s.retries <> [] then
    Buffer.add_string buf (Printf.sprintf ", %d retr%s" (List.length s.retries)
         (if List.length s.retries = 1 then "y" else "ies"));
  Buffer.add_string buf "\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  retry step %d attempt %d on %s: %s\n" r.step r.attempt
           r.node r.reason))
    s.retries;
  (match s.rollback with
  | None -> ()
  | Some rb ->
      Buffer.add_string buf
        (Printf.sprintf "  ROLLBACK at step %d: %s (restored %s...)\n"
           rb.failed_step rb.failure (short rb.restored_digest)));
  Buffer.contents buf
