(** The enforcer's verification stage: decide whether the change set a
    technician produced in the twin may enter production.

    Two independent gates, both of which must pass:
    - {b privilege}: every change must be an action the [Privilege_msp]
      allows on its target (the twin's monitor already enforces this
      online, but the enforcer re-checks — trust nothing outside the
      enclave);
    - {b policy}: the changes, applied to a shadow copy of production,
      must leave every network policy satisfied that was satisfied
      before, and must not introduce new violations. *)

open Heimdall_config
open Heimdall_control
open Heimdall_privilege
open Heimdall_verify

type rejection =
  | Privilege_violation of { change : Change.t; action : Action.t }
      (** The change needs an action the spec denies. *)
  | Policy_violation of { policy : Policy.t; reason : string }
      (** The shadow network violates a policy that held before. *)
  | Apply_error of string
      (** The change list does not even apply cleanly. *)

val rejection_to_string : rejection -> string

val privilege_rejections : privilege:Privilege.t -> Change.t list -> rejection list
(** Just the privilege gate: one [Privilege_violation] per change the
    spec denies.  Requests are built by {!Heimdall_sem.Plan_sem} — the
    same construction the static pre-flight proof evaluates — so this
    can never disagree with a plan proved sufficient.  Exposed as the
    replay-side oracle for that proof. *)

type outcome = {
  accepted : bool;
  rejections : rejection list;
  shadow : Network.t option;
      (** The post-change network when the changes apply cleanly (present
          even on policy rejection, for diagnostics). *)
  fixed_policies : Policy.t list;
      (** Policies violated before the change and satisfied after — the
          repairs the technician delivered. *)
}

val verify :
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  production:Network.t ->
  policies:Policy.t list ->
  privilege:Privilege.t ->
  changes:Change.t list ->
  unit ->
  outcome
(** With [?engine] the production/shadow dataplanes come from the
    engine's memo cache (and policy checks fan out through its domain
    pool); with [?obs] (or an engine carrying one) the stage is traced
    as an [enforcer.verify] span and feeds the [enforcer.rejections]
    counter.  The outcome is identical either way. *)
