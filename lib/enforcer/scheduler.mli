(** Change scheduling: pick an order in which to push verified changes to
    production so intermediate states stay safe ("updating routers in the
    wrong order can result in inconsistent behavior", §3).

    Greedy algorithm: at each step apply, from the remaining changes, the
    first one that keeps every currently-satisfied policy satisfied on a
    shadow dataplane.  When no single change is transiently safe, the
    smallest-damage change is taken and its transient violation count is
    recorded — the operator can then choose to push that suffix as one
    atomic batch (e.g. inside a maintenance window). *)

open Heimdall_config
open Heimdall_control
open Heimdall_verify

type step = {
  change : Change.t;
  transient_violations : (Policy.t * string) list;
      (** Policies that break while this step is the latest applied. *)
  checkpoint : Network.t;
      (** The planned network after this step — the transactional
          applier's per-step checkpoint: what production must look like
          once the step lands (detects partial application by digest
          comparison) and what a rollback restores to. *)
}

type plan = {
  steps : step list;  (** Execution order. *)
  safe : bool;  (** No step has transient violations. *)
  footprint : (string * Heimdall_sem.Plan_sem.section) list;
      (** Static (device, config-section) write footprint of the whole
          change set (see {!Heimdall_sem.Plan_sem}) — what the conflict
          mediator intersects across concurrent in-flight plans. *)
}

val plan :
  ?engine:Engine.t -> ?obs:Heimdall_obs.Obs.t ->
  production:Network.t -> policies:Policy.t list -> changes:Change.t list ->
  unit ->
  (plan * Network.t, string) result
(** Compute the order and the final network.  Fails only if some change
    cannot apply at all.  Every occurrence in [changes] yields exactly
    one step — a change value appearing twice is scheduled twice (the
    winner is removed from the pool by position, not by equality).  With
    [?engine] intermediate dataplanes come from its memo cache; with
    [?obs] (or an engine carrying one) the stage is an
    [enforcer.schedule] span and the outcome is recorded as a
    [schedule.decision] event.  The plan is identical either way. *)

val plan_to_string : plan -> string
