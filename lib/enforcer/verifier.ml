open Heimdall_config
open Heimdall_control
open Heimdall_privilege
open Heimdall_verify

type rejection =
  | Privilege_violation of { change : Change.t; action : Action.t }
  | Policy_violation of { policy : Policy.t; reason : string }
  | Apply_error of string

let rejection_to_string = function
  | Privilege_violation { change; action } ->
      Printf.sprintf "privilege violation: %s requires %s" (Change.to_string change) action
  | Policy_violation { policy; reason } ->
      Printf.sprintf "policy violation: %s — %s" (Policy.to_string policy) reason
  | Apply_error m -> Printf.sprintf "cannot apply changes: %s" m

type outcome = {
  accepted : bool;
  rejections : rejection list;
  shadow : Network.t option;
  fixed_policies : Policy.t list;
}

(* Requests are built by Plan_sem — the same construction the static
   pre-flight proof evaluates, so "statically sufficient" and "no
   rejection here" can never disagree about a change. *)
let privilege_rejections ~privilege changes =
  List.filter_map
    (fun (c : Change.t) ->
      let r = Heimdall_sem.Plan_sem.op_requirement c in
      if Privilege.allows privilege (Heimdall_sem.Plan_sem.request_of_requirement r)
      then None
      else Some (Privilege_violation { change = c; action = r.req_action }))
    changes

let verify ?engine ?obs ~production ~policies ~privilege ~changes () =
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  Heimdall_obs.Obs.span obs "enforcer.verify"
    ~attrs:[ ("changes", string_of_int (List.length changes)) ]
    (fun () ->
      let dataplane ?base net =
        match engine with
        | Some e -> Engine.dataplane ?base e net
        | None -> (
            match base with
            | Some b -> Dataplane.recompute ~base:b net
            | None -> Dataplane.compute net)
      in
      let priv_rejections = privilege_rejections ~privilege changes in
      let result =
        match Network.apply_changes changes production with
        | Error m ->
            {
              accepted = false;
              rejections = priv_rejections @ [ Apply_error m ];
              shadow = None;
              fixed_policies = [];
            }
        | Ok shadow ->
            (* The shadow network differs from production only by the
               proposed change set: build its dataplane incrementally. *)
            let production_dp = dataplane production in
            let before = Policy.check_all ?engine ?obs production_dp policies in
            let after =
              Policy.check_all ?engine ?obs (dataplane ~base:production_dp shadow) policies
            in
            let violated_before p =
              List.exists (fun (q, _) -> Policy.equal p q) before.violations
            in
            let policy_rejections =
              (* Only *new* violations block the import: a policy already broken
                 in production (e.g. the ticket's own symptom) cannot be held
                 against the fix. *)
              List.filter_map
                (fun (p, reason) ->
                  if violated_before p then None
                  else Some (Policy_violation { policy = p; reason }))
                after.violations
            in
            let fixed_policies =
              List.filter_map
                (fun (p, _) ->
                  if List.exists (fun (q, _) -> Policy.equal p q) after.violations
                  then None
                  else Some p)
                before.violations
            in
            let rejections = priv_rejections @ policy_rejections in
            {
              accepted = rejections = [];
              rejections;
              shadow = Some shadow;
              fixed_policies;
            }
      in
      Heimdall_obs.Obs.add_attr obs "accepted" (string_of_bool result.accepted);
      Heimdall_obs.Obs.add_attr obs "rejections"
        (string_of_int (List.length result.rejections));
      Heimdall_obs.Obs.incr obs ~by:(List.length result.rejections)
        "enforcer.rejections";
      result)
