open Heimdall_config
open Heimdall_control
open Heimdall_verify

type step = {
  change : Change.t;
  transient_violations : (Policy.t * string) list;
  checkpoint : Network.t;
}

type plan = {
  steps : step list;
  safe : bool;
  footprint : (string * Heimdall_sem.Plan_sem.section) list;
}

let plan ?engine ?obs ~production ~policies ~changes () =
  (* The static write footprint does not depend on scheduling order (or
     on the network), so it is computed once up front — the mediator and
     audit trail consume it even when planning later fails. *)
  let footprint = (Heimdall_sem.Plan_sem.analyze changes).Heimdall_sem.Plan_sem.footprint in
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  Heimdall_obs.Obs.span obs "enforcer.schedule"
    ~attrs:[ ("changes", string_of_int (List.length changes)) ]
    (fun () ->
  let dataplane net =
    match engine with
    | Some e -> Engine.dataplane e net
    | None -> Dataplane.compute net
  in
  let check net = Policy.check_all ?engine (dataplane net) policies in
  let held_of (report : Policy.report) =
    List.filter
      (fun p -> not (List.exists (fun (q, _) -> Policy.equal p q) report.violations))
      policies
  in
  (* [held] is threaded through the loop: the chosen candidate's full
     report already describes the next intermediate network, so each
     iteration reuses it instead of re-running the policy check from
     scratch.  Plans are byte-identical to the recompute-every-time
     version — [held_of report] on the winner's report equals [held_on]
     of the network it was computed from. *)
  let rec go current held remaining steps =
    match remaining with
    | [] ->
        let steps = List.rev steps in
        Ok
          ( { steps;
              safe = List.for_all (fun s -> s.transient_violations = []) steps;
              footprint },
            current )
    | _ ->
        (* Evaluate each candidate's transient damage. *)
        let evaluate c =
          match Network.apply_changes [ c ] current with
          | Error m -> Error m
          | Ok net ->
              let report = check net in
              let damage =
                List.filter
                  (fun (p, _) -> List.exists (Policy.equal p) held)
                  report.Policy.violations
              in
              Ok (c, net, report, damage)
        in
        let rec eval_all acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> (
              match evaluate c with
              | Error m -> Error m
              | Ok r -> eval_all (r :: acc) rest)
        in
        (match eval_all [] remaining with
        | Error m -> Error m
        | Ok candidates ->
            (* Prefer the first zero-damage candidate (stable order keeps
               the plan deterministic); otherwise the least-damage one.
               Selection is by index so that removing the winner drops
               exactly one occurrence — a change value duplicated in the
               list is scheduled once per occurrence, not collapsed. *)
            let indexed = List.mapi (fun i c -> (i, c)) candidates in
            let best =
              match List.find_opt (fun (_, (_, _, _, d)) -> d = []) indexed with
              | Some c -> c
              | None ->
                  List.fold_left
                    (fun acc c ->
                      let _, (_, _, _, d) = c and _, (_, _, _, da) = acc in
                      if List.length d < List.length da then c else acc)
                    (List.hd indexed) (List.tl indexed)
            in
            let idx, (c, net, report, damage) = best in
            let remaining' = List.filteri (fun i _ -> i <> idx) remaining in
            go net (held_of report) remaining'
              ({ change = c; transient_violations = damage; checkpoint = net } :: steps))
  in
  let result =
    match changes with
    | [] -> Ok ({ steps = []; safe = true; footprint }, production)
    | _ -> go production (held_of (check production)) changes []
  in
  (match result with
  | Ok (p, _) ->
      Heimdall_obs.Obs.add_attr obs "safe" (string_of_bool p.safe);
      Heimdall_obs.Obs.event obs "schedule.decision"
        ~attrs:
          [
            ("steps", string_of_int (List.length p.steps));
            ("safe", string_of_bool p.safe);
          ]
  | Error m ->
      Heimdall_obs.Obs.add_attr obs "error" m;
      Heimdall_obs.Obs.event obs "schedule.decision" ~attrs:[ ("error", m) ]);
  result)

let plan_to_string p =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. %s%s\n" (i + 1) (Change.to_string s.change)
           (match s.transient_violations with
           | [] -> ""
           | vs -> Printf.sprintf "  (transient: %d violations)" (List.length vs))))
    p.steps;
  if p.footprint <> [] then
    Buffer.add_string buf
      (Printf.sprintf "footprint: %s\n"
         (Heimdall_sem.Plan_sem.footprint_to_string p.footprint));
  Buffer.add_string buf (if p.safe then "plan: safe\n" else "plan: contains transient violations\n");
  Buffer.contents buf
