open Heimdall_config
open Heimdall_control
open Heimdall_verify

type step = { change : Change.t; transient_violations : (Policy.t * string) list }
type plan = { steps : step list; safe : bool }

let new_violations ?engine ~held dp policies =
  (* Violations among policies that currently hold. *)
  let report = Policy.check_all ?engine dp policies in
  List.filter (fun (p, _) -> List.exists (Policy.equal p) held) report.violations

let plan ?engine ?obs ~production ~policies ~changes () =
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  Heimdall_obs.Obs.span obs "enforcer.schedule"
    ~attrs:[ ("changes", string_of_int (List.length changes)) ]
    (fun () ->
  let dataplane net =
    match engine with
    | Some e -> Engine.dataplane e net
    | None -> Dataplane.compute net
  in
  let held_on net =
    let report = Policy.check_all ?engine (dataplane net) policies in
    List.filter
      (fun p -> not (List.exists (fun (q, _) -> Policy.equal p q) report.violations))
      policies
  in
  let rec go current remaining steps =
    match remaining with
    | [] -> Ok ({ steps = List.rev steps; safe = List.for_all (fun s -> s.transient_violations = []) (List.rev steps) }, current)
    | _ ->
        let held = held_on current in
        (* Evaluate each candidate's transient damage. *)
        let evaluate c =
          match Network.apply_changes [ c ] current with
          | Error m -> Error m
          | Ok net ->
              let damage = new_violations ?engine ~held (dataplane net) policies in
              Ok (c, net, damage)
        in
        let rec eval_all acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> (
              match evaluate c with
              | Error m -> Error m
              | Ok r -> eval_all (r :: acc) rest)
        in
        (match eval_all [] remaining with
        | Error m -> Error m
        | Ok candidates ->
            (* Prefer the first zero-damage candidate (stable order keeps
               the plan deterministic); otherwise the least-damage one. *)
            let best =
              match List.find_opt (fun (_, _, d) -> d = []) candidates with
              | Some c -> c
              | None ->
                  List.fold_left
                    (fun acc c ->
                      let _, _, d = c and _, _, da = acc in
                      if List.length d < List.length da then c else acc)
                    (List.hd candidates) (List.tl candidates)
            in
            let c, net, damage = best in
            let remaining' =
              List.filter (fun c' -> not (c' == c)) remaining
            in
            go net remaining' ({ change = c; transient_violations = damage } :: steps))
  in
  let result = go production changes [] in
  (match result with
  | Ok (p, _) ->
      Heimdall_obs.Obs.add_attr obs "safe" (string_of_bool p.safe);
      Heimdall_obs.Obs.event obs "schedule.decision"
        ~attrs:
          [
            ("steps", string_of_int (List.length p.steps));
            ("safe", string_of_bool p.safe);
          ]
  | Error m ->
      Heimdall_obs.Obs.add_attr obs "error" m;
      Heimdall_obs.Obs.event obs "schedule.decision" ~attrs:[ ("error", m) ]);
  result)

let plan_to_string p =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. %s%s\n" (i + 1) (Change.to_string s.change)
           (match s.transient_violations with
           | [] -> ""
           | vs -> Printf.sprintf "  (transient: %d violations)" (List.length vs))))
    p.steps;
  Buffer.add_string buf (if p.safe then "plan: safe\n" else "plan: contains transient violations\n");
  Buffer.contents buf
