(** Transactional application of an approved plan to production.

    The scheduler's plan carries a per-step {e checkpoint} — the network
    production must match once the step lands.  The applier executes the
    plan step by step against that contract:

    - each attempt applies the step's change and compares the observed
      state (the true network, degraded by any active environmental
      fault) against the checkpoint by structural digest;
    - a failed attempt — command rejected, partial application,
      mid-apply enclave restart, or checkpoint mismatch — is retried
      with (simulated) exponential backoff, up to [max_attempts];
    - when a step exhausts its retries, production is rolled back to the
      last good checkpoint and the remaining steps are abandoned.

    Every retry and rollback is chained into the tamper-evident audit
    trail ([retry]/[rollback] actions) and surfaced through the optional
    {!Heimdall_obs.Obs.t} context as [enforcer.retry] /
    [enforcer.rollback] metrics and events.  Without an injector no
    fault can fire, every digest matches, and the appended audit records
    are byte-identical to the pre-chaos enforcer's. *)

open Heimdall_control

type retry = {
  step : int;  (** 1-based plan step index. *)
  attempt : int;  (** The attempt that failed. *)
  node : string;
  reason : string;
  backoff_ms : int;  (** Simulated backoff before the next attempt. *)
}

type rollback = {
  failed_step : int;
  failure : string;  (** Why the final attempt failed. *)
  restored_digest : string;  (** Digest of the checkpoint restored. *)
}

type summary = {
  network : Network.t;
      (** Production after the run: the plan's final network when
          [committed], the restored checkpoint after a rollback. *)
  committed : bool;  (** Every step landed. *)
  steps_applied : int;
  retries : retry list;  (** Oldest first. *)
  rollback : rollback option;
  audit : Audit.t;  (** Input trail extended with apply records. *)
}

val network_digest : Network.t -> string
(** Structural digest (hex) used for checkpoint comparison — equal
    construction chains yield equal digests. *)

val default_max_attempts : int
(** 4: one initial try plus three retries, strictly above the longest
    fault duration the seeded chaos plans generate, so transient faults
    always clear within the budget. *)

val run :
  ?injector:Heimdall_faults.Injector.t ->
  ?max_attempts:int ->
  ?obs:Heimdall_obs.Obs.t ->
  production:Network.t ->
  plan:Scheduler.plan ->
  audit:Audit.t ->
  unit ->
  summary
(** Execute [plan] against [production].  With no [?injector] this
    cannot fail: [committed] is true, [network] is byte-identical to the
    scheduler's final network, and the only audit records appended are
    the per-step [apply] records. *)

val summary_to_string : summary -> string
