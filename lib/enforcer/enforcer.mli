(** The policy enforcer: the trusted component between the twin network
    and the production network (paper §4.3).

    [process] runs the full pipeline inside the (simulated) enclave:
    extract the technician's changes from the twin, chain the session log
    into the audit trail, verify privilege + policies, schedule the
    import, and attest the audit head. *)

open Heimdall_control
open Heimdall_privilege
open Heimdall_verify

type outcome = {
  approved : bool;
  rejections : Verifier.rejection list;
  conflicts : Mediator.conflict list;
      (** Non-empty iff the session was {e held}: its static footprint or
          predicted delta collides with an in-flight plan.  A held
          session is not rejected on its merits — resubmit once the
          conflicting plan lands. *)
  plan : Scheduler.plan option;  (** Present iff approved. *)
  updated : Network.t option;
      (** Production after import, iff approved: the plan's final
          network when [apply] committed, the restored checkpoint when
          it rolled back. *)
  apply : Applier.summary option;
      (** The transactional-apply record (retries, rollback, final
          state), iff approved. *)
  fixed_policies : Policy.t list;
  impact : Reachability.impact option;
      (** Host-pair reachability delta of the import, iff approved. *)
  lint_findings : Heimdall_lint.Diagnostic.t list;
      (** Static-analysis findings introduced during the session (twin
          lint delta vs the session baseline).  Advisory: recorded in the
          audit trail, never a rejection by itself. *)
  sem_findings : Heimdall_lint.Diagnostic.t list;
      (** Semantic pre-check findings: PRV004 over-grant diagnostics —
          grants of the session's privilege spec the changes never
          exercised.  Advisory, recorded as [sem.overgrant] audit
          records. *)
  acl_diffs : (string * string * Heimdall_sem.Acl_sem.diff) list;
      (** Per (device, ACL name): the exact packet-set diff of every ACL
          the session touched (non-empty diffs only), recorded as
          [sem.diff] audit records with witness packets. *)
  audit : Audit.t;  (** Session log + enforcer decisions, hash-chained. *)
  report : Enclave.report;  (** Attestation over the audit head. *)
  sealed_head : string;  (** Audit head sealed to the enforcer enclave. *)
}

val default_enclave : Enclave.t
(** The enforcer's enclave identity used when none is supplied. *)

val process :
  ?enclave:Enclave.t ->
  ?engine:Engine.t ->
  ?obs:Heimdall_obs.Obs.t ->
  ?injector:Heimdall_faults.Injector.t ->
  ?max_attempts:int ->
  ?in_flight:(string * Heimdall_config.Change.t list) list ->
  production:Network.t ->
  policies:Policy.t list ->
  privilege:Privilege.t ->
  session:Heimdall_twin.Session.t ->
  unit ->
  outcome
(** Run the pipeline.  On rejection, [updated] is [None] and production
    is untouched.

    [?in_flight] (labelled change lists of already-admitted concurrent
    plans, submission order) enables pre-flight conflict mediation: the
    session's changes are statically intersected with each in-flight
    plan (see {!Mediator}) {e before} any verification work is spent,
    and on collision the session is held — [approved = false],
    [conflicts] non-empty, one [plan.conflict] audit record and obs
    event per collision.

    With [?injector] the approved plan is pushed through the
    transactional {!Applier} under that fault plan ([?max_attempts]
    bounds the per-step retry budget, default
    {!Applier.default_max_attempts}); retries and rollbacks land in the
    audit trail and in [apply].  Without one, the applier is a no-op
    pass-through and the outcome is byte-identical to the pre-chaos
    enforcer's.

    With [?engine] the verify/schedule/impact stages share the engine's
    memoized dataplanes and domain pool.  With [?obs] (or an engine
    carrying one) each stage is traced, stage outcomes become structured
    events ([policy.verdict], [lint.delta], [schedule.decision]), and —
    when a root span is open on the calling domain (e.g. the workflow's
    session span) — its id is chained into the audit trail as an
    [obs.trace] record so spans and audit records can be joined.  The
    decision itself is byte-identical with or without instrumentation. *)

val outcome_to_string : outcome -> string
