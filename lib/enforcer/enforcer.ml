open Heimdall_config
open Heimdall_verify

type outcome = {
  approved : bool;
  rejections : Verifier.rejection list;
  conflicts : Mediator.conflict list;
  plan : Scheduler.plan option;
  updated : Heimdall_control.Network.t option;
  apply : Applier.summary option;
  fixed_policies : Policy.t list;
  impact : Reachability.impact option;
  lint_findings : Heimdall_lint.Diagnostic.t list;
  sem_findings : Heimdall_lint.Diagnostic.t list;
  acl_diffs : (string * string * Heimdall_sem.Acl_sem.diff) list;
  audit : Audit.t;
  report : Enclave.report;
  sealed_head : string;
}

let default_enclave = Enclave.load ~code_identity:"heimdall-policy-enforcer-v1"

(* Static-analysis pre-check: lint the twin as the technician left it and
   keep only findings that were not already present before the session
   started.  The delta is advisory — it lands in the audit trail for the
   MSP customer to review, but does not by itself reject the import
   (policy verification is the gate). *)
let lint_delta ?engine ?obs emulation =
  let open Heimdall_lint in
  let baseline =
    Lint.check_network ?engine ?obs ~twin_exposed:true
      (Heimdall_twin.Emulation.baseline emulation)
  in
  let current =
    Lint.check_network ?engine ?obs ~twin_exposed:true
      (Heimdall_twin.Emulation.network emulation)
  in
  List.filter
    (fun d -> not (List.exists (Diagnostic.equal d) baseline))
    current

(* Semantic ACL diff of the session: for every ACL of every device, the
   exact packet sets the edits opened and closed (empty diffs dropped).
   An ACL missing on one side compares as the empty list — implicit
   deny-all. *)
let session_acl_diffs emulation =
  let open Heimdall_net in
  let before = Heimdall_twin.Emulation.baseline emulation in
  let after = Heimdall_twin.Emulation.network emulation in
  List.concat_map
    (fun node ->
      let acls net =
        match Heimdall_control.Network.config node net with
        | Some (cfg : Ast.t) -> cfg.acls
        | None -> []
      in
      let names =
        List.sort_uniq String.compare
          (List.map (fun (a : Acl.t) -> a.name) (acls before @ acls after))
      in
      List.filter_map
        (fun name ->
          let find net =
            match Heimdall_control.Network.config node net with
            | Some cfg -> Option.value (Ast.find_acl name cfg) ~default:(Acl.empty name)
            | None -> Acl.empty name
          in
          let d = Heimdall_sem.Acl_sem.diff ~before:(find before) ~after:(find after) in
          if Heimdall_sem.Acl_sem.diff_is_empty d then None else Some (node, name, d))
        names)
    (Heimdall_control.Network.node_names after)

let process_unlabeled ?(enclave = default_enclave) ?engine ?obs ?injector ?max_attempts
    ?(in_flight = []) ~production ~policies ~privilege ~session () =
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  let emulation = Heimdall_twin.Session.emulation session in
  let changes = Heimdall_twin.Emulation.changes emulation in
  let audit = Audit.of_session_log (Heimdall_twin.Session.log session) in
  (* Correlate the tamper-evident trail with the trace: the outermost
     span open on this domain (the session root when the workflow opened
     one) is recorded as an ordinary audit record, so an auditor can join
     the chained log against the emitted JSONL spans. *)
  let audit =
    match Heimdall_obs.Obs.root obs with
    | Some root ->
        Audit.append ~actor:"enforcer" ~action:"obs.trace" ~resource:"session"
          ~detail:(Printf.sprintf "root-span-id=%d" root)
          ~verdict:"recorded" audit
    | None -> audit
  in
  (* Pre-flight conflict mediation: intersect this session's static
     footprint and predicted delta with every in-flight plan.  A
     conflicting session is held — not rejected on its merits — before
     any verification work is spent on it; the audit trail says why. *)
  let session_label = "session" in
  let conflicts =
    match in_flight with
    | [] -> []
    | _ ->
        let tickets =
          List.map
            (fun (label, chs) -> { Mediator.label; changes = chs })
            in_flight
          @ [ { Mediator.label = session_label; changes } ]
        in
        let d = Mediator.mediate ~network:production tickets in
        List.filter_map
          (fun ((t : Mediator.ticket), c) ->
            if t.label = session_label then Some c else None)
          d.Mediator.held
  in
  if conflicts <> [] then begin
    let audit =
      List.fold_left
        (fun audit (c : Mediator.conflict) ->
          Heimdall_obs.Obs.event obs "plan.conflict"
            ~attrs:
              [
                ("first", c.first);
                ("second", c.second);
                ("shared_slots", string_of_int (List.length c.shared_footprint));
              ];
          Audit.append ~actor:"enforcer" ~action:"plan.conflict" ~resource:c.first
            ~detail:(Mediator.conflict_to_string c) ~verdict:"held" audit)
        audit conflicts
    in
    let head = Audit.head audit in
    {
      approved = false;
      rejections = [];
      conflicts;
      plan = None;
      updated = None;
      apply = None;
      fixed_policies = [];
      impact = None;
      lint_findings = [];
      sem_findings = [];
      acl_diffs = [];
      audit;
      report = Enclave.attest enclave ~report_data:head;
      sealed_head = Enclave.seal enclave head;
    }
  end
  else
  let verdict =
    Verifier.verify ?engine ?obs ~production ~policies ~privilege ~changes ()
  in
  Heimdall_obs.Obs.event obs "policy.verdict"
    ~attrs:
      [
        ("accepted", string_of_bool verdict.Verifier.accepted);
        ("rejections", string_of_int (List.length verdict.Verifier.rejections));
        ("fixed", string_of_int (List.length verdict.Verifier.fixed_policies));
      ];
  let lint_findings =
    Heimdall_obs.Obs.span obs "enforcer.lint" (fun () ->
        let delta = lint_delta ?engine ?obs emulation in
        Heimdall_obs.Obs.add_attr obs "new_findings"
          (string_of_int (List.length delta));
        delta)
  in
  Heimdall_obs.Obs.event obs "lint.delta"
    ~attrs:[ ("new_findings", string_of_int (List.length lint_findings)) ];
  (* Semantic pre-check: exact packet-set diffs of every touched ACL,
     and the over-grant analysis of the session's privilege spec against
     what the changes actually exercised.  Advisory, like lint. *)
  let sem_findings, acl_diffs =
    Heimdall_obs.Obs.span obs "enforcer.sem" (fun () ->
        let acl_diffs = session_acl_diffs emulation in
        let sem_findings =
          Heimdall_lint.Lint.check_privilege_usage ~network:production
            ~spec:privilege ~changes ()
        in
        Heimdall_obs.Obs.add_attr obs "acl_diffs"
          (string_of_int (List.length acl_diffs));
        Heimdall_obs.Obs.add_attr obs "overgrants"
          (string_of_int (List.length sem_findings));
        (sem_findings, acl_diffs))
  in
  Heimdall_obs.Obs.event obs "sem.precheck"
    ~attrs:
      [
        ("acl_diffs", string_of_int (List.length acl_diffs));
        ("overgrants", string_of_int (List.length sem_findings));
      ];
  let audit =
    List.fold_left
      (fun audit (c : Change.t) ->
        Audit.append ~actor:"enforcer" ~action:(Change.op_action_name c.op)
          ~resource:c.node ~detail:(Change.to_string c) ~verdict:"extracted" audit)
      audit changes
  in
  let audit =
    List.fold_left
      (fun audit (d : Heimdall_lint.Diagnostic.t) ->
        Audit.append ~actor:"enforcer" ~action:"lint"
          ~resource:(Option.value d.device ~default:"twin")
          ~detail:(Heimdall_lint.Diagnostic.to_string d)
          ~verdict:(Heimdall_lint.Diagnostic.severity_to_string d.severity)
          audit)
      audit lint_findings
  in
  let audit =
    List.fold_left
      (fun audit (node, name, d) ->
        Audit.append ~actor:"enforcer" ~action:"sem.diff" ~resource:node
          ~detail:
            (Printf.sprintf "acl %s: %s" name (Heimdall_sem.Acl_sem.diff_to_string d))
          ~verdict:"recorded" audit)
      audit acl_diffs
  in
  let audit =
    List.fold_left
      (fun audit (d : Heimdall_lint.Diagnostic.t) ->
        Audit.append ~actor:"enforcer" ~action:"sem.overgrant"
          ~resource:(Option.value d.device ~default:"privilege")
          ~detail:(Heimdall_lint.Diagnostic.to_string d)
          ~verdict:(Heimdall_lint.Diagnostic.severity_to_string d.severity)
          audit)
      audit sem_findings
  in
  let audit =
    List.fold_left
      (fun audit r ->
        Audit.append ~actor:"enforcer" ~action:"verify" ~resource:"production"
          ~detail:(Verifier.rejection_to_string r) ~verdict:"rejected" audit)
      audit verdict.rejections
  in
  if not verdict.accepted then begin
    let audit =
      Audit.append ~actor:"enforcer" ~action:"verify" ~resource:"production"
        ~detail:(Printf.sprintf "%d changes" (List.length changes))
        ~verdict:"rejected" audit
    in
    let head = Audit.head audit in
    {
      approved = false;
      rejections = verdict.rejections;
      conflicts = [];
      plan = None;
      updated = None;
      apply = None;
      fixed_policies = verdict.fixed_policies;
      impact = None;
      lint_findings;
      sem_findings;
      acl_diffs;
      audit;
      report = Enclave.attest enclave ~report_data:head;
      sealed_head = Enclave.seal enclave head;
    }
  end
  else
    match Scheduler.plan ?engine ?obs ~production ~policies ~changes () with
    | Error m ->
        let audit =
          Audit.append ~actor:"enforcer" ~action:"schedule" ~resource:"production"
            ~detail:m ~verdict:"rejected" audit
        in
        let head = Audit.head audit in
        {
          approved = false;
          rejections = [ Verifier.Apply_error m ];
          conflicts = [];
          plan = None;
          updated = None;
          apply = None;
          fixed_policies = verdict.fixed_policies;
          impact = None;
          lint_findings;
          sem_findings;
          acl_diffs;
          audit;
          report = Enclave.attest enclave ~report_data:head;
          sealed_head = Enclave.seal enclave head;
        }
    | Ok (plan, updated) ->
        let impact =
          Heimdall_obs.Obs.span obs "enforcer.impact" (fun () ->
              (* The updated network is production plus the accepted
                 change set: build its dataplane incrementally. *)
              let production_dp, updated_dp =
                match engine with
                | Some e ->
                    let p = Engine.dataplane e production in
                    (p, Engine.dataplane ~base:p e updated)
                | None ->
                    let p = Heimdall_control.Dataplane.compute production in
                    (p, Heimdall_control.Dataplane.recompute ~base:p updated)
              in
              Reachability.diff
                ~before:(Reachability.compute ?engine ?obs production_dp)
                ~after:(Reachability.compute ?engine ?obs updated_dp))
        in
        (* Transactional push to production: per-step checkpoint
           validation, retry with backoff, rollback on persistent
           failure.  Without an injector this appends exactly the
           per-step "apply" records and lands on the scheduler's final
           network. *)
        let apply =
          Applier.run ?injector ?max_attempts ?obs ~production ~plan ~audit ()
        in
        let audit = apply.Applier.audit in
        (* The committed state: byte-identical to the scheduler's final
           network when the plan landed; the restored checkpoint after a
           rollback (the pre-computed [impact] then describes the plan
           that was abandoned — [apply.committed] disambiguates). *)
        let updated = apply.Applier.network in
        let audit =
          Audit.append ~actor:"enforcer" ~action:"verify" ~resource:"production"
            ~detail:
              (Printf.sprintf "%d changes approved, %d policies repaired; impact: %s"
                 (List.length changes)
                 (List.length verdict.fixed_policies)
                 (Reachability.impact_to_string impact))
            ~verdict:"approved" audit
        in
        let head = Audit.head audit in
        {
          approved = true;
          rejections = [];
          conflicts = [];
          plan = Some plan;
          updated = Some updated;
          apply = Some apply;
          fixed_policies = verdict.fixed_policies;
          impact = Some impact;
          lint_findings;
          sem_findings;
          acl_diffs;
          audit;
          report = Enclave.attest enclave ~report_data:head;
          sealed_head = Enclave.seal enclave head;
        }

(* One labeled counter per processed session, bucketed by how it ended —
   what the Watchtower's /metrics page breaks enforcer traffic down by. *)
let process ?enclave ?engine ?obs ?injector ?max_attempts ?in_flight ~production
    ~policies ~privilege ~session () =
  let outcome =
    process_unlabeled ?enclave ?engine ?obs ?injector ?max_attempts ?in_flight
      ~production ~policies ~privilege ~session ()
  in
  let obs =
    match obs with Some _ -> obs | None -> Option.bind engine Engine.obs
  in
  let verdict =
    if not outcome.approved then
      if outcome.conflicts <> [] then "held" else "rejected"
    else
      match outcome.apply with
      | Some a when not a.Applier.committed -> "rolled_back"
      | _ -> "approved"
  in
  Heimdall_obs.Obs.incr obs "enforcer.sessions" ~labels:[ ("verdict", verdict) ];
  outcome

let outcome_to_string o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (if o.approved then "APPROVED\n" else "REJECTED\n");
  List.iter
    (fun r -> Buffer.add_string buf ("  " ^ Verifier.rejection_to_string r ^ "\n"))
    o.rejections;
  List.iter
    (fun c -> Buffer.add_string buf ("  " ^ Mediator.conflict_to_string c ^ "\n"))
    o.conflicts;
  (match o.plan with
  | Some p -> Buffer.add_string buf (Scheduler.plan_to_string p)
  | None -> ());
  (match o.apply with
  | Some a when a.Applier.retries <> [] || a.Applier.rollback <> None ->
      Buffer.add_string buf (Applier.summary_to_string a)
  | Some _ | None -> ());
  (match o.impact with
  | Some i -> Buffer.add_string buf ("impact: " ^ Reachability.impact_to_string i ^ "\n")
  | None -> ());
  if o.lint_findings <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "lint: %d new finding%s\n"
         (List.length o.lint_findings)
         (if List.length o.lint_findings = 1 then "" else "s"));
    List.iter
      (fun d ->
        Buffer.add_string buf ("  " ^ Heimdall_lint.Diagnostic.to_string d ^ "\n"))
      o.lint_findings
  end;
  if o.acl_diffs <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "sem: %d ACL diff%s\n" (List.length o.acl_diffs)
         (if List.length o.acl_diffs = 1 then "" else "s"));
    List.iter
      (fun (node, name, d) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s/%s: %s\n" node name
             (Heimdall_sem.Acl_sem.diff_to_string d)))
      o.acl_diffs
  end;
  if o.sem_findings <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "sem: %d over-grant finding%s\n"
         (List.length o.sem_findings)
         (if List.length o.sem_findings = 1 then "" else "s"));
    List.iter
      (fun d ->
        Buffer.add_string buf ("  " ^ Heimdall_lint.Diagnostic.to_string d ^ "\n"))
      o.sem_findings
  end;
  Buffer.add_string buf
    (Printf.sprintf "audit: %d records, head %s...\n" (Audit.length o.audit)
       (String.sub (Audit.head o.audit) 0 12));
  Buffer.contents buf
