type record = {
  seq : int;
  actor : string;
  action : string;
  resource : string;
  detail : string;
  verdict : string;
  prev_hash : string;
  hash : string;
}

let genesis_hash = Sha256.hex "heimdall-audit-genesis"

(* Records are stored newest first; [records] reverses. *)
type t = { entries : record list; count : int }

let empty = { entries = []; count = 0 }

let record_body ~seq ~actor ~action ~resource ~detail ~verdict ~prev_hash =
  (* An unambiguous encoding: length-prefixed fields. *)
  let field s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat "|"
    [
      string_of_int seq;
      field actor;
      field action;
      field resource;
      field detail;
      field verdict;
      prev_hash;
    ]

let head t = match t.entries with [] -> genesis_hash | r :: _ -> r.hash

let append ~actor ~action ~resource ~detail ~verdict t =
  let seq = t.count + 1 in
  let prev_hash = head t in
  let hash =
    Sha256.hex (record_body ~seq ~actor ~action ~resource ~detail ~verdict ~prev_hash)
  in
  let r = { seq; actor; action; resource; detail; verdict; prev_hash; hash } in
  { entries = r :: t.entries; count = seq }

let of_session_log entries =
  List.fold_left
    (fun t (e : Heimdall_twin.Session.log_entry) ->
      append ~actor:e.technician ~action:e.action ~resource:e.node ~detail:e.command
        ~verdict:
          (match e.verdict with
          | Heimdall_twin.Session.Allowed -> "allowed"
          | Heimdall_twin.Session.Denied -> "denied")
        t)
    empty entries

let records t = List.rev t.entries
let length t = t.count

let verify t =
  let rec go prev_hash expected_seq = function
    | [] -> Ok ()
    | r :: rest ->
        if r.seq <> expected_seq then
          Error (Printf.sprintf "record %d: unexpected sequence (wanted %d)" r.seq expected_seq)
        else if r.prev_hash <> prev_hash then
          Error (Printf.sprintf "record %d: broken chain link" r.seq)
        else
          let recomputed =
            Sha256.hex
              (record_body ~seq:r.seq ~actor:r.actor ~action:r.action ~resource:r.resource
                 ~detail:r.detail ~verdict:r.verdict ~prev_hash:r.prev_hash)
          in
          if recomputed <> r.hash then
            Error (Printf.sprintf "record %d: content hash mismatch" r.seq)
          else go r.hash (expected_seq + 1) rest
  in
  go genesis_hash 1 (records t)

let tamper seq f t =
  { t with entries = List.map (fun r -> if r.seq = seq then f r else r) t.entries }

let to_string t =
  records t
  |> List.map (fun r ->
         Printf.sprintf "#%d %s %s on %s [%s] %s %s" r.seq r.actor r.action r.resource
           r.detail r.verdict
           (String.sub r.hash 0 12))
  |> String.concat "\n"

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)
(* ------------------------------------------------------------------ *)

module Json = Heimdall_json.Json

let record_to_json r =
  Json.Obj
    [
      ("seq", Json.Int r.seq);
      ("actor", Json.String r.actor);
      ("action", Json.String r.action);
      ("resource", Json.String r.resource);
      ("detail", Json.String r.detail);
      ("verdict", Json.String r.verdict);
      ("prev_hash", Json.String r.prev_hash);
      ("hash", Json.String r.hash);
    ]

let export t =
  records t
  |> List.map (fun r -> Json.to_string (record_to_json r))
  |> String.concat "\n"

let record_of_json json =
  let ( let* ) = Option.bind in
  let str k = Option.bind (Json.member k json) Json.to_string_opt in
  let* seq = Option.bind (Json.member "seq" json) Json.to_int_opt in
  let* actor = str "actor" in
  let* action = str "action" in
  let* resource = str "resource" in
  let* detail = str "detail" in
  let* verdict = str "verdict" in
  let* prev_hash = str "prev_hash" in
  let* hash = str "hash" in
  Some { seq; actor; action; resource; detail; verdict; prev_hash; hash }

let import text =
  (* Number the lines of the original text *before* dropping blanks, so
     a parse error reports the line's real position in the input.  A
     trailing '\r' (CRLF input) is stripped from each line first. *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l ->
           let l =
             if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l
           in
           (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | (lineno, line) :: rest -> (
        match Json.of_string_opt line with
        | None -> Error (Printf.sprintf "line %d: not valid JSON" lineno)
        | Some json -> (
            match record_of_json json with
            | None -> Error (Printf.sprintf "line %d: malformed audit record" lineno)
            | Some r -> parse (r :: acc) rest))
  in
  match parse [] lines with
  | Error _ as e -> e
  | Ok rs -> (
      let t = { entries = List.rev rs; count = List.length rs } in
      match verify t with Ok () -> Ok t | Error m -> Error ("chain verification failed: " ^ m))
