(** Conflict mediation between concurrent in-flight change plans.

    An MSP serves many tickets at once; two technicians whose plans race
    for the same write slots — or whose predicted packet-set deltas
    intersect on a shared device — must not land concurrently, or the
    later plan's effect depends on whether the earlier one has been
    pushed yet.  Detection is purely static ({!Heimdall_sem.Plan_sem}
    footprints and deltas): nothing executes, so mediation can run at
    submission time, before any twin exists. *)

open Heimdall_config
open Heimdall_control

type ticket = { label : string; changes : Change.t list }

type conflict = {
  first : string;  (** Label of the earlier (admitted) plan. *)
  second : string;  (** Label of the later (held) plan. *)
  shared_footprint : (string * Heimdall_sem.Plan_sem.section) list;
      (** Write slots both plans touch. *)
  overlap : Heimdall_net.Packet_set.t;
      (** Intersection of the plans' predicted deltas on shared devices
          (empty when the conflict is footprint-only). *)
}

val detect : ?network:Network.t -> ticket list -> conflict list
(** All pairwise conflicts, in submission order.  [network] tightens the
    ACL deltas (absent, most ops carry the conservative [full] delta and
    any two plans sharing a device conflict). *)

type decision = {
  admitted : ticket list;  (** Cleared to proceed, submission order kept. *)
  held : (ticket * conflict) list;
      (** Held tickets with the conflict that blocked each — resubmit
          after the earlier plan lands. *)
}

val mediate : ?network:Network.t -> ticket list -> decision
(** First-come-first-served: walk tickets in submission order, hold any
    that conflicts with an already-admitted one (earliest such conflict
    reported).  Held tickets do not block later submissions. *)

val conflict_to_string : conflict -> string
(** One line, starting with ["plan.conflict"]. *)
