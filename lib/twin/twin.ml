open Heimdall_net
open Heimdall_config
open Heimdall_control

let slice_nodes ?(strategy = Slicer.Task) ?obs ~production ~endpoints () =
  Heimdall_obs.Obs.span obs "twin.slice" (fun () ->
      let slice = Slicer.slice strategy production ~endpoints in
      Heimdall_obs.Obs.add_attr obs "nodes" (string_of_int (List.length slice));
      Heimdall_obs.Obs.set_gauge obs "twin.slice_nodes"
        (float_of_int (List.length slice));
      slice)

(* Environment stubs: for every production link with exactly one end
   inside the slice, attach a synthetic "env-<peer>" router that owns the
   peer's interface address.  The boundary subnets stay up in the twin —
   a technician can see carrier and ping the next hop — while the real
   outside device (its config, secrets, further topology) stays hidden.
   Stubs do not run any routing protocol, so no foreign routes leak in. *)
let stub_name peer = "env-" ^ peer

let with_env_stubs production sliced slice =
  let in_slice n = List.mem n slice in
  let boundary =
    List.filter
      (fun (l : Topology.link) ->
        (in_slice l.a.node && not (in_slice l.b.node))
        || (in_slice l.b.node && not (in_slice l.a.node)))
      (Topology.links (Network.topology production))
  in
  if boundary = [] then sliced
  else begin
    (* Rebuild topology: the sliced nodes and links, plus one stub node per
       outside peer and the boundary links rewired onto it. *)
    let sliced_topo = Network.topology sliced in
    let topo = ref sliced_topo in
    let stub_ifaces : (string, Ast.interface list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (l : Topology.link) ->
        let inside, outside = if in_slice l.a.node then (l.a, l.b) else (l.b, l.a) in
        let stub = stub_name outside.node in
        if not (Topology.mem_node stub !topo) then
          topo := Topology.add_node stub Topology.Router !topo;
        (* The stub port inherits the outside interface's name/address. *)
        let outside_iface =
          match Network.config outside.node production with
          | Some cfg -> Ast.find_interface outside.iface cfg
          | None -> None
        in
        let iface =
          match outside_iface with
          | Some i ->
              { (Ast.interface ?addr:i.addr ~enabled:i.enabled outside.iface) with
                Ast.description = Some ("environment stub for " ^ outside.node) }
          | None -> Ast.interface outside.iface
        in
        Hashtbl.replace stub_ifaces stub
          (iface :: Option.value (Hashtbl.find_opt stub_ifaces stub) ~default:[]);
        topo :=
          Topology.add_link inside { Topology.node = stub; iface = outside.iface } !topo)
      boundary;
    let stub_configs =
      Hashtbl.fold
        (fun stub ifaces acc -> (stub, Ast.make ~interfaces:ifaces stub) :: acc)
        stub_ifaces []
    in
    Network.make !topo (Network.configs sliced @ stub_configs)
  end

let build ?(strategy = Slicer.Task) ?(env_stubs = false) ?obs ~production ~endpoints () =
  Heimdall_obs.Obs.span obs "twin.build" (fun () ->
      let slice = slice_nodes ~strategy ?obs ~production ~endpoints () in
      let sliced = Network.restrict slice production in
      let sliced = if env_stubs then with_env_stubs production sliced slice else sliced in
      let scrubbed =
        Heimdall_obs.Obs.span obs "twin.scrub" (fun () ->
            List.fold_left
              (fun net (node, cfg) -> Network.with_config node (Redact.scrub cfg) net)
              sliced (Network.configs sliced))
      in
      Heimdall_obs.Obs.add_attr obs "nodes" (string_of_int (List.length slice));
      Emulation.create scrubbed)

let open_session ?technician ?obs ~privilege emulation =
  Session.create ?technician ?obs ~privilege emulation
