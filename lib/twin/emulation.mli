(** The twin's emulation layer: holds the emulated network state
    (configurations + topology of the slice), executes configuration
    edits, recomputes the dataplane on demand, and answers data queries.
    It never formats console output — that is the presentation layer's
    job — and it is only ever driven through the reference monitor. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control

type t

val create : Network.t -> t
(** Wrap an (already sliced and scrubbed) network as the twin's emulated
    state.  @raise Invalid_argument if any config still carries an
    unscrubbed secret — the emulation layer refuses sensitive data by
    construction. *)

val create_unchecked : Network.t -> t
(** Like {!create} without the scrubbing check — for baselines that
    deliberately model today's direct-access workflow. *)

val network : t -> Network.t
val baseline : t -> Network.t
(** The state at twin creation (for change extraction). *)

val dataplane : t -> Dataplane.t
(** Current dataplane; cached until the next successful edit. *)

val apply : t -> node:string -> Change.op -> (unit, string) result
(** Apply one configuration edit to a device. *)

val set_fault_hook : t -> (node:string -> string option) option -> unit
(** Chaos hook: when set, the hook is consulted before every
    configuration edit; returning [Some reason] makes the edit fail with
    that message (a flaky device), leaving the emulated state untouched.
    The fault-injection layer supplies deterministic seeded hooks; the
    default is no hook. *)

val erase : t -> node:string -> unit
(** Wipe a device's config (addresses, ACLs, routes, OSPF, VLANs) — what
    the careless-technician command does. *)

val reload : t -> node:string -> unit
(** Reboot: in this model a no-op with bookkeeping (reload count). *)

val reload_count : t -> int

val changes : t -> Change.t list
(** Config changes made since creation ({!baseline} vs current), for all
    devices, in node order. *)

val ping : t -> node:string -> Ipv4.t -> Heimdall_verify.Trace.result option
(** Trace an ICMP flow sourced at the node's primary address; [None] if
    the node has no address to source from. *)

val traceroute : t -> node:string -> Ipv4.t -> Heimdall_verify.Trace.result option
