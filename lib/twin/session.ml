open Heimdall_privilege
open Heimdall_control

type verdict = Allowed | Denied

type log_entry = {
  seq : int;
  technician : string;
  node : string;
  command : string;
  action : Action.t;
  verdict : verdict;
}

let log_entry_to_string e =
  Printf.sprintf "#%d %s@%s %s [%s] -> %s" e.seq e.technician e.node e.action e.command
    (match e.verdict with Allowed -> "allowed" | Denied -> "denied")

type error =
  | Not_connected
  | Unknown_node of string
  | Bad_command of string
  | Denied_request of { action : Action.t; node : string }
  | Exec_failed of string

let error_to_string = function
  | Not_connected -> "not connected to any device"
  | Unknown_node n -> Printf.sprintf "unknown device %s" n
  | Bad_command m -> Printf.sprintf "parse error: %s" m
  | Denied_request { action; node } ->
      Printf.sprintf "permission denied: %s on %s" action node
  | Exec_failed m -> Printf.sprintf "command failed: %s" m

type t = {
  emulation : Emulation.t;
  mutable privilege : Privilege.t;
  technician : string;
  obs : Heimdall_obs.Obs.t option;
  mutable connected : string option;
  mutable entries : log_entry list;  (* newest first *)
  mutable seq : int;
}

let create ?(technician = "tech") ?obs ~privilege emulation =
  { emulation; privilege; technician; obs; connected = None; entries = []; seq = 0 }

let emulation t = t.emulation
let privilege t = t.privilege
let connected t = t.connected
let log t = List.rev t.entries
let denied_count t = List.length (List.filter (fun e -> e.verdict = Denied) t.entries)
let command_count t = List.length t.entries

let record t ~node ~command ~action verdict =
  t.seq <- t.seq + 1;
  t.entries <-
    { seq = t.seq; technician = t.technician; node; command; action; verdict }
    :: t.entries;
  Heimdall_obs.Obs.incr t.obs "session.commands"
    ~labels:[ ("verdict", if verdict = Denied then "denied" else "allowed") ];
  if verdict = Denied then Heimdall_obs.Obs.incr t.obs "session.denied"

let escalate t predicate =
  t.privilege <- Privilege.prepend predicate t.privilege;
  record t
    ~node:(Option.value t.connected ~default:"-")
    ~command:"escalate" ~action:"secret.set" Allowed
(* escalation is privileged bookkeeping; logged under a sensitive action
   name so audits surface it prominently. *)

let run t (cmd : Command.t) node =
  (* Precondition: privilege granted.  Produce console output. *)
  let em = t.emulation in
  match cmd with
  | Command.Connect n ->
      t.connected <- Some n;
      Ok (Printf.sprintf "connected to %s\n" n)
  | Command.Disconnect ->
      t.connected <- None;
      Ok "disconnected\n"
  | Command.Show Command.Running_config -> Ok (Presentation.running_config em ~node)
  | Command.Show Command.Interfaces -> Ok (Presentation.interfaces em ~node)
  | Command.Show Command.Ip_route -> Ok (Presentation.ip_route em ~node)
  | Command.Show Command.Access_lists -> Ok (Presentation.access_lists em ~node)
  | Command.Show Command.Ospf_neighbors -> Ok (Presentation.ospf_neighbors em ~node)
  | Command.Show Command.Vlans -> Ok (Presentation.vlans em ~node)
  | Command.Show Command.Topology_view -> Ok (Presentation.topology_view em)
  | Command.Ping dst -> Ok (Presentation.ping em ~node dst)
  | Command.Traceroute dst -> Ok (Presentation.traceroute em ~node dst)
  | Command.Configure op -> (
      match Emulation.apply em ~node op with
      | Ok () -> Ok "ok\n"
      | Error m -> Error (Exec_failed m))
  | Command.Reload ->
      Emulation.reload em ~node;
      Ok (Printf.sprintf "%s reloaded\n" node)
  | Command.Erase ->
      Emulation.erase em ~node;
      Ok (Printf.sprintf "%s startup-config erased\n" node)

let exec t line =
  match Command.parse_result line with
  | Error m ->
      record t
        ~node:(Option.value t.connected ~default:"-")
        ~command:line ~action:"show.topology" Denied;
      Error (Bad_command m)
  | Ok cmd -> (
      (* Scope: connect names its own target; everything else needs a
         connected device. *)
      let node_scope =
        match cmd with
        | Command.Connect n -> Ok n
        | Command.Disconnect -> Ok (Option.value t.connected ~default:"-")
        | _ -> (
            match t.connected with Some n -> Ok n | None -> Error Not_connected)
      in
      match node_scope with
      | Error e ->
          record t ~node:"-" ~command:line ~action:(Command.action_name cmd) Denied;
          Error e
      | Ok node ->
          let exists = Network.config node (Emulation.network t.emulation) <> None in
          if (not exists) && node <> "-" then begin
            record t ~node ~command:line ~action:(Command.action_name cmd) Denied;
            Error (Unknown_node node)
          end
          else
            let action = Command.action_name cmd in
            let request =
              Privilege.request ?iface:(Command.target_iface cmd) action node
            in
            if not (Privilege.allows t.privilege request) then begin
              record t ~node ~command:line ~action Denied;
              Heimdall_obs.Obs.event t.obs "privilege.denied"
                ~attrs:
                  [
                    ("technician", t.technician);
                    ("action", action);
                    ("node", node);
                    ("command", line);
                  ];
              Error (Denied_request { action; node })
            end
            else begin
              record t ~node ~command:line ~action Allowed;
              run t cmd node
            end)

let exec_many t lines = List.map (exec t) lines
