(** Twin-network construction: slice the production network for the task,
    scrub secrets, and wrap the result in an emulation layer with a
    monitored session on top. *)

open Heimdall_control
open Heimdall_privilege

val build :
  ?strategy:Slicer.strategy ->
  ?env_stubs:bool ->
  ?obs:Heimdall_obs.Obs.t ->
  production:Network.t ->
  endpoints:string list ->
  unit ->
  Emulation.t
(** Create the twin's emulation layer for a ticket affecting [endpoints].
    Defaults to the task-driven slice.  All secrets are scrubbed; the
    emulation layer re-checks this at construction.

    With [env_stubs] (default false), every boundary link keeps carrier:
    a synthetic ["env-<peer>"] router owns the outside interface's address
    so next hops stay pingable, without exposing the outside device's
    config, secrets, or onward topology (the paper's Challenge 2 fidelity
    refinement). *)

val open_session :
  ?technician:string -> ?obs:Heimdall_obs.Obs.t -> privilege:Privilege.t ->
  Emulation.t -> Session.t
(** Open a monitored technician session on a twin.  With [?obs] the
    reference monitor records privilege denials as structured events
    and feeds the session command counters. *)

val slice_nodes :
  ?strategy:Slicer.strategy -> ?obs:Heimdall_obs.Obs.t ->
  production:Network.t -> endpoints:string list -> unit ->
  string list
(** The node set the twin would contain (exposed for metrics).  With
    [?obs], a [twin.slice] span plus a [twin.slice_nodes] gauge. *)
