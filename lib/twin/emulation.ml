open Heimdall_net
open Heimdall_config
open Heimdall_control

type t = {
  mutable network : Network.t;
  baseline : Network.t;
  mutable dataplane : Dataplane.t option;
  mutable reloads : int;
  mutable fault_hook : (node:string -> string option) option;
}

let create_unchecked network =
  { network; baseline = network; dataplane = None; reloads = 0; fault_hook = None }

let create network =
  List.iter
    (fun (node, cfg) ->
      if not (Redact.is_scrubbed cfg) then
        invalid_arg
          (Printf.sprintf "Emulation.create: node %s carries unscrubbed secrets" node))
    (Network.configs network);
  create_unchecked network

let network t = t.network
let baseline t = t.baseline

let dataplane t =
  match t.dataplane with
  | Some dp -> dp
  | None ->
      let dp = Dataplane.compute t.network in
      t.dataplane <- Some dp;
      dp

let invalidate t = t.dataplane <- None

let set_fault_hook t hook = t.fault_hook <- hook

let apply t ~node op =
  match match t.fault_hook with Some h -> h ~node | None -> None with
  | Some reason -> Error reason
  | None -> (
      match Network.apply_changes [ Change.v node op ] t.network with
      | Error _ as e -> e
      | Ok net ->
          t.network <- net;
          invalidate t;
          Ok ())

let erase t ~node =
  match Network.config node t.network with
  | None -> ()
  | Some cfg ->
      let wiped =
        Ast.make
          ~interfaces:
            (List.map
               (fun (i : Ast.interface) -> Ast.interface ~enabled:i.enabled i.if_name)
               cfg.interfaces)
          cfg.hostname
      in
      t.network <- Network.with_config node wiped t.network;
      invalidate t

let reload t ~node =
  ignore node;
  t.reloads <- t.reloads + 1

let reload_count t = t.reloads

let changes t =
  List.concat_map
    (fun (node, after) ->
      match Network.config node t.baseline with
      | None -> []
      | Some before -> Change.diff ~node before after)
    (Network.configs t.network)

let source_address t node = Network.host_address node t.network

let ping t ~node dst =
  match source_address t node with
  | None -> None
  | Some src -> Some (Heimdall_verify.Trace.trace (dataplane t) (Flow.icmp src dst))

let traceroute = ping
