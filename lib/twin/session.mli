(** The reference monitor: a technician session on the twin network.

    Every command the technician types is parsed, mapped to a privilege
    request, checked against the session's [Privilege_msp], and only then
    forwarded to the emulation/presentation layers.  Every attempt —
    allowed or denied — is recorded in the session log, which later feeds
    the enforcer's tamper-evident audit trail. *)

open Heimdall_privilege

type verdict = Allowed | Denied

type log_entry = {
  seq : int;
  technician : string;
  node : string;  (** Device in scope (or ["-"] before any connect). *)
  command : string;  (** Raw command text. *)
  action : Action.t;
  verdict : verdict;
}

val log_entry_to_string : log_entry -> string

type error =
  | Not_connected
  | Unknown_node of string
  | Bad_command of string
  | Denied_request of { action : Action.t; node : string }
  | Exec_failed of string

val error_to_string : error -> string

type t

val create :
  ?technician:string -> ?obs:Heimdall_obs.Obs.t -> privilege:Privilege.t ->
  Emulation.t -> t
(** A fresh session; [technician] defaults to ["tech"].  With [?obs]
    the monitor counts commands ([session.commands] / [session.denied])
    and records every privilege denial as a [privilege.denied] event —
    verdicts and the session log are unaffected. *)

val exec : t -> string -> (string, error) result
(** Execute one command line; returns console output.  Denied and
    malformed commands are still logged. *)

val exec_many : t -> string list -> (string, error) result list
(** Execute a prepared command list in order (does not stop on errors —
    matching how a scripted technician plows through). *)

val emulation : t -> Emulation.t
val privilege : t -> Privilege.t

val escalate : t -> Privilege.predicate -> unit
(** Grant an additional predicate (highest precedence) — the paper's
    privilege-escalation flow.  The escalation itself is logged. *)

val connected : t -> string option
val log : t -> log_entry list
(** All entries, oldest first. *)

val denied_count : t -> int
val command_count : t -> int
