(* Tests for the verification layer: flow tracing, policies, and the
   spec miner, using the triangle fixture and the enterprise network. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify
module B = Heimdall_scenarios.Builder

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ip = Ipv4.of_string
let pfx = Prefix.of_string
let ia = Ifaddr.of_string

let triangle () =
  let b = B.create () in
  List.iter (B.router b) [ "r1"; "r2"; "r3" ];
  B.switch b "sw1";
  ignore (B.p2p ~area:0 ~cost:10 b "r1" "r2");
  ignore (B.p2p ~area:0 ~cost:1 b "r1" "r3");
  ignore (B.p2p ~area:0 ~cost:1 b "r2" "r3");
  B.routed_host ~area:0 b ~host_name:"h1" ~dev:"r1" ~subnet:(pfx "10.1.0.0/24") ~host_octet:10;
  B.routed_host ~area:0 b ~host_name:"h2" ~dev:"r2" ~subnet:(pfx "10.2.0.0/24") ~host_octet:10;
  B.svi ~area:0 b "r3" 10 (ia "10.3.0.1/24");
  B.trunk_link b "sw1" "r3" ~vlans:[ 10 ];
  B.attach_host b ~host_name:"h3" ~dev:"sw1" ~vlan:10 ~addr:(ia "10.3.0.10/24")
    ~gateway:(ip "10.3.0.1");
  B.build b

let trace net flow = Trace.trace (Dataplane.compute net) flow

(* ---------------- Trace ---------------- *)

let test_trace_delivery () =
  let net = triangle () in
  let result = trace net (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10")) in
  checkb "delivered" true (Trace.is_delivered result);
  (* Path: h1 -> r1 -> r3 -> r2 -> h2 (low-cost route via r3). *)
  let nodes = Trace.nodes_on_path result in
  checkb "via r3" true (List.mem "r3" nodes);
  checkb "starts at h1" true (List.hd nodes = "h1")

let test_trace_l2_path_records_switch () =
  let net = triangle () in
  let result = trace net (Flow.icmp (ip "10.1.0.10") (ip "10.3.0.10")) in
  checkb "delivered" true (Trace.is_delivered result);
  checkb "switch on path" true (List.mem "sw1" (Trace.nodes_on_path result))

let test_trace_same_subnet_l2 () =
  let net = triangle () in
  (* Two hosts on the same subnet talk purely at L2; add one more host. *)
  let result = trace net (Flow.icmp (ip "10.3.0.10") (ip "10.3.0.1")) in
  checkb "host to gateway" true (Trace.is_delivered result)

let test_trace_unknown_source () =
  let net = triangle () in
  match trace net (Flow.icmp (ip "172.16.0.1") (ip "10.2.0.10")) with
  | Trace.Dropped (Trace.Unknown_source _, _) -> ()
  | _ -> Alcotest.fail "expected unknown source"

let test_trace_no_route () =
  let net = triangle () in
  (* Routers have no default route: an unknown destination dies at the
     first router. *)
  match trace net (Flow.icmp (ip "10.1.0.10") (ip "172.16.0.1")) with
  | Trace.Dropped (Trace.No_route { node = "r1" }, _) -> ()
  | Trace.Dropped (r, _) -> Alcotest.fail (Trace.drop_reason_to_string r)
  | Trace.Delivered _ -> Alcotest.fail "delivered?!"

let test_trace_acl_deny_inbound () =
  let net = triangle () in
  let acl =
    Acl.make "NO_ICMP"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:10 Acl.Deny Prefix.any Prefix.any;
        Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any;
      ]
  in
  let cfg = Network.config_exn "r2" net in
  let cfg = Ast.update_acl acl cfg in
  let cfg =
    Ast.update_interface
      { (Option.get (Ast.find_interface "eth1" cfg)) with Ast.acl_in = Some "NO_ICMP" }
      cfg
  in
  let net = Network.with_config "r2" cfg net in
  (match trace net (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10")) with
  | Trace.Dropped (Trace.Acl_denied { node = "r2"; dir = Trace.In; acl = "NO_ICMP"; rule_seq = Some 10; _ }, _) ->
      ()
  | Trace.Dropped (r, _) -> Alcotest.fail (Trace.drop_reason_to_string r)
  | Trace.Delivered _ -> Alcotest.fail "not denied");
  (* TCP is unaffected. *)
  checkb "tcp passes" true
    (Trace.is_delivered (trace net (Flow.tcp ~dst_port:80 (ip "10.1.0.10") (ip "10.2.0.10"))))

let test_trace_dangling_acl_fails_closed () =
  let net = triangle () in
  let cfg = Network.config_exn "r2" net in
  let cfg =
    Ast.update_interface
      { (Option.get (Ast.find_interface "eth1" cfg)) with Ast.acl_in = Some "GHOST" }
      cfg
  in
  let net = Network.with_config "r2" cfg net in
  match trace net (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10")) with
  | Trace.Dropped (Trace.Acl_denied { acl = "GHOST"; rule_seq = None; _ }, _) -> ()
  | _ -> Alcotest.fail "expected fail-closed deny"

let test_trace_downed_interface () =
  let net = triangle () in
  let broken =
    Result.get_ok
      (Network.apply_changes
         [
           Change.v "r3" (Change.Set_interface_enabled { iface = "eth0"; enabled = false });
           Change.v "r3" (Change.Set_interface_enabled { iface = "eth1"; enabled = false });
         ]
         net)
  in
  (* The cheap path died; traffic must fall back to the expensive r1-r2
     link and still arrive. *)
  checkb "rerouted" true
    (Trace.is_delivered (trace broken (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10"))))

let test_trace_ttl_loop () =
  (* Two routers with static routes pointing at each other for a prefix
     neither owns: a forwarding loop. *)
  let b = B.create () in
  List.iter (B.router b) [ "ra"; "rb" ];
  let subnet = B.p2p b "ra" "rb" in
  B.routed_host b ~host_name:"hh" ~dev:"ra" ~subnet:(pfx "10.50.0.0/24") ~host_octet:10;
  B.static_route b "ra" (pfx "10.60.0.0/24") (Prefix.host subnet 2);
  B.static_route b "rb" (pfx "10.60.0.0/24") (Prefix.host subnet 1);
  let net = B.build b in
  match trace net (Flow.icmp (ip "10.50.0.10") (ip "10.60.0.1")) with
  | Trace.Dropped (Trace.Ttl_exceeded, hops) -> checkb "many hops" true (List.length hops > 10)
  | _ -> Alcotest.fail "expected loop"

(* ---------------- Policy ---------------- *)

let test_policy_check () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  let reach =
    Policy.reachable ~src_label:"h1" ~dst_label:"h2" (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10"))
  in
  let isolated =
    Policy.isolated ~src_label:"h1" ~dst_label:"h2" (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10"))
  in
  checkb "reach holds" true (Policy.check dp reach = Policy.Holds);
  checkb "isolated violated" true
    (match Policy.check dp isolated with Policy.Violated _ -> true | Policy.Holds -> false)

let test_policy_waypoint () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  let via_r3 =
    Policy.waypoint ~src_label:"h1" ~dst_label:"h2" ~via:"r3"
      (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10"))
  in
  checkb "via r3 holds" true (Policy.check dp via_r3 = Policy.Holds);
  let via_sw =
    Policy.waypoint ~src_label:"h1" ~dst_label:"h2" ~via:"sw1"
      (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10"))
  in
  checkb "via sw1 violated" true
    (match Policy.check dp via_sw with Policy.Violated _ -> true | Policy.Holds -> false)

let test_policy_check_all () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  let ps =
    [
      Policy.reachable ~src_label:"a" ~dst_label:"b" (Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10"));
      Policy.isolated ~src_label:"a" ~dst_label:"b" (Flow.icmp (ip "10.1.0.10") (ip "10.3.0.10"));
    ]
  in
  let report = Policy.check_all dp ps in
  checki "total" 2 report.Policy.total;
  checki "violations" 1 (List.length report.Policy.violations);
  checkb "holds_all false" false (Policy.holds_all dp ps)

let test_policy_ids_unique () =
  let _, policies = Heimdall_scenarios.Experiments.enterprise () in
  let ids = List.map (fun (p : Policy.t) -> p.id) policies in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq String.compare ids))

(* ---------------- Reachability ---------------- *)

let test_reach_diff_union () =
  let net = triangle () in
  (* [before] lacks h3 entirely (restricted network): every h3 pair is
     present only in [after] and must still show up as gained. *)
  let small = Network.restrict [ "r1"; "r2"; "r3"; "sw1"; "h1"; "h2" ] net in
  let before = Reachability.compute (Dataplane.compute small) in
  let after = Reachability.compute (Dataplane.compute net) in
  let impact = Reachability.diff ~before ~after in
  checkb "gained h1->h3" true (List.mem ("h1", "h3") impact.Reachability.gained);
  checkb "gained h3->h2" true (List.mem ("h3", "h2") impact.Reachability.gained);
  checki "nothing lost" 0 (List.length impact.Reachability.lost);
  (* Symmetric direction: pairs present only in [before] count as lost. *)
  let impact' = Reachability.diff ~before:after ~after:before in
  checkb "lost h1->h3" true (List.mem ("h1", "h3") impact'.Reachability.lost);
  checki "nothing gained" 0 (List.length impact'.Reachability.gained)

let test_reach_impact_of_changes () =
  let net = triangle () in
  (* Downing r2's host-facing interface severs h2's subnet. *)
  let change =
    Change.v "r2" (Change.Set_interface_enabled { iface = "eth2"; enabled = false })
  in
  (match Reachability.impact_of_changes ~production:net [ change ] with
  | Error m -> Alcotest.fail m
  | Ok impact ->
      checkb "h1->h2 lost" true (List.mem ("h1", "h2") impact.Reachability.lost);
      checki "nothing gained" 0 (List.length impact.Reachability.gained));
  (* A change against an unknown node surfaces as a clean [Error]. *)
  match
    Reachability.impact_of_changes ~production:net
      [ Change.v "ghost" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for unknown node"

(* ---------------- Engine ---------------- *)

let test_engine_caches () =
  let net = triangle () in
  let e = Engine.create ~domains:1 () in
  let dp = Engine.dataplane e net in
  let flow = Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10") in
  let r1 = Engine.trace e dp flow in
  let r2 = Engine.trace e dp flow in
  checkb "cached trace equal" true (r1 = r2);
  let dp' = Engine.dataplane e net in
  checkb "same dataplane value" true (dp == dp');
  let s = Engine.stats e in
  checki "traces run" 1 s.Engine.traces_run;
  checki "trace cache hits" 1 s.Engine.trace_cache_hits;
  checki "dataplanes built" 1 s.Engine.dataplanes_built;
  checki "dataplane cache hits" 1 s.Engine.dataplane_cache_hits;
  checkb "hit rate 0.5" true (abs_float (Engine.trace_hit_rate s -. 0.5) < 1e-9);
  Engine.reset_stats e;
  let s = Engine.stats e in
  checki "reset traces" 0 s.Engine.traces_run;
  checki "reset hits" 0 s.Engine.trace_cache_hits

let test_engine_map_deterministic () =
  let e1 = Engine.create ~domains:1 () in
  let e4 = Engine.create ~domains:4 () in
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let seq = List.map f xs in
  checkb "map domains:1" true (Engine.map e1 f xs = seq);
  checkb "map domains:4" true (Engine.map e4 f xs = seq);
  checkb "map empty" true (Engine.map e4 f [] = []);
  checkb "domains recorded" true ((Engine.stats e4).Engine.domains_used > 1)

let test_engine_check_all_matches_sequential () =
  let net, policies = Heimdall_scenarios.Experiments.enterprise () in
  let dp = Dataplane.compute net in
  let seq = Policy.check_all dp policies in
  let engine = Engine.create ~domains:4 () in
  let par = Policy.check_all ~engine dp policies in
  checki "same total" seq.Policy.total par.Policy.total;
  checkb "same violations" true (seq.Policy.violations = par.Policy.violations);
  let m_seq = Reachability.compute dp in
  let m_par = Reachability.compute ~engine dp in
  checki "same pair count" (Reachability.pair_count m_seq) (Reachability.pair_count m_par);
  checki "same reachable count" (Reachability.reachable_count m_seq)
    (Reachability.reachable_count m_par);
  let d = Reachability.diff ~before:m_seq ~after:m_par in
  checkb "matrices identical" true (d.Reachability.gained = [] && d.Reachability.lost = []);
  checkb "engine saw trace work" true ((Engine.stats engine).Engine.traces_run > 0)

let test_engine_map_cutoff () =
  (* Small workloads must not pay for a parallel fan-out: below the
     min-per-domain threshold the map runs sequentially on the caller. *)
  let e = Engine.create ~domains:4 () in
  let xs = List.init 8 Fun.id in
  let f x = x * 3 in
  checkb "small map correct" true (Engine.map e f xs = List.map f xs);
  checki "small map stayed sequential" 1 (Engine.stats e).Engine.domains_used;
  checkb "forced parallel correct" true
    (Engine.map ~min_per_domain:1 e f xs = List.map f xs);
  checkb "forced parallel engaged pool" true ((Engine.stats e).Engine.domains_used > 1);
  Engine.shutdown e

let test_engine_pool_reuse () =
  (* One persistent pool serves many maps; shutdown releases it and the
     next map transparently respawns. *)
  let e = Engine.create ~domains:4 () in
  let xs = List.init 64 Fun.id in
  let f x = (x * 7) mod 13 in
  let expected = List.map f xs in
  for _ = 1 to 20 do
    checkb "repeated map identical" true (Engine.map ~min_per_domain:1 e f xs = expected)
  done;
  Engine.shutdown e;
  Engine.shutdown e (* idempotent *);
  checkb "map after shutdown works" true
    (Engine.map ~min_per_domain:1 e f xs = expected);
  Engine.shutdown e

let test_engine_map_exception () =
  let e = Engine.create ~domains:4 () in
  let xs = List.init 64 Fun.id in
  (match Engine.map ~min_per_domain:1 e (fun x -> if x = 40 then failwith "boom" else x) xs with
  | _ -> Alcotest.fail "expected exception from parallel map"
  | exception Failure m -> Alcotest.check Alcotest.string "exception propagated" "boom" m);
  (* The pool must still be usable after a failed map. *)
  checkb "pool survives exception" true (Engine.map ~min_per_domain:1 e Fun.id xs = xs);
  Engine.shutdown e

let test_engine_trace_single_flight () =
  (* 200 concurrent lookups of the same uncached flow must run exactly
     one trace: one domain computes, everyone else waits and reuses. *)
  let net = triangle () in
  let e = Engine.create ~domains:4 () in
  let dp = Engine.dataplane e net in
  let flow = Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10") in
  let results =
    Engine.map ~min_per_domain:1 e (fun _ -> Engine.trace e dp flow) (List.init 200 Fun.id)
  in
  let first = List.hd results in
  checkb "all results equal" true (List.for_all (fun r -> r = first) results);
  let s = Engine.stats e in
  checki "one trace ran" 1 s.Engine.traces_run;
  checki "199 answered from cache or coalesced" 199
    (s.Engine.trace_cache_hits + s.Engine.trace_coalesced);
  Engine.shutdown e

let test_engine_incremental_dataplane () =
  let net = triangle () in
  let e = Engine.create ~domains:1 () in
  let base = Engine.dataplane e net in
  (* Routing-relevant change: down an interface on r3. *)
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r3" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ]
         net)
  in
  let incr_dp = Engine.dataplane ~base e broken in
  let full_dp = Dataplane.compute broken in
  checkb "incremental route counts match full compute" true
    (Dataplane.route_counts incr_dp = Dataplane.route_counts full_dp);
  let flow = Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10") in
  checkb "incremental trace matches full compute" true
    (Trace.trace incr_dp flow = Trace.trace full_dp flow);
  checkb "incremental build counted" true
    ((Engine.stats e).Engine.dataplanes_incremental > 0);
  (* ACL-only change: every FIB must be reused physically. *)
  let cfg = Network.config_exn "r2" net in
  let cfg = { cfg with Ast.acls = Acl.make "NOP" [ Acl.rule ~seq:10 Acl.Permit Prefix.any Prefix.any ] :: cfg.Ast.acls } in
  let acl_net = Network.with_config "r2" cfg net in
  let acl_dp = Engine.dataplane ~base e acl_net in
  checkb "acl-only change reuses fib physically" true
    (Dataplane.fib "r1" acl_dp == Dataplane.fib "r1" base);
  checkb "acl-only change carries new network" true
    (Network.config "r2" (Dataplane.network acl_dp) = Some cfg)

let test_engine_persistent_cache () =
  let dir = Filename.temp_dir "heimdall-dpcache-test" "" in
  let net = triangle () in
  let e1 = Engine.create ~domains:1 ~cache_dir:dir () in
  let dp1 = Engine.dataplane e1 net in
  checki "first engine built it" 1 (Engine.stats e1).Engine.dataplanes_built;
  (* A fresh engine pointed at the same directory loads instead of
     building. *)
  let e2 = Engine.create ~domains:1 ~cache_dir:dir () in
  let dp2 = Engine.dataplane e2 net in
  let s2 = Engine.stats e2 in
  checki "second engine built nothing" 0 s2.Engine.dataplanes_built;
  checkb "persistent hit counted" true (s2.Engine.dataplane_persistent_hits > 0);
  checkb "loaded dataplane equivalent" true
    (Dataplane.route_counts dp1 = Dataplane.route_counts dp2);
  let flow = Flow.icmp (ip "10.1.0.10") (ip "10.2.0.10") in
  checkb "loaded dataplane traces identically" true
    (Trace.trace dp1 flow = Trace.trace dp2 flow);
  (* A corrupt cache entry must read as a miss, not an error. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".dp" then
        Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
            Out_channel.output_string oc "garbage"))
    (Sys.readdir dir);
  let e3 = Engine.create ~domains:1 ~cache_dir:dir () in
  let dp3 = Engine.dataplane e3 net in
  checki "corrupt entry rebuilt" 1 (Engine.stats e3).Engine.dataplanes_built;
  checkb "rebuilt dataplane equivalent" true
    (Dataplane.route_counts dp1 = Dataplane.route_counts dp3)

let test_network_digest () =
  let a = triangle () in
  let b = triangle () in
  checkb "digest deterministic across rebuilds" true (Network.digest a = Network.digest b);
  checkb "no changed devices between equal networks" true
    (Network.changed_devices a b = Some []);
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r3" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ]
         a)
  in
  checkb "digest changes with a config change" true
    (Network.digest a <> Network.digest broken);
  checkb "changed device identified" true
    (Network.changed_devices a broken = Some [ "r3" ]);
  checkb "device digest changed" true
    (Network.device_digest "r3" a <> Network.device_digest "r3" broken);
  checkb "untouched device digest stable" true
    (Network.device_digest "r1" a = Network.device_digest "r1" broken);
  (* Reverting the change restores the digest (structural, not historical). *)
  let reverted =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r3" (Change.Set_interface_enabled { iface = "eth0"; enabled = true }) ]
         broken)
  in
  checkb "digest reverts with the config" true (Network.digest a = Network.digest reverted);
  (* Different node sets are incomparable. *)
  let restricted = Network.restrict [ "r1"; "r2"; "r3"; "sw1"; "h1"; "h2" ] a in
  checkb "different node sets incomparable" true
    (Network.changed_devices a restricted = None)

(* ---------------- Spec miner ---------------- *)

let test_miner_triangle () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  let policies = Spec_miner.mine dp in
  (* 3 host subnets -> 6 ordered pairs, all reachable. *)
  checki "six policies" 6 (List.length policies);
  checkb "all reachable" true
    (List.for_all (fun (p : Policy.t) -> p.intent = Policy.Reachable) policies)

let test_miner_detects_isolation () =
  let net = triangle () in
  (* Deny icmp h1-subnet -> h2-subnet inbound on r2. *)
  let acl =
    Acl.make "ISO"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:10 Acl.Deny (pfx "10.1.0.0/24")
          (pfx "10.2.0.0/24");
        Acl.rule ~seq:20 Acl.Permit Prefix.any Prefix.any;
      ]
  in
  let cfg = Network.config_exn "r2" net in
  let cfg = Ast.update_acl acl cfg in
  let cfg =
    List.fold_left
      (fun cfg ifname ->
        Ast.update_interface
          { (Option.get (Ast.find_interface ifname cfg)) with Ast.acl_in = Some "ISO" }
          cfg)
      cfg [ "eth0"; "eth1" ]
  in
  let net = Network.with_config "r2" cfg net in
  let policies = Spec_miner.mine (Dataplane.compute net) in
  let isolated =
    List.filter (fun (p : Policy.t) -> p.intent = Policy.Isolated) policies
  in
  checki "one isolated" 1 (List.length isolated)

let test_miner_skips_broken () =
  let net = triangle () in
  let broken =
    Result.get_ok
      (Network.apply_changes
         [ Change.v "r2" (Change.Set_interface_enabled { iface = "eth2"; enabled = false }) ]
         net)
  in
  let policies = Spec_miner.mine (Dataplane.compute broken) in
  (* h2's subnet vanished (interface down): only h1<->h3 pairs remain. *)
  checki "two policies" 2 (List.length policies)

let test_miner_deterministic () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  checkb "same result twice" true (Spec_miner.mine dp = Spec_miner.mine dp)

let test_miner_tcp_services () =
  let net = triangle () in
  let dp = Dataplane.compute net in
  let policies =
    Spec_miner.mine
      ~options:{ Spec_miner.mine_icmp = false; tcp_services = [ ("h2", 443) ] }
      dp
  in
  checki "two tcp policies" 2 (List.length policies);
  checkb "tcp flows" true
    (List.for_all (fun (p : Policy.t) -> p.flow.Flow.proto = Flow.Tcp) policies)

let test_miner_waypoint_upgrade () =
  (* A firewall on the path upgrades Reachable to Waypoint. *)
  let b = B.create () in
  B.router b "r";
  B.firewall b "fw";
  ignore (B.p2p ~area:0 b "r" "fw");
  B.routed_host ~area:0 b ~host_name:"ha" ~dev:"r" ~subnet:(pfx "10.71.0.0/24") ~host_octet:10;
  B.routed_host ~area:0 b ~host_name:"hb" ~dev:"fw" ~subnet:(pfx "10.72.0.0/24") ~host_octet:10;
  let net = B.build b in
  let policies = Spec_miner.mine (Dataplane.compute net) in
  checkb "has waypoint" true
    (List.exists
       (fun (p : Policy.t) -> match p.intent with Policy.Waypoint "fw" -> true | _ -> false)
       policies)

let suite =
  [
    Alcotest.test_case "trace delivery" `Quick test_trace_delivery;
    Alcotest.test_case "trace records switches" `Quick test_trace_l2_path_records_switch;
    Alcotest.test_case "trace same subnet" `Quick test_trace_same_subnet_l2;
    Alcotest.test_case "trace unknown source" `Quick test_trace_unknown_source;
    Alcotest.test_case "trace no route" `Quick test_trace_no_route;
    Alcotest.test_case "trace acl deny inbound" `Quick test_trace_acl_deny_inbound;
    Alcotest.test_case "trace dangling acl fails closed" `Quick
      test_trace_dangling_acl_fails_closed;
    Alcotest.test_case "trace reroutes around failure" `Quick test_trace_downed_interface;
    Alcotest.test_case "trace detects loops" `Quick test_trace_ttl_loop;
    Alcotest.test_case "policy check" `Quick test_policy_check;
    Alcotest.test_case "policy waypoint" `Quick test_policy_waypoint;
    Alcotest.test_case "policy check_all" `Quick test_policy_check_all;
    Alcotest.test_case "policy ids unique" `Quick test_policy_ids_unique;
    Alcotest.test_case "reach diff over union" `Quick test_reach_diff_union;
    Alcotest.test_case "reach impact of changes" `Quick test_reach_impact_of_changes;
    Alcotest.test_case "engine caches" `Quick test_engine_caches;
    Alcotest.test_case "engine map deterministic" `Quick test_engine_map_deterministic;
    Alcotest.test_case "engine matches sequential" `Quick
      test_engine_check_all_matches_sequential;
    Alcotest.test_case "engine map cutoff" `Quick test_engine_map_cutoff;
    Alcotest.test_case "engine pool reuse" `Quick test_engine_pool_reuse;
    Alcotest.test_case "engine map exception" `Quick test_engine_map_exception;
    Alcotest.test_case "engine trace single-flight" `Quick test_engine_trace_single_flight;
    Alcotest.test_case "engine incremental dataplane" `Quick
      test_engine_incremental_dataplane;
    Alcotest.test_case "engine persistent cache" `Quick test_engine_persistent_cache;
    Alcotest.test_case "network digest" `Quick test_network_digest;
    Alcotest.test_case "miner triangle" `Quick test_miner_triangle;
    Alcotest.test_case "miner detects isolation" `Quick test_miner_detects_isolation;
    Alcotest.test_case "miner skips broken pairs" `Quick test_miner_skips_broken;
    Alcotest.test_case "miner deterministic" `Quick test_miner_deterministic;
    Alcotest.test_case "miner tcp services" `Quick test_miner_tcp_services;
    Alcotest.test_case "miner waypoint upgrade" `Quick test_miner_waypoint_upgrade;
  ]
