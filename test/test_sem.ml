(* Tests for Heimdall_sem and the semantic lint families it powers:
   the packet-set algebra (unit + QCheck laws), ACL compilation and
   exact dead-rule analysis (ACL004/ACL005), the network-wide pass
   (NET001-NET006), privilege over-grant detection (PRV004), engine
   determinism of the extended report, and the enforcer's semantic
   pre-check records. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_privilege
open Heimdall_lint
open Heimdall_sem
module Experiments = Heimdall_scenarios.Experiments
module B = Heimdall_scenarios.Builder

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ia = Ifaddr.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string

let with_code c diags = List.filter (fun (d : Diagnostic.t) -> d.code = c) diags

let one_diag label code diags =
  match with_code code diags with
  | [ d ] -> d
  | l -> Alcotest.failf "%s: expected exactly one %s, got %d" label code (List.length l)

let cube ?protos ?src_port ?dst_port src dst =
  Packet_set.cube ?protos ?src_port ?dst_port ~src:(pfx src) ~dst:(pfx dst) ()

(* ---------------- algebra: unit ---------------- *)

let test_algebra_basics () =
  checkb "empty is empty" true (Packet_set.is_empty Packet_set.empty);
  checkb "full not empty" false (Packet_set.is_empty Packet_set.full);
  checkb "complement full" true (Packet_set.is_empty (Packet_set.complement Packet_set.full));
  checkb "complement empty" true (Packet_set.equal Packet_set.full (Packet_set.complement Packet_set.empty));
  let a = cube ~protos:[ Flow.Tcp ] "10.0.0.0/8" "0.0.0.0/0" in
  checkb "subset of full" true (Packet_set.subset a Packet_set.full);
  checkb "inter with complement" true
    (Packet_set.is_empty (Packet_set.inter a (Packet_set.complement a)));
  checkb "sample member" true
    (match Packet_set.sample a with Some p -> Packet_set.mem a p | None -> false);
  checkb "empty sample" true (Packet_set.sample Packet_set.empty = None);
  (* Degenerate constructors. *)
  checkb "empty protos" true (Packet_set.is_empty (cube ~protos:[] "10.0.0.0/8" "0.0.0.0/0"));
  checkb "inverted ports" true
    (Packet_set.is_empty (cube ~dst_port:(443, 80) "0.0.0.0/0" "0.0.0.0/0"))

let test_algebra_union_of_halves () =
  (* The motivating ACL004 case: two /17s union to exactly the /16. *)
  let lo = cube "10.250.0.0/17" "0.0.0.0/0" in
  let hi = cube "10.250.128.0/17" "0.0.0.0/0" in
  let whole = cube "10.250.0.0/16" "0.0.0.0/0" in
  checkb "halves union to whole" true (Packet_set.equal (Packet_set.union lo hi) whole);
  checkb "halves disjoint" true (Packet_set.is_empty (Packet_set.inter lo hi));
  checkb "whole minus half is half" true
    (Packet_set.equal (Packet_set.diff whole lo) hi);
  (* Port intervals behave the same way. *)
  let p_lo = cube ~dst_port:(0, 79) "0.0.0.0/0" "0.0.0.0/0" in
  let p_hi = cube ~dst_port:(80, Packet_set.max_port) "0.0.0.0/0" "0.0.0.0/0" in
  checkb "port halves union to full" true
    (Packet_set.equal (Packet_set.union p_lo p_hi) Packet_set.full)

let test_algebra_diff_membership () =
  let a = cube ~protos:[ Flow.Tcp ] "10.0.0.0/8" "0.0.0.0/0" in
  let b = cube ~protos:[ Flow.Tcp ] ~dst_port:(80, 80) "10.0.0.0/8" "0.0.0.0/0" in
  let d = Packet_set.diff a b in
  let f port = Flow.make ~proto:Flow.Tcp ~src_port:40000 ~dst_port:port (ip "10.1.2.3") (ip "8.8.8.8") in
  checkb "port 80 removed" false (Packet_set.mem d (f 80));
  checkb "port 81 kept" true (Packet_set.mem d (f 81));
  checkb "port 79 kept" true (Packet_set.mem d (f 79));
  checkb "icmp never in tcp cube" false
    (Packet_set.mem a (Flow.icmp (ip "10.1.2.3") (ip "8.8.8.8")));
  checkb "to_string nonempty" true (String.length (Packet_set.to_string a) > 0);
  checks "to_string empty" "<empty>" (Packet_set.to_string Packet_set.empty)

(* ---------------- algebra: QCheck laws ---------------- *)

let prefix_pool =
  [|
    "0.0.0.0/0"; "10.0.0.0/8"; "10.0.0.0/9"; "10.128.0.0/9"; "10.250.0.0/16";
    "10.250.0.0/17"; "10.250.128.0/17"; "192.168.1.0/24"; "192.168.1.64/26";
  |]

let proto_pool = [| None; Some [ Flow.Tcp ]; Some [ Flow.Udp; Flow.Icmp ] |]
let port_pool = [| None; Some (80, 80); Some (0, 1023); Some (1024, Packet_set.max_port) |]

let set_of_seed seeds =
  List.fold_left
    (fun acc (a, b, c) ->
      Packet_set.union acc
        (Packet_set.cube
           ?protos:proto_pool.(c mod Array.length proto_pool)
           ?dst_port:port_pool.(b mod Array.length port_pool)
           ~src:(pfx prefix_pool.(a mod Array.length prefix_pool))
           ~dst:(pfx prefix_pool.(b mod Array.length prefix_pool))
           ()))
    Packet_set.empty seeds

let arb_set =
  QCheck.map set_of_seed
    (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
       (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))

let addr_pool =
  [|
    "10.0.0.0"; "10.127.255.255"; "10.128.0.0"; "10.250.0.1"; "10.250.128.0";
    "192.168.1.5"; "192.168.1.100"; "8.8.8.8";
  |]

let flow_of_seed (i, j, k) =
  let proto = [| Flow.Icmp; Flow.Tcp; Flow.Udp |].(k mod 3) in
  let dst_port = [| 0; 79; 80; 443; 1024; 65535 |].(k mod 6) in
  Flow.make ~proto ~src_port:40000 ~dst_port
    (ip addr_pool.(i mod Array.length addr_pool))
    (ip addr_pool.(j mod Array.length addr_pool))

let arb_flow =
  QCheck.map flow_of_seed (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat)

let prop_set_laws =
  QCheck.Test.make ~count:200 ~name:"algebra laws (idempotence, commutativity, diff)"
    (QCheck.pair arb_set arb_set) (fun (a, b) ->
      Packet_set.equal (Packet_set.union a a) a
      && Packet_set.equal (Packet_set.inter a a) a
      && Packet_set.equal (Packet_set.union a b) (Packet_set.union b a)
      && Packet_set.equal (Packet_set.inter a b) (Packet_set.inter b a)
      && Packet_set.is_empty (Packet_set.diff a a)
      && Packet_set.subset (Packet_set.diff a b) a
      && Packet_set.equal (Packet_set.union (Packet_set.diff a b) (Packet_set.inter a b)) a)

let prop_set_membership =
  QCheck.Test.make ~count:300 ~name:"membership distributes over inter/union/diff"
    (QCheck.triple arb_set arb_set arb_flow) (fun (a, b, f) ->
      Packet_set.mem (Packet_set.inter a b) f = (Packet_set.mem a f && Packet_set.mem b f)
      && Packet_set.mem (Packet_set.union a b) f = (Packet_set.mem a f || Packet_set.mem b f)
      && Packet_set.mem (Packet_set.diff a b) f
         = (Packet_set.mem a f && not (Packet_set.mem b f)))

(* ---------------- ACL compilation ---------------- *)

let rule_of_seed i (a, b, c, permit) =
  let protos = [| Acl.Any_proto; Acl.Proto Flow.Tcp; Acl.Proto Flow.Udp; Acl.Proto Flow.Icmp |] in
  let ports = [| Acl.Any_port; Acl.Eq 80; Acl.Range (0, 1023) |] in
  Acl.rule
    ~seq:((i + 1) * 10)
    ~proto:protos.(c mod 4)
    ~dst_port:ports.(c mod 3)
    (if permit then Acl.Permit else Acl.Deny)
    (pfx prefix_pool.(a mod Array.length prefix_pool))
    (pfx prefix_pool.(b mod Array.length prefix_pool))

let arb_acl =
  QCheck.map
    (fun seeds -> Acl.make "GEN" (List.mapi rule_of_seed seeds))
    (QCheck.list_of_size (QCheck.Gen.int_range 1 4)
       (QCheck.quad QCheck.small_nat QCheck.small_nat QCheck.small_nat QCheck.bool))

(* ~1k deterministic flows: every (src, dst, proto/port) combination of
   the pools above. *)
let flow_grid =
  List.concat_map
    (fun i ->
      List.concat_map
        (fun j -> List.map (fun k -> flow_of_seed (i, j, k)) [ 0; 1; 2; 3; 4; 5 ])
        (List.init (Array.length addr_pool) Fun.id))
    (List.init (Array.length addr_pool) Fun.id)

let prop_permit_set_agrees_with_eval =
  QCheck.Test.make ~count:60 ~name:"permit_set agrees with Acl.eval on the flow grid"
    arb_acl (fun acl ->
      let permits = Acl_sem.permit_set acl in
      List.for_all
        (fun f ->
          Packet_set.mem permits f = (fst (Acl.eval acl f) = Acl.Permit))
        flow_grid)

let test_acl_sem_equivalence_and_diff () =
  let whole = Acl.make "A" [ Acl.rule ~seq:10 Acl.Permit (pfx "10.0.0.0/8") Prefix.any ] in
  let halves =
    Acl.make "B"
      [
        Acl.rule ~seq:10 Acl.Permit (pfx "10.0.0.0/9") Prefix.any;
        Acl.rule ~seq:20 Acl.Permit (pfx "10.128.0.0/9") Prefix.any;
      ]
  in
  checkb "split equivalent" true (Acl_sem.equivalent whole halves);
  checkb "self diff empty" true (Acl_sem.diff_is_empty (Acl_sem.diff ~before:whole ~after:halves));
  checks "no change rendering" "no semantic change"
    (Acl_sem.diff_to_string (Acl_sem.diff ~before:whole ~after:whole));
  (* Narrowing the permit denies the top half. *)
  let narrowed = Acl.make "C" [ Acl.rule ~seq:10 Acl.Permit (pfx "10.0.0.0/9") Prefix.any ] in
  let d = Acl_sem.diff ~before:whole ~after:narrowed in
  checkb "nothing newly permitted" true (Packet_set.is_empty d.newly_permitted);
  checkb "top half newly denied" true
    (Packet_set.equal d.newly_denied (cube "10.128.0.0/9" "0.0.0.0/0"));
  (match Acl_sem.diff_witnesses d with
  | [ ("newly-denied", w) ] -> checkb "witness in the lost set" true (Packet_set.mem d.newly_denied w)
  | l -> Alcotest.failf "expected one newly-denied witness, got %d" (List.length l));
  (* The implicit deny means an empty ACL and an explicit deny-all agree. *)
  checkb "empty means deny" true
    (Packet_set.is_empty (Acl_sem.permit_set (Acl.empty "E")));
  checkb "deny_set complements" true
    (Packet_set.equal (Acl_sem.deny_set whole)
       (Packet_set.complement (Acl_sem.permit_set whole)))

let union_dead_acl action =
  Acl.make "UNION"
    [
      Acl.rule ~seq:1 ~proto:(Acl.Proto Flow.Tcp) Acl.Permit (pfx "10.250.0.0/17") Prefix.any;
      Acl.rule ~seq:2 ~proto:(Acl.Proto Flow.Tcp) Acl.Permit (pfx "10.250.128.0/17") Prefix.any;
      Acl.rule ~seq:3 ~proto:(Acl.Proto Flow.Tcp) action (pfx "10.250.0.0/16") Prefix.any;
    ]

let test_dead_rules_union_coverage () =
  (* Opposite action: an intent conflict no pairwise check can see. *)
  (match Acl_sem.dead_rules (union_dead_acl Acl.Deny) with
  | [ d ] ->
      checki "dead rule seq" 3 d.rule.Acl.seq;
      checkb "no single subsumer" true (d.subsumer = None);
      checkb "conflict" true d.conflict;
      checkb "both coverers" true (d.coverers = [ 1; 2 ]);
      checkb "witness decided oppositely" true
        (match d.witness with
        | Some w -> Packet_set.mem (cube ~protos:[ Flow.Tcp ] "10.250.0.0/16" "0.0.0.0/0") w
        | None -> false)
  | l -> Alcotest.failf "expected one dead rule, got %d" (List.length l));
  (* Same action: mere redundancy. *)
  (match Acl_sem.dead_rules (union_dead_acl Acl.Permit) with
  | [ d ] -> checkb "no conflict" true (not d.conflict)
  | l -> Alcotest.failf "expected one dead rule, got %d" (List.length l));
  (* Drop one half: the /16 decides the uncovered half — alive. *)
  let alive = Acl.make "ALIVE" (List.filter (fun (r : Acl.rule) -> r.seq <> 2) (union_dead_acl Acl.Deny).rules) in
  checki "alive" 0 (List.length (Acl_sem.dead_rules alive))

let test_acl004_and_acl005 () =
  let d = one_diag "union conflict" "ACL004" (Lint.check_acl ~device:"r1" (union_dead_acl Acl.Deny)) in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "line is seq" true (d.line = Some 3);
  checkb "witness printed" true
    (let m = d.message in
     let has s =
       let rec go i =
         i + String.length s <= String.length m
         && (String.sub m i (String.length s) = s || go (i + 1))
       in
       go 0
     in
     has "witness" && has "rules 1, 2");
  let d5 = one_diag "union redundancy" "ACL005" (Lint.check_acl ~device:"r1" (union_dead_acl Acl.Permit)) in
  checkb "warning" true (d5.severity = Diagnostic.Warning);
  (* Pairwise shadowing still reports as ACL001/ACL002, never ACL004/005. *)
  let pairwise =
    Acl.make "P"
      [
        Acl.rule ~seq:10 Acl.Deny (pfx "10.0.0.0/8") Prefix.any;
        Acl.rule ~seq:20 Acl.Permit (pfx "10.1.0.0/16") Prefix.any;
      ]
  in
  let ds = Lint.check_acl ~device:"r1" pairwise in
  checki "acl001" 1 (List.length (with_code "ACL001" ds));
  checki "no acl004" 0 (List.length (with_code "ACL004" ds))

(* ---------------- NET family ---------------- *)

let two_routers ?area () =
  let b = B.create () in
  B.router b "r1";
  B.router b "r2";
  let subnet = B.p2p ?area b "r1" "r2" in
  (b, subnet)

let rewire_iface net node f =
  let cfg = Network.config_exn node net in
  let i = Option.get (Ast.find_interface "eth0" cfg) in
  Network.with_config node (Ast.update_interface (f i) cfg) net

let test_net001_one_sided_ospf () =
  (* OSPF announced on r1's end only. *)
  let b, subnet = two_routers () in
  B.ospf_network b "r1" subnet 0;
  let ds = Lint.check_network (B.build b) in
  let d = one_diag "one-sided" "NET001" ds in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "silent end flagged" true (d.device = Some "r2");
  (* Both ends: clean.  Neither end: deliberately non-IGP, also clean. *)
  let both, _ = two_routers ~area:0 () in
  checki "both ends clean" 0 (List.length (with_code "NET001" (Lint.check_network (B.build both))));
  let neither, _ = two_routers () in
  checki "non-igp clean" 0 (List.length (with_code "NET001" (Lint.check_network (B.build neither))))

let test_net002_asymmetric_cost () =
  let b, _ = two_routers ~area:0 () in
  let net = B.build b in
  checki "symmetric clean" 0 (List.length (with_code "NET002" (Lint.check_network net)));
  let skewed = rewire_iface net "r2" (fun i -> { i with Ast.ospf_cost = Some 55 }) in
  let d = one_diag "asymmetric" "NET002" (Lint.check_network skewed) in
  checkb "warning" true (d.severity = Diagnostic.Warning)

let test_net003_overlapping_subnets () =
  let solo2 c1 c2 =
    Network.make
      (Topology.empty
      |> Topology.add_node c1.Ast.hostname Topology.Router
      |> Topology.add_node c2.Ast.hostname Topology.Router)
      [ (c1.Ast.hostname, c1); (c2.Ast.hostname, c2) ]
  in
  let r1 = Ast.make ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.1/16") "eth0" ] "r1" in
  let r2 = Ast.make ~interfaces:[ Ast.interface ~addr:(ia "10.0.1.1/24") "eth0" ] "r2" in
  let d = one_diag "overlap" "NET003" (Lint.check_network (solo2 r1 r2)) in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  (* Equal subnets (one shared segment) and disjoint subnets are clean. *)
  let r2_eq = Ast.make ~interfaces:[ Ast.interface ~addr:(ia "10.0.1.1/16") "eth0" ] "r2" in
  checki "equal clean" 0 (List.length (with_code "NET003" (Lint.check_network (solo2 r1 r2_eq))));
  let r2_far = Ast.make ~interfaces:[ Ast.interface ~addr:(ia "172.16.0.1/24") "eth0" ] "r2" in
  checki "disjoint clean" 0 (List.length (with_code "NET003" (Lint.check_network (solo2 r1 r2_far))))

let add_route net node prefix nh =
  let cfg = Network.config_exn node net in
  let r = { Ast.sr_prefix = prefix; sr_next_hop = nh; sr_distance = 1 } in
  Network.with_config node { cfg with Ast.static_routes = r :: cfg.Ast.static_routes } net

let test_net004_unowned_next_hop () =
  let b, _ = two_routers () in
  let net = B.build b in
  let r2_addr = Ifaddr.address (Option.get (Ast.interface_addr (Network.config_exn "r2" net) "eth0")) in
  (* .2 is r2: resolvable, clean — CFG006 quiet too (on-subnet). *)
  let good = add_route net "r1" (pfx "10.9.0.0/16") r2_addr in
  checki "owned clean" 0 (List.length (with_code "NET004" (Lint.check_network good)));
  (* .3 is on the /30 transit but nobody's: a blackhole CFG006 misses. *)
  let bad = add_route net "r1" (pfx "10.9.0.0/16") (Ipv4.succ r2_addr) in
  let ds = Lint.check_network bad in
  let d = one_diag "unowned" "NET004" ds in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "device" true (d.device = Some "r1");
  checki "cfg006 quiet" 0 (List.length (with_code "CFG006" ds))

let test_net005_two_device_loop () =
  let b, _ = two_routers () in
  let net = B.build b in
  let addr node = Ifaddr.address (Option.get (Ast.interface_addr (Network.config_exn node net) "eth0")) in
  let looped =
    add_route (add_route net "r1" (pfx "10.9.0.0/16") (addr "r2")) "r2" (pfx "10.9.0.0/16") (addr "r1")
  in
  let ds = with_code "NET005" (Lint.check_network looped) in
  checki "both directions flagged" 2 (List.length ds);
  List.iter (fun (d : Diagnostic.t) -> checkb "error" true (d.severity = Diagnostic.Error)) ds;
  (* r2 forwarding a different prefix is not a loop. *)
  let chained =
    add_route (add_route net "r1" (pfx "10.9.0.0/16") (addr "r2")) "r2" (pfx "10.77.0.0/16") (addr "r1")
  in
  checki "disjoint prefixes clean" 0 (List.length (with_code "NET005" (Lint.check_network chained)))

let test_net006_switchport_mismatch () =
  let sw name vlans =
    Ast.make
      ~interfaces:[ Ast.interface ~switchport:(Ast.Trunk vlans) "eth0" ]
      ~vlans:[ (10, "users"); (20, "voice"); (30, "mgmt") ]
      name
  in
  let wire c1 c2 =
    Network.make
      (Topology.empty
      |> Topology.add_node c1.Ast.hostname Topology.Switch
      |> Topology.add_node c2.Ast.hostname Topology.Switch
      |> Topology.add_link
           { Topology.node = c1.Ast.hostname; iface = "eth0" }
           { Topology.node = c2.Ast.hostname; iface = "eth0" })
      [ (c1.Ast.hostname, c1); (c2.Ast.hostname, c2) ]
  in
  let d = one_diag "mismatch" "NET006" (Lint.check_network (wire (sw "sw1" [ 10; 20 ]) (sw "sw2" [ 10; 30 ]))) in
  checkb "error" true (d.severity = Diagnostic.Error);
  checki "agreeing trunks clean" 0
    (List.length (with_code "NET006" (Lint.check_network (wire (sw "sw1" [ 10; 20 ]) (sw "sw2" [ 20; 10 ])))))

(* ---------------- PRV004: over-grant ---------------- *)

let test_priv_sem_over_grants () =
  let b, _ = two_routers () in
  let net = B.build b in
  let spec = Dsl.parse "allow show.* on *;\nallow interface.up, interface.shutdown on r1, r2;\n" in
  let changes = [ Change.v "r1" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ] in
  checkb "exercised" true (Priv_sem.exercised changes = [ ("interface.shutdown", "r1") ]);
  (match Priv_sem.over_grants ~network:net ~spec ~changes with
  | [ o ] ->
      checki "predicate index" 1 o.Priv_sem.index;
      checki "granted" 4 o.Priv_sem.granted;
      checki "used" 1 o.Priv_sem.used;
      checkb "excess sorted pairs" true
        (o.Priv_sem.excess
        = [ ("interface.shutdown", "r2"); ("interface.up", "r1"); ("interface.up", "r2") ])
  | l -> Alcotest.failf "expected one over-grant, got %d" (List.length l));
  (* The minimal spec for the changes has no excess, and a pure read-only
     grant is never flagged. *)
  checki "minimal spec clean" 0
    (List.length
       (Priv_sem.over_grants ~network:net ~spec:(Priv_sem.minimal_spec changes) ~changes));
  checkb "minimal spec allows the change" true
    (Privilege.allows (Priv_sem.minimal_spec changes)
       (Privilege.request "interface.shutdown" "r1"));
  checki "read-only clean" 0
    (List.length
       (Priv_sem.over_grants ~network:net ~spec:(Dsl.parse "allow show.*, diag.* on *;\n") ~changes))

let test_prv004_diagnostics () =
  let b, _ = two_routers () in
  let net = B.build b in
  let spec = Dsl.parse "allow interface.* on r1, r2;\n" in
  let changes = [ Change.v "r1" (Change.Set_interface_enabled { iface = "eth0"; enabled = false }) ] in
  let d = one_diag "over-grant" "PRV004" (Lint.check_privilege_usage ~label:"ticket:x" ~network:net ~spec ~changes ()) in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  checkb "label" true (d.device = Some "ticket:x");
  checkb "1-based statement line" true (d.line = Some 1);
  checki "minimal clean" 0
    (List.length (Lint.check_privilege_usage ~network:net ~spec:(Priv_sem.minimal_spec changes) ~changes ()))

(* ---------------- determinism + gating ---------------- *)

let seeded_enterprise () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let cfg = Network.config_exn "r8" sc.Experiments.net in
  let acl = Option.get (Ast.find_acl "SRV_PROT" cfg) in
  let acl =
    acl
    |> Acl.add_rule (Acl.rule ~seq:1 ~proto:(Acl.Proto Flow.Tcp) Acl.Permit (pfx "10.250.0.0/17") Prefix.any)
    |> Acl.add_rule (Acl.rule ~seq:2 ~proto:(Acl.Proto Flow.Tcp) Acl.Permit (pfx "10.250.128.0/17") Prefix.any)
    |> Acl.add_rule (Acl.rule ~seq:3 ~proto:(Acl.Proto Flow.Tcp) Acl.Deny (pfx "10.250.0.0/16") Prefix.any)
  in
  Network.with_config "r8" (Ast.update_acl acl cfg) sc.Experiments.net

let test_semantic_report_deterministic () =
  let net = seeded_enterprise () in
  let sequential = Lint.check_network net in
  checki "seeded acl004 present" 1 (List.length (with_code "ACL004" sequential));
  let engine = Heimdall_verify.Engine.create ~domains:3 () in
  let parallel = Lint.check_network ~engine net in
  checkb "findings identical" true (List.equal Diagnostic.equal sequential parallel);
  checks "json identical"
    (Heimdall_json.Json.to_string (Lint.to_json sequential))
    (Heimdall_json.Json.to_string (Lint.to_json parallel))

let test_apply_severity_gate () =
  let e = Diagnostic.v ~code:"NET004" Diagnostic.Error "e" in
  let w = Diagnostic.v ~code:"PRV004" Diagnostic.Warning "w" in
  let kept, fail = Lint.apply_severity ~min_severity:Diagnostic.Info [ e; w ] in
  checki "all kept" 2 (List.length kept);
  checkb "fails on error" true fail;
  let kept, fail = Lint.apply_severity ~min_severity:Diagnostic.Error [ w ] in
  checki "warning filtered" 0 (List.length kept);
  checkb "filtered report passes" false fail

(* ---------------- enforcer semantic pre-check ---------------- *)

let test_enforcer_sem_records () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let net = sc.Experiments.net and policies = sc.Experiments.policies in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
  ignore
    (Heimdall_twin.Session.exec_many session
       [ "connect r8"; "configure access-list SRV_PROT 5 permit ip 10.1.10.0/24 10.3.10.0/24" ]);
  let outcome =
    Heimdall_enforcer.Enforcer.process ~production:net ~policies
      ~privilege:Privilege.allow_all ~session ()
  in
  (* The edit opened traffic: exactly one ACL diff, nothing newly denied. *)
  (match outcome.Heimdall_enforcer.Enforcer.acl_diffs with
  | [ (node, acl, d) ] ->
      checks "diff node" "r8" node;
      checks "diff acl" "SRV_PROT" acl;
      checkb "newly permitted" false (Packet_set.is_empty d.Acl_sem.newly_permitted);
      checkb "nothing newly denied" true (Packet_set.is_empty d.Acl_sem.newly_denied)
  | l -> Alcotest.failf "expected one ACL diff, got %d" (List.length l));
  (* allow_all vastly over-grants relative to one ACL edit. *)
  checkb "over-grant finding" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.code = "PRV004")
       outcome.Heimdall_enforcer.Enforcer.sem_findings);
  let records = Heimdall_enforcer.Audit.records outcome.Heimdall_enforcer.Enforcer.audit in
  checkb "sem.diff recorded" true
    (List.exists (fun (r : Heimdall_enforcer.Audit.record) -> r.action = "sem.diff") records);
  checkb "sem.overgrant recorded" true
    (List.exists (fun (r : Heimdall_enforcer.Audit.record) -> r.action = "sem.overgrant") records);
  checkb "audit chain verifies" true
    (Heimdall_enforcer.Audit.verify outcome.Heimdall_enforcer.Enforcer.audit = Ok ())

let test_enforcer_clean_session_no_sem_records () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let net = sc.Experiments.net and policies = sc.Experiments.policies in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let session =
    Heimdall_twin.Twin.open_session ~privilege:(Heimdall_privilege.Dsl.parse "allow show.* on *;\n") em
  in
  ignore (Heimdall_twin.Session.exec_many session [ "connect r8"; "show interfaces" ]);
  let outcome =
    Heimdall_enforcer.Enforcer.process ~production:net ~policies
      ~privilege:(Heimdall_privilege.Dsl.parse "allow show.* on *;\n") ~session ()
  in
  checkb "no acl diffs" true (outcome.Heimdall_enforcer.Enforcer.acl_diffs = []);
  checkb "no sem findings" true (outcome.Heimdall_enforcer.Enforcer.sem_findings = []);
  checkb "no sem audit records" true
    (List.for_all
       (fun (r : Heimdall_enforcer.Audit.record) ->
         r.action <> "sem.diff" && r.action <> "sem.overgrant")
       (Heimdall_enforcer.Audit.records outcome.Heimdall_enforcer.Enforcer.audit))

let suite =
  [
    Alcotest.test_case "algebra basics" `Quick test_algebra_basics;
    Alcotest.test_case "union of halves" `Quick test_algebra_union_of_halves;
    Alcotest.test_case "diff membership" `Quick test_algebra_diff_membership;
    QCheck_alcotest.to_alcotest prop_set_laws;
    QCheck_alcotest.to_alcotest prop_set_membership;
    QCheck_alcotest.to_alcotest prop_permit_set_agrees_with_eval;
    Alcotest.test_case "acl equivalence and diff" `Quick test_acl_sem_equivalence_and_diff;
    Alcotest.test_case "dead rules union coverage" `Quick test_dead_rules_union_coverage;
    Alcotest.test_case "ACL004 and ACL005" `Quick test_acl004_and_acl005;
    Alcotest.test_case "NET001 one-sided ospf" `Quick test_net001_one_sided_ospf;
    Alcotest.test_case "NET002 asymmetric cost" `Quick test_net002_asymmetric_cost;
    Alcotest.test_case "NET003 overlapping subnets" `Quick test_net003_overlapping_subnets;
    Alcotest.test_case "NET004 unowned next hop" `Quick test_net004_unowned_next_hop;
    Alcotest.test_case "NET005 two-device loop" `Quick test_net005_two_device_loop;
    Alcotest.test_case "NET006 switchport mismatch" `Quick test_net006_switchport_mismatch;
    Alcotest.test_case "over-grant analysis" `Quick test_priv_sem_over_grants;
    Alcotest.test_case "PRV004 diagnostics" `Quick test_prv004_diagnostics;
    Alcotest.test_case "semantic report deterministic" `Quick test_semantic_report_deterministic;
    Alcotest.test_case "apply_severity gate" `Quick test_apply_severity_gate;
    Alcotest.test_case "enforcer sem records" `Quick test_enforcer_sem_records;
    Alcotest.test_case "clean session no sem records" `Quick
      test_enforcer_clean_session_no_sem_records;
  ]
