(* Tests for the fleet-scale generator: spec parsing, seeded
   determinism (same params ⇒ byte-identical networks and policies),
   shape inventories, and a small fat-tree through the whole
   lint → twin → verify → schedule → audit pipeline. *)

open Heimdall_control
open Heimdall_scenarios

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let params_of spec =
  match Fleetgen.spec_of_string spec with
  | Ok p -> p
  | Error m -> Alcotest.failf "spec %S rejected: %s" spec m

(* ---------------- spec parsing ---------------- *)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let p = params_of spec in
      checks "canonical spec survives a round trip"
        (Fleetgen.spec_to_string p)
        (Fleetgen.spec_to_string (params_of (Fleetgen.spec_to_string p))))
    [
      "fat-tree";
      "fat-tree:k=8:seed=7";
      "leaf-spine:spines=4:leaves=8";
      "multi-campus:campuses=3:buildings=2:hosts=1:policies=0:mode=mined";
    ];
  (* The "fleet:" prefix is accepted and ignored. *)
  checks "fleet: prefix"
    (Fleetgen.spec_to_string (params_of "fat-tree:k=6"))
    (Fleetgen.spec_to_string (params_of "fleet:fat-tree:k=6"));
  List.iter
    (fun bad ->
      checkb (Printf.sprintf "%S rejected" bad) true
        (Result.is_error (Fleetgen.spec_of_string bad)))
    [ "ring:k=4"; "fat-tree:k=5"; "fat-tree:k=nope"; "fat-tree:frobs=2";
      "leaf-spine:leaves=0"; "multi-campus:campuses=1:buildings=1" ]

(* ---------------- determinism ---------------- *)

let test_determinism () =
  let params = params_of "fat-tree:k=4:seed=42" in
  let f1 = Fleetgen.generate params in
  let f2 = Fleetgen.generate params in
  checks "structural digest identical across generations"
    (Digest.to_hex (Network.digest f1.Fleetgen.net))
    (Digest.to_hex (Network.digest f2.Fleetgen.net));
  checkb "policies identical across generations" true
    (List.equal Heimdall_verify.Policy.equal f1.Fleetgen.policies
       f2.Fleetgen.policies);
  let render f dev =
    match Network.config dev f.Fleetgen.net with
    | Some cfg -> Heimdall_config.Printer.render cfg
    | None -> Alcotest.failf "device %s missing" dev
  in
  List.iter
    (fun dev -> checks ("config of " ^ dev) (render f1 dev) (render f2 dev))
    [ "core-1"; "agg-p0-0"; "edge-p3-1"; "isp" ];
  (* The seed drives issue placement only: a different seed yields the
     same network bytes but may strike elsewhere. *)
  let f7 = Fleetgen.generate (params_of "fat-tree:k=4:seed=7") in
  checks "seed does not leak into the network"
    (Digest.to_hex (Network.digest f1.Fleetgen.net))
    (Digest.to_hex (Network.digest f7.Fleetgen.net))

(* ---------------- shape inventories ---------------- *)

let test_shape_inventories () =
  (* fat-tree k=4: 4 cores + 4 pods × (2 agg + 2 edge) + isp = 21
     infrastructure devices; 8 edge subnets × 2 hosts. *)
  let ft = Fleetgen.generate (params_of "fat-tree:k=4") in
  checki "fat-tree devices" 37 (Fleetgen.device_count ft);
  checki "fat-tree links" 49 (Fleetgen.link_count ft);
  checki "fat-tree edges" 8 (List.length ft.Fleetgen.edges);
  (* leaf-spine: spines + leaves + leaves×hosts + isp. *)
  let ls = Fleetgen.generate (params_of "leaf-spine:spines=2:leaves=4") in
  checki "leaf-spine devices" (2 + 4 + (4 * 2) + 1) (Fleetgen.device_count ls);
  checki "leaf-spine edges" 4 (List.length ls.Fleetgen.edges);
  (* multi-campus: 2 wan + campuses×(1 gw + buildings acc) + hosts + isp. *)
  let mc = Fleetgen.generate (params_of "multi-campus:campuses=2:buildings=3") in
  checki "multi-campus devices"
    (2 + (2 * 4) + (2 * 3 * 2) + 1)
    (Fleetgen.device_count mc);
  List.iter
    (fun (name, f) ->
      checkb (name ^ " validates") true
        (Network.validate f.Fleetgen.net = Ok ());
      checki (name ^ " issues") 3 (List.length f.Fleetgen.issues);
      checkb (name ^ " has policies") true (f.Fleetgen.policies <> []))
    [ ("fat-tree", ft); ("leaf-spine", ls); ("multi-campus", mc) ]

(* ---------------- scenario wiring ---------------- *)

let test_scenario_of_name () =
  match Experiments.scenario_of_name "fleet:fat-tree:k=4:seed=7" with
  | None -> Alcotest.fail "fleet spec not recognised"
  | Some sc ->
      checks "scenario name carries the canonical spec"
        "fleet:fat-tree:k=4:hosts=2:policies=2:mode=closed:seed=7"
        sc.Experiments.scenario_name;
      checki "issues" 3 (List.length sc.Experiments.issues);
      checkb "bad fleet specs are rejected, not crashes" true
        (Experiments.scenario_of_name "fleet:fat-tree:k=5" = None)

(* ---------------- full pipeline on a small fat-tree ---------------- *)

let test_pipeline_fat_tree () =
  let fleet = Fleetgen.generate (params_of "fat-tree:k=4:seed=42") in
  let net = fleet.Fleetgen.net in
  (* Lint: no error-severity findings on a freshly generated fleet. *)
  let errors =
    List.filter
      (fun (d : Heimdall_lint.Diagnostic.t) ->
        d.severity = Heimdall_lint.Diagnostic.Error)
      (Heimdall_lint.Lint.check_network net)
  in
  checkb "lint clean" true (errors = []);
  (* Verify: every policy holds, and the verdicts are identical whether
     checked on one domain or several. *)
  let check domains =
    let engine = Heimdall_verify.Engine.create ~domains () in
    let dp = Heimdall_verify.Engine.dataplane engine net in
    let report =
      Heimdall_verify.Policy.check_all ~engine dp fleet.Fleetgen.policies
    in
    Heimdall_verify.Engine.shutdown engine;
    List.map
      (fun (p, reason) -> (Heimdall_verify.Policy.to_string p, reason))
      report.Heimdall_verify.Policy.violations
  in
  let v1 = check 1 in
  checkb "zero violations" true (v1 = []);
  checkb "verdicts identical across domain counts" true (v1 = check 2);
  (* Every injected issue resolves through the full workflow with
     nothing denied. *)
  List.iter
    (fun (issue : Heimdall_msp.Issue.t) ->
      let run =
        Heimdall_msp.Workflow.run_heimdall ~production:net
          ~policies:fleet.Fleetgen.policies ~issue ()
      in
      checkb (issue.Heimdall_msp.Issue.name ^ " resolved") true
        run.Heimdall_msp.Workflow.resolved;
      checki (issue.Heimdall_msp.Issue.name ^ " denied") 0
        run.Heimdall_msp.Workflow.denied)
    fleet.Fleetgen.issues

let suite =
  [
    Alcotest.test_case "spec round trip and rejection" `Quick test_spec_roundtrip;
    Alcotest.test_case "seeded determinism" `Quick test_determinism;
    Alcotest.test_case "shape inventories" `Quick test_shape_inventories;
    Alcotest.test_case "fleet scenario wiring" `Quick test_scenario_of_name;
    Alcotest.test_case "fat-tree k=4 full pipeline" `Slow test_pipeline_fat_tree;
  ]
