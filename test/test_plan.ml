(* Tests for the static plan-effect analyzer (Plan_sem), the PLAN lint
   family, the conflict mediator and the enforcer's hold stage — plus
   the soundness regression: on every scenario ticket the static
   analysis must over-approximate what the twin replay actually does. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_privilege
open Heimdall_sem
open Heimdall_lint
module Experiments = Heimdall_scenarios.Experiments

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let pfx = Prefix.of_string
let ip = Ipv4.of_string

let enterprise = lazy (Option.get (Experiments.scenario_of_name "enterprise"))

let scenario name = Option.get (Experiments.scenario_of_name name)

(* ---------------- Effect signatures ---------------- *)

let test_effect_signatures () =
  let changes =
    [
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
      Change.v "r4"
        (Change.Acl_set_rule
           { acl = "EDGE";
             rule = Acl.rule ~seq:10 Acl.Permit (pfx "10.1.0.0/16") Prefix.any });
      Change.v "r5" (Change.Set_default_gateway (Some (ip "10.1.1.1")));
    ]
  in
  let a = Plan_sem.analyze changes in
  checki "one effect per change" 3 (List.length a.Plan_sem.effects);
  (* Footprint covers each touched (device, section) once, sorted. *)
  checkb "iface slot" true
    (List.mem ("r4", Plan_sem.Iface "eth0") a.Plan_sem.footprint);
  checkb "acl slot" true (List.mem ("r4", Plan_sem.Acl "EDGE") a.Plan_sem.footprint);
  checkb "routing slot" true (List.mem ("r5", Plan_sem.Routing) a.Plan_sem.footprint);
  (* The ACL rule edit predicts a reachability delta (no network given,
     so the ACL content is unknown); the plan delta contains it. *)
  let acl_effect =
    List.find
      (fun (e : Plan_sem.effect_sig) -> e.Plan_sem.section = Plan_sem.Acl "EDGE")
      a.Plan_sem.effects
  in
  checkb "acl delta non-empty" false (Packet_set.is_empty acl_effect.Plan_sem.delta);
  checkb "plan delta contains acl delta" true
    (Packet_set.subset acl_effect.Plan_sem.delta a.Plan_sem.delta);
  (* Requirements carry the privilege actions replay would request. *)
  let pairs =
    List.map
      (fun (r : Plan_sem.requirement) -> (r.Plan_sem.req_action, r.Plan_sem.req_node))
      a.Plan_sem.requirements
  in
  checkb "ospf requirement" true (List.mem ("ospf.cost", "r4") pairs);
  checkb "acl requirement" true (List.mem ("acl.rule", "r4") pairs);
  checkb "no dead ops" true (a.Plan_sem.dead = []);
  checkb "no contradictions" true (a.Plan_sem.contradictions = [])

let test_dead_and_contradictions () =
  let sc = Lazy.force enterprise in
  (* Same slot written twice with different values: a contradiction.
     The first write is also dead (the second one wins). *)
  let changes =
    [
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 30 });
    ]
  in
  let a = Plan_sem.analyze ~network:sc.Experiments.net changes in
  checkb "contradiction flagged" true (a.Plan_sem.contradictions <> []);
  checkb "first write dead" true
    (List.exists (fun (i, _) -> i = 0) a.Plan_sem.dead);
  (* Identical duplicate is dead but not a contradiction. *)
  let dup =
    [
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
    ]
  in
  let a = Plan_sem.analyze ~network:sc.Experiments.net dup in
  checkb "duplicate not a contradiction" true (a.Plan_sem.contradictions = []);
  checkb "duplicate has a dead op" true (a.Plan_sem.dead <> [])

(* ---------------- Script extraction and the proof ---------------- *)

let test_script_scoping () =
  let s =
    Plan_sem.script_of_commands
      [
        "connect r4";
        "configure interface eth0 shutdown";
        "disconnect";
        "configure interface eth1 shutdown";
      ]
  in
  (* The post-disconnect command has no target: a script error, not a
     change attributed to the wrong device. *)
  checkb "error recorded" true
    (List.exists
       (fun (cmd, _) -> cmd = "configure interface eth1 shutdown")
       s.Plan_sem.script_errors);
  checkb "first shutdown attributed" true
    (List.exists (fun (c : Change.t) -> c.Change.node = "r4") s.Plan_sem.script_changes)

let test_prove_sufficient_and_missing () =
  let s =
    Plan_sem.script_of_commands [ "connect r4"; "configure interface eth0 shutdown" ]
  in
  let reqs = Plan_sem.plan_requirements s in
  let enough =
    Privilege.of_predicates
      [ Privilege.allow ~actions:[ "*" ] ~nodes:[ "r4" ] () ]
  in
  let proof = Plan_sem.prove ~spec:enough reqs in
  checkb "sufficient" true proof.Plan_sem.sufficient;
  checkb "no missing" true (proof.Plan_sem.missing = []);
  let nothing = Privilege.empty in
  let proof = Plan_sem.prove ~spec:nothing reqs in
  checkb "insufficient" false proof.Plan_sem.sufficient;
  checkb "missing named" true (proof.Plan_sem.missing <> [])

(* ---------------- PLAN lint family ---------------- *)

let plan_codes ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds

let test_plan_lint_triggers () =
  let sc = Lazy.force enterprise in
  let ticket =
    {
      Plan_lint.label = "t1";
      spec = Privilege.empty;
      scope = [ "r9" ];
      commands =
        [
          "connect r4";
          (* dead: first cost write is overwritten by the second *)
          "configure interface eth0 ospf cost 20";
          "configure interface eth0 ospf cost 30";
        ];
    }
  in
  let ds = Plan_lint.check ~network:sc.Experiments.net ticket in
  let codes = plan_codes ds in
  checkb "PLAN001 privilege" true (List.mem "PLAN001" codes);
  checkb "PLAN002 dead op" true (List.mem "PLAN002" codes);
  checkb "PLAN003 contradiction" true (List.mem "PLAN003" codes);
  checkb "PLAN004 scope" true (List.mem "PLAN004" codes);
  (* Findings are attributed to the ticket label. *)
  List.iter
    (fun (d : Diagnostic.t) -> checks "device is label" "t1"
        (Option.value d.Diagnostic.device ~default:"-"))
    ds

let test_plan_lint_clean () =
  let sc = Lazy.force enterprise in
  let ticket =
    {
      Plan_lint.label = "clean";
      spec = Privilege.allow_all;
      scope = [];
      commands = [ "connect r4"; "configure interface eth0 ospf cost 20" ];
    }
  in
  let ds = Plan_lint.check ~network:sc.Experiments.net ticket in
  checkb "no findings on a clean plan" true (ds = [])

let test_plan_lint_policy_flow () =
  let sc = Lazy.force enterprise in
  (* An ACL edit over unknown content carries a broad delta: with the
     scenario policies supplied, PLAN005 reports covered policy flows. *)
  let ticket =
    {
      Plan_lint.label = "wide";
      spec = Privilege.allow_all;
      scope = [];
      commands = [ "connect r8"; "configure no access-list SRV_PROT 10" ];
    }
  in
  let ds =
    Plan_lint.check ~network:sc.Experiments.net ~policies:sc.Experiments.policies
      ticket
  in
  checkb "PLAN005 present" true (List.mem "PLAN005" (plan_codes ds))

let scenario_tickets (sc : Experiments.scenario) =
  List.map
    (fun (issue : Heimdall_msp.Issue.t) ->
      let broken = issue.Heimdall_msp.Issue.inject sc.Experiments.net in
      let slice =
        Heimdall_twin.Twin.slice_nodes ~production:broken
          ~endpoints:issue.Heimdall_msp.Issue.ticket.Heimdall_msp.Ticket.endpoints ()
      in
      let spec =
        Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice
          issue.Heimdall_msp.Issue.ticket
      in
      {
        Plan_lint.label = issue.Heimdall_msp.Issue.ticket.Heimdall_msp.Ticket.id;
        spec;
        scope = slice;
        commands = issue.Heimdall_msp.Issue.fix_commands;
      })
    sc.Experiments.issues

let test_check_plans_cross_domain_determinism () =
  List.iter
    (fun name ->
      let sc = scenario name in
      let tickets = scenario_tickets sc in
      let sequential =
        Lint.check_plans ~network:sc.Experiments.net
          ~policies:sc.Experiments.policies tickets
      in
      let render ds = String.concat "\n" (List.map Diagnostic.to_string ds) in
      List.iter
        (fun domains ->
          let engine = Heimdall_verify.Engine.create ~domains () in
          let parallel =
            Lint.check_plans ~engine ~network:sc.Experiments.net
              ~policies:sc.Experiments.policies tickets
          in
          checkb
            (Printf.sprintf "%s findings identical at %d domains" name domains)
            true
            (List.equal Diagnostic.equal sequential parallel);
          checks
            (Printf.sprintf "%s render identical at %d domains" name domains)
            (render sequential) (render parallel))
        [ 1; 3 ])
    [ "enterprise"; "university" ]

(* ---------------- Conflict mediation ---------------- *)

let test_mediator_overlap_held () =
  let sc = Lazy.force enterprise in
  let edit seq =
    [
      Change.v "r8"
        (Change.Acl_set_rule
           { acl = "SRV_PROT";
             rule = Acl.rule ~seq Acl.Permit (pfx "10.1.10.0/24") (pfx "10.3.10.0/24") });
    ]
  in
  let tickets =
    [
      { Heimdall_enforcer.Mediator.label = "a"; changes = edit 5 };
      { Heimdall_enforcer.Mediator.label = "b"; changes = edit 7 };
    ]
  in
  let d = Heimdall_enforcer.Mediator.mediate ~network:sc.Experiments.net tickets in
  checki "one admitted" 1 (List.length d.Heimdall_enforcer.Mediator.admitted);
  checki "one held" 1 (List.length d.Heimdall_enforcer.Mediator.held);
  (match d.Heimdall_enforcer.Mediator.held with
  | [ (t, c) ] ->
      checks "held is the later ticket" "b" t.Heimdall_enforcer.Mediator.label;
      checks "conflict first" "a" c.Heimdall_enforcer.Mediator.first;
      checks "conflict second" "b" c.Heimdall_enforcer.Mediator.second;
      checkb "shared footprint named" true
        (List.mem ("r8", Plan_sem.Acl "SRV_PROT")
           c.Heimdall_enforcer.Mediator.shared_footprint)
  | _ -> Alcotest.fail "expected exactly one held ticket")

let test_mediator_disjoint_admitted () =
  let sc = Lazy.force enterprise in
  let tickets =
    [
      { Heimdall_enforcer.Mediator.label = "a";
        changes =
          [ Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 }) ] };
      { Heimdall_enforcer.Mediator.label = "b";
        changes =
          [ Change.v "r5" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 30 }) ] };
      (* Same device as "a" but a different slot AND an empty predicted
         delta (a description edit): no conflict.  Sharing a device alone
         never holds a plan — only shared slots or overlapping deltas. *)
      { Heimdall_enforcer.Mediator.label = "c";
        changes =
          [ Change.v "r4"
              (Change.Set_interface_description
                 { iface = "eth1"; description = Some "uplink" }) ] };
    ]
  in
  let d = Heimdall_enforcer.Mediator.mediate ~network:sc.Experiments.net tickets in
  checki "all admitted" 3 (List.length d.Heimdall_enforcer.Mediator.admitted);
  checkb "none held" true (d.Heimdall_enforcer.Mediator.held = []);
  (* Admission preserves submission order. *)
  checks "order kept" "a,b,c"
    (String.concat ","
       (List.map
          (fun (t : Heimdall_enforcer.Mediator.ticket) ->
            t.Heimdall_enforcer.Mediator.label)
          d.Heimdall_enforcer.Mediator.admitted))

let test_mediator_determinism () =
  (* Mediation over every scenario's real tickets is byte-stable: the
     decision depends only on submission order, never on evaluation
     order. *)
  List.iter
    (fun name ->
      let sc = scenario name in
      let tickets =
        List.map
          (fun (issue : Heimdall_msp.Issue.t) ->
            let s =
              Plan_sem.script_of_commands issue.Heimdall_msp.Issue.fix_commands
            in
            { Heimdall_enforcer.Mediator.label = issue.Heimdall_msp.Issue.name;
              changes = s.Plan_sem.script_changes })
          sc.Experiments.issues
      in
      let once = Heimdall_enforcer.Mediator.mediate ~network:sc.Experiments.net tickets in
      let twice = Heimdall_enforcer.Mediator.mediate ~network:sc.Experiments.net tickets in
      let render (d : Heimdall_enforcer.Mediator.decision) =
        String.concat "|"
          (List.map
             (fun (t : Heimdall_enforcer.Mediator.ticket) ->
               t.Heimdall_enforcer.Mediator.label)
             d.Heimdall_enforcer.Mediator.admitted)
        ^ "//"
        ^ String.concat "|"
            (List.map
               (fun (_, c) -> Heimdall_enforcer.Mediator.conflict_to_string c)
               d.Heimdall_enforcer.Mediator.held)
      in
      checks (name ^ " stable") (render once) (render twice))
    [ "enterprise"; "university" ]

(* ---------------- Enforcer hold stage ---------------- *)

let replay_session (sc : Experiments.scenario) (issue : Heimdall_msp.Issue.t) =
  let broken = issue.Heimdall_msp.Issue.inject sc.Experiments.net in
  let endpoints = issue.Heimdall_msp.Issue.ticket.Heimdall_msp.Ticket.endpoints in
  let slice = Heimdall_twin.Twin.slice_nodes ~production:broken ~endpoints () in
  let privilege =
    Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice
      issue.Heimdall_msp.Issue.ticket
  in
  let em = Heimdall_twin.Twin.build ~production:broken ~endpoints () in
  let session = Heimdall_twin.Twin.open_session ~privilege em in
  ignore
    (Heimdall_twin.Session.exec_many session issue.Heimdall_msp.Issue.fix_commands);
  (broken, privilege, em, session)

let test_enforcer_holds_on_conflict () =
  let sc = Lazy.force enterprise in
  let issue = List.hd sc.Experiments.issues in
  let broken, privilege, em, session = replay_session sc issue in
  let session_changes = Heimdall_twin.Emulation.changes em in
  checkb "session produced changes" true (session_changes <> []);
  (* An in-flight plan touching the very same slots forces a hold. *)
  let outcome =
    Heimdall_enforcer.Enforcer.process
      ~in_flight:[ ("earlier", session_changes) ]
      ~production:broken ~policies:sc.Experiments.policies ~privilege ~session ()
  in
  checkb "held, not approved" false outcome.Heimdall_enforcer.Enforcer.approved;
  checkb "conflicts reported" true
    (outcome.Heimdall_enforcer.Enforcer.conflicts <> []);
  checkb "no merit rejections" true
    (outcome.Heimdall_enforcer.Enforcer.rejections = []);
  checkb "production untouched" true
    (outcome.Heimdall_enforcer.Enforcer.updated = None);
  (* The hold is in the audit trail and the chain still verifies. *)
  let audit = outcome.Heimdall_enforcer.Enforcer.audit in
  checkb "plan.conflict audited" true
    (List.exists
       (fun (r : Heimdall_enforcer.Audit.record) ->
         r.Heimdall_enforcer.Audit.action = "plan.conflict"
         && r.Heimdall_enforcer.Audit.verdict = "held")
       (Heimdall_enforcer.Audit.records audit));
  checkb "audit verifies" true (Heimdall_enforcer.Audit.verify audit = Ok ())

let test_enforcer_admits_disjoint_in_flight () =
  let sc = Lazy.force enterprise in
  let issue = List.hd sc.Experiments.issues in
  let broken, privilege, _em, session = replay_session sc issue in
  let disjoint =
    [ Change.v "r9" (Change.Set_interface_description
                       { iface = "eth0"; description = Some "maintenance" }) ]
  in
  let outcome =
    Heimdall_enforcer.Enforcer.process ~in_flight:[ ("earlier", disjoint) ]
      ~production:broken ~policies:sc.Experiments.policies ~privilege ~session ()
  in
  checkb "no conflicts" true (outcome.Heimdall_enforcer.Enforcer.conflicts = []);
  checkb "approved" true outcome.Heimdall_enforcer.Enforcer.approved

(* ---------------- Scheduler footprint ---------------- *)

let test_scheduler_plan_footprint () =
  let sc = Lazy.force enterprise in
  let changes =
    [ Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 }) ]
  in
  match
    Heimdall_enforcer.Scheduler.plan ~production:sc.Experiments.net
      ~policies:sc.Experiments.policies ~changes ()
  with
  | Error e -> Alcotest.fail e
  | Ok (plan, _) ->
      checkb "footprint recorded" true
        (List.mem ("r4", Plan_sem.Iface "eth0")
           plan.Heimdall_enforcer.Scheduler.footprint)

(* ---------------- Soundness regression ---------------- *)

(* Exact ACL delta of a replayed session: union of the semantic diffs of
   every (device, ACL) the session touched. *)
let exact_delta before after =
  List.fold_left
    (fun acc node ->
      let acls net =
        match Network.config node net with
        | Some (cfg : Ast.t) -> cfg.Ast.acls
        | None -> []
      in
      let names =
        List.sort_uniq String.compare
          (List.map (fun (a : Acl.t) -> a.Acl.name) (acls before @ acls after))
      in
      List.fold_left
        (fun acc name ->
          let find net =
            match Network.config node net with
            | Some cfg -> Option.value (Ast.find_acl name cfg) ~default:(Acl.empty name)
            | None -> Acl.empty name
          in
          let d = Acl_sem.diff ~before:(find before) ~after:(find after) in
          Packet_set.union acc
            (Packet_set.union d.Acl_sem.newly_permitted d.Acl_sem.newly_denied))
        acc names)
    Packet_set.empty
    (Network.node_names before)

let test_static_analysis_sound_on_scenarios () =
  List.iter
    (fun name ->
      let sc = scenario name in
      List.iter
        (fun (issue : Heimdall_msp.Issue.t) ->
          let label = name ^ "/" ^ issue.Heimdall_msp.Issue.name in
          let broken, privilege, em, session = replay_session sc issue in
          let replayed = Heimdall_twin.Emulation.changes em in
          let script =
            Plan_sem.script_of_commands issue.Heimdall_msp.Issue.fix_commands
          in
          let reqs = Plan_sem.plan_requirements ~network:broken script in
          (* 1. Exercised privilege is covered: every (action, node) pair
             the replay actually performed appears in the static
             requirements. *)
          List.iter
            (fun (action, node) ->
              checkb
                (Printf.sprintf "%s: exercised %s on %s predicted" label action node)
                true
                (List.exists
                   (fun (r : Plan_sem.requirement) ->
                     r.Plan_sem.req_action = action && r.Plan_sem.req_node = node)
                   reqs))
            (Priv_sem.exercised replayed);
          (* 2. The predicted packet-set delta contains the exact
             post-apply ACL diff. *)
          let a = Plan_sem.analyze ~network:broken script.Plan_sem.script_changes in
          let exact =
            exact_delta
              (Heimdall_twin.Emulation.baseline em)
              (Heimdall_twin.Emulation.network em)
          in
          checkb (label ^ ": delta over-approximates") true
            (Packet_set.subset exact a.Plan_sem.delta);
          (* 3. The static sufficiency verdict agrees with replay: the
             grant was proven sufficient, so the monitor denied nothing
             and the enforcer's privilege gate raises nothing. *)
          let proof = Plan_sem.prove ~spec:privilege reqs in
          checkb (label ^ ": proof sufficient") true proof.Plan_sem.sufficient;
          checki (label ^ ": no denials") 0 (Heimdall_twin.Session.denied_count session);
          checkb (label ^ ": no replay rejections") true
            (Heimdall_enforcer.Verifier.privilege_rejections ~privilege replayed = []))
        sc.Experiments.issues)
    [ "enterprise"; "university" ]

(* ---------------- Fleet-scale plan pipeline ---------------- *)

(* The same per-ticket construction `heimdall analyze --plan` uses, run
   over a generated 37-device fleet: the prepared fixes lint clean, and
   the deliberately over-granting ISP ticket trips the over-grant
   analyzer (PRV004) after twin replay. *)
let test_fleet_plan_pipeline () =
  let sc = scenario "fleet:fat-tree:k=4" in
  checki "fat-tree k=4 is 37 devices" 37
    (List.length (Network.node_names sc.Experiments.net));
  let tickets = scenario_tickets sc in
  checkb "fleet has tickets" true (tickets <> []);
  let ds =
    Lint.check_plans ~network:sc.Experiments.net ~policies:sc.Experiments.policies
      tickets
  in
  let errors =
    List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) ds
  in
  List.iter
    (fun (d : Diagnostic.t) -> Printf.eprintf "plan: %s\n" (Diagnostic.to_string d))
    errors;
  checki "no error-severity PLAN findings on fleet fixes" 0 (List.length errors);
  let issue =
    List.find
      (fun (i : Heimdall_msp.Issue.t) -> i.Heimdall_msp.Issue.name = "overgrant")
      sc.Experiments.issues
  in
  let broken, privilege, em, _session = replay_session sc issue in
  let changes = Heimdall_twin.Emulation.changes em in
  let usage =
    Lint.check_privilege_usage ~label:"ticket:overgrant" ~network:broken
      ~spec:privilege ~changes ()
  in
  checkb "PRV004 over-grant detected on the fleet ticket" true
    (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = "PRV004") usage)

let suite =
  [
    Alcotest.test_case "effect signatures" `Quick test_effect_signatures;
    Alcotest.test_case "dead ops and contradictions" `Quick test_dead_and_contradictions;
    Alcotest.test_case "script scoping" `Quick test_script_scoping;
    Alcotest.test_case "proof sufficient/missing" `Quick test_prove_sufficient_and_missing;
    Alcotest.test_case "PLAN lint triggers" `Quick test_plan_lint_triggers;
    Alcotest.test_case "PLAN lint clean plan" `Quick test_plan_lint_clean;
    Alcotest.test_case "PLAN005 policy flow" `Quick test_plan_lint_policy_flow;
    Alcotest.test_case "check_plans cross-domain determinism" `Quick
      test_check_plans_cross_domain_determinism;
    Alcotest.test_case "mediator holds overlap" `Quick test_mediator_overlap_held;
    Alcotest.test_case "mediator admits disjoint" `Quick test_mediator_disjoint_admitted;
    Alcotest.test_case "mediator determinism" `Quick test_mediator_determinism;
    Alcotest.test_case "enforcer holds on conflict" `Quick test_enforcer_holds_on_conflict;
    Alcotest.test_case "enforcer admits disjoint in-flight" `Quick
      test_enforcer_admits_disjoint_in_flight;
    Alcotest.test_case "scheduler plan footprint" `Quick test_scheduler_plan_footprint;
    Alcotest.test_case "static analysis sound on scenarios" `Quick
      test_static_analysis_sound_on_scenarios;
    Alcotest.test_case "fleet plan pipeline" `Quick test_fleet_plan_pipeline;
  ]
