(* Tests for Heimdall_lint: the rule registry, the three analyzer
   families (config, ACL, privilege), engine determinism, and the
   seeded-defect end-to-end path.  Every rule code is exercised with a
   triggering fixture and a clean counterpart. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_privilege
open Heimdall_lint
module Experiments = Heimdall_scenarios.Experiments
module B = Heimdall_scenarios.Builder

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ia = Ifaddr.of_string
let ip = Ipv4.of_string
let pfx = Prefix.of_string

let with_code c diags = List.filter (fun (d : Diagnostic.t) -> d.code = c) diags
let codes diags = List.sort_uniq String.compare (List.map (fun (d : Diagnostic.t) -> d.code) diags)

let one_diag label code diags =
  match with_code code diags with
  | [ d ] -> d
  | l -> Alcotest.failf "%s: expected exactly one %s, got %d" label code (List.length l)

(* A single-router network around one config, for per-device checks. *)
let solo cfg =
  Network.make (Topology.add_node cfg.Ast.hostname Topology.Router Topology.empty)
    [ (cfg.Ast.hostname, cfg) ]

(* ---------------- registry ---------------- *)

let test_registry () =
  checki "rule count" 35 (List.length Lint.rules);
  let cs = List.map (fun (r : Lint.rule) -> r.code) Lint.rules in
  checki "codes unique" 35 (List.length (List.sort_uniq String.compare cs));
  List.iter
    (fun (fam, label) ->
      checkb (label ^ " family populated") true
        (List.exists (fun (r : Lint.rule) -> r.family = fam) Lint.rules))
    [ (Lint.Config, "config"); (Lint.Acl, "acl"); (Lint.Net, "net");
      (Lint.Privilege, "privilege"); (Lint.Plan, "plan"); (Lint.Pol, "pol") ];
  checkb "lookup hit" true (Lint.rule "ACL001" <> None);
  checkb "lookup miss" true (Lint.rule "XXX999" = None)

(* ---------------- diagnostics ---------------- *)

let test_diagnostic_json_roundtrip () =
  let d =
    Diagnostic.v ~device:"r1" ~obj:"eth0" ~line:20 ~code:"CFG003" Diagnostic.Error
      "interface eth0 references undefined access-list NOPE"
  in
  checkb "full roundtrip" true (Diagnostic.of_json (Diagnostic.to_json d) = Some d);
  let bare = Diagnostic.v ~code:"PRV003" Diagnostic.Warning "over-broad" in
  checkb "bare roundtrip" true (Diagnostic.of_json (Diagnostic.to_json bare) = Some bare)

let test_filter_and_summary () =
  let e = Diagnostic.v ~code:"CFG001" Diagnostic.Error "e" in
  let w = Diagnostic.v ~code:"CFG004" Diagnostic.Warning "w" in
  let ds = [ e; w ] in
  checki "filter error" 1 (List.length (Lint.filter ~min_severity:Diagnostic.Error ds));
  checki "filter warning" 2 (List.length (Lint.filter ~min_severity:Diagnostic.Warning ds));
  checkb "has_errors" true (Lint.has_errors ds);
  checkb "no errors" false (Lint.has_errors [ w ]);
  checks "summary" "2 findings (1 error, 1 warning)" (Lint.summary ds);
  checks "clean" "clean" (Lint.summary [])

(* ---------------- ACL family ---------------- *)

let test_acl001_opposite_shadow () =
  let acl =
    Acl.make "BLOCK"
      [
        Acl.rule ~seq:10 Acl.Deny (pfx "10.0.0.0/8") Prefix.any;
        Acl.rule ~seq:20 Acl.Permit (pfx "10.1.0.0/16") Prefix.any;
      ]
  in
  let d = one_diag "shadowed" "ACL001" (Lint.check_acl ~device:"r1" acl) in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "device" true (d.device = Some "r1");
  checkb "object" true (d.obj = Some "BLOCK");
  checkb "line is seq" true (d.line = Some 20)

let test_acl002_redundant () =
  let acl =
    Acl.make "DUP"
      [
        Acl.rule ~seq:10 Acl.Permit (pfx "10.0.0.0/8") Prefix.any;
        Acl.rule ~seq:20 Acl.Permit (pfx "10.1.0.0/16") Prefix.any;
      ]
  in
  let d = one_diag "redundant" "ACL002" (Lint.check_acl ~device:"r1" acl) in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  checkb "line" true (d.line = Some 20)

let test_acl003_terminal_permit_any () =
  let open_acl = Acl.make "OPEN" [ Acl.rule ~seq:10 Acl.Permit Prefix.any Prefix.any ] in
  let d = one_diag "terminal" "ACL003" (Lint.check_acl ~device:"fw1" open_acl) in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  checkb "line" true (d.line = Some 10)

let test_acl_clean () =
  (* Disjoint prefixes, specific terminal rule: nothing to report. *)
  let acl =
    Acl.make "OK"
      [
        Acl.rule ~seq:10 Acl.Permit (pfx "10.1.0.0/16") (pfx "10.2.0.0/16");
        Acl.rule ~seq:20 Acl.Deny (pfx "10.3.0.0/16") Prefix.any;
      ]
  in
  checki "clean" 0 (List.length (Lint.check_acl ~device:"r1" acl));
  (* Terminal deny-any-any is the explicit default: also clean. *)
  let closed = Acl.make "CLOSED" [ Acl.rule ~seq:10 Acl.Deny Prefix.any Prefix.any ] in
  checki "deny any clean" 0 (List.length (Lint.check_acl ~device:"r1" closed))

(* ---------------- config family: per-device ---------------- *)

let test_cfg003_undefined_acl_ref () =
  let cfg =
    Ast.make
      ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.1/24") ~acl_in:"NOPE" "eth0" ]
      "r1"
  in
  let ds = Config_lint.check_device (solo cfg) "r1" in
  let d = one_diag "undefined ref" "CFG003" ds in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "object" true (d.obj = Some "eth0");
  (* Define the list: finding disappears (the binding also clears CFG004). *)
  let ok =
    Ast.update_acl
      (Acl.make "NOPE" [ Acl.rule ~seq:10 Acl.Deny (pfx "10.9.0.0/16") Prefix.any ])
      cfg
  in
  checki "clean" 0 (List.length (Config_lint.check_device (solo ok) "r1"))

let test_cfg004_unbound_acl () =
  let cfg =
    Ast.make
      ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.1/24") "eth0" ]
      ~acls:[ Acl.make "LONELY" [ Acl.rule ~seq:10 Acl.Deny (pfx "10.9.0.0/16") Prefix.any ] ]
      "r1"
  in
  let d = one_diag "unbound" "CFG004" (Config_lint.check_device (solo cfg) "r1") in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  checkb "object" true (d.obj = Some "LONELY")

let test_cfg005_undeclared_vlan () =
  let cfg =
    Ast.make
      ~interfaces:
        [
          Ast.interface ~switchport:(Ast.Access 30) "eth0";
          Ast.interface ~switchport:(Ast.Trunk [ 10; 30 ]) "eth1";
        ]
      ~vlans:[ (10, "users") ]
      "sw1"
  in
  let ds = Config_lint.check_device (solo cfg) "sw1" in
  (* Access port on 30 and trunk member 30; vlan 10 is declared. *)
  checki "two findings" 2 (List.length (with_code "CFG005" ds));
  let declared = Ast.make ~interfaces:cfg.Ast.interfaces ~vlans:[ (10, "users"); (30, "voice") ] "sw1" in
  checki "clean" 0 (List.length (Config_lint.check_device (solo declared) "sw1"))

let test_cfg006_off_subnet_next_hop () =
  let route nh = { Ast.sr_prefix = pfx "10.5.0.0/16"; sr_next_hop = nh; sr_distance = 1 } in
  let with_route nh =
    Ast.make
      ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.1/24") "eth0" ]
      ~static_routes:[ route nh ] "r1"
  in
  let d =
    one_diag "blackhole" "CFG006"
      (Config_lint.check_device (solo (with_route (ip "10.99.0.1"))) "r1")
  in
  checkb "error" true (d.severity = Diagnostic.Error);
  checki "clean" 0
    (List.length (Config_lint.check_device (solo (with_route (ip "10.0.0.2"))) "r1"));
  (* A shutdown interface no longer provides the subnet. *)
  let shut =
    Ast.make
      ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.1/24") ~enabled:false "eth0" ]
      ~static_routes:[ route (ip "10.0.0.2") ] "r1"
  in
  checki "shutdown subnet" 1
    (List.length (with_code "CFG006" (Config_lint.check_device (solo shut) "r1")));
  (* Host default gateway follows the same rule. *)
  let host =
    Ast.make
      ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.7/24") "eth0" ]
      ~default_gateway:(ip "10.4.0.1") "h1"
  in
  let d =
    one_diag "gateway" "CFG006"
      (Config_lint.check_device (solo host) "h1")
  in
  checkb "gateway object" true (d.obj = Some "default-gateway")

let test_cfg008_acl_on_shutdown () =
  let cfg =
    Ast.make
      ~interfaces:
        [ Ast.interface ~addr:(ia "10.0.0.1/24") ~acl_in:"GUARD" ~enabled:false "eth0" ]
      ~acls:[ Acl.make "GUARD" [ Acl.rule ~seq:10 Acl.Deny (pfx "10.9.0.0/16") Prefix.any ] ]
      "r1"
  in
  let ds = Config_lint.check_device (solo cfg) "r1" in
  let d = one_diag "shutdown" "CFG008" ds in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  (* Bound is bound: no CFG004 alongside. *)
  checki "no cfg004" 0 (List.length (with_code "CFG004" ds))

(* ---------------- config family: cross-device ---------------- *)

(* Two routers on one cable, same subnet, no OSPF. *)
let wire () =
  let b = B.create () in
  B.router b "r1";
  B.router b "r2";
  ignore (B.p2p b "r1" "r2");
  B.build b

let rewire_iface net node f =
  let cfg = Network.config_exn node net in
  let i = Option.get (Ast.find_interface "eth0" cfg) in
  Network.with_config node (Ast.update_interface (f i) cfg) net

let test_cfg001_duplicate_address () =
  let net = wire () in
  let addr = Ast.interface_addr (Network.config_exn "r1" net) "eth0" in
  let dup = rewire_iface net "r2" (fun i -> { i with Ast.addr = addr }) in
  let ds = Config_lint.duplicate_addresses dup in
  let d = one_diag "duplicate" "CFG001" ds in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "first owner" true (d.device = Some "r1");
  checkb "both named" true
    (let m = d.message in
     let has s =
       let rec go i =
         i + String.length s <= String.length m
         && (String.sub m i (String.length s) = s || go (i + 1))
       in
       go 0
     in
     has "r1/eth0" && has "r2/eth0");
  checki "clean" 0 (List.length (Config_lint.duplicate_addresses net));
  (* A shutdown duplicate does not count. *)
  let shut = rewire_iface dup "r2" (fun i -> { i with Ast.enabled = false }) in
  checki "shutdown ignored" 0 (List.length (Config_lint.duplicate_addresses shut))

let test_cfg002_link_subnet_mismatch () =
  let net = wire () in
  let bad =
    rewire_iface net "r1" (fun i -> { i with Ast.addr = Some (ia "192.168.50.1/24") })
  in
  let d = one_diag "mismatch" "CFG002" (Config_lint.check_links bad) in
  checkb "error" true (d.severity = Diagnostic.Error);
  checki "clean" 0 (List.length (Config_lint.check_links net))

let test_cfg007_ospf_area_mismatch () =
  let b = B.create () in
  B.router b "r1";
  B.router b "r2";
  ignore (B.p2p ~area:0 b "r1" "r2");
  let net = B.build b in
  checki "clean" 0 (List.length (with_code "CFG007" (Config_lint.check_links net)));
  (* Per-interface override on one end breaks the adjacency. *)
  let bad = rewire_iface net "r2" (fun i -> { i with Ast.ospf_area = Some 1 }) in
  let d = one_diag "mismatch" "CFG007" (Config_lint.check_links bad) in
  checkb "error" true (d.severity = Diagnostic.Error);
  (* A non-OSPF link (no covering network statement) is not checked. *)
  checki "non-ospf link quiet" 0 (List.length (Config_lint.check_links (wire ())))

let test_sec001_twin_exposure () =
  let cfg =
    Ast.make
      ~interfaces:[ Ast.interface ~addr:(ia "10.0.0.1/24") "eth0" ]
      ~secrets:[ Ast.Enable_secret "hunter2"; Ast.Snmp_community "public" ]
      "r1"
  in
  let net = solo cfg in
  let d = one_diag "exposed" "SEC001" (Config_lint.twin_exposure net) in
  checkb "error" true (d.severity = Diagnostic.Error);
  checkb "device" true (d.device = Some "r1");
  let scrubbed = Network.with_config "r1" (Redact.scrub cfg) net in
  checki "scrubbed clean" 0 (List.length (Config_lint.twin_exposure scrubbed));
  (* check_network only runs SEC001 when asked. *)
  checki "off by default" 0 (List.length (with_code "SEC001" (Lint.check_network net)));
  checki "on when twin_exposed" 1
    (List.length (with_code "SEC001" (Lint.check_network ~twin_exposed:true net)))

(* ---------------- privilege family ---------------- *)

let test_prv001_dead_deny () =
  let spec = Dsl.parse "allow acl.* on r1;\ndeny acl.rule on r1;\n" in
  let d = one_diag "dead deny" "PRV001" (Lint.check_privilege spec) in
  checkb "error (opposite effect)" true (d.severity = Diagnostic.Error);
  checkb "statement index" true (d.line = Some 2)

let test_prv001_redundant_allow () =
  let spec = Dsl.parse "allow show.* on *;\nallow show.config on r1;\n" in
  let d = one_diag "redundant" "PRV001" (Lint.check_privilege spec) in
  checkb "warning (same effect)" true (d.severity = Diagnostic.Warning)

let test_prv001_clean () =
  (* The narrow deny first: every statement reachable. *)
  let spec = Dsl.parse "deny acl.rule on r1;\nallow acl.* on r1;\n" in
  checki "clean" 0 (List.length (with_code "PRV001" (Lint.check_privilege spec)));
  (* Iface-scoped statement is not subsumed by a device-scoped deny the
     other way around: outer None covers Some, so this IS dead. *)
  let dead = Dsl.parse "allow acl.rule on r1;\ndeny acl.rule on r1:eth0;\n" in
  checki "iface under device" 1
    (List.length (with_code "PRV001" (Lint.check_privilege dead)));
  (* ...but a device-wide grant after an iface-scoped one is reachable. *)
  let alive = Dsl.parse "allow acl.rule on r1:eth0;\nallow acl.rule on r1;\n" in
  checki "device after iface" 0
    (List.length (with_code "PRV001" (Lint.check_privilege alive)))

let test_prv002_unknown_resource () =
  let net = wire () in
  let spec = Dsl.parse "allow show.* on r9;\n" in
  let d = one_diag "unknown node" "PRV002" (Lint.check_privilege ~network:net spec) in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  let spec_iface = Dsl.parse "allow acl.rule on r1:vlan99;\n" in
  checki "unknown iface" 1
    (List.length (with_code "PRV002" (Lint.check_privilege ~network:net spec_iface)));
  let ok = Dsl.parse "allow show.* on r1;\nallow acl.rule on r*:eth0;\n" in
  checki "clean" 0 (List.length (with_code "PRV002" (Lint.check_privilege ~network:net ok)));
  (* Without a network the check is disabled. *)
  checki "no network" 0 (List.length (with_code "PRV002" (Lint.check_privilege spec)))

let test_prv003_over_broad () =
  let spec = Dsl.parse "allow * on *;\n" in
  let d = one_diag "over-broad" "PRV003" (Lint.check_privilege spec) in
  checkb "warning" true (d.severity = Diagnostic.Warning);
  checki "allow_all flagged" 1
    (List.length (with_code "PRV003" (Lint.check_privilege Privilege.allow_all)));
  (* A read-only wildcard grant is fine. *)
  let ok = Dsl.parse "allow show.*, diag.* on *;\n" in
  checki "clean" 0 (List.length (with_code "PRV003" (Lint.check_privilege ok)))

let test_check_privilege_label () =
  let spec = Dsl.parse "allow * on *;\n" in
  let d = one_diag "labelled" "PRV003" (Lint.check_privilege ~label:"ticket:vlan" spec) in
  checkb "label as device" true (d.device = Some "ticket:vlan")

(* ---------------- whole networks, determinism ---------------- *)

let test_evaluation_networks_lint_clean () =
  List.iter
    (fun name ->
      let sc = Option.get (Experiments.scenario_of_name name) in
      let ds = Lint.check_network sc.Experiments.net in
      checkb (name ^ " no errors") false (Lint.has_errors ds);
      (* Exactly the one deliberate default-permit warning each. *)
      checki (name ^ " acl003") 1 (List.length (with_code "ACL003" ds));
      checki (name ^ " nothing else") 1 (List.length ds))
    Experiments.scenario_names

let test_engine_determinism () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  (* Seed a few defects so the report is non-trivial. *)
  let cfg = Network.config_exn "r8" sc.Experiments.net in
  let acl = Option.get (Ast.find_acl "SRV_PROT" cfg) in
  let acl = Acl.add_rule (Acl.rule ~seq:30 Acl.Deny (pfx "10.9.9.0/24") Prefix.any) acl in
  let net = Network.with_config "r8" (Ast.update_acl acl cfg) sc.Experiments.net in
  let sequential = Lint.check_network net in
  let engine = Heimdall_verify.Engine.create ~domains:3 () in
  let parallel = Lint.check_network ~engine net in
  checkb "findings identical" true (List.equal Diagnostic.equal sequential parallel);
  checks "json identical"
    (Heimdall_json.Json.to_string (Lint.to_json sequential))
    (Heimdall_json.Json.to_string (Lint.to_json parallel))

let test_seeded_shadowed_rule_detected () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let cfg = Network.config_exn "r8" sc.Experiments.net in
  let acl = Option.get (Ast.find_acl "SRV_PROT" cfg) in
  let acl = Acl.add_rule (Acl.rule ~seq:30 Acl.Deny (pfx "10.9.9.0/24") Prefix.any) acl in
  let net = Network.with_config "r8" (Ast.update_acl acl cfg) sc.Experiments.net in
  let ds = Lint.check_network net in
  checkb "error raised" true (Lint.has_errors ds);
  let d = one_diag "seeded" "ACL001" ds in
  checkb "device" true (d.device = Some "r8");
  checkb "object" true (d.obj = Some "SRV_PROT");
  checkb "line" true (d.line = Some 30);
  (* The rule no longer terminal-permits, so ACL003 moves out of SRV_PROT
     — the only remaining finding set is the seeded error. *)
  checki "error count" 1 (Lint.count Diagnostic.Error ds);
  checkb "all known codes" true
    (List.for_all (fun c -> Lint.rule c <> None) (codes ds))

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "diagnostic json roundtrip" `Quick test_diagnostic_json_roundtrip;
    Alcotest.test_case "filter and summary" `Quick test_filter_and_summary;
    Alcotest.test_case "ACL001 opposite shadow" `Quick test_acl001_opposite_shadow;
    Alcotest.test_case "ACL002 redundant" `Quick test_acl002_redundant;
    Alcotest.test_case "ACL003 terminal permit any" `Quick test_acl003_terminal_permit_any;
    Alcotest.test_case "ACL clean" `Quick test_acl_clean;
    Alcotest.test_case "CFG003 undefined acl ref" `Quick test_cfg003_undefined_acl_ref;
    Alcotest.test_case "CFG004 unbound acl" `Quick test_cfg004_unbound_acl;
    Alcotest.test_case "CFG005 undeclared vlan" `Quick test_cfg005_undeclared_vlan;
    Alcotest.test_case "CFG006 off-subnet next hop" `Quick test_cfg006_off_subnet_next_hop;
    Alcotest.test_case "CFG008 acl on shutdown" `Quick test_cfg008_acl_on_shutdown;
    Alcotest.test_case "CFG001 duplicate address" `Quick test_cfg001_duplicate_address;
    Alcotest.test_case "CFG002 link subnet mismatch" `Quick test_cfg002_link_subnet_mismatch;
    Alcotest.test_case "CFG007 ospf area mismatch" `Quick test_cfg007_ospf_area_mismatch;
    Alcotest.test_case "SEC001 twin exposure" `Quick test_sec001_twin_exposure;
    Alcotest.test_case "PRV001 dead deny" `Quick test_prv001_dead_deny;
    Alcotest.test_case "PRV001 redundant allow" `Quick test_prv001_redundant_allow;
    Alcotest.test_case "PRV001 reachable clean" `Quick test_prv001_clean;
    Alcotest.test_case "PRV002 unknown resource" `Quick test_prv002_unknown_resource;
    Alcotest.test_case "PRV003 over-broad" `Quick test_prv003_over_broad;
    Alcotest.test_case "check_privilege label" `Quick test_check_privilege_label;
    Alcotest.test_case "evaluation networks lint clean" `Quick
      test_evaluation_networks_lint_clean;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
    Alcotest.test_case "seeded shadowed rule" `Quick test_seeded_shadowed_rule_detected;
  ]
