(* Tests for the evaluation networks and the experiment harness: Table-1
   invariants, healthy-network properties, issue coverage on both
   networks, metrics, and experiment renderers. *)

open Heimdall_net
open Heimdall_control
open Heimdall_scenarios

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- Table 1 invariants ---------------- *)

let test_enterprise_inventory () =
  let net, policies = Experiments.enterprise () in
  let topo = Network.topology net in
  checki "routers" 9 (List.length (Topology.node_names ~kind:Topology.Router topo));
  checki "hosts" 9 (List.length (Topology.node_names ~kind:Topology.Host topo));
  checki "links" 22 (Topology.link_count topo);
  checkb "policy count near paper (21)" true
    (abs (List.length policies - 21) <= 5);
  checkb "validates" true (Network.validate net = Ok ())

let test_university_inventory () =
  let net, policies = Experiments.university () in
  let topo = Network.topology net in
  let routers =
    List.length (Topology.node_names ~kind:Topology.Router topo)
    + List.length (Topology.node_names ~kind:Topology.Firewall topo)
  in
  checki "routers (incl firewall)" 13 routers;
  checki "hosts" 17 (List.length (Topology.node_names ~kind:Topology.Host topo));
  checki "links" 92 (Topology.link_count topo);
  checkb "policy count near paper (175)" true
    (abs (List.length policies - 175) <= 15);
  checkb "validates" true (Network.validate net = Ok ())

let test_networks_healthy () =
  List.iter
    (fun (net, policies) ->
      let dp = Dataplane.compute net in
      let report = Heimdall_verify.Policy.check_all dp policies in
      checki "no violations when healthy" 0 (List.length report.violations))
    [ Experiments.enterprise (); Experiments.university () ]

let test_networks_deterministic () =
  let a = Enterprise.build () and b = Enterprise.build () in
  checkb "same configs" true
    (List.for_all2
       (fun (n1, c1) (n2, c2) ->
         n1 = n2
         && Heimdall_config.Printer.render c1 = Heimdall_config.Printer.render c2)
       (Network.configs a) (Network.configs b))

let test_all_interfaces_subnet_consistent () =
  (* Every wired L3 link joins a /30 or shares a subnet — validate covers
     this; here we also check transit subnets are unique. *)
  let net, _ = Experiments.university () in
  let subnets =
    List.concat_map
      (fun (_, cfg) ->
        List.filter_map
          (fun (i : Heimdall_config.Ast.interface) ->
            Option.map (fun a -> Prefix.to_string (Ifaddr.subnet a)) i.addr)
          cfg.Heimdall_config.Ast.interfaces)
      (Network.configs net)
  in
  let by_subnet = Hashtbl.create 64 in
  List.iter
    (fun s -> Hashtbl.replace by_subnet s (1 + Option.value (Hashtbl.find_opt by_subnet s) ~default:0))
    subnets;
  (* A /30 transit subnet must appear exactly twice; host subnets at
     least twice (SVI + hosts). *)
  Hashtbl.iter
    (fun s n ->
      (* Only the auto-allocated 10.200.x.y/30 transits; the upstream
         203.0.113.0/30 has one (unwired) end by design. *)
      if String.length s > 7 && String.sub s 0 7 = "10.200." then
        checki ("transit " ^ s) 2 n)
    by_subnet

(* ---------------- Issues on both networks ---------------- *)

let test_university_issues () =
  let net, policies = Experiments.university () in
  List.iter
    (fun (issue : Heimdall_msp.Issue.t) ->
      let broken = issue.inject net in
      checkb (issue.name ^ " symptom") true (Heimdall_msp.Issue.symptom_present issue broken);
      let run = Heimdall_msp.Workflow.run_heimdall ~production:net ~policies ~issue () in
      checkb (issue.name ^ " resolved") true run.Heimdall_msp.Workflow.resolved)
    (University.issues net)

let test_vlan_issue_root_cause_is_switch () =
  let net, _ = Experiments.university () in
  let issue = List.hd (University.issues net) in
  checkb "switch root cause" true
    (Network.kind issue.Heimdall_msp.Issue.root_cause net = Some Topology.Switch)

(* ---------------- Metrics ---------------- *)

let test_metrics_shapes () =
  let net, policies = Experiments.enterprise () in
  let summaries = Metrics.sweep_all ~production:net ~policies () in
  checki "three techniques" 3 (List.length summaries);
  let by t =
    List.find (fun (s : Metrics.summary) -> s.technique = t) summaries
  in
  let all = by Metrics.All_access in
  let neighbor = by Metrics.Neighbor_access in
  let heimdall = by Metrics.Heimdall_twin in
  (* The paper's qualitative claims. *)
  checkb "all = 100% feasible" true (all.feasibility_pct = 100.0);
  checkb "all = 100% surface" true (all.attack_surface_pct >= 99.9);
  checkb "heimdall smallest surface" true
    (heimdall.attack_surface_pct < neighbor.attack_surface_pct
    && heimdall.attack_surface_pct < all.attack_surface_pct);
  checkb "heimdall feasibility close to all" true (heimdall.feasibility_pct >= 95.0);
  checkb "neighbor loses feasibility" true (neighbor.feasibility_pct < 100.0);
  checkb "meaningful reduction (>= 30%)" true
    (all.attack_surface_pct -. heimdall.attack_surface_pct >= 30.0)

let test_metrics_point_counts () =
  let net, policies = Experiments.enterprise () in
  let candidates = Metrics.failure_candidates net in
  checkb "many candidates" true (List.length candidates > 20);
  let s = Metrics.sweep ~production:net ~policies Metrics.Heimdall_twin in
  checki "one point per candidate" (List.length candidates) (List.length s.points)

let test_metrics_surface_bounds () =
  let net, policies = Experiments.enterprise () in
  let summaries = Metrics.sweep_all ~production:net ~policies () in
  List.iter
    (fun (s : Metrics.summary) ->
      List.iter
        (fun (p : Metrics.point) ->
          checkb "0..100" true (p.attack_surface >= 0.0 && p.attack_surface <= 100.0))
        s.points)
    summaries

(* ---------------- Experiments ---------------- *)

let test_experiments_table1 () =
  let rows = Experiments.table1 () in
  checki "two rows" 2 (List.length rows);
  let rendered = Experiments.render_table1 rows in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions Enterprise" true (contains rendered "Enterprise");
  checkb "mentions University" true (contains rendered "University")

let test_experiments_fig7 () =
  let cells = Experiments.fig7 () in
  checki "3 issues x 2 workflows" 6 (List.length cells);
  checkb "all resolved" true (List.for_all (fun c -> c.Experiments.resolved) cells);
  let overheads = Experiments.fig7_overhead cells in
  checki "three overheads" 3 (List.length overheads);
  checkb "all positive" true (List.for_all (fun (_, o) -> o > 0.0) overheads)

let test_experiments_ablations () =
  let v = Experiments.ablation_verify () in
  checkb "continuous slower" true (v.Experiments.continuous_s > v.Experiments.batch_s);
  let rows = Experiments.ablation_slicer () in
  checki "four strategies" 4 (List.length rows);
  let task = List.find (fun r -> r.Experiments.strategy = "task") rows in
  let all = List.find (fun r -> r.Experiments.strategy = "all") rows in
  let neighbor = List.find (fun r -> r.Experiments.strategy = "neighbor") rows in
  checkb "task always repairs" true (task.Experiments.repair_feasible_pct = 100.0);
  checkb "task smaller than all" true
    (task.Experiments.mean_slice_nodes < all.Experiments.mean_slice_nodes);
  checkb "neighbor misses root causes" true
    (neighbor.Experiments.repair_feasible_pct < 100.0);
  let audit = Experiments.ablation_audit () in
  checkb "tamper detected" true audit.Experiments.tamper_detected;
  checkb "appends fast" true (audit.Experiments.append_per_s > 100.0)

let test_experiments_containment () =
  let rows = Experiments.attack_containment () in
  checki "three scenarios" 3 (List.length rows);
  List.iter
    (fun (c : Experiments.containment) ->
      checkb (c.scenario ^ " blocked") true c.heimdall_blocked;
      checki (c.scenario ^ " heimdall leak-free") 0 c.heimdall_leaked;
      checki (c.scenario ^ " heimdall damage-free") 0 c.heimdall_damage;
      checkb (c.scenario ^ " baseline worse") true
        (c.baseline_leaked > 0 || c.baseline_damage > 0))
    rows

let test_campaign () =
  let tallies = Experiments.campaign ~tickets:15 ~malicious_pct:30 () in
  checki "two models" 2 (List.length tallies);
  let by m = List.find (fun (t : Campaign.tally) -> t.model = m) tallies in
  let rmm = by Campaign.Rmm_model and heimdall = by Campaign.Heimdall_model in
  (* Same honest workload, same repair rate. *)
  checki "same repairs" rmm.repaired heimdall.repaired;
  checkb "rmm leaks" true (rmm.secrets_leaked > 0 || rmm.policies_damaged > 0);
  checki "heimdall leak-free" 0 heimdall.secrets_leaked;
  checki "heimdall damage-free" 0 heimdall.policies_damaged;
  checkb "attacks blocked" true (heimdall.attacks_blocked > 0);
  (* Determinism: same seed, same outcome. *)
  checkb "reproducible" true
    (Experiments.campaign ~tickets:15 ~malicious_pct:30 ()
    = Experiments.campaign ~tickets:15 ~malicious_pct:30 ())

let test_campaign_no_issues () =
  let net, policies = Experiments.enterprise () in
  (* An honest repair with no issues to draw from must raise a clear
     [Invalid_argument], not [Division_by_zero]. *)
  (match Campaign.run ~tickets:5 ~malicious_pct:0 net policies [] with
  | exception Invalid_argument m ->
      checkb "clear message" true
        (String.length m > 0 && String.sub m 0 8 = "Campaign")
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected Invalid_argument");
  (* An all-malicious campaign never draws an issue, so an empty issue
     list is legitimate there. *)
  let tallies = Campaign.run ~tickets:5 ~malicious_pct:100 net policies [] in
  checki "both models ran" 2 (List.length tallies)

let test_sweep_engine_deterministic () =
  let net, policies = Experiments.enterprise () in
  let seq = Metrics.sweep ~production:net ~policies Metrics.Heimdall_twin in
  let engine = Heimdall_verify.Engine.create ~domains:4 () in
  let par = Metrics.sweep ~engine ~production:net ~policies Metrics.Heimdall_twin in
  checkb "summaries byte-identical" true (seq = par);
  let stats = Heimdall_verify.Engine.stats engine in
  checkb "trace cache hit" true (stats.Heimdall_verify.Engine.trace_cache_hits > 0);
  checkb "dataplanes built once per point" true
    (stats.Heimdall_verify.Engine.dataplanes_built
    = 1 + List.length (Metrics.failure_candidates net))

let test_sweep_single_engine () =
  (* Regression: sweep used to build one engine for the prepare pass and
     a second for the evaluate pass, so the caches warmed by the sweep
     never reached evaluation.  With one engine, both phases' buckets
     land in the same stats. *)
  let net, policies = Experiments.enterprise () in
  let engine = Heimdall_verify.Engine.create ~domains:1 () in
  ignore (Metrics.sweep ~engine ~production:net ~policies Metrics.All_access);
  let phases =
    List.map fst (Heimdall_verify.Engine.stats engine).Heimdall_verify.Engine.phase_seconds
  in
  checkb "prepare phase recorded" true (List.mem "sweep/prepare" phases);
  checkb "evaluate phase recorded on the same engine" true
    (List.mem "sweep/evaluate-all" phases)

let test_sweep_all_cache_reuse () =
  (* Repeating a full sweep on one engine must answer every dataplane
     from cache: no new builds, positive hit counters, byte-identical
     summaries. *)
  let net, policies = Experiments.university () in
  let open Heimdall_verify in
  let dir = Filename.temp_dir "heimdall-dpcache-sweep" "" in
  let engine = Engine.create ~domains:1 ~cache_dir:dir () in
  let first = Metrics.sweep_all ~engine ~production:net ~policies () in
  let built_after_first = (Engine.stats engine).Engine.dataplanes_built in
  checkb "first sweep built dataplanes" true (built_after_first > 0);
  let second = Metrics.sweep_all ~engine ~production:net ~policies () in
  let s = Engine.stats engine in
  checkb "summaries byte-identical across runs" true (first = second);
  checki "second sweep built nothing new" built_after_first s.Engine.dataplanes_built;
  checkb "dataplane cache hits recorded" true (s.Engine.dataplane_cache_hits > 0);
  (* A fresh engine over the warm persistent cache builds zero
     dataplanes and still produces identical summaries. *)
  let warm = Engine.create ~domains:1 ~cache_dir:dir () in
  let third = Metrics.sweep_all ~engine:warm ~production:net ~policies () in
  let sw = Engine.stats warm in
  checkb "warm persistent summaries identical" true (first = third);
  checki "warm persistent cache built nothing" 0 sw.Engine.dataplanes_built;
  checkb "persistent hits recorded" true (sw.Engine.dataplane_persistent_hits > 0)

let test_campaign_event_stream () =
  let evs = Campaign.events ~seed:7 ~tickets:50 ~malicious_pct:40 in
  checki "count" 50 (List.length evs);
  let hostile =
    List.length (List.filter (fun (e : Campaign.event) -> e.kind <> Campaign.Honest_repair) evs)
  in
  checkb "roughly 40% hostile" true (hostile > 10 && hostile < 30);
  checkb "different seeds differ" true
    (Campaign.events ~seed:8 ~tickets:50 ~malicious_pct:40 <> evs);
  checkb "all zero pct honest" true
    (List.for_all
       (fun (e : Campaign.event) -> e.kind = Campaign.Honest_repair)
       (Campaign.events ~seed:7 ~tickets:20 ~malicious_pct:0))

let test_scenario_of_name () =
  checki "two scenarios" 2 (List.length Experiments.scenario_names);
  List.iter
    (fun name ->
      match Experiments.scenario_of_name name with
      | None -> Alcotest.fail ("missing scenario " ^ name)
      | Some sc ->
          Alcotest.check Alcotest.string "name carried" name sc.Experiments.scenario_name;
          checkb "has policies" true (sc.Experiments.policies <> []);
          checkb "has issues" true (sc.Experiments.issues <> []))
    Experiments.scenario_names;
  checkb "unknown rejected" true (Experiments.scenario_of_name "datacenter" = None);
  (* The cached record matches the cached pair accessors. *)
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let net, policies = Experiments.enterprise () in
  checkb "same network" true (sc.Experiments.net == net);
  checkb "same policies" true (sc.Experiments.policies == policies)

let suite =
  [
    Alcotest.test_case "enterprise inventory" `Quick test_enterprise_inventory;
    Alcotest.test_case "scenario_of_name" `Quick test_scenario_of_name;
    Alcotest.test_case "university inventory" `Quick test_university_inventory;
    Alcotest.test_case "networks healthy" `Quick test_networks_healthy;
    Alcotest.test_case "networks deterministic" `Quick test_networks_deterministic;
    Alcotest.test_case "transit subnets consistent" `Quick
      test_all_interfaces_subnet_consistent;
    Alcotest.test_case "university issues resolve" `Slow test_university_issues;
    Alcotest.test_case "vlan root cause is a switch" `Quick test_vlan_issue_root_cause_is_switch;
    Alcotest.test_case "metrics qualitative shape" `Slow test_metrics_shapes;
    Alcotest.test_case "metrics point counts" `Quick test_metrics_point_counts;
    Alcotest.test_case "metrics surface bounds" `Quick test_metrics_surface_bounds;
    Alcotest.test_case "experiments table1" `Quick test_experiments_table1;
    Alcotest.test_case "experiments fig7" `Slow test_experiments_fig7;
    Alcotest.test_case "experiments ablations" `Slow test_experiments_ablations;
    Alcotest.test_case "experiments containment" `Slow test_experiments_containment;
    Alcotest.test_case "campaign comparison" `Slow test_campaign;
    Alcotest.test_case "campaign event stream" `Quick test_campaign_event_stream;
    Alcotest.test_case "campaign with no issues" `Quick test_campaign_no_issues;
    Alcotest.test_case "sweep engine deterministic" `Slow test_sweep_engine_deterministic;
    Alcotest.test_case "sweep single engine" `Quick test_sweep_single_engine;
    Alcotest.test_case "sweep_all cache reuse" `Slow test_sweep_all_cache_reuse;
  ]
