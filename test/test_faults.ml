(* Tests for the fault-injection subsystem: seeded plan determinism, the
   twin fault hook, the transactional applier's retry/rollback behaviour,
   the engine's spawn fallback, and the end-to-end chaos harness. *)

open Heimdall_config
open Heimdall_control
open Heimdall_faults
open Heimdall_enforcer
module Engine = Heimdall_verify.Engine
module Experiments = Heimdall_scenarios.Experiments
module Chaos = Heimdall_scenarios.Chaos
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let enterprise () =
  match Experiments.scenario_of_name "enterprise" with
  | Some sc -> sc
  | None -> Alcotest.fail "enterprise scenario missing"

let issue_named (sc : Experiments.scenario) name =
  match
    List.find_opt
      (fun (i : Heimdall_msp.Issue.t) -> i.name = name)
      sc.Experiments.issues
  with
  | Some i -> i
  | None -> Alcotest.fail ("issue missing: " ^ name)

(* ---------------- Seeded plans ---------------- *)

let test_plans_deterministic () =
  let net = Enterprise.build () in
  let plan () = Fault.for_apply ~seed:9 ~network:net ~steps:4 in
  checkb "apply plan reproducible" true (plan () = plan ());
  let twin () = Fault.for_twin ~seed:9 ~edits:6 in
  checkb "twin plan reproducible" true (twin () = twin ());
  checkb "different seeds differ" true
    (Fault.for_apply ~seed:9 ~network:net ~steps:4
    <> Fault.for_apply ~seed:10 ~network:net ~steps:4)

let test_apply_plan_shape () =
  let net = Enterprise.build () in
  let faults = Fault.for_apply ~seed:3 ~network:net ~steps:5 in
  let kinds = List.sort_uniq compare (List.map (fun f -> Fault.kind_name f.Fault.kind) faults) in
  checkb "at least three kinds" true (List.length kinds >= 3);
  List.iter
    (fun (f : Fault.t) ->
      checkb "within schedule" true (f.Fault.at >= 1 && f.Fault.at <= 5);
      checkb "duration within retry budget" true
        (f.Fault.duration >= 1 && f.Fault.duration < Applier.default_max_attempts);
      checkb "apply stage" true (f.Fault.stage = Fault.Apply))
    faults

(* Golden plans for the two paper networks, captured before the picks
   moved from list traversals to pre-sized arrays.  The array refactor
   must keep seeded plans byte-identical: same draws, same indices, same
   candidate order. *)
let golden_plan name scenario ~seed ~steps expected =
  let sc =
    match Experiments.scenario_of_name scenario with
    | Some sc -> sc
    | None -> Alcotest.fail (scenario ^ " scenario missing")
  in
  let plan = Fault.for_apply ~seed ~network:sc.Experiments.net ~steps in
  Alcotest.check
    (Alcotest.list Alcotest.string)
    name expected
    (List.map Fault.to_string plan)

let test_apply_plans_golden () =
  golden_plan "enterprise seed 42" "enterprise" ~seed:42 ~steps:6
    [
      "enclave-restart at apply step 4 (duration 1)";
      "partial-apply at apply step 5 (duration 2)";
      "link-down r5:eth1 at apply step 6 (duration 1)";
      "device-crash r8 at apply step 6 (duration 1)";
    ];
  golden_plan "enterprise seed 7" "enterprise" ~seed:7 ~steps:9
    [
      "enclave-restart at apply step 1 (duration 1)";
      "link-down r5:eth1 at apply step 4 (duration 2)";
      "partial-apply at apply step 7 (duration 2)";
      "device-crash r8 at apply step 8 (duration 1)";
    ];
  golden_plan "university seed 42" "university" ~seed:42 ~steps:6
    [
      "enclave-restart at apply step 4 (duration 1)";
      "partial-apply at apply step 5 (duration 2)";
      "link-down core2:eth4 at apply step 6 (duration 1)";
      "device-crash dist1 at apply step 6 (duration 1)";
    ];
  golden_plan "university seed 7" "university" ~seed:7 ~steps:9
    [
      "enclave-restart at apply step 1 (duration 1)";
      "link-down dist2:eth10 at apply step 4 (duration 2)";
      "partial-apply at apply step 7 (duration 2)";
      "device-crash acc6 at apply step 8 (duration 1)";
    ];
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "twin seed 42"
    [
      "flaky-command at twin step 2 (duration 2)";
      "flaky-command at twin step 4 (duration 2)";
    ]
    (List.map Fault.to_string (Fault.for_twin ~seed:42 ~edits:5))

let test_degrade_is_overlay () =
  let net = Enterprise.build () in
  let topo = Network.topology net in
  let link = List.hd (Heimdall_net.Topology.links topo) in
  let down =
    { Fault.kind = Fault.Link_down link.Heimdall_net.Topology.a;
      stage = Fault.Apply; at = 1; duration = 1 }
  in
  let degraded = Fault.degrade [ down ] net in
  checki "one link lost"
    (Heimdall_net.Topology.link_count topo - 1)
    (Heimdall_net.Topology.link_count (Network.topology degraded));
  (* The true network is untouched — recovery is the overlay expiring. *)
  checki "original intact"
    (Heimdall_net.Topology.link_count topo)
    (Heimdall_net.Topology.link_count (Network.topology net))

(* ---------------- Twin fault hook ---------------- *)

let test_twin_hook_flaky_then_clears () =
  let inj =
    Injector.create
      [ { Fault.kind = Fault.Flaky_command; stage = Fault.Twin; at = 1; duration = 2 } ]
  in
  let hook () = Injector.twin_hook inj ~node:"r1" in
  checkb "attempt 1 fails" true (hook () <> None);
  checkb "attempt 2 fails" true (hook () <> None);
  checkb "attempt 3 clears" true (hook () = None);
  checkb "next edit unaffected" true (hook () = None);
  checki "one occurrence" 1 (List.length (Injector.occurrences inj))

let test_emulation_hook_blocks_edit () =
  let net = Enterprise.build () in
  let em =
    Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h2"; "h3" ] ()
  in
  let before = Heimdall_twin.Emulation.changes em in
  Heimdall_twin.Emulation.set_fault_hook em
    (Some (fun ~node -> Some (node ^ " is flaky")));
  (match
     Heimdall_twin.Emulation.apply em ~node:"r4"
       (Change.Set_ospf_cost { iface = "eth0"; cost = Some 9 })
   with
  | Error m -> checkb "hook reason surfaced" true (m = "r4 is flaky")
  | Ok () -> Alcotest.fail "edit should have failed");
  checkb "state untouched" true (Heimdall_twin.Emulation.changes em = before);
  Heimdall_twin.Emulation.set_fault_hook em None;
  match
    Heimdall_twin.Emulation.apply em ~node:"r4"
      (Change.Set_ospf_cost { iface = "eth0"; cost = Some 9 })
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("edit failed after hook removed: " ^ m)

(* ---------------- Transactional applier ---------------- *)

let two_step_plan () =
  let net = Enterprise.build () in
  let policies = Enterprise.policies net in
  let changes =
    [
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
      Change.v "r5" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
    ]
  in
  match Scheduler.plan ~production:net ~policies ~changes () with
  | Ok (plan, final) -> (net, plan, final)
  | Error m -> Alcotest.fail m

let test_applier_clean_run () =
  let net, plan, final = two_step_plan () in
  let s = Applier.run ~production:net ~plan ~audit:Audit.empty () in
  checkb "committed" true s.Applier.committed;
  checki "both steps" 2 s.Applier.steps_applied;
  checki "no retries" 0 (List.length s.Applier.retries);
  checks "lands on the scheduled network"
    (Applier.network_digest final)
    (Applier.network_digest s.Applier.network);
  checkb "audit verifies" true (Audit.verify s.Applier.audit = Ok ())

let test_applier_digest_agrees_with_scheduler () =
  (* Regression for the per-attempt whole-network marshal: the applier now
     compares checkpoints with the incrementally-maintained structural
     digest, so it must agree with [Network.digest] and with every
     scheduler checkpoint along a plan. *)
  let d1 = Applier.network_digest (Enterprise.build ()) in
  checks "equal construction chains agree" d1
    (Applier.network_digest (Enterprise.build ()));
  checks "one digest scheme everywhere"
    (Digest.to_hex (Network.digest (Enterprise.build ())))
    d1;
  let net, plan, final = two_step_plan () in
  let last =
    List.fold_left
      (fun cur (st : Scheduler.step) ->
        match Network.apply_changes [ st.Scheduler.change ] cur with
        | Ok next ->
            checks "applier-side state digest = scheduler checkpoint digest"
              (Applier.network_digest st.Scheduler.checkpoint)
              (Applier.network_digest next);
            next
        | Error e -> Alcotest.fail e)
      net plan.Scheduler.steps
  in
  checks "plan lands on the scheduled final network"
    (Applier.network_digest final) (Applier.network_digest last)

let test_applier_retries_transient_fault () =
  let net, plan, final = two_step_plan () in
  let inj =
    Injector.create
      [ { Fault.kind = Fault.Partial_apply; stage = Fault.Apply; at = 1; duration = 2 } ]
  in
  let s = Applier.run ~injector:inj ~production:net ~plan ~audit:Audit.empty () in
  checkb "committed despite fault" true s.Applier.committed;
  checki "two retries" 2 (List.length s.Applier.retries);
  checks "still lands on the scheduled network"
    (Applier.network_digest final)
    (Applier.network_digest s.Applier.network);
  checkb "retry records chained" true
    (List.exists
       (fun (r : Audit.record) -> r.Audit.action = "retry" && r.Audit.verdict = "transient")
       (Audit.records s.Applier.audit));
  checkb "audit verifies with retries" true (Audit.verify s.Applier.audit = Ok ())

let test_applier_rollback_restores_checkpoint () =
  let net, plan, _ = two_step_plan () in
  (* A persistent fault at step 2: retries exhaust, the applier must
     roll production back to step 1's checkpoint. *)
  let inj =
    Injector.create
      [ { Fault.kind = Fault.Partial_apply; stage = Fault.Apply; at = 2; duration = 999 } ]
  in
  let s =
    Applier.run ~injector:inj ~max_attempts:3 ~production:net ~plan
      ~audit:Audit.empty ()
  in
  checkb "not committed" false s.Applier.committed;
  checki "one step landed" 1 s.Applier.steps_applied;
  let checkpoint1 = (List.hd plan.Scheduler.steps).Scheduler.checkpoint in
  (match s.Applier.rollback with
  | None -> Alcotest.fail "expected a rollback"
  | Some rb ->
      checki "failed at step 2" 2 rb.Applier.failed_step;
      checks "restored the last good checkpoint"
        (Applier.network_digest checkpoint1)
        rb.Applier.restored_digest);
  checks "network is the checkpoint"
    (Applier.network_digest checkpoint1)
    (Applier.network_digest s.Applier.network);
  (* The rolled-back network's dataplane is the checkpoint's dataplane,
     byte for byte. *)
  let dp_digest n = Digest.to_hex (Digest.string (Marshal.to_string (Dataplane.compute n) [])) in
  checks "dataplane digest matches checkpoint"
    (dp_digest checkpoint1)
    (dp_digest s.Applier.network);
  checkb "rollback record chained" true
    (List.exists
       (fun (r : Audit.record) ->
         r.Audit.action = "rollback" && r.Audit.verdict = "rolled-back")
       (Audit.records s.Applier.audit));
  checkb "audit verifies after rollback" true (Audit.verify s.Applier.audit = Ok ())

let test_applier_rollback_at_first_step_restores_production () =
  let net, plan, _ = two_step_plan () in
  let inj =
    Injector.create
      [ { Fault.kind = Fault.Partial_apply; stage = Fault.Apply; at = 1; duration = 999 } ]
  in
  let s =
    Applier.run ~injector:inj ~max_attempts:2 ~production:net ~plan
      ~audit:Audit.empty ()
  in
  checkb "not committed" false s.Applier.committed;
  checki "nothing landed" 0 s.Applier.steps_applied;
  checks "production restored"
    (Applier.network_digest net)
    (Applier.network_digest s.Applier.network)

(* ---------------- Engine spawn fallback ---------------- *)

let test_engine_spawn_fallback () =
  let engine = Engine.create ~domains:4 () in
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  Engine.fail_spawn_for_tests := true;
  let got =
    Fun.protect
      ~finally:(fun () -> Engine.fail_spawn_for_tests := false)
      (fun () -> Engine.map engine (fun x -> x * x) xs)
  in
  checkb "results identical under fallback" true (got = expected);
  checkb "fallbacks counted" true ((Engine.stats engine).Engine.spawn_fallbacks > 0);
  (* And back to normal once spawning works again. *)
  checkb "healthy map agrees" true (Engine.map engine (fun x -> x * x) xs = expected)

(* ---------------- End-to-end chaos ---------------- *)

let audit_head (r : Chaos.result) =
  Audit.head r.Chaos.outcome.Enforcer.audit

let test_chaos_run_recovers () =
  let sc = enterprise () in
  let r = Chaos.run ~scenario:sc ~issue:(issue_named sc "isp") ~seed:42 () in
  checkb "at least three fault kinds" true (List.length r.Chaos.kinds >= 3);
  checkb "passed" true (Chaos.passed r);
  checkb "resolved" true r.Chaos.resolved;
  checki "no surviving violations" 0 (List.length r.Chaos.surviving_violations);
  checkb "audit verifies" true (r.Chaos.audit_ok = Ok ());
  (* Recovery actually happened through retries, and the audit trail
     shows it. *)
  let records = Audit.records r.Chaos.outcome.Enforcer.audit in
  checkb "retry records present" true
    (List.exists (fun (rc : Audit.record) -> rc.Audit.action = "retry") records);
  checkb "faults fired" true (r.Chaos.occurrences <> [])

let test_chaos_deterministic_across_domains () =
  let sc = enterprise () in
  let issue = issue_named sc "vlan" in
  let run domains =
    let engine = Engine.create ~domains () in
    Chaos.run ~engine ~scenario:sc ~issue ~seed:7 ()
  in
  let a = run 1 in
  let b = run 1 in
  let c = run (max 2 (Engine.default_domains ())) in
  let occs (r : Chaos.result) =
    List.map Injector.occurrence_to_string r.Chaos.occurrences
  in
  checkb "same seed, same faults" true (occs a = occs b);
  checkb "same seed, same audit" true (audit_head a = audit_head b);
  checkb "same faults at N domains" true (occs a = occs c);
  checks "same audit at N domains" (audit_head a) (audit_head c);
  checkb "same verdict" true
    (Chaos.passed a = Chaos.passed c
    && a.Chaos.resolved = c.Chaos.resolved
    && a.Chaos.twin_retries = c.Chaos.twin_retries)

let test_chaos_seeds_differ () =
  let sc = enterprise () in
  let issue = issue_named sc "isp" in
  let r1 = Chaos.run ~scenario:sc ~issue ~seed:1 () in
  let r2 = Chaos.run ~scenario:sc ~issue ~seed:2 () in
  (* Both recover, but along different fault sequences. *)
  checkb "both pass" true (Chaos.passed r1 && Chaos.passed r2);
  checkb "different fault sequences" true
    (List.map Injector.occurrence_to_string r1.Chaos.occurrences
    <> List.map Injector.occurrence_to_string r2.Chaos.occurrences)

let suite =
  [
    Alcotest.test_case "seeded plans deterministic" `Quick test_plans_deterministic;
    Alcotest.test_case "apply plan shape" `Quick test_apply_plan_shape;
    Alcotest.test_case "apply plans golden" `Quick test_apply_plans_golden;
    Alcotest.test_case "applier digest agrees with scheduler" `Quick
      test_applier_digest_agrees_with_scheduler;
    Alcotest.test_case "degrade is a pure overlay" `Quick test_degrade_is_overlay;
    Alcotest.test_case "twin hook flaky then clears" `Quick test_twin_hook_flaky_then_clears;
    Alcotest.test_case "emulation hook blocks edit" `Quick test_emulation_hook_blocks_edit;
    Alcotest.test_case "applier clean run" `Quick test_applier_clean_run;
    Alcotest.test_case "applier retries transient fault" `Quick
      test_applier_retries_transient_fault;
    Alcotest.test_case "applier rollback restores checkpoint" `Quick
      test_applier_rollback_restores_checkpoint;
    Alcotest.test_case "applier rollback at first step" `Quick
      test_applier_rollback_at_first_step_restores_production;
    Alcotest.test_case "engine spawn fallback" `Quick test_engine_spawn_fallback;
    Alcotest.test_case "chaos run recovers" `Quick test_chaos_run_recovers;
    Alcotest.test_case "chaos deterministic across domains" `Quick
      test_chaos_deterministic_across_domains;
    Alcotest.test_case "chaos seeds differ" `Quick test_chaos_seeds_differ;
  ]
