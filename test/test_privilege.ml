(* Tests for the Privilege_msp layer: patterns, evaluation, the text DSL
   and the JSON front-end. *)

open Heimdall_net
open Heimdall_privilege

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- Action catalog ---------------- *)

let test_catalog_sanity () =
  checkb "nonempty" true (List.length Action.catalog > 20);
  checkb "sorted unique" true
    (Action.catalog = List.sort_uniq String.compare Action.catalog);
  checkb "mem" true (Action.mem "interface.shutdown");
  checkb "not mem" false (Action.mem "interface.frobnicate")

let test_catalog_classification () =
  checkb "show read-only" true (Action.is_read_only "show.config");
  checkb "diag read-only" true (Action.is_read_only "diag.ping");
  checkb "acl not" false (Action.is_read_only "acl.rule");
  checkb "erase destructive" true (Action.is_destructive "system.erase");
  checkb "mutating excludes show" true
    (not (List.exists Action.is_read_only Action.mutating))

let test_available_on_kinds () =
  let router = Action.available_on Topology.Router in
  let switch = Action.available_on Topology.Switch in
  let host = Action.available_on Topology.Host in
  checkb "router has ospf" true (List.mem "ospf.area" router);
  checkb "switch has vlan" true (List.mem "vlan.switchport" switch);
  checkb "switch lacks ospf" false (List.mem "ospf.area" switch);
  checkb "host lacks acl" false (List.mem "acl.rule" host);
  checkb "all within catalog" true
    (List.for_all Action.mem (router @ switch @ host))

(* ---------------- Patterns & evaluation ---------------- *)

let test_pattern_matching () =
  checkb "star" true (Privilege.pattern_matches "*" "anything");
  checkb "prefix" true (Privilege.pattern_matches "show.*" "show.config");
  checkb "prefix mismatch" false (Privilege.pattern_matches "show.*" "diag.ping");
  checkb "exact" true (Privilege.pattern_matches "acl.rule" "acl.rule");
  checkb "exact mismatch" false (Privilege.pattern_matches "acl.rule" "acl.bind");
  checkb "node glob" true (Privilege.pattern_matches "r*" "r12")

let test_default_deny () =
  checkb "empty denies" false
    (Privilege.allows Privilege.empty (Privilege.request "show.config" "r1"));
  checkb "allow_all allows" true
    (Privilege.allows Privilege.allow_all (Privilege.request "system.erase" "r1"))

let test_first_match_wins () =
  let spec =
    Privilege.of_predicates
      [
        Privilege.deny ~actions:[ "acl.*" ] ~nodes:[ "r1" ] ();
        Privilege.allow ~actions:[ "*" ] ~nodes:[ "r1" ] ();
      ]
  in
  checkb "deny first" false (Privilege.allows spec (Privilege.request "acl.rule" "r1"));
  checkb "other allowed" true (Privilege.allows spec (Privilege.request "show.config" "r1"));
  checkb "other node denied" false
    (Privilege.allows spec (Privilege.request "show.config" "r2"))

let test_interface_scoping () =
  let spec =
    Privilege.of_predicates
      [ Privilege.allow ~iface:"eth0" ~actions:[ "interface.*" ] ~nodes:[ "r1" ] () ]
  in
  checkb "scoped iface" true
    (Privilege.allows spec (Privilege.request ~iface:"eth0" "interface.up" "r1"));
  checkb "other iface" false
    (Privilege.allows spec (Privilege.request ~iface:"eth1" "interface.up" "r1"));
  checkb "device-scope request" false
    (Privilege.allows spec (Privilege.request "interface.up" "r1"))

let test_prepend_overrides () =
  let spec =
    Privilege.of_predicates [ Privilege.deny ~actions:[ "*" ] ~nodes:[ "*" ] () ]
  in
  let spec = Privilege.prepend (Privilege.allow ~actions:[ "diag.ping" ] ~nodes:[ "h1" ] ()) spec in
  checkb "escalated" true (Privilege.allows spec (Privilege.request "diag.ping" "h1"));
  checkb "rest denied" false (Privilege.allows spec (Privilege.request "diag.ping" "h2"))

let test_allowed_actions () =
  let spec =
    Privilege.of_predicates [ Privilege.allow ~actions:[ "show.*" ] ~nodes:[ "r1" ] () ]
  in
  let acts = Privilege.allowed_actions spec ~node:"r1" ~kind:Topology.Router in
  checkb "only shows" true (List.for_all Action.is_read_only acts);
  checki "none elsewhere" 0
    (List.length (Privilege.allowed_actions spec ~node:"r2" ~kind:Topology.Router))

(* qcheck: evaluation is deterministic and total over the catalog. *)
let prop_eval_total =
  QCheck.Test.make ~count:200 ~name:"privilege eval total over catalog"
    (QCheck.pair (QCheck.int_bound (List.length Action.catalog - 1)) QCheck.small_string)
    (fun (idx, node) ->
      let action = List.nth Action.catalog idx in
      let spec =
        Privilege.of_predicates
          [
            Privilege.deny ~actions:[ "system.*" ] ~nodes:[ "*" ] ();
            Privilege.allow ~actions:[ "*" ] ~nodes:[ "r*" ] ();
          ]
      in
      let r = Privilege.request action node in
      let v1 = Privilege.evaluate spec r and v2 = Privilege.evaluate spec r in
      v1 = v2
      &&
      if Action.is_destructive action then v1 = Privilege.Deny
      else if String.length node > 0 && node.[0] = 'r' then v1 = Privilege.Allow
      else v1 = Privilege.Deny)

(* ---------------- DSL ---------------- *)

let test_dsl_parse () =
  let spec =
    Dsl.parse
      {|
      # comment
      allow show.*, diag.* on *;
      allow interface.up, interface.shutdown on r1, r2;
      deny acl.rule on fw1:eth0;
      |}
  in
  checki "three predicates" 3 (Privilege.predicate_count spec);
  checkb "show anywhere" true (Privilege.allows spec (Privilege.request "show.acl" "x"));
  checkb "iface deny" false
    (Privilege.allows spec (Privilege.request ~iface:"eth0" "acl.rule" "fw1"))

let test_dsl_roundtrip () =
  let spec =
    Dsl.parse "allow show.* on r1, r2;\ndeny system.* on *;\nallow acl.rule on fw1:eth*;\n"
  in
  let spec2 = Dsl.parse (Dsl.render spec) in
  checkb "roundtrip" true (spec = spec2)

let test_dsl_errors () =
  List.iter
    (fun text ->
      match Dsl.parse_result text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected DSL error: " ^ text))
    [
      "allow show.* on r1";  (* missing ';' *)
      "permit show.* on r1;";  (* bad keyword *)
      "allow on r1;";  (* no actions *)
      "allow show.* r1;";  (* missing on *)
      "allow frobnicate.* on r1;";  (* unknown action *)
      "allow show.* on ;";  (* no resources *)
    ]

let test_dsl_multiline_statement () =
  let spec = Dsl.parse "allow show.*,\n diag.*\n on r1;\n" in
  checkb "parsed" true (Privilege.allows spec (Privilege.request "diag.ping" "r1"))

let test_dsl_error_line_numbers () =
  let cases =
    [
      ("allow show.* on r1;\npermit diag.* on r1;\n", 2);
      ("# comment\n\nallow show.* r1;\n", 3);
      ("allow show.* on r1;\nallow frobnicate.* on r1;\n", 2);
      ("allow show.* on r1;\n\nallow diag.*,\n interface.up\n on\n", 3);
      ("deny on r1;\n", 1);
    ]
  in
  List.iter
    (fun (text, expected) ->
      match Dsl.parse_result text with
      | Error (line, _) -> checki (String.escaped text) expected line
      | Ok _ -> Alcotest.fail ("expected DSL error: " ^ text))
    cases

(* qcheck: render ∘ parse is the identity on generated specs. *)
let gen_predicate =
  let action_pats =
    [ "*"; "show.*"; "diag.*"; "interface.*"; "acl.rule"; "route.static"; "system.*" ]
  in
  let resource_strs = [ "*"; "r1"; "r*"; "fw1:eth0"; "r1:eth*"; "sw2:vlan10" ] in
  QCheck.Gen.map3
    (fun eff acts res ->
      {
        Privilege.effect = (if eff then Privilege.Allow else Privilege.Deny);
        actions = acts;
        resources = List.map Privilege.resource_of_string res;
      })
    QCheck.Gen.bool
    QCheck.Gen.(list_size (int_range 1 3) (oneofl action_pats))
    QCheck.Gen.(list_size (int_range 1 3) (oneofl resource_strs))

let arbitrary_spec =
  QCheck.make
    ~print:(fun t -> Dsl.render t)
    QCheck.Gen.(map Privilege.of_predicates (list_size (int_range 0 5) gen_predicate))

let prop_dsl_render_parse_roundtrip =
  QCheck.Test.make ~count:200 ~name:"dsl render/parse roundtrip" arbitrary_spec
    (fun spec -> Dsl.parse (Dsl.render spec) = spec)

(* ---------------- JSON front-end ---------------- *)

let test_json_frontend_roundtrip () =
  let spec =
    Privilege.of_predicates
      [
        Privilege.allow ~actions:[ "show.*" ] ~nodes:[ "r1"; "r2" ] ();
        Privilege.deny ~iface:"eth0" ~actions:[ "acl.rule" ] ~nodes:[ "fw1" ] ();
      ]
  in
  match Json_frontend.parse (Json_frontend.render spec) with
  | Ok spec2 -> checkb "roundtrip" true (spec = spec2)
  | Error m -> Alcotest.fail m

let test_json_frontend_document () =
  let doc =
    {| {"version":1,"rules":[{"effect":"allow","actions":["diag.ping"],"resources":["h1"]}]} |}
  in
  match Json_frontend.parse doc with
  | Ok spec ->
      checkb "allows" true (Privilege.allows spec (Privilege.request "diag.ping" "h1"))
  | Error m -> Alcotest.fail m

let test_json_frontend_errors () =
  List.iter
    (fun doc ->
      match Json_frontend.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("expected error: " ^ doc))
    [
      "{}";
      {| {"rules": 3} |};
      {| {"rules":[{"effect":"maybe","actions":["show.*"],"resources":["*"]}]} |};
      {| {"rules":[{"effect":"allow","resources":["*"]}]} |};
      {| {"rules":[{"effect":"allow","actions":[],"resources":["*"]}]} |};
      {| {"rules":[{"effect":"allow","actions":["bogus.*"],"resources":["*"]}]} |};
      "not json";
    ]

(* The two front-ends agree. *)
let test_frontends_agree () =
  let text = "allow show.*, diag.* on *;\ndeny system.* on r1;\n" in
  let from_dsl = Dsl.parse text in
  let json = Json_frontend.render from_dsl in
  match Json_frontend.parse json with
  | Ok from_json ->
      List.iter
        (fun action ->
          List.iter
            (fun node ->
              checkb
                (Printf.sprintf "%s on %s" action node)
                (Privilege.allows from_dsl (Privilege.request action node))
                (Privilege.allows from_json (Privilege.request action node)))
            [ "r1"; "h1" ])
        Action.catalog
  | Error m -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "catalog sanity" `Quick test_catalog_sanity;
    Alcotest.test_case "catalog classification" `Quick test_catalog_classification;
    Alcotest.test_case "available_on kinds" `Quick test_available_on_kinds;
    Alcotest.test_case "pattern matching" `Quick test_pattern_matching;
    Alcotest.test_case "default deny" `Quick test_default_deny;
    Alcotest.test_case "first match wins" `Quick test_first_match_wins;
    Alcotest.test_case "interface scoping" `Quick test_interface_scoping;
    Alcotest.test_case "prepend overrides" `Quick test_prepend_overrides;
    Alcotest.test_case "allowed_actions" `Quick test_allowed_actions;
    QCheck_alcotest.to_alcotest prop_eval_total;
    Alcotest.test_case "dsl parse" `Quick test_dsl_parse;
    Alcotest.test_case "dsl roundtrip" `Quick test_dsl_roundtrip;
    Alcotest.test_case "dsl errors" `Quick test_dsl_errors;
    Alcotest.test_case "dsl multiline" `Quick test_dsl_multiline_statement;
    Alcotest.test_case "dsl error line numbers" `Quick test_dsl_error_line_numbers;
    QCheck_alcotest.to_alcotest prop_dsl_render_parse_roundtrip;
    Alcotest.test_case "json roundtrip" `Quick test_json_frontend_roundtrip;
    Alcotest.test_case "json document" `Quick test_json_frontend_document;
    Alcotest.test_case "json errors" `Quick test_json_frontend_errors;
    Alcotest.test_case "frontends agree" `Quick test_frontends_agree;
  ]
