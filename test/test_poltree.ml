(* Tests for Heimdall_poltree: the text/JSON frontends, the compiler's
   child-overrides / deny! / sibling-precedence semantics, every POL
   rule (trigger + clean counterpart), the POL004 refinement proof over
   both paper networks and a generated fleet, cross-domain determinism,
   and the documented witness order of Packet_set.sample. *)

open Heimdall_net
open Heimdall_control
open Heimdall_lint
open Heimdall_poltree
module Experiments = Heimdall_scenarios.Experiments
module Fleetgen = Heimdall_scenarios.Fleetgen

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let pfx = Prefix.of_string
let ip = Ipv4.of_string

let with_code c diags = List.filter (fun (d : Diagnostic.t) -> d.code = c) diags

let compile_str src = Compile.compile_exn (Parser.parse src)

(* A small campus: guests may reach the internet but nothing internal —
   the motivating example from the paper's framing. *)
let campus_src = {|
service web = tcp 80, tcp 443;

node campus {
  scope 10.0.0.0/8;
  owner agg-1;
  deny any from guests;
  allow icmp from 10.0.0.0/8;
  node servers {
    scope 10.2.0.0/16;
    owner agg-2;
    allow web from 10.1.0.0/16;
  }
  node guests {
    scope 10.9.0.0/16;
  }
}
allow any from guests;
|}

(* ---------------- frontends ---------------- *)

let test_parse_roundtrip () =
  let t = Parser.parse campus_src in
  checki "nodes" 4 (Poltree.node_count t);
  checki "rules" 4 (Poltree.rule_count t);
  let again = Parser.parse (Poltree.render t) in
  checkb "text roundtrip" true (Poltree.equal t again);
  match Poltree.of_json (Poltree.to_json t) with
  | Ok j -> checkb "json roundtrip" true (Poltree.equal t j)
  | Error e -> Alcotest.failf "json roundtrip failed: %s" e

let test_parse_errors () =
  (match Parser.parse_result "node x {\n  scope 10.0.0.0/8;\n  allow nosuch;\n}" with
  | Error m -> checkb "unknown service reported" true (m <> "")
  | Ok _ -> Alcotest.fail "unknown service accepted");
  (match Parser.parse_result "allow icmp from any" with
  | Error m ->
      checkb "line number in error" true
        (String.length m >= 6 && String.sub m 0 5 = "line ")
  | Ok _ -> Alcotest.fail "missing semicolon accepted");
  match Parser.parse_result "node x { allow icmp; }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing scope accepted"

(* ---------------- compiler semantics ---------------- *)

let v c f = Compile.verdict c f

let test_compile_semantics () =
  let c = compile_str campus_src in
  let internal = Flow.icmp (ip "10.9.0.5") (ip "10.1.0.7") in
  let internet = Flow.icmp (ip "10.9.0.5") (ip "8.8.8.8") in
  let ping_ok = Flow.icmp (ip "10.1.0.7") (ip "10.2.0.9") in
  let web_ok = Flow.tcp ~dst_port:443 (ip "10.1.0.7") (ip "10.2.0.9") in
  let web_guest = Flow.tcp ~dst_port:443 (ip "10.9.0.5") (ip "10.2.0.9") in
  (* campus-level deny beats the root-level allow for internal dsts... *)
  checkb "guest->internal denied" true (v c internal = Compile.Deny_explicit);
  (* ...but the internet is outside the campus scope, so the root rule
     decides. *)
  checkb "guest->internet allowed" true (v c internet = Compile.Permit []);
  (* child allow (servers) overrides the parent's guest deny?  No — the
     deny is about guests; web from 10.1/16 is a different source. *)
  checkb "icmp inside campus" true (v c ping_ok = Compile.Permit []);
  checkb "web to servers" true (v c web_ok = Compile.Permit []);
  (* The servers child decides first for its scope, so even the campus
     deny-from-guests does not stop guest web?  It does: the child only
     allows web from 10.1/16; guests fall through to the campus deny. *)
  checkb "guest web denied" true (v c web_guest = Compile.Deny_explicit);
  (* Default deny: something no rule covers. *)
  checkb "default deny" true
    (v c (Flow.icmp (ip "192.168.1.1") (ip "10.2.0.9")) = Compile.Deny_default)

let test_child_overrides_parent () =
  let c =
    compile_str
      {|
node campus {
  scope 10.0.0.0/8;
  deny any;
  node lab {
    scope 10.5.0.0/16;
    allow icmp;
  }
}
|}
  in
  checkb "child allow wins in its scope" true
    (v c (Flow.icmp (ip "1.2.3.4") (ip "10.5.0.1")) = Compile.Permit []);
  checkb "parent deny holds elsewhere" true
    (v c (Flow.icmp (ip "1.2.3.4") (ip "10.6.0.1")) = Compile.Deny_explicit)

let test_deny_final_is_invariant () =
  let c =
    compile_str
      {|
node campus {
  scope 10.0.0.0/8;
  deny! udp from 172.16.0.0/12;
  node lab {
    scope 10.5.0.0/16;
    allow any;
  }
}
|}
  in
  (* Plain child-overrides would let the lab allow win; deny! must not. *)
  checkb "deny! beats child allow" true
    (v c (Flow.make ~proto:Flow.Udp ~src_port:40000 ~dst_port:53 (ip "172.16.3.3") (ip "10.5.0.1"))
    = Compile.Deny_explicit);
  checkb "other traffic still allowed" true
    (v c (Flow.icmp (ip "172.16.3.3") (ip "10.5.0.1")) = Compile.Permit [])

let test_sibling_precedence_and_requires () =
  let c =
    compile_str
      {|
node a {
  scope 10.0.0.0/15;
  deny icmp;
}
node b {
  scope 10.1.0.0/16;
  allow icmp;
}
require fw-1 icmp from any to 10.4.0.0/16;
allow icmp from any to 10.4.0.0/16;
|}
  in
  (* a and b overlap on 10.1/16: the earlier sibling (a) wins. *)
  checkb "earlier sibling wins" true
    (v c (Flow.icmp (ip "1.1.1.1") (ip "10.1.0.9")) = Compile.Deny_explicit);
  checkb "waypoint recorded" true
    (v c (Flow.icmp (ip "1.1.1.1") (ip "10.4.0.9")) = Compile.Permit [ "fw-1" ]);
  checki "require set present" 1 (List.length c.Compile.requires)

(* ---------------- POL triggers and clean counterparts -------------- *)

let test_pol001 () =
  let clean = compile_str campus_src in
  checki "clean: no POL001" 0 (List.length (with_code "POL001" (Analysis.check clean)));
  let seeded =
    match Analysis.seed_pol001 (Parser.parse campus_src) with
    | Ok t -> Compile.compile_exn t
    | Error e -> Alcotest.fail e
  in
  let findings = with_code "POL001" (Analysis.check seeded) in
  checkb "seeded POL001 fires" true (findings <> []);
  let d = List.hd findings in
  checkb "error severity" true (d.Diagnostic.severity = Diagnostic.Error);
  checkb "witness in message" true
    (let msg = d.Diagnostic.message in
     String.length msg > 0
     && (try ignore (Str.search_forward (Str.regexp "witness") msg 0); true
         with Not_found -> false))

let test_pol002_shadowed () =
  let c =
    compile_str
      {|
node x {
  scope 10.0.0.0/8;
  allow icmp from 10.1.0.0/16;
  allow icmp from 10.1.0.0/16 to 10.2.0.0/16;
}
|}
  in
  let findings = with_code "POL002" (Analysis.check c) in
  checki "second rule shadowed" 1 (List.length findings);
  checks "on rule 2" "rule 2"
    (match (List.hd findings).Diagnostic.obj with Some o -> o | None -> "")

let test_pol003_empty_scope () =
  let c =
    compile_str
      {|
node x {
  scope 10.0.0.0/8;
  node stray {
    scope 192.168.0.0/16;
    allow icmp;
  }
}
|}
  in
  let findings = with_code "POL003" (Analysis.check c) in
  checki "disjoint child scope flagged" 1 (List.length findings);
  checks "path names the stray node" "root/x/stray"
    (match (List.hd findings).Diagnostic.device with Some d -> d | None -> "")

let test_pol006_redundant () =
  let c =
    compile_str
      {|
node campus {
  scope 10.0.0.0/8;
  allow icmp from 172.16.0.0/12;
  node dup {
    scope 10.5.0.0/16;
    allow icmp from 172.16.0.0/12;
  }
}
|}
  in
  let findings = with_code "POL006" (Analysis.check c) in
  checki "duplicate subtree flagged" 1 (List.length findings);
  checks "names the dup node" "root/campus/dup"
    (match (List.hd findings).Diagnostic.device with Some d -> d | None -> "");
  (* Clean counterpart: the child decides differently from the parent. *)
  let clean =
    compile_str
      {|
node campus {
  scope 10.0.0.0/8;
  allow icmp from 172.16.0.0/12;
  node dmz {
    scope 10.5.0.0/16;
    deny icmp from 172.16.0.0/12;
  }
}
|}
  in
  checki "distinct subtree not flagged" 0
    (List.length (with_code "POL006" (Analysis.check clean)))

(* ---------------- POL004: refinement vs flat specs ---------------- *)

let tree_of_scenario (sc : Experiments.scenario) =
  Mine.of_policies ~segs:(Mine.segs_of_network sc.Experiments.net) sc.Experiments.policies

let pol004_errors sc =
  let c = Compile.compile_exn (tree_of_scenario sc) in
  Analysis.check ~policies:sc.Experiments.policies c
  |> with_code "POL004"
  |> List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)

let test_pol004_enterprise () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let errors = pol004_errors sc in
  List.iter (fun d -> Printf.eprintf "POL004: %s\n" (Diagnostic.to_string d)) errors;
  checki "mined tree refines the enterprise flat spec" 0 (List.length errors)

let test_pol004_university () =
  let sc = Option.get (Experiments.scenario_of_name "university") in
  checki "mined tree refines the university flat spec" 0 (List.length (pol004_errors sc))

let test_pol004_fleet () =
  let fleet = Fleetgen.generate (Fleetgen.default_params (Fleetgen.Fat_tree { k = 4 })) in
  checki "37-device fleet" 37 (Fleetgen.device_count fleet);
  let c = Compile.compile_exn fleet.Fleetgen.poltree in
  let errors =
    Analysis.check ~policies:fleet.Fleetgen.policies c
    |> with_code "POL004"
    |> List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
  in
  List.iter (fun d -> Printf.eprintf "POL004: %s\n" (Diagnostic.to_string d)) errors;
  checki "fleet tree refines the closed-form spec" 0 (List.length errors)

let test_pol004_seeded () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let seeded =
    match Analysis.seed_pol004 (tree_of_scenario sc) with
    | Ok t -> Compile.compile_exn t
    | Error e -> Alcotest.fail e
  in
  let errors =
    Analysis.check ~policies:sc.Experiments.policies seeded
    |> with_code "POL004"
    |> List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error)
  in
  checkb "flipped allow breaks refinement" true (errors <> [])

(* ---------------- POL005 ---------------- *)

let pol005_ticket spec =
  {
    Plan_lint.label = "ticket:test";
    spec;
    scope = [];
    (* A static-route add has a bounded delta (any -> prefix) even with
       no baseline network, so POL005 gets an informative packet set. *)
    commands = [ "connect agg-1"; "configure ip route 10.5.0.0/16 10.5.0.254" ];
  }

let test_pol005 () =
  let src = {|
node lab {
  scope 10.5.0.0/16;
  owner agg-1;
  allow icmp;
}
|} in
  let c = compile_str src in
  let uncovered =
    Heimdall_privilege.Privilege.of_predicates
      [ Heimdall_privilege.Privilege.allow ~actions:[ "interface.*" ] ~nodes:[ "other-dev" ] () ]
  in
  let covered =
    Heimdall_privilege.Privilege.of_predicates
      [ Heimdall_privilege.Privilege.allow ~actions:[ "interface.*" ] ~nodes:[ "agg-1" ] () ]
  in
  let findings spec =
    with_code "POL005" (Analysis.check ~tickets:[ pol005_ticket spec ] c)
  in
  checkb "uncovered owner flagged" true (findings uncovered <> []);
  checki "covered owner clean" 0 (List.length (findings covered))

(* ---------------- determinism ---------------- *)

let test_cross_domain_determinism () =
  let fleet = Fleetgen.generate (Fleetgen.default_params (Fleetgen.Fat_tree { k = 4 })) in
  let c = Compile.compile_exn fleet.Fleetgen.poltree in
  let run domains =
    let engine = Heimdall_verify.Engine.create ~domains () in
    Analysis.check ~engine ~policies:fleet.Fleetgen.policies c
  in
  let a = run 1 and b = run 3 in
  checki "same count" (List.length a) (List.length b);
  checkb "byte-identical reports at 1 vs 3 domains" true
    (List.for_all2 (fun x y -> Diagnostic.compare x y = 0 && x = y) a b)

(* ---------------- tree as spec source ---------------- *)

let test_tree_verify_spec_source () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let c = Compile.compile_exn (tree_of_scenario sc) in
  let dp = Dataplane.compute sc.Experiments.net in
  let report = Tree_verify.check_all dp c in
  checkb "probes exist" true (report.Heimdall_verify.Policy.total > 0);
  List.iter
    (fun ((p : Heimdall_verify.Policy.t), why) ->
      Printf.eprintf "tree-verify violation: %s — %s\n" p.id why)
    report.Heimdall_verify.Policy.violations;
  checki "healthy dataplane satisfies the tree spec" 0
    (List.length report.Heimdall_verify.Policy.violations)

(* ---------------- diff ---------------- *)

let test_diff_witnesses () =
  let a = compile_str "allow icmp from any to 10.0.0.0/8;" in
  let b = compile_str "allow icmp from any to 10.0.0.0/9;" in
  let d = Compile.diff a b in
  checkb "a minus b non-empty" true (not (Packet_set.is_empty d.Compile.only_a));
  checkb "b covered by a" true (Packet_set.is_empty d.Compile.only_b);
  checkb "witness rendered" true
    (let s = Compile.render_diff d in
     try ignore (Str.search_forward (Str.regexp "witness") s 0); true
     with Not_found -> false);
  checkb "self diff empty" true (Compile.diff_is_empty (Compile.diff a a))

(* ---------------- witness order pin ---------------- *)

let test_sample_witness_order () =
  (* Two cubes whose canonical order differs from the documented packet
     order: cube sorting compares whole prefixes, so (10.0.0.0/8 →
     20.0.0.0/8) sorts before (10.0.0.0/24 → 5.0.0.0/8), yet the lowest
     witness lives in the second cube (dst 5.0.0.0 < 20.0.0.0). *)
  let s =
    Packet_set.union
      (Packet_set.cube ~src:(pfx "10.0.0.0/8") ~dst:(pfx "20.0.0.0/8") ())
      (Packet_set.cube ~src:(pfx "10.0.0.0/24") ~dst:(pfx "5.0.0.0/8") ())
  in
  (match Packet_set.sample s with
  | None -> Alcotest.fail "sample of non-empty set"
  | Some f ->
      checks "lowest src" "10.0.0.0" (Ipv4.to_string f.Flow.src);
      checks "then lowest dst" "5.0.0.0" (Ipv4.to_string f.Flow.dst);
      checkb "lowest proto" true (f.Flow.proto = Flow.Icmp));
  (* Port tiebreak: same addresses, higher-port cube listed first. *)
  let s2 =
    Packet_set.union
      (Packet_set.cube ~protos:[ Flow.Tcp ] ~dst_port:(443, 443) ~src:(pfx "10.0.0.0/8")
         ~dst:(pfx "20.0.0.0/8") ())
      (Packet_set.cube ~protos:[ Flow.Tcp ] ~dst_port:(80, 80) ~src:(pfx "10.0.0.0/8")
         ~dst:(pfx "20.0.0.0/8") ())
  in
  match Packet_set.sample s2 with
  | Some f -> checki "lowest dst port" 80 f.Flow.dst_port
  | None -> Alcotest.fail "sample of non-empty set"

let suite =
  [
    Alcotest.test_case "parse/render/json roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse errors carry lines" `Quick test_parse_errors;
    Alcotest.test_case "compile semantics" `Quick test_compile_semantics;
    Alcotest.test_case "child overrides parent" `Quick test_child_overrides_parent;
    Alcotest.test_case "deny! is an invariant" `Quick test_deny_final_is_invariant;
    Alcotest.test_case "sibling precedence + requires" `Quick
      test_sibling_precedence_and_requires;
    Alcotest.test_case "POL001 trigger + clean" `Quick test_pol001;
    Alcotest.test_case "POL002 shadowed rule" `Quick test_pol002_shadowed;
    Alcotest.test_case "POL003 empty scope" `Quick test_pol003_empty_scope;
    Alcotest.test_case "POL006 redundant subtree" `Quick test_pol006_redundant;
    Alcotest.test_case "POL004 enterprise refinement" `Quick test_pol004_enterprise;
    Alcotest.test_case "POL004 university refinement" `Quick test_pol004_university;
    Alcotest.test_case "POL004 fleet refinement" `Quick test_pol004_fleet;
    Alcotest.test_case "POL004 seeded defect" `Quick test_pol004_seeded;
    Alcotest.test_case "POL005 scope ownership" `Quick test_pol005;
    Alcotest.test_case "cross-domain determinism" `Quick test_cross_domain_determinism;
    Alcotest.test_case "tree as spec source" `Quick test_tree_verify_spec_source;
    Alcotest.test_case "diff with witnesses" `Quick test_diff_witnesses;
    Alcotest.test_case "sample witness order" `Quick test_sample_witness_order;
  ]
