(* Tests for the Watchtower: labeled metrics and Prometheus exposition
   correctness, the bounded event/span buffers, the HTTP exporter (all
   endpoints, error paths, concurrent scrapes, port collisions), the
   runtime sampler, and the continuous drift monitor — including its
   composition with the chaos injector and the tier-1 invariant that
   monitoring never changes workflow verdicts. *)

open Heimdall_obs
module Json = Heimdall_json.Json
module Experiments = Heimdall_scenarios.Experiments
module Network = Heimdall_control.Network
module Monitor = Heimdall_msp.Monitor

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec at i = i + n <= m && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* ---------------- labeled metrics ---------------- *)

let test_labeled_series () =
  let m = Metrics.create () in
  Metrics.incr m "policy.checked" ~labels:[ ("verdict", "holds") ] ~by:3;
  Metrics.incr m "policy.checked" ~labels:[ ("verdict", "violated") ];
  (* Label order must not matter: same canonical series. *)
  Metrics.incr m "rpc" ~labels:[ ("a", "1"); ("b", "2") ];
  Metrics.incr m "rpc" ~labels:[ ("b", "2"); ("a", "1") ];
  checki "exact series" 3
    (Metrics.counter_value m ~labels:[ ("verdict", "holds") ] "policy.checked");
  checki "other series" 1
    (Metrics.counter_value m ~labels:[ ("verdict", "violated") ] "policy.checked");
  (* Unlabeled read = sum over the family. *)
  checki "family sum" 4 (Metrics.counter_value m "policy.checked");
  checki "canonical labels merge" 2
    (Metrics.counter_value m ~labels:[ ("a", "1"); ("b", "2") ] "rpc");
  checki "absent series" 0
    (Metrics.counter_value m ~labels:[ ("verdict", "nope") ] "policy.checked")

let test_scoped_view () =
  let o = Obs.create () in
  let scoped = Obs.scoped o [ ("scenario", "enterprise") ] in
  let deeper = Obs.scoped scoped [ ("session", "vlan") ] in
  Obs.incr (Some deeper) "session.commands";
  Obs.incr (Some scoped) "session.commands";
  (* All views share one registry; the base labels only stamp writes. *)
  checki "shared registry sum" 2 (Metrics.counter_value o.Obs.metrics "session.commands");
  checki "deep series" 1
    (Metrics.counter_value o.Obs.metrics
       ~labels:[ ("scenario", "enterprise"); ("session", "vlan") ]
       "session.commands");
  (* An explicit label overrides the base label with the same key. *)
  Obs.incr (Some scoped) "session.commands" ~labels:[ ("scenario", "override") ];
  checki "override wins" 1
    (Metrics.counter_value o.Obs.metrics ~labels:[ ("scenario", "override") ]
       "session.commands")

let test_prometheus_exposition () =
  let m = Metrics.create () in
  Metrics.incr m "9weird.name" ~labels:[ ("bad label", "va\"l\\ue\nx") ];
  Metrics.set_gauge m "drift.active" 1.0;
  Metrics.observe m "engine.phase_s" ~labels:[ ("phase", "verify") ] 0.5;
  Metrics.set_help m "drift.active" "1 while the observed network diverges";
  let text = Metrics.to_prometheus m in
  (* Names sanitised to [a-zA-Z_:][a-zA-Z0-9_:]*. *)
  checkb "leading digit prefixed" true (contains text "_9weird_name");
  checkb "label name sanitised" true (contains text "bad_label=");
  (* Label values escaped: backslash, quote, newline. *)
  checkb "escaped value" true (contains text {|va\"l\\ue\nx|});
  checkb "help text" true
    (contains text "# HELP drift_active 1 while the observed network diverges");
  checkb "type line" true (contains text "# TYPE drift_active gauge");
  checkb "histogram quantile" true
    (contains text "engine_phase_s{phase=\"verify\",quantile=\"0.5\"}");
  checkb "histogram count" true (contains text "engine_phase_s_count{phase=\"verify\"} 1");
  (* HELP/TYPE once per family even with several series. *)
  Metrics.incr m "fam" ~labels:[ ("k", "a") ];
  Metrics.incr m "fam" ~labels:[ ("k", "b") ];
  let text = Metrics.to_prometheus m in
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length text then acc
      else go (i + 1) (if String.sub text i n = sub then acc + 1 else acc)
    in
    go 0 0
  in
  checki "one TYPE line for fam" 1 (count_sub "# TYPE fam counter");
  (* Deterministic rendering: a second registry fed the same updates
     renders byte-identically. *)
  let m2 = Metrics.create () in
  Metrics.incr m2 "fam" ~labels:[ ("k", "b") ];
  Metrics.incr m2 "fam" ~labels:[ ("k", "a") ];
  let fam_only t =
    String.concat "\n"
      (List.filter (fun l -> contains l "fam") (String.split_on_char '\n' t))
  in
  checks "deterministic series order" (fam_only (Metrics.to_prometheus m))
    (fam_only (Metrics.to_prometheus m2))

(* ---------------- bounded buffers ---------------- *)

let test_event_ring_cap () =
  let e = Events.create ~cap:4 () in
  for i = 1 to 10 do
    Events.record e ("k" ^ string_of_int i)
  done;
  checki "total length" 10 (Events.length e);
  checki "dropped" 6 (Events.dropped e);
  let retained = Events.events e in
  checki "retained = cap" 4 (List.length retained);
  checks "oldest retained" "k7" (List.hd retained).Events.kind;
  checki "seq keeps growing" 10
    (List.nth retained 3).Events.seq

let test_tracer_cap () =
  let t = Tracer.create ~cap:8 () in
  for i = 1 to 50 do
    Tracer.with_span t ("s" ^ string_of_int i) (fun () -> ())
  done;
  checkb "dropped some" true (Tracer.dropped t > 0);
  let retained = Tracer.recent t in
  checkb "bounded" true (List.length retained <= 16);
  checkb "newest kept" true
    (List.exists (fun (s : Tracer.span) -> s.name = "s50") retained);
  (* recent is non-destructive: flush still returns them. *)
  checki "flush sees the same" (List.length retained) (List.length (Tracer.flush t));
  checki "flush drained" 0 (List.length (Tracer.recent t))

(* ---------------- exporter ---------------- *)

let with_exporter ?health obs f =
  match Exporter.create ?health ~port:0 obs with
  | Error m -> Alcotest.failf "exporter create: %s" m
  | Ok ex ->
      Exporter.start ex;
      Fun.protect ~finally:(fun () -> Exporter.stop ex) (fun () -> f ex)

let test_exporter_endpoints () =
  let obs = Obs.create () in
  Obs.incr (Some obs) "policy.checked" ~labels:[ ("verdict", "holds") ] ~by:7;
  Obs.event (Some obs) "drift.detected" ~attrs:[ ("devices", "r1") ];
  Obs.span (Some obs) "session" (fun () -> ());
  with_exporter obs (fun ex ->
      let port = Exporter.port ex in
      (match Exporter.get ~port "/metrics" with
      | Ok (200, body) ->
          checkb "series present" true (contains body "policy_checked{verdict=\"holds\"} 7");
          checkb "self counter" true (contains body "exporter_requests")
      | Ok (code, _) -> Alcotest.failf "/metrics -> %d" code
      | Error m -> Alcotest.fail m);
      (match Exporter.get ~port "/metrics.json" with
      | Ok (200, body) ->
          let json = Json.of_string body in
          checkb "json has counters" true (Json.member "counters" json <> None)
      | _ -> Alcotest.fail "/metrics.json");
      (match Exporter.get ~port "/healthz" with
      | Ok (200, body) -> checkb "status ok" true (contains body "\"ok\"")
      | _ -> Alcotest.fail "/healthz");
      (match Exporter.get ~port "/spans" with
      | Ok (200, body) -> checkb "span tree" true (contains body "session")
      | _ -> Alcotest.fail "/spans");
      (match Exporter.get ~port "/events" with
      | Ok (200, body) ->
          let json = Json.of_string body in
          checkb "events listed" true (Json.member "events" json <> None);
          checkb "dropped field" true (Json.member "dropped" json <> None)
      | _ -> Alcotest.fail "/events");
      match Exporter.get ~port "/nope" with
      | Ok (404, _) -> ()
      | _ -> Alcotest.fail "unknown path should 404")

let test_exporter_unhealthy () =
  let obs = Obs.create () in
  let health () = (false, [ ("reason", Json.String "drift monitor dead") ]) in
  with_exporter ~health obs (fun ex ->
      match Exporter.get ~port:(Exporter.port ex) "/healthz" with
      | Ok (503, body) -> checkb "unhealthy body" true (contains body "unhealthy")
      | Ok (code, _) -> Alcotest.failf "expected 503, got %d" code
      | Error m -> Alcotest.fail m)

(* Raw-socket requests for the malformed / non-GET paths the client
   helper can't produce. *)
let raw_request port payload =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring sock payload 0 (String.length payload));
      Unix.shutdown sock Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        match Unix.read sock chunk 0 1024 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf)

let test_exporter_malformed () =
  let obs = Obs.create () in
  with_exporter obs (fun ex ->
      let port = Exporter.port ex in
      checkb "garbage -> 400" true
        (contains (raw_request port "not an http request\r\n\r\n") "400");
      checkb "post -> 405" true
        (contains (raw_request port "POST /metrics HTTP/1.1\r\n\r\n") "405"))

let test_exporter_port_in_use () =
  let obs = Obs.create () in
  match Exporter.create ~port:0 obs with
  | Error m -> Alcotest.fail m
  | Ok first ->
      Fun.protect
        ~finally:(fun () -> Exporter.stop first)
        (fun () ->
          match Exporter.create ~port:(Exporter.port first) obs with
          | Error m -> checkb "mentions bind" true (contains m "bind")
          | Ok second ->
              Exporter.stop second;
              Alcotest.fail "second bind on the same port should fail")

let test_exporter_concurrent_scrapes () =
  let obs = Obs.create () in
  Obs.incr (Some obs) "policy.checked" ~by:5;
  with_exporter obs (fun ex ->
      let port = Exporter.port ex in
      let scrape () =
        let oks = ref 0 in
        for _ = 1 to 10 do
          match Exporter.get ~port "/metrics" with
          | Ok (200, body) when contains body "policy_checked" -> incr oks
          | _ -> ()
        done;
        !oks
      in
      let workers = List.init 4 (fun _ -> Domain.spawn scrape) in
      let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 workers in
      checki "all concurrent scrapes served" 40 total)

(* ---------------- runtime sampler ---------------- *)

let test_runtime_sampler () =
  let obs = Obs.create ~event_cap:2 () in
  Obs.event (Some obs) "a";
  Obs.event (Some obs) "b";
  Obs.event (Some obs) "c";
  let rt = Runtime.create obs in
  Runtime.add_sampler rt (fun () -> [ ("custom.answer", 42.0) ]);
  Runtime.sample rt;
  let gauge name = Metrics.gauge_value obs.Obs.metrics name in
  checkb "gc heap gauge" true (match gauge "runtime.gc.heap_words" with
    | Some v -> v > 0.0
    | None -> false);
  checkb "event drop gauge" true (gauge "obs.events.dropped" = Some 1.0);
  checkb "custom sampler" true (gauge "custom.answer" = Some 42.0);
  (* A sampler that raises is skipped, not fatal. *)
  Runtime.add_sampler rt (fun () -> failwith "boom");
  Runtime.sample rt;
  checkb "still sampling after bad sampler" true (gauge "custom.answer" = Some 42.0)

let test_engine_runtime_sampler () =
  let open Heimdall_verify in
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let engine = Engine.create ~domains:1 () in
  let dp = Engine.dataplane engine sc.Experiments.net in
  ignore (Engine.dataplane engine sc.Experiments.net);
  ignore (Policy.check_all ~engine dp sc.Experiments.policies);
  let gauges = Engine.runtime_sampler engine () in
  Engine.shutdown engine;
  let v name = List.assoc_opt name gauges in
  checkb "domains gauge" true (v "engine.domains" = Some 1.0);
  checkb "dataplane hit rate positive" true
    (match v "engine.dataplane.cache_hit_rate" with
    | Some r -> r > 0.0 && r <= 1.0
    | None -> false);
  checkb "trace hit rate bounded" true
    (match v "engine.trace.hit_rate" with
    | Some r -> r >= 0.0 && r <= 1.0
    | None -> false)

(* ---------------- drift monitor ---------------- *)

let test_monitor_detect_clear () =
  let open Heimdall_verify in
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let issue = List.hd sc.Experiments.issues in
  let obs = Obs.create () in
  let engine = Engine.create ~domains:1 ~obs () in
  let observed = ref sc.Experiments.net in
  let monitor =
    Monitor.create ~engine ~expected:sc.Experiments.net
      ~observe:(fun () -> !observed)
      sc.Experiments.policies
  in
  checks "baseline clean" "clean" (Monitor.check monitor);
  observed := issue.Heimdall_msp.Issue.inject sc.Experiments.net;
  checks "drift edge" "detected" (Monitor.check monitor);
  checks "still drifted" "drift" (Monitor.check monitor);
  observed := sc.Experiments.net;
  checks "clear edge" "clear" (Monitor.check monitor);
  checks "clean again" "clean" (Monitor.check monitor);
  Engine.shutdown engine;
  let s = Monitor.status monitor in
  checki "cycles" 5 s.Monitor.cycles;
  checkb "no longer active" true (not s.Monitor.drift_active);
  checki "one detection" 1 s.Monitor.detections;
  checki "one clear" 1 s.Monitor.clears;
  (* Events: exactly one detected and one clear, edge-triggered. *)
  let kinds =
    List.map (fun (e : Events.event) -> e.Events.kind) (Events.events obs.Obs.events)
  in
  checki "one detected event" 1
    (List.length (List.filter (( = ) "drift.detected") kinds));
  checki "one clear event" 1 (List.length (List.filter (( = ) "drift.clear") kinds));
  (* Metrics: per-result counters and the final gauge state. *)
  let counter r =
    Metrics.counter_value obs.Obs.metrics ~labels:[ ("result", r) ] "drift.checks"
  in
  checki "clean checks" 2 (counter "clean");
  checki "detected checks" 1 (counter "detected");
  checki "drift checks" 1 (counter "drift");
  checki "clear checks" 1 (counter "clear");
  checkb "gauge cleared" true
    (Metrics.gauge_value obs.Obs.metrics "drift.active" = Some 0.0);
  (* The audit chain has both transitions and verifies end to end. *)
  let audit = Monitor.audit monitor in
  checkb "audit verifies" true (Heimdall_enforcer.Audit.verify audit = Ok ());
  let verdicts =
    List.map
      (fun (r : Heimdall_enforcer.Audit.record) -> r.Heimdall_enforcer.Audit.verdict)
      (Heimdall_enforcer.Audit.records audit)
  in
  checkb "detected audited" true (List.mem "detected" verdicts);
  checkb "clear audited" true (List.mem "clear" verdicts);
  (* /healthz thunk: healthy, reporting the status fields. *)
  let ok, fields = Monitor.health monitor () in
  checkb "healthy" true ok;
  checkb "cycles reported" true
    (List.assoc_opt "drift_cycles" fields = Some (Json.Int 5))

let test_monitor_with_injector () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let node =
    (* A non-host infrastructure device whose crash degrades the net. *)
    List.find
      (fun n ->
        Network.kind n sc.Experiments.net = Some Heimdall_net.Topology.Router)
      (Network.node_names sc.Experiments.net)
  in
  let inj =
    Heimdall_faults.Injector.create
      [
        {
          Heimdall_faults.Fault.kind = Heimdall_faults.Fault.Device_crash node;
          stage = Heimdall_faults.Fault.Apply;
          at = 2;
          duration = 1;
        };
      ]
  in
  let monitor =
    Monitor.create ~injector:inj ~expected:sc.Experiments.net
      ~observe:(fun () -> sc.Experiments.net)
      []
  in
  checks "cycle 1 clean" "clean" (Monitor.check monitor);
  checks "cycle 2 fault fires" "detected" (Monitor.check monitor);
  checks "cycle 3 fault expired" "clear" (Monitor.check monitor);
  checki "occurrence recorded" 1
    (List.length (Heimdall_faults.Injector.occurrences inj))

let test_monitor_accept () =
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let issue = List.hd sc.Experiments.issues in
  let drifted = issue.Heimdall_msp.Issue.inject sc.Experiments.net in
  let monitor =
    Monitor.create ~expected:sc.Experiments.net ~observe:(fun () -> drifted) []
  in
  checks "drift" "detected" (Monitor.check monitor);
  Monitor.accept monitor;
  checks "accepted baseline is clean" "clean" (Monitor.check monitor);
  let verdicts =
    List.map
      (fun (r : Heimdall_enforcer.Audit.record) -> r.Heimdall_enforcer.Audit.verdict)
      (Heimdall_enforcer.Audit.records (Monitor.audit monitor))
  in
  checkb "accept audited" true (List.mem "accepted" verdicts)

(* Tier-1 invariant: a workflow run with the monitor checking away on the
   same engine produces byte-identical verdicts to one without. *)
let test_monitor_determinism () =
  let open Heimdall_verify in
  let sc = Option.get (Experiments.scenario_of_name "enterprise") in
  let issue = List.hd sc.Experiments.issues in
  let fingerprint ~monitored () =
    let engine = Engine.create ~domains:1 () in
    let monitor =
      if monitored then
        Some
          (Monitor.create ~engine ~expected:sc.Experiments.net
             ~observe:(fun () -> sc.Experiments.net)
             sc.Experiments.policies)
      else None
    in
    Option.iter (fun m -> ignore (Monitor.check m)) monitor;
    let run =
      Heimdall_msp.Workflow.run_heimdall ~engine ~production:sc.Experiments.net
        ~policies:sc.Experiments.policies ~issue ()
    in
    Option.iter (fun m -> ignore (Monitor.check m)) monitor;
    Engine.shutdown engine;
    ( run.Heimdall_msp.Workflow.resolved,
      run.Heimdall_msp.Workflow.denied,
      Network.digest run.Heimdall_msp.Workflow.final_network,
      (match run.Heimdall_msp.Workflow.outcome with
      | Some o -> Heimdall_enforcer.Audit.head o.Heimdall_enforcer.Enforcer.audit
      | None -> "-") )
  in
  checkb "monitor on/off byte-identical" true
    (fingerprint ~monitored:false () = fingerprint ~monitored:true ())

let suite =
  [
    ("labeled series", `Quick, test_labeled_series);
    ("scoped views", `Quick, test_scoped_view);
    ("prometheus exposition", `Quick, test_prometheus_exposition);
    ("event ring cap", `Quick, test_event_ring_cap);
    ("tracer cap", `Quick, test_tracer_cap);
    ("exporter endpoints", `Quick, test_exporter_endpoints);
    ("exporter unhealthy 503", `Quick, test_exporter_unhealthy);
    ("exporter malformed requests", `Quick, test_exporter_malformed);
    ("exporter port in use", `Quick, test_exporter_port_in_use);
    ("exporter concurrent scrapes", `Quick, test_exporter_concurrent_scrapes);
    ("runtime sampler", `Quick, test_runtime_sampler);
    ("engine runtime sampler", `Quick, test_engine_runtime_sampler);
    ("monitor detect/clear", `Quick, test_monitor_detect_clear);
    ("monitor + chaos injector", `Quick, test_monitor_with_injector);
    ("monitor accept baseline", `Quick, test_monitor_accept);
    ("monitor determinism", `Quick, test_monitor_determinism);
  ]
