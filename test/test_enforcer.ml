(* Tests for the policy enforcer: SHA-256/HMAC vectors, the hash-chained
   audit trail, the simulated enclave, the verifier and the scheduler. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_privilege
open Heimdall_enforcer
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let ip = Ipv4.of_string
let pfx = Prefix.of_string

(* ---------------- SHA-256 / HMAC (FIPS + RFC 4231 vectors) -------- *)

let test_sha256_vectors () =
  checks "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  checks "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  checks "two blocks" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  checks "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'));
  (* Padding boundary lengths. *)
  checks "55 bytes" (Sha256.hex (String.make 55 'x')) (Sha256.hex (String.make 55 'x'));
  checkb "56 differs" true (Sha256.hex (String.make 56 'x') <> Sha256.hex (String.make 55 'x'))

let test_hmac_vectors () =
  checks "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.hmac_hex ~key:(String.make 20 '\x0b') "Hi There");
  checks "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.hmac_hex ~key:"Jefe" "what do ya want for nothing?");
  (* Long key (> block size) is hashed first. *)
  checks "rfc4231 case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.hmac_hex ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

(* ---------------- Audit ---------------- *)

let sample_audit n =
  let rec go audit i =
    if i > n then audit
    else
      go
        (Audit.append ~actor:"tech" ~action:"acl.rule" ~resource:"r8"
           ~detail:(Printf.sprintf "edit %d" i) ~verdict:"allowed" audit)
        (i + 1)
  in
  go Audit.empty 1

let test_audit_chain_verifies () =
  let audit = sample_audit 10 in
  checki "length" 10 (Audit.length audit);
  checkb "verifies" true (Audit.verify audit = Ok ());
  checkb "empty verifies" true (Audit.verify Audit.empty = Ok ());
  checks "empty head" Audit.genesis_hash (Audit.head Audit.empty)

let test_audit_tamper_detected () =
  let audit = sample_audit 10 in
  let cases =
    [
      ("detail", fun (r : Audit.record) -> { r with Audit.detail = "edited" });
      ("verdict", fun r -> { r with Audit.verdict = "denied" });
      ("actor", fun r -> { r with Audit.actor = "ghost" });
      ("seq", fun r -> { r with Audit.seq = 99 });
    ]
  in
  List.iter
    (fun (label, f) ->
      checkb (label ^ " tamper detected") true (Audit.verify (Audit.tamper 5 f audit) <> Ok ()))
    cases

let test_audit_head_changes () =
  let a1 = sample_audit 5 in
  let a2 = Audit.append ~actor:"x" ~action:"verify" ~resource:"p" ~detail:"" ~verdict:"ok" a1 in
  checkb "head moved" true (Audit.head a1 <> Audit.head a2);
  checkb "prev linked" true
    ((List.nth (Audit.records a2) 5).Audit.prev_hash = Audit.head a1)

let test_audit_of_session_log () =
  let net = Enterprise.build () in
  let em =
    Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h2"; "h3" ] ()
  in
  let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
  ignore (Heimdall_twin.Session.exec_many session [ "connect r4"; "show vlan" ]);
  let audit = Audit.of_session_log (Heimdall_twin.Session.log session) in
  checki "two records" 2 (Audit.length audit);
  checkb "verifies" true (Audit.verify audit = Ok ());
  checks "actor" "tech" (List.hd (Audit.records audit)).Audit.actor

(* Regression: [Audit.import] used to drop blank lines before numbering,
   so a parse error after a blank reported the wrong line.  Lines are
   now numbered against the original text, and CRLF input imports. *)
let test_audit_import_line_numbers () =
  let audit = sample_audit 2 in
  (match String.split_on_char '\n' (Audit.export audit) with
  | [ l1; l2 ] -> (
      (* Two blank lines push the corrupted record to line 5. *)
      let text = String.concat "\n" [ l1; ""; ""; l2; "{not json" ] in
      match Audit.import text with
      | Error m ->
          let contains sub s =
            let n = String.length sub and m = String.length s in
            let rec go i =
              if i + n > m then false
              else if String.sub s i n = sub then true
              else go (i + 1)
            in
            go 0
          in
          checkb "reports the real line" true (contains "line 5" m)
      | Ok _ -> Alcotest.fail "corrupted trail imported")
  | _ -> Alcotest.fail "expected two exported lines");
  (* Blank-tolerant on the happy path, including CRLF line endings. *)
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' (Audit.export audit)) ^ "\r\n"
  in
  match Audit.import crlf with
  | Ok imported -> checki "all records back" 2 (Audit.length imported)
  | Error m -> Alcotest.fail ("CRLF import failed: " ^ m)

(* qcheck: any single-record mutation of detail breaks verification. *)
let prop_audit_tamper =
  QCheck.Test.make ~count:100 ~name:"audit tamper always detected"
    (QCheck.pair (QCheck.int_range 1 20) QCheck.small_string)
    (fun (pos, garbage) ->
      let audit = sample_audit 20 in
      let tampered =
        Audit.tamper pos (fun r -> { r with Audit.detail = r.Audit.detail ^ "x" ^ garbage }) audit
      in
      Audit.verify tampered <> Ok ())

(* ---------------- Enclave ---------------- *)

let test_enclave_seal_roundtrip () =
  let e = Enclave.load ~code_identity:"enforcer-v1" in
  let blob = Enclave.seal e "attack at dawn" in
  checkb "ciphertext differs" true (blob <> "attack at dawn");
  checkb "roundtrip" true (Enclave.unseal e blob = Ok "attack at dawn");
  checkb "empty plaintext" true (Enclave.unseal e (Enclave.seal e "") = Ok "")

let test_enclave_wrong_identity () =
  let e1 = Enclave.load ~code_identity:"enforcer-v1" in
  let e2 = Enclave.load ~code_identity:"evil-enforcer" in
  let blob = Enclave.seal e1 "secret" in
  checkb "other enclave fails" true (Result.is_error (Enclave.unseal e2 blob))

let test_enclave_tampered_blob () =
  let e = Enclave.load ~code_identity:"enforcer-v1" in
  let blob = Enclave.seal e "secret" in
  let flipped =
    String.mapi (fun i c -> if i = String.length blob - 1 then Char.chr (Char.code c lxor 1) else c) blob
  in
  checkb "tamper rejected" true (Result.is_error (Enclave.unseal e flipped));
  checkb "short blob rejected" true (Result.is_error (Enclave.unseal e "tiny"))

let test_enclave_attestation () =
  let e = Enclave.load ~code_identity:"enforcer-v1" in
  let report = Enclave.attest e ~report_data:"audit-head-123" in
  checkb "verifies" true (Enclave.verify_report report);
  checks "measurement" (Enclave.expected_measurement ~code_identity:"enforcer-v1")
    report.Enclave.body_measurement;
  checkb "forged data rejected" false
    (Enclave.verify_report { report with Enclave.report_data = "other" });
  checkb "forged measurement rejected" false
    (Enclave.verify_report
       { report with Enclave.body_measurement = Enclave.expected_measurement ~code_identity:"evil" })

(* ---------------- Verifier ---------------- *)

let fixture () =
  let net = Enterprise.build () in
  (net, Enterprise.policies net)

let test_verifier_accepts_benign () =
  let net, policies = fixture () in
  let changes =
    [ Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 }) ]
  in
  let outcome =
    Verifier.verify ~production:net ~policies ~privilege:Privilege.allow_all ~changes ()
  in
  checkb "accepted" true outcome.Verifier.accepted;
  checkb "shadow present" true (outcome.Verifier.shadow <> None)

let test_verifier_rejects_privilege_violation () =
  let net, policies = fixture () in
  let privilege =
    Privilege.of_predicates [ Privilege.allow ~actions:[ "show.*" ] ~nodes:[ "*" ] () ]
  in
  let changes =
    [ Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 }) ]
  in
  let outcome = Verifier.verify ~production:net ~policies ~privilege ~changes () in
  checkb "rejected" false outcome.Verifier.accepted;
  match outcome.Verifier.rejections with
  | [ Verifier.Privilege_violation { action = "ospf.cost"; _ } ] -> ()
  | _ -> Alcotest.fail "expected privilege violation"

let test_verifier_rejects_policy_violation () =
  let net, policies = fixture () in
  (* Open the protected server subnet to the quarantined office. *)
  let changes =
    [
      Change.v "r8"
        (Change.Acl_set_rule
           {
             acl = "SRV_PROT";
             rule = Acl.rule ~seq:5 Acl.Permit (pfx "10.1.10.0/24") (pfx "10.3.10.0/24");
           });
    ]
  in
  let outcome =
    Verifier.verify ~production:net ~policies ~privilege:Privilege.allow_all ~changes ()
  in
  checkb "rejected" false outcome.Verifier.accepted;
  checkb "policy violation" true
    (List.exists
       (function Verifier.Policy_violation _ -> true | _ -> false)
       outcome.Verifier.rejections)

let test_verifier_allows_preexisting_violation () =
  (* A policy already broken in production must not block an unrelated
     fix. *)
  let net, policies = fixture () in
  let issue = List.nth (Enterprise.issues net) 1 (* ospf *) in
  let broken = issue.Heimdall_msp.Issue.inject net in
  let changes =
    [ Change.v "r9" (Change.Set_interface_description { iface = "eth0"; description = Some "x" }) ]
  in
  let outcome =
    Verifier.verify ~production:broken ~policies ~privilege:Privilege.allow_all ~changes ()
  in
  checkb "accepted despite broken policies" true outcome.Verifier.accepted

let test_verifier_reports_fixed_policies () =
  let net, policies = fixture () in
  let issue = List.nth (Enterprise.issues net) 1 (* ospf: r7 area mismatch *) in
  let broken = issue.Heimdall_msp.Issue.inject net in
  let uplink =
    List.find_map
      (fun (l : Topology.link) ->
        if l.a.node = "r7" && l.b.node = "r3" then Some l.a.iface
        else if l.b.node = "r7" && l.a.node = "r3" then Some l.b.iface
        else None)
      (Topology.links (Network.topology net))
    |> Option.get
  in
  let changes = [ Change.v "r7" (Change.Set_ospf_area { iface = uplink; area = Some 0 }) ] in
  let outcome =
    Verifier.verify ~production:broken ~policies ~privilege:Privilege.allow_all ~changes ()
  in
  checkb "accepted" true outcome.Verifier.accepted;
  checkb "repairs counted" true (List.length outcome.Verifier.fixed_policies > 0)

let test_verifier_apply_error () =
  let net, policies = fixture () in
  let changes = [ Change.v "r4" (Change.Acl_remove { acl = "GHOST" }) ] in
  let outcome =
    Verifier.verify ~production:net ~policies ~privilege:Privilege.allow_all ~changes ()
  in
  checkb "rejected" false outcome.Verifier.accepted;
  checkb "apply error" true
    (List.exists (function Verifier.Apply_error _ -> true | _ -> false) outcome.Verifier.rejections)

(* ---------------- Scheduler ---------------- *)

let test_scheduler_orders_safely () =
  let net, policies = fixture () in
  (* Two changes where naive order breaks reachability transiently:
     move the server ACL binding from one uplink name to another by
     first binding the new ACL, then removing — scheduler must find a
     zero-damage order for independent changes anyway. *)
  let changes =
    [
      Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
      Change.v "r5" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
    ]
  in
  match Scheduler.plan ~production:net ~policies ~changes () with
  | Ok (plan, final) ->
      checkb "safe" true plan.Scheduler.safe;
      checki "two steps" 2 (List.length plan.Scheduler.steps);
      checkb "final has both" true
        ((Option.get (Ast.find_interface "eth0" (Network.config_exn "r4" final))).Ast.ospf_cost
         = Some 20)
  | Error m -> Alcotest.fail m

let test_scheduler_defers_risky_change () =
  let net, policies = fixture () in
  (* Shutting the r4 uplink to r2 breaks nothing only if the r4-r5 and
     r4-r6 links still carry traffic; shutting ALL uplinks must create
     transient violations in some order — give the scheduler one safe
     and one unsafe change and check it picks the safe one first. *)
  let changes =
    [
      (* Unsafe alone: bring down the SVI (kills the office subnet). *)
      Change.v "r4" (Change.Set_interface_enabled { iface = "vlan10"; enabled = false });
      (* Safe: a cost tweak. *)
      Change.v "r5" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 15 });
    ]
  in
  match Scheduler.plan ~production:net ~policies ~changes () with
  | Ok (plan, _) ->
      checkb "not safe overall" false plan.Scheduler.safe;
      (* The safe change must be scheduled first. *)
      (match plan.Scheduler.steps with
      | first :: _ -> checkb "safe first" true (first.Scheduler.change.Change.node = "r5")
      | [] -> Alcotest.fail "empty plan");
      checkb "risky recorded" true
        (List.exists (fun s -> s.Scheduler.transient_violations <> []) plan.Scheduler.steps)
  | Error m -> Alcotest.fail m

(* Regression: the scheduler used to remove the chosen change from the
   pool by equality, so a change value appearing twice collapsed into a
   single step.  Removal is now positional. *)
let test_scheduler_duplicate_changes () =
  let net, policies = fixture () in
  let c = Change.v "r5" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 15 }) in
  match Scheduler.plan ~production:net ~policies ~changes:[ c; c ] () with
  | Ok (plan, final) ->
      checki "both occurrences scheduled" 2 (List.length plan.Scheduler.steps);
      (* Each step's checkpoint is the planned post-step network; the
         last one must be the plan's final network. *)
      (match List.rev plan.Scheduler.steps with
      | last :: _ ->
          checks "last checkpoint is final"
            (Applier.network_digest final)
            (Applier.network_digest last.Scheduler.checkpoint)
      | [] -> Alcotest.fail "empty plan")
  | Error m -> Alcotest.fail m

let test_scheduler_empty () =
  let net, policies = fixture () in
  match Scheduler.plan ~production:net ~policies ~changes:[] () with
  | Ok (plan, final) ->
      checkb "safe" true plan.Scheduler.safe;
      checki "no steps" 0 (List.length plan.Scheduler.steps);
      checkb "unchanged" true (final == net)
  | Error m -> Alcotest.fail m

(* ---------------- Enforcer pipeline ---------------- *)

let test_enforcer_end_to_end_approval () =
  let net, policies = fixture () in
  let issue = List.nth (Enterprise.issues net) 0 (* vlan *) in
  let broken = issue.Heimdall_msp.Issue.inject net in
  let slice =
    Heimdall_twin.Twin.slice_nodes ~production:broken
      ~endpoints:issue.Heimdall_msp.Issue.ticket.endpoints ()
  in
  let privilege =
    Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice issue.Heimdall_msp.Issue.ticket
  in
  let em =
    Heimdall_twin.Twin.build ~production:broken
      ~endpoints:issue.Heimdall_msp.Issue.ticket.endpoints ()
  in
  let session = Heimdall_twin.Twin.open_session ~privilege em in
  ignore (Heimdall_twin.Session.exec_many session issue.Heimdall_msp.Issue.fix_commands);
  let outcome =
    Enforcer.process ~production:broken ~policies ~privilege ~session ()
  in
  checkb "approved" true outcome.Enforcer.approved;
  checkb "updated network" true (outcome.Enforcer.updated <> None);
  checkb "audit verifies" true (Audit.verify outcome.Enforcer.audit = Ok ());
  checkb "report verifies" true (Enclave.verify_report outcome.Enforcer.report);
  checks "report binds audit head" (Audit.head outcome.Enforcer.audit)
    outcome.Enforcer.report.Enclave.report_data;
  (* Sealed head unseals inside the right enclave. *)
  checkb "sealed head" true
    (Enclave.unseal Enforcer.default_enclave outcome.Enforcer.sealed_head
    = Ok (Audit.head outcome.Enforcer.audit))

let test_enforcer_rejects_malicious_session () =
  let net, policies = fixture () in
  let ticket =
    Heimdall_msp.Ticket.make ~id:"T" ~kind:Heimdall_msp.Ticket.Connectivity
      ~description:"server access" ~endpoints:[ "h1"; "h8" ]
  in
  let slice = Heimdall_twin.Twin.slice_nodes ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let privilege = Heimdall_msp.Priv_gen.for_ticket ~network:net ~slice ticket in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let session = Heimdall_twin.Twin.open_session ~privilege em in
  ignore
    (Heimdall_twin.Session.exec_many session
       [
         "connect r8";
         "configure access-list SRV_PROT 5 permit ip 10.1.10.0/24 10.3.10.0/24";
       ]);
  let outcome = Enforcer.process ~production:net ~policies ~privilege ~session () in
  checkb "rejected" false outcome.Enforcer.approved;
  checkb "no production update" true (outcome.Enforcer.updated = None);
  checkb "rejection recorded in audit" true
    (List.exists
       (fun (r : Audit.record) -> r.Audit.verdict = "rejected")
       (Audit.records outcome.Enforcer.audit))

let test_enforcer_lint_delta_in_audit () =
  let net, policies = fixture () in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h8" ] () in
  let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
  (* Append a rule after SRV_PROT's terminal permit-any-any: shadowed
     with the opposite action, the textbook ACL001 defect. *)
  ignore
    (Heimdall_twin.Session.exec_many session
       [ "connect r8"; "configure access-list SRV_PROT 30 deny ip 10.9.9.0/24 0.0.0.0/0" ]);
  let outcome = Enforcer.process ~production:net ~policies ~privilege:Privilege.allow_all ~session () in
  (match outcome.Enforcer.lint_findings with
  | [ d ] ->
      checks "code" "ACL001" d.Heimdall_lint.Diagnostic.code;
      checkb "device" true (d.Heimdall_lint.Diagnostic.device = Some "r8");
      checkb "line" true (d.Heimdall_lint.Diagnostic.line = Some 30)
  | l -> Alcotest.failf "expected one lint finding, got %d" (List.length l));
  checkb "lint recorded in audit" true
    (List.exists
       (fun (r : Audit.record) -> r.Audit.action = "lint" && r.Audit.resource = "r8")
       (Audit.records outcome.Enforcer.audit));
  checkb "audit still verifies" true (Audit.verify outcome.Enforcer.audit = Ok ())

let test_enforcer_clean_session_no_lint_delta () =
  let net, policies = fixture () in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h2" ] () in
  let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
  ignore (Heimdall_twin.Session.exec_many session [ "connect r4"; "show vlan" ]);
  let outcome =
    Enforcer.process ~production:net ~policies ~privilege:Privilege.allow_all ~session ()
  in
  checki "no new findings" 0 (List.length outcome.Enforcer.lint_findings);
  checkb "no lint records" true
    (not
       (List.exists
          (fun (r : Audit.record) -> r.Audit.action = "lint")
          (Audit.records outcome.Enforcer.audit)))

let test_enforcer_noop_session () =
  let net, policies = fixture () in
  let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h2" ] () in
  let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
  ignore (Heimdall_twin.Session.exec_many session [ "connect r4"; "show vlan" ]);
  let outcome =
    Enforcer.process ~production:net ~policies ~privilege:Privilege.allow_all ~session ()
  in
  checkb "approved" true outcome.Enforcer.approved;
  checkb "nothing to apply" true
    (match outcome.Enforcer.plan with Some p -> p.Scheduler.steps = [] | None -> false)

let suite =
  [
    Alcotest.test_case "sha256 vectors" `Slow test_sha256_vectors;
    Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
    Alcotest.test_case "audit chain verifies" `Quick test_audit_chain_verifies;
    Alcotest.test_case "audit tamper detected" `Quick test_audit_tamper_detected;
    Alcotest.test_case "audit head changes" `Quick test_audit_head_changes;
    Alcotest.test_case "audit from session log" `Quick test_audit_of_session_log;
    Alcotest.test_case "audit import line numbers" `Quick test_audit_import_line_numbers;
    QCheck_alcotest.to_alcotest prop_audit_tamper;
    Alcotest.test_case "enclave seal roundtrip" `Quick test_enclave_seal_roundtrip;
    Alcotest.test_case "enclave wrong identity" `Quick test_enclave_wrong_identity;
    Alcotest.test_case "enclave tampered blob" `Quick test_enclave_tampered_blob;
    Alcotest.test_case "enclave attestation" `Quick test_enclave_attestation;
    Alcotest.test_case "verifier accepts benign" `Quick test_verifier_accepts_benign;
    Alcotest.test_case "verifier rejects privilege violation" `Quick
      test_verifier_rejects_privilege_violation;
    Alcotest.test_case "verifier rejects policy violation" `Quick
      test_verifier_rejects_policy_violation;
    Alcotest.test_case "verifier ignores preexisting violations" `Quick
      test_verifier_allows_preexisting_violation;
    Alcotest.test_case "verifier reports fixed policies" `Quick
      test_verifier_reports_fixed_policies;
    Alcotest.test_case "verifier apply error" `Quick test_verifier_apply_error;
    Alcotest.test_case "scheduler orders safely" `Quick test_scheduler_orders_safely;
    Alcotest.test_case "scheduler defers risky change" `Quick test_scheduler_defers_risky_change;
    Alcotest.test_case "scheduler duplicate changes" `Quick test_scheduler_duplicate_changes;
    Alcotest.test_case "scheduler empty" `Quick test_scheduler_empty;
    Alcotest.test_case "enforcer end-to-end approval" `Quick test_enforcer_end_to_end_approval;
    Alcotest.test_case "enforcer rejects malicious session" `Quick
      test_enforcer_rejects_malicious_session;
    Alcotest.test_case "enforcer noop session" `Quick test_enforcer_noop_session;
    Alcotest.test_case "enforcer lint delta in audit" `Quick
      test_enforcer_lint_delta_in_audit;
    Alcotest.test_case "enforcer clean session no lint delta" `Quick
      test_enforcer_clean_session_no_lint_delta;
  ]
