(* Cross-module property and integration tests: invariants that tie the
   whole system together, checked over randomised inputs on the real
   evaluation networks. *)

open Heimdall_net
open Heimdall_config
open Heimdall_control
open Heimdall_verify
open Heimdall_privilege
module Enterprise = Heimdall_scenarios.Enterprise

let checkb = Alcotest.check Alcotest.bool

let net_and_policies = lazy (Heimdall_scenarios.Experiments.enterprise ())

(* All addressed host pairs, for random flow generation. *)
let host_addrs =
  lazy
    (let net, _ = Lazy.force net_and_policies in
     Network.node_names net
     |> List.filter_map (fun n ->
            if Network.kind n net = Some Topology.Host then Network.host_address n net
            else None))

let arbitrary_host_flow =
  QCheck.map
    (fun (i, j) ->
      let addrs = Lazy.force host_addrs in
      let n = List.length addrs in
      Flow.icmp (List.nth addrs (i mod n)) (List.nth addrs (j mod n)))
    (QCheck.pair QCheck.small_nat QCheck.small_nat)

(* Trace invariants: a delivered flow starts at a node owning the source
   and ends at a node owning the destination; hop count is bounded. *)
let prop_trace_endpoints =
  QCheck.Test.make ~count:100 ~name:"trace endpoints own src/dst" arbitrary_host_flow
    (fun flow ->
      let net, _ = Lazy.force net_and_policies in
      let dp = Dataplane.compute net in
      match Trace.trace dp flow with
      | Trace.Delivered hops ->
          let first = List.hd hops and last = List.nth hops (List.length hops - 1) in
          let owns node addr =
            match Network.owner_of_address addr net with
            | Some (n, _) -> n = node
            | None -> false
          in
          owns first.Trace.node flow.Flow.src
          && owns last.Trace.node flow.Flow.dst
          && List.length hops <= 64
      | Trace.Dropped (_, hops) -> List.length hops <= 65)

(* Tracing is deterministic. *)
let prop_trace_deterministic =
  QCheck.Test.make ~count:50 ~name:"trace deterministic" arbitrary_host_flow (fun flow ->
      let net, _ = Lazy.force net_and_policies in
      let dp = Dataplane.compute net in
      Trace.trace dp flow = Trace.trace dp flow)

(* Random single-interface failures: the dataplane still computes, the
   policy checker still terminates, and every violated policy's reason is
   non-empty. *)
let arbitrary_failure =
  QCheck.map
    (fun i ->
      let net, _ = Lazy.force net_and_policies in
      let candidates = Heimdall_scenarios.Metrics.failure_candidates net in
      List.nth candidates (i mod List.length candidates))
    QCheck.small_nat

let prop_failure_totality =
  QCheck.Test.make ~count:60 ~name:"failure injection is total" arbitrary_failure
    (fun (ep : Topology.endpoint) ->
      let net, policies = Lazy.force net_and_policies in
      match
        Network.apply_changes
          [ Change.v ep.node (Change.Set_interface_enabled { iface = ep.iface; enabled = false }) ]
          net
      with
      | Error _ -> false
      | Ok broken ->
          let report = Policy.check_all (Dataplane.compute broken) policies in
          List.for_all (fun (_, reason) -> String.length reason > 0) report.violations)

(* Longest-prefix-match lookup agrees with a naive scan over the trie's
   own bindings: filter the prefixes containing the address and keep the
   longest. *)
let arbitrary_ipv4 =
  QCheck.map
    (fun (hi, lo) -> Ipv4.of_int ((hi lsl 16) lor lo))
    (QCheck.pair (QCheck.int_bound 0xFFFF) (QCheck.int_bound 0xFFFF))

let arbitrary_prefix =
  QCheck.map
    (fun (addr, len) -> Prefix.make addr len)
    (QCheck.pair arbitrary_ipv4 (QCheck.int_bound 32))

let prop_trie_lookup_longest_match =
  QCheck.Test.make ~count:300 ~name:"trie lookup = naive longest-prefix scan"
    (QCheck.pair (QCheck.small_list arbitrary_prefix) arbitrary_ipv4)
    (fun (prefixes, addr) ->
      let trie = Prefix_trie.of_list (List.mapi (fun i p -> (p, i)) prefixes) in
      let naive =
        List.fold_left
          (fun best (p, v) ->
            if not (Prefix.contains p addr) then best
            else
              match best with
              | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
              | _ -> Some (p, v))
          None
          (Prefix_trie.bindings trie)
      in
      match (Prefix_trie.lookup addr trie, naive) with
      | None, None -> true
      | Some (p1, v1), Some (p2, v2) ->
          Prefix.length p1 = Prefix.length p2 && v1 = v2 && Prefix.contains p1 addr
      | Some _, None | None, Some _ -> false)

(* Scheduler equivalence: whatever order the scheduler picks, the final
   network equals applying the whole batch at once. *)
let benign_changes =
  [
    Change.v "r4" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 20 });
    Change.v "r5" (Change.Set_ospf_cost { iface = "eth0"; cost = Some 30 });
    Change.v "r6" (Change.Set_interface_description { iface = "eth0"; description = Some "x" });
    Change.v "r2"
      (Change.Add_static_route
         { Ast.sr_prefix = Prefix.of_string "172.30.0.0/16";
           sr_next_hop = Ipv4.of_string "10.200.0.1";
           sr_distance = 5 });
  ]

let prop_scheduler_equiv_batch =
  QCheck.Test.make ~count:40 ~name:"scheduler result = batch apply"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 4)
       (QCheck.int_bound (List.length benign_changes - 1)))
    (fun picks ->
      let net, policies = Lazy.force net_and_policies in
      (* Dedup (same change twice is fine but keep it simple). *)
      let changes =
        List.sort_uniq compare picks |> List.map (List.nth benign_changes)
      in
      match Heimdall_enforcer.Scheduler.plan ~production:net ~policies ~changes () with
      | Error _ -> false
      | Ok (plan, final) ->
          let batch = Result.get_ok (Network.apply_changes changes net) in
          List.length plan.Heimdall_enforcer.Scheduler.steps = List.length changes
          && List.for_all2
               (fun (n1, c1) (n2, c2) -> n1 = n2 && Ast.equal c1 c2)
               (Network.configs final) (Network.configs batch))

(* The reference monitor never raises, whatever garbage comes in. *)
let prop_session_total =
  QCheck.Test.make ~count:200 ~name:"session exec total on arbitrary input"
    QCheck.printable_string (fun line ->
      let net, _ = Lazy.force net_and_policies in
      let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h1"; "h2" ] () in
      let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
      match Heimdall_twin.Session.exec session line with
      | Ok _ | Error _ -> true)

(* Monitor soundness: under a random subset of allowed action classes,
   every executed configuration command's extracted change is one the
   privilege spec allows — i.e. nothing slips past the monitor. *)
let action_classes =
  [| "interface.*"; "acl.*"; "route.*"; "ospf.*"; "vlan.*" |]

let prop_monitor_soundness =
  QCheck.Test.make ~count:40 ~name:"monitor never lets disallowed changes through"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
          (QCheck.int_bound (Array.length action_classes - 1)))
       (QCheck.int_bound 2))
    (fun (class_picks, issue_idx) ->
      let net, _ = Lazy.force net_and_policies in
      let issue = List.nth (Enterprise.issues net) issue_idx in
      let broken = issue.Heimdall_msp.Issue.inject net in
      let allowed_classes =
        List.sort_uniq compare (List.map (Array.get action_classes) class_picks)
      in
      let privilege =
        Privilege.of_predicates
          (Privilege.allow ~actions:[ "show.*"; "diag.*" ] ~nodes:[ "*" ] ()
           ::
           (if allowed_classes = [] then []
            else [ Privilege.allow ~actions:allowed_classes ~nodes:[ "*" ] () ]))
      in
      let em =
        Heimdall_twin.Twin.build ~production:broken
          ~endpoints:issue.Heimdall_msp.Issue.ticket.endpoints ()
      in
      let session = Heimdall_twin.Twin.open_session ~privilege em in
      ignore (Heimdall_twin.Session.exec_many session issue.Heimdall_msp.Issue.fix_commands);
      let changes = Heimdall_twin.Emulation.changes (Heimdall_twin.Session.emulation session) in
      List.for_all
        (fun (c : Change.t) ->
          Privilege.allows privilege
            (Privilege.request
               ?iface:(Change.target_iface c.op)
               (Change.op_action_name c.op) c.node))
        changes)

(* Enforcer safety: whenever the enforcer approves a session, every
   policy that held on production still holds afterwards. *)
let prop_enforcer_preserves_held_policies =
  QCheck.Test.make ~count:20 ~name:"approved import preserves held policies"
    (QCheck.int_bound 2) (fun issue_idx ->
      let net, policies = Lazy.force net_and_policies in
      let issue = List.nth (Enterprise.issues net) issue_idx in
      let broken = issue.Heimdall_msp.Issue.inject net in
      let run =
        Heimdall_msp.Workflow.run_heimdall ~production:net ~policies ~issue ()
      in
      match run.Heimdall_msp.Workflow.outcome with
      | Some outcome when outcome.Heimdall_enforcer.Enforcer.approved -> (
          match outcome.Heimdall_enforcer.Enforcer.updated with
          | None -> false
          | Some updated ->
              let held_before =
                let report = Policy.check_all (Dataplane.compute broken) policies in
                List.filter
                  (fun p ->
                    not
                      (List.exists (fun (q, _) -> Policy.equal p q)
                         report.Policy.violations))
                  policies
              in
              let after = Policy.check_all (Dataplane.compute updated) policies in
              List.for_all
                (fun p ->
                  not
                    (List.exists (fun (q, _) -> Policy.equal p q) after.Policy.violations))
                held_before)
      | _ -> false)

(* Slicer monotonicity & containment. *)
let prop_slicer_invariants =
  QCheck.Test.make ~count:40 ~name:"slicer containment invariants"
    (QCheck.pair QCheck.small_nat QCheck.small_nat) (fun (i, j) ->
      let net, _ = Lazy.force net_and_policies in
      let hosts =
        List.filter
          (fun n -> Network.kind n net = Some Topology.Host)
          (Network.node_names net)
      in
      let a = List.nth hosts (i mod List.length hosts) in
      let b = List.nth hosts (j mod List.length hosts) in
      let endpoints = [ a; b ] in
      let slice s = Heimdall_twin.Slicer.slice s net ~endpoints in
      let all = slice Heimdall_twin.Slicer.All in
      let task = slice Heimdall_twin.Slicer.Task in
      let path = slice Heimdall_twin.Slicer.Path in
      let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
      subset task all && subset path all
      && List.mem a task && List.mem b task
      && subset path task)

(* Twin sessions never leak any secret of any production device, under
   arbitrary command subsets of a fixed exploratory script. *)
let exploration_script =
  [
    "connect r4"; "show running-config"; "show interfaces"; "show ip route";
    "show access-lists"; "show vlan"; "show topology"; "connect h2";
    "show running-config"; "ping 10.1.20.11"; "traceroute 10.1.20.11";
    "connect r5"; "show running-config"; "show ip ospf neighbors";
  ]

let prop_no_secret_leakage =
  QCheck.Test.make ~count:30 ~name:"twin sessions never leak secrets"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8)
       (QCheck.int_bound (List.length exploration_script - 1)))
    (fun picks ->
      let net, _ = Lazy.force net_and_policies in
      let em = Heimdall_twin.Twin.build ~production:net ~endpoints:[ "h2"; "h3" ] () in
      let session = Heimdall_twin.Twin.open_session ~privilege:Privilege.allow_all em in
      let outputs =
        List.filter_map
          (fun i ->
            Result.to_option
              (Heimdall_twin.Session.exec session (List.nth exploration_script i)))
          picks
      in
      let blob = String.concat "" outputs in
      List.for_all
        (fun (_, prod) -> Redact.leaked_secrets ~production:prod blob = [])
        (Network.configs net))

(* Loader round-trip on randomly mutated enterprise networks. *)
let prop_loader_roundtrip =
  QCheck.Test.make ~count:20 ~name:"loader text roundtrip after mutations"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
       (QCheck.int_bound (List.length benign_changes - 1)))
    (fun picks ->
      let net, _ = Lazy.force net_and_policies in
      let changes = List.sort_uniq compare picks |> List.map (List.nth benign_changes) in
      let mutated = Result.get_ok (Network.apply_changes changes net) in
      (* Serialise through the loader's text formats and compare. *)
      let topo = Network.topology mutated in
      let buf = Buffer.create 512 in
      List.iter
        (fun (n : Topology.node) ->
          Buffer.add_string buf
            (Printf.sprintf "node %s %s\n" n.name (Topology.node_kind_to_string n.kind)))
        (Topology.nodes topo);
      List.iter
        (fun (l : Topology.link) ->
          Buffer.add_string buf
            (Printf.sprintf "link %s %s\n"
               (Topology.endpoint_to_string l.a)
               (Topology.endpoint_to_string l.b)))
        (Topology.links topo);
      let configs =
        List.map (fun (n, c) -> (n, Printer.render c)) (Network.configs mutated)
      in
      match Loader.load ~topology:(Buffer.contents buf) ~configs with
      | Error _ -> false
      | Ok loaded ->
          List.for_all2
            (fun (n1, c1) (n2, c2) -> n1 = n2 && Ast.equal c1 c2)
            (Network.configs mutated) (Network.configs loaded))

(* Diff/apply round-trip: for any config reachable from a base by a
   sequence of ops, [apply_all (diff base after)] reconstructs [after]
   up to normalization.  This is the contract the plan analyzer's
   predicted-diff requirements rest on. *)
let roundtrip_ops =
  let rule seq action =
    Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 443) ~seq action
      (Prefix.of_string "10.9.0.0/16")
      Prefix.any
  in
  [|
    Change.Set_interface_enabled { iface = "eth0"; enabled = false };
    Change.Set_interface_enabled { iface = "eth0"; enabled = true };
    Change.Set_interface_addr
      { iface = "eth1"; addr = Some (Ifaddr.of_string "10.77.0.1/24") };
    Change.Set_interface_description { iface = "eth0"; description = Some "lab" };
    Change.Set_interface_description { iface = "eth0"; description = None };
    Change.Set_ospf_cost { iface = "eth0"; cost = Some 42 };
    Change.Set_ospf_cost { iface = "eth0"; cost = None };
    Change.Set_ospf_area { iface = "eth1"; area = Some 7 };
    Change.Set_acl_binding { iface = "eth0"; dir = `In; acl = Some "RT_ACL" };
    Change.Set_acl_binding { iface = "eth0"; dir = `In; acl = None };
    Change.Acl_set_rule { acl = "RT_ACL"; rule = rule 10 Acl.Permit };
    Change.Acl_set_rule { acl = "RT_ACL"; rule = rule 20 Acl.Deny };
    Change.Acl_remove_rule { acl = "RT_ACL"; seq = 10 };
    Change.Acl_remove { acl = "RT_ACL" };
    Change.Add_static_route
      { Ast.sr_prefix = Prefix.of_string "172.31.0.0/16";
        sr_next_hop = Ipv4.of_string "10.200.0.9";
        sr_distance = 3 };
    Change.Remove_static_route
      { prefix = Prefix.of_string "172.31.0.0/16";
        next_hop = Ipv4.of_string "10.200.0.9" };
    Change.Set_default_gateway (Some (Ipv4.of_string "10.1.1.1"));
    Change.Set_default_gateway None;
    Change.Ospf_set_network { prefix = Prefix.of_string "10.66.0.0/16"; area = 0 };
    Change.Ospf_remove_network { prefix = Prefix.of_string "10.66.0.0/16" };
    Change.Set_vlan_name { vlan = 77; name = Some "lab" };
    Change.Set_vlan_name { vlan = 77; name = None };
    Change.Set_secret (Ast.Enable_secret "s3cr3t");
    Change.Set_secret (Ast.Snmp_community "comm77");
  |]

let prop_diff_apply_roundtrip =
  QCheck.Test.make ~count:300 ~name:"apply_all (diff a b) reconstructs b"
    (QCheck.pair
       (QCheck.oneofl [ "r2"; "r4"; "r5" ])
       (QCheck.list_of_size (QCheck.Gen.int_range 0 12)
          (QCheck.int_bound (Array.length roundtrip_ops - 1))))
    (fun (node, picks) ->
      let net, _ = Lazy.force net_and_policies in
      let base = Option.get (Network.config node net) in
      (* Ops whose precondition fails (e.g. removing an absent rule) are
         skipped; the rest drive [base] to a random reachable [after]. *)
      let after =
        List.fold_left
          (fun cfg i ->
            match Change.apply roundtrip_ops.(i) cfg with
            | Ok cfg' -> cfg'
            | Error _ -> cfg)
          base picks
      in
      let changes = Change.diff ~node base after in
      let lookup n = if n = node then Some base else None in
      match Change.apply_all changes lookup with
      | Error _ -> false
      | Ok results ->
          let rebuilt =
            match List.assoc_opt node results with Some c -> c | None -> base
          in
          Ast.equal rebuilt after)

let test_dataplane_rebuild_stable () =
  (* Computing the dataplane twice yields identical route tables. *)
  let net, _ = Lazy.force net_and_policies in
  let dp1 = Dataplane.compute net and dp2 = Dataplane.compute net in
  List.iter
    (fun node ->
      let r1 = List.map Fib.route_to_string (Fib.routes (Dataplane.fib node dp1)) in
      let r2 = List.map Fib.route_to_string (Fib.routes (Dataplane.fib node dp2)) in
      checkb node true (r1 = r2))
    (Network.node_names net)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_trace_endpoints;
    QCheck_alcotest.to_alcotest prop_trace_deterministic;
    QCheck_alcotest.to_alcotest prop_failure_totality;
    QCheck_alcotest.to_alcotest prop_trie_lookup_longest_match;
    QCheck_alcotest.to_alcotest prop_scheduler_equiv_batch;
    QCheck_alcotest.to_alcotest prop_session_total;
    QCheck_alcotest.to_alcotest prop_monitor_soundness;
    QCheck_alcotest.to_alcotest prop_enforcer_preserves_held_policies;
    QCheck_alcotest.to_alcotest prop_slicer_invariants;
    QCheck_alcotest.to_alcotest prop_no_secret_leakage;
    QCheck_alcotest.to_alcotest prop_loader_roundtrip;
    QCheck_alcotest.to_alcotest prop_diff_apply_roundtrip;
    Alcotest.test_case "dataplane rebuild stable" `Quick test_dataplane_rebuild_stable;
  ]
