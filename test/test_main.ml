(* Test entry point: one alcotest run aggregating every module suite. *)

let () =
  Alcotest.run "heimdall"
    [
      ("net", Test_net.suite);
      ("json", Test_json.suite);
      ("config", Test_config.suite);
      ("control", Test_control.suite);
      ("verify", Test_verify.suite);
      ("privilege", Test_privilege.suite);
      ("lint", Test_lint.suite);
      ("sem", Test_sem.suite);
      ("plan", Test_plan.suite);
      ("poltree", Test_poltree.suite);
      ("obs", Test_obs.suite);
      ("watchtower", Test_watchtower.suite);
      ("twin", Test_twin.suite);
      ("enforcer", Test_enforcer.suite);
      ("faults", Test_faults.suite);
      ("msp", Test_msp.suite);
      ("scenarios", Test_scenarios.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("reach-audit", Test_reach_audit.suite);
      ("surface", Test_surface.suite);
      ("sdn", Test_sdn.suite);
      ("university", Test_university.suite);
      ("enterprise", Test_enterprise.suite);
      ("fleet", Test_fleet.suite);
    ]
