(* Tests for the heimdall_net substrate: addresses, prefixes, the LPM
   trie, graphs, topology, ACLs and flows. *)

open Heimdall_net

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------- Ipv4 ---------------- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> checks s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.1.254"; "192.168.100.1"; "1.2.3.4" ]

let test_ipv4_reject_malformed () =
  List.iter
    (fun s -> checkb s true (Ipv4.of_string_opt s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "1..2.3"; "1.2.3.4 "; "-1.2.3.4";
      "1.2.3.4/24"; "01x.2.3.4" ]

let test_ipv4_octets () =
  checki "numeric" 0x0A000102 (Ipv4.to_int (Ipv4.of_octets 10 0 1 2));
  Alcotest.check_raises "octet range" (Invalid_argument "Ipv4.of_octets: octet 256 out of range")
    (fun () -> ignore (Ipv4.of_octets 256 0 0 0))

let test_ipv4_succ_pred () =
  checks "succ" "10.0.1.255" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "10.0.1.254")));
  checks "carry" "10.0.2.0" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "10.0.1.255")));
  checks "wrap" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.broadcast));
  checks "pred wrap" "255.255.255.255" (Ipv4.to_string (Ipv4.pred Ipv4.any))

let test_ipv4_bits () =
  let a = Ipv4.of_string "128.0.0.1" in
  checkb "msb" true (Ipv4.bit a 0);
  checkb "lsb" true (Ipv4.bit a 31);
  checkb "middle" false (Ipv4.bit a 15)

(* ---------------- Prefix ---------------- *)

let test_prefix_canonical () =
  let p = Prefix.of_string "10.0.1.77/24" in
  checks "canonical" "10.0.1.0/24" (Prefix.to_string p);
  checks "mask" "255.255.255.0" (Ipv4.to_string (Prefix.mask p))

let test_prefix_contains () =
  let p = Prefix.of_string "10.1.0.0/16" in
  checkb "inside" true (Prefix.contains p (Ipv4.of_string "10.1.200.3"));
  checkb "outside" false (Prefix.contains p (Ipv4.of_string "10.2.0.1"));
  checkb "any contains all" true (Prefix.contains Prefix.any (Ipv4.of_string "203.0.113.9"))

let test_prefix_subsumes_overlaps () =
  let p16 = Prefix.of_string "10.1.0.0/16" and p24 = Prefix.of_string "10.1.5.0/24" in
  checkb "subsumes" true (Prefix.subsumes p16 p24);
  checkb "not reversed" false (Prefix.subsumes p24 p16);
  checkb "overlaps" true (Prefix.overlaps p24 p16);
  checkb "disjoint" false
    (Prefix.overlaps p24 (Prefix.of_string "10.2.0.0/16"))

let test_prefix_hosts () =
  let p = Prefix.of_string "192.168.1.0/30" in
  checki "count" 4 (Prefix.hosts_count p);
  checks "host 1" "192.168.1.1" (Ipv4.to_string (Prefix.host p 1));
  checks "broadcast" "192.168.1.3" (Ipv4.to_string (Prefix.broadcast_addr p));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Prefix.host: 4 outside 192.168.1.0/30") (fun () ->
      ignore (Prefix.host p 4))

let test_prefix_split () =
  match Prefix.split (Prefix.of_string "10.0.0.0/24") with
  | Some (lo, hi) ->
      checks "lo" "10.0.0.0/25" (Prefix.to_string lo);
      checks "hi" "10.0.0.128/25" (Prefix.to_string hi)
  | None -> Alcotest.fail "split returned None"

let test_prefix_reject () =
  List.iter
    (fun s -> checkb s true (Prefix.of_string_opt s = None))
    [ "10.0.0.0/33"; "10.0.0.0/"; "10.0.0.0/-1"; "10.0.0/24"; "10.0.0.0/2a" ]

(* ---------------- Ifaddr ---------------- *)

let test_ifaddr_keeps_host () =
  let a = Ifaddr.of_string "10.0.1.7/24" in
  checks "address kept" "10.0.1.7" (Ipv4.to_string (Ifaddr.address a));
  checks "subnet" "10.0.1.0/24" (Prefix.to_string (Ifaddr.subnet a));
  checkb "same subnet" true (Ifaddr.same_subnet a (Ifaddr.of_string "10.0.1.99/24"));
  checkb "different mask" false (Ifaddr.same_subnet a (Ifaddr.of_string "10.0.1.99/25"));
  checkb "bare addr rejected" true (Ifaddr.of_string_opt "10.0.1.7" = None)

(* ---------------- Prefix_trie ---------------- *)

let test_trie_lpm () =
  let t =
    Prefix_trie.of_list
      [
        (Prefix.of_string "0.0.0.0/0", "default");
        (Prefix.of_string "10.0.0.0/8", "ten");
        (Prefix.of_string "10.1.0.0/16", "ten-one");
        (Prefix.of_string "10.1.5.0/24", "ten-one-five");
      ]
  in
  let lookup s =
    match Prefix_trie.lookup (Ipv4.of_string s) t with
    | Some (_, v) -> v
    | None -> "none"
  in
  checks "most specific" "ten-one-five" (lookup "10.1.5.77");
  checks "mid" "ten-one" (lookup "10.1.6.1");
  checks "broad" "ten" (lookup "10.200.0.1");
  checks "default" "default" (lookup "8.8.8.8")

let test_trie_empty_and_remove () =
  let p = Prefix.of_string "10.0.0.0/8" in
  checkb "empty" true (Prefix_trie.lookup (Ipv4.of_string "10.0.0.1") Prefix_trie.empty = None);
  let t = Prefix_trie.add p "x" Prefix_trie.empty in
  let t = Prefix_trie.remove p t in
  checkb "removed" true (Prefix_trie.is_empty t)

let test_trie_replace () =
  let p = Prefix.of_string "10.0.0.0/8" in
  let t = Prefix_trie.add p "old" Prefix_trie.empty in
  let t = Prefix_trie.add p "new" t in
  checki "one binding" 1 (Prefix_trie.cardinal t);
  checkb "replaced" true (Prefix_trie.find_exact p t = Some "new")

let test_trie_default_route_only () =
  let t = Prefix_trie.add Prefix.any "gw" Prefix_trie.empty in
  checkb "matches everything" true
    (Prefix_trie.lookup (Ipv4.of_string "203.0.113.200") t = Some (Prefix.any, "gw"))

(* qcheck: trie lookup agrees with a naive linear LPM scan. *)
let arbitrary_prefix =
  QCheck.map
    (fun (a, len) -> Prefix.make (Ipv4.of_int (a land 0xFFFF_FFFF)) len)
    (QCheck.pair (QCheck.int_bound 0xFFFF_FFF) (QCheck.int_bound 32))

let naive_lpm addr bindings =
  List.fold_left
    (fun best (p, v) ->
      if Prefix.contains p addr then
        match best with
        | Some (bp, _) when Prefix.length bp >= Prefix.length p -> best
        | _ -> Some (p, v)
      else best)
    None bindings

let prop_trie_matches_naive =
  QCheck.Test.make ~count:300 ~name:"trie lookup = naive lpm"
    (QCheck.pair (QCheck.small_list arbitrary_prefix) (QCheck.int_bound 0xFFFF_FFF))
    (fun (prefixes, addr_i) ->
      let bindings = List.mapi (fun i p -> (p, i)) prefixes in
      (* Later bindings win on duplicates, matching of_list semantics. *)
      let dedup =
        List.fold_left
          (fun acc (p, v) ->
            (p, v) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) acc)
          [] bindings
      in
      let t = Prefix_trie.of_list bindings in
      let addr = Ipv4.of_int addr_i in
      let trie_result = Option.map snd (Prefix_trie.lookup addr t) in
      let naive_result = Option.map snd (naive_lpm addr dedup) in
      (* Compare matched prefix lengths, not values: equal-length ties on
         distinct-but-equal prefixes cannot happen after dedup. *)
      trie_result = naive_result)

let prop_trie_add_remove =
  QCheck.Test.make ~count:300 ~name:"trie remove undoes add"
    (QCheck.pair arbitrary_prefix (QCheck.small_list arbitrary_prefix))
    (fun (p, others) ->
      let base =
        Prefix_trie.of_list (List.mapi (fun i q -> (q, i)) others)
        |> Prefix_trie.remove p
      in
      let after = Prefix_trie.remove p (Prefix_trie.add p 999 base) in
      Prefix_trie.bindings after = Prefix_trie.bindings base)

(* ---------------- Graph ---------------- *)

let diamond () =
  Graph.empty
  |> Graph.add_edge ~src:"a" ~dst:"b" ~weight:1 ~label:()
  |> Graph.add_edge ~src:"a" ~dst:"c" ~weight:4 ~label:()
  |> Graph.add_edge ~src:"b" ~dst:"d" ~weight:1 ~label:()
  |> Graph.add_edge ~src:"c" ~dst:"d" ~weight:1 ~label:()
  |> Graph.add_edge ~src:"b" ~dst:"c" ~weight:1 ~label:()

let test_graph_shortest () =
  match Graph.shortest_path "a" "d" (diamond ()) with
  | Some (d, path) ->
      checki "distance" 2 d;
      check (Alcotest.list Alcotest.string) "path" [ "a"; "b"; "d" ] path
  | None -> Alcotest.fail "no path"

let test_graph_unreachable () =
  let g = Graph.add_vertex "z" (diamond ()) in
  checkb "unreachable" true (Graph.shortest_path "a" "z" g = None);
  checkb "unknown" true (Graph.shortest_path "a" "nope" g = None)

let test_graph_bfs () =
  let dist = Graph.bfs "a" (diamond ()) in
  checki "hops to d" 2 (Hashtbl.find dist "d");
  checki "hops to a" 0 (Hashtbl.find dist "a")

let test_graph_all_paths () =
  let paths = Graph.all_paths "a" "d" (diamond ()) in
  (* Directed diamond: a-b-d, a-c-d, a-b-c-d. *)
  checki "count" 3 (List.length paths);
  checkb "has direct" true (List.mem [ "a"; "b"; "d" ] paths);
  checkb "has long" true (List.mem [ "a"; "b"; "c"; "d" ] paths)

let test_graph_all_paths_bounded () =
  let paths = Graph.all_paths ~max_len:3 "a" "d" (diamond ()) in
  checkb "only short paths" true (List.for_all (fun p -> List.length p <= 3) paths);
  checki "count" 2 (List.length paths)

let test_graph_neighbors_within () =
  check (Alcotest.list Alcotest.string) "radius 1" [ "a"; "b"; "c" ]
    (Graph.neighbors_within 1 "a" (diamond ()))

let test_graph_connected () =
  checkb "diamond connected" true (Graph.is_connected (diamond ()));
  checkb "island" false (Graph.is_connected (Graph.add_vertex "z" (diamond ())));
  checkb "empty" true (Graph.is_connected Graph.empty)

let test_graph_negative_weight () =
  let g = Graph.add_edge ~src:"a" ~dst:"b" ~weight:(-1) ~label:() Graph.empty in
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.shortest_paths: negative weight") (fun () ->
      ignore (Graph.shortest_paths "a" g))

(* qcheck: Dijkstra distance is never greater than any explicit path cost. *)
let prop_dijkstra_minimal =
  let edges =
    QCheck.small_list
      (QCheck.triple (QCheck.int_bound 5) (QCheck.int_bound 5) (QCheck.int_bound 20))
  in
  QCheck.Test.make ~count:200 ~name:"dijkstra <= bfs path cost" edges (fun es ->
      let g =
        List.fold_left
          (fun g (a, b, w) ->
            Graph.add_edge ~src:(string_of_int a) ~dst:(string_of_int b) ~weight:w
              ~label:() g)
          Graph.empty es
      in
      match es with
      | [] -> true
      | (a, _, _) :: _ ->
          let src = string_of_int a in
          let sp = Graph.shortest_paths src g in
          Hashtbl.fold
            (fun _ (d, path) ok ->
              ok && d >= 0
              && List.length path >= 1
              && List.hd path = src)
            sp true)

(* ---------------- Topology ---------------- *)

let tiny_topo () =
  Topology.empty
  |> Topology.add_node "r1" Topology.Router
  |> Topology.add_node "r2" Topology.Router
  |> Topology.add_node "h1" Topology.Host
  |> Topology.add_link { node = "r1"; iface = "eth0" } { node = "r2"; iface = "eth0" }
  |> Topology.add_link { node = "r1"; iface = "eth1" } { node = "h1"; iface = "eth0" }

let test_topology_peers () =
  let t = tiny_topo () in
  checkb "peer" true
    (Topology.peer { node = "r1"; iface = "eth0" } t = Some { Topology.node = "r2"; iface = "eth0" });
  checkb "unwired" true (Topology.peer { node = "r2"; iface = "eth9" } t = None);
  check (Alcotest.list Alcotest.string) "neighbors" [ "h1"; "r2" ] (Topology.neighbors "r1" t);
  checki "degree" 2 (Topology.degree "r1" t)

let test_topology_rejects () =
  let t = tiny_topo () in
  Alcotest.check_raises "dup node" (Invalid_argument "Topology.add_node: duplicate node r1")
    (fun () -> ignore (Topology.add_node "r1" Topology.Host t));
  Alcotest.check_raises "iface reuse"
    (Invalid_argument "Topology.add_link: r1:eth0 already wired") (fun () ->
      ignore
        (Topology.add_link { node = "r1"; iface = "eth0" } { node = "h1"; iface = "eth5" } t));
  Alcotest.check_raises "self link" (Invalid_argument "Topology.add_link: self-link on r2")
    (fun () ->
      ignore
        (Topology.add_link { node = "r2"; iface = "eth5" } { node = "r2"; iface = "eth6" } t))

let test_topology_remove_link () =
  let t = Topology.remove_link { node = "r1"; iface = "eth0" } (tiny_topo ()) in
  checki "links" 1 (Topology.link_count t);
  checkb "peer gone" true (Topology.peer { node = "r2"; iface = "eth0" } t = None)

let test_topology_validate () =
  checkb "valid" true (Topology.validate (tiny_topo ()) = Ok ())

let test_topology_graph_projection () =
  let g = Topology.to_graph (tiny_topo ()) in
  checki "vertices" 3 (Graph.vertex_count g);
  checki "directed edges" 4 (Graph.edge_count g)

let test_topology_digest () =
  checkb "deterministic" true (Topology.digest (tiny_topo ()) = Topology.digest (tiny_topo ()));
  let grown =
    Topology.add_link { node = "r2"; iface = "eth1" } { node = "h1"; iface = "eth1" }
      (tiny_topo ())
  in
  checkb "sensitive to wiring" true (Topology.digest grown <> Topology.digest (tiny_topo ()))

(* qcheck: the per-node link index gives byte-identical answers to a naive
   scan over the global link list, across arbitrary add/remove histories. *)
let naive_links_of name t =
  List.filter
    (fun (l : Topology.link) -> l.Topology.a.Topology.node = name || l.Topology.b.Topology.node = name)
    (Topology.links t)

let naive_peer (e : Topology.endpoint) t =
  List.find_map
    (fun (l : Topology.link) ->
      if l.Topology.a = e then Some l.Topology.b
      else if l.Topology.b = e then Some l.Topology.a
      else None)
    (Topology.links t)

let naive_neighbors name t =
  List.concat_map
    (fun (l : Topology.link) ->
      (if l.Topology.a.Topology.node = name then [ l.Topology.b.Topology.node ] else [])
      @ if l.Topology.b.Topology.node = name then [ l.Topology.a.Topology.node ] else [])
    (Topology.links t)
  |> List.sort_uniq String.compare

let naive_interfaces_of name t =
  List.concat_map
    (fun (l : Topology.link) ->
      (if l.Topology.a.Topology.node = name then [ l.Topology.a.Topology.iface ] else [])
      @ if l.Topology.b.Topology.node = name then [ l.Topology.b.Topology.iface ] else [])
    (Topology.links t)
  |> List.sort String.compare

let naive_link_between n1 n2 t =
  List.find_opt
    (fun (l : Topology.link) ->
      (l.Topology.a.Topology.node = n1 && l.Topology.b.Topology.node = n2)
      || (l.Topology.a.Topology.node = n2 && l.Topology.b.Topology.node = n1))
    (Topology.links t)

let prop_topology_index_matches_naive =
  (* An op list over 6 nodes x 4 interfaces: add a link, unplug an
     endpoint, or drop a node and re-add it empty (exercising every index
     update path).  Invalid adds (rewired iface, self-link) are skipped. *)
  let ops =
    QCheck.list_of_size (QCheck.Gen.return 30)
      (QCheck.quad (QCheck.int_bound 5) (QCheck.int_bound 3) (QCheck.int_bound 5)
         (QCheck.int_bound 9))
  in
  QCheck.Test.make ~count:200 ~name:"topology index = naive scan" ops (fun ops ->
      let name i = "n" ^ string_of_int i in
      let ep i j = { Topology.node = name i; iface = "eth" ^ string_of_int j } in
      let base =
        List.init 6 (fun i -> name i)
        |> List.fold_left (fun t n -> Topology.add_node n Topology.Router t) Topology.empty
      in
      let t =
        List.fold_left
          (fun t (i, j, i', sel) ->
            if sel < 7 then
              try Topology.add_link (ep i j) (ep i' ((sel + j) mod 4)) t
              with Invalid_argument _ -> t
            else if sel = 7 then Topology.remove_link (ep i j) t
            else
              (* Drop the node and re-add it unwired. *)
              Topology.add_node (name i) Topology.Router (Topology.remove_node (name i) t)
          )
          base ops
      in
      let names = List.init 6 (fun i -> name i) in
      List.for_all
        (fun n ->
          Topology.links_of n t = naive_links_of n t
          && Topology.neighbors n t = naive_neighbors n t
          && Topology.interfaces_of n t = naive_interfaces_of n t
          && Topology.degree n t = List.length (naive_interfaces_of n t)
          && List.for_all
               (fun n' -> Topology.link_between n n' t = naive_link_between n n' t)
               names
          && List.for_all
               (fun j ->
                 let e = ep (int_of_string (String.sub n 1 1)) j in
                 Topology.peer e t = naive_peer e t)
               [ 0; 1; 2; 3 ])
        names)

(* ---------------- Acl ---------------- *)

let sample_acl () =
  Acl.make "TEST"
    [
      Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 80) ~seq:10 Acl.Permit
        (Prefix.of_string "10.1.0.0/16") (Prefix.of_string "10.2.0.0/16");
      Acl.rule ~proto:(Acl.Proto Flow.Icmp) ~seq:20 Acl.Deny (Prefix.of_string "10.1.0.0/16")
        Prefix.any;
      Acl.rule ~seq:30 Acl.Permit Prefix.any Prefix.any;
    ]

let test_acl_first_match () =
  let acl = sample_acl () in
  let web =
    Flow.tcp ~dst_port:80 (Ipv4.of_string "10.1.0.5") (Ipv4.of_string "10.2.0.9")
  in
  checkb "web allowed" true (Acl.permits acl web);
  let ping = Flow.icmp (Ipv4.of_string "10.1.0.5") (Ipv4.of_string "10.2.0.9") in
  checkb "icmp denied" false (Acl.permits acl ping);
  (match Acl.eval acl ping with
  | Acl.Deny, Some r -> checki "rule 20 fired" 20 r.Acl.seq
  | _ -> Alcotest.fail "expected deny by rule 20");
  let other = Flow.icmp (Ipv4.of_string "10.9.0.5") (Ipv4.of_string "10.2.0.9") in
  checkb "fallthrough permit" true (Acl.permits acl other)

let test_acl_implicit_deny () =
  let acl = Acl.empty "EMPTY" in
  let f = Flow.icmp (Ipv4.of_string "1.1.1.1") (Ipv4.of_string "2.2.2.2") in
  (match Acl.eval acl f with
  | Acl.Deny, None -> ()
  | _ -> Alcotest.fail "expected implicit deny");
  checkb "permits" false (Acl.permits acl f)

let test_acl_port_ranges () =
  let acl =
    Acl.make "PORTS"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Udp) ~dst_port:(Acl.Range (5000, 5010)) ~seq:10
          Acl.Permit Prefix.any Prefix.any;
      ]
  in
  let mk port = Flow.make ~proto:Flow.Udp ~dst_port:port (Ipv4.of_string "1.1.1.1") (Ipv4.of_string "2.2.2.2") in
  checkb "in range" true (Acl.permits acl (mk 5005));
  checkb "edge lo" true (Acl.permits acl (mk 5000));
  checkb "edge hi" true (Acl.permits acl (mk 5010));
  checkb "out" false (Acl.permits acl (mk 5011))

let test_acl_add_remove_rules () =
  let acl = sample_acl () in
  let acl = Acl.remove_rule 20 acl in
  checki "two rules" 2 (Acl.rule_count acl);
  let ping = Flow.icmp (Ipv4.of_string "10.1.0.5") (Ipv4.of_string "10.2.0.9") in
  checkb "now permitted" true (Acl.permits acl ping);
  let acl =
    Acl.add_rule (Acl.rule ~seq:5 Acl.Deny Prefix.any Prefix.any) acl
  in
  checkb "early deny wins" false (Acl.permits acl ping)

let test_acl_replace_same_seq () =
  let acl = sample_acl () in
  let acl = Acl.add_rule (Acl.rule ~seq:30 Acl.Deny Prefix.any Prefix.any) acl in
  checki "still 3 rules" 3 (Acl.rule_count acl);
  let other = Flow.icmp (Ipv4.of_string "10.9.0.5") (Ipv4.of_string "10.2.0.9") in
  checkb "replaced action" false (Acl.permits acl other)

let test_acl_duplicate_seq_rejected () =
  Alcotest.check_raises "dup seq" (Invalid_argument "Acl.make: duplicate sequence 10 in X")
    (fun () ->
      ignore
        (Acl.make "X"
           [
             Acl.rule ~seq:10 Acl.Permit Prefix.any Prefix.any;
             Acl.rule ~seq:10 Acl.Deny Prefix.any Prefix.any;
           ]))

let test_acl_shadowed () =
  let acl =
    Acl.make "SHADOW"
      [
        Acl.rule ~seq:10 Acl.Permit Prefix.any Prefix.any;
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~seq:20 Acl.Deny (Prefix.of_string "10.0.0.0/8")
          Prefix.any;
      ]
  in
  checki "one shadowed" 1 (List.length (Acl.shadowed_rules acl));
  checki "no shadow in sample" 0 (List.length (Acl.shadowed_rules (sample_acl ())))

let test_acl_shadow_port_subsumption () =
  (* Range covers Eq inside it; Eq never covers a wider Range. *)
  checkb "range covers eq" true (Acl.port_subsumes (Acl.Range (5000, 5010)) (Acl.Eq 5005));
  checkb "eq edge lo" true (Acl.port_subsumes (Acl.Range (5000, 5010)) (Acl.Eq 5000));
  checkb "eq outside" false (Acl.port_subsumes (Acl.Range (5000, 5010)) (Acl.Eq 4999));
  checkb "eq vs range" false (Acl.port_subsumes (Acl.Eq 5005) (Acl.Range (5000, 5010)));
  checkb "range vs range" true (Acl.port_subsumes (Acl.Range (1, 100)) (Acl.Range (10, 20)));
  checkb "range overlap only" false
    (Acl.port_subsumes (Acl.Range (10, 20)) (Acl.Range (15, 25)));
  let shadow =
    Acl.make "PORTS"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Range (8000, 8100)) ~seq:10
          Acl.Permit Prefix.any Prefix.any;
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 8080) ~seq:20 Acl.Deny
          Prefix.any Prefix.any;
      ]
  in
  checki "eq under range shadowed" 1 (List.length (Acl.shadowed_rules shadow));
  let no_shadow =
    Acl.make "PORTS2"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Eq 8080) ~seq:10 Acl.Permit
          Prefix.any Prefix.any;
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~dst_port:(Acl.Range (8000, 8100)) ~seq:20
          Acl.Deny Prefix.any Prefix.any;
      ]
  in
  checki "range under eq not shadowed" 0 (List.length (Acl.shadowed_rules no_shadow))

let test_acl_shadow_proto_subsumption () =
  checkb "any covers tcp" true (Acl.proto_subsumes Acl.Any_proto (Acl.Proto Flow.Tcp));
  checkb "tcp not any" false (Acl.proto_subsumes (Acl.Proto Flow.Tcp) Acl.Any_proto);
  checkb "tcp not udp" false
    (Acl.proto_subsumes (Acl.Proto Flow.Tcp) (Acl.Proto Flow.Udp));
  let shadow =
    Acl.make "PROTO"
      [
        Acl.rule ~seq:10 Acl.Permit (Prefix.of_string "10.0.0.0/8") Prefix.any;
        Acl.rule ~proto:(Acl.Proto Flow.Udp) ~seq:20 Acl.Deny
          (Prefix.of_string "10.1.0.0/16") Prefix.any;
      ]
  in
  checki "proto under any shadowed" 1 (List.length (Acl.shadowed_rules shadow));
  let no_shadow =
    Acl.make "PROTO2"
      [
        Acl.rule ~proto:(Acl.Proto Flow.Tcp) ~seq:10 Acl.Permit Prefix.any Prefix.any;
        Acl.rule ~seq:20 Acl.Deny Prefix.any Prefix.any;
      ]
  in
  checki "any under proto not shadowed" 0 (List.length (Acl.shadowed_rules no_shadow))

let test_acl_shadow_equal_prefix_different_action () =
  (* Identical matchers, opposite actions: rule_subsumes ignores the
     action, so the later rule is dead either way. *)
  let p = Prefix.of_string "10.5.0.0/16" in
  let acl =
    Acl.make "EQ"
      [
        Acl.rule ~seq:10 Acl.Permit p Prefix.any;
        Acl.rule ~seq:20 Acl.Deny p Prefix.any;
      ]
  in
  checkb "equal rules subsume" true
    (Acl.rule_subsumes (Acl.find_rule 10 acl |> Option.get) (Acl.find_rule 20 acl |> Option.get));
  (match Acl.shadowed_rules acl with
  | [ r ] -> checki "later rule dead" 20 r.Acl.seq
  | l -> Alcotest.failf "expected one shadowed rule, got %d" (List.length l))

(* qcheck: first-match semantics — removing all rules after the decisive
   one never changes the verdict. *)
let arbitrary_flow =
  QCheck.map
    (fun (s, d, proto_i) ->
      let proto = match proto_i mod 3 with 0 -> Flow.Icmp | 1 -> Flow.Tcp | _ -> Flow.Udp in
      Flow.make ~proto (Ipv4.of_int s) (Ipv4.of_int d))
    (QCheck.triple (QCheck.int_bound 0xFFFFFF) (QCheck.int_bound 0xFFFFFF) QCheck.small_int)

let prop_acl_first_match =
  QCheck.Test.make ~count:200 ~name:"acl decisive rule is stable" arbitrary_flow (fun f ->
      let acl = sample_acl () in
      match Acl.eval acl f with
      | verdict, Some r ->
          let truncated =
            Acl.make "T" (List.filter (fun (r' : Acl.rule) -> r'.seq <= r.Acl.seq) acl.rules)
          in
          fst (Acl.eval truncated f) = verdict
      | _, None -> true)

(* ---------------- Flow ---------------- *)

let test_flow_reverse () =
  let f = Flow.tcp ~src_port:1234 ~dst_port:80 (Ipv4.of_string "1.1.1.1") (Ipv4.of_string "2.2.2.2") in
  let r = Flow.reverse f in
  checkb "addresses swapped" true (Ipv4.equal r.Flow.src f.Flow.dst && Ipv4.equal r.Flow.dst f.Flow.src);
  checki "ports swapped" 80 r.Flow.src_port;
  checkb "double reverse" true (Flow.equal f (Flow.reverse r))

let test_flow_defaults () =
  let f = Flow.icmp (Ipv4.of_string "1.1.1.1") (Ipv4.of_string "2.2.2.2") in
  checki "icmp ports" 0 f.Flow.src_port;
  let t = Flow.make ~proto:Flow.Tcp (Ipv4.of_string "1.1.1.1") (Ipv4.of_string "2.2.2.2") in
  checki "tcp default dst" 80 t.Flow.dst_port

let suite =
  [
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 rejects malformed" `Quick test_ipv4_reject_malformed;
    Alcotest.test_case "ipv4 octets" `Quick test_ipv4_octets;
    Alcotest.test_case "ipv4 succ/pred" `Quick test_ipv4_succ_pred;
    Alcotest.test_case "ipv4 bits" `Quick test_ipv4_bits;
    Alcotest.test_case "prefix canonicalisation" `Quick test_prefix_canonical;
    Alcotest.test_case "prefix contains" `Quick test_prefix_contains;
    Alcotest.test_case "prefix subsume/overlap" `Quick test_prefix_subsumes_overlaps;
    Alcotest.test_case "prefix hosts" `Quick test_prefix_hosts;
    Alcotest.test_case "prefix split" `Quick test_prefix_split;
    Alcotest.test_case "prefix rejects malformed" `Quick test_prefix_reject;
    Alcotest.test_case "ifaddr keeps host part" `Quick test_ifaddr_keeps_host;
    Alcotest.test_case "trie longest-prefix match" `Quick test_trie_lpm;
    Alcotest.test_case "trie empty/remove" `Quick test_trie_empty_and_remove;
    Alcotest.test_case "trie replace binding" `Quick test_trie_replace;
    Alcotest.test_case "trie default route" `Quick test_trie_default_route_only;
    QCheck_alcotest.to_alcotest prop_trie_matches_naive;
    QCheck_alcotest.to_alcotest prop_trie_add_remove;
    Alcotest.test_case "graph shortest path" `Quick test_graph_shortest;
    Alcotest.test_case "graph unreachable" `Quick test_graph_unreachable;
    Alcotest.test_case "graph bfs" `Quick test_graph_bfs;
    Alcotest.test_case "graph all paths" `Quick test_graph_all_paths;
    Alcotest.test_case "graph all paths bounded" `Quick test_graph_all_paths_bounded;
    Alcotest.test_case "graph neighbors within" `Quick test_graph_neighbors_within;
    Alcotest.test_case "graph connectivity" `Quick test_graph_connected;
    Alcotest.test_case "graph rejects negative weights" `Quick test_graph_negative_weight;
    QCheck_alcotest.to_alcotest prop_dijkstra_minimal;
    Alcotest.test_case "topology peers" `Quick test_topology_peers;
    Alcotest.test_case "topology rejects bad wiring" `Quick test_topology_rejects;
    Alcotest.test_case "topology remove link" `Quick test_topology_remove_link;
    Alcotest.test_case "topology validate" `Quick test_topology_validate;
    Alcotest.test_case "topology graph projection" `Quick test_topology_graph_projection;
    Alcotest.test_case "topology digest" `Quick test_topology_digest;
    QCheck_alcotest.to_alcotest prop_topology_index_matches_naive;
    Alcotest.test_case "acl first match" `Quick test_acl_first_match;
    Alcotest.test_case "acl implicit deny" `Quick test_acl_implicit_deny;
    Alcotest.test_case "acl port ranges" `Quick test_acl_port_ranges;
    Alcotest.test_case "acl add/remove rules" `Quick test_acl_add_remove_rules;
    Alcotest.test_case "acl replace same seq" `Quick test_acl_replace_same_seq;
    Alcotest.test_case "acl duplicate seq rejected" `Quick test_acl_duplicate_seq_rejected;
    Alcotest.test_case "acl shadowed rules" `Quick test_acl_shadowed;
    Alcotest.test_case "acl shadow port subsumption" `Quick test_acl_shadow_port_subsumption;
    Alcotest.test_case "acl shadow proto subsumption" `Quick test_acl_shadow_proto_subsumption;
    Alcotest.test_case "acl shadow equal prefixes" `Quick
      test_acl_shadow_equal_prefix_different_action;
    QCheck_alcotest.to_alcotest prop_acl_first_match;
    Alcotest.test_case "flow reverse" `Quick test_flow_reverse;
    Alcotest.test_case "flow defaults" `Quick test_flow_defaults;
  ]
