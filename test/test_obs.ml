(* Tests for Heimdall_obs: clock clamping, sinks, the span tracer
   (nesting, domain safety, JSONL round-trips), the metrics registry,
   the event log — and the two system-level invariants the rest of the
   tree relies on: instrumentation never changes computed values, and
   the audit trail's obs.trace record joins against the emitted spans. *)

open Heimdall_obs
module Json = Heimdall_json.Json
module Experiments = Heimdall_scenarios.Experiments

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------- clock ---------------- *)

let test_clock () =
  checkb "clamp negative" true (Clock.clamp (-3.0) = 0.0);
  checkb "clamp positive" true (Clock.clamp 1.5 = 1.5);
  let v, dt = Clock.elapsed (fun () -> 42) in
  checki "elapsed value" 42 v;
  checkb "elapsed non-negative" true (dt >= 0.0);
  (* Timing must stay one helper: the MSP latency model delegates here. *)
  let v', dt' = Heimdall_msp.Timing.elapsed (fun () -> "x") in
  checks "timing delegates" "x" v';
  checkb "timing non-negative" true (dt' >= 0.0)

(* ---------------- sinks ---------------- *)

let test_sinks () =
  let sink, lines = Sink.memory () in
  Sink.write sink "one";
  Sink.write sink "two";
  checkb "memory order" true (lines () = [ "one"; "two" ]);
  Sink.close sink;
  Sink.close sink;
  (* idempotent *)
  Sink.write Sink.null "dropped";
  let path = Filename.temp_file "heimdall_obs" ".jsonl" in
  let fsink = Sink.file path in
  Sink.write fsink "a";
  Sink.write fsink "b";
  Sink.close fsink;
  let text = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  checks "file contents" "a\nb\n" text

(* ---------------- tracer ---------------- *)

let test_tracer_nesting () =
  let t = Tracer.create () in
  let v =
    Tracer.with_span t "outer" ~attrs:[ ("k", "v") ] (fun () ->
        Tracer.add_attr t "added" "yes";
        Tracer.with_span t "inner" (fun () -> 7) + 1)
  in
  checki "value" 8 v;
  let spans = Tracer.flush t in
  checki "two spans" 2 (List.length spans);
  let outer = List.find (fun (s : Tracer.span) -> s.name = "outer") spans in
  let inner = List.find (fun (s : Tracer.span) -> s.name = "inner") spans in
  checkb "outer is root" true (outer.parent = None);
  checkb "inner child of outer" true (inner.parent = Some outer.id);
  checkb "ids unique" true (outer.id <> inner.id);
  checkb "attrs kept" true (List.mem_assoc "k" outer.attrs);
  checkb "added attr kept" true (List.assoc "added" outer.attrs = "yes");
  checkb "durations clamped" true
    (List.for_all (fun (s : Tracer.span) -> s.duration_s >= 0.0) spans);
  checki "flush clears" 0 (List.length (Tracer.flush t))

let test_tracer_current_root () =
  let t = Tracer.create () in
  checkb "no current" true (Tracer.current t = None);
  Tracer.with_span t "a" (fun () ->
      let a = Tracer.current t in
      Tracer.with_span t "b" (fun () ->
          checkb "current is inner" true (Tracer.current t <> a);
          checkb "root is outer" true (Tracer.root t = a)))

let test_tracer_exception_safety () =
  let t = Tracer.create () in
  (try Tracer.with_span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  let spans = Tracer.flush t in
  checki "span recorded on raise" 1 (List.length spans);
  checkb "stack popped" true (Tracer.current t = None)

let test_tracer_domains () =
  let t = Tracer.create () in
  Tracer.with_span t "parent" (fun () ->
      let parent = Option.get (Tracer.current t) in
      let workers =
        List.init 4 (fun i ->
            Domain.spawn (fun () ->
                Tracer.with_span t ~parent
                  (Printf.sprintf "worker-%d" i)
                  (fun () -> i)))
      in
      List.iter (fun d -> ignore (Domain.join d)) workers);
  let spans = Tracer.flush t in
  checki "all spans collected" 5 (List.length spans);
  let ids = List.map (fun (s : Tracer.span) -> s.id) spans in
  checki "ids unique across domains" 5 (List.length (List.sort_uniq compare ids));
  checkb "sorted by id" true (List.sort compare ids = ids);
  let parent = List.find (fun (s : Tracer.span) -> s.name = "parent") spans in
  checki "workers attached to parent" 4
    (List.length
       (List.filter (fun (s : Tracer.span) -> s.parent = Some parent.id) spans))

let test_span_json_roundtrip () =
  let t = Tracer.create () in
  Tracer.with_span t "outer" ~attrs:[ ("x", "1") ] (fun () ->
      Tracer.with_span t "inner" (fun () -> ()));
  let spans = Tracer.flush t in
  List.iter
    (fun s ->
      checkb "roundtrip" true (Tracer.span_of_json (Tracer.span_to_json s) = Some s))
    spans;
  let sink, lines = Sink.memory () in
  Tracer.emit sink spans;
  checki "one line per span" (List.length spans) (List.length (lines ()));
  List.iter
    (fun line ->
      checkb "line parses" true
        (match Json.of_string_opt line with
        | Some j -> Tracer.span_of_json j <> None
        | None -> false))
    (lines ())

let test_render_tree () =
  let t = Tracer.create () in
  Tracer.with_span t "root" (fun () -> Tracer.with_span t "leaf" (fun () -> ()));
  let out = Tracer.render_tree (Tracer.flush t) in
  checkb "root unindented" true
    (String.length out >= 4 && String.sub out 0 4 = "root");
  checkb "leaf indented" true
    (List.exists
       (fun l -> String.length l > 2 && String.sub l 0 2 = "  ")
       (String.split_on_char '\n' out))

(* ---------------- metrics ---------------- *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:4 "c";
  checki "counter" 5 (Metrics.counter_value m "c");
  checki "unknown counter" 0 (Metrics.counter_value m "missing");
  Metrics.set_gauge m "g" 2.5;
  checkb "gauge" true (Metrics.gauge_value m "g" = Some 2.5);
  checkb "unknown gauge" true (Metrics.gauge_value m "missing" = None);
  Metrics.incr m "a";
  checkb "counters sorted" true (List.map fst (Metrics.counters m) = [ "a"; "c" ])

let test_metrics_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "h") [ 0.001; 0.001; 0.001; 0.002; 1.0 ];
  Metrics.observe m "h" (-5.0);
  (* clamped to 0 *)
  match Metrics.histogram_summary m "h" with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
      checki "count" 6 s.Metrics.count;
      checkb "max exact" true (s.Metrics.max = 1.0);
      checkb "p50 near 1ms" true (s.Metrics.p50 >= 0.001 && s.Metrics.p50 <= 0.003);
      checkb "p95 >= p50" true (s.Metrics.p95 >= s.Metrics.p50);
      checkb "sum clamps negatives" true (s.Metrics.sum >= 1.004)

let test_metrics_render () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "engine.trace.cache_hit";
  Metrics.set_gauge m "engine.domains_used" 4.0;
  Metrics.observe m "phase:verify/s" 0.25;
  let text = Metrics.to_prometheus m in
  let contains sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  checkb "counter line" true (contains "engine_trace_cache_hit 3" text);
  checkb "gauge line" true (contains "engine_domains_used 4" text);
  checkb "name sanitised" true (contains "phase:verify_s" text);
  checkb "quantile series" true (contains "quantile=\"0.95\"" text);
  (* Deterministic rendering: a second registry fed the same updates
     renders byte-identically. *)
  let m' = Metrics.create () in
  Metrics.incr m' ~by:3 "engine.trace.cache_hit";
  Metrics.set_gauge m' "engine.domains_used" 4.0;
  Metrics.observe m' "phase:verify/s" 0.25;
  checks "prometheus deterministic" text (Metrics.to_prometheus m');
  checkb "json deterministic" true (Json.equal (Metrics.to_json m) (Metrics.to_json m'));
  match Metrics.to_json m with
  | Json.Obj fields ->
      checkb "json sections" true
        (List.map fst fields = [ "counters"; "gauges"; "histograms" ])
  | _ -> Alcotest.fail "metrics json not an object"

(* ---------------- events ---------------- *)

let test_events () =
  let e = Events.create () in
  Events.record e "policy.verdict" ~attrs:[ ("accepted", "true") ];
  Events.record e "lint.delta";
  checki "length" 2 (Events.length e);
  let evs = Events.events e in
  checkb "seq ascending" true
    (List.map (fun (ev : Events.event) -> ev.seq) evs = [ 1; 2 ]);
  checks "kind kept" "policy.verdict" (List.hd evs).Events.kind;
  let sink, lines = Sink.memory () in
  Events.emit sink evs;
  checki "one line per event" 2 (List.length (lines ()));
  checkb "lines parse" true
    (List.for_all (fun l -> Json.of_string_opt l <> None) (lines ()))

(* ---------------- obs context: no-op when absent ---------------- *)

let test_obs_option_helpers () =
  (* All helpers must be inert on None — this is what lets every call
     site instrument unconditionally. *)
  checki "span none" 3 (Obs.span None "x" (fun () -> 3));
  Obs.add_attr None "k" "v";
  Obs.incr None "c";
  Obs.set_gauge None "g" 1.0;
  Obs.observe None "h" 1.0;
  Obs.event None "e";
  checkb "current none" true (Obs.current None = None);
  checkb "root none" true (Obs.root None = None);
  let o = Obs.create () in
  let some = Some o in
  Obs.span some "outer" (fun () ->
      Obs.incr some "c";
      checkb "root set" true (Obs.root some <> None));
  checki "counter through context" 1 (Metrics.counter_value o.Obs.metrics "c");
  checki "span recorded" 1 (List.length (Tracer.flush o.Obs.tracer))

(* ---------------- engine stats reset (satellite) ---------------- *)

let test_engine_reset_stats () =
  let open Heimdall_verify in
  let net, policies = Experiments.enterprise () in
  let engine = Engine.create ~domains:2 () in
  (* min_per_domain:1 defeats the sequential cutoff so the pool engages
     even on this small policy list. *)
  ignore (Engine.map ~min_per_domain:1 engine (fun p -> p) policies);
  ignore (Engine.phase engine "warm" (fun () -> ignore (Engine.dataplane engine net)));
  ignore (Policy.check_all ~engine (Engine.dataplane engine net) policies);
  let s = Engine.stats engine in
  checkb "phases populated" true (s.Engine.phase_seconds <> []);
  checkb "domains used" true (s.Engine.domains_used > 1);
  checkb "dataplane counted" true (s.Engine.dataplanes_built > 0);
  Engine.reset_stats engine;
  let s = Engine.stats engine in
  checki "traces cleared" 0 s.Engine.traces_run;
  checki "trace hits cleared" 0 s.Engine.trace_cache_hits;
  checki "dataplanes cleared" 0 s.Engine.dataplanes_built;
  checki "dp hits cleared" 0 s.Engine.dataplane_cache_hits;
  checki "domains reset" 1 s.Engine.domains_used;
  checkb "phase buckets cleared" true (s.Engine.phase_seconds = [])

(* ---------------- determinism: obs never changes results ---------------- *)

let issue_of net name =
  List.find
    (fun (i : Heimdall_msp.Issue.t) -> i.Heimdall_msp.Issue.name = name)
    (Heimdall_scenarios.Enterprise.issues net)

(* Everything the enforcer decides, rendered without the audit trail
   (the trail legitimately gains the obs.trace correlation record when
   observability is on). *)
let decision_fingerprint (run : Heimdall_msp.Workflow.run) =
  let o = Option.get run.Heimdall_msp.Workflow.outcome in
  let open Heimdall_enforcer.Enforcer in
  String.concat "|"
    [
      string_of_bool o.approved;
      String.concat ";" (List.map Heimdall_enforcer.Verifier.rejection_to_string o.rejections);
      (match o.plan with
      | Some p -> Heimdall_enforcer.Scheduler.plan_to_string p
      | None -> "-");
      (match o.impact with
      | Some i -> Heimdall_verify.Reachability.impact_to_string i
      | None -> "-");
      String.concat ";"
        (List.map Heimdall_lint.Diagnostic.to_string o.lint_findings);
      string_of_bool run.Heimdall_msp.Workflow.resolved;
      string_of_int run.Heimdall_msp.Workflow.denied;
    ]

let run_with ?obs ?domains net policies issue =
  let engine =
    Option.map (fun d -> Heimdall_verify.Engine.create ~domains:d ?obs ()) domains
  in
  Heimdall_msp.Workflow.run_heimdall ?engine ?obs ~production:net ~policies ~issue ()

let test_determinism () =
  let net, policies = Experiments.enterprise () in
  let issue = issue_of net "vlan" in
  let plain = decision_fingerprint (run_with net policies issue) in
  let traced =
    decision_fingerprint (run_with ~obs:(Obs.create ()) net policies issue)
  in
  checks "obs on = obs off" plain traced;
  let one = decision_fingerprint (run_with ~obs:(Obs.create ()) ~domains:1 net policies issue) in
  let many = decision_fingerprint (run_with ~obs:(Obs.create ()) ~domains:4 net policies issue) in
  checks "1 domain = plain" plain one;
  checks "4 domains = plain" plain many

(* ---------------- audit <-> span correlation ---------------- *)

let test_audit_span_correlation () =
  let net, policies = Experiments.enterprise () in
  let issue = issue_of net "vlan" in
  let obs = Obs.create () in
  let run = run_with ~obs ~domains:2 net policies issue in
  let outcome = Option.get run.Heimdall_msp.Workflow.outcome in
  let audit = outcome.Heimdall_enforcer.Enforcer.audit in
  checkb "audit verifies" true (Heimdall_enforcer.Audit.verify audit = Ok ());
  let trace_rec =
    List.find_opt
      (fun (r : Heimdall_enforcer.Audit.record) -> r.action = "obs.trace")
      (Heimdall_enforcer.Audit.records audit)
  in
  match trace_rec with
  | None -> Alcotest.fail "no obs.trace record in audit trail"
  | Some r ->
      let root_id =
        Scanf.sscanf r.detail "root-span-id=%d" (fun n -> n)
      in
      let spans = Tracer.flush obs.Obs.tracer in
      (* Every parent must exist in the flushed list... *)
      let ids = List.map (fun (s : Tracer.span) -> s.id) spans in
      checkb "every parent exists" true
        (List.for_all
           (fun (s : Tracer.span) ->
             match s.parent with None -> true | Some p -> List.mem p ids)
           spans);
      (* ...and the recorded root must be the session root span. *)
      (match List.find_opt (fun (s : Tracer.span) -> s.id = root_id) spans with
      | None -> Alcotest.fail "audited root span not emitted"
      | Some s ->
          checks "root is the session span" "session" s.Tracer.name;
          checkb "root has no parent" true (s.Tracer.parent = None));
      (* Denials and commands flowed into the metrics registry. *)
      checkb "session.commands counted" true
        (Metrics.counter_value obs.Obs.metrics "session.commands" > 0);
      (* And the engine cache metrics registered. *)
      checkb "engine cache metrics present" true
        (Metrics.counter_value obs.Obs.metrics "engine.dataplane.built" > 0
        || Metrics.counter_value obs.Obs.metrics "engine.dataplane.cache_hit" > 0)

let test_denial_events () =
  let net, _ = Experiments.enterprise () in
  let issue = issue_of net "vlan" in
  let broken = issue.Heimdall_msp.Issue.inject net in
  let endpoints = issue.Heimdall_msp.Issue.ticket.Heimdall_msp.Ticket.endpoints in
  let obs = Obs.create () in
  let em = Heimdall_twin.Twin.build ~obs ~production:broken ~endpoints () in
  let slice = Heimdall_twin.Twin.slice_nodes ~production:broken ~endpoints () in
  let privilege =
    Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice
      issue.Heimdall_msp.Issue.ticket
  in
  let session = Heimdall_twin.Twin.open_session ~obs ~privilege em in
  (* An action the least-privilege spec denies. *)
  (match Heimdall_twin.Session.exec session ("connect " ^ List.hd slice) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "connect failed: %s" (Heimdall_twin.Session.error_to_string e));
  (match Heimdall_twin.Session.exec session "erase startup-config" with
  | Ok _ -> Alcotest.fail "erase should be denied"
  | Error _ -> ());
  let denied =
    List.filter
      (fun (e : Events.event) -> e.kind = "privilege.denied")
      (Events.events obs.Obs.events)
  in
  checki "one denial event" 1 (List.length denied);
  let attrs = (List.hd denied).Events.attrs in
  checkb "action attr" true (List.mem_assoc "action" attrs);
  checkb "node attr" true (List.mem_assoc "node" attrs);
  checki "denied counter" 1 (Metrics.counter_value obs.Obs.metrics "session.denied")

let suite =
  [
    ("clock", `Quick, test_clock);
    ("sinks", `Quick, test_sinks);
    ("tracer nesting", `Quick, test_tracer_nesting);
    ("tracer current/root", `Quick, test_tracer_current_root);
    ("tracer exception safety", `Quick, test_tracer_exception_safety);
    ("tracer domain safety", `Quick, test_tracer_domains);
    ("span json roundtrip", `Quick, test_span_json_roundtrip);
    ("render tree", `Quick, test_render_tree);
    ("metrics counters/gauges", `Quick, test_metrics_counters_gauges);
    ("metrics histogram", `Quick, test_metrics_histogram);
    ("metrics rendering", `Quick, test_metrics_render);
    ("events", `Quick, test_events);
    ("obs option helpers", `Quick, test_obs_option_helpers);
    ("engine reset_stats", `Quick, test_engine_reset_stats);
    ("determinism under obs", `Quick, test_determinism);
    ("audit/span correlation", `Quick, test_audit_span_correlation);
    ("privilege denial events", `Quick, test_denial_events);
  ]
