(* Benchmark harness: reproduces every table and figure of the paper's
   evaluation (printed in the paper's shape), and measures the
   computational kernels behind each one with Bechamel.

   Usage:
     dune exec bench/main.exe            # all reports + micro-benchmarks
     dune exec bench/main.exe -- table1  # one artifact
     dune exec bench/main.exe -- fig7 | fig8 | fig9 | engine | lint
                                 | sem | ablation-verify | ablation-slicer
                                 | ablation-audit | containment | chaos
                                 | scale | poltree | obs | micro *)

open Bechamel
open Toolkit
open Heimdall_scenarios

(* ------------------------------------------------------------------ *)
(* Perf-report persistence                                             *)
(* ------------------------------------------------------------------ *)

let report_path = "bench/report.json"

(* Read-merge-write by top-level key: each report section owns one key
   in bench/report.json, so running `bench lint` no longer clobbers the
   engine section written by a previous `bench engine` (and vice versa).
   An unreadable or malformed existing file degrades to a fresh one. *)
let persist_report ~key json =
  let open Heimdall_json in
  let existing =
    if Sys.file_exists report_path then
      try
        In_channel.with_open_text report_path (fun ic ->
            Json.of_string_opt (In_channel.input_all ic))
      with Sys_error _ -> None
    else None
  in
  let fields =
    match existing with Some (Json.Obj fields) -> fields | _ -> []
  in
  let merged = (key, json) :: List.remove_assoc key fields in
  let merged = List.sort (fun (a, _) (b, _) -> compare a b) merged in
  try
    Out_channel.with_open_text report_path (fun oc ->
        Out_channel.output_string oc (Json.to_string ~pretty:true (Json.Obj merged));
        Out_channel.output_char oc '\n');
    Printf.printf "  wrote %S section of %s\n" key report_path
  with Sys_error m -> Printf.printf "  could not write %s: %s\n" report_path m

(* ------------------------------------------------------------------ *)
(* Paper-shaped reports                                                *)
(* ------------------------------------------------------------------ *)

let report_table1 () =
  print_string "== Table 1: evaluation networks ==\n";
  print_string (Experiments.render_table1 (Experiments.table1 ()));
  print_newline ()

let report_fig7 () =
  print_string "== Figure 7: time to solve three real issues (enterprise) ==\n";
  let cells = Experiments.fig7 () in
  print_string (Experiments.render_fig7 cells);
  List.iter
    (fun (issue, o) -> Printf.printf "Heimdall overhead on %s: +%.1f s\n" issue o)
    (Experiments.fig7_overhead cells);
  let overheads = List.map snd (Experiments.fig7_overhead cells) in
  Printf.printf "average overhead: +%.1f s (paper: +28 s)\n\n"
    (List.fold_left ( +. ) 0.0 overheads /. float_of_int (List.length overheads))

let report_fig7_university () =
  print_string
    "== Figure 7 (university variant; the paper omits it \"due to similarity\") ==\n";
  let cells = Experiments.fig7 ~network:`University () in
  print_string (Experiments.render_fig7 cells);
  List.iter
    (fun (issue, o) -> Printf.printf "Heimdall overhead on %s: +%.1f s\n" issue o)
    (Experiments.fig7_overhead cells);
  print_newline ()

let report_fig8 () =
  print_string "== Figure 8: feasibility and attack surface (enterprise) ==\n";
  let engine = Heimdall_verify.Engine.create () in
  print_string
    (Experiments.render_sweep ~title:"bring down each interface; All vs Neighbor vs Heimdall"
       (Experiments.fig8 ~engine ()));
  print_string (Heimdall_verify.Engine.render_stats (Heimdall_verify.Engine.stats engine));
  print_newline ()

let report_fig9 () =
  print_string "== Figure 9: feasibility and attack surface (university) ==\n";
  let engine = Heimdall_verify.Engine.create () in
  print_string
    (Experiments.render_sweep ~title:"bring down each interface; All vs Neighbor vs Heimdall"
       (Experiments.fig9 ~engine ()));
  print_string (Heimdall_verify.Engine.render_stats (Heimdall_verify.Engine.stats engine));
  print_newline ()

(* Set by [report_engine] when its pass/fail gate trips; the entry point
   turns it into a non-zero exit so `make bench-smoke` (and CI) fail. *)
let gate_failed = ref false

let report_engine () =
  let open Heimdall_verify in
  print_string "== Verify engine: 1-domain vs N-domain university sweep ==\n";
  let net, policies = Experiments.university () in
  let cache_dir = Filename.temp_dir "heimdall-dpcache" "" in
  (* Each run is one engine doing the sweep twice: the cold pass builds
     and caches, the warm pass must be answered from the caches.  The
     engine is shut down so its helper domains don't linger. *)
  let run ?cache_dir domains =
    let obs = Heimdall_obs.Obs.create () in
    let engine = Engine.create ~domains ~obs ?cache_dir () in
    let cold_s, cold =
      Heimdall_msp.Timing.elapsed (fun () ->
          Metrics.sweep_all ~engine ~production:net ~policies ())
    in
    let warm_s, warm =
      Heimdall_msp.Timing.elapsed (fun () ->
          Metrics.sweep_all ~engine ~production:net ~policies ())
    in
    let stats = Engine.stats engine in
    Engine.shutdown engine;
    (cold_s, warm_s, cold, warm, stats, obs)
  in
  let s1, s1w, cold1, warm1, stats1, _ = run ~cache_dir 1 in
  (* At least 2 so the parallel path is exercised even on a 1-core host
     (where no speedup can be expected). *)
  let n = max 2 (Engine.default_domains ()) in
  let sn, snw, coldn, warmn, statsn, obsn = run n in
  (* A fresh engine pointed at the populated on-disk cache must answer
     every dataplane from disk — zero builds. *)
  let sp, _, coldp, _, statsp, _ = run ~cache_dir 1 in
  let speedup = cold1 /. Float.max 1e-9 coldn in
  Printf.printf "1 domain : cold %.3f s, warm %.3f s\n%s" cold1 warm1
    (Engine.render_stats stats1);
  Printf.printf "%d domains: cold %.3f s, warm %.3f s  (%.2fx cold speedup)\n%s" n
    coldn warmn speedup
    (Engine.render_stats statsn);
  Printf.printf "persistent-cache run: cold %.3f s\n%s" coldp
    (Engine.render_stats statsp);
  (* ---- gate ---- *)
  let verdicts_ok = s1 = sn && s1 = s1w && sn = snw && s1 = sp in
  let cache_hits_ok = statsn.Engine.dataplane_cache_hits > 0 in
  let persistent_ok =
    statsp.Engine.dataplanes_built = 0 && statsp.Engine.dataplane_persistent_hits > 0
  in
  let single_core = Engine.default_domains () < 2 in
  let speedup_ok = speedup > 1.0 in
  let passed =
    verdicts_ok && cache_hits_ok && persistent_ok && (speedup_ok || single_core)
  in
  Printf.printf "verdicts identical across domain counts and cache states: %b\n"
    verdicts_ok;
  Printf.printf "dataplane cache hits > 0: %b\n" cache_hits_ok;
  Printf.printf "warm persistent cache rebuilds nothing: %b\n" persistent_ok;
  if single_core && not speedup_ok then
    Printf.printf "speedup gate skipped: single-core host (%.2fx measured)\n" speedup
  else Printf.printf "N-domain speedup > 1.0: %b (%.2fx)\n" speedup_ok speedup;
  Printf.printf "engine gate: %s\n" (if passed then "PASS" else "FAIL");
  if not passed then gate_failed := true;
  let open Heimdall_json in
  persist_report ~key:"engine"
    (Json.Obj
       [
         ("wall_s_1_domain", Json.Float cold1);
         ("wall_s_1_domain_warm", Json.Float warm1);
         ("wall_s_n_domains", Json.Float coldn);
         ("wall_s_n_domains_warm", Json.Float warmn);
         ("wall_s_persistent_cold", Json.Float coldp);
         ("domains", Json.Int n);
         ("speedup", Json.Float speedup);
         ("verdicts_identical", Json.Bool verdicts_ok);
         ( "gate",
           Json.Obj
             [
               ("passed", Json.Bool passed);
               ("verdicts_identical", Json.Bool verdicts_ok);
               ("dataplane_cache_hits_positive", Json.Bool cache_hits_ok);
               ("persistent_cache_rebuilds_nothing", Json.Bool persistent_ok);
               ("speedup_above_1", Json.Bool speedup_ok);
               ("speedup_gate_skipped_single_core", Json.Bool (single_core && not speedup_ok));
             ] );
         ("stats_1_domain", Engine.stats_to_json stats1);
         ("stats_n_domains", Engine.stats_to_json statsn);
         ("stats_persistent", Engine.stats_to_json statsp);
         ("metrics_n_domains", Heimdall_obs.Metrics.to_json obsn.Heimdall_obs.Obs.metrics);
       ]);
  print_newline ()

let report_lint () =
  print_string "== Lint: static-analysis wall time (1 domain vs N domains) ==\n";
  let n = max 2 (Heimdall_verify.Engine.default_domains ()) in
  let measure name net =
    let run domains =
      let engine = Heimdall_verify.Engine.create ~domains () in
      Heimdall_msp.Timing.elapsed (fun () ->
          Heimdall_lint.Lint.check_network ~engine net)
    in
    let f1, t1 = run 1 in
    let fn, tn = run n in
    Printf.printf
      "  %-10s %d findings; 1 domain: %.4f s; %d domains: %.4f s; identical: %b\n"
      name (List.length f1) t1 n tn
      (List.equal Heimdall_lint.Diagnostic.equal f1 fn);
    (name, List.length f1, t1, tn)
  in
  let enterprise = measure "enterprise" (fst (Experiments.enterprise ())) in
  let university = measure "university" (fst (Experiments.university ())) in
  let rows = [ enterprise; university ] in
  (* Persist into the JSON perf report so the trajectory accrues per run. *)
  let open Heimdall_json in
  persist_report ~key:"lint"
    (Json.Obj
       [
         ("domains", Json.Int n);
         ( "networks",
           Json.List
             (List.map
                (fun (name, findings, t1, tn) ->
                  Json.Obj
                    [
                      ("network", Json.String name);
                      ("findings", Json.Int findings);
                      ("wall_s_1_domain", Json.Float t1);
                      ("wall_s_n_domains", Json.Float tn);
                    ])
                rows) );
       ]);
  print_newline ()

let report_sem () =
  print_string "== Semantic analysis: packet-set algebra + network-wide pass ==\n";
  let n = max 2 (Heimdall_verify.Engine.default_domains ()) in
  let measure name net =
    let open Heimdall_control in
    let acls =
      List.concat_map
        (fun (_, (cfg : Heimdall_config.Ast.t)) -> cfg.acls)
        (Network.configs net)
    in
    let rules =
      List.fold_left (fun acc (a : Heimdall_net.Acl.t) -> acc + List.length a.rules) 0 acls
    in
    (* Algebra kernel: compile every ACL to its exact permit set, then
       run the exact dead-rule analysis (ACL004/ACL005 backbone). *)
    let sets, t_permit =
      Heimdall_msp.Timing.elapsed (fun () ->
          List.map Heimdall_sem.Acl_sem.permit_set acls)
    in
    let cubes =
      List.fold_left (fun acc s -> acc + Heimdall_sem.Packet_set.cube_count s) 0 sets
    in
    let _, t_dead =
      Heimdall_msp.Timing.elapsed (fun () ->
          List.map Heimdall_sem.Acl_sem.dead_rules acls)
    in
    (* Whole-network semantic pass through the engine fan-out, 1 domain
       vs N — the report must be byte-identical across domain counts. *)
    let run domains =
      let engine = Heimdall_verify.Engine.create ~domains () in
      Heimdall_msp.Timing.elapsed (fun () ->
          Heimdall_lint.Lint.check_network ~engine net)
    in
    let f1, t1 = run 1 in
    let fn, tn = run n in
    let identical = List.equal Heimdall_lint.Diagnostic.equal f1 fn in
    Printf.printf
      "  %-10s %d ACLs / %d rules -> %d cubes; permit-sets %.4f s; dead-rules %.4f s\n"
      name (List.length acls) rules cubes t_permit t_dead;
    Printf.printf
      "  %-10s network pass: 1 domain %.4f s; %d domains %.4f s; identical: %b\n"
      name t1 n tn identical;
    let open Heimdall_json in
    Json.Obj
      [
        ("network", Json.String name);
        ("acls", Json.Int (List.length acls));
        ("rules", Json.Int rules);
        ("permit_set_cubes", Json.Int cubes);
        ("wall_s_permit_sets", Json.Float t_permit);
        ("wall_s_dead_rules", Json.Float t_dead);
        ("wall_s_pass_1_domain", Json.Float t1);
        ("wall_s_pass_n_domains", Json.Float tn);
        ("identical_across_domains", Json.Bool identical);
      ]
  in
  let enterprise = measure "enterprise" (fst (Experiments.enterprise ())) in
  let university = measure "university" (fst (Experiments.university ())) in
  let rows = [ enterprise; university ] in
  (* Plan analyzer: static pre-flight over every scenario ticket, 1
     domain vs N (byte-identical), plus the soundness tally — on how
     many tickets the predicted delta contains the exact replay diff. *)
  print_string "== Plan analysis: static pre-flight over scenario tickets ==\n";
  let measure_plan name =
    let open Heimdall_sem in
    let sc = Option.get (Experiments.scenario_of_name name) in
    let tickets =
      List.map
        (fun (issue : Heimdall_msp.Issue.t) ->
          let broken = issue.Heimdall_msp.Issue.inject sc.Experiments.net in
          let slice =
            Heimdall_twin.Twin.slice_nodes ~production:broken
              ~endpoints:issue.Heimdall_msp.Issue.ticket.Heimdall_msp.Ticket.endpoints
              ()
          in
          let spec =
            Heimdall_msp.Priv_gen.for_ticket ~network:broken ~slice
              issue.Heimdall_msp.Issue.ticket
          in
          {
            Heimdall_lint.Plan_lint.label = issue.Heimdall_msp.Issue.name;
            spec;
            scope = slice;
            commands = issue.Heimdall_msp.Issue.fix_commands;
          })
        sc.Experiments.issues
    in
    let run domains =
      let engine = Heimdall_verify.Engine.create ~domains () in
      Heimdall_msp.Timing.elapsed (fun () ->
          Heimdall_lint.Lint.check_plans ~engine ~network:sc.Experiments.net
            ~policies:sc.Experiments.policies tickets)
    in
    let f1, t1 = run 1 in
    let fn, tn = run n in
    let identical = List.equal Heimdall_lint.Diagnostic.equal f1 fn in
    (* Soundness tally: predicted static delta vs the exact ACL diff the
       twin replay produces. *)
    let agree =
      List.fold_left
        (fun acc (issue : Heimdall_msp.Issue.t) ->
          let broken = issue.Heimdall_msp.Issue.inject sc.Experiments.net in
          let em =
            Heimdall_twin.Twin.build ~production:broken
              ~endpoints:issue.Heimdall_msp.Issue.ticket.Heimdall_msp.Ticket.endpoints
              ()
          in
          let session =
            Heimdall_twin.Twin.open_session
              ~privilege:Heimdall_privilege.Privilege.allow_all em
          in
          ignore
            (Heimdall_twin.Session.exec_many session
               issue.Heimdall_msp.Issue.fix_commands);
          let script =
            Plan_sem.script_of_commands issue.Heimdall_msp.Issue.fix_commands
          in
          let a = Plan_sem.analyze ~network:broken script.Plan_sem.script_changes in
          let before = Heimdall_twin.Emulation.baseline em in
          let after = Heimdall_twin.Emulation.network em in
          let open Heimdall_control in
          let exact =
            List.fold_left
              (fun acc node ->
                let find net =
                  Option.bind (Network.config node net) (fun cfg ->
                      Some (cfg : Heimdall_config.Ast.t).acls)
                  |> Option.value ~default:[]
                in
                let names =
                  List.sort_uniq String.compare
                    (List.map
                       (fun (acl : Heimdall_net.Acl.t) -> acl.name)
                       (find before @ find after))
                in
                List.fold_left
                  (fun acc acl_name ->
                    let acl_of net =
                      match Network.config node net with
                      | Some cfg ->
                          Option.value
                            (Heimdall_config.Ast.find_acl acl_name cfg)
                            ~default:(Heimdall_net.Acl.empty acl_name)
                      | None -> Heimdall_net.Acl.empty acl_name
                    in
                    let d =
                      Acl_sem.diff ~before:(acl_of before) ~after:(acl_of after)
                    in
                    Packet_set.union acc
                      (Packet_set.union d.Acl_sem.newly_permitted
                         d.Acl_sem.newly_denied))
                  acc names)
              Packet_set.empty (Network.node_names before)
          in
          if Packet_set.subset exact a.Plan_sem.delta then acc + 1 else acc)
        0 sc.Experiments.issues
    in
    Printf.printf
      "  %-10s %d tickets, %d findings; 1 domain %.4f s; %d domains %.4f s; identical: %b; delta sound: %d/%d\n"
      name (List.length tickets) (List.length f1) t1 n tn identical agree
      (List.length tickets);
    let open Heimdall_json in
    Json.Obj
      [
        ("network", Json.String name);
        ("tickets", Json.Int (List.length tickets));
        ("findings", Json.Int (List.length f1));
        ("wall_s_1_domain", Json.Float t1);
        ("wall_s_n_domains", Json.Float tn);
        ("identical_across_domains", Json.Bool identical);
        ("delta_sound", Json.Int agree);
      ]
  in
  let plan_enterprise = measure_plan "enterprise" in
  let plan_university = measure_plan "university" in
  let plan_rows = [ plan_enterprise; plan_university ] in
  let open Heimdall_json in
  persist_report ~key:"sem"
    (Json.Obj
       [
         ("domains", Json.Int (max 2 (Heimdall_verify.Engine.default_domains ())));
         ("networks", Json.List rows);
         ("plan", Json.List plan_rows);
       ]);
  print_newline ()

let report_ablation_verify () =
  print_string "== Ablation A1: continuous vs batch policy verification ==\n";
  print_string (Experiments.render_ablation_verify (Experiments.ablation_verify ()));
  print_newline ()

let report_ablation_slicer () =
  print_string "== Ablation A2: twin slicing strategies (Figure 5 design space) ==\n";
  print_string (Experiments.render_ablation_slicer (Experiments.ablation_slicer ()));
  print_newline ()

let report_ablation_audit () =
  print_string "== Ablation A3: audit trail and enclave overhead ==\n";
  print_string (Experiments.render_ablation_audit (Experiments.ablation_audit ()));
  print_newline ()

let report_campaign () =
  print_string
    "== Campaign: 40 tickets, 20% hostile, same event stream under both models ==\n";
  print_string (Campaign.render (Experiments.campaign ()));
  print_newline ()

let report_chaos () =
  print_string "== Chaos: seeded fault injection over the enterprise issues ==\n";
  let seed = 42 in
  let sc =
    match Experiments.scenario_of_name "enterprise" with
    | Some sc -> sc
    | None -> assert false
  in
  let run_all domains =
    let engine = Heimdall_verify.Engine.create ~domains () in
    Heimdall_msp.Timing.elapsed (fun () ->
        List.map
          (fun issue -> Chaos.run ~engine ~scenario:sc ~issue ~seed ())
          sc.Experiments.issues)
  in
  let results1, wall1 = run_all 1 in
  let n = max 2 (Heimdall_verify.Engine.default_domains ()) in
  let resultsn, walln = run_all n in
  List.iter (fun r -> print_string (Chaos.render r)) resultsn;
  let head (r : Chaos.result) =
    Heimdall_enforcer.Audit.head r.Chaos.outcome.Heimdall_enforcer.Enforcer.audit
  in
  let deterministic =
    List.equal (fun a b -> head a = head b) results1 resultsn
  in
  Printf.printf
    "1 domain: %.3f s; %d domains: %.3f s; audit heads identical: %b\n" wall1 n
    walln deterministic;
  let open Heimdall_json in
  persist_report ~key:"chaos"
    (Json.Obj
       [
         ("seed", Json.Int seed);
         ("wall_s_1_domain", Json.Float wall1);
         ("wall_s_n_domains", Json.Float walln);
         ("domains", Json.Int n);
         ("deterministic_across_domains", Json.Bool deterministic);
         ( "issues",
           Json.List
             (List.map
                (fun (r : Chaos.result) ->
                  let retries, rolled_back =
                    match r.Chaos.outcome.Heimdall_enforcer.Enforcer.apply with
                    | Some a ->
                        ( List.length a.Heimdall_enforcer.Applier.retries,
                          a.Heimdall_enforcer.Applier.rollback <> None )
                    | None -> (0, false)
                  in
                  Json.Obj
                    [
                      ("issue", Json.String r.Chaos.issue);
                      ("faults_fired", Json.Int (List.length r.Chaos.occurrences));
                      ( "kinds",
                        Json.List
                          (List.map (fun k -> Json.String k) r.Chaos.kinds) );
                      ("twin_retries", Json.Int r.Chaos.twin_retries);
                      ("apply_retries", Json.Int retries);
                      ("rolled_back", Json.Bool rolled_back);
                      ( "surviving_violations",
                        Json.Int (List.length r.Chaos.surviving_violations) );
                      ("audit_head", Json.String (head r));
                      ("passed", Json.Bool (Chaos.passed r));
                    ])
                resultsn) );
       ]);
  print_newline ()

let report_obs () =
  print_string "== Observability: workflow overhead with the Watchtower on vs off ==\n";
  let open Heimdall_verify in
  let sc =
    match Experiments.scenario_of_name "enterprise" with
    | Some sc -> sc
    | None -> assert false
  in
  (* One replay = every enterprise issue through the Heimdall workflow on
     a single-domain engine (so the measurement is not at the mercy of
     pool scheduling).  With obs on, the full Watchtower surface is live:
     spans, labeled metrics, events, plus one runtime-sampler tick. *)
  let replay ?obs () =
    let engine = Engine.create ~domains:1 ?obs () in
    let runs =
      List.map
        (fun issue ->
          Heimdall_msp.Workflow.run_heimdall ~engine
            ~production:sc.Experiments.net ~policies:sc.Experiments.policies
            ~issue ())
        sc.Experiments.issues
    in
    (match obs with
    | Some o ->
        let runtime = Heimdall_obs.Runtime.create o in
        Heimdall_obs.Runtime.add_sampler runtime (Engine.runtime_sampler engine);
        Heimdall_obs.Runtime.sample runtime
    | None -> ());
    Engine.shutdown engine;
    runs
  in
  (* Verdict fingerprint: what must be byte-identical with obs on/off.
     (Audit heads legitimately differ — the enforcer appends the span
     correlation record only when a tracer is present.) *)
  let fingerprint runs =
    List.map
      (fun (r : Heimdall_msp.Workflow.run) ->
        ( r.Heimdall_msp.Workflow.issue,
          r.Heimdall_msp.Workflow.resolved,
          r.Heimdall_msp.Workflow.denied,
          Heimdall_control.Network.digest r.Heimdall_msp.Workflow.final_network ))
      runs
  in
  let reps = 5 in
  (* Min-of-N: the least noisy location estimator for short walls. *)
  let min_wall f =
    let rec go best i =
      if i = 0 then best
      else
        let _, t = Heimdall_msp.Timing.elapsed (fun () -> ignore (f ())) in
        go (Float.min best t) (i - 1)
    in
    go infinity reps
  in
  let fp_off = fingerprint (replay ()) in
  let fp_on = fingerprint (replay ~obs:(Heimdall_obs.Obs.create ()) ()) in
  let off_wall = min_wall (fun () -> replay ()) in
  let on_wall = min_wall (fun () -> replay ~obs:(Heimdall_obs.Obs.create ()) ()) in
  let overhead =
    if off_wall <= 0.0 then 0.0 else (on_wall -. off_wall) /. off_wall
  in
  let verdicts_ok = fp_off = fp_on in
  (* Gate: instrumentation must stay under 10% — with a 10 ms absolute
     noise floor so a sub-100 ms baseline cannot flake the gate on
     scheduler jitter. *)
  let within_budget = overhead <= 0.10 || on_wall -. off_wall < 0.010 in
  let passed = verdicts_ok && within_budget in
  Printf.printf "obs off: %.4f s (min of %d); obs on: %.4f s (min of %d)\n" off_wall
    reps on_wall reps;
  Printf.printf "overhead: %+.1f%% (budget: 10%%)\n" (overhead *. 100.0);
  Printf.printf "verdicts identical with obs on/off: %b\n" verdicts_ok;
  Printf.printf "obs gate: %s\n" (if passed then "PASS" else "FAIL");
  if not passed then gate_failed := true;
  let open Heimdall_json in
  persist_report ~key:"obs"
    (Json.Obj
       [
         ("reps", Json.Int reps);
         ("wall_s_obs_off", Json.Float off_wall);
         ("wall_s_obs_on", Json.Float on_wall);
         ("overhead_fraction", Json.Float overhead);
         ("verdicts_identical", Json.Bool verdicts_ok);
         ( "gate",
           Json.Obj
             [
               ("passed", Json.Bool passed);
               ("verdicts_identical", Json.Bool verdicts_ok);
               ("overhead_within_10_percent", Json.Bool within_budget);
             ] );
       ]);
  print_newline ()

let report_containment () =
  print_string "== Attack containment (motivating incidents, paper section 2.2) ==\n";
  print_string (Experiments.render_containment (Experiments.attack_containment ()));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure kernel    *)
(* ------------------------------------------------------------------ *)

let bench_table1 =
  (* Kernel behind Table 1: build a network and mine its policies. *)
  Test.make ~name:"table1/build+mine-enterprise"
    (Staged.stage (fun () ->
         let net = Enterprise.build () in
         ignore (Enterprise.policies net)))

let bench_fig7 =
  (* Kernel behind Figure 7: one full Heimdall workflow (vlan issue). *)
  let net, policies = Experiments.enterprise () in
  let issue = List.hd (Enterprise.issues net) in
  Test.make ~name:"fig7/heimdall-workflow-vlan"
    (Staged.stage (fun () ->
         ignore (Heimdall_msp.Workflow.run_heimdall ~production:net ~policies ~issue ())))

let bench_fig8 =
  let net, policies = Experiments.enterprise () in
  Test.make ~name:"fig8/sweep-enterprise"
    (Staged.stage (fun () -> ignore (Metrics.sweep_all ~production:net ~policies ())))

let bench_fig9 =
  let net, policies = Experiments.university () in
  Test.make ~name:"fig9/sweep-university-heimdall"
    (Staged.stage (fun () ->
         ignore (Metrics.sweep ~production:net ~policies Metrics.Heimdall_twin)))

let bench_verify =
  let net, policies = Experiments.university () in
  Test.make ~name:"ablation-verify/check-175-policies"
    (Staged.stage (fun () ->
         let dp = Heimdall_control.Dataplane.compute net in
         ignore (Heimdall_verify.Policy.check_all dp policies)))

let bench_slicer =
  let net, _ = Experiments.university () in
  Test.make ~name:"ablation-slicer/task-slice"
    (Staged.stage (fun () ->
         ignore
           (Heimdall_twin.Slicer.slice Heimdall_twin.Slicer.Task net
              ~endpoints:[ "dorm1"; "cs1" ])))

let bench_audit =
  Test.make ~name:"ablation-audit/append100+verify"
    (Staged.stage (fun () ->
         let open Heimdall_enforcer in
         let audit = ref Audit.empty in
         for i = 1 to 100 do
           audit :=
             Audit.append ~actor:"t" ~action:"acl.rule" ~resource:"r"
               ~detail:(string_of_int i) ~verdict:"allowed" !audit
         done;
         assert (Audit.verify !audit = Ok ())))

let bench_dataplane =
  let net, _ = Experiments.university () in
  Test.make ~name:"micro/dataplane-university"
    (Staged.stage (fun () -> ignore (Heimdall_control.Dataplane.compute net)))

let bench_trace =
  let net, _ = Experiments.enterprise () in
  let dp = Heimdall_control.Dataplane.compute net in
  let flow =
    Heimdall_net.Flow.icmp
      (Heimdall_net.Ipv4.of_string "10.1.10.11")
      (Heimdall_net.Ipv4.of_string "10.2.20.11")
  in
  Test.make ~name:"micro/trace-one-flow"
    (Staged.stage (fun () -> ignore (Heimdall_verify.Trace.trace dp flow)))

let bench_privilege =
  let spec =
    Heimdall_privilege.Dsl.parse
      "allow show.*, diag.* on *;\nallow interface.up on r1, r2;\ndeny system.* on *;\n"
  in
  Test.make ~name:"micro/privilege-eval"
    (Staged.stage (fun () ->
         ignore
           (Heimdall_privilege.Privilege.allows spec
              (Heimdall_privilege.Privilege.request "interface.up" "r2"))))

let bench_sha256 =
  let payload = String.make 4096 'x' in
  Test.make ~name:"micro/sha256-4KiB"
    (Staged.stage (fun () -> ignore (Heimdall_enforcer.Sha256.hex payload)))

let all_benches () =
  [
    bench_table1;
    bench_fig7;
    bench_fig8;
    bench_fig9;
    bench_verify;
    bench_slicer;
    bench_audit;
    bench_dataplane;
    bench_trace;
    bench_privilege;
    bench_sha256;
  ]

let run_benchmarks () =
  print_string "== Bechamel micro-benchmarks (time per run) ==\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns_per_run :: _) ->
              let s = ns_per_run /. 1e9 in
              if s >= 0.1 then Printf.printf "  %-42s %10.3f s/run\n" name s
              else if s >= 1e-4 then Printf.printf "  %-42s %10.3f ms/run\n" name (s *. 1e3)
              else Printf.printf "  %-42s %10.3f us/run\n" name (s *. 1e6)
          | Some [] | None -> Printf.printf "  %-42s (no estimate)\n" name)
        analyzed)
    (all_benches ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fleet scale                                                         *)
(* ------------------------------------------------------------------ *)

(* Generated fleets at three sizes (largest 500+ devices), each through
   generation, dataplane, policy check and lint with wall times, peak
   RSS, engine cache stats, and a 1-vs-N-domain verdict identity check;
   the two smaller fleets also push an injected issue through the full
   workflow.  Everything gates: a nondeterministic generator, a policy
   violation, a lint error or a cross-domain verdict drift fails the
   bench (and CI). *)
let report_scale () =
  let open Heimdall_verify in
  let open Heimdall_control in
  print_string "== Fleet scale: generated fleets vs device count ==\n";
  let n = max 2 (Engine.default_domains ()) in
  let single_core = Engine.default_domains () < 2 in
  let all_ok = ref true in
  let sections =
    List.map
      (fun (spec, run_issue) ->
        let params =
          match Fleetgen.spec_of_string spec with
          | Ok p -> p
          | Error m -> failwith ("bad bench spec " ^ spec ^ ": " ^ m)
        in
        let fleet, gen_s =
          Heimdall_msp.Timing.elapsed (fun () -> Fleetgen.generate params)
        in
        let devices = Fleetgen.device_count fleet in
        let links = Fleetgen.link_count fleet in
        let deterministic =
          Network.digest fleet.Fleetgen.net
          = Network.digest (Fleetgen.generate params).Fleetgen.net
        in
        let run domains =
          let engine = Engine.create ~domains () in
          let dp, dp_s =
            Heimdall_msp.Timing.elapsed (fun () ->
                Engine.dataplane engine fleet.Fleetgen.net)
          in
          let report, check_s =
            Heimdall_msp.Timing.elapsed (fun () ->
                Policy.check_all ~engine dp fleet.Fleetgen.policies)
          in
          let stats = Engine.stats engine in
          Engine.shutdown engine;
          (dp_s, check_s, report, stats)
        in
        let dp_s1, check_s1, report1, _ = run 1 in
        let dp_sn, check_sn, reportn, statsn = run n in
        let fingerprint (r : Policy.report) =
          ( r.Policy.total,
            List.map
              (fun (p, reason) -> (Policy.to_string p, reason))
              r.Policy.violations )
        in
        let verdicts_ok = fingerprint report1 = fingerprint reportn in
        let findings, lint_s =
          Heimdall_msp.Timing.elapsed (fun () ->
              Heimdall_lint.Lint.check_network fleet.Fleetgen.net)
        in
        let lint_errors =
          List.length
            (List.filter
               (fun (d : Heimdall_lint.Diagnostic.t) ->
                 d.severity = Heimdall_lint.Diagnostic.Error)
               findings)
        in
        let workflow_s =
          if not run_issue then None
          else
            let issue = List.hd fleet.Fleetgen.issues in
            let run, s =
              Heimdall_msp.Timing.elapsed (fun () ->
                  Heimdall_msp.Workflow.run_heimdall
                    ~production:fleet.Fleetgen.net
                    ~policies:fleet.Fleetgen.policies ~issue ())
            in
            if not run.Heimdall_msp.Workflow.resolved then all_ok := false;
            Some s
        in
        let speedup = dp_s1 /. Float.max 1e-9 dp_sn in
        let rss_kb = Option.value ~default:0 (Fleetgen.peak_rss_kb ()) in
        let ok =
          deterministic && verdicts_ok && lint_errors = 0
          && report1.Policy.violations = []
        in
        if not ok then all_ok := false;
        Printf.printf
          "%-38s %4d dev %4d links  gen %6.3f s  dp %6.3f s  check %6.3f s  \
           lint %6.3f s%s\n"
          spec devices links gen_s dp_s1 check_s1 lint_s
          (match workflow_s with
          | Some s -> Printf.sprintf "  workflow %6.3f s" s
          | None -> "");
        Printf.printf
          "  deterministic: %b  verdicts 1=%d domains: %b  violations: %d  \
           lint errors: %d  dp speedup %.2fx%s  peak RSS %.1f MB\n"
          deterministic n verdicts_ok
          (List.length report1.Policy.violations)
          lint_errors speedup
          (if single_core then " (single-core host)" else "")
          (float_of_int rss_kb /. 1024.);
        let open Heimdall_json in
        Json.Obj
          ([
             ("spec", Json.String spec);
             ("devices", Json.Int devices);
             ("links", Json.Int links);
             ("policies", Json.Int report1.Policy.total);
             ("wall_s_generate", Json.Float gen_s);
             ("wall_s_dataplane_1_domain", Json.Float dp_s1);
             ("wall_s_dataplane_n_domains", Json.Float dp_sn);
             ("wall_s_check_1_domain", Json.Float check_s1);
             ("wall_s_check_n_domains", Json.Float check_sn);
             ("wall_s_lint", Json.Float lint_s);
             ("dataplane_speedup",
              if single_core then Json.String "skipped-single-core"
              else Json.Float speedup);
             ("deterministic", Json.Bool deterministic);
             ("verdicts_identical_across_domains", Json.Bool verdicts_ok);
             ("violations", Json.Int (List.length report1.Policy.violations));
             ("lint_errors", Json.Int lint_errors);
             ("peak_rss_kb", Json.Int rss_kb);
             ("engine_stats_n_domains", Engine.stats_to_json statsn);
           ]
          @
          match workflow_s with
          | Some s -> [ ("wall_s_workflow_one_issue", Json.Float s) ]
          | None -> []))
      [
        ("fat-tree:k=4", true);
        ("fat-tree:k=8", true);
        ("multi-campus:campuses=20:buildings=8", false);
      ]
  in
  Printf.printf "scale gate: %s\n" (if !all_ok then "PASS" else "FAIL");
  if not !all_ok then gate_failed := true;
  let open Heimdall_json in
  persist_report ~key:"scale"
    (Json.Obj
       [
         ("domains", Json.Int n);
         ("passed", Json.Bool !all_ok);
         ("sizes", Json.List sections);
       ]);
  print_newline ()

let report_poltree () =
  let open Heimdall_verify in
  let open Heimdall_poltree in
  print_string "== Policy tree: compile + POL analysis vs fleet size ==\n";
  let n = max 2 (Engine.default_domains ()) in
  let all_ok = ref true in
  let rule_registry =
    List.filter
      (fun (r : Heimdall_lint.Lint.rule) -> r.family = Heimdall_lint.Lint.Pol)
      Heimdall_lint.Lint.rules
  in
  let sections =
    List.map
      (fun spec ->
        let params =
          match Fleetgen.spec_of_string spec with
          | Ok p -> p
          | Error m -> failwith ("bad bench spec " ^ spec ^ ": " ^ m)
        in
        let fleet = Fleetgen.generate params in
        let compiled, compile_s =
          Heimdall_msp.Timing.elapsed (fun () ->
              Compile.compile_exn fleet.Fleetgen.poltree)
        in
        let run domains =
          let engine = Engine.create ~domains () in
          let findings, s =
            Heimdall_msp.Timing.elapsed (fun () ->
                Analysis.check ~engine ~policies:fleet.Fleetgen.policies compiled)
          in
          Engine.shutdown engine;
          (findings, s)
        in
        let findings1, check_s1 = run 1 in
        let findingsn, check_sn = run n in
        let identical = findings1 = findingsn in
        let pol004_errors =
          List.length
            (List.filter
               (fun (d : Heimdall_lint.Diagnostic.t) ->
                 d.code = "POL004" && d.severity = Heimdall_lint.Diagnostic.Error)
               findings1)
        in
        let per_code code =
          List.length
            (List.filter
               (fun (d : Heimdall_lint.Diagnostic.t) -> d.code = code)
               findings1)
        in
        let ok = identical && pol004_errors = 0 in
        if not ok then all_ok := false;
        Printf.printf
          "%-38s %3d nodes %3d leaves  compile %6.3f s  check(1) %6.3f s  \
           check(%d) %6.3f s\n"
          spec
          (List.length compiled.Compile.nodes)
          (List.length compiled.Compile.leaves)
          compile_s check_s1 n check_sn;
        Printf.printf
          "  verdicts 1=%d domains: %b  POL004 errors: %d  findings: %d\n" n
          identical pol004_errors (List.length findings1);
        let open Heimdall_json in
        Json.Obj
          [
            ("spec", Json.String spec);
            ("nodes", Json.Int (List.length compiled.Compile.nodes));
            ("leaves", Json.Int (List.length compiled.Compile.leaves));
            ("rules", Json.Int (Poltree.rule_count fleet.Fleetgen.poltree));
            ("wall_s_compile", Json.Float compile_s);
            ("wall_s_check_1_domain", Json.Float check_s1);
            ("wall_s_check_n_domains", Json.Float check_sn);
            ("findings_identical_across_domains", Json.Bool identical);
            ("pol004_errors", Json.Int pol004_errors);
            ( "findings_per_rule",
              Json.Obj
                (List.map
                   (fun (r : Heimdall_lint.Lint.rule) ->
                     (r.code, Json.Int (per_code r.code)))
                   rule_registry) );
          ])
      [ "fat-tree:k=4"; "fat-tree:k=8"; "multi-campus:campuses=20:buildings=8" ]
  in
  Printf.printf "poltree gate: %s\n" (if !all_ok then "PASS" else "FAIL");
  if not !all_ok then gate_failed := true;
  let open Heimdall_json in
  let families =
    List.sort_uniq compare
      (List.map
         (fun (r : Heimdall_lint.Lint.rule) -> r.family)
         Heimdall_lint.Lint.rules)
  in
  persist_report ~key:"poltree"
    (Json.Obj
       [
         ("domains", Json.Int n);
         ("passed", Json.Bool !all_ok);
         ("rule_registry_total", Json.Int (List.length Heimdall_lint.Lint.rules));
         ("rule_registry_families", Json.Int (List.length families));
         ("rule_registry_pol", Json.Int (List.length rule_registry));
         ("fleets", Json.List sections);
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let reports =
  [
    ("table1", report_table1);
    ("fig7", report_fig7);
    ("fig7-university", report_fig7_university);
    ("fig8", report_fig8);
    ("fig9", report_fig9);
    ("engine", report_engine);
    ("lint", report_lint);
    ("sem", report_sem);
    ("ablation-verify", report_ablation_verify);
    ("ablation-slicer", report_ablation_slicer);
    ("ablation-audit", report_ablation_audit);
    ("containment", report_containment);
    ("campaign", report_campaign);
    ("chaos", report_chaos);
    ("scale", report_scale);
    ("poltree", report_poltree);
    ("obs", report_obs);
    ("micro", run_benchmarks);
  ]

let () =
  (match Array.to_list Sys.argv with
  | _ :: [] -> List.iter (fun (_, f) -> f ()) reports
  | _ :: names ->
      List.iter
        (fun name ->
          match List.assoc_opt name reports with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown report %S; available: %s\n" name
                (String.concat ", " (List.map fst reports));
              exit 1)
        names
  | [] -> assert false);
  if !gate_failed then exit 1
