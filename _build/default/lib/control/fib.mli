(** Routes and forwarding tables (FIBs). *)

open Heimdall_net

type protocol = Connected | Static | Ospf | Bgp

val protocol_to_string : protocol -> string

val admin_distance : protocol -> int
(** Connected 0, Bgp 20, Static 1 (overridable per route), Ospf 110. *)

type route = {
  prefix : Prefix.t;
  next_hop : Ipv4.t option;  (** [None] means directly connected. *)
  out_iface : string;
  protocol : protocol;
  distance : int;
  metric : int;
}

val route_to_string : route -> string
val pp_route : Format.formatter -> route -> unit

type t
(** A FIB: best route per prefix, with longest-prefix-match lookup. *)

val empty : t

val of_candidates : route list -> t
(** Select the best route per prefix (lowest administrative distance, then
    lowest metric, then a deterministic tiebreak) and build the FIB. *)

val lookup : Ipv4.t -> t -> route option
(** Longest-prefix match. *)

val routes : t -> route list
(** All installed routes in prefix order. *)

val route_count : t -> int
val pp : Format.formatter -> t -> unit
