open Heimdall_net
open Heimdall_config

type error = { where : string; line : int; message : string }

let error_to_string e =
  if e.line > 0 then Printf.sprintf "%s:%d: %s" e.where e.line e.message
  else Printf.sprintf "%s: %s" e.where e.message

let err where line fmt =
  Printf.ksprintf (fun message -> Error { where; line; message }) fmt

let ( let* ) = Result.bind

let endpoint_of_string where lineno s =
  match String.index_opt s ':' with
  | Some i when i > 0 && i < String.length s - 1 ->
      Ok
        {
          Topology.node = String.sub s 0 i;
          iface = String.sub s (i + 1) (String.length s - i - 1);
        }
  | _ -> err where lineno "malformed endpoint %S (want node:iface)" s

let parse_topology text =
  let where = "topology" in
  let lines = String.split_on_char '\n' text in
  let rec go topo lineno = function
    | [] -> Ok topo
    | raw :: rest -> (
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let words =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
        in
        match words with
        | [] -> go topo (lineno + 1) rest
        | [ "node"; name; kind ] -> (
            match Topology.node_kind_of_string kind with
            | None -> err where lineno "unknown node kind %S" kind
            | Some kind -> (
                match Topology.add_node name kind topo with
                | topo -> go topo (lineno + 1) rest
                | exception Invalid_argument m -> err where lineno "%s" m))
        | [ "link"; a; b ] -> (
            let* ea = endpoint_of_string where lineno a in
            let* eb = endpoint_of_string where lineno b in
            match Topology.add_link ea eb topo with
            | topo -> go topo (lineno + 1) rest
            | exception Invalid_argument m -> err where lineno "%s" m)
        | w :: _ -> err where lineno "unknown directive %S" w)
  in
  go Topology.empty 1 lines

let load ~topology ~configs =
  let* topo = parse_topology topology in
  let rec parse_configs acc = function
    | [] -> Ok (List.rev acc)
    | (name, text) :: rest -> (
        match Parser.parse_result text with
        | Ok cfg -> parse_configs ((name, cfg) :: acc) rest
        | Error (line, message) -> Error { where = name; line; message })
  in
  let* parsed = parse_configs [] configs in
  match Network.make topo parsed with
  | net -> (
      match Network.validate net with
      | Ok () -> Ok net
      | Error m -> Error { where = "network"; line = 0; message = m })
  | exception Invalid_argument m -> Error { where = "network"; line = 0; message = m }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_dir dir =
  let topo_path = Filename.concat dir "topology.txt" in
  match read_file topo_path with
  | exception Sys_error m -> Error { where = topo_path; line = 0; message = m }
  | topology -> (
      let* topo = parse_topology topology in
      let cfg_dir = Filename.concat dir "configs" in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | node :: rest -> (
            let path = Filename.concat cfg_dir (node ^ ".cfg") in
            match read_file path with
            | text -> collect ((node, text) :: acc) rest
            | exception Sys_error m -> Error { where = path; line = 0; message = m })
      in
      let* configs = collect [] (Topology.node_names topo) in
      load ~topology ~configs)

let save_dir dir net =
  let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  mkdir dir;
  mkdir (Filename.concat dir "configs");
  let write path content =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content)
  in
  let topo = Network.topology net in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (n : Topology.node) ->
      Buffer.add_string buf
        (Printf.sprintf "node %s %s\n" n.name (Topology.node_kind_to_string n.kind)))
    (Topology.nodes topo);
  List.iter
    (fun (l : Topology.link) ->
      Buffer.add_string buf
        (Printf.sprintf "link %s %s\n"
           (Topology.endpoint_to_string l.a)
           (Topology.endpoint_to_string l.b)))
    (List.rev (Topology.links topo));
  write (Filename.concat dir "topology.txt") (Buffer.contents buf);
  List.iter
    (fun (name, cfg) ->
      write
        (Filename.concat (Filename.concat dir "configs") (name ^ ".cfg"))
        (Printer.render cfg))
    (Network.configs net)
