open Heimdall_net
open Heimdall_config
module Smap = Map.Make (String)

type t = { network : Network.t; l2 : L2.t; fibs : Fib.t Smap.t }

let connected_routes net node =
  match Network.config node net with
  | None -> []
  | Some cfg ->
      List.filter_map
        (fun (i : Ast.interface) ->
          match i.addr with
          | Some a when i.enabled ->
              Some
                {
                  Fib.prefix = Ifaddr.subnet a;
                  next_hop = None;
                  out_iface = i.if_name;
                  protocol = Fib.Connected;
                  distance = Fib.admin_distance Fib.Connected;
                  metric = 0;
                }
          | _ -> None)
        cfg.interfaces

let resolve_next_hop net node nh =
  (* The next hop must sit inside a connected (enabled) subnet; the route
     then leaves through that interface. *)
  match Network.config node net with
  | None -> None
  | Some cfg ->
      List.find_map
        (fun (i : Ast.interface) ->
          match i.addr with
          | Some a when i.enabled && Prefix.contains (Ifaddr.subnet a) nh -> Some i.if_name
          | _ -> None)
        cfg.interfaces

let static_routes net node =
  match Network.config node net with
  | None -> []
  | Some cfg ->
      let explicit =
        List.filter_map
          (fun (r : Ast.static_route) ->
            match resolve_next_hop net node r.sr_next_hop with
            | Some out_iface ->
                Some
                  {
                    Fib.prefix = r.sr_prefix;
                    next_hop = Some r.sr_next_hop;
                    out_iface;
                    protocol = Fib.Static;
                    distance = r.sr_distance;
                    metric = 0;
                  }
            | None -> None)
          cfg.static_routes
      in
      let gateway =
        match cfg.default_gateway with
        | None -> []
        | Some gw -> (
            match resolve_next_hop net node gw with
            | Some out_iface ->
                [
                  {
                    Fib.prefix = Prefix.any;
                    next_hop = Some gw;
                    out_iface;
                    protocol = Fib.Static;
                    distance = 1;
                    metric = 0;
                  };
                ]
            | None -> [])
      in
      explicit @ gateway

let compute network =
  let l2 = L2.compute network in
  let ospf = Ospf.all_routes network l2 in
  let bgp = Bgp.all_routes network l2 in
  let fibs =
    List.fold_left
      (fun acc node ->
        let candidates =
          connected_routes network node
          @ static_routes network node
          @ Option.value (List.assoc_opt node ospf) ~default:[]
          @ Option.value (List.assoc_opt node bgp) ~default:[]
        in
        Smap.add node (Fib.of_candidates candidates) acc)
      Smap.empty (Network.node_names network)
  in
  { network; l2; fibs }

let network t = t.network
let l2 t = t.l2
let fib node t = Option.value (Smap.find_opt node t.fibs) ~default:Fib.empty

let l3_neighbour t node addr =
  match Network.owner_of_address addr t.network with
  | None -> None
  | Some (peer_node, peer_iface) ->
      let peer_ep = { Topology.node = peer_node; iface = peer_iface } in
      let my_ifaces =
        match Network.config node t.network with
        | None -> []
        | Some cfg -> cfg.interfaces
      in
      if
        List.exists
          (fun (i : Ast.interface) ->
            i.enabled
            && L2.same_domain { Topology.node; iface = i.if_name } peer_ep t.l2)
          my_ifaces
      then Some (peer_node, peer_iface)
      else None

let route_counts t =
  Smap.bindings t.fibs |> List.map (fun (n, f) -> (n, Fib.route_count f))
