open Heimdall_net
open Heimdall_config

type iface = { router : string; iface : string; addr : Ifaddr.t; area : int; cost : int }

let default_cost = 10

let enabled_interfaces net =
  List.concat_map
    (fun (router, (cfg : Ast.t)) ->
      match cfg.ospf with
      | None -> []
      | Some o ->
          List.filter_map
            (fun (i : Ast.interface) ->
              match i.addr with
              | Some addr when i.enabled -> (
                  let statement =
                    List.find_opt
                      (fun (p, _) -> Prefix.contains p (Ifaddr.address addr))
                      o.networks
                  in
                  match statement with
                  | None -> None
                  | Some (_, stmt_area) ->
                      let area = Option.value i.ospf_area ~default:stmt_area in
                      let cost = Option.value i.ospf_cost ~default:default_cost in
                      Some { router; iface = i.if_name; addr; area; cost })
              | _ -> None)
            cfg.interfaces)
    (Network.configs net)

let adjacencies net l2 =
  let ifaces = enabled_interfaces net in
  let rec pairs = function
    | [] -> []
    | a :: rest ->
        List.filter_map
          (fun b ->
            if
              a.router <> b.router && a.area = b.area
              && Ifaddr.same_subnet a.addr b.addr
              && L2.same_domain
                   { Topology.node = a.router; iface = a.iface }
                   { Topology.node = b.router; iface = b.iface }
                   l2
            then Some (if a.router < b.router then (a, b) else (b, a))
            else None)
          rest
        @ pairs rest
  in
  pairs ifaces

(* The routing computation below is a simplified SPF + inter-area summary
   propagation:
   1. build one weighted graph per area from the formed adjacencies;
   2. every attached subnet is "originated" into its area at its interface
      cost (default-originate routers originate 0.0.0.0/0 at cost 1);
   3. propagate summaries across area border routers to a fixpoint,
      keeping for each (router, prefix) the best metric and the first-hop
      neighbour it was learned through. *)

type learned = { metric : int; via : (string * int) option (* neighbour, area *) }

let all_routes net l2 =
  let ifaces = enabled_interfaces net in
  let adjs = adjacencies net l2 in
  let areas =
    List.fold_left (fun acc i -> if List.mem i.area acc then acc else i.area :: acc) [] ifaces
  in
  (* Per-area adjacency graphs. *)
  let graph_of_area area =
    List.fold_left
      (fun g (a, b) ->
        if a.area = area then
          g
          |> Graph.add_edge ~src:a.router ~dst:b.router ~weight:a.cost ~label:()
          |> Graph.add_edge ~src:b.router ~dst:a.router ~weight:b.cost ~label:()
        else g)
      Graph.empty adjs
  in
  let area_graphs = List.map (fun a -> (a, graph_of_area a)) areas in
  (* Distance/path tables, computed lazily per (area, source). *)
  let sp_cache : (int * string, (string, int * string list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let sp area src =
    match Hashtbl.find_opt sp_cache (area, src) with
    | Some tbl -> tbl
    | None ->
        let g = List.assoc area area_graphs in
        let tbl = Graph.shortest_paths src g in
        Hashtbl.replace sp_cache (area, src) tbl;
        tbl
  in
  let routers_in_area area =
    List.filter_map (fun i -> if i.area = area then Some i.router else None) ifaces
    |> List.sort_uniq String.compare
  in
  let areas_of r =
    List.filter_map (fun i -> if i.router = r then Some i.area else None) ifaces
    |> List.sort_uniq Int.compare
  in
  (* Origins: (prefix, originating router, area, origin cost). *)
  let origins =
    List.map (fun i -> (Ifaddr.subnet i.addr, i.router, i.area, i.cost)) ifaces
    @ List.concat_map
        (fun (r, (cfg : Ast.t)) ->
          match cfg.ospf with
          | Some o when o.default_originate ->
              List.map (fun a -> (Prefix.any, r, a, 1)) (areas_of r)
          | _ -> [])
        (Network.configs net)
  in
  (* best.(router)(prefix) -> learned *)
  let best : (string * string, learned) Hashtbl.t = Hashtbl.create 64 in
  let update r prefix (cand : learned) =
    let key = (r, Prefix.to_string prefix) in
    match Hashtbl.find_opt best key with
    | Some cur when cur.metric <= cand.metric -> false
    | _ ->
        Hashtbl.replace best key cand;
        true
  in
  let learn_via_area area advertiser prefix base_metric =
    (* Every router in [area] can learn [prefix] through [advertiser]. *)
    List.fold_left
      (fun changed r ->
        if r = advertiser then changed
        else
          match Hashtbl.find_opt (sp area r) advertiser with
          | None -> changed
          | Some (d, path) ->
              let via =
                match path with _ :: hop :: _ -> Some (hop, area) | _ -> None
              in
              if via = None then changed
              else update r prefix { metric = d + base_metric; via } || changed)
      false (routers_in_area area)
  in
  let iterate () =
    let changed = ref false in
    (* Seed: intra-area. *)
    List.iter
      (fun (prefix, origin, area, cost) ->
        if learn_via_area area origin prefix cost then changed := true;
        (* The originator itself reaches the prefix at its own cost —
           recorded so ABRs can re-advertise subnets they are attached to. *)
        if
          update origin prefix { metric = cost; via = None }
        then changed := true)
      origins;
    (* Propagate through ABRs. *)
    let snapshot = Hashtbl.fold (fun k v acc -> (k, v) :: acc) best [] in
    List.iter
      (fun ((r, prefix_s), l) ->
        let r_areas = areas_of r in
        if List.length r_areas > 1 then
          let prefix = Prefix.of_string prefix_s in
          let learned_area = match l.via with Some (_, a) -> Some a | None -> None in
          List.iter
            (fun b ->
              if learned_area <> Some b then
                if learn_via_area b r prefix l.metric then changed := true)
            r_areas)
      snapshot;
    !changed
  in
  let rec fixpoint n = if n > 0 && iterate () then fixpoint (n - 1) in
  fixpoint 16;
  (* Materialise per-router routes. *)
  let subnets_of router =
    List.filter_map
      (fun i -> if i.router = router then Some (Ifaddr.subnet i.addr) else None)
      ifaces
  in
  (* Adjacency detail lookup: (router, neighbour) -> egress iface, next-hop
     address; choose the lowest-cost egress on ties. *)
  let edge_detail router neighbour area =
    let candidates =
      List.filter_map
        (fun (a, b) ->
          if a.router = router && b.router = neighbour && a.area = area then Some (a, b)
          else if b.router = router && a.router = neighbour && b.area = area then
            Some (b, a)
          else None)
        adjs
    in
    match List.sort (fun (a, _) (b, _) -> Int.compare a.cost b.cost) candidates with
    | (mine, theirs) :: _ -> Some (mine.iface, Ifaddr.address theirs.addr)
    | [] -> None
  in
  let per_router = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (router, prefix_s) l ->
      let prefix = Prefix.of_string prefix_s in
      if not (List.exists (Prefix.equal prefix) (subnets_of router)) then
        match l.via with
        | None -> ()
        | Some (hop, area) -> (
            match edge_detail router hop area with
            | None -> ()
            | Some (out_iface, next_hop) ->
                let route =
                  {
                    Fib.prefix;
                    next_hop = Some next_hop;
                    out_iface;
                    protocol = Fib.Ospf;
                    distance = Fib.admin_distance Fib.Ospf;
                    metric = l.metric;
                  }
                in
                let cur = Option.value (Hashtbl.find_opt per_router router) ~default:[] in
                Hashtbl.replace per_router router (route :: cur)))
    best;
  Hashtbl.fold (fun r rs acc -> (r, rs) :: acc) per_router []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let routes net l2 router =
  match List.assoc_opt router (all_routes net l2) with
  | Some rs -> rs
  | None -> []
