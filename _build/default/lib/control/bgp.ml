open Heimdall_net
open Heimdall_config

type session = {
  local : string;
  local_addr : Ifaddr.t;
  peer_router : string;
  peer_addr : Ifaddr.t;
  peer_as : int;
}

let bgp_routers net =
  List.filter_map
    (fun (name, (cfg : Ast.t)) -> Option.map (fun b -> (name, cfg, b)) cfg.bgp)
    (Network.configs net)

let l3_adjacent net l2 (a_node, a_iface, a_addr) (b_node, b_iface, b_addr) =
  ignore net;
  Ifaddr.same_subnet a_addr b_addr
  && L2.same_domain
       { Topology.node = a_node; iface = a_iface }
       { Topology.node = b_node; iface = b_iface }
       l2

let sessions net l2 =
  let routers = bgp_routers net in
  let find_iface_with_addr (cfg : Ast.t) target =
    List.find_map
      (fun (i : Ast.interface) ->
        match i.addr with
        | Some a when i.enabled && Ipv4.equal (Ifaddr.address a) target -> Some (i.if_name, a)
        | _ -> None)
      cfg.interfaces
  in
  List.concat_map
    (fun (local, local_cfg, (b : Ast.bgp)) ->
      List.filter_map
        (fun (n : Ast.bgp_neighbor) ->
          (* Find the router owning the peer address, check the reciprocal
             neighbour statement and AS numbers, and require adjacency. *)
          List.find_map
            (fun (peer_router, peer_cfg, (pb : Ast.bgp)) ->
              if peer_router = local then None
              else
                match find_iface_with_addr peer_cfg n.peer with
                | None -> None
                | Some (peer_iface, peer_addr) ->
                    if pb.local_as <> n.remote_as then None
                    else
                      (* The peer must name one of our addresses with our AS. *)
                      List.find_map
                        (fun (back : Ast.bgp_neighbor) ->
                          if back.remote_as <> b.local_as then None
                          else
                            match find_iface_with_addr local_cfg back.peer with
                            | None -> None
                            | Some (local_iface, local_addr) ->
                                if
                                  l3_adjacent net l2
                                    (local, local_iface, local_addr)
                                    (peer_router, peer_iface, peer_addr)
                                then
                                  Some
                                    {
                                      local;
                                      local_addr;
                                      peer_router;
                                      peer_addr;
                                      peer_as = pb.local_as;
                                    }
                                else None)
                        pb.bgp_neighbors)
            routers)
        b.bgp_neighbors)
    routers

let all_routes net l2 =
  let routers = bgp_routers net in
  let sess = sessions net l2 in
  (* rib.(router)(prefix) -> (as_path_len, next_hop addr, out iface, origin router) *)
  let rib : (string * string, int * Ipv4.t * string) Hashtbl.t = Hashtbl.create 32 in
  let out_iface_to peer_addr local =
    List.find_map
      (fun s ->
        if s.local = local && Ipv4.equal (Ifaddr.address s.peer_addr) peer_addr then
          (* egress interface is the one holding our side's address *)
          match Network.config local net with
          | None -> None
          | Some cfg ->
              List.find_map
                (fun (i : Ast.interface) ->
                  match i.addr with
                  | Some a when Ifaddr.equal a s.local_addr -> Some i.if_name
                  | _ -> None)
                cfg.interfaces
        else None)
      sess
  in
  (* Seed: locally originated networks (path length 0, no next hop — these
     become candidates only on remote routers, so we keep them separately). *)
  let originated =
    List.concat_map
      (fun (r, _, (b : Ast.bgp)) -> List.map (fun p -> (r, p)) b.advertised)
      routers
  in
  (* Propagate to a fixpoint: a router advertises everything it originates
     or has learned to every session peer; receivers keep the shortest AS
     path and ignore routes they originated (loop suppression by origin). *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 32 do
    changed := false;
    incr rounds;
    List.iter
      (fun s ->
        (* s.local learns from s.peer_router. *)
        let learnable =
          List.filter_map
            (fun (origin, p) ->
              if origin = s.peer_router then Some (Prefix.to_string p, 1) else None)
            originated
          @ Hashtbl.fold
              (fun (r, p) (len, _, _) acc ->
                if r = s.peer_router then (p, len + 1) :: acc else acc)
              rib []
        in
        List.iter
          (fun (prefix_s, len) ->
            let locally_originated =
              List.exists
                (fun (o, p) -> o = s.local && Prefix.to_string p = prefix_s)
                originated
            in
            if not locally_originated then
              let key = (s.local, prefix_s) in
              let better =
                match Hashtbl.find_opt rib key with
                | Some (cur, _, _) -> len < cur
                | None -> true
              in
              if better then
                match out_iface_to (Ifaddr.address s.peer_addr) s.local with
                | Some iface ->
                    Hashtbl.replace rib key (len, Ifaddr.address s.peer_addr, iface);
                    changed := true
                | None -> ())
          learnable)
      sess
  done;
  let per_router = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (router, prefix_s) (len, next_hop, out_iface) ->
      let route =
        {
          Fib.prefix = Prefix.of_string prefix_s;
          next_hop = Some next_hop;
          out_iface;
          protocol = Fib.Bgp;
          distance = Fib.admin_distance Fib.Bgp;
          metric = len;
        }
      in
      let cur = Option.value (Hashtbl.find_opt per_router router) ~default:[] in
      Hashtbl.replace per_router router (route :: cur))
    rib;
  Hashtbl.fold (fun r rs acc -> (r, rs) :: acc) per_router []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
