(** A deliberately small BGP model, enough for the paper's ISP
    reconfiguration scenario: eBGP sessions between directly reachable,
    mutually configured neighbours; advertised networks propagate hop by
    hop with AS-path-length metrics and loop suppression. *)

open Heimdall_net

type session = {
  local : string;  (** Router name. *)
  local_addr : Ifaddr.t;
  peer_router : string;
  peer_addr : Ifaddr.t;
  peer_as : int;
}

val sessions : Network.t -> L2.t -> session list
(** Established sessions (each direction listed once per router).  A
    session forms when both routers configure each other's interface
    address with the correct remote AS and the interfaces are L3
    adjacent. *)

val all_routes : Network.t -> L2.t -> (string * Fib.route list) list
(** BGP candidate routes per router after propagation converges. *)
