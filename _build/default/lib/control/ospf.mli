(** OSPF control-plane simulation.

    Implements the parts of OSPF the paper's scenarios exercise: interface
    participation via [network P area A] statements (with per-interface
    area/cost overrides), adjacency formation (same subnet, same area,
    L2-adjacent, both ends up), per-area shortest-path-first route
    computation, inter-area routes through area border routers, and
    [default-information originate].

    A wrong area or a shut interface silently breaks adjacency — exactly
    the failure mode of the paper's OSPF troubleshooting ticket. *)

open Heimdall_net

type iface = {
  router : string;
  iface : string;
  addr : Ifaddr.t;
  area : int;
  cost : int;
}
(** An OSPF-speaking interface. *)

val enabled_interfaces : Network.t -> iface list
(** All OSPF-enabled interfaces in the network (router has an [ospf]
    stanza, interface is up, addressed, and covered by a [network]
    statement). *)

val adjacencies : Network.t -> L2.t -> (iface * iface) list
(** Formed adjacencies (each unordered pair listed once, lower router name
    first). *)

val all_routes : Network.t -> L2.t -> (string * Fib.route list) list
(** OSPF candidate routes for every router, computed in one pass (one SPF
    fixpoint shared by all nodes); routers with no routes are omitted. *)

val routes : Network.t -> L2.t -> string -> Fib.route list
(** OSPF candidate routes for the given router. *)
