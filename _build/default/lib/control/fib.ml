open Heimdall_net

type protocol = Connected | Static | Ospf | Bgp

let protocol_to_string = function
  | Connected -> "connected"
  | Static -> "static"
  | Ospf -> "ospf"
  | Bgp -> "bgp"

let admin_distance = function Connected -> 0 | Static -> 1 | Bgp -> 20 | Ospf -> 110

type route = {
  prefix : Prefix.t;
  next_hop : Ipv4.t option;
  out_iface : string;
  protocol : protocol;
  distance : int;
  metric : int;
}

let route_to_string r =
  Printf.sprintf "%s via %s dev %s [%s %d/%d]" (Prefix.to_string r.prefix)
    (match r.next_hop with Some nh -> Ipv4.to_string nh | None -> "direct")
    r.out_iface
    (protocol_to_string r.protocol)
    r.distance r.metric

let pp_route fmt r = Format.pp_print_string fmt (route_to_string r)

type t = route Prefix_trie.t

let empty = Prefix_trie.empty

let better a b =
  (* true iff [a] should be preferred over [b]. *)
  if a.distance <> b.distance then a.distance < b.distance
  else if a.metric <> b.metric then a.metric < b.metric
  else
    (* Deterministic tiebreak so dataplanes are reproducible. *)
    Stdlib.compare
      (a.out_iface, Option.map Ipv4.to_int a.next_hop)
      (b.out_iface, Option.map Ipv4.to_int b.next_hop)
    < 0

let of_candidates routes =
  List.fold_left
    (fun t r ->
      match Prefix_trie.find_exact r.prefix t with
      | Some current when not (better r current) -> t
      | _ -> Prefix_trie.add r.prefix r t)
    empty routes

let lookup addr t = Option.map snd (Prefix_trie.lookup addr t)
let routes t = List.map snd (Prefix_trie.bindings t)
let route_count t = Prefix_trie.cardinal t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun r -> Format.fprintf fmt "%s@," (route_to_string r)) (routes t);
  Format.fprintf fmt "@]"
