open Heimdall_net
open Heimdall_config

(* Union-find over string keys.  Keys: "I/<node>/<iface>" for L3 interface
   attachments, "S/<switch>/<vlan>" for a switch's per-VLAN bridge. *)
module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find uf x =
    match Hashtbl.find_opt uf x with
    | None ->
        Hashtbl.replace uf x x;
        x
    | Some p when p = x -> x
    | Some p ->
        let root = find uf p in
        Hashtbl.replace uf x root;
        root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf ra rb
end

type domain_id = int

type t = {
  domain_by_iface : (string, domain_id) Hashtbl.t;  (* "node/iface" -> id *)
  switches_by_domain : (domain_id, string list) Hashtbl.t;
  ifaces_by_domain : (domain_id, Topology.endpoint list) Hashtbl.t;
}

let iface_key (e : Topology.endpoint) = Printf.sprintf "I/%s/%s" e.node e.iface
let switch_key sw vlan = Printf.sprintf "S/%s/%d" sw vlan

(* How one end of a cable attaches to L2, given its config. *)
type attachment =
  | L3 of Topology.endpoint  (* untagged endpoint with (potentially) an address *)
  | Sw_access of string * int  (* switch, vlan *)
  | Sw_trunk of string * int list  (* switch, allowed vlans *)
  | Detached  (* shut down or unconfigurable *)

let attachment_of net (e : Topology.endpoint) =
  match Network.config e.node net with
  | None -> Detached
  | Some cfg -> (
      match Ast.find_interface e.iface cfg with
      | None ->
          (* Unconfigured port: hosts/routers attach untagged anyway (an
             unnumbered port still links up); switches default to access
             vlan 1. *)
          (match Network.kind e.node net with
          | Some Topology.Switch -> Sw_access (e.node, 1)
          | Some (Topology.Router | Topology.Host | Topology.Firewall) -> L3 e
          | None -> Detached)
      | Some i -> (
          if not i.enabled then Detached
          else
            (* A switchport stanza makes the port a bridge port on any
               device kind — routers with switchports behave as L3
               switches (their SVIs provide the L3 presence). *)
            match i.switchport with
            | Some (Ast.Access v) -> Sw_access (e.node, v)
            | Some (Ast.Trunk vs) -> Sw_trunk (e.node, vs)
            | None -> (
                match Network.kind e.node net with
                | Some Topology.Switch -> Sw_access (e.node, 1)
                | Some (Topology.Router | Topology.Host | Topology.Firewall) -> L3 e
                | None -> Detached)))

(* SVIs: an interface named "vlan<N>" carrying an address attaches the
   device's own layer-3 presence to its vlan-N bridge domain. *)
let svi_vlan (i : Ast.interface) =
  let name = i.if_name in
  if String.length name > 4 && String.sub name 0 4 = "vlan" then
    int_of_string_opt (String.sub name 4 (String.length name - 4))
  else None

let compute net =
  let uf = Uf.create () in
  let links = Topology.links (Network.topology net) in
  let bridge a b =
    match (a, b) with
    | Detached, _ | _, Detached -> ()
    | L3 ea, L3 eb -> Uf.union uf (iface_key ea) (iface_key eb)
    | L3 ea, Sw_access (sw, v) | Sw_access (sw, v), L3 ea ->
        Uf.union uf (iface_key ea) (switch_key sw v)
    | L3 _, Sw_trunk _ | Sw_trunk _, L3 _ ->
        (* An untagged endpoint facing a trunk: frames are tagged on one
           side only — no connectivity (deliberate: misconfiguration). *)
        ()
    | Sw_access (s1, v1), Sw_access (s2, v2) ->
        (* Untagged bridging joins the two VLANs' domains regardless of id. *)
        Uf.union uf (switch_key s1 v1) (switch_key s2 v2)
    | Sw_trunk (s1, vs1), Sw_trunk (s2, vs2) ->
        List.iter
          (fun v -> if List.mem v vs2 then Uf.union uf (switch_key s1 v) (switch_key s2 v))
          vs1
    | Sw_access _, Sw_trunk _ | Sw_trunk _, Sw_access _ -> ()
  in
  List.iter
    (fun (l : Topology.link) ->
      bridge (attachment_of net l.a) (attachment_of net l.b))
    links;
  (* SVIs join the device's own per-VLAN bridge domain. *)
  let svis =
    List.concat_map
      (fun (node, (cfg : Ast.t)) ->
        List.filter_map
          (fun (i : Ast.interface) ->
            match svi_vlan i with
            | Some v when i.enabled && i.addr <> None ->
                Some ({ Topology.node; iface = i.if_name }, v)
            | _ -> None)
          cfg.interfaces)
      (Network.configs net)
  in
  List.iter
    (fun ((ep : Topology.endpoint), v) ->
      Uf.union uf (iface_key ep) (switch_key ep.node v))
    svis;
  (* Assign dense ids per root and index members. *)
  let root_ids = Hashtbl.create 16 in
  let next = ref 0 in
  let id_of_root r =
    match Hashtbl.find_opt root_ids r with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.replace root_ids r id;
        id
  in
  let domain_by_iface = Hashtbl.create 64 in
  let switches_by_domain = Hashtbl.create 16 in
  let ifaces_by_domain = Hashtbl.create 16 in
  let note_switch id sw =
    let cur = Option.value (Hashtbl.find_opt switches_by_domain id) ~default:[] in
    if not (List.mem sw cur) then Hashtbl.replace switches_by_domain id (sw :: cur)
  in
  let note_iface id e =
    let cur = Option.value (Hashtbl.find_opt ifaces_by_domain id) ~default:[] in
    Hashtbl.replace ifaces_by_domain id (e :: cur)
  in
  (* Walk every endpoint of every link to register attachments. *)
  List.iter
    (fun (l : Topology.link) ->
      List.iter
        (fun e ->
          match attachment_of net e with
          | L3 ep ->
              let id = id_of_root (Uf.find uf (iface_key ep)) in
              let key = Printf.sprintf "%s/%s" ep.node ep.iface in
              if not (Hashtbl.mem domain_by_iface key) then begin
                Hashtbl.replace domain_by_iface key id;
                note_iface id ep
              end
          | Sw_access (sw, v) ->
              let id = id_of_root (Uf.find uf (switch_key sw v)) in
              note_switch id sw
          | Sw_trunk (sw, vs) ->
              List.iter
                (fun v ->
                  let id = id_of_root (Uf.find uf (switch_key sw v)) in
                  note_switch id sw)
                vs
          | Detached -> ())
        [ l.a; l.b ])
    links;
  (* Register SVI attachments (they are not link endpoints). *)
  List.iter
    (fun ((ep : Topology.endpoint), _) ->
      let id = id_of_root (Uf.find uf (iface_key ep)) in
      let key = Printf.sprintf "%s/%s" ep.node ep.iface in
      if not (Hashtbl.mem domain_by_iface key) then begin
        Hashtbl.replace domain_by_iface key id;
        note_iface id ep
      end)
    svis;
  { domain_by_iface; switches_by_domain; ifaces_by_domain }

let domain_of (e : Topology.endpoint) t =
  Hashtbl.find_opt t.domain_by_iface (Printf.sprintf "%s/%s" e.node e.iface)

let same_domain a b t =
  match (domain_of a t, domain_of b t) with
  | Some da, Some db -> da = db
  | _ -> false

let domain_switches id t =
  Option.value (Hashtbl.find_opt t.switches_by_domain id) ~default:[]
  |> List.sort String.compare

let domains t =
  Hashtbl.fold
    (fun id ifaces acc ->
      let sorted =
        List.sort
          (fun (a : Topology.endpoint) b ->
            String.compare (Topology.endpoint_to_string a) (Topology.endpoint_to_string b))
          ifaces
      in
      (id, sorted) :: acc)
    t.ifaces_by_domain []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
