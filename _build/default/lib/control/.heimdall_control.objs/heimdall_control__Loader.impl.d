lib/control/loader.ml: Buffer Filename Fun Heimdall_config Heimdall_net List Network Parser Printer Printf Result String Sys Topology
