lib/control/network.mli: Ast Change Heimdall_config Heimdall_net Ipv4 Prefix Topology
