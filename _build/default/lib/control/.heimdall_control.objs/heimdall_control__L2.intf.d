lib/control/l2.mli: Heimdall_net Network Topology
