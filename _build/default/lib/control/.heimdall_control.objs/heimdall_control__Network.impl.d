lib/control/network.ml: Ast Change Heimdall_config Heimdall_net Ifaddr Ipv4 List Map Option Prefix Printer Printf String Topology
