lib/control/bgp.ml: Ast Fib Hashtbl Heimdall_config Heimdall_net Ifaddr Ipv4 L2 List Network Option Prefix String Topology
