lib/control/bgp.mli: Fib Heimdall_net Ifaddr L2 Network
