lib/control/l2.ml: Ast Hashtbl Heimdall_config Heimdall_net Int List Network Option Printf String Topology
