lib/control/ospf.ml: Ast Fib Graph Hashtbl Heimdall_config Heimdall_net Ifaddr Int L2 List Network Option Prefix String Topology
