lib/control/fib.ml: Format Heimdall_net Ipv4 List Option Prefix Prefix_trie Printf Stdlib
