lib/control/fib.mli: Format Heimdall_net Ipv4 Prefix
