lib/control/loader.mli: Heimdall_net Network
