lib/control/ospf.mli: Fib Heimdall_net Ifaddr L2 Network
