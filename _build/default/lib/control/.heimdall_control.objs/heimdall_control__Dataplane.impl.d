lib/control/dataplane.ml: Ast Bgp Fib Heimdall_config Heimdall_net Ifaddr L2 List Map Network Option Ospf Prefix String Topology
