lib/control/dataplane.mli: Fib Heimdall_net Ipv4 L2 Network
