(** Layer-2 broadcast domains.

    Hosts, routers and firewalls attach untagged; switches bridge per-VLAN.
    Two L3 interfaces can exchange frames iff they end up in the same
    domain: directly cabled, or bridged by switch ports in the right VLANs
    (access ports join their VLAN's domain; trunk links splice the VLANs
    allowed on both ends; an access↔trunk mismatch does not bridge —
    that is precisely the paper's VLAN misconfiguration scenario).
    Disabled interfaces attach nowhere. *)

open Heimdall_net

type t

val compute : Network.t -> t
(** Compute all domains for the current configs. *)

type domain_id = int

val domain_of : Topology.endpoint -> t -> domain_id option
(** Domain of an L3 interface ([None] if unwired, shut down, or not L3). *)

val same_domain : Topology.endpoint -> Topology.endpoint -> t -> bool

val domain_switches : domain_id -> t -> string list
(** Switches bridging a domain, sorted — the L2 nodes a frame in this
    domain may traverse. *)

val domains : t -> (domain_id * Topology.endpoint list) list
(** All domains with their attached L3 interfaces (sorted). *)
