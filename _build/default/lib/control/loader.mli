(** Load a network from text (or a directory) — the adoption path for
    users with their own topologies and configs.

    Topology format (line-oriented, [#] comments):
    {v
    node r1 router
    node sw1 switch
    node h1 host
    node fw1 firewall
    link r1:eth0 sw1:eth0
    link sw1:eth1 h1:eth0
    v}

    Device configurations use the language of
    {!Heimdall_config.Parser}. *)

type error = { where : string; line : int; message : string }

val error_to_string : error -> string

val parse_topology : string -> (Heimdall_net.Topology.t, error) result

val load :
  topology:string -> configs:(string * string) list -> (Network.t, error) result
(** [load ~topology ~configs] parses everything and assembles a network;
    [configs] pairs each node name with its config text.  Fails on the
    first syntax error, missing/extra config, or structural
    inconsistency. *)

val load_dir : string -> (Network.t, error) result
(** [load_dir dir] reads [dir ^ "/topology.txt"] and one
    [dir ^ "/configs/<node>.cfg"] per node. *)

val save_dir : string -> Network.t -> unit
(** Write a network back out in the {!load_dir} layout (creates the
    directories).  [load_dir (save_dir d net)] round-trips. *)
