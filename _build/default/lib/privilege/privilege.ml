type effect = Allow | Deny

let effect_to_string = function Allow -> "allow" | Deny -> "deny"

type pattern = string

let pattern_matches pat s =
  if pat = "*" then true
  else
    let n = String.length pat in
    if n > 0 && pat.[n - 1] = '*' then
      let stem = String.sub pat 0 (n - 1) in
      String.length s >= String.length stem && String.sub s 0 (String.length stem) = stem
    else pat = s

type resource = { node : pattern; iface : pattern option }

let resource_of_string s =
  match String.index_opt s ':' with
  | None -> { node = s; iface = None }
  | Some i ->
      {
        node = String.sub s 0 i;
        iface = Some (String.sub s (i + 1) (String.length s - i - 1));
      }

let resource_to_string r =
  match r.iface with None -> r.node | Some i -> Printf.sprintf "%s:%s" r.node i

type predicate = { effect : effect; actions : pattern list; resources : resource list }
type t = { predicates : predicate list }

let empty = { predicates = [] }

let allow_all =
  { predicates = [ { effect = Allow; actions = [ "*" ]; resources = [ { node = "*"; iface = None } ] } ] }

let allow ?iface ~actions ~nodes () =
  { effect = Allow; actions; resources = List.map (fun n -> { node = n; iface }) nodes }

let deny ?iface ~actions ~nodes () =
  { effect = Deny; actions; resources = List.map (fun n -> { node = n; iface }) nodes }

let of_predicates predicates = { predicates }
let append p t = { predicates = t.predicates @ [ p ] }
let prepend p t = { predicates = p :: t.predicates }

type request = { action : Action.t; node : string; req_iface : string option }

let request ?iface action node = { action; node; req_iface = iface }

let resource_matches (r : resource) (req : request) =
  pattern_matches r.node req.node
  &&
  match r.iface with
  | None -> true
  | Some ipat -> (
      (* An interface-scoped resource only matches interface-scoped
         requests for a matching interface. *)
      match req.req_iface with
      | None -> false
      | Some i -> pattern_matches ipat i)

let predicate_matches (p : predicate) (req : request) =
  List.exists (fun a -> pattern_matches a req.action) p.actions
  && List.exists (fun r -> resource_matches r req) p.resources

let evaluate t req =
  let rec go = function
    | [] -> Deny
    | p :: rest -> if predicate_matches p req then p.effect else go rest
  in
  go t.predicates

let allows t req = evaluate t req = Allow

let allowed_actions t ~node ~kind =
  List.filter
    (fun a -> allows t { action = a; node; req_iface = None })
    (Action.available_on kind)

let predicate_count t = List.length t.predicates

let predicate_to_string p =
  Printf.sprintf "%s %s on %s;"
    (effect_to_string p.effect)
    (String.concat ", " p.actions)
    (String.concat ", " (List.map resource_to_string p.resources))

let to_string t = String.concat "\n" (List.map predicate_to_string t.predicates)
let pp fmt t = Format.pp_print_string fmt (to_string t)
