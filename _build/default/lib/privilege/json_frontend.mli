(** The JSON front-end the paper mentions ("a convenient front-end
    interface, based on JSON, that builds on the specification DSL").

    Document shape:
    {v
    { "version": 1,
      "rules": [
        { "effect": "allow",
          "actions": ["show.*", "diag.ping"],
          "resources": ["r1", "r2:eth0"] } ] }
    v} *)

val of_json : Heimdall_json.Json.t -> (Privilege.t, string) result
val to_json : Privilege.t -> Heimdall_json.Json.t

val parse : string -> (Privilege.t, string) result
(** Parse a JSON document string into a specification. *)

val render : ?pretty:bool -> Privilege.t -> string
