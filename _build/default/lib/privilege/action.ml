open Heimdall_net

type t = string

let show_actions =
  [
    "show.config";
    "show.interface";
    "show.route";
    "show.acl";
    "show.ospf";
    "show.vlan";
    "show.topology";
  ]

let diag_actions = [ "diag.ping"; "diag.traceroute" ]

let interface_actions =
  [ "interface.up"; "interface.shutdown"; "interface.addr"; "interface.description" ]

let ospf_actions = [ "ospf.cost"; "ospf.area"; "ospf.network" ]
let acl_actions = [ "acl.rule"; "acl.bind"; "acl.remove" ]
let route_actions = [ "route.static"; "route.gateway" ]
let vlan_actions = [ "vlan.define"; "vlan.switchport" ]
let secret_actions = [ "secret.set" ]
let system_actions = [ "system.reboot"; "system.erase" ]

let catalog =
  List.sort String.compare
    (show_actions @ diag_actions @ interface_actions @ ospf_actions @ acl_actions
   @ route_actions @ vlan_actions @ secret_actions @ system_actions)

let has_prefix p a = String.length a >= String.length p && String.sub a 0 (String.length p) = p
let is_read_only a = has_prefix "show." a || has_prefix "diag." a
let is_destructive a = has_prefix "system." a
let mutating = List.filter (fun a -> not (is_read_only a)) catalog

let available_on = function
  | Topology.Router ->
      List.sort String.compare
        (show_actions @ diag_actions @ interface_actions @ ospf_actions @ acl_actions
       @ route_actions @ secret_actions @ system_actions)
  | Topology.Firewall ->
      List.sort String.compare
        (show_actions @ diag_actions @ interface_actions @ acl_actions @ route_actions
       @ ospf_actions @ secret_actions @ system_actions)
  | Topology.Switch ->
      List.sort String.compare
        (show_actions @ diag_actions @ interface_actions @ vlan_actions @ secret_actions
       @ system_actions)
  | Topology.Host ->
      List.sort String.compare
        ([ "show.config"; "show.interface"; "show.route" ] @ diag_actions
       @ interface_actions @ route_actions @ secret_actions @ system_actions)

let mem a = List.mem a catalog
