exception Parse_error of int * string

let fail lineno fmt = Printf.ksprintf (fun m -> raise (Parse_error (lineno, m))) fmt

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")

let check_action_pattern lineno pat =
  if not (List.exists (Privilege.pattern_matches pat) Action.catalog) then
    fail lineno "action pattern %S matches no known action" pat

(* A statement may span lines; we re-join on ';'.  Track the line number of
   each statement's start for error reporting. *)
let statements text =
  let lines = String.split_on_char '\n' text in
  let cleaned =
    List.mapi
      (fun i l ->
        let l = match String.index_opt l '#' with Some j -> String.sub l 0 j | None -> l in
        (i + 1, String.trim l))
      lines
  in
  let stmts = ref [] in
  let buf = Buffer.create 64 in
  let start = ref 0 in
  List.iter
    (fun (lineno, l) ->
      if l <> "" then begin
        if Buffer.length buf = 0 then start := lineno;
        Buffer.add_string buf l;
        Buffer.add_char buf ' ';
        if String.contains l ';' then begin
          (* Split accumulated text on ';'. *)
          let parts = String.split_on_char ';' (Buffer.contents buf) in
          Buffer.clear buf;
          let rec go = function
            | [] -> ()
            | [ last ] ->
                if String.trim last <> "" then begin
                  Buffer.add_string buf (String.trim last);
                  Buffer.add_char buf ' '
                end
            | part :: rest ->
                if String.trim part <> "" then stmts := (!start, String.trim part) :: !stmts;
                go rest
          in
          go parts
        end
      end)
    cleaned;
  if String.trim (Buffer.contents buf) <> "" then
    fail !start "statement missing terminating ';'";
  List.rev !stmts

let parse_statement (lineno, stmt) =
  (* <effect> <actions> on <resources> *)
  let effect, rest =
    if String.length stmt >= 6 && String.sub stmt 0 6 = "allow " then
      (Privilege.Allow, String.sub stmt 6 (String.length stmt - 6))
    else if String.length stmt >= 5 && String.sub stmt 0 5 = "deny " then
      (Privilege.Deny, String.sub stmt 5 (String.length stmt - 5))
    else fail lineno "expected 'allow' or 'deny': %S" stmt
  in
  let on_split =
    (* find " on " at top level *)
    let marker = " on " in
    let rec find i =
      if i + 4 > String.length rest then None
      else if String.sub rest i 4 = marker then Some i
      else find (i + 1)
    in
    find 0
  in
  match on_split with
  | None -> fail lineno "statement missing 'on': %S" stmt
  | Some i ->
      let actions_s = String.sub rest 0 i in
      let resources_s = String.sub rest (i + 4) (String.length rest - i - 4) in
      let actions = split_commas actions_s in
      let resources = split_commas resources_s in
      if actions = [] then fail lineno "no actions in statement";
      if resources = [] then fail lineno "no resources in statement";
      List.iter (check_action_pattern lineno) actions;
      {
        Privilege.effect;
        actions;
        resources = List.map Privilege.resource_of_string resources;
      }

let parse text =
  Privilege.of_predicates (List.map parse_statement (statements text))

let parse_result text =
  match parse text with
  | t -> Ok t
  | exception Parse_error (l, m) -> Error (l, m)

let render (t : Privilege.t) =
  let predicate_to_string (p : Privilege.predicate) =
    Printf.sprintf "%s %s on %s;"
      (Privilege.effect_to_string p.effect)
      (String.concat ", " p.actions)
      (String.concat ", " (List.map Privilege.resource_to_string p.resources))
  in
  String.concat "\n" (List.map predicate_to_string t.predicates) ^ "\n"
