(** The action taxonomy: every operation an MSP technician can request,
    named by a dotted path.  Privilege predicates match these names.

    The catalog is the universe used by the attack-surface metric (the
    paper's "available commands" [A_n]). *)

type t = string
(** An action name, e.g. ["interface.shutdown"]. *)

val catalog : t list
(** Every action in the model, sorted.  Read-only [show.*]/[diag.*]
    actions, config-mutation actions (mirroring
    {!Heimdall_config.Change.op_action_name}), and destructive [system.*]
    actions. *)

val is_read_only : t -> bool
(** [show.*] and [diag.*] actions observe but never mutate. *)

val is_destructive : t -> bool
(** [system.*] actions (reboot, erase) — the "careless technician"
    class. *)

val mutating : t list
(** Catalog minus read-only actions. *)

val available_on : Heimdall_net.Topology.node_kind -> t list
(** The subset of the catalog meaningful on a node of this kind (e.g.
    [ospf.*] exists on routers and firewalls, [vlan.switchport] on
    switches, hosts expose only interface/route/diag/system actions). *)

val mem : t -> bool
(** Whether the name is in the catalog. *)
