(** Text syntax for [Privilege_msp] specifications.

    {v
    # comments start with '#'
    allow show.*, diag.* on *;
    allow interface.up, interface.shutdown on r1, r2;
    deny acl.rule on fw1:eth0;
    v}

    Statements are ordered; evaluation is first-match-wins with a default
    deny.  [render] and [parse] round-trip. *)

exception Parse_error of int * string
(** [(line, message)]. *)

val parse : string -> Privilege.t
(** @raise Parse_error on malformed input or unknown action names (an
    action pattern must match at least one catalog action). *)

val parse_result : string -> (Privilege.t, int * string) result
val render : Privilege.t -> string
